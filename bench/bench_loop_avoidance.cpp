// EXP-LOOPAVOID — avoiding assignment loops during scheduling/assignment
// (§3.3.2, [33]).
//
// Same resources, same deadline: the conventional (FDS + clique/left-edge)
// flow forms many hardware-sharing loops; the simultaneous flow forms few
// to none, so far fewer registers must be scanned afterwards.
#include "common.h"

#include "graph/mfvs.h"
#include "hls/datapath_builder.h"
#include "hls/fds.h"
#include "rtl/area.h"
#include "rtl/sgraph.h"
#include "testability/loop_avoid.h"
#include "testability/scan_select.h"

namespace tsyn {
namespace {

void add_row(util::Table& table, const cdfg::Cdfg& g,
             const std::string& flow, const hls::Schedule& s,
             const hls::Binding& b,
             const std::vector<cdfg::VarId>& scan_vars) {
  hls::RtlDesign rtl = hls::build_rtl(g, s, b);
  const rtl::LoopStats stats = rtl::loop_stats(rtl.datapath);
  // Scan registers the flow commits to (CDFG loop breaking), plus whatever
  // the RTL still needs on top (MFVS over the scan-excluded S-graph).
  // Plain RTL MFVS on the same datapath is always available as a fallback;
  // a designer takes whichever allocation is smaller.
  const auto plain = graph::greedy_mfvs(rtl::build_sgraph(rtl.datapath),
                                        {.ignore_self_loops = true});
  const int committed =
      testability::apply_scan(g, b, scan_vars, rtl.datapath);
  const graph::Digraph sg =
      rtl::build_sgraph(rtl.datapath, /*exclude_scan=*/true);
  const auto extra = graph::greedy_mfvs(sg, {.ignore_self_loops = true});
  const int total = std::min(committed + static_cast<int>(extra.size()),
                             static_cast<int>(plain.size()));
  table.add_row({g.name(), flow, std::to_string(s.num_steps),
                 std::to_string(b.num_regs),
                 std::to_string(stats.self_loops),
                 std::to_string(stats.assignment_loops),
                 std::to_string(stats.cdfg_loops),
                 std::to_string(total)});
}

}  // namespace
}  // namespace tsyn

int main() {
  using namespace tsyn;
  bench::print_header(
      "EXP-LOOPAVOID",
      "Paper claim (§3.3.2, [33]): scheduling and assignment chosen "
      "together avoid\nloop formation under the same performance/resource "
      "constraints, so loop-free,\nhighly testable designs need far fewer "
      "scan registers.");

  util::Table table({"benchmark", "flow", "csteps", "regs", "self",
                     "assignment", "cdfg", "scan regs needed"});
  for (const cdfg::Cdfg& g : cdfg::standard_benchmarks()) {
    const hls::Resources res = bench::standard_resources();
    const int deadline = hls::list_schedule(g, res).num_steps + 1;

    // Conventional, testability-blind: all loop breaking happens at RTL.
    const hls::Schedule cs = hls::force_directed_schedule(g, deadline);
    const hls::Binding cb = hls::make_binding(g, cs);
    add_row(table, g, "conventional", cs, cb, {});

    // [33] loop-avoiding (scan vars for the CDFG loops pre-selected, as
    // the paper's flow does).
    testability::LoopAvoidOptions opts;
    opts.resources = res;
    opts.num_steps = deadline;
    opts.scan_vars = testability::select_scan_vars_loopcut(g);
    const testability::LoopAvoidResult r =
        testability::loop_avoiding_synthesis(g, opts);
    add_row(table, g, "[33] simultaneous", r.schedule, r.binding,
            opts.scan_vars);
  }
  bench::print_table(table);
  return 0;
}
