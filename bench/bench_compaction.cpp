// EXP-COMPACTION — test-set compaction & compression on the benchmark
// DFGs.
//
// The survey's central cost axis is test effort: pattern count and test
// application time. This bench measures what the compaction subsystem
// (src/compaction/) buys over the raw ATPG campaign on full-scan
// expansions of the benchmark behaviors:
//   - pattern count: uncompacted vs static (cube merging + reverse-order
//     pruning) vs dynamic (secondary-fault targeting during generation);
//   - test data volume (patterns x PI bits);
//   - coverage, which by the subsystem's contract never drops;
//   - X-fill quality: N-detect profiles of the fill strategies on the
//     static-compacted diffeq test set.
//
// Results go to stdout and BENCH_compaction.json (schema in
// docs/compaction.md) so the reduction trajectory is tracked per PR.
#include "common.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "cdfg/benchmarks.h"
#include "compaction/compaction.h"
#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "util/table.h"

namespace tsyn {
namespace {

constexpr long kBacktrackLimit = 10000;

gl::Netlist full_scan_netlist(const cdfg::Cdfg& g, int width) {
  const hls::Synthesis syn = bench::synthesize_standard(g);
  rtl::Datapath dp = syn.rtl.datapath;
  for (auto& reg : dp.regs) reg.test_kind = rtl::TestRegKind::kScan;
  gl::ExpandOptions x;
  x.width_override = width;
  return gl::expand_datapath(dp, x).netlist;
}

struct Row {
  std::string circuit;
  int gates = 0;
  std::size_t faults = 0;
  long patterns_uncompacted = 0;
  double coverage_uncompacted = 0;
  long patterns_static = 0;
  long patterns_dynamic = 0;
  double coverage_dynamic = 0;
  long secondary_merged = 0;
  long pruned = 0;
  long topup = 0;
  long tdv_bits_uncompacted = 0;
  long tdv_bits_dynamic = 0;
  double static_ms = 0;
  double dynamic_ms = 0;
  double reduction_static() const {
    return patterns_uncompacted > 0
               ? 1.0 - static_cast<double>(patterns_static) /
                           static_cast<double>(patterns_uncompacted)
               : 0.0;
  }
  double reduction_dynamic() const {
    return patterns_uncompacted > 0
               ? 1.0 - static_cast<double>(patterns_dynamic) /
                           static_cast<double>(patterns_uncompacted)
               : 0.0;
  }
};

struct FillRow {
  std::string fill;
  long patterns = 0;
  double coverage = 0;
  double at_least2 = 0;
  double at_least4 = 0;
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

Row run_case(const std::string& name, const cdfg::Cdfg& g, int width) {
  const gl::Netlist n = full_scan_netlist(g, width);
  const auto faults = gl::enumerate_faults(n);
  Row row;
  row.circuit = name;
  row.gates = n.gate_count();
  row.faults = faults.size();

  compaction::CompactionOptions copts;
  copts.xfill = compaction::XFill::kAdjacent;

  copts.mode = compaction::CompactMode::kStatic;
  auto t0 = std::chrono::steady_clock::now();
  const compaction::CompactedCampaign st =
      compaction::run_compacted_atpg(n, faults, copts, kBacktrackLimit);
  row.static_ms = ms_since(t0);
  row.patterns_uncompacted = st.baseline_patterns;
  row.coverage_uncompacted = st.campaign.fault_coverage;
  row.patterns_static = static_cast<long>(st.patterns.size());
  row.tdv_bits_uncompacted =
      row.patterns_uncompacted *
      static_cast<long>(n.primary_inputs().size());

  // measure_baseline stays on: the plain campaign's detected set is the
  // coverage floor the top-up restores, so dynamic coverage never dips
  // below uncompacted even where secondary targeting loses lucky fills.
  copts.mode = compaction::CompactMode::kDynamic;
  t0 = std::chrono::steady_clock::now();
  const compaction::CompactedCampaign dy =
      compaction::run_compacted_atpg(n, faults, copts, kBacktrackLimit);
  row.dynamic_ms = ms_since(t0);
  row.patterns_dynamic = static_cast<long>(dy.patterns.size());
  row.coverage_dynamic = dy.pattern_coverage;
  row.secondary_merged = dy.stats.secondary_merged;
  row.pruned = dy.stats.patterns_pruned;
  row.topup = dy.stats.topup_patterns;
  row.tdv_bits_dynamic = dy.test_data_bits();

  if (dy.pattern_coverage + 1e-12 < st.campaign.fault_coverage)
    std::fprintf(stderr,
                 "WARNING: %s dynamic coverage %.4f below uncompacted %.4f\n",
                 name.c_str(), dy.pattern_coverage,
                 st.campaign.fault_coverage);
  return row;
}

std::vector<FillRow> xfill_sweep(const cdfg::Cdfg& g, int width) {
  const gl::Netlist n = full_scan_netlist(g, width);
  const auto faults = gl::enumerate_faults(n);
  std::vector<FillRow> rows;
  for (compaction::XFill fill :
       {compaction::XFill::kRandom, compaction::XFill::kZero,
        compaction::XFill::kOne, compaction::XFill::kAdjacent}) {
    compaction::CompactionOptions copts;
    copts.mode = compaction::CompactMode::kStatic;
    copts.xfill = fill;
    const compaction::CompactedCampaign c =
        compaction::run_compacted_atpg(n, faults, copts, kBacktrackLimit);
    const compaction::NdetectProfile prof =
        compaction::grade_ndetect(n, c.patterns, faults);
    FillRow r;
    r.fill = compaction::to_string(fill);
    r.patterns = static_cast<long>(c.patterns.size());
    r.coverage = c.pattern_coverage;
    r.at_least2 = prof.fraction_at_least(2);
    r.at_least4 = prof.fraction_at_least(4);
    rows.push_back(r);
  }
  return rows;
}

void write_json(const std::vector<Row>& rows,
                const std::vector<FillRow>& fills,
                std::uint64_t fill_seed) {
  FILE* f = std::fopen("BENCH_compaction.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_compaction.json\n");
    return;
  }
  bench::write_json_preamble(f, fill_seed);
  std::fprintf(f, "  \"compaction\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"circuit\": \"%s\", \"gates\": %d, \"faults\": %zu, "
        "\"patterns_uncompacted\": %ld, \"coverage_uncompacted\": %.4f, "
        "\"patterns_static\": %ld, \"patterns_dynamic\": %ld, "
        "\"coverage_dynamic\": %.4f, \"reduction_static\": %.3f, "
        "\"reduction_dynamic\": %.3f, \"secondary_merged\": %ld, "
        "\"pruned\": %ld, \"topup\": %ld, "
        "\"tdv_bits_uncompacted\": %ld, \"tdv_bits_dynamic\": %ld, "
        "\"static_ms\": %.1f, \"dynamic_ms\": %.1f}%s\n",
        r.circuit.c_str(), r.gates, r.faults, r.patterns_uncompacted,
        r.coverage_uncompacted, r.patterns_static, r.patterns_dynamic,
        r.coverage_dynamic, r.reduction_static(), r.reduction_dynamic(),
        r.secondary_merged, r.pruned, r.topup, r.tdv_bits_uncompacted,
        r.tdv_bits_dynamic, r.static_ms, r.dynamic_ms,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"xfill\": [\n");
  for (std::size_t i = 0; i < fills.size(); ++i) {
    const FillRow& r = fills[i];
    std::fprintf(f,
                 "    {\"fill\": \"%s\", \"patterns\": %ld, "
                 "\"coverage\": %.4f, \"at_least2\": %.4f, "
                 "\"at_least4\": %.4f}%s\n",
                 r.fill.c_str(), r.patterns, r.coverage, r.at_least2,
                 r.at_least4, i + 1 < fills.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  ");
  bench::write_metrics_field(f);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace tsyn

int main() {
  using namespace tsyn;
  bench::print_header(
      "EXP-COMPACTION",
      "Claim: exploiting PODEM's don't-care bits (cube merging, dynamic\n"
      "compaction, reverse-order pruning) cuts the shipped pattern count\n"
      ">= 25% at no coverage loss, shrinking test time proportionally.");

  const compaction::CompactionOptions defaults;
  std::vector<Row> rows;
  rows.push_back(run_case("diffeq_w4", cdfg::diffeq(), 4));
  rows.push_back(run_case("tseng_w4", cdfg::tseng(), 4));
  rows.push_back(run_case("iir_w4", cdfg::iir_biquad(), 4));
  rows.push_back(run_case("fir6_w4", cdfg::fir(6), 4));
  rows.push_back(run_case("dct4_w4", cdfg::dct4(), 4));

  util::Table t({"circuit", "gates", "faults", "uncomp", "static", "dynamic",
                 "red stat", "red dyn", "2nd", "prune", "topup", "cov"});
  for (const Row& r : rows)
    t.add_row({r.circuit, std::to_string(r.gates), std::to_string(r.faults),
               std::to_string(r.patterns_uncompacted),
               std::to_string(r.patterns_static),
               std::to_string(r.patterns_dynamic),
               util::fmt(100 * r.reduction_static(), 1) + "%",
               util::fmt(100 * r.reduction_dynamic(), 1) + "%",
               std::to_string(r.secondary_merged), std::to_string(r.pruned),
               std::to_string(r.topup), util::fmt(100 * r.coverage_dynamic, 1)});
  bench::print_table(t);

  const std::vector<FillRow> fills = xfill_sweep(cdfg::diffeq(), 4);
  util::Table ft({"fill", "patterns", "coverage", ">=2 det", ">=4 det"});
  for (const FillRow& r : fills)
    ft.add_row({r.fill, std::to_string(r.patterns),
                util::fmt(100 * r.coverage, 1), util::fmt(100 * r.at_least2, 1),
                util::fmt(100 * r.at_least4, 1)});
  bench::print_table(ft);

  write_json(rows, fills, defaults.fill_seed);
  std::printf(
      "Wrote BENCH_compaction.json. Shape check: dynamic reduction should\n"
      "clear 25%% on every circuit and coverage_dynamic should equal or\n"
      "exceed coverage_uncompacted.\n");
  return 0;
}
