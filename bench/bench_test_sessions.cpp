// EXP-SESSIONS — test concurrency (§5.2, [20]).
//
// Test-path conflicts (shared capture registers, generate-vs-capture role
// clashes) force multiple BIST sessions. Conflict-aware synthesis reduces
// the conflict graph, ideally to a single session; sharing-oriented
// assignment ([32]) trades sessions for area, as the survey notes.
#include "common.h"

#include "bist/sessions.h"
#include "bist/share.h"

int main() {
  using namespace tsyn;
  bench::print_header(
      "EXP-SESSIONS",
      "Paper claim (§5.2, [20]): conflict-estimate-guided synthesis yields "
      "data paths\nneeding a minimal number of test sessions (often one); "
      "TPGR/SR-sharing-oriented\nassignment [32] can increase sessions.");

  util::Table table({"benchmark", "binding", "modules", "conflicts",
                     "sessions"});
  for (const cdfg::Cdfg& g : cdfg::standard_benchmarks()) {
    const hls::Resources res = bench::standard_resources();
    const hls::Schedule s = hls::list_schedule(g, res);

    auto report = [&](const std::string& label, const hls::Binding& b) {
      const bist::SessionAnalysis a = bist::schedule_test_sessions(g, b);
      table.add_row({g.name(), label, std::to_string(a.num_modules),
                     std::to_string(a.num_conflicts),
                     std::to_string(a.num_sessions)});
    };

    const hls::Binding conventional = hls::make_binding(g, s);
    report("conventional", conventional);

    report("[20] conflict-aware", bist::conflict_aware_binding(g, s));

    hls::Binding shared = conventional;
    const bist::ShareResult share =
        bist::sharing_register_assignment(g, shared);
    hls::rebind_registers(g, shared, share.reg_of_lifetime);
    report("[32] sharing-oriented", shared);
  }
  bench::print_table(table);
  return 0;
}
