// EXP-TFB — self-testable datapath architectures (§5.1, [31],[19],[32]).
//
// Four points on the BIST-area spectrum at identical schedules:
//   conventional binding + worst-case CBILBO assumption,
//   [3]-style adjacency-aware registers,
//   TFB synthesis [31] (no self-adjacency by construction, more ALUs),
//   XTFB [19] (merged ALUs, self-adjacent TPGR-only registers tolerated),
//   and the TPGR/SR sharing assignment of [32] with exact CBILBO checks.
#include "common.h"

#include "bist/bist_assign.h"
#include "bist/share.h"
#include "bist/test_registers.h"
#include "bist/tfb.h"
#include "hls/datapath_builder.h"
#include "rtl/area.h"

int main() {
  using namespace tsyn;
  bench::print_header(
      "EXP-TFB",
      "Paper claims (§5.1): TFBs avoid CBILBOs entirely; XTFBs need fewer "
      "ALUs than\nTFBs; [32]'s sharing + exact CBILBO conditions minimizes "
      "test registers.");

  util::Table table({"benchmark", "architecture", "ALUs+MULs", "regs",
                     "self-adj", "CBILBOs", "test regs",
                     "area overhead"});
  for (const cdfg::Cdfg& g : cdfg::standard_benchmarks()) {
    const hls::Resources res = bench::standard_resources();
    const hls::Schedule s = hls::list_schedule(g, res);

    auto report = [&](const std::string& label, const hls::Binding& b,
                      int cbilbo_override = -1) {
      hls::RtlDesign rtl = hls::build_rtl(g, s, b);
      const bist::BistAdjacency adj = bist::analyze_adjacency(rtl.datapath);
      const bist::BistRoles roles = bist::audit_roles(g, b);
      bist::configure_bist_conventional(rtl.datapath);
      const int cbilbos =
          cbilbo_override >= 0 ? cbilbo_override : roles.cbilbos;
      table.add_row({g.name(), label, std::to_string(b.num_fus()),
                     std::to_string(b.num_regs),
                     std::to_string(adj.self_adjacent_count()),
                     std::to_string(cbilbos),
                     std::to_string(roles.test_registers()),
                     util::fmt_pct(rtl::test_area_overhead(rtl.datapath))});
    };

    const hls::Binding conventional = hls::make_binding(g, s);
    // Worst case: every self-adjacent register is a CBILBO ([3]'s baseline
    // assumption).
    {
      hls::RtlDesign rtl = hls::build_rtl(g, s, conventional);
      const int sa = bist::analyze_adjacency(rtl.datapath)
                         .self_adjacent_count();
      report("conventional (worst case)", conventional, sa);
    }
    hls::Binding avra = conventional;
    hls::rebind_registers(g, avra,
                          bist::bist_aware_register_assignment(g, avra));
    report("[3] adjacency-aware", avra);

    const bist::TfbResult tfb = bist::tfb_synthesis(g, s);
    report("[31] TFB", tfb.binding, tfb.inherent_self_adjacent);

    const bist::XtfbResult xtfb = bist::xtfb_synthesis(g, s);
    report("[19] XTFB", xtfb.binding, xtfb.cbilbos);

    hls::Binding shared = conventional;
    const bist::ShareResult share =
        bist::sharing_register_assignment(g, shared);
    hls::rebind_registers(g, shared, share.reg_of_lifetime);
    report("[32] TPGR/SR sharing", shared);
  }
  bench::print_table(table);
  return 0;
}
