// PERF-FAULTSIM — performance trajectory of the fault-simulation engine.
//
// Three comparisons, all on the generated benchmark suite:
//  (1) PPSFP: serial (num_threads=1) vs sharded (one worker per hardware
//      thread) run_block over full-scan expansions, up to the largest
//      generated netlist;
//  (2) sequential: the old full-resimulation-per-fault simulator vs the
//      event-driven divergence-carrying engine (serial and sharded) on the
//      EXP-SEQATPG circuits and a non-scan datapath expansion;
//  (3) soa: the compiled SoA core's wide-lane grading (64 vs 256 vs 512
//      pattern lanes) on the detection-matrix and dropping workloads,
//      plus the one-time lowering cost and thread scaling.
//
// Results go to stdout and to BENCH_faultsim.json (schema documented in
// docs/faultsim.md) so the perf trajectory is tracked from PR to PR.
#include "common.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "cdfg/generator.h"
#include "gatelevel/bistgen.h"
#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "gatelevel/faultsim.h"
#include "gatelevel/simgraph.h"
#include "gatelevel/widebits.h"
#include "observe/ledger.h"
#include "observe/profile.h"
#include "observe/serve.h"
#include "util/httpd.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace tsyn {
namespace {

/// With one hardware thread, FaultSimOptions{0} resolves to one worker and
/// takes the identical inline path as FaultSimOptions{1} — timing the two
/// separately would only record scheduler noise, so the bench skips the
/// parallel measurements entirely and writes null markers to the JSON
/// (bench_diff treats a skipped measurement as a note, not a regression).
/// Internally "skipped" is a negative sentinel.
bool single_core() { return gl::FaultSimOptions{}.resolved_threads() <= 1; }

constexpr double kSkipped = -1.0;

/// JSON image of a measurement: "null" when skipped, else fixed-point.
std::string num_or_null(double v, int digits) {
  if (v < 0) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

/// Table image of a measurement: "-" when skipped.
std::string fmt_or_dash(double v, int digits) {
  return v < 0 ? "-" : util::fmt(v, digits);
}

double time_ms(const std::function<void()>& fn, int reps = 1) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

/// MEDIAN-of-reps timing for the soa section: the SoA rows feed speedup
/// ratios where one outlier sample in either direction distorts the
/// quotient, and the median is robust against host slow phases on both
/// sides (best-of is robust against slowdowns only).
double median_ms(const std::function<void()>& fn, int reps) {
  std::vector<double> samples;
  samples.reserve(reps);
  for (int r = 0; r < reps; ++r) samples.push_back(time_ms(fn));
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  return samples[samples.size() / 2];
}

/// Full-scan gate-level expansion of a behavior at the standard allocation.
gl::Netlist scan_netlist(const cdfg::Cdfg& g, int width) {
  const hls::Synthesis syn = bench::synthesize_standard(g);
  rtl::Datapath dp = syn.rtl.datapath;
  for (auto& reg : dp.regs) reg.test_kind = rtl::TestRegKind::kScan;
  gl::ExpandOptions x;
  x.width_override = width;
  return gl::expand_datapath(dp, x).netlist;
}

/// Non-scan (sequential) expansion, the sequential engine's workload.
gl::Netlist seq_netlist(const cdfg::Cdfg& g, int width) {
  const hls::Synthesis syn = bench::synthesize_standard(g);
  gl::ExpandOptions x;
  x.width_override = width;
  return gl::expand_datapath(syn.rtl.datapath, x).netlist;
}

/// Ring register circuit from EXP-SEQATPG (long S-graph cycle).
gl::Netlist ring_circuit(int length) {
  gl::Netlist n;
  const int load = n.add_input("load");
  const int din = n.add_input("din");
  std::vector<int> regs;
  for (int i = 0; i < length; ++i)
    regs.push_back(n.add_dff(-1, "r" + std::to_string(i)));
  const int inv = n.add_gate(gl::GateType::kNot, {regs[length - 1]});
  const int d0 = n.add_gate(gl::GateType::kMux, {load, inv, din});
  n.set_dff_input(regs[0], d0);
  for (int i = 1; i < length; ++i) n.set_dff_input(regs[i], regs[i - 1]);
  n.mark_output(regs[0]);
  return n;
}

/// Register pipeline from EXP-SEQATPG (pure sequential depth).
gl::Netlist pipeline_circuit(int depth) {
  gl::Netlist n;
  const int a = n.add_input("a");
  const int b = n.add_input("b");
  const int x = n.add_gate(gl::GateType::kXor, {a, b});
  int prev = x;
  for (int i = 0; i < depth; ++i) {
    const int q = n.add_dff(-1, "d" + std::to_string(i));
    n.set_dff_input(q, prev);
    prev = q;
  }
  n.mark_output(prev);
  return n;
}

struct PpsfpRow {
  std::string circuit;
  int gates = 0;
  std::size_t faults = 0;
  int patterns = 0;
  double serial_ms = 0, parallel_ms = kSkipped, coverage = 0;
  double speedup() const {
    return parallel_ms > 0 ? serial_ms / parallel_ms : kSkipped;
  }
};

struct SeqRow {
  std::string circuit;
  std::size_t faults = 0;
  int frames = 0;
  double full_resim_ms = 0, event_serial_ms = 0, event_parallel_ms = kSkipped;
  long detected = 0;
  double speedup_algorithmic() const {
    return event_serial_ms > 0 ? full_resim_ms / event_serial_ms : kSkipped;
  }
  double speedup_total() const {
    return event_parallel_ms > 0 ? full_resim_ms / event_parallel_ms
                                 : kSkipped;
  }
};

PpsfpRow ppsfp_case(const std::string& name, const gl::Netlist& n,
                    int blocks_count, int reps) {
  const auto faults = gl::enumerate_faults(n);
  const auto blocks = gl::lfsr_pattern_blocks(
      static_cast<int>(n.primary_inputs().size()), blocks_count, 0x5EED);
  PpsfpRow row;
  row.circuit = name;
  row.gates = n.gate_count();
  row.faults = faults.size();
  row.patterns = blocks_count * 64;

  double cov_serial = 0, cov_parallel = 0;
  row.serial_ms = time_ms(
      [&] {
        cov_serial = gl::fault_coverage(n, blocks, faults, nullptr,
                                        gl::FaultSimOptions{1});
      },
      reps);
  cov_parallel = gl::fault_coverage(n, blocks, faults, nullptr,
                                    gl::FaultSimOptions{0});
  row.parallel_ms =
      single_core() ? kSkipped
                    : time_ms(
                          [&] {
                            cov_parallel = gl::fault_coverage(
                                n, blocks, faults, nullptr,
                                gl::FaultSimOptions{0});
                          },
                          reps);
  if (cov_serial != cov_parallel)
    std::fprintf(stderr, "WARNING: %s serial/parallel coverage mismatch\n",
                 name.c_str());
  row.coverage = cov_serial;
  return row;
}

/// Aggregate row over a set of tiny circuits: each engine runs the whole
/// set reps_inner times per timing sample so the sub-millisecond campaigns
/// are measurable. Reported times are per one pass over the set.
SeqRow seq_suite_case(const std::string& name,
                      const std::vector<gl::Netlist>& circs,
                      const std::vector<int>& nframes, int reps_inner,
                      int reps) {
  std::vector<std::vector<gl::Fault>> faults;
  std::vector<std::vector<std::vector<gl::Bits>>> frames;
  SeqRow row;
  row.circuit = name;
  for (std::size_t c = 0; c < circs.size(); ++c) {
    faults.push_back(gl::enumerate_faults(circs[c]));
    frames.push_back(gl::lfsr_pattern_blocks(
        static_cast<int>(circs[c].primary_inputs().size()), nframes[c],
        0xFACE));
    row.faults += faults.back().size();
    row.frames += nframes[c];
  }
  std::vector<std::vector<bool>> base(circs.size());
  std::vector<bool> got;
  bool mismatch = false;
  for (std::size_t c = 0; c < circs.size(); ++c) {
    base[c] =
        gl::sequential_fault_sim_full_resim(circs[c], frames[c], faults[c]);
    got = gl::sequential_fault_sim(circs[c], frames[c], faults[c],
                                   gl::FaultSimOptions{1});
    mismatch = mismatch || got != base[c];
  }
  // Interleave the two engines' timing samples so slow phases of the host
  // machine hit both rather than biasing whichever ran second.
  double best_full = 1e300, best_event = 1e300;
  for (int t = 0; t < reps; ++t) {
    best_full = std::min(
        best_full, time_ms([&] {
          for (int r = 0; r < reps_inner; ++r)
            for (std::size_t c = 0; c < circs.size(); ++c)
              got = gl::sequential_fault_sim_full_resim(circs[c], frames[c],
                                                        faults[c]);
        }));
    best_event = std::min(
        best_event, time_ms([&] {
          for (int r = 0; r < reps_inner; ++r)
            for (std::size_t c = 0; c < circs.size(); ++c)
              got = gl::sequential_fault_sim(circs[c], frames[c], faults[c],
                                             gl::FaultSimOptions{1});
        }));
  }
  row.full_resim_ms = best_full / reps_inner;
  row.event_serial_ms = best_event / reps_inner;
  for (std::size_t c = 0; c < circs.size(); ++c) {
    got = gl::sequential_fault_sim(circs[c], frames[c], faults[c],
                                   gl::FaultSimOptions{0});
    mismatch = mismatch || got != base[c];
  }
  row.event_parallel_ms =
      single_core()
          ? kSkipped
          : time_ms(
                [&] {
                  for (int r = 0; r < reps_inner; ++r)
                    for (std::size_t c = 0; c < circs.size(); ++c)
                      got = gl::sequential_fault_sim(circs[c], frames[c],
                                                     faults[c],
                                                     gl::FaultSimOptions{0});
                },
                reps) /
                reps_inner;
  if (mismatch)
    std::fprintf(stderr, "WARNING: %s sequential result mismatch\n",
                 name.c_str());
  for (const auto& b : base)
    for (bool d : b) row.detected += d;
  return row;
}

SeqRow seq_case(const std::string& name, const gl::Netlist& n,
                int frames_count, int reps) {
  const auto faults = gl::enumerate_faults(n);
  const auto frames = gl::lfsr_pattern_blocks(
      static_cast<int>(n.primary_inputs().size()), frames_count, 0xFACE);
  SeqRow row;
  row.circuit = name;
  row.faults = faults.size();
  row.frames = frames_count;

  std::vector<bool> base, event_serial, event_parallel;
  // Interleaved sampling — see seq_suite_case.
  double best_full = 1e300, best_event = 1e300;
  for (int t = 0; t < reps; ++t) {
    best_full = std::min(best_full, time_ms([&] {
      base = gl::sequential_fault_sim_full_resim(n, frames, faults);
    }));
    best_event = std::min(best_event, time_ms([&] {
      event_serial =
          gl::sequential_fault_sim(n, frames, faults, gl::FaultSimOptions{1});
    }));
  }
  row.full_resim_ms = best_full;
  row.event_serial_ms = best_event;
  event_parallel =
      gl::sequential_fault_sim(n, frames, faults, gl::FaultSimOptions{0});
  row.event_parallel_ms =
      single_core() ? kSkipped
                    : time_ms(
                          [&] {
                            event_parallel = gl::sequential_fault_sim(
                                n, frames, faults, gl::FaultSimOptions{0});
                          },
                          reps);
  if (base != event_serial || base != event_parallel)
    std::fprintf(stderr, "WARNING: %s sequential result mismatch\n",
                 name.c_str());
  for (bool d : base) row.detected += d;
  return row;
}

struct LedgerRow {
  std::string case_name;
  long events = 0;  ///< ledger events one enabled run records
  double off_ms = 0, on_ms = 0;
  double overhead_pct = 0;  ///< median paired difference / best off pass
};

/// Times one campaign with the fault-lifecycle ledger disabled vs enabled.
/// Both arms pay the ledger_reset() so the only difference is recording.
/// The host may slow down for stretches longer than a whole pass, so
/// independent best-of sampling of the two arms is noise-bound; instead
/// each repetition times an adjacent off/on pair and the overhead is the
/// MEDIAN of the paired differences — a host-wide slow phase hits both
/// halves of a pair and cancels, and the median discards the pairs a
/// scheduling spike split. The acceptance budget for the observability PR
/// is <= 5% overhead.
LedgerRow ledger_case(const std::string& name,
                      const std::function<void()>& campaign, int reps_inner,
                      int reps) {
  LedgerRow row;
  row.case_name = name;
  const auto pass = [&] {
    for (int r = 0; r < reps_inner; ++r) {
      observe::ledger_reset();
      campaign();
    }
  };
  double best_off = 1e300, best_on = 1e300;
  std::vector<double> diffs;
  for (int t = 0; t < reps; ++t) {
    // Alternate which arm goes first so a drift within the pair (cache
    // warmup, a ramping background task) biases half the pairs each way
    // instead of always charging the second arm.
    double off, on;
    if (t % 2 == 0) {
      observe::ledger_disable();
      off = time_ms(pass);
      observe::ledger_enable();
      on = time_ms(pass);
    } else {
      observe::ledger_enable();
      on = time_ms(pass);
      observe::ledger_disable();
      off = time_ms(pass);
    }
    best_off = std::min(best_off, off);
    best_on = std::min(best_on, on);
    diffs.push_back(on - off);
  }
  row.events = observe::ledger_event_count();  // one campaign's worth
  observe::ledger_disable();
  observe::ledger_reset();
  row.off_ms = best_off / reps_inner;
  row.on_ms = best_on / reps_inner;
  std::nth_element(diffs.begin(), diffs.begin() + diffs.size() / 2,
                   diffs.end());
  const double median_diff = diffs[diffs.size() / 2] / reps_inner;
  row.overhead_pct = row.off_ms > 0 ? 100.0 * median_diff / row.off_ms : 0;
  return row;
}

struct ProvRow {
  std::string case_name;
  long entries = 0;  ///< nodes the recorded map attributes
  double off_ms = 0, on_ms = 0;
  double overhead_pct = 0;  ///< median paired difference / best off pass
};

/// Times expand + a serial PPSFP pass with provenance recording off vs on.
/// Recording is a serial side table filled during expansion, so the
/// overhead is all in the expand half; the PPSFP half is included because
/// the acceptance budget (<= 2%) is stated over the whole expand+sim
/// pipeline. Same paired-median protocol as ledger_case.
ProvRow provenance_case(const std::string& name, const rtl::Datapath& dp,
                        int width, int blocks_count, int reps_inner,
                        int reps) {
  gl::ExpandOptions base;
  base.width_override = width;
  base.record_provenance = false;
  const gl::Netlist ref = gl::expand_datapath(dp, base).netlist;
  // The netlist is identical with recording on (provenance is bookkeeping
  // only), so the fault list and patterns are shared by both arms.
  const auto faults = gl::enumerate_faults(ref);
  const auto blocks = gl::lfsr_pattern_blocks(
      static_cast<int>(ref.primary_inputs().size()), blocks_count, 0x5EED);

  ProvRow row;
  row.case_name = name;
  {
    gl::ExpandOptions on = base;
    on.record_provenance = true;
    row.entries = static_cast<long>(
        gl::expand_datapath(dp, on).provenance.num_attributed());
  }
  const auto pass = [&](bool record) {
    for (int r = 0; r < reps_inner; ++r) {
      gl::ExpandOptions o = base;
      o.record_provenance = record;
      const gl::ExpandedDesign ed = gl::expand_datapath(dp, o);
      gl::fault_coverage(ed.netlist, blocks, faults, nullptr,
                         gl::FaultSimOptions{1});
    }
  };
  double best_off = 1e300, best_on = 1e300;
  std::vector<double> diffs;
  for (int t = 0; t < reps; ++t) {
    double off, on;
    if (t % 2 == 0) {
      off = time_ms([&] { pass(false); });
      on = time_ms([&] { pass(true); });
    } else {
      on = time_ms([&] { pass(true); });
      off = time_ms([&] { pass(false); });
    }
    best_off = std::min(best_off, off);
    best_on = std::min(best_on, on);
    diffs.push_back(on - off);
  }
  row.off_ms = best_off / reps_inner;
  row.on_ms = best_on / reps_inner;
  std::nth_element(diffs.begin(), diffs.begin() + diffs.size() / 2,
                   diffs.end());
  const double median_diff = diffs[diffs.size() / 2] / reps_inner;
  row.overhead_pct = row.off_ms > 0 ? 100.0 * median_diff / row.off_ms : 0;
  return row;
}

struct TelemetryRow {
  std::string case_name;
  long heartbeats = 0;  ///< heartbeat lines one enabled pass streams
  long samples = 0;     ///< profiler stack samples one enabled pass takes
  double off_ms = 0, on_ms = 0;
  double overhead_pct = 0;  ///< median paired difference / best off pass
};

/// Times one campaign with the live-telemetry layer fully off vs fully on
/// (progress counters + live span stacks + heartbeat streaming to a
/// scratch file + the sampling profiler riding the sampler thread). The
/// session start/stop — thread spawn and join — sits OUTSIDE the timed
/// region: the budget is on the steady-state cost a long campaign pays,
/// not the one-time setup. Same paired-median protocol as ledger_case;
/// the acceptance budget for the telemetry PR is <= 2% overhead.
TelemetryRow telemetry_case(const std::string& name,
                            const std::function<void()>& campaign,
                            int reps_inner, int reps) {
  TelemetryRow row;
  row.case_name = name;
  const char* hb_path = "bench_telemetry_scratch.jsonl";
  const auto pass = [&] {
    for (int r = 0; r < reps_inner; ++r) campaign();
  };
  const auto on_arm = [&] {
    observe::Profiler profiler;
    util::TelemetryOptions topts;
    topts.heartbeat_path = hb_path;
    topts.interval_ms = 25;
    topts.sampler = [&profiler] { profiler.sample(); };
    util::trace_stacks_enable();
    util::telemetry_start(topts);
    const double on = time_ms(pass);
    util::telemetry_stop();
    util::trace_stacks_disable();
    row.heartbeats = util::telemetry_heartbeat_count();
    row.samples = static_cast<long>(profiler.ticks());
    return on;
  };
  double best_off = 1e300, best_on = 1e300;
  std::vector<double> diffs;
  for (int t = 0; t < reps; ++t) {
    // Alternate arm order — see ledger_case.
    double off, on;
    if (t % 2 == 0) {
      off = time_ms(pass);
      on = on_arm();
    } else {
      on = on_arm();
      off = time_ms(pass);
    }
    best_off = std::min(best_off, off);
    best_on = std::min(best_on, on);
    diffs.push_back(on - off);
  }
  util::progress_reset();
  std::remove(hb_path);
  row.off_ms = best_off / reps_inner;
  row.on_ms = best_on / reps_inner;
  std::nth_element(diffs.begin(), diffs.begin() + diffs.size() / 2,
                   diffs.end());
  const double median_diff = diffs[diffs.size() / 2] / reps_inner;
  row.overhead_pct = row.off_ms > 0 ? 100.0 * median_diff / row.off_ms : 0;
  return row;
}

/// Digest of one campaign's results — coverage bits plus the per-fault
/// detected mask — for serve_case's bit-identical cross-check.
std::uint64_t result_digest(double coverage, const std::vector<bool>& det) {
  std::uint64_t d;
  static_assert(sizeof(d) == sizeof(coverage), "double is 8 bytes");
  std::memcpy(&d, &coverage, sizeof(d));
  for (std::size_t i = 0; i < det.size(); ++i)
    d = (d ^ (det[i] ? i * 2 + 1 : i * 2)) * 1099511628211ull;
  return d;
}

struct ServeRow {
  std::string case_name;
  long scrapes = 0;  ///< endpoint responses answered during the on passes
  bool identical = false;  ///< result digest equal across both arms
  double off_ms = 0, on_ms = 0;
  double overhead_pct = 0;  ///< median paired difference / best off pass
};

/// Times one campaign bare vs with the observability endpoint attached
/// AND actively scraped: an ObservabilityServer on an ephemeral port plus
/// a client thread cycling through the read endpoints every 25 ms — two
/// orders of magnitude faster than a default Prometheus scrape_interval,
/// but throttled, because an unthrottled loopback client measures CPU
/// contention on small machines, not the endpoint's cost. Server/poller
/// spawn and join sit OUTSIDE the timed region (same rationale as
/// telemetry_case: the budget is the steady-state cost a scraped
/// campaign pays). The campaign returns a digest of its fault-sim
/// results; `identical` records that the scraped arm produced
/// bit-identical results — the endpoint observes the workload, it never
/// steers it. Acceptance budget for the serve PR: <= 2% overhead.
ServeRow serve_case(const std::string& name,
                    const std::function<std::uint64_t()>& campaign,
                    int reps_inner, int reps) {
  ServeRow row;
  row.case_name = name;
  std::uint64_t digest_off = 0, digest_on = 0;
  const auto pass = [&] {
    // FNV-1a fold of the per-rep digests, so ordering matters too.
    std::uint64_t d = 1469598103934665603ull;
    for (int r = 0; r < reps_inner; ++r) {
      d ^= campaign();
      d *= 1099511628211ull;
    }
    return d;
  };
  const auto off_arm = [&] { return time_ms([&] { digest_off = pass(); }); };
  const auto on_arm = [&] {
    observe::ObservabilityServer server;
    observe::ServeOptions sopts;
    sopts.port = 0;  // ephemeral — no collision dance across reps
    sopts.command = "bench";
    std::string err;
    if (!server.start(sopts, &err)) {
      std::fprintf(stderr, "serve bench: %s\n", err.c_str());
      return time_ms([&] { digest_on = pass(); });
    }
    std::atomic<bool> stop{false};
    std::thread poller([&server, &stop] {
      static const char* kTargets[] = {"/metrics", "/progress", "/jobs",
                                       "/healthz", "/"};
      std::size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        util::http_get("127.0.0.1", server.port(),
                       kTargets[i++ % (sizeof(kTargets) / sizeof(*kTargets))]);
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    });
    const double on = time_ms([&] { digest_on = pass(); });
    stop.store(true, std::memory_order_relaxed);
    poller.join();
    row.scrapes += static_cast<long>(server.requests());
    server.stop();
    // A /profile hit enables span-stack recording process-wide. The
    // poller never requests one, but force recording off anyway so the
    // off arms stay bare no matter what the server did.
    util::trace_stacks_disable();
    return on;
  };
  double best_off = 1e300, best_on = 1e300;
  std::vector<double> diffs;
  row.identical = true;
  for (int t = 0; t < reps; ++t) {
    // Alternate arm order — see ledger_case.
    double off, on;
    if (t % 2 == 0) {
      off = off_arm();
      on = on_arm();
    } else {
      on = on_arm();
      off = off_arm();
    }
    if (digest_on != digest_off) row.identical = false;
    best_off = std::min(best_off, off);
    best_on = std::min(best_on, on);
    diffs.push_back(on - off);
  }
  util::progress_reset();
  row.off_ms = best_off / reps_inner;
  row.on_ms = best_on / reps_inner;
  std::nth_element(diffs.begin(), diffs.begin() + diffs.size() / 2,
                   diffs.end());
  const double median_diff = diffs[diffs.size() / 2] / reps_inner;
  row.overhead_pct = row.off_ms > 0 ? 100.0 * median_diff / row.off_ms : 0;
  return row;
}

struct SoaWidthRow {
  std::string case_name;  ///< "<circuit>/w<lanes>" — unique bench_diff key
  int lanes = 0;
  double coverage = 0;
  double matrix_ms = 0;  ///< no-drop detection matrix (detection_masks)
  double drop_ms = 0;    ///< dropping coverage pass (fault_coverage)
  double matrix_speedup_vs_w64 = 0;
};

struct SoaThreadRow {
  std::string case_name;  ///< "<circuit>/t<threads>"
  int threads = 0;
  double matrix_ms = kSkipped;  ///< null when threads > hardware threads
};

struct SoaCase {
  std::string circuit;
  std::string backend;  ///< SIMD kernel set the wide engine dispatched to
  int gates = 0;
  std::size_t faults = 0;
  int patterns = 0;
  double lower_ms = 0;  ///< Netlist -> SimGraph lowering, paid once
  std::vector<SoaWidthRow> widths;
  std::vector<SoaThreadRow> threads;
};

/// Compiled-SoA-core section: lowering cost, then single-thread matrix and
/// dropping grading at 64/256/512 lanes (matrix is the workload wide lanes
/// exist for — every fault against every block, the N-detect/compaction
/// shape), then the 512-lane matrix across thread counts. All width rows
/// are cross-checked for bit-identical masks and detected sets.
SoaCase soa_case(const std::string& name, const gl::Netlist& n,
                 int blocks_count, int reps) {
  const auto faults = gl::enumerate_faults(n);
  const auto blocks = gl::lfsr_pattern_blocks(
      static_cast<int>(n.primary_inputs().size()), blocks_count, 0x5EED);
  SoaCase sc;
  sc.circuit = name;
  sc.backend = gl::to_string(gl::active_simd_backend());
  sc.gates = n.gate_count();
  sc.faults = faults.size();
  sc.patterns = blocks_count * 64;

  // Lowering cost: SimGraph::lower directly, since the cached
  // SimGraph::of path is free after the first call.
  long sink = 0;
  sc.lower_ms = median_ms(
      [&] {
        const gl::SimGraph g = gl::SimGraph::lower(n);
        sink += g.num_nodes();
      },
      reps + 2);
  if (sink < 0) std::fprintf(stderr, "unreachable\n");

  std::vector<std::uint64_t> ref_masks;
  std::vector<bool> ref_detected;
  for (const int lanes : {64, 256, 512}) {
    gl::FaultSimOptions o;
    o.num_threads = 1;
    o.lanes = lanes;
    SoaWidthRow row;
    row.case_name = name + "/w" + std::to_string(lanes);
    row.lanes = lanes;
    std::vector<std::uint64_t> masks;
    row.matrix_ms = median_ms(
        [&] { gl::detection_masks(n, blocks, faults, masks, o); }, reps);
    std::vector<bool> detected;
    row.drop_ms = median_ms(
        [&] {
          detected.clear();
          row.coverage = gl::fault_coverage(n, blocks, faults, &detected, o);
        },
        reps);
    if (lanes == 64) {
      ref_masks = masks;
      ref_detected = detected;
    } else if (masks != ref_masks || detected != ref_detected) {
      std::fprintf(stderr, "WARNING: %s w%d result differs from w64\n",
                   name.c_str(), lanes);
    }
    row.matrix_speedup_vs_w64 =
        sc.widths.empty() ? 1.0 : sc.widths.front().matrix_ms / row.matrix_ms;
    sc.widths.push_back(row);
  }

  const int hw = gl::FaultSimOptions{}.resolved_threads();
  for (const int t : {1, 2, 4}) {
    gl::FaultSimOptions o;
    o.num_threads = t;
    o.lanes = 512;
    SoaThreadRow row;
    row.case_name = name + "/t" + std::to_string(t);
    row.threads = t;
    if (t <= hw) {
      std::vector<std::uint64_t> masks;
      row.matrix_ms = median_ms(
          [&] { gl::detection_masks(n, blocks, faults, masks, o); }, reps);
      if (masks != ref_masks)
        std::fprintf(stderr, "WARNING: %s t%d masks differ from serial\n",
                     name.c_str(), t);
    }
    sc.threads.push_back(row);
  }
  return sc;
}

void write_json(const std::vector<PpsfpRow>& ppsfp,
                const std::vector<SeqRow>& seq,
                const std::vector<SoaCase>& soa,
                const std::vector<LedgerRow>& ledger,
                const std::vector<ProvRow>& prov,
                const std::vector<TelemetryRow>& telemetry,
                const std::vector<ServeRow>& serve, int hw, int used) {
  FILE* f = std::fopen("BENCH_faultsim.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_faultsim.json\n");
    return;
  }
  // 0x5EED seeds the LFSR pattern blocks every PPSFP case consumes (the
  // sequential cases additionally use 0xFACE for their frame streams).
  bench::write_json_preamble(f, 0x5EED);
  std::fprintf(f, "  \"hardware_concurrency\": %d,\n", hw);
  std::fprintf(f, "  \"threads_used\": %d,\n", used);
  std::fprintf(f, "  \"ppsfp\": [\n");
  for (std::size_t i = 0; i < ppsfp.size(); ++i) {
    const PpsfpRow& r = ppsfp[i];
    std::fprintf(f,
                 "    {\"circuit\": \"%s\", \"gates\": %d, \"faults\": %zu, "
                 "\"patterns\": %d, \"coverage\": %.4f, "
                 "\"serial_ms\": %.3f, \"parallel_ms\": %s, "
                 "\"speedup\": %s}%s\n",
                 r.circuit.c_str(), r.gates, r.faults, r.patterns, r.coverage,
                 r.serial_ms, num_or_null(r.parallel_ms, 3).c_str(),
                 num_or_null(r.speedup(), 2).c_str(),
                 i + 1 < ppsfp.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"sequential\": [\n");
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const SeqRow& r = seq[i];
    std::fprintf(
        f,
        "    {\"circuit\": \"%s\", \"faults\": %zu, \"frames\": %d, "
        "\"detected\": %ld, \"full_resim_ms\": %.3f, "
        "\"event_serial_ms\": %.3f, \"event_parallel_ms\": %s, "
        "\"speedup_algorithmic\": %s, \"speedup_total\": %s}%s\n",
        r.circuit.c_str(), r.faults, r.frames, r.detected, r.full_resim_ms,
        r.event_serial_ms, num_or_null(r.event_parallel_ms, 3).c_str(),
        num_or_null(r.speedup_algorithmic(), 2).c_str(),
        num_or_null(r.speedup_total(), 2).c_str(),
        i + 1 < seq.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"soa\": [\n");
  for (std::size_t i = 0; i < soa.size(); ++i) {
    const SoaCase& c = soa[i];
    std::fprintf(f,
                 "    {\"circuit\": \"%s\", \"backend\": \"%s\", "
                 "\"gates\": %d, \"faults\": %zu, \"patterns\": %d, "
                 "\"lower_ms\": %.3f,\n     \"widths\": [\n",
                 c.circuit.c_str(), c.backend.c_str(), c.gates, c.faults,
                 c.patterns, c.lower_ms);
    for (std::size_t w = 0; w < c.widths.size(); ++w) {
      const SoaWidthRow& r = c.widths[w];
      std::fprintf(f,
                   "       {\"case\": \"%s\", \"lanes\": %d, "
                   "\"coverage\": %.4f, \"matrix_ms\": %.3f, "
                   "\"drop_ms\": %.3f, \"matrix_speedup_vs_w64\": %.2f}%s\n",
                   r.case_name.c_str(), r.lanes, r.coverage, r.matrix_ms,
                   r.drop_ms, r.matrix_speedup_vs_w64,
                   w + 1 < c.widths.size() ? "," : "");
    }
    std::fprintf(f, "     ],\n     \"threads\": [\n");
    for (std::size_t t = 0; t < c.threads.size(); ++t) {
      const SoaThreadRow& r = c.threads[t];
      std::fprintf(f,
                   "       {\"case\": \"%s\", \"threads\": %d, "
                   "\"matrix_ms\": %s}%s\n",
                   r.case_name.c_str(), r.threads,
                   num_or_null(r.matrix_ms, 3).c_str(),
                   t + 1 < c.threads.size() ? "," : "");
    }
    std::fprintf(f, "     ]}%s\n", i + 1 < soa.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"ledger\": [\n");
  for (std::size_t i = 0; i < ledger.size(); ++i) {
    const LedgerRow& r = ledger[i];
    std::fprintf(f,
                 "    {\"case\": \"%s\", \"events\": %ld, "
                 "\"off_ms\": %.3f, \"on_ms\": %.3f, "
                 "\"overhead_pct\": %.2f}%s\n",
                 r.case_name.c_str(), r.events, r.off_ms, r.on_ms,
                 r.overhead_pct, i + 1 < ledger.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"provenance\": [\n");
  for (std::size_t i = 0; i < prov.size(); ++i) {
    const ProvRow& r = prov[i];
    std::fprintf(f,
                 "    {\"case\": \"%s\", \"entries\": %ld, "
                 "\"off_ms\": %.3f, \"on_ms\": %.3f, "
                 "\"overhead_pct\": %.2f}%s\n",
                 r.case_name.c_str(), r.entries, r.off_ms, r.on_ms,
                 r.overhead_pct, i + 1 < prov.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"telemetry\": [\n");
  for (std::size_t i = 0; i < telemetry.size(); ++i) {
    const TelemetryRow& r = telemetry[i];
    std::fprintf(f,
                 "    {\"case\": \"%s\", \"heartbeats\": %ld, "
                 "\"samples\": %ld, \"off_ms\": %.3f, \"on_ms\": %.3f, "
                 "\"overhead_pct\": %.2f}%s\n",
                 r.case_name.c_str(), r.heartbeats, r.samples, r.off_ms,
                 r.on_ms, r.overhead_pct,
                 i + 1 < telemetry.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"serve\": [\n");
  for (std::size_t i = 0; i < serve.size(); ++i) {
    const ServeRow& r = serve[i];
    std::fprintf(f,
                 "    {\"case\": \"%s\", \"scrapes\": %ld, "
                 "\"identical\": %s, \"off_ms\": %.3f, \"on_ms\": %.3f, "
                 "\"overhead_pct\": %.2f}%s\n",
                 r.case_name.c_str(), r.scrapes,
                 r.identical ? "true" : "false", r.off_ms, r.on_ms,
                 r.overhead_pct, i + 1 < serve.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  ");
  bench::write_metrics_field(f);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace tsyn

int main() {
  using namespace tsyn;
  const int hw = gl::FaultSimOptions{}.resolved_threads();
  bench::print_header(
      "PERF-FAULTSIM",
      "Engine claim: sharding the fault list over workers scales PPSFP with "
      "the\nhardware, and the event-driven sequential simulator beats "
      "full per-fault\nresimulation outright.");
  std::printf("hardware threads: %d\n\n", hw);

  std::vector<PpsfpRow> ppsfp;
  const gl::Netlist diffeq_scan = scan_netlist(cdfg::diffeq(), 8);
  ppsfp.push_back(ppsfp_case("diffeq_scan_w8", diffeq_scan, 8, 3));
  ppsfp.push_back(ppsfp_case("ewf_scan_w8", scan_netlist(cdfg::ewf(), 8),
                             8, 3));
  ppsfp.push_back(ppsfp_case("tseng_scan_w8", scan_netlist(cdfg::tseng(), 8),
                             8, 3));
  gl::Netlist random160_scan;
  {
    cdfg::GeneratorParams p;
    p.num_ops = 80;
    p.num_inputs = 8;
    p.num_states = 4;
    p.seed = 17;
    ppsfp.push_back(ppsfp_case("random80_scan_w8",
                               scan_netlist(cdfg::random_cdfg(p), 8), 4, 2));
    p.num_ops = 160;
    p.seed = 23;
    // The largest generated netlist: a 160-op random behavior, full scan.
    // Kept alive for the soa section below.
    random160_scan = scan_netlist(cdfg::random_cdfg(p), 8);
    ppsfp.push_back(ppsfp_case("random160_scan_w8", random160_scan, 4, 2));
  }

  util::Table pt({"circuit", "gates", "faults", "patterns", "serial ms",
                  "parallel ms", "speedup"});
  for (const PpsfpRow& r : ppsfp)
    pt.add_row({r.circuit, std::to_string(r.gates), std::to_string(r.faults),
                std::to_string(r.patterns), util::fmt(r.serial_ms, 1),
                fmt_or_dash(r.parallel_ms, 1), fmt_or_dash(r.speedup(), 2)});
  bench::print_table(pt);

  // Compiled-SoA-core rows: matrix (no-drop) and dropping grading per lane
  // width, 512-lane matrix per thread count, plus the one-time lowering
  // cost. The headline claim is the width-512 matrix speedup on the
  // largest netlist.
  std::vector<SoaCase> soa;
  soa.push_back(soa_case("diffeq_scan_w8", diffeq_scan, 8, 5));
  soa.push_back(soa_case("random160_scan_w8", random160_scan, 8, 3));

  util::Table wt({"case", "lanes", "coverage", "matrix ms", "drop ms",
                  "matrix speedup"});
  for (const SoaCase& c : soa)
    for (const SoaWidthRow& r : c.widths)
      wt.add_row({r.case_name, std::to_string(r.lanes),
                  util::fmt(r.coverage, 4), util::fmt(r.matrix_ms, 1),
                  util::fmt(r.drop_ms, 1),
                  util::fmt(r.matrix_speedup_vs_w64, 2)});
  bench::print_table(wt);

  util::Table tt({"case", "threads", "matrix ms (512 lanes)"});
  for (const SoaCase& c : soa) {
    std::printf("soa %s: backend=%s lower_ms=%s\n", c.circuit.c_str(),
                c.backend.c_str(), util::fmt(c.lower_ms, 2).c_str());
    for (const SoaThreadRow& r : c.threads)
      tt.add_row({r.case_name, std::to_string(r.threads),
                  fmt_or_dash(r.matrix_ms, 1)});
  }
  bench::print_table(tt);

  std::vector<SeqRow> seq;
  // The EXP-SEQATPG circuit set (rings L=1..6 at L+4 frames, pipelines
  // D=1..8 at D+3 frames) aggregated over enough repetitions to time the
  // microsecond-scale campaigns, plus non-scan datapath expansions.
  // Rings/pipelines are also the adversarial case for divergence tracking:
  // an XOR/NOT chain re-diverges every flop it reaches.
  {
    std::vector<gl::Netlist> circs;
    std::vector<int> nframes;
    for (int len = 1; len <= 6; ++len) {
      circs.push_back(ring_circuit(len));
      nframes.push_back(len + 4);
    }
    for (int depth = 1; depth <= 8; ++depth) {
      circs.push_back(pipeline_circuit(depth));
      nframes.push_back(depth + 3);
    }
    seq.push_back(seq_suite_case("seqatpg_rings_pipelines", circs, nframes,
                                 /*reps_inner=*/1500, /*reps=*/4));
  }
  seq.push_back(seq_case("ring48", ring_circuit(48), 60, 5));
  seq.push_back(seq_case("diffeq_noscan_w4", seq_netlist(cdfg::diffeq(), 4),
                         32, 5));
  seq.push_back(seq_case("iir_noscan_w4", seq_netlist(cdfg::iir_biquad(), 4),
                         32, 5));
  seq.push_back(seq_case("tseng_noscan_w4", seq_netlist(cdfg::tseng(), 4),
                         32, 5));

  util::Table st({"circuit", "faults", "frames", "full resim ms",
                  "event serial ms", "event parallel ms", "alg speedup",
                  "total speedup"});
  for (const SeqRow& r : seq)
    st.add_row({r.circuit, std::to_string(r.faults), std::to_string(r.frames),
                util::fmt(r.full_resim_ms, 1),
                util::fmt(r.event_serial_ms, 1),
                fmt_or_dash(r.event_parallel_ms, 1),
                util::fmt(r.speedup_algorithmic(), 2),
                fmt_or_dash(r.speedup_total(), 2)});
  bench::print_table(st);

  // Fault-ledger recording cost on the two engine shapes the ledger hooks
  // into: a serial PPSFP block run and a serial sequential campaign.
  std::vector<LedgerRow> ledger;
  {
    const gl::Netlist n = scan_netlist(cdfg::diffeq(), 8);
    const auto faults = gl::enumerate_faults(n);
    const auto blocks = gl::lfsr_pattern_blocks(
        static_cast<int>(n.primary_inputs().size()), 8, 0x5EED);
    ledger.push_back(ledger_case(
        "diffeq_scan_w8_ppsfp",
        [&] {
          gl::fault_coverage(n, blocks, faults, nullptr,
                             gl::FaultSimOptions{1});
        },
        /*reps_inner=*/4, /*reps=*/15));
  }
  {
    const gl::Netlist n = seq_netlist(cdfg::diffeq(), 4);
    const auto faults = gl::enumerate_faults(n);
    const auto frames = gl::lfsr_pattern_blocks(
        static_cast<int>(n.primary_inputs().size()), 32, 0xFACE);
    ledger.push_back(ledger_case(
        "diffeq_noscan_w4_seq",
        [&] {
          gl::sequential_fault_sim(n, frames, faults, gl::FaultSimOptions{1});
        },
        /*reps_inner=*/1, /*reps=*/15));
  }

  util::Table lt({"case", "events", "ledger off ms", "ledger on ms",
                  "overhead"});
  for (const LedgerRow& r : ledger)
    lt.add_row({r.case_name, std::to_string(r.events),
                util::fmt(r.off_ms, 2), util::fmt(r.on_ms, 2),
                util::fmt(r.overhead_pct, 1) + "%"});
  bench::print_table(lt);

  // Provenance recording cost over the full expand + serial-PPSFP
  // pipeline (budget: <= 2%).
  std::vector<ProvRow> prov;
  {
    const hls::Synthesis syn = bench::synthesize_standard(cdfg::diffeq());
    rtl::Datapath dp = syn.rtl.datapath;
    for (auto& reg : dp.regs) reg.test_kind = rtl::TestRegKind::kScan;
    prov.push_back(provenance_case("diffeq_scan_w8_expand_ppsfp", dp, 8, 8,
                                   /*reps_inner=*/16, /*reps=*/21));
  }
  {
    const hls::Synthesis syn = bench::synthesize_standard(cdfg::tseng());
    rtl::Datapath dp = syn.rtl.datapath;
    for (auto& reg : dp.regs) reg.test_kind = rtl::TestRegKind::kScan;
    prov.push_back(provenance_case("tseng_scan_w8_expand_ppsfp", dp, 8, 8,
                                   /*reps_inner=*/16, /*reps=*/21));
  }

  util::Table vt({"case", "entries", "record off ms", "record on ms",
                  "overhead"});
  for (const ProvRow& r : prov)
    vt.add_row({r.case_name, std::to_string(r.entries),
                util::fmt(r.off_ms, 2), util::fmt(r.on_ms, 2),
                util::fmt(r.overhead_pct, 1) + "%"});
  bench::print_table(vt);

  // Live-telemetry cost on the same two engine shapes: heartbeat
  // streaming + progress counters + live span stacks + the sampling
  // profiler, all running, vs everything off (budget: <= 2%).
  std::vector<TelemetryRow> telemetry;
  {
    const gl::Netlist n = scan_netlist(cdfg::diffeq(), 8);
    const auto faults = gl::enumerate_faults(n);
    const auto blocks = gl::lfsr_pattern_blocks(
        static_cast<int>(n.primary_inputs().size()), 8, 0x5EED);
    telemetry.push_back(telemetry_case(
        "diffeq_scan_w8_ppsfp",
        [&] {
          gl::fault_coverage(n, blocks, faults, nullptr,
                             gl::FaultSimOptions{1});
        },
        /*reps_inner=*/4, /*reps=*/15));
  }
  {
    const gl::Netlist n = seq_netlist(cdfg::diffeq(), 4);
    const auto faults = gl::enumerate_faults(n);
    const auto frames = gl::lfsr_pattern_blocks(
        static_cast<int>(n.primary_inputs().size()), 32, 0xFACE);
    telemetry.push_back(telemetry_case(
        "diffeq_noscan_w4_seq",
        [&] {
          gl::sequential_fault_sim(n, frames, faults, gl::FaultSimOptions{1});
        },
        /*reps_inner=*/1, /*reps=*/15));
  }

  util::Table xt({"case", "heartbeats", "samples", "telemetry off ms",
                  "telemetry on ms", "overhead"});
  for (const TelemetryRow& r : telemetry)
    xt.add_row({r.case_name, std::to_string(r.heartbeats),
                std::to_string(r.samples), util::fmt(r.off_ms, 2),
                util::fmt(r.on_ms, 2),
                util::fmt(r.overhead_pct, 1) + "%"});
  bench::print_table(xt);

  // Observability-endpoint cost under active scraping: the same two
  // engine shapes, bare vs served on an ephemeral port with a client
  // hammering the read endpoints for the whole pass. Each row also
  // cross-checks that the scraped arm's coverage and detected mask are
  // bit-identical to the bare arm's (budget: <= 2%).
  std::vector<ServeRow> serve;
  {
    const gl::Netlist n = scan_netlist(cdfg::diffeq(), 8);
    const auto faults = gl::enumerate_faults(n);
    const auto blocks = gl::lfsr_pattern_blocks(
        static_cast<int>(n.primary_inputs().size()), 8, 0x5EED);
    serve.push_back(serve_case(
        "diffeq_scan_w8_ppsfp",
        [&]() -> std::uint64_t {
          std::vector<bool> detected;
          const double cov = gl::fault_coverage(n, blocks, faults, &detected,
                                                gl::FaultSimOptions{1});
          return result_digest(cov, detected);
        },
        /*reps_inner=*/16, /*reps=*/15));
  }
  {
    const gl::Netlist n = seq_netlist(cdfg::diffeq(), 4);
    const auto faults = gl::enumerate_faults(n);
    const auto frames = gl::lfsr_pattern_blocks(
        static_cast<int>(n.primary_inputs().size()), 32, 0xFACE);
    serve.push_back(serve_case(
        "diffeq_noscan_w4_seq",
        [&]() -> std::uint64_t {
          const std::vector<bool> detected = gl::sequential_fault_sim(
              n, frames, faults, gl::FaultSimOptions{1});
          const long hits =
              std::count(detected.begin(), detected.end(), true);
          return result_digest(static_cast<double>(hits), detected);
        },
        /*reps_inner=*/4, /*reps=*/15));
  }

  util::Table et({"case", "scrapes", "identical", "serve off ms",
                  "serve on ms", "overhead"});
  for (const ServeRow& r : serve)
    et.add_row({r.case_name, std::to_string(r.scrapes),
                r.identical ? "yes" : "NO", util::fmt(r.off_ms, 2),
                util::fmt(r.on_ms, 2), util::fmt(r.overhead_pct, 1) + "%"});
  bench::print_table(et);

  write_json(ppsfp, seq, soa, ledger, prov, telemetry, serve, hw, hw);
  std::printf(
      "Wrote BENCH_faultsim.json. Shape check: PPSFP speedup should track "
      "the\nhardware thread count (>= 3x on >= 4 cores, skipped on 1 core); "
      "the\nevent-driven sequential engine should win on every circuit "
      "regardless of\ncores; the 512-lane matrix speedup should reach >= 3x "
      "on the largest\nnetlist; ledger recording overhead should stay within "
      "5%%; provenance\nrecording within 2%%; live telemetry (heartbeats + "
      "stacks + sampler)\nwithin 2%%; the scraped observability endpoint "
      "within 2%% with every\nserve row identical=yes.\n");
  return 0;
}
