// EXP-KLEVEL — non-scan DFT with k-level test points (§4.2, [15]).
//
// Making every loop k-level (k > 0) controllable/observable needs far
// fewer insertions than the k=0 rule (a scan register in every loop),
// while random-pattern fault coverage of the non-scan design stays high.
#include "common.h"

#include "gatelevel/bistgen.h"
#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "gatelevel/faultsim.h"
#include "rtl/sgraph.h"
#include "testability/rtl_scan.h"
#include "testability/testpoints.h"
#include "util/rng.h"

namespace tsyn {
namespace {

/// Random-pattern sequential fault coverage of the (non-scan) datapath
/// with free control lines, over a sampled fault list.
double nonscan_coverage(const rtl::Datapath& dp, int frames_count,
                        int max_faults) {
  gl::ExpandOptions opts;
  opts.width_override = 4;
  opts.respect_scan = false;  // nothing is scanned: pure test points
  const gl::ExpandedDesign x = gl::expand_datapath(dp, opts);
  auto faults = gl::enumerate_faults(x.netlist);
  if (static_cast<int>(faults.size()) > max_faults) {
    std::vector<gl::Fault> sampled;
    const std::size_t stride = faults.size() / max_faults;
    for (std::size_t i = 0; i < faults.size(); i += stride)
      sampled.push_back(faults[i]);
    faults = std::move(sampled);
  }
  util::Rng rng(0x515);
  std::vector<std::vector<gl::Bits>> frames(frames_count);
  for (auto& frame : frames) {
    frame.resize(x.netlist.primary_inputs().size());
    for (auto& bits : frame) bits = gl::Bits::known(rng.next_u64());
  }
  const auto detected = gl::sequential_fault_sim(x.netlist, frames, faults);
  long hit = 0;
  for (bool d : detected) hit += d;
  return faults.empty() ? 1.0
                        : static_cast<double>(hit) /
                              static_cast<double>(faults.size());
}

}  // namespace
}  // namespace tsyn

int main() {
  using namespace tsyn;
  bench::print_header(
      "EXP-KLEVEL",
      "Paper claim (§4.2, [15]): making loops k-level (k>0) controllable "
      "and observable\nneeds significantly fewer test points than direct "
      "(k=0) access while keeping\nfault coverage high.");

  util::Table table({"benchmark", "method", "insertions",
                     "k-level violations", "coverage (random, non-scan)"});
  std::vector<cdfg::Cdfg> graphs;
  graphs.push_back(cdfg::iir_biquad());
  graphs.push_back(cdfg::diffeq());
  graphs.push_back(cdfg::ar_lattice(6));
  graphs.push_back(cdfg::wave_filter(8));
  for (const cdfg::Cdfg& g : graphs) {
    // Tight allocation: heavy sharing, many loops — the regime where DFT
    // insertions matter.
    hls::SynthesisOptions so;
    so.resources = hls::Resources{{cdfg::FuType::kAlu, 1},
                                  {cdfg::FuType::kMultiplier, 1}};
    const hls::Synthesis syn = hls::synthesize(g, so);

    // Reference: conventional partial scan (a scan register per loop,
    // register MFVS).
    {
      rtl::Datapath dp = syn.rtl.datapath;
      const auto scan = testability::register_only_partial_scan(dp);
      table.add_row({g.name(), "partial scan (MFVS)",
                     std::to_string(scan.size()), "0", "-"});
    }
    // k = 0..2 test points (k=0 = direct access in every loop, the
    // conventional rule recast as test points).
    for (int k = 0; k <= 2; ++k) {
      rtl::Datapath dp = syn.rtl.datapath;
      const testability::TestPointResult r =
          testability::insert_klevel_test_points(dp, k, true);
      const int violations = testability::klevel_violations(
          dp, k, r.control_point_regs, r.observe_point_regs);
      const double cov = nonscan_coverage(dp, 40, 400);
      table.add_row({g.name(), "k=" + std::to_string(k) + " test points",
                     std::to_string(r.total()),
                     std::to_string(violations), util::fmt_pct(cov)});
    }
    // Coverage without any DFT, for reference.
    {
      const double cov = nonscan_coverage(syn.rtl.datapath, 40, 400);
      table.add_row({g.name(), "no DFT", "0", "-", util::fmt_pct(cov)});
    }
  }
  bench::print_table(table);
  return 0;
}
