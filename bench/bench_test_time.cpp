// EXP-TESTTIME — test application time: where partial scan pays off.
//
// Every scan pattern costs chain-length shift cycles, so tester time is
// patterns x (chain + 1). The pattern count is dominated by the
// combinational logic (measured once, on the full-scan design); the chain
// length is what the scan configuration controls. High-level partial scan
// keeps the chain short and therefore the test time low — the practical
// payoff behind §3's scan-register minimization. The same designs are also
// graded for the §7b methodologies (transition and IDDQ).
#include "common.h"

#include "gatelevel/atpg_comb.h"
#include "gatelevel/bistgen.h"
#include "gatelevel/delay_iddq.h"
#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "gatelevel/faultsim.h"
#include "graph/mfvs.h"
#include "rtl/scan_chain.h"
#include "rtl/sgraph.h"
#include "testability/scan_select.h"

int main() {
  using namespace tsyn;
  bench::print_header(
      "EXP-TESTTIME",
      "Tester time = patterns x (scan chain + 1). Shorter partial-scan "
      "chains\n(§3 selection) cut application time at the same pattern "
      "count; transition and\nIDDQ gradings (§7b) of the full-scan design "
      "included.");

  util::Table table({"benchmark", "scan config", "chain bits",
                     "ATPG patterns", "stuck-at cov", "tester cycles",
                     "time vs full"});
  util::Table grading({"benchmark", "stuck-at cov", "transition cov",
                       "IDDQ cov"});
  std::vector<cdfg::Cdfg> graphs;
  graphs.push_back(cdfg::diffeq());
  graphs.push_back(cdfg::iir_biquad());
  graphs.push_back(cdfg::ar_lattice(4));
  graphs.push_back(cdfg::ewf());
  for (const cdfg::Cdfg& g : graphs) {
    hls::Synthesis syn = bench::synthesize_standard(g);

    // Pattern count and coverage, measured once on the full-scan design.
    rtl::Datapath full = syn.rtl.datapath;
    for (auto& reg : full.regs) reg.test_kind = rtl::TestRegKind::kScan;
    gl::ExpandOptions x;
    x.width_override = 4;
    const gl::ExpandedDesign e = gl::expand_datapath(full, x);
    const auto faults = gl::enumerate_faults(e.netlist);
    const gl::AtpgCampaign campaign =
        gl::run_combinational_atpg(e.netlist, faults);
    const int patterns = static_cast<int>(campaign.tests.size());

    const rtl::ScanChainPlan full_chain = rtl::build_scan_chain(full);
    const long full_cycles = full_chain.test_cycles(patterns);
    table.add_row({g.name(), "full scan",
                   std::to_string(full_chain.chain_bits),
                   std::to_string(patterns),
                   util::fmt_pct(campaign.fault_coverage),
                   std::to_string(full_cycles), "1.00x"});

    // Partial scan: [33] selection + RTL completion of remaining loops.
    rtl::Datapath partial = syn.rtl.datapath;
    const auto vars = testability::select_scan_vars_loopcut(g);
    testability::apply_scan(g, syn.binding, vars, partial);
    for (int r : graph::greedy_mfvs(
             rtl::build_sgraph(partial, /*exclude_scan=*/true),
             {.ignore_self_loops = true}))
      partial.regs[r].test_kind = rtl::TestRegKind::kScan;
    const rtl::ScanChainPlan part_chain = rtl::build_scan_chain(partial);
    const long part_cycles = part_chain.test_cycles(patterns);
    table.add_row(
        {g.name(), "partial scan [33]",
         std::to_string(part_chain.chain_bits), std::to_string(patterns),
         "see EXP-SCANSEL", std::to_string(part_cycles),
         util::fmt(static_cast<double>(part_cycles) / full_cycles, 2) + "x"});

    // §7b gradings on the full-scan design under a fixed random budget.
    const auto blocks = gl::lfsr_pattern_blocks(
        static_cast<int>(e.netlist.primary_inputs().size()), 4, 11);
    const auto tf = gl::enumerate_transition_faults(e.netlist);
    grading.add_row(
        {g.name(), util::fmt_pct(gl::fault_coverage(e.netlist, blocks, faults)),
         util::fmt_pct(gl::transition_fault_coverage(e.netlist, blocks, tf)),
         util::fmt_pct(gl::iddq_fault_coverage(e.netlist, blocks, faults))});
  }
  bench::print_table(table);
  std::printf("Random-budget grading (256 patterns, full-scan designs):\n");
  bench::print_table(grading);
  return 0;
}
