// FIG1 — reproduces Figure 1 of the paper.
//
// The example CDFG (two addition chains), 3 control steps, 2 adders.
// Schedule/assignment (b) creates the assignment loop RA1->RA2->RA1 and
// needs one scan register to break it; schedule/assignment (c) confines
// each chain to one adder and leaves only tolerable self-loops, needing no
// scan register. The loop-avoiding synthesis of [33] must find a
// loop-free solution automatically.
#include "common.h"

#include "graph/mfvs.h"
#include "hls/datapath_builder.h"
#include "rtl/sgraph.h"
#include "testability/loop_avoid.h"

namespace tsyn {
namespace {

struct Row {
  std::string label;
  hls::Schedule schedule;
  hls::Binding binding;
};

void report(util::Table& table, const cdfg::Cdfg& g, const Row& row) {
  const hls::RtlDesign rtl = hls::build_rtl(g, row.schedule, row.binding);
  const rtl::LoopStats stats = rtl::loop_stats(rtl.datapath);
  // Scan registers needed to break all non-self loops: exact MFVS on the
  // S-graph.
  const graph::Digraph s = rtl::build_sgraph(rtl.datapath);
  const auto scan = graph::exact_mfvs(s, {.ignore_self_loops = true});
  table.add_row({row.label, std::to_string(row.schedule.num_steps),
                 std::to_string(row.binding.num_fus()),
                 std::to_string(row.binding.num_regs),
                 std::to_string(stats.self_loops),
                 std::to_string(stats.assignment_loops),
                 std::to_string(scan.size())});
}

}  // namespace
}  // namespace tsyn

int main() {
  using namespace tsyn;
  bench::print_header(
      "FIG1",
      "Paper claim (Fig. 1): assignment (b) forms loop RA1->RA2->RA1 -> 1 "
      "scan register;\nassignment (c) leaves self-loops only -> 0 scan "
      "registers; [33] finds (c)-like\nsolutions automatically.");

  const cdfg::Cdfg g = cdfg::fig1_example();
  util::Table table({"flow", "csteps", "adders", "regs", "self-loops",
                     "assignment-loops", "scan regs needed"});

  // (b): the paper's loop-forming schedule.
  {
    hls::Schedule s;
    s.num_steps = 3;
    s.step_of_op = {0, 1, 1, 2, 2};  // +1,+2,+3,+4,+5
    const hls::Binding b =
        hls::make_binding_with_fu_map(g, s, {0, 1, 0, 1, 0});
    report(table, g, {"fig1(b) blind", s, b});
  }
  // (c): the paper's loop-free alternative.
  {
    hls::Schedule s;
    s.num_steps = 3;
    s.step_of_op = {0, 1, 0, 1, 2};
    const hls::Binding b =
        hls::make_binding_with_fu_map(g, s, {0, 0, 1, 1, 0});
    report(table, g, {"fig1(c) manual", s, b});
  }
  // [33]: simultaneous scheduling & assignment.
  {
    testability::LoopAvoidOptions opts;
    opts.resources = hls::Resources{{cdfg::FuType::kAlu, 2}};
    opts.num_steps = 3;
    const testability::LoopAvoidResult r =
        testability::loop_avoiding_synthesis(g, opts);
    report(table, g, {"[33] loop-avoiding", r.schedule, r.binding});
  }
  bench::print_table(table);
  return 0;
}
