// Microbenchmarks of the computational kernels (google-benchmark):
// scheduling, binding, S-graph loop analysis, gate expansion, fault
// simulation and PODEM. These bound the cost of the experiment harnesses.
#include <benchmark/benchmark.h>

#include "cdfg/benchmarks.h"
#include "gatelevel/atpg_comb.h"
#include "gatelevel/bistgen.h"
#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "gatelevel/faultsim.h"
#include "hls/fds.h"
#include "hls/synthesis.h"
#include "rtl/sgraph.h"
#include "testability/loop_avoid.h"

namespace {

using namespace tsyn;

hls::Resources res() {
  return hls::Resources{{cdfg::FuType::kAlu, 2},
                        {cdfg::FuType::kMultiplier, 2}};
}

void BM_ListSchedule(benchmark::State& state) {
  const cdfg::Cdfg g = cdfg::ewf();
  for (auto _ : state)
    benchmark::DoNotOptimize(hls::list_schedule(g, res()));
}
BENCHMARK(BM_ListSchedule);

void BM_ForceDirectedSchedule(benchmark::State& state) {
  const cdfg::Cdfg g = cdfg::ewf();
  const int deadline = hls::list_schedule(g, res()).num_steps;
  for (auto _ : state)
    benchmark::DoNotOptimize(hls::force_directed_schedule(g, deadline));
}
BENCHMARK(BM_ForceDirectedSchedule);

void BM_ConventionalBinding(benchmark::State& state) {
  const cdfg::Cdfg g = cdfg::ewf();
  const hls::Schedule s = hls::list_schedule(g, res());
  for (auto _ : state)
    benchmark::DoNotOptimize(hls::make_binding(g, s));
}
BENCHMARK(BM_ConventionalBinding);

void BM_LoopAvoidingSynthesis(benchmark::State& state) {
  const cdfg::Cdfg g = cdfg::ewf();
  testability::LoopAvoidOptions opts;
  opts.resources = res();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        testability::loop_avoiding_synthesis(g, opts));
}
BENCHMARK(BM_LoopAvoidingSynthesis);

void BM_SgraphLoopAnalysis(benchmark::State& state) {
  hls::SynthesisOptions opts;
  opts.resources = res();
  const hls::Synthesis syn = hls::synthesize(cdfg::ewf(), opts);
  for (auto _ : state)
    benchmark::DoNotOptimize(rtl::loop_stats(syn.rtl.datapath));
}
BENCHMARK(BM_SgraphLoopAnalysis);

void BM_GateExpansion(benchmark::State& state) {
  hls::SynthesisOptions opts;
  opts.resources = res();
  const hls::Synthesis syn = hls::synthesize(cdfg::diffeq(), opts);
  gl::ExpandOptions x;
  x.width_override = static_cast<int>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(gl::expand_datapath(syn.rtl.datapath, x));
}
BENCHMARK(BM_GateExpansion)->Arg(4)->Arg(8)->Arg(16);

void BM_FaultSimulation(benchmark::State& state) {
  hls::SynthesisOptions opts;
  opts.resources = res();
  const hls::Synthesis syn = hls::synthesize(cdfg::diffeq(), opts);
  rtl::Datapath dp = syn.rtl.datapath;
  for (auto& reg : dp.regs) reg.test_kind = rtl::TestRegKind::kScan;
  gl::ExpandOptions x;
  x.width_override = static_cast<int>(state.range(0));
  const gl::ExpandedDesign design = gl::expand_datapath(dp, x);
  const auto faults = gl::enumerate_faults(design.netlist);
  const auto blocks = gl::lfsr_pattern_blocks(
      static_cast<int>(design.netlist.primary_inputs().size()), 4, 99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gl::fault_coverage(design.netlist, blocks, faults));
  }
  state.counters["faults"] = static_cast<double>(faults.size());
  state.counters["gates"] = design.netlist.gate_count();
}
BENCHMARK(BM_FaultSimulation)->Arg(4)->Arg(8);

// Serial vs sharded PPSFP on the same workload: Arg is the worker count
// (1 = the bit-identical serial path).
void BM_FaultSimulationThreads(benchmark::State& state) {
  hls::SynthesisOptions opts;
  opts.resources = res();
  const hls::Synthesis syn = hls::synthesize(cdfg::ewf(), opts);
  rtl::Datapath dp = syn.rtl.datapath;
  for (auto& reg : dp.regs) reg.test_kind = rtl::TestRegKind::kScan;
  gl::ExpandOptions x;
  x.width_override = 8;
  const gl::ExpandedDesign design = gl::expand_datapath(dp, x);
  const auto faults = gl::enumerate_faults(design.netlist);
  const auto blocks = gl::lfsr_pattern_blocks(
      static_cast<int>(design.netlist.primary_inputs().size()), 4, 99);
  gl::FaultSimOptions fopts;
  fopts.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gl::fault_coverage(design.netlist, blocks, faults, nullptr, fopts));
  }
  state.counters["faults"] = static_cast<double>(faults.size());
  state.counters["gates"] = design.netlist.gate_count();
}
BENCHMARK(BM_FaultSimulationThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_SequentialFaultSim(benchmark::State& state) {
  // Non-scan diffeq expansion: the sequential engine's natural workload.
  hls::SynthesisOptions opts;
  opts.resources = res();
  const hls::Synthesis syn = hls::synthesize(cdfg::diffeq(), opts);
  gl::ExpandOptions x;
  x.width_override = 4;
  const gl::ExpandedDesign design = gl::expand_datapath(syn.rtl.datapath, x);
  const auto faults = gl::enumerate_faults(design.netlist);
  const auto blocks = gl::lfsr_pattern_blocks(
      static_cast<int>(design.netlist.primary_inputs().size()), 8, 42);
  const bool event_driven = state.range(0) != 0;
  for (auto _ : state) {
    if (event_driven)
      benchmark::DoNotOptimize(
          gl::sequential_fault_sim(design.netlist, blocks, faults));
    else
      benchmark::DoNotOptimize(gl::sequential_fault_sim_full_resim(
          design.netlist, blocks, faults));
  }
  state.counters["faults"] = static_cast<double>(faults.size());
  state.counters["flops"] =
      static_cast<double>(design.netlist.flops().size());
}
BENCHMARK(BM_SequentialFaultSim)->Arg(0)->Arg(1);

void BM_PodemCampaign(benchmark::State& state) {
  gl::Netlist n;
  const gl::Word a = gl::make_input_word(n, "a", 8);
  const gl::Word b = gl::make_input_word(n, "b", 8);
  const gl::Word s = gl::ripple_add(n, a, b, n.add_const(false));
  for (int bit : s) n.mark_output(bit);
  const auto faults = gl::enumerate_faults(n);
  for (auto _ : state)
    benchmark::DoNotOptimize(gl::run_combinational_atpg(n, faults));
  state.counters["faults"] = static_cast<double>(faults.size());
}
BENCHMARK(BM_PodemCampaign);

}  // namespace
