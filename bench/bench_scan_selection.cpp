// EXP-SCANSEL — scan selection at the behavioral level vs the gate-level
// MFVS transplant (§3.3.1, [33],[24] vs [10],[22]).
//
// All selectors break every CDFG loop; the high-level ones pick variables
// that SHARE scan registers, so the physical scan count after binding is
// lower — the survey's "significantly fewer scan FFs than conventional
// processes".
#include "common.h"

#include "cdfg/loops.h"
#include "hls/datapath_builder.h"
#include "rtl/area.h"
#include "rtl/sgraph.h"
#include "testability/rtl_scan.h"
#include "testability/scan_select.h"

int main() {
  using namespace tsyn;
  bench::print_header(
      "EXP-SCANSEL",
      "Paper claim (§3.3): selecting scan VARIABLES for register sharing "
      "([33],[24])\nbreaks all CDFG loops with fewer scan registers than "
      "the gate-level MFVS rule.");

  util::Table table({"benchmark", "selector", "scan vars", "scan regs",
                     "loops broken", "area overhead"});
  for (const cdfg::Cdfg& g : cdfg::standard_benchmarks()) {
    const auto loops = cdfg::cdfg_loops(g);
    if (loops.empty()) continue;
    const hls::Synthesis syn = bench::synthesize_standard(g);

    // Gate-level-style baseline: partial scan selected on the synthesized
    // RTL S-graph, where hardware-sharing loops inflate the requirement.
    {
      const auto rtl_scan =
          testability::register_only_partial_scan(syn.rtl.datapath);
      rtl::Datapath dp = syn.rtl.datapath;
      for (int reg : rtl_scan)
        dp.regs[reg].test_kind = rtl::TestRegKind::kScan;
      table.add_row({g.name(), "RTL MFVS (post-synth)", "-",
                     std::to_string(rtl_scan.size()), "all RTL loops",
                     util::fmt_pct(rtl::test_area_overhead(dp))});
    }

    struct Selector {
      std::string name;
      std::vector<cdfg::VarId> (*run)(const cdfg::Cdfg&);
    };
    const Selector selectors[] = {
        {"MFVS [10]", testability::select_scan_vars_mfvs},
        {"loop-cut [33]", testability::select_scan_vars_loopcut},
        {"boundary [24]", testability::select_scan_vars_boundary},
    };
    for (const Selector& sel : selectors) {
      const auto vars = sel.run(g);
      rtl::Datapath dp = syn.rtl.datapath;
      const int regs =
          testability::apply_scan(g, syn.binding, vars, dp);
      const bool broken = cdfg::breaks_all_cdfg_loops(g, vars);
      table.add_row({g.name(), sel.name, std::to_string(vars.size()),
                     std::to_string(regs),
                     broken ? std::to_string(loops.size()) + "/" +
                                  std::to_string(loops.size())
                            : "INCOMPLETE",
                     util::fmt_pct(rtl::test_area_overhead(dp))});
    }
  }
  bench::print_table(table);
  return 0;
}
