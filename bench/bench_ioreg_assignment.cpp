// EXP-IOREG — register controllability/observability via assignment
// (§3.2, [25],[26]).
//
// Conventional left-edge allocation minimizes registers only; the
// I/O-maximizing assignment of Lee et al. connects (almost) every register
// to primary I/O at (near-)minimal register count, and mobility-path
// rescheduling shrinks the residue further.
#include "common.h"

#include "cdfg/lifetime.h"
#include "hls/datapath_builder.h"
#include "rtl/sgraph.h"
#include "testability/mobility_sched.h"
#include "testability/reg_assign.h"
#include "testability/testpoints.h"

namespace {

/// Mean register control+observe distance (cycles to reach from / observe
/// at primary I/O); unreachable registers count as 2x the worst distance.
std::string mean_co_distance(const tsyn::rtl::Datapath& dp) {
  const tsyn::testability::CoDistances d =
      tsyn::testability::co_distances(dp, {}, {});
  int worst = 1;
  for (int r = 0; r < dp.num_regs(); ++r) {
    worst = std::max(worst, d.control[r]);
    worst = std::max(worst, d.observe[r]);
  }
  double sum = 0;
  for (int r = 0; r < dp.num_regs(); ++r) {
    sum += d.control[r] < 0 ? 2.0 * worst : d.control[r];
    sum += d.observe[r] < 0 ? 2.0 * worst : d.observe[r];
  }
  return tsyn::util::fmt(sum / (2 * dp.num_regs()), 2);
}

}  // namespace

int main() {
  using namespace tsyn;
  bench::print_header(
      "EXP-IOREG",
      "Paper claim (§3.2): assigning variables to maximize I/O registers "
      "improves\ncontrollability/observability of the data path at a "
      "minimum register count;\nmobility-path scheduling [26] helps "
      "further.");

  util::Table table({"benchmark", "flow", "regs", "I/O regs", "extra regs",
                     "mean C/O distance"});
  for (const cdfg::Cdfg& g : cdfg::standard_benchmarks()) {
    const hls::Synthesis syn = bench::synthesize_standard(g);

    auto add_row = [&](const std::string& flow, const hls::Schedule& s,
                       const std::vector<int>& reg_map, int num_regs,
                       int io_regs) {
      hls::Binding b = syn.binding;
      hls::rebind_registers(g, b, reg_map);
      const hls::RtlDesign rtl = hls::build_rtl(g, s, b);
      table.add_row({g.name(), flow, std::to_string(num_regs),
                     std::to_string(io_regs),
                     std::to_string(num_regs - io_regs),
                     mean_co_distance(rtl.datapath)});
    };

    // Conventional left-edge.
    add_row("left-edge", syn.schedule, syn.binding.reg_of_lifetime,
            syn.binding.num_regs,
            testability::io_register_count(syn.binding.lifetimes,
                                           syn.binding.reg_of_lifetime));
    // [25] I/O-maximizing assignment.
    const testability::IoAssignResult io =
        testability::io_maximizing_assignment(syn.binding.lifetimes);
    add_row("[25] io-max", syn.schedule, io.reg_of_lifetime, io.num_regs,
            io.num_io_regs);
    // [26] mobility-path scheduling + [25] assignment.
    const hls::Schedule ms = testability::mobility_path_schedule(
        g, syn.schedule.num_steps, bench::standard_resources());
    const cdfg::LifetimeAnalysis mlts =
        cdfg::analyze_lifetimes(g, ms.step_of_op, ms.num_steps);
    const testability::IoAssignResult mio =
        testability::io_maximizing_assignment(mlts);
    {
      hls::Binding mb = hls::make_binding(g, ms);
      hls::rebind_registers(g, mb, mio.reg_of_lifetime);
      const hls::RtlDesign rtl = hls::build_rtl(g, ms, mb);
      table.add_row({g.name(), "[26]+[25] mobility",
                     std::to_string(mio.num_regs),
                     std::to_string(mio.num_io_regs),
                     std::to_string(mio.num_regs - mio.num_io_regs),
                     mean_co_distance(rtl.datapath)});
    }
  }
  bench::print_table(table);
  return 0;
}
