// EXP-CTRL — controller-based DFT for controller/datapath composites
// (§3.5, [14]).
//
// The functional control vectors imply value combinations that never
// co-occur; sequential ATPG on the composite then conflicts and aborts.
// Adding a few test-mode control vectors makes the combinations reachable
// and recovers testability — without touching the datapath.
#include "common.h"

#include "cdfg/benchmarks.h"
#include "gatelevel/atpg_seq.h"
#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "rtl/controller.h"
#include "testability/ctrl_dft.h"

namespace tsyn {
namespace {

struct CompositeResult {
  int detected = 0;
  int undetected = 0;
  long effort = 0;
};

/// Sequential ATPG over a fault sample of the composite circuit, starting
/// from a functionally warmed-up state (reset + a few schedule rounds with
/// fixed inputs — the standard "initialization prefix" convention).
CompositeResult composite_atpg(const rtl::Datapath& dp,
                               const rtl::Controller& ctrl,
                               int functional_vectors, bool test_mode,
                               int sample, int num_steps) {
  gl::ExpandOptions opts;
  opts.width_override = 4;
  opts.controller = &ctrl;
  opts.num_reachable_vectors = functional_vectors;
  opts.test_mode = test_mode;
  const gl::ExpandedDesign x = gl::expand_datapath(dp, opts);
  // The two straps are structurally identical, so the full collapsed fault
  // list aligns 1:1 between them; sample every Nth fault.
  const auto faults = gl::enumerate_faults(x.netlist);

  // Warm-up simulation: reset high one cycle, then 3 full rounds of the
  // (possibly extended) control sequence with constant inputs.
  int reset_pos = -1;
  for (std::size_t p = 0; p < x.netlist.primary_inputs().size(); ++p)
    if (x.netlist.node(x.netlist.primary_inputs()[p]).name == "ctl_reset")
      reset_pos = static_cast<int>(p);
  const int rounds = test_mode ? ctrl.num_vectors() : functional_vectors;
  const int warm_frames = 1 + 3 * std::max(rounds, num_steps);
  std::vector<std::vector<gl::Bits>> warm(
      warm_frames, std::vector<gl::Bits>(x.netlist.primary_inputs().size(),
                                         gl::Bits::known(0x9)));
  for (int f = 0; f < warm_frames; ++f)
    if (reset_pos >= 0)
      warm[f][reset_pos] = f == 0 ? gl::Bits::all1() : gl::Bits::all0();
  const auto trace = gl::simulate_sequence(x.netlist, warm, nullptr);
  std::vector<gl::V> init(x.netlist.flops().size(), gl::V::kX);
  for (std::size_t fl = 0; fl < x.netlist.flops().size(); ++fl) {
    const int d = x.netlist.node(x.netlist.flops()[fl]).fanins[0];
    const gl::Bits& b = trace.back()[d];
    if ((b.x & 1) == 0)
      init[fl] = (b.v & 1) ? gl::V::k1 : gl::V::k0;
  }

  CompositeResult result;
  const std::size_t stride = std::max<std::size_t>(faults.size() / sample, 1);
  for (std::size_t i = 0; i < faults.size(); i += stride) {
    // The frame budget must span a full control round (which the added
    // test vectors lengthen) plus one schedule pass.
    const gl::SeqAtpgResult r = gl::sequential_atpg(
        x.netlist, faults[i], rounds + num_steps + 2, 250, &init,
        /*min_frames=*/num_steps);
    result.effort +=
        r.stats.decisions + r.stats.backtracks + r.stats.implications;
    if (r.status == gl::AtpgStatus::kDetected)
      ++result.detected;
    else
      ++result.undetected;
  }
  return result;
}

}  // namespace
}  // namespace tsyn

int main() {
  using namespace tsyn;
  bench::print_header(
      "EXP-CTRL",
      "Paper claim (§3.5, [14]): eliminating control-signal implication "
      "conflicts with\na few extra control vectors yields highly testable "
      "controller/data path\ncomposites at marginal overhead.");

  util::Table conflicts({"benchmark", "signals", "functional vectors",
                         "pair conflicts", "vectors added",
                         "pair coverage before", "after"});
  util::Table atpg({"benchmark", "controller", "sampled faults detected",
                    "detect rate", "ATPG effort"});

  // Feed-forward behaviors: their composite state is fully initializable
  // by a functional warm-up, isolating the CONTROL reachability question
  // the technique addresses. (Loop-carried state that cannot be
  // initialized is the partial-scan problem of §3.3, not [14]'s.)
  std::vector<cdfg::Cdfg> graphs;
  graphs.push_back(cdfg::tseng());
  graphs.push_back(cdfg::dct4());
  graphs.push_back(cdfg::fig1_example());
  for (const cdfg::Cdfg& g : graphs) {
    hls::Synthesis syn = bench::synthesize_standard(g);
    const int functional = syn.rtl.controller.num_vectors();
    const testability::ControllerDftResult dft =
        testability::apply_controller_dft(syn.rtl.controller);
    conflicts.add_row({g.name(),
                       std::to_string(syn.rtl.controller.num_signals()),
                       std::to_string(functional),
                       std::to_string(dft.conflicts_before),
                       std::to_string(dft.vectors_added),
                       util::fmt_pct(dft.pair_coverage_before),
                       util::fmt_pct(dft.pair_coverage_after)});

    const int sample = 18;
    const CompositeResult before =
        composite_atpg(syn.rtl.datapath, syn.rtl.controller, functional,
                       /*test_mode=*/false, sample, syn.schedule.num_steps);
    const CompositeResult after =
        composite_atpg(syn.rtl.datapath, syn.rtl.controller, functional,
                       /*test_mode=*/true, sample, syn.schedule.num_steps);
    auto rate = [](const CompositeResult& r) {
      const int total = r.detected + r.undetected;
      return total == 0 ? 0.0 : static_cast<double>(r.detected) / total;
    };
    atpg.add_row({g.name(), "functional only",
                  std::to_string(before.detected) + "/" +
                      std::to_string(before.detected + before.undetected),
                  util::fmt_pct(rate(before)),
                  std::to_string(before.effort)});
    atpg.add_row({g.name(), "[14] +test vectors",
                  std::to_string(after.detected) + "/" +
                      std::to_string(after.detected + after.undetected),
                  util::fmt_pct(rate(after)),
                  std::to_string(after.effort)});
  }
  bench::print_table(conflicts);
  bench::print_table(atpg);
  return 0;
}
