// EXP-SEQATPG — the empirical law behind every technique in the survey
// (§3.1, [10],[22]): sequential ATPG effort grows steeply with the length
// of S-graph cycles and only mildly (≈linearly) with sequential depth.
//
// Workloads: (a) a register ring of length L with an invertible update —
// every fault needs state justified around the whole cycle; (b) a register
// pipeline of depth D — faults only need the fault effect marched forward.
#include "common.h"

#include "gatelevel/atpg_seq.h"
#include "gatelevel/faults.h"

namespace tsyn {
namespace {

/// Ring: r0' = load ? din : NOT(r_{L-1}); r_i' = r_{i-1}. PO = r0.
gl::Netlist ring_circuit(int length) {
  gl::Netlist n;
  const int load = n.add_input("load");
  const int din = n.add_input("din");
  std::vector<int> regs;
  for (int i = 0; i < length; ++i)
    regs.push_back(n.add_dff(-1, "r" + std::to_string(i)));
  const int inv = n.add_gate(gl::GateType::kNot, {regs[length - 1]});
  const int d0 = n.add_gate(gl::GateType::kMux, {load, inv, din});
  n.set_dff_input(regs[0], d0);
  for (int i = 1; i < length; ++i) n.set_dff_input(regs[i], regs[i - 1]);
  n.mark_output(regs[0]);
  return n;
}

/// Pipeline: d_i' = d_{i-1}, d_0' = XOR(a, b). PO = d_{D-1}.
gl::Netlist pipeline_circuit(int depth) {
  gl::Netlist n;
  const int a = n.add_input("a");
  const int b = n.add_input("b");
  const int x = n.add_gate(gl::GateType::kXor, {a, b});
  int prev = x;
  for (int i = 0; i < depth; ++i) {
    const int q = n.add_dff(-1, "d" + std::to_string(i));
    n.set_dff_input(q, prev);
    prev = q;
  }
  n.mark_output(prev);
  return n;
}

long campaign_effort(const gl::Netlist& n, int max_frames) {
  const auto faults = gl::enumerate_faults(n);
  const gl::SeqAtpgCampaign c =
      gl::run_sequential_atpg(n, faults, max_frames, 50000);
  return c.total.decisions + c.total.backtracks + c.total.implications;
}

}  // namespace
}  // namespace tsyn

int main() {
  using namespace tsyn;
  bench::print_header(
      "EXP-SEQATPG",
      "Paper claim (§3.1): sequential test generation complexity grows "
      "steeply with\nS-graph cycle length and ~linearly with sequential "
      "depth.");

  util::Table cyc({"cycle length L", "total ATPG effort", "effort / L"});
  long prev = 0;
  for (int length = 1; length <= 6; ++length) {
    const gl::Netlist n = ring_circuit(length);
    const long effort = campaign_effort(n, length + 4);
    cyc.add_row({std::to_string(length), std::to_string(effort),
                 util::fmt(static_cast<double>(effort) / length, 1)});
    prev = effort;
  }
  (void)prev;
  bench::print_table(cyc);

  util::Table dep({"sequential depth D", "total ATPG effort",
                   "effort / D"});
  for (int depth = 1; depth <= 8; ++depth) {
    const gl::Netlist n = pipeline_circuit(depth);
    const long effort = campaign_effort(n, depth + 3);
    dep.add_row({std::to_string(depth), std::to_string(effort),
                 util::fmt(static_cast<double>(effort) / depth, 1)});
  }
  bench::print_table(dep);
  std::printf(
      "Shape check: effort/L rises with L (superlinear growth along "
      "cycles),\nwhile effort/D stays near-constant (linear growth along "
      "depth).\n");
  return 0;
}
