// EXP-ABIST — arithmetic BIST with subspace state coverage (§5.4, [28]).
//
// Accumulator-generated patterns replace dedicated TPGRs. The subspace
// state coverage at each FU's inputs predicts structural fault coverage;
// binding operations to maximize unioned coverage lifts both. The pattern
// budget sweep reproduces the coverage-vs-test-length curve shape.
#include "common.h"

#include <algorithm>
#include <set>

#include "bist/abist.h"
#include "gatelevel/bistgen.h"
#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "gatelevel/faultsim.h"

namespace tsyn {
namespace {

/// Gate-level fault coverage of each FU of a binding under its own operand
/// stream; returns the mean over FUs.
double gate_level_fu_coverage(const cdfg::Cdfg& g, const hls::Binding& b,
                              const bist::AbistOptions& opts) {
  const auto streams = bist::fu_operand_streams(g, b, opts);
  double total = 0;
  int counted = 0;
  for (int fu = 0; fu < b.num_fus(); ++fu) {
    if (streams[fu].empty()) continue;
    std::vector<cdfg::OpKind> kinds;
    for (cdfg::OpId o : b.fu_ops[fu]) {
      if (std::find(kinds.begin(), kinds.end(), g.op(o).kind) == kinds.end())
        kinds.push_back(g.op(o).kind);
    }
    std::sort(kinds.begin(), kinds.end());
    const gl::Netlist unit = gl::expand_standalone_fu(kinds, opts.width);
    // Pack the operand stream: ports a, b, (c unused -> zeros), op-select
    // exercised round-robin when multiple kinds exist.
    std::vector<std::vector<std::uint64_t>> ports(3);
    for (const auto& [va, vb] : streams[fu]) {
      ports[0].push_back(va);
      ports[1].push_back(vb);
      ports[2].push_back(0);
    }
    auto blocks = gl::pack_word_patterns(ports, opts.width);
    // Append op-select PI values if present.
    const int extra = static_cast<int>(unit.primary_inputs().size()) -
                      3 * opts.width;
    for (std::size_t blk = 0; blk < blocks.size(); ++blk)
      for (int e = 0; e < extra; ++e) {
        gl::Bits bits = gl::Bits::all0();
        // Alternate opcodes across patterns.
        bits.v = 0xAAAAAAAAAAAAAAAAULL << e;
        blocks[blk].push_back(bits);
      }
    const auto faults = gl::enumerate_faults(unit);
    total += gl::fault_coverage(unit, blocks, faults);
    ++counted;
  }
  return counted == 0 ? 1.0 : total / counted;
}

}  // namespace
}  // namespace tsyn

int main() {
  using namespace tsyn;
  bench::print_header(
      "EXP-ABIST",
      "Paper claim (§5.4, [28]): accumulator-based generators reach high "
      "structural\ncoverage; assignment guided by subspace state coverage "
      "beats conventional\nbinding on both the metric and gate-level "
      "coverage.");

  util::Table table({"benchmark", "binding", "mean state coverage",
                     "min state coverage", "gate-level FU coverage"});
  for (const cdfg::Cdfg& g : cdfg::standard_benchmarks()) {
    const hls::Resources res = bench::standard_resources();
    const hls::Schedule s = hls::list_schedule(g, res);
    bist::AbistOptions opts;
    opts.iterations = 256;

    const hls::Binding conventional = hls::make_binding(g, s);
    const hls::Binding guided =
        bist::coverage_maximizing_binding(g, s, opts);
    for (const auto& [label, binding] :
         {std::pair<std::string, const hls::Binding*>{"conventional",
                                                      &conventional},
          {"[28] coverage-guided", &guided}}) {
      const bist::BindingCoverage sc =
          bist::binding_state_coverage(g, *binding, opts);
      const double gate = gate_level_fu_coverage(g, *binding, opts);
      table.add_row({g.name(), label, util::fmt_pct(sc.mean),
                     util::fmt_pct(sc.min), util::fmt_pct(gate)});
    }
  }
  bench::print_table(table);

  // Coverage vs pattern budget (figure-style series) on the AR lattice.
  util::Table sweep({"patterns", "mean state coverage",
                     "gate-level FU coverage"});
  const cdfg::Cdfg g = cdfg::ar_lattice(4);
  const hls::Schedule s =
      hls::list_schedule(g, bench::standard_resources());
  for (int budget : {32, 64, 128, 256, 512, 1024}) {
    bist::AbistOptions opts;
    opts.iterations = budget;
    opts.subspace_bits = 6;  // finer subspace: saturates with the budget
    const hls::Binding b = bist::coverage_maximizing_binding(g, s, opts);
    const bist::BindingCoverage sc = bist::binding_state_coverage(g, b, opts);
    sweep.add_row({std::to_string(budget), util::fmt_pct(sc.mean),
                   util::fmt_pct(gate_level_fu_coverage(g, b, opts))});
  }
  bench::print_table(sweep);
  return 0;
}
