// EXP-ABLATION — which ingredients of the loop-avoiding synthesis ([33])
// actually buy the loop reduction. Each knob is switched off in turn:
//   - fu-cost:     charging (FU, step) choices for FU-level cycles closed
//   - struct-edges: modelling the structural mux cross-product when placing
//                   registers (vs naive per-op producer/consumer edges)
//   - scan-reuse:  rewarding placement of intermediates into scan registers
#include "common.h"

#include "graph/mfvs.h"
#include "hls/datapath_builder.h"
#include "rtl/sgraph.h"
#include "testability/loop_avoid.h"
#include "testability/scan_select.h"

namespace tsyn {
namespace {

struct Variant {
  std::string name;
  bool fu_cost;
  bool struct_edges;
  bool scan_reuse;
};

void run_variant(util::Table& table, const cdfg::Cdfg& g,
                 const Variant& v) {
  testability::LoopAvoidOptions opts;
  opts.resources = bench::standard_resources();
  opts.num_steps =
      hls::list_schedule(g, opts.resources).num_steps + 1;
  opts.scan_vars = testability::select_scan_vars_loopcut(g);
  opts.fu_cycle_cost = v.fu_cost;
  opts.structural_reg_edges = v.struct_edges;
  opts.scan_reuse_reward = v.scan_reuse;
  const testability::LoopAvoidResult r =
      testability::loop_avoiding_synthesis(g, opts);
  const hls::RtlDesign rtl = hls::build_rtl(g, r.schedule, r.binding);
  const rtl::LoopStats stats = rtl::loop_stats(rtl.datapath);
  const auto scan = graph::greedy_mfvs(rtl::build_sgraph(rtl.datapath),
                                       {.ignore_self_loops = true});
  table.add_row({g.name(), v.name, std::to_string(r.binding.num_regs),
                 std::to_string(stats.assignment_loops),
                 std::to_string(stats.cdfg_loops),
                 std::to_string(scan.size())});
}

}  // namespace
}  // namespace tsyn

int main() {
  using namespace tsyn;
  bench::print_header(
      "EXP-ABLATION",
      "Design-choice ablation of the loop-avoiding synthesis: switching "
      "each cost\nterm off shows what it contributes (DESIGN.md inventory).");

  const Variant variants[] = {
      {"full", true, true, true},
      {"-fu-cost", false, true, true},
      {"-struct-edges", true, false, true},
      {"-scan-reuse", true, true, false},
      {"none (blind greedy)", false, false, false},
  };
  util::Table table({"benchmark", "variant", "regs", "assignment loops",
                     "cdfg loops", "scan regs (MFVS)"});
  std::vector<cdfg::Cdfg> graphs;
  graphs.push_back(cdfg::tseng());
  graphs.push_back(cdfg::dct4());
  graphs.push_back(cdfg::diffeq());
  graphs.push_back(cdfg::iir_biquad());
  for (const cdfg::Cdfg& g : graphs)
    for (const Variant& v : variants) run_variant(table, g, v);
  bench::print_table(table);
  return 0;
}
