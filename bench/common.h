// Shared setup for the experiment benches: the benchmark suite at the
// resource allocations used throughout, and small helpers for reporting.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cdfg/benchmarks.h"
#include "hls/synthesis.h"
#include "util/metrics.h"
#include "util/table.h"

namespace tsyn::bench {

/// Standard allocation used by the experiments: 2 ALUs, 2 multipliers
/// (comparable to the surveyed papers' setups).
inline hls::Resources standard_resources() {
  return hls::Resources{{cdfg::FuType::kAlu, 2},
                        {cdfg::FuType::kMultiplier, 2}};
}

inline hls::Synthesis synthesize_standard(const cdfg::Cdfg& g) {
  hls::SynthesisOptions opts;
  opts.resources = standard_resources();
  return hls::synthesize(g, opts);
}

inline void print_header(const std::string& exp_id,
                         const std::string& claim) {
  std::printf("=== %s ===\n%s\n\n", exp_id.c_str(), claim.c_str());
}

inline void print_table(const util::Table& t) {
  std::fputs(t.to_string().c_str(), stdout);
  std::fputs("\n", stdout);
}

/// Version of the BENCH_*.json layout contract. Bump when any bench
/// writer's field set changes incompatibly, so per-PR trajectory tooling
/// can tell a schema change from a regression.
inline constexpr int kBenchJsonSchema = 2;

/// Opens a BENCH_*.json object with the provenance fields every bench
/// writer must carry: "schema" (kBenchJsonSchema) and "seed" (the RNG seed
/// the run's workload/stimulus was generated from). Without them a
/// trajectory across PRs is ambiguous — a changed number could be a real
/// regression, a layout change, or just a reseeded workload. The caller
/// continues the object (no closing brace is written).
inline void write_json_preamble(std::FILE* f, std::uint64_t seed) {
  std::fprintf(f, "{\n  \"schema\": %d,\n  \"seed\": %llu,\n",
               kBenchJsonSchema, static_cast<unsigned long long>(seed));
}

/// Embeds the process-wide metrics registry into an open BENCH_*.json
/// stream as a `"metrics": {...}` field (no leading indent, no trailing
/// comma/newline — the caller owns the surrounding object syntax). Gives
/// every bench's JSON the same run-report section the CLI's --metrics
/// emits, so per-PR perf tracking sees engine work counters (events
/// processed, faults dropped, shard imbalance) next to the wall times.
inline void write_metrics_field(std::FILE* f) {
  const std::string j = util::metrics().to_json();
  std::fprintf(f, "\"metrics\": %s", j.c_str());
}

}  // namespace tsyn::bench
