// Shared setup for the experiment benches: the benchmark suite at the
// resource allocations used throughout, and small helpers for reporting.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "cdfg/benchmarks.h"
#include "hls/synthesis.h"
#include "util/table.h"

namespace tsyn::bench {

/// Standard allocation used by the experiments: 2 ALUs, 2 multipliers
/// (comparable to the surveyed papers' setups).
inline hls::Resources standard_resources() {
  return hls::Resources{{cdfg::FuType::kAlu, 2},
                        {cdfg::FuType::kMultiplier, 2}};
}

inline hls::Synthesis synthesize_standard(const cdfg::Cdfg& g) {
  hls::SynthesisOptions opts;
  opts.resources = standard_resources();
  return hls::synthesize(g, opts);
}

inline void print_header(const std::string& exp_id,
                         const std::string& claim) {
  std::printf("=== %s ===\n%s\n\n", exp_id.c_str(), claim.c_str());
}

inline void print_table(const util::Table& t) {
  std::fputs(t.to_string().c_str(), stdout);
  std::fputs("\n", stdout);
}

}  // namespace tsyn::bench
