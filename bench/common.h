// Shared setup for the experiment benches: the benchmark suite at the
// resource allocations used throughout, and small helpers for reporting.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "cdfg/benchmarks.h"
#include "hls/synthesis.h"
#include "util/metrics.h"
#include "util/table.h"

namespace tsyn::bench {

/// Standard allocation used by the experiments: 2 ALUs, 2 multipliers
/// (comparable to the surveyed papers' setups).
inline hls::Resources standard_resources() {
  return hls::Resources{{cdfg::FuType::kAlu, 2},
                        {cdfg::FuType::kMultiplier, 2}};
}

inline hls::Synthesis synthesize_standard(const cdfg::Cdfg& g) {
  hls::SynthesisOptions opts;
  opts.resources = standard_resources();
  return hls::synthesize(g, opts);
}

inline void print_header(const std::string& exp_id,
                         const std::string& claim) {
  std::printf("=== %s ===\n%s\n\n", exp_id.c_str(), claim.c_str());
}

inline void print_table(const util::Table& t) {
  std::fputs(t.to_string().c_str(), stdout);
  std::fputs("\n", stdout);
}

/// Embeds the process-wide metrics registry into an open BENCH_*.json
/// stream as a `"metrics": {...}` field (no leading indent, no trailing
/// comma/newline — the caller owns the surrounding object syntax). Gives
/// every bench's JSON the same run-report section the CLI's --metrics
/// emits, so per-PR perf tracking sees engine work counters (events
/// processed, faults dropped, shard imbalance) next to the wall times.
inline void write_metrics_field(std::FILE* f) {
  const std::string j = util::metrics().to_json();
  std::fprintf(f, "\"metrics\": %s", j.c_str());
}

}  // namespace tsyn::bench
