// EXP-BISTREG — BIST register assignment minimizing self-adjacency
// (§5.1, [3]).
//
// Conventional assignment produces registers that are input and output of
// the same module (CBILBO candidates); Avra's extra conflict edges push
// the count toward the structural minimum at (near-)equal register count.
#include "common.h"

#include "bist/bist_assign.h"
#include "bist/test_registers.h"
#include "hls/datapath_builder.h"
#include "rtl/area.h"

int main() {
  using namespace tsyn;
  bench::print_header(
      "EXP-BISTREG",
      "Paper claim (§5.1, [3]): adding module-adjacency edges to the "
      "register conflict\ngraph yields data paths with fewer self-adjacent "
      "registers (fewer CBILBOs) and\nan (almost) equal total register "
      "count.");

  util::Table table({"benchmark", "assignment", "regs", "self-adjacent",
                     "CBILBOs", "BIST area overhead"});
  for (const cdfg::Cdfg& g : cdfg::standard_benchmarks()) {
    const hls::Synthesis syn = bench::synthesize_standard(g);

    auto report = [&](const std::string& label, hls::Binding b) {
      hls::RtlDesign rtl = hls::build_rtl(g, syn.schedule, b);
      const int sa = bist::analyze_adjacency(rtl.datapath)
                         .self_adjacent_count();
      const int cbilbos = bist::configure_bist_conventional(rtl.datapath);
      table.add_row({g.name(), label, std::to_string(b.num_regs),
                     std::to_string(sa), std::to_string(cbilbos),
                     util::fmt_pct(rtl::test_area_overhead(rtl.datapath))});
    };

    report("conventional", syn.binding);
    hls::Binding avra = syn.binding;
    hls::rebind_registers(g, avra,
                          bist::bist_aware_register_assignment(g, avra));
    report("[3] adjacency-aware", avra);
  }
  bench::print_table(table);
  return 0;
}
