// EXP-HIER — hierarchical test generation through test environments
// (§6, [7],[38],[29]).
//
// Per-module PODEM on small standalone netlists plus symbolic test
// environments replaces monolithic ATPG over the flattened design: far
// less search effort at comparable coverage of module-internal faults —
// provided every module has an environment (the assignment of [7] helps).
#include "common.h"

#include "hiertest/hier_atpg.h"
#include "hiertest/testenv.h"

namespace {

/// A correlator whose squared magnitude funnels through a comparison: the
/// squaring multiplier has no propagation path, so conventional binding
/// can strand multiplier modules without a test environment.
tsyn::cdfg::Cdfg correlator() {
  using namespace tsyn::cdfg;
  Cdfg g("correl");
  const VarId x = g.add_input("x");
  const VarId c0 = g.add_input("c0");
  const VarId c1 = g.add_input("c1");
  const VarId thr = g.add_input("thr");
  const VarId d1 = g.add_state("d1");
  const VarId p0 = g.add_op(OpKind::kMul, "p0", {c0, x});
  const VarId p1 = g.add_op(OpKind::kMul, "p1", {c1, d1});
  const VarId acc = g.add_op(OpKind::kAdd, "acc", {p0, p1});
  const VarId sq = g.add_op(OpKind::kMul, "sq", {acc, acc});
  const VarId hit = g.add_op(OpKind::kLt, "hit", {sq, thr});
  const VarId n1 = g.add_op(OpKind::kCopy, "n1", {x});
  g.set_state_update(d1, n1);
  g.mark_output(hit);
  g.validate();
  return g;
}

}  // namespace

int main() {
  using namespace tsyn;
  bench::print_header(
      "EXP-HIER",
      "Paper claim (§6): hierarchical tests from precomputed module tests "
      "+ test\nenvironments generate much faster than flat gate-level ATPG "
      "at high coverage;\nenvironment-aware assignment [7] raises module "
      "coverage.");

  const int width = 8;
  util::Table table({"benchmark", "flow", "modules w/ env",
                     "module coverage", "flat coverage",
                     "hier implications", "flat implications", "speedup"});
  std::vector<cdfg::Cdfg> graphs;
  graphs.push_back(cdfg::tseng());
  graphs.push_back(cdfg::dct4());
  graphs.push_back(cdfg::iir_biquad());
  graphs.push_back(cdfg::diffeq());
  graphs.push_back(correlator());
  for (const cdfg::Cdfg& g : graphs) {
    const hls::Resources res = bench::standard_resources();
    const hls::Schedule s = hls::list_schedule(g, res);

    for (const bool env_aware : {false, true}) {
      const hls::Binding b = env_aware
                                 ? hiertest::env_aware_binding(g, s)
                                 : hls::make_binding(g, s);
      const hiertest::HierAtpgResult hier =
          hiertest::hierarchical_atpg(g, b, width);
      const hiertest::FlatAtpgResult flat = hiertest::flat_atpg(g, s, b,
                                                                width);
      const double speedup =
          hier.effort.implications == 0
              ? 0
              : static_cast<double>(flat.effort.implications) /
                    static_cast<double>(hier.effort.implications);
      table.add_row(
          {g.name(), env_aware ? "[7] env-aware" : "conventional",
           std::to_string(hier.modules_with_env) + "/" +
               std::to_string(hier.modules),
           util::fmt_pct(hier.module_fault_coverage),
           util::fmt_pct(flat.fault_coverage),
           std::to_string(hier.effort.implications),
           std::to_string(flat.effort.implications),
           util::fmt_factor(speedup, 1)});
    }
  }
  bench::print_table(table);
  return 0;
}
