// EXP-TRANSFORM — behavioral transformation with deflection operations
// (§3.4, [16]).
//
// Deflection (identity) operations re-time scan variables so their
// lifetimes stop overlapping: the same loop-breaking variable set then
// packs into fewer physical scan registers, with the critical path
// untouched.
#include "common.h"

#include "cdfg/loops.h"
#include "testability/scan_select.h"
#include "testability/transform.h"

int main() {
  using namespace tsyn;
  bench::print_header(
      "EXP-TRANSFORM",
      "Paper claim (§3.4, [16]): inserting deflection operations "
      "(add-with-0) that\npreserve behavior lets more scan variables share "
      "scan registers, reducing the\nnumber of scan registers at no "
      "performance cost.");

  util::Table table({"benchmark", "scan vars", "deflections added",
                     "scan regs before", "scan regs after", "csteps before",
                     "csteps after"});
  for (const cdfg::Cdfg& g : cdfg::standard_benchmarks()) {
    if (cdfg::cdfg_loops(g).empty()) continue;
    const auto scan_vars = testability::select_scan_vars_interior(g);
    const testability::DeflectionResult t =
        testability::insert_deflections(g, scan_vars);

    const hls::Synthesis before = bench::synthesize_standard(g);
    const hls::Synthesis after = bench::synthesize_standard(t.transformed);
    // Minimum scan registers the selection packs into (the quantity [16]
    // reduces), under the real post-synthesis lifetimes.
    const int regs_before =
        testability::min_scan_registers(before.binding.lifetimes, scan_vars);
    const int regs_after =
        testability::min_scan_registers(after.binding.lifetimes, scan_vars);
    table.add_row({g.name(), std::to_string(scan_vars.size()),
                   std::to_string(t.inserted),
                   std::to_string(regs_before),
                   std::to_string(regs_after),
                   std::to_string(before.schedule.num_steps),
                   std::to_string(after.schedule.num_steps)});
  }
  bench::print_table(table);
  return 0;
}
