// EXP-SWEEP — throughput of the campaign orchestrator's stage cache.
//
// The campaign orchestrator exists to make design x config sweeps cheap:
// jobs that share a (design, schedule-config, scan, width) prefix should
// share one parse, one schedule+binding, and one RTL->gate lowering. This
// bench quantifies what that buys on a 3-design x 4-config grid (x 4 X-fill
// seeds = 48 jobs sharing 12 pipeline prefixes):
//
//   cold  every job runs its own private StageCache — the cost a sweep
//         would pay with no memoization (12 parses become 48, etc.);
//   memo  all jobs share one StageCache — the orchestrator's actual shape.
//
// Reported per mode: wall time, jobs/sec, stage-compute counts, cache hit
// rate; plus the memo/cold speedup. Results go to stdout and
// BENCH_sweep.json (tracked per PR through the bench_diff gate, wall times
// excluded with --no-time).
// A second section, "telemetry", prices the fleet-observability layer
// itself: the same grid swept through run_sweep() with everything off vs
// with the heartbeat stream, job rollup, and timeline recording on.
// Paired alternating trials, medians reported; the overhead budget is
// <= 2% and the on/off index bytes must be identical (telemetry may cost
// time, never results).
#include "common.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/cache.h"
#include "campaign/manifest.h"
#include "campaign/sweep.h"
#include "util/table.h"
#include "util/telemetry.h"

namespace tsyn {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kSeedBase = 61713;

std::string fmt(double v, int prec) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

campaign::Manifest grid_manifest() {
  campaign::Manifest m;
  m.designs = {"bench:fig1", "bench:tseng", "bench:dct4"};
  m.configs = {{"a1m1", 1, 1, 0},
               {"a2m1", 2, 1, 0},
               {"a2m2", 2, 2, 0},
               {"a3m2", 3, 2, 0}};
  m.scans = {"full"};
  m.widths = {2};
  for (std::uint64_t s = 0; s < 4; ++s) m.seeds.push_back(kSeedBase + s);
  return m;
}

struct ModeResult {
  std::string mode;
  std::int64_t jobs = 0;
  double wall_ms = 0;
  double jobs_per_sec = 0;
  std::int64_t parse_runs = 0;   ///< stage computations actually executed
  std::int64_t synth_runs = 0;
  std::int64_t expand_runs = 0;
  double hit_rate = 0;
  double mean_coverage = 0;
};

ModeResult run_mode(const campaign::Manifest& m, bool shared_cache) {
  const std::vector<campaign::JobSpec> grid = campaign::expand_grid(m);
  ModeResult r;
  r.mode = shared_cache ? "memo" : "cold";
  r.jobs = static_cast<std::int64_t>(grid.size());

  campaign::StageCache shared;
  campaign::CacheStats cold_totals;
  double cov_sum = 0;
  const Clock::time_point t0 = Clock::now();
  for (const campaign::JobSpec& spec : grid) {
    std::string report;
    if (shared_cache) {
      const campaign::JobResult jr =
          campaign::run_one_job(spec, m, shared, &report);
      if (jr.status != "ok") {
        std::fprintf(stderr, "job %s failed: %s\n", spec.id.c_str(),
                     jr.error.c_str());
        std::exit(1);
      }
      cov_sum += jr.coverage;
    } else {
      campaign::StageCache own;  // private cache: nothing is ever shared
      const campaign::JobResult jr =
          campaign::run_one_job(spec, m, own, &report);
      if (jr.status != "ok") {
        std::fprintf(stderr, "job %s failed: %s\n", spec.id.c_str(),
                     jr.error.c_str());
        std::exit(1);
      }
      cov_sum += jr.coverage;
      const campaign::CacheStats s = own.stats();
      cold_totals.parse_misses += s.parse_misses;
      cold_totals.synth_misses += s.synth_misses;
      cold_totals.expand_misses += s.expand_misses;
    }
  }
  r.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  r.jobs_per_sec =
      r.wall_ms > 0 ? 1000.0 * static_cast<double>(r.jobs) / r.wall_ms : 0;
  const campaign::CacheStats s = shared_cache ? shared.stats() : cold_totals;
  r.parse_runs = s.parse_misses;
  r.synth_runs = s.synth_misses;
  r.expand_runs = s.expand_misses;
  const std::int64_t lookups = s.hits() + s.misses();
  r.hit_rate = lookups > 0
                   ? static_cast<double>(s.hits()) /
                         static_cast<double>(lookups)
                   : 0;
  r.mean_coverage = cov_sum / static_cast<double>(r.jobs);
  return r;
}

// -- telemetry overhead ------------------------------------------------------

struct TelemetryResult {
  double off_ms = 0;        ///< median sweep wall, telemetry off
  double on_ms = 0;         ///< median sweep wall, heartbeat+timeline on
  double overhead_pct = 0;  ///< (on - off) / off * 100
  bool identical = false;   ///< on/off index bytes identical (timing-free)
  long heartbeats = 0;      ///< lines emitted by the last "on" trial
};

/// One full run_sweep() over `m` into a throwaway dir; with `telemetry`,
/// a live heartbeat session plus timeline export ride along. Returns the
/// sweep wall time and the timing-stripped index bytes (the identity the
/// on/off comparison checks).
double sweep_once(const campaign::Manifest& m, bool telemetry,
                  std::string* index_bytes) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      (telemetry ? "tsyn_bench_sweep_on" : "tsyn_bench_sweep_off");
  fs::remove_all(dir);
  campaign::SweepOptions opts;
  opts.results_dir = dir.string();
  opts.threads = 1;  // serial: measure the layer, not scheduling luck
  if (telemetry) {
    util::TelemetryOptions topts;
    topts.heartbeat_path = (dir.string() + "_hb.jsonl");
    topts.interval_ms = 20;
    util::telemetry_start(topts);
    opts.timeline_path = (dir / "timeline.json").string();
  }
  const Clock::time_point t0 = Clock::now();
  const campaign::SweepSummary s = campaign::run_sweep(m, opts);
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  if (telemetry) util::telemetry_stop();
  if (s.failed != 0) {
    std::fprintf(stderr, "telemetry trial sweep had failures\n");
    std::exit(1);
  }
  {
    std::ifstream in(dir / "index.json", std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    *index_bytes = campaign::strip_timing(buf.str());
  }
  fs::remove_all(dir);
  fs::remove(dir.string() + "_hb.jsonl");
  return ms;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

TelemetryResult run_telemetry_overhead(const campaign::Manifest& m) {
  constexpr int kTrials = 5;
  TelemetryResult r;
  r.identical = true;
  std::vector<double> off, on;
  std::string off_index, on_index;
  // Warm-up pass so neither mode pays first-touch costs, then paired
  // alternating trials so drift hits both modes equally.
  sweep_once(m, false, &off_index);
  for (int i = 0; i < kTrials; ++i) {
    off.push_back(sweep_once(m, false, &off_index));
    on.push_back(sweep_once(m, true, &on_index));
    if (off_index != on_index || off_index.empty()) r.identical = false;
  }
  r.heartbeats = util::telemetry_heartbeat_count();
  r.off_ms = median(off);
  r.on_ms = median(on);
  r.overhead_pct =
      r.off_ms > 0 ? (r.on_ms - r.off_ms) / r.off_ms * 100.0 : 0;
  return r;
}

void write_json(const std::vector<ModeResult>& rows, double speedup,
                const TelemetryResult& tel) {
  FILE* f = std::fopen("BENCH_sweep.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_sweep.json\n");
    return;
  }
  bench::write_json_preamble(f, kSeedBase);
  std::fprintf(f, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ModeResult& r = rows[i];
    std::fprintf(f,
                 "    {\"case\": \"%s\", \"jobs\": %lld, \"wall_ms\": %.1f, "
                 "\"jobs_per_sec\": %.1f, \"parse_runs\": %lld, "
                 "\"synth_runs\": %lld, \"expand_runs\": %lld, "
                 "\"hit_rate\": %.4f, \"coverage\": %.4f}%s\n",
                 r.mode.c_str(), static_cast<long long>(r.jobs), r.wall_ms,
                 r.jobs_per_sec, static_cast<long long>(r.parse_runs),
                 static_cast<long long>(r.synth_runs),
                 static_cast<long long>(r.expand_runs), r.hit_rate,
                 r.mean_coverage, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"memo_speedup\": %.2f,\n", speedup);
  std::fprintf(f,
               "  \"telemetry\": {\"off_wall_ms\": %.1f, \"on_wall_ms\": "
               "%.1f, \"overhead_pct\": %.2f, \"identical\": %d, "
               "\"heartbeats\": %ld},\n  ",
               tel.off_ms, tel.on_ms, tel.overhead_pct,
               tel.identical ? 1 : 0, tel.heartbeats);
  bench::write_metrics_field(f);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace tsyn

int main() {
  using namespace tsyn;
  bench::print_header(
      "EXP-SWEEP",
      "Campaign stage cache: memoized vs cold job throughput on a\n"
      "3-design x 4-config x 4-seed grid (48 jobs, 12 shared prefixes).");

  const campaign::Manifest m = grid_manifest();
  // Cold first so the memo pass cannot warm anything for it.
  const ModeResult cold = run_mode(m, /*shared_cache=*/false);
  const ModeResult memo = run_mode(m, /*shared_cache=*/true);
  const double speedup = memo.wall_ms > 0 ? cold.wall_ms / memo.wall_ms : 0;

  util::Table t({"mode", "jobs", "wall ms", "jobs/s", "parse", "synth",
                 "expand", "hit rate", "coverage"});
  for (const ModeResult& r : {cold, memo}) {
    t.add_row({r.mode, std::to_string(r.jobs), fmt(r.wall_ms, 1),
               fmt(r.jobs_per_sec, 1), std::to_string(r.parse_runs),
               std::to_string(r.synth_runs), std::to_string(r.expand_runs),
               fmt(r.hit_rate, 3), fmt(r.mean_coverage, 4)});
  }
  bench::print_table(t);
  std::printf("memo speedup over cold: %.2fx\n", speedup);
  std::printf(
      "Shape check: memo must run exactly 3/12/12 parse/synth/expand\n"
      "stages (one per shared prefix) vs the cold 48/48/48, at identical\n"
      "coverage — memoization changes cost, never results.\n");

  if (memo.parse_runs != 3 || memo.synth_runs != 12 ||
      memo.expand_runs != 12 || cold.parse_runs != 48) {
    std::fprintf(stderr, "stage-count shape check FAILED\n");
    return 1;
  }
  if (memo.mean_coverage != cold.mean_coverage) {
    std::fprintf(stderr, "coverage diverged between modes\n");
    return 1;
  }

  const TelemetryResult tel = run_telemetry_overhead(m);
  std::printf(
      "\nTelemetry overhead (heartbeat + job rollup + timeline, paired\n"
      "medians over 5 alternating run_sweep trials):\n"
      "  off %.1f ms, on %.1f ms -> %+.2f%% (budget <= 2%%, %s)\n"
      "  heartbeats emitted: %ld; on/off index bytes identical: %s\n",
      tel.off_ms, tel.on_ms, tel.overhead_pct,
      tel.overhead_pct <= 2.0 ? "ok" : "OVER — likely machine noise",
      tel.heartbeats, tel.identical ? "yes" : "NO");
  if (!tel.identical) {
    // Overhead over budget is timing noise; different *results* are a bug.
    std::fprintf(stderr, "telemetry changed sweep results\n");
    return 1;
  }

  write_json({cold, memo}, speedup, tel);
  std::printf("Wrote BENCH_sweep.json.\n");
  return 0;
}
