// Partial-scan flow (§3 of the survey end to end): select scan variables
// at the behavioral level, synthesize with loop avoidance, apply scan,
// and confirm at the gate level that full-scan-style ATPG now closes.
//
//   ./build/examples/partial_scan_flow
#include <cstdio>

#include "cdfg/benchmarks.h"
#include "gatelevel/atpg_comb.h"
#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "hls/datapath_builder.h"
#include "rtl/area.h"
#include "graph/mfvs.h"
#include "rtl/sgraph.h"
#include "testability/loop_avoid.h"
#include "testability/scan_select.h"

int main() {
  using namespace tsyn;
  const cdfg::Cdfg g = cdfg::ewf();
  std::printf("behavior: %s (%d ops, %zu loop-carried states)\n",
              g.name().c_str(), g.num_ops(), g.states().size());

  // 1. Break CDFG loops with sharing-aware scan variables ([33]).
  const auto scan_vars = testability::select_scan_vars_loopcut(g);
  std::printf("scan variables selected: %zu\n", scan_vars.size());

  // 2. Loop-avoiding scheduling + assignment, reusing the scan registers.
  testability::LoopAvoidOptions opts;
  opts.resources = hls::Resources{{cdfg::FuType::kAlu, 2},
                                  {cdfg::FuType::kMultiplier, 1}};
  opts.scan_vars = scan_vars;
  const testability::LoopAvoidResult r =
      testability::loop_avoiding_synthesis(g, opts);
  hls::RtlDesign design = hls::build_rtl(g, r.schedule, r.binding);

  // 3. Apply the behavioral scan set, then complete at RTL: hardware
  //    sharing can leave assignment loops the CDFG-level selection cannot
  //    see (the hybrid flow the survey's results imply).
  const rtl::LoopStats before = rtl::loop_stats(design.datapath, false);
  int scan_regs = testability::apply_scan(
      g, r.binding, scan_vars, design.datapath);
  for (int reg : graph::greedy_mfvs(
           rtl::build_sgraph(design.datapath, /*exclude_scan=*/true),
           {.ignore_self_loops = true})) {
    design.datapath.regs[reg].test_kind = rtl::TestRegKind::kScan;
    ++scan_regs;
  }
  const rtl::LoopStats after = rtl::loop_stats(design.datapath, true);
  std::printf(
      "scan registers: %d of %d (%.1f%% area overhead)\n"
      "breakable loops: %d before scan -> %d in scan mode\n",
      scan_regs, design.datapath.num_regs(),
      100.0 * rtl::test_area_overhead(design.datapath),
      before.breakable(), after.breakable());
  std::printf("sequential depth in test mode: %d\n",
              rtl::datapath_sequential_depth(design.datapath, true));

  // 4. Gate level: with loops broken, scan-mode ATPG closes the fault list.
  rtl::Datapath full_scan = design.datapath;
  for (auto& reg : full_scan.regs)
    reg.test_kind = rtl::TestRegKind::kScan;
  gl::ExpandOptions x;
  x.width_override = 4;
  const gl::ExpandedDesign expanded = gl::expand_datapath(full_scan, x);
  const auto faults = gl::enumerate_faults(expanded.netlist);
  const gl::AtpgCampaign campaign =
      gl::run_combinational_atpg(expanded.netlist, faults);
  std::printf(
      "gate level (w=4): %d gates, %zu faults, coverage %.2f%%, "
      "efficiency %.2f%%\n",
      expanded.netlist.gate_count(), faults.size(),
      100 * campaign.fault_coverage, 100 * campaign.fault_efficiency);
  return 0;
}
