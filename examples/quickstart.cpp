// Quickstart: synthesize a behavior, inspect the datapath, measure its
// testability, verify it against the behavioral interpreter.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "cdfg/benchmarks.h"
#include "cdfg/interp.h"
#include "hls/synthesis.h"
#include "rtl/area.h"
#include "rtl/controller.h"
#include "rtl/sgraph.h"

int main() {
  using namespace tsyn;

  // 1. A behavior: the classic HAL differential-equation solver.
  const cdfg::Cdfg g = cdfg::diffeq();
  std::printf("%s\n", g.to_string().c_str());

  // 2. Conventional high-level synthesis: resource-constrained list
  //    scheduling, clique-partitioned FUs, left-edge registers.
  hls::SynthesisOptions opts;
  opts.resources = hls::Resources{{cdfg::FuType::kAlu, 1},
                                  {cdfg::FuType::kMultiplier, 2}};
  const hls::Synthesis syn = hls::synthesize(g, opts);
  std::printf("schedule: %d control steps\n%s\n", syn.schedule.num_steps,
              syn.rtl.datapath.to_string().c_str());

  // 3. Testability snapshot: the S-graph loop taxonomy of the survey.
  const rtl::LoopStats loops = rtl::loop_stats(syn.rtl.datapath);
  std::printf(
      "S-graph loops: %d self (tolerable), %d assignment, %d CDFG\n",
      loops.self_loops, loops.assignment_loops, loops.cdfg_loops);
  std::printf("area: %.0f gate equivalents\n",
              rtl::datapath_area(syn.rtl.datapath));
  std::printf("controller: %d signals x %d vectors, %zu pair conflicts\n\n",
              syn.rtl.controller.num_signals(),
              syn.rtl.controller.num_vectors(),
              rtl::find_pair_conflicts(syn.rtl.controller).size());

  // 4. Execute the behavior: Euler steps of y'' = -3xy' - 3y.
  std::printf("behavioral execution (dx=1, a=100):\n");
  std::vector<std::vector<std::uint64_t>> frames(5, {1, 100});
  const auto trace = cdfg::execute(g, frames);
  const cdfg::VarId xl = g.find_var("xl");
  const cdfg::VarId yl = g.find_var("yl");
  for (std::size_t i = 0; i < trace.size(); ++i)
    std::printf("  iter %zu: x=%llu y=%llu\n", i,
                static_cast<unsigned long long>(trace[i][xl]),
                static_cast<unsigned long long>(trace[i][yl]));
  return 0;
}
