// Bring your own behavior: parse a CDFG from the text format, analyze its
// behavioral testability ([9]), add test statements, and compare the
// synthesized results.
//
//   ./build/examples/custom_behavior
#include <cstdio>

#include "cdfg/parser.h"
#include "hls/synthesis.h"
#include "rtl/area.h"
#include "rtl/sgraph.h"
#include "testability/behavior_analysis.h"

int main() {
  using namespace tsyn;

  // A small correlator: products of the input with two delayed copies
  // funnel through a comparison — the hard-to-observe pattern [9] targets.
  const char* text = R"(
cdfg correlator
input x 16
input c0 16
input c1 16
input thr 16
state d1 16
state d2 16
op mul p0 c0 x
op mul p1 c1 d1
op add acc p0 p1
op mul sq acc acc
op lt hit sq thr
op copy n1 x
op copy n2 d1
update d1 n1
update d2 n2
output hit
)";
  const cdfg::Cdfg g = cdfg::parse_cdfg(text);
  std::printf("%s\n", g.to_string().c_str());

  // Behavioral testability classification.
  const testability::BehaviorTestability t =
      testability::analyze_behavior(g);
  std::printf(
      "controllable: %d fully / %d partially / %d not\n"
      "observable:   %d fully / %d partially / %d not\n\n",
      t.count_ctrl(testability::CtrlClass::kControllable),
      t.count_ctrl(testability::CtrlClass::kPartial),
      t.count_ctrl(testability::CtrlClass::kUncontrollable),
      t.count_obs(testability::ObsClass::kObservable),
      t.count_obs(testability::ObsClass::kPartial),
      t.count_obs(testability::ObsClass::kUnobservable));

  // Add test statements for the hard variables and re-synthesize.
  testability::TestStatementOptions opts;
  opts.include_partial = true;
  const testability::TestStatementResult ts =
      testability::add_test_statements(g, opts);
  std::printf("test statements: %d injections, %d observations\n",
              ts.injections, ts.observations);

  for (const auto& [label, graph] :
       {std::pair<const char*, const cdfg::Cdfg*>{"original", &g},
        {"with test statements", &ts.transformed}}) {
    hls::SynthesisOptions so;
    so.resources = hls::Resources{{cdfg::FuType::kAlu, 2},
                                  {cdfg::FuType::kMultiplier, 2}};
    const hls::Synthesis syn = hls::synthesize(*graph, so);
    const testability::BehaviorTestability bt =
        testability::analyze_behavior(*graph);
    std::printf(
        "%-21s: %d steps, %d regs, %.0f GE, fully observable vars %d\n",
        label, syn.schedule.num_steps, syn.binding.num_regs,
        rtl::datapath_area(syn.rtl.datapath),
        bt.count_obs(testability::ObsClass::kObservable));
  }
  return 0;
}
