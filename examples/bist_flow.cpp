// Self-testable datapath flow (§5 of the survey): synthesize the IIR
// biquad as a TFB datapath, configure the BIST registers, and fault-
// simulate the logic blocks under LFSR patterns with MISR compaction.
//
//   ./build/examples/bist_flow
#include <cstdio>

#include "bist/sessions.h"
#include "bist/test_registers.h"
#include "bist/tfb.h"
#include "cdfg/benchmarks.h"
#include "gatelevel/bistgen.h"
#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "gatelevel/faultsim.h"
#include "hls/datapath_builder.h"
#include "rtl/area.h"

int main() {
  using namespace tsyn;
  const cdfg::Cdfg g = cdfg::iir_biquad();
  const hls::Schedule s = hls::list_schedule(
      g, hls::Resources{{cdfg::FuType::kAlu, 2},
                        {cdfg::FuType::kMultiplier, 2}});

  // 1. TFB synthesis [31]: no self-adjacent registers by construction.
  const bist::TfbResult tfb = bist::tfb_synthesis(g, s);
  hls::RtlDesign design = hls::build_rtl(g, s, tfb.binding);
  std::printf("TFB datapath: %d TFBs + %d input registers\n", tfb.num_tfbs,
              tfb.num_input_regs);

  // 2. Configure the test registers and report the BIST bill of materials.
  const int cbilbos = bist::configure_bist_conventional(design.datapath);
  const bist::TestRegCounts counts =
      bist::count_test_registers(design.datapath);
  std::printf(
      "test registers: %d TPGR, %d SR, %d BILBO, %d CBILBO "
      "(area overhead %.1f%%)\n",
      counts.tpgr, counts.sr, counts.bilbo, cbilbos,
      100.0 * rtl::test_area_overhead(design.datapath));

  // 3. Test sessions needed (conflict coloring, [20]).
  const bist::SessionAnalysis sessions =
      bist::schedule_test_sessions(g, tfb.binding);
  std::printf("test sessions: %d (over %d modules, %d conflicts)\n",
              sessions.num_sessions, sessions.num_modules,
              sessions.num_conflicts);

  // 4. Pseudorandom BIST at the gate level: every test register becomes a
  //    pseudo PI/PO; fault-simulate under LFSR patterns; compact with a
  //    MISR.
  gl::ExpandOptions x;
  x.width_override = 8;
  const gl::ExpandedDesign expanded = gl::expand_datapath(design.datapath, x);
  const auto faults = gl::enumerate_faults(expanded.netlist);
  const auto blocks = gl::lfsr_pattern_blocks(
      static_cast<int>(expanded.netlist.primary_inputs().size()), 8,
      0xB157);
  gl::FaultSimulator sim(expanded.netlist);
  std::vector<bool> detected(faults.size(), false);
  gl::Misr misr;
  for (const auto& block : blocks) {
    sim.run_block(block, faults, detected);
    for (const gl::Bits& po : sim.good_outputs()) misr.absorb(po.v);
  }
  long hit = 0;
  for (bool d : detected) hit += d;
  std::printf(
      "pseudorandom BIST (512 patterns, w=8): coverage %.2f%% of %zu "
      "faults\nMISR signature: %016llx\n",
      100.0 * hit / faults.size(), faults.size(),
      static_cast<unsigned long long>(misr.signature()));
  return 0;
}
