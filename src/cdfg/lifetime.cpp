#include "cdfg/lifetime.h"

#include <algorithm>
#include <cassert>

namespace tsyn::cdfg {

int last_use_step(const Cdfg& g, VarId v, const std::vector<int>& step_of_op) {
  int last = -1;
  for (OpId o : g.var(v).uses) last = std::max(last, step_of_op[o]);
  return last;
}

LifetimeAnalysis analyze_lifetimes(const Cdfg& g,
                                   const std::vector<int>& step_of_op,
                                   int num_steps, bool split_states) {
  assert(static_cast<int>(step_of_op.size()) == g.num_ops());
  assert(num_steps > 0);
  LifetimeAnalysis out;
  out.num_slots = num_steps;
  out.lifetime_of_var.assign(g.num_vars(), -1);

  auto add_lifetime = [&](StorageLifetime lt) {
    const int idx = static_cast<int>(out.lifetimes.size());
    for (VarId v : lt.vars) out.lifetime_of_var[v] = idx;
    out.lifetimes.push_back(std::move(lt));
    return idx;
  };

  // Pass 1: state variables and their update temps (merged or split).
  std::vector<bool> handled(g.num_vars(), false);
  for (VarId sv_id : g.states()) {
    const Variable& state = g.var(sv_id);
    const VarId upd = state.update_var;
    const int def_step = step_of_op[g.var(upd).def_op];
    // Old-value last use; an unread state behaves as if read at its own
    // update step (whole-loop-alive, conservative).
    const int su_raw = last_use_step(g, sv_id, step_of_op);
    const int su = su_raw < 0 ? def_step : su_raw;

    // Forced split still merges a last-step update: its write coincides
    // with the boundary transfer, so a separate register cannot help.
    const bool merge_ok =
        su <= def_step &&
        (!split_states || def_step == num_steps - 1);
    if (merge_ok) {
      // Merged: one register holds the old value through step su, is loaded
      // at the end of step def_step, and carries the new value across the
      // iteration boundary. Wrapping interval [def+1 mod T, su+1).
      // Same-iteration consumers of the update temp are covered because the
      // wrapping range spans [def+1, T).
      StorageLifetime lt;
      lt.vars = {upd, sv_id};
      lt.interval.birth = (def_step + 1) % num_steps;
      lt.interval.death = su + 1;
      lt.is_state = true;
      lt.is_output = state.is_output || g.var(upd).is_output;
      add_lifetime(lt);
      handled[sv_id] = handled[upd] = true;
    } else {
      // Split: the old value and the new value are simultaneously alive;
      // a dedicated register holds the new value, and the state register
      // reloads from it at the iteration boundary.
      StorageLifetime old_lt;
      old_lt.vars = {sv_id};
      old_lt.interval.birth = 0;
      old_lt.interval.death = std::max(su + 1, 1);
      old_lt.is_state = true;
      old_lt.is_output = state.is_output;
      old_lt.transfer_from = upd;
      add_lifetime(old_lt);

      StorageLifetime new_lt;
      new_lt.vars = {upd};
      new_lt.interval.birth = def_step + 1;
      new_lt.interval.death = num_steps;  // held until the boundary transfer
      if (new_lt.interval.birth >= num_steps)
        new_lt.interval.birth = num_steps - 1;
      new_lt.is_output = g.var(upd).is_output;
      add_lifetime(new_lt);
      handled[sv_id] = handled[upd] = true;
    }
  }

  // Pass 2: everything else.
  for (const Variable& v : g.vars()) {
    if (handled[v.id]) continue;
    switch (v.kind) {
      case VarKind::kConstant:
        break;  // hardwired, no storage
      case VarKind::kPrimaryInput: {
        const int lu = last_use_step(g, v.id, step_of_op);
        StorageLifetime lt;
        lt.vars = {v.id};
        lt.interval.birth = 0;
        lt.interval.death = std::max(lu + 1, 1);
        lt.is_input = true;
        lt.is_output = v.is_output;
        add_lifetime(lt);
        break;
      }
      case VarKind::kTemp: {
        const int def_step = step_of_op[v.def_op];
        const int lu = last_use_step(g, v.id, step_of_op);
        StorageLifetime lt;
        lt.vars = {v.id};
        if (def_step + 1 >= num_steps) {
          // Written at the iteration boundary: the value occupies slot 0 of
          // the next iteration (it can have no same-iteration consumers).
          lt.interval.birth = 0;
          lt.interval.death = 1;
        } else {
          lt.interval.birth = def_step + 1;
          // Outputs persist to the end of the iteration (sampled at the
          // boundary); dead temps are held one slot (their register is
          // still physically written).
          if (v.is_output)
            lt.interval.death = num_steps;
          else if (lu < 0)
            lt.interval.death = lt.interval.birth + 1;
          else
            lt.interval.death = lu + 1;
          if (lt.interval.death <= lt.interval.birth)
            lt.interval.death = lt.interval.birth + 1;
        }
        lt.is_output = v.is_output;
        add_lifetime(lt);
        break;
      }
      case VarKind::kState:
        break;  // handled in pass 1
    }
  }
  return out;
}

}  // namespace tsyn::cdfg
