// Graphviz (DOT) export of behaviors.
//
// Visual inspection of CDFGs — data dependencies, loop-carried back edges,
// scan-variable choices — for documentation and debugging.
#pragma once

#include <string>
#include <vector>

#include "cdfg/ir.h"

namespace tsyn::cdfg {

/// Renders the CDFG: operation nodes, variable edges, dashed loop-carried
/// back edges. Variables in `highlight` (e.g. selected scan variables) are
/// drawn as doubled red nodes.
///
/// `op_heat` (typically observe::op_heat) overlays per-operation fault
/// coverage: op nodes are re-colored on a red->yellow->green ramp and gain
/// the coverage percentage; values < 0 (or ops past the vector's end) keep
/// the plain style. Passing nullptr reproduces the plain rendering
/// byte-for-byte.
std::string to_dot(const Cdfg& g,
                   const std::vector<VarId>& highlight = {},
                   const std::vector<double>* op_heat = nullptr);

}  // namespace tsyn::cdfg
