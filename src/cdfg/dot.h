// Graphviz (DOT) export of behaviors.
//
// Visual inspection of CDFGs — data dependencies, loop-carried back edges,
// scan-variable choices — for documentation and debugging.
#pragma once

#include <string>
#include <vector>

#include "cdfg/ir.h"

namespace tsyn::cdfg {

/// Renders the CDFG: operation nodes, variable edges, dashed loop-carried
/// back edges. Variables in `highlight` (e.g. selected scan variables) are
/// drawn as doubled red nodes.
std::string to_dot(const Cdfg& g,
                   const std::vector<VarId>& highlight = {});

}  // namespace tsyn::cdfg
