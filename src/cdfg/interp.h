// Behavioral CDFG interpreter.
//
// Executes iterations of the behavior over fixed-width unsigned words.
// Used for validating synthesized datapaths against the behavior, and for
// the subspace-state-coverage metric of arithmetic BIST [28], which needs
// the value streams seen at every operation's inputs.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cdfg/ir.h"

namespace tsyn::cdfg {

/// Values of every variable after executing one iteration.
using VarValues = std::vector<std::uint64_t>;

/// Executes one iteration: `inputs` maps primary-input VarIds to values,
/// `state` holds the current state-variable values (by VarId). Returns all
/// variable values; updates `state` to the next-iteration values.
VarValues execute_iteration(const Cdfg& g,
                            const std::map<VarId, std::uint64_t>& inputs,
                            std::map<VarId, std::uint64_t>& state);

/// Runs `iterations` steps with per-iteration input streams
/// (inputs[i][k] = value of input k, in the order of g.inputs(), at
/// iteration i). States start at 0. Returns per-iteration variable values.
std::vector<VarValues> execute(
    const Cdfg& g, const std::vector<std::vector<std::uint64_t>>& inputs);

}  // namespace tsyn::cdfg
