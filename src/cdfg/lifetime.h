// Variable lifetime analysis over a schedule.
//
// Register assignment — conventional and testability-driven alike — operates
// on storage lifetimes: which control-step slots each value must be held in
// a register. Loop-carried state pairs (state variable + its update temp)
// merge into a single wrapping lifetime when the update is produced after the
// old value's last use; otherwise they split into two lifetimes joined by an
// end-of-iteration transfer.
//
// Slot convention: with a schedule of T control steps (0-based), "slot t" is
// the register state observed during step t. A value produced in step s is
// available from slot s+1; primary inputs occupy their registers from slot 0.
#pragma once

#include <vector>

#include "cdfg/ir.h"
#include "graph/interval.h"

namespace tsyn::cdfg {

/// One register-worth of demand: the variables that must share this storage
/// and the slots it is occupied.
struct StorageLifetime {
  /// Variables bound to this storage. Size 1, or 2 for a merged state pair
  /// {update temp, state var}.
  std::vector<VarId> vars;
  graph::Interval interval;
  bool is_state = false;   ///< holds a loop-carried value at iteration start
  bool is_input = false;   ///< loaded from a primary input
  bool is_output = false;  ///< observed as a primary output
  /// For a split state register: the variable whose storage is copied into
  /// this one at the iteration boundary (-1 otherwise).
  VarId transfer_from = -1;
};

struct LifetimeAnalysis {
  int num_slots = 0;  ///< equals the schedule length T
  std::vector<StorageLifetime> lifetimes;
  /// lifetime index holding each variable; -1 for constants/unstored.
  std::vector<int> lifetime_of_var;

  bool overlap(int a, int b) const {
    return graph::lifetimes_overlap(lifetimes[a].interval,
                                    lifetimes[b].interval, num_slots);
  }
};

/// Computes storage lifetimes for `g` under the given schedule.
/// `step_of_op[o]` is the 0-based control step of operation o;
/// `num_steps` is the schedule length (all steps < num_steps).
/// `split_states` forces every state pair into two lifetimes joined by a
/// boundary transfer even when merging would be legal — TFB-style BIST
/// synthesis [31] needs this so no register is written by an operation
/// that reads it.
LifetimeAnalysis analyze_lifetimes(const Cdfg& g,
                                   const std::vector<int>& step_of_op,
                                   int num_steps, bool split_states = false);

/// Last control step at which `v` is read (ops consuming it or using it as a
/// guard); -1 if unused.
int last_use_step(const Cdfg& g, VarId v, const std::vector<int>& step_of_op);

}  // namespace tsyn::cdfg
