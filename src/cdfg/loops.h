// CDFG loop analysis (§3.3.1).
//
// Every data-dependency cycle in the behavior — created by loop-carried
// state variables — induces a loop in the synthesized data path. Scan
// selection techniques ([33], [24]) pick scan variables so that each CDFG
// loop contains at least one; this module enumerates those loops at the
// variable level.
#pragma once

#include <vector>

#include "cdfg/ir.h"
#include "graph/cycles.h"
#include "graph/digraph.h"

namespace tsyn::cdfg {

/// Variable-level dependence digraph: edge u -> v when an operation reads u
/// and writes v, plus the loop-carried edges (update temp -> state var).
/// Constants are included as isolated sources (they have outgoing edges but
/// can never be on a loop).
graph::Digraph var_dependence_graph(const Cdfg& g);

/// Elementary CDFG loops as variable sequences.
std::vector<graph::Cycle> cdfg_loops(const Cdfg& g,
                                     std::size_t max_loops = 10000);

/// Variables lying on at least one CDFG loop.
std::vector<VarId> vars_on_loops(const Cdfg& g);

/// True if scanning (making directly controllable/observable) the given
/// variables breaks every CDFG loop.
bool breaks_all_cdfg_loops(const Cdfg& g, const std::vector<VarId>& scan_vars);

}  // namespace tsyn::cdfg
