#include "cdfg/dot.h"

#include <algorithm>
#include <sstream>

namespace tsyn::cdfg {

std::string to_dot(const Cdfg& g, const std::vector<VarId>& highlight) {
  auto highlighted = [&](VarId v) {
    return std::find(highlight.begin(), highlight.end(), v) !=
           highlight.end();
  };
  std::ostringstream out;
  out << "digraph \"" << g.name() << "\" {\n"
      << "  rankdir=TB;\n  node [fontsize=10];\n";

  // Variable nodes.
  for (const Variable& v : g.vars()) {
    std::string shape = "ellipse";
    std::string extra;
    switch (v.kind) {
      case VarKind::kPrimaryInput: shape = "invtriangle"; break;
      case VarKind::kConstant: shape = "plaintext"; break;
      case VarKind::kState: shape = "box3d"; break;
      case VarKind::kTemp: shape = "ellipse"; break;
    }
    if (v.is_output) extra += ", peripheries=2";
    if (highlighted(v.id)) extra += ", color=red, penwidth=2";
    out << "  v" << v.id << " [label=\"" << v.name << "\", shape=" << shape
        << extra << "];\n";
  }
  // Operation nodes and data edges.
  for (const Operation& op : g.ops()) {
    out << "  o" << op.id << " [label=\"" << to_string(op.kind)
        << "\", shape=circle, style=filled, fillcolor=lightgray];\n";
    for (VarId in : op.inputs) out << "  v" << in << " -> o" << op.id
                                   << ";\n";
    out << "  o" << op.id << " -> v" << op.output << ";\n";
    if (op.guard >= 0)
      out << "  v" << op.guard << " -> o" << op.id
          << " [style=dotted, label=\"" << (op.guard_polarity ? "" : "!")
          << "guard\"];\n";
  }
  // Loop-carried back edges.
  for (VarId s : g.states()) {
    const VarId upd = g.var(s).update_var;
    if (upd >= 0)
      out << "  v" << upd << " -> v" << s
          << " [style=dashed, constraint=false, color=blue];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace tsyn::cdfg
