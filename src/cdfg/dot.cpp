#include "cdfg/dot.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tsyn::cdfg {

namespace {

/// Red -> yellow -> green ramp over [0,1] as a "#rrggbb" hex color (same
/// stops as rtl/dot.cpp so datapath and CDFG heatmaps read identically).
std::string heat_color(double v) {
  if (v < 0) v = 0;
  if (v > 1) v = 1;
  const auto lerp = [](int a, int b, double t) {
    return static_cast<int>(a + (b - a) * t + 0.5);
  };
  int r, g, b;
  if (v < 0.5) {  // #d73027 -> #fee08b
    r = lerp(0xd7, 0xfe, v * 2), g = lerp(0x30, 0xe0, v * 2),
    b = lerp(0x27, 0x8b, v * 2);
  } else {  // #fee08b -> #1a9850
    r = lerp(0xfe, 0x1a, v * 2 - 1), g = lerp(0xe0, 0x98, v * 2 - 1),
    b = lerp(0x8b, 0x50, v * 2 - 1);
  }
  char buf[8];
  std::snprintf(buf, sizeof buf, "#%02x%02x%02x", r, g, b);
  return buf;
}

}  // namespace

std::string to_dot(const Cdfg& g, const std::vector<VarId>& highlight,
                   const std::vector<double>* op_heat) {
  auto highlighted = [&](VarId v) {
    return std::find(highlight.begin(), highlight.end(), v) !=
           highlight.end();
  };
  auto heat_of = [&](OpId o) {
    return op_heat && o >= 0 && o < static_cast<OpId>(op_heat->size())
               ? (*op_heat)[static_cast<std::size_t>(o)]
               : -1.0;
  };
  std::ostringstream out;
  out << "digraph \"" << g.name() << "\" {\n"
      << "  rankdir=TB;\n  node [fontsize=10];\n";

  // Variable nodes.
  for (const Variable& v : g.vars()) {
    std::string shape = "ellipse";
    std::string extra;
    switch (v.kind) {
      case VarKind::kPrimaryInput: shape = "invtriangle"; break;
      case VarKind::kConstant: shape = "plaintext"; break;
      case VarKind::kState: shape = "box3d"; break;
      case VarKind::kTemp: shape = "ellipse"; break;
    }
    if (v.is_output) extra += ", peripheries=2";
    if (highlighted(v.id)) extra += ", color=red, penwidth=2";
    out << "  v" << v.id << " [label=\"" << v.name << "\", shape=" << shape
        << extra << "];\n";
  }
  // Operation nodes and data edges.
  for (const Operation& op : g.ops()) {
    const double h = heat_of(op.id);
    out << "  o" << op.id << " [label=\"" << to_string(op.kind);
    if (h >= 0)
      out << "\\n" << static_cast<int>(h * 100.0 + 0.5) << "%";
    out << "\", shape=circle, style=filled, fillcolor=";
    if (h >= 0)
      out << "\"" << heat_color(h) << "\"";
    else
      out << "lightgray";
    out << "];\n";
    for (VarId in : op.inputs) out << "  v" << in << " -> o" << op.id
                                   << ";\n";
    out << "  o" << op.id << " -> v" << op.output << ";\n";
    if (op.guard >= 0)
      out << "  v" << op.guard << " -> o" << op.id
          << " [style=dotted, label=\"" << (op.guard_polarity ? "" : "!")
          << "guard\"];\n";
  }
  // Loop-carried back edges.
  for (VarId s : g.states()) {
    const VarId upd = g.var(s).update_var;
    if (upd >= 0)
      out << "  v" << upd << " -> v" << s
          << " [style=dashed, constraint=false, color=blue];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace tsyn::cdfg
