// Standard HLS benchmark behaviors.
//
// The surveyed papers evaluate on the classic 1990s high-level synthesis
// workloads (HAL differential-equation solver, elliptic wave filter, FIR,
// IIR, AR lattice, Tseng's example, DCT kernels). The original HDL sources
// are not distributable, so each DFG is reconstructed programmatically from
// its published structure; `fig1_example()` is the worked example of the
// paper's Figure 1, verbatim.
#pragma once

#include <string>
#include <vector>

#include "cdfg/ir.h"

namespace tsyn::cdfg {

/// Figure 1 of the paper: two chains (+1->+2->+5 and +3->+4), 3 control
/// steps, 2 adders. The schedule choice decides whether an assignment loop
/// forms.
Cdfg fig1_example();

/// HAL differential equation solver (Paulin's benchmark): 6 mul, 2 add,
/// 2 sub, 1 compare; loop-carried states x, y, u.
Cdfg diffeq();

/// Wave digital (elliptic-style) filter built from `sections` first-order
/// allpass stages in two parallel branches; each stage is 1 mul + 3
/// add/sub with one loop-carried state.
Cdfg wave_filter(int sections);

/// The classic EWF workload approximated as wave_filter(8): 8 mul, 25
/// add/sub, 8 states — the published 34-op/8-mul elliptic wave filter's op
/// mix and loop structure.
Cdfg ewf();

/// Direct-form FIR filter with `taps` coefficients; the delay line is a
/// chain of copy-updated states.
Cdfg fir(int taps);

/// Direct-form II IIR biquad: 5 mul, 4 add/sub, 2 delay states.
Cdfg iir_biquad();

/// AR lattice filter with `stages` lattice sections: 2 mul + 2 add/sub per
/// stage, one state per stage.
Cdfg ar_lattice(int stages);

/// Small mixed-operation example in the spirit of Tseng's FACET behavior.
Cdfg tseng();

/// 4-point DCT butterfly: pure feed-forward (no CDFG loops); exercises
/// assignment-loop formation in isolation.
Cdfg dct4();

/// Control-flow-oriented behavior (§7a): a sign-driven adaptive step with
/// two mutually exclusive guarded updates selected by a condition input.
/// The guarded ops can share one ALU even in the same control step.
Cdfg conditional_update();

/// All benchmarks at their standard sizes, for experiment sweeps.
std::vector<Cdfg> standard_benchmarks();

}  // namespace tsyn::cdfg
