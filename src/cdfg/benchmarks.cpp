#include "cdfg/benchmarks.h"

namespace tsyn::cdfg {

Cdfg fig1_example() {
  Cdfg g("fig1");
  const VarId a = g.add_input("a");
  const VarId b = g.add_input("b");
  const VarId d = g.add_input("d");
  const VarId f = g.add_input("f");
  const VarId p = g.add_input("p");
  const VarId q = g.add_input("q");
  const VarId s = g.add_input("s");
  const VarId c = g.add_op(OpKind::kAdd, "c", {a, b}, "+1");
  const VarId e = g.add_op(OpKind::kAdd, "e", {c, d}, "+2");
  const VarId r = g.add_op(OpKind::kAdd, "r", {p, q}, "+3");
  const VarId t = g.add_op(OpKind::kAdd, "t", {r, s}, "+4");
  const VarId out = g.add_op(OpKind::kAdd, "g", {e, f}, "+5");
  g.mark_output(out);
  g.mark_output(t);
  g.validate();
  return g;
}

Cdfg diffeq() {
  Cdfg g("diffeq");
  const VarId dx = g.add_input("dx");
  const VarId a = g.add_input("a");
  const VarId three = g.add_constant("three", 3);
  const VarId x = g.add_state("x");
  const VarId y = g.add_state("y");
  const VarId u = g.add_state("u");

  const VarId t1 = g.add_op(OpKind::kMul, "t1", {three, x});  // 3*x
  const VarId t2 = g.add_op(OpKind::kMul, "t2", {u, dx});     // u*dx
  const VarId t3 = g.add_op(OpKind::kMul, "t3", {t1, t2});    // 3*x*u*dx
  const VarId t4 = g.add_op(OpKind::kMul, "t4", {three, y});  // 3*y
  const VarId t5 = g.add_op(OpKind::kMul, "t5", {t4, dx});    // 3*y*dx
  const VarId t6 = g.add_op(OpKind::kMul, "t6", {u, dx});     // u*dx (again)
  const VarId t7 = g.add_op(OpKind::kSub, "t7", {u, t3});     // u - t3
  const VarId ul = g.add_op(OpKind::kSub, "ul", {t7, t5});    // - t5
  const VarId yl = g.add_op(OpKind::kAdd, "yl", {y, t6});     // y + u*dx
  const VarId xl = g.add_op(OpKind::kAdd, "xl", {x, dx});     // x + dx
  const VarId c = g.add_op(OpKind::kLt, "c", {xl, a});        // xl < a

  g.set_state_update(x, xl);
  g.set_state_update(y, yl);
  g.set_state_update(u, ul);
  g.mark_output(xl);
  g.mark_output(yl);
  g.mark_output(ul);
  g.mark_output(c);
  g.validate();
  return g;
}

Cdfg wave_filter(int sections) {
  Cdfg g("wave" + std::to_string(sections));
  const VarId x = g.add_input("x");
  std::vector<VarId> coeffs;
  std::vector<VarId> states;
  for (int i = 0; i < sections; ++i) {
    coeffs.push_back(g.add_input("g" + std::to_string(i)));
    states.push_back(g.add_state("sv" + std::to_string(i)));
  }

  // Two parallel branches of first-order allpass stages:
  //   u = in - sv;  m = g*u;  out = m + sv;  sv' = m + in
  auto allpass = [&](int i, VarId in) {
    const std::string n = std::to_string(i);
    const VarId u = g.add_op(OpKind::kSub, "u" + n, {in, states[i]});
    const VarId m = g.add_op(OpKind::kMul, "m" + n, {coeffs[i], u});
    const VarId out = g.add_op(OpKind::kAdd, "ap" + n, {m, states[i]});
    const VarId sv_new = g.add_op(OpKind::kAdd, "nv" + n, {m, in});
    g.set_state_update(states[i], sv_new);
    return out;
  };

  const int half = sections / 2;
  VarId b1 = x;
  for (int i = 0; i < half; ++i) b1 = allpass(i, b1);
  VarId b2 = x;
  for (int i = half; i < sections; ++i) b2 = allpass(i, b2);

  const VarId y = g.add_op(OpKind::kAdd, "y", {b1, b2});
  g.mark_output(y);
  g.validate();
  return g;
}

Cdfg ewf() {
  Cdfg g = wave_filter(8);
  g.set_name("ewf");
  return g;
}

Cdfg fir(int taps) {
  Cdfg g("fir" + std::to_string(taps));
  const VarId x = g.add_input("x");
  std::vector<VarId> coeffs;
  for (int i = 0; i < taps; ++i)
    coeffs.push_back(g.add_input("c" + std::to_string(i)));
  std::vector<VarId> delay;
  for (int i = 1; i < taps; ++i)
    delay.push_back(g.add_state("d" + std::to_string(i)));

  // y = c0*x + sum_i c_i * d_i
  VarId acc = g.add_op(OpKind::kMul, "p0", {coeffs[0], x});
  for (int i = 1; i < taps; ++i) {
    const std::string n = std::to_string(i);
    const VarId prod = g.add_op(OpKind::kMul, "p" + n, {coeffs[i],
                                                        delay[i - 1]});
    acc = g.add_op(OpKind::kAdd, "s" + n, {acc, prod});
  }
  // Delay-line shift: d1' = x, d_i' = d_{i-1}.
  for (int i = taps - 1; i >= 1; --i) {
    const std::string n = std::to_string(i);
    const VarId src = (i == 1) ? x : delay[i - 2];
    const VarId moved = g.add_op(OpKind::kCopy, "sh" + n, {src});
    g.set_state_update(delay[i - 1], moved);
  }
  g.mark_output(acc);
  g.validate();
  return g;
}

Cdfg iir_biquad() {
  Cdfg g("iir");
  const VarId x = g.add_input("x");
  const VarId a1 = g.add_input("a1");
  const VarId a2 = g.add_input("a2");
  const VarId b0 = g.add_input("b0");
  const VarId b1 = g.add_input("b1");
  const VarId b2 = g.add_input("b2");
  const VarId w1 = g.add_state("w1");
  const VarId w2 = g.add_state("w2");

  const VarId t1 = g.add_op(OpKind::kMul, "t1", {a1, w1});
  const VarId t2 = g.add_op(OpKind::kMul, "t2", {a2, w2});
  const VarId t3 = g.add_op(OpKind::kSub, "t3", {x, t1});
  const VarId w = g.add_op(OpKind::kSub, "w", {t3, t2});
  const VarId t4 = g.add_op(OpKind::kMul, "t4", {b0, w});
  const VarId t5 = g.add_op(OpKind::kMul, "t5", {b1, w1});
  const VarId t6 = g.add_op(OpKind::kMul, "t6", {b2, w2});
  const VarId t7 = g.add_op(OpKind::kAdd, "t7", {t4, t5});
  const VarId y = g.add_op(OpKind::kAdd, "y", {t7, t6});

  const VarId w2n = g.add_op(OpKind::kCopy, "w2n", {w1});
  g.set_state_update(w2, w2n);
  g.set_state_update(w1, w);
  g.mark_output(y);
  g.validate();
  return g;
}

Cdfg ar_lattice(int stages) {
  Cdfg g("ar" + std::to_string(stages));
  const VarId fin = g.add_input("f_in");
  std::vector<VarId> k;
  std::vector<VarId> b;
  for (int i = 0; i < stages; ++i) {
    k.push_back(g.add_input("k" + std::to_string(i)));
    b.push_back(g.add_state("b" + std::to_string(i)));
  }
  // Per stage (AR synthesis lattice):
  //   f_i = f_{i+1} - k_i * b_i
  //   b_{i+1}' = b_i + k_i * f_i
  VarId f = fin;
  for (int i = stages - 1; i >= 0; --i) {
    const std::string n = std::to_string(i);
    const VarId m1 = g.add_op(OpKind::kMul, "mf" + n, {k[i], b[i]});
    f = g.add_op(OpKind::kSub, "f" + n, {f, m1});
    const VarId m2 = g.add_op(OpKind::kMul, "mb" + n, {k[i], f});
    const VarId bn = g.add_op(OpKind::kAdd, "bn" + n, {b[i], m2});
    if (i + 1 < stages)
      g.set_state_update(b[i + 1], bn);
    else
      g.mark_output(bn);
  }
  // Stage 0's state reloads the filter output (feedback path).
  const VarId b0n = g.add_op(OpKind::kCopy, "b0n", {f});
  g.set_state_update(b[0], b0n);
  g.mark_output(f);
  g.validate();
  return g;
}

Cdfg tseng() {
  Cdfg g("tseng");
  const VarId a = g.add_input("a");
  const VarId b = g.add_input("b");
  const VarId c = g.add_input("c");
  const VarId d = g.add_input("d");
  const VarId e = g.add_input("e");
  const VarId f = g.add_input("f");
  const VarId h = g.add_input("h");

  const VarId t1 = g.add_op(OpKind::kMul, "t1", {a, b});
  const VarId t2 = g.add_op(OpKind::kAdd, "t2", {c, d});
  const VarId t3 = g.add_op(OpKind::kSub, "t3", {e, f});
  const VarId t4 = g.add_op(OpKind::kAdd, "t4", {t1, t2});
  const VarId t5 = g.add_op(OpKind::kOr, "t5", {t4, t3});
  const VarId y = g.add_op(OpKind::kAnd, "y", {t5, h});
  g.mark_output(y);
  g.validate();
  return g;
}

Cdfg dct4() {
  Cdfg g("dct4");
  const VarId x0 = g.add_input("x0");
  const VarId x1 = g.add_input("x1");
  const VarId x2 = g.add_input("x2");
  const VarId x3 = g.add_input("x3");
  const VarId c1 = g.add_input("c1");
  const VarId c2 = g.add_input("c2");

  const VarId s0 = g.add_op(OpKind::kAdd, "s0", {x0, x3});
  const VarId s1 = g.add_op(OpKind::kAdd, "s1", {x1, x2});
  const VarId d0 = g.add_op(OpKind::kSub, "d0", {x0, x3});
  const VarId d1 = g.add_op(OpKind::kSub, "d1", {x1, x2});
  const VarId y0 = g.add_op(OpKind::kAdd, "y0", {s0, s1});
  const VarId y2 = g.add_op(OpKind::kSub, "y2", {s0, s1});
  const VarId m0 = g.add_op(OpKind::kMul, "m0", {c1, d0});
  const VarId m1 = g.add_op(OpKind::kMul, "m1", {c2, d1});
  const VarId m2 = g.add_op(OpKind::kMul, "m2", {c2, d0});
  const VarId m3 = g.add_op(OpKind::kMul, "m3", {c1, d1});
  const VarId y1 = g.add_op(OpKind::kAdd, "y1", {m0, m1});
  const VarId y3 = g.add_op(OpKind::kSub, "y3", {m2, m3});
  g.mark_output(y0);
  g.mark_output(y1);
  g.mark_output(y2);
  g.mark_output(y3);
  g.validate();
  return g;
}

Cdfg conditional_update() {
  Cdfg g("cond");
  const VarId d = g.add_input("d");
  const VarId mu = g.add_input("mu");
  const VarId c = g.add_input("c", 1);
  const VarId k = g.add_state("k");

  const VarId up = g.add_op(OpKind::kAdd, "up", {k, mu});
  const VarId dn = g.add_op(OpKind::kSub, "dn", {k, mu});
  g.set_guard(g.var(up).def_op, c, true);
  g.set_guard(g.var(dn).def_op, c, false);
  const VarId kn = g.add_op(OpKind::kMux, "kn", {c, up, dn});
  const VarId y = g.add_op(OpKind::kMul, "y", {kn, d});
  g.set_state_update(k, kn);
  g.mark_output(y);
  g.validate();
  return g;
}

std::vector<Cdfg> standard_benchmarks() {
  std::vector<Cdfg> all;
  all.push_back(fig1_example());
  all.push_back(tseng());
  all.push_back(dct4());
  all.push_back(diffeq());
  all.push_back(iir_biquad());
  all.push_back(fir(8));
  all.push_back(ar_lattice(4));
  all.push_back(ewf());
  return all;
}

}  // namespace tsyn::cdfg
