#include "cdfg/interp.h"

#include <stdexcept>

#include "graph/paths.h"

namespace tsyn::cdfg {

namespace {

std::uint64_t mask_of_width(int width) {
  return width >= 64 ? ~0ULL : ((1ULL << width) - 1);
}

std::uint64_t eval_op(const Cdfg& g, const Operation& op,
                      const VarValues& vals) {
  const std::uint64_t a = vals[op.inputs[0]];
  const std::uint64_t b = op.inputs.size() > 1 ? vals[op.inputs[1]] : 0;
  const std::uint64_t c = op.inputs.size() > 2 ? vals[op.inputs[2]] : 0;
  const std::uint64_t mask = mask_of_width(g.var(op.output).width);
  switch (op.kind) {
    case OpKind::kAdd: return (a + b) & mask;
    case OpKind::kSub: return (a - b) & mask;
    case OpKind::kMul: return (a * b) & mask;
    case OpKind::kDiv: return b == 0 ? mask : (a / b) & mask;
    case OpKind::kAnd: return a & b & mask;
    case OpKind::kOr: return (a | b) & mask;
    case OpKind::kXor: return (a ^ b) & mask;
    case OpKind::kNot: return ~a & mask;
    case OpKind::kNeg: return (~a + 1) & mask;
    case OpKind::kShl: return (a << 1) & mask;
    case OpKind::kShr: return (a >> 1) & mask;
    case OpKind::kLt: return a < b ? 1 : 0;
    case OpKind::kEq: return a == b ? 1 : 0;
    case OpKind::kMux: return (a & 1) ? b : c;
    case OpKind::kCopy: return a & mask;
  }
  throw CdfgError("unknown op kind in interpreter");
}

}  // namespace

VarValues execute_iteration(const Cdfg& g,
                            const std::map<VarId, std::uint64_t>& inputs,
                            std::map<VarId, std::uint64_t>& state) {
  VarValues vals(g.num_vars(), 0);
  for (const Variable& v : g.vars()) {
    switch (v.kind) {
      case VarKind::kPrimaryInput: {
        const auto it = inputs.find(v.id);
        vals[v.id] = (it == inputs.end() ? 0 : it->second) &
                     mask_of_width(v.width);
        break;
      }
      case VarKind::kConstant:
        vals[v.id] =
            static_cast<std::uint64_t>(v.constant_value) &
            mask_of_width(v.width);
        break;
      case VarKind::kState: {
        const auto it = state.find(v.id);
        vals[v.id] = (it == state.end() ? 0 : it->second) &
                     mask_of_width(v.width);
        break;
      }
      case VarKind::kTemp:
        break;
    }
  }
  // Evaluate in dependence order.
  const auto order =
      graph::topological_order(g.op_dependence_graph(false));
  if (!order) throw CdfgError("cyclic dependences in interpreter");
  for (graph::NodeId o : *order) {
    const Operation& op = g.op(o);
    vals[op.output] = eval_op(g, op, vals);
  }
  // Advance states.
  for (VarId s : g.states()) state[s] = vals[g.var(s).update_var];
  return vals;
}

std::vector<VarValues> execute(
    const Cdfg& g, const std::vector<std::vector<std::uint64_t>>& inputs) {
  const std::vector<VarId> pis = g.inputs();
  std::map<VarId, std::uint64_t> state;
  for (VarId s : g.states()) state[s] = 0;
  std::vector<VarValues> out;
  for (const auto& frame : inputs) {
    std::map<VarId, std::uint64_t> in;
    for (std::size_t i = 0; i < pis.size() && i < frame.size(); ++i)
      in[pis[i]] = frame[i];
    out.push_back(execute_iteration(g, in, state));
  }
  return out;
}

}  // namespace tsyn::cdfg
