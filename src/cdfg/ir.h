// Control-Data Flow Graph intermediate representation.
//
// The CDFG is the behavioral input of every synthesis-for-testability
// technique in the survey: variables (primary inputs, constants, loop-carried
// state, temporaries), operations with data-dependency edges, and guards
// modelling control flow for conditional behaviors. Loop-carried state
// variables are what create CDFG loops (§3.3.1).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "graph/digraph.h"

namespace tsyn::cdfg {

using VarId = int;
using OpId = int;

/// Raised on malformed CDFG construction or queries.
class CdfgError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class VarKind {
  kPrimaryInput,  ///< external input, available from control step 0
  kConstant,      ///< compile-time constant, hardwired (needs no register)
  kState,         ///< loop-carried value; reads old value, updated per
                  ///< iteration by `update_var` (creates a CDFG loop)
  kTemp,          ///< produced by exactly one operation
};

enum class OpKind {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kAnd,
  kOr,
  kXor,
  kNot,
  kNeg,
  kShl,
  kShr,
  kLt,   ///< less-than comparison
  kEq,   ///< equality comparison
  kMux,  ///< 2:1 select: inputs = {sel, a, b}, out = sel ? a : b
  kCopy, ///< identity move; also models deflection ops of [16]
};

/// Hardware resource classes operations are bound to. An ALU implements
/// add/sub/compare/logic (the classic HLS convention); multipliers and
/// dividers are their own classes.
enum class FuType { kAlu, kMultiplier, kDivider, kShifter, kMux, kCopyUnit };

/// Default FU class implementing an operation kind.
FuType fu_type_of(OpKind kind);

/// Number of operand inputs expected for an operation kind.
int arity_of(OpKind kind);

/// Short mnemonic ("add", "mul", ...) for reports.
std::string to_string(OpKind kind);
std::string to_string(FuType type);

struct Variable {
  VarId id = -1;
  std::string name;
  VarKind kind = VarKind::kTemp;
  long constant_value = 0;  ///< meaningful only for kConstant
  OpId def_op = -1;         ///< producer, for kTemp
  VarId update_var = -1;    ///< next-iteration source, for kState
  bool is_output = false;   ///< primary output of the behavior
  int width = 16;           ///< bit width (gate-level expansion uses this)
  std::vector<OpId> uses;   ///< consuming operations
};

struct Operation {
  OpId id = -1;
  std::string name;
  OpKind kind = OpKind::kAdd;
  std::vector<VarId> inputs;
  VarId output = -1;
  /// Optional guard: the op executes only when `guard` has value
  /// `guard_polarity` (mutually exclusive ops may share hardware).
  VarId guard = -1;
  bool guard_polarity = true;
};

/// The CDFG. Build with the add_* methods; `validate()` checks invariants.
class Cdfg {
 public:
  explicit Cdfg(std::string name = "cdfg") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // ---- construction ----
  VarId add_input(const std::string& name, int width = 16);
  VarId add_constant(const std::string& name, long value, int width = 16);
  /// Declares a loop-carried state variable; bind its update with
  /// set_state_update once the producing op exists.
  VarId add_state(const std::string& name, int width = 16);
  /// Adds an operation; creates and returns its output variable
  /// named `out_name`.
  VarId add_op(OpKind kind, const std::string& out_name,
               const std::vector<VarId>& inputs, const std::string& op_name = "");
  void set_state_update(VarId state, VarId update);
  void mark_output(VarId v);
  void set_guard(OpId op, VarId guard, bool polarity);
  /// Rewires one operand of an existing operation (used by behavioral
  /// transformations, e.g. deflection insertion [16]). Keeps use lists
  /// consistent.
  void replace_op_input(OpId op, std::size_t port, VarId new_var);

  // ---- access ----
  int num_vars() const { return static_cast<int>(vars_.size()); }
  int num_ops() const { return static_cast<int>(ops_.size()); }
  const Variable& var(VarId v) const { return vars_.at(v); }
  const Operation& op(OpId o) const { return ops_.at(o); }
  const std::vector<Variable>& vars() const { return vars_; }
  const std::vector<Operation>& ops() const { return ops_; }

  /// Finds a variable by name; -1 if absent.
  VarId find_var(const std::string& name) const;

  /// Primary outputs (variables marked is_output).
  std::vector<VarId> outputs() const;
  /// Primary inputs.
  std::vector<VarId> inputs() const;
  /// State variables.
  std::vector<VarId> states() const;

  /// Operation ids whose output is consumed by `op` (its data predecessors,
  /// not following loop-carried edges).
  std::vector<OpId> data_predecessors(OpId op) const;

  /// Operation-level dependence digraph: edge a -> b when b consumes a's
  /// output. With `include_loop_edges`, also a -> b when a defines the
  /// update of a state variable consumed by b (the back edges that make
  /// CDFG loops).
  graph::Digraph op_dependence_graph(bool include_loop_edges) const;

  /// Checks structural invariants; throws CdfgError on violation.
  void validate() const;

  /// Number of operations of each FU type (for allocation lower bounds).
  std::vector<std::pair<FuType, int>> op_counts_by_fu_type() const;

  /// Multi-line description for logs/examples.
  std::string to_string() const;

 private:
  VarId new_var(const std::string& name, VarKind kind, int width);

  std::string name_;
  std::vector<Variable> vars_;
  std::vector<Operation> ops_;
};

}  // namespace tsyn::cdfg
