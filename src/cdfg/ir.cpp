#include "cdfg/ir.h"

#include <algorithm>
#include <sstream>

namespace tsyn::cdfg {

FuType fu_type_of(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kNeg:
    case OpKind::kAnd:
    case OpKind::kOr:
    case OpKind::kXor:
    case OpKind::kNot:
    case OpKind::kLt:
    case OpKind::kEq:
      return FuType::kAlu;
    case OpKind::kMul:
      return FuType::kMultiplier;
    case OpKind::kDiv:
      return FuType::kDivider;
    case OpKind::kShl:
    case OpKind::kShr:
      return FuType::kShifter;
    case OpKind::kMux:
      return FuType::kMux;
    case OpKind::kCopy:
      return FuType::kCopyUnit;
  }
  return FuType::kAlu;
}

int arity_of(OpKind kind) {
  switch (kind) {
    case OpKind::kNot:
    case OpKind::kNeg:
    case OpKind::kCopy:
      return 1;
    case OpKind::kMux:
      return 3;
    default:
      return 2;
  }
}

std::string to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd: return "add";
    case OpKind::kSub: return "sub";
    case OpKind::kMul: return "mul";
    case OpKind::kDiv: return "div";
    case OpKind::kAnd: return "and";
    case OpKind::kOr: return "or";
    case OpKind::kXor: return "xor";
    case OpKind::kNot: return "not";
    case OpKind::kNeg: return "neg";
    case OpKind::kShl: return "shl";
    case OpKind::kShr: return "shr";
    case OpKind::kLt: return "lt";
    case OpKind::kEq: return "eq";
    case OpKind::kMux: return "mux";
    case OpKind::kCopy: return "copy";
  }
  return "?";
}

std::string to_string(FuType type) {
  switch (type) {
    case FuType::kAlu: return "ALU";
    case FuType::kMultiplier: return "MUL";
    case FuType::kDivider: return "DIV";
    case FuType::kShifter: return "SHIFT";
    case FuType::kMux: return "MUX";
    case FuType::kCopyUnit: return "COPY";
  }
  return "?";
}

VarId Cdfg::new_var(const std::string& name, VarKind kind, int width) {
  if (find_var(name) != -1)
    throw CdfgError("duplicate variable name: " + name);
  Variable v;
  v.id = num_vars();
  v.name = name;
  v.kind = kind;
  v.width = width;
  vars_.push_back(std::move(v));
  return vars_.back().id;
}

VarId Cdfg::add_input(const std::string& name, int width) {
  return new_var(name, VarKind::kPrimaryInput, width);
}

VarId Cdfg::add_constant(const std::string& name, long value, int width) {
  const VarId id = new_var(name, VarKind::kConstant, width);
  vars_[id].constant_value = value;
  return id;
}

VarId Cdfg::add_state(const std::string& name, int width) {
  return new_var(name, VarKind::kState, width);
}

VarId Cdfg::add_op(OpKind kind, const std::string& out_name,
                   const std::vector<VarId>& inputs,
                   const std::string& op_name) {
  if (static_cast<int>(inputs.size()) != arity_of(kind))
    throw CdfgError("operation " + out_name + ": expected " +
                    std::to_string(arity_of(kind)) + " inputs, got " +
                    std::to_string(inputs.size()));
  for (VarId in : inputs)
    if (in < 0 || in >= num_vars())
      throw CdfgError("operation " + out_name + ": bad input var id");

  Operation op;
  op.id = num_ops();
  op.kind = kind;
  op.name = op_name.empty()
                ? tsyn::cdfg::to_string(kind) + "_" + std::to_string(op.id)
                : op_name;
  op.inputs = inputs;
  op.output = new_var(out_name, VarKind::kTemp, vars_[inputs[0]].width);
  vars_[op.output].def_op = op.id;
  for (VarId in : inputs) vars_[in].uses.push_back(op.id);
  ops_.push_back(std::move(op));
  return ops_.back().output;
}

void Cdfg::set_state_update(VarId state, VarId update) {
  if (vars_.at(state).kind != VarKind::kState)
    throw CdfgError("set_state_update: " + vars_.at(state).name +
                    " is not a state variable");
  if (vars_.at(update).kind != VarKind::kTemp)
    throw CdfgError("set_state_update: update source must be a temp");
  vars_[state].update_var = update;
}

void Cdfg::mark_output(VarId v) { vars_.at(v).is_output = true; }

void Cdfg::replace_op_input(OpId op, std::size_t port, VarId new_var) {
  Operation& o = ops_.at(op);
  if (port >= o.inputs.size())
    throw CdfgError("replace_op_input: port out of range");
  if (new_var < 0 || new_var >= num_vars())
    throw CdfgError("replace_op_input: bad variable");
  const VarId old_var = o.inputs[port];
  o.inputs[port] = new_var;
  // Drop one use entry of the old variable (it may legitimately appear
  // multiple times if the op reads it on several ports).
  auto& old_uses = vars_[old_var].uses;
  const auto it = std::find(old_uses.begin(), old_uses.end(), op);
  if (it != old_uses.end()) old_uses.erase(it);
  vars_[new_var].uses.push_back(op);
}

void Cdfg::set_guard(OpId op, VarId guard, bool polarity) {
  ops_.at(op).guard = guard;
  ops_.at(op).guard_polarity = polarity;
  vars_.at(guard).uses.push_back(op);
}

VarId Cdfg::find_var(const std::string& name) const {
  for (const Variable& v : vars_)
    if (v.name == name) return v.id;
  return -1;
}

std::vector<VarId> Cdfg::outputs() const {
  std::vector<VarId> out;
  for (const Variable& v : vars_)
    if (v.is_output) out.push_back(v.id);
  return out;
}

std::vector<VarId> Cdfg::inputs() const {
  std::vector<VarId> out;
  for (const Variable& v : vars_)
    if (v.kind == VarKind::kPrimaryInput) out.push_back(v.id);
  return out;
}

std::vector<VarId> Cdfg::states() const {
  std::vector<VarId> out;
  for (const Variable& v : vars_)
    if (v.kind == VarKind::kState) out.push_back(v.id);
  return out;
}

std::vector<OpId> Cdfg::data_predecessors(OpId op) const {
  std::vector<OpId> preds;
  for (VarId in : ops_.at(op).inputs) {
    const Variable& v = vars_[in];
    if (v.kind == VarKind::kTemp && v.def_op >= 0)
      preds.push_back(v.def_op);
  }
  std::sort(preds.begin(), preds.end());
  preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
  return preds;
}

graph::Digraph Cdfg::op_dependence_graph(bool include_loop_edges) const {
  graph::Digraph g(num_ops());
  for (const Operation& op : ops_) {
    for (VarId in : op.inputs) {
      const Variable& v = vars_[in];
      if (v.kind == VarKind::kTemp && v.def_op >= 0)
        g.add_edge_unique(v.def_op, op.id);
      else if (include_loop_edges && v.kind == VarKind::kState &&
               v.update_var >= 0)
        g.add_edge_unique(vars_[v.update_var].def_op, op.id);
    }
  }
  return g;
}

void Cdfg::validate() const {
  for (const Variable& v : vars_) {
    if (v.kind == VarKind::kState) {
      if (v.update_var < 0)
        throw CdfgError("state variable " + v.name + " has no update");
      if (vars_.at(v.update_var).kind != VarKind::kTemp)
        throw CdfgError("state variable " + v.name +
                        " updated by a non-temp");
    }
    if (v.kind == VarKind::kTemp && v.def_op < 0)
      throw CdfgError("temp variable " + v.name + " has no producer");
    for (OpId o : v.uses)
      if (o < 0 || o >= num_ops())
        throw CdfgError("variable " + v.name + " used by invalid op");
  }
  for (const Operation& op : ops_) {
    if (static_cast<int>(op.inputs.size()) != arity_of(op.kind))
      throw CdfgError("op " + op.name + " has wrong arity");
    if (op.output < 0 || vars_.at(op.output).def_op != op.id)
      throw CdfgError("op " + op.name + " output link broken");
  }
  // The forward dependence graph (without loop edges) must be acyclic:
  // combinational recursion in a behavior is an error.
  const graph::Digraph g = op_dependence_graph(/*include_loop_edges=*/false);
  graph::Digraph no_self(g.num_nodes());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u)
    for (graph::NodeId v2 : g.successors(u)) no_self.add_edge(u, v2);
  std::vector<int> in_deg(no_self.num_nodes(), 0);
  // Kahn check.
  for (graph::NodeId u = 0; u < no_self.num_nodes(); ++u)
    for (graph::NodeId v2 : no_self.successors(u)) ++in_deg[v2];
  std::vector<graph::NodeId> ready;
  for (graph::NodeId u = 0; u < no_self.num_nodes(); ++u)
    if (in_deg[u] == 0) ready.push_back(u);
  std::size_t seen = 0;
  while (!ready.empty()) {
    const graph::NodeId u = ready.back();
    ready.pop_back();
    ++seen;
    for (graph::NodeId v2 : no_self.successors(u))
      if (--in_deg[v2] == 0) ready.push_back(v2);
  }
  if (seen != static_cast<std::size_t>(no_self.num_nodes()))
    throw CdfgError("combinational cycle in CDFG " + name_);
}

std::vector<std::pair<FuType, int>> Cdfg::op_counts_by_fu_type() const {
  std::vector<std::pair<FuType, int>> counts;
  for (const Operation& op : ops_) {
    const FuType t = fu_type_of(op.kind);
    auto it = std::find_if(counts.begin(), counts.end(),
                           [&](const auto& p) { return p.first == t; });
    if (it == counts.end())
      counts.emplace_back(t, 1);
    else
      ++it->second;
  }
  return counts;
}

std::string Cdfg::to_string() const {
  std::ostringstream out;
  out << "cdfg " << name_ << ": " << num_ops() << " ops, " << num_vars()
      << " vars, " << inputs().size() << " inputs, " << outputs().size()
      << " outputs, " << states().size() << " states\n";
  for (const Operation& op : ops_) {
    out << "  " << vars_[op.output].name << " = " << tsyn::cdfg::to_string(op.kind)
        << "(";
    for (std::size_t i = 0; i < op.inputs.size(); ++i) {
      if (i) out << ", ";
      out << vars_[op.inputs[i]].name;
    }
    out << ")";
    if (op.guard >= 0)
      out << " if " << (op.guard_polarity ? "" : "!")
          << vars_[op.guard].name;
    out << "\n";
  }
  for (const Variable& v : vars_)
    if (v.kind == VarKind::kState)
      out << "  state " << v.name << " <- " << vars_[v.update_var].name
          << "\n";
  return out.str();
}

}  // namespace tsyn::cdfg
