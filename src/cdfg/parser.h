// Text format for CDFGs.
//
// A small line-oriented language so benchmark behaviors can be stored as
// plain files and users can feed their own:
//
//   cdfg diffeq            # header (optional, names the graph)
//   input  x [width]       # primary input
//   const  three 3 [width] # named constant
//   state  u [width]       # loop-carried state variable
//   op     mul t1 three x  # kind, output var, operand vars
//   guard  t1 cond 1       # op producing t1 executes when cond == 1
//   update u ul            # state u takes ul's value each iteration
//   output y               # primary output
//   # comments and blank lines are ignored
#pragma once

#include <string>

#include "cdfg/ir.h"

namespace tsyn::cdfg {

/// Parses the text format; throws CdfgError with a line number on errors.
Cdfg parse_cdfg(const std::string& text);

/// Serializes to the same text format (round-trips through parse_cdfg).
std::string serialize_cdfg(const Cdfg& g);

}  // namespace tsyn::cdfg
