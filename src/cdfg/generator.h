// Synthetic CDFG generator.
//
// Property-style tests and scaling sweeps need workloads beyond the fixed
// benchmark suite; this generator produces random data-flow-intensive
// behaviors (the design class the survey's techniques target, §7a) with a
// controllable amount of loop-carried state.
#pragma once

#include "cdfg/ir.h"
#include "util/rng.h"

namespace tsyn::cdfg {

struct GeneratorParams {
  int num_ops = 20;
  int num_inputs = 4;
  /// Number of loop-carried state variables (each creates >= 1 CDFG loop).
  int num_states = 2;
  /// Probability that a binary op is a multiply (vs an ALU op).
  double mul_fraction = 0.3;
  std::uint64_t seed = 1;
};

/// Generates a valid, connected, acyclic-forward CDFG with the requested
/// loop-carried state. Every sink becomes a primary output.
Cdfg random_cdfg(const GeneratorParams& params);

}  // namespace tsyn::cdfg
