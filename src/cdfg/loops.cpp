#include "cdfg/loops.h"

#include <algorithm>

#include "graph/scc.h"

namespace tsyn::cdfg {

graph::Digraph var_dependence_graph(const Cdfg& g) {
  graph::Digraph d(g.num_vars());
  for (const Operation& op : g.ops())
    for (VarId in : op.inputs) d.add_edge_unique(in, op.output);
  for (VarId s : g.states()) {
    const VarId upd = g.var(s).update_var;
    if (upd >= 0) d.add_edge_unique(upd, s);
  }
  return d;
}

std::vector<graph::Cycle> cdfg_loops(const Cdfg& g, std::size_t max_loops) {
  return graph::elementary_cycles(var_dependence_graph(g), max_loops);
}

std::vector<VarId> vars_on_loops(const Cdfg& g) {
  return graph::nodes_on_cycles(var_dependence_graph(g));
}

bool breaks_all_cdfg_loops(const Cdfg& g,
                           const std::vector<VarId>& scan_vars) {
  const graph::Digraph d = var_dependence_graph(g);
  std::vector<bool> keep(d.num_nodes(), true);
  for (VarId v : scan_vars) keep[v] = false;
  const graph::Digraph sub = d.induced_subgraph(keep);
  return graph::is_acyclic(sub, /*ignore_self_loops=*/false);
}

}  // namespace tsyn::cdfg
