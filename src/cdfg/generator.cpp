#include "cdfg/generator.h"

#include <algorithm>
#include <cassert>

namespace tsyn::cdfg {

Cdfg random_cdfg(const GeneratorParams& params) {
  assert(params.num_ops >= 1);
  assert(params.num_inputs >= 1);
  util::Rng rng(params.seed);
  Cdfg g("rand" + std::to_string(params.seed));

  std::vector<VarId> sources;  // all vars usable as operands
  for (int i = 0; i < params.num_inputs; ++i)
    sources.push_back(g.add_input("in" + std::to_string(i)));
  std::vector<VarId> states;
  for (int i = 0; i < params.num_states; ++i) {
    states.push_back(g.add_state("st" + std::to_string(i)));
    sources.push_back(states.back());
  }

  std::vector<VarId> temps;
  for (int i = 0; i < params.num_ops; ++i) {
    const bool mul = rng.next_bool(params.mul_fraction);
    OpKind kind;
    if (mul) {
      kind = OpKind::kMul;
    } else {
      static constexpr OpKind kAluKinds[] = {OpKind::kAdd, OpKind::kSub,
                                             OpKind::kAnd, OpKind::kXor};
      kind = kAluKinds[rng.pick_index(4)];
    }
    // Bias operand choice toward recent temps so the graph is deep rather
    // than a flat fan-in tree (deep graphs stress sequential depth metrics).
    auto pick_operand = [&]() -> VarId {
      if (!temps.empty() && rng.next_bool(0.65)) {
        const std::size_t k = std::min<std::size_t>(temps.size(), 6);
        return temps[temps.size() - 1 - rng.pick_index(k)];
      }
      return sources[rng.pick_index(sources.size())];
    };
    const VarId a = pick_operand();
    VarId b = pick_operand();
    if (b == a && sources.size() > 1) b = pick_operand();
    const VarId out =
        g.add_op(kind, "t" + std::to_string(i), {a, b});
    temps.push_back(out);
  }

  // Bind each state's update to a distinct late temp so states create loops
  // of varied length.
  std::vector<VarId> update_pool = temps;
  rng.shuffle(update_pool);
  std::size_t next = 0;
  for (VarId s : states) {
    // Prefer a temp that (transitively) depends on this state so the loop is
    // real; fall back to any temp.
    VarId chosen = -1;
    for (std::size_t k = next; k < update_pool.size(); ++k) {
      if (g.var(update_pool[k]).def_op >= 0) {
        chosen = update_pool[k];
        std::swap(update_pool[k], update_pool[next]);
        ++next;
        break;
      }
    }
    if (chosen < 0) chosen = temps.back();
    g.set_state_update(s, chosen);
  }

  // Every sink (no uses, not a state update) becomes a primary output; make
  // sure at least one output exists.
  std::vector<bool> is_update(g.num_vars(), false);
  for (VarId s : states) is_update[g.var(s).update_var] = true;
  bool any_output = false;
  for (VarId t : temps) {
    if (g.var(t).uses.empty() && !is_update[t]) {
      g.mark_output(t);
      any_output = true;
    }
  }
  if (!any_output) g.mark_output(temps.back());
  g.validate();
  return g;
}

}  // namespace tsyn::cdfg
