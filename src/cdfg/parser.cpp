#include "cdfg/parser.h"

#include <map>
#include <sstream>

#include "util/metrics.h"
#include "util/text.h"
#include "util/trace.h"

namespace tsyn::cdfg {

namespace {

const std::map<std::string, OpKind>& op_kind_names() {
  static const std::map<std::string, OpKind> kNames = {
      {"add", OpKind::kAdd}, {"sub", OpKind::kSub}, {"mul", OpKind::kMul},
      {"div", OpKind::kDiv}, {"and", OpKind::kAnd}, {"or", OpKind::kOr},
      {"xor", OpKind::kXor}, {"not", OpKind::kNot}, {"neg", OpKind::kNeg},
      {"shl", OpKind::kShl}, {"shr", OpKind::kShr}, {"lt", OpKind::kLt},
      {"eq", OpKind::kEq},   {"mux", OpKind::kMux}, {"copy", OpKind::kCopy},
  };
  return kNames;
}

[[noreturn]] void fail(int line, const std::string& msg) {
  throw CdfgError("cdfg parse error, line " + std::to_string(line) + ": " +
                  msg);
}

}  // namespace

Cdfg parse_cdfg(const std::string& text) {
  TSYN_SPAN("cdfg.parse");
  static util::Counter& runs = util::metrics().counter("cdfg.parse.runs");
  runs.add();
  Cdfg g;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  // Guards and updates may reference vars defined later; resolve at the end.
  std::vector<std::tuple<int, std::string, std::string, bool>> guards;
  std::vector<std::tuple<int, std::string, std::string>> updates;
  std::vector<std::pair<int, std::string>> outputs;

  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = util::trim(raw);
    const auto hash = line.find('#');
    if (hash != std::string_view::npos)
      line = util::trim(line.substr(0, hash));
    if (line.empty()) continue;
    const std::vector<std::string> tok = util::split(line, " \t");
    const std::string& cmd = tok[0];

    if (cmd == "cdfg") {
      if (tok.size() != 2) fail(line_no, "cdfg <name>");
      g.set_name(tok[1]);
    } else if (cmd == "input" || cmd == "state") {
      if (tok.size() < 2 || tok.size() > 3)
        fail(line_no, cmd + " <name> [width]");
      const int width = tok.size() == 3 ? std::stoi(tok[2]) : 16;
      if (cmd == "input")
        g.add_input(tok[1], width);
      else
        g.add_state(tok[1], width);
    } else if (cmd == "const") {
      if (tok.size() < 3 || tok.size() > 4)
        fail(line_no, "const <name> <value> [width]");
      const int width = tok.size() == 4 ? std::stoi(tok[3]) : 16;
      g.add_constant(tok[1], std::stol(tok[2]), width);
    } else if (cmd == "op") {
      if (tok.size() < 4) fail(line_no, "op <kind> <out> <in>...");
      const auto it = op_kind_names().find(tok[1]);
      if (it == op_kind_names().end())
        fail(line_no, "unknown op kind: " + tok[1]);
      std::vector<VarId> ins;
      for (std::size_t i = 3; i < tok.size(); ++i) {
        const VarId v = g.find_var(tok[i]);
        if (v < 0) fail(line_no, "unknown variable: " + tok[i]);
        ins.push_back(v);
      }
      try {
        g.add_op(it->second, tok[2], ins);
      } catch (const CdfgError& e) {
        fail(line_no, e.what());
      }
    } else if (cmd == "guard") {
      if (tok.size() != 4) fail(line_no, "guard <op-out> <cond> <0|1>");
      guards.emplace_back(line_no, tok[1], tok[2], tok[3] == "1");
    } else if (cmd == "update") {
      if (tok.size() != 3) fail(line_no, "update <state> <source>");
      updates.emplace_back(line_no, tok[1], tok[2]);
    } else if (cmd == "output") {
      if (tok.size() != 2) fail(line_no, "output <var>");
      outputs.emplace_back(line_no, tok[1]);
    } else {
      fail(line_no, "unknown directive: " + cmd);
    }
  }

  for (const auto& [ln, out_var, cond, pol] : guards) {
    const VarId ov = g.find_var(out_var);
    const VarId cv = g.find_var(cond);
    if (ov < 0) fail(ln, "unknown variable: " + out_var);
    if (cv < 0) fail(ln, "unknown variable: " + cond);
    if (g.var(ov).def_op < 0) fail(ln, out_var + " is not an op output");
    g.set_guard(g.var(ov).def_op, cv, pol);
  }
  for (const auto& [ln, state, source] : updates) {
    const VarId sv = g.find_var(state);
    const VarId uv = g.find_var(source);
    if (sv < 0) fail(ln, "unknown state: " + state);
    if (uv < 0) fail(ln, "unknown variable: " + source);
    try {
      g.set_state_update(sv, uv);
    } catch (const CdfgError& e) {
      fail(ln, e.what());
    }
  }
  for (const auto& [ln, name] : outputs) {
    const VarId v = g.find_var(name);
    if (v < 0) fail(ln, "unknown variable: " + name);
    g.mark_output(v);
  }
  g.validate();
  return g;
}

std::string serialize_cdfg(const Cdfg& g) {
  std::ostringstream out;
  out << "cdfg " << g.name() << "\n";
  for (const Variable& v : g.vars()) {
    switch (v.kind) {
      case VarKind::kPrimaryInput:
        out << "input " << v.name << " " << v.width << "\n";
        break;
      case VarKind::kConstant:
        out << "const " << v.name << " " << v.constant_value << " "
            << v.width << "\n";
        break;
      case VarKind::kState:
        out << "state " << v.name << " " << v.width << "\n";
        break;
      case VarKind::kTemp:
        break;
    }
  }
  for (const Operation& op : g.ops()) {
    out << "op " << to_string(op.kind) << " " << g.var(op.output).name;
    for (VarId in : op.inputs) out << " " << g.var(in).name;
    out << "\n";
    if (op.guard >= 0)
      out << "guard " << g.var(op.output).name << " " << g.var(op.guard).name
          << " " << (op.guard_polarity ? 1 : 0) << "\n";
  }
  for (VarId s : g.states())
    out << "update " << g.var(s).name << " "
        << g.var(g.var(s).update_var).name << "\n";
  for (VarId o : g.outputs()) out << "output " << g.var(o).name << "\n";
  return out.str();
}

}  // namespace tsyn::cdfg
