// BIST test plan generation (§5.2).
//
// Turns a session schedule into the concrete per-session artifact a test
// engineer consumes: for each session, which modules are under test and the
// role (TPGR / SR / hold) every register plays.
#pragma once

#include <string>
#include <vector>

#include "bist/sessions.h"
#include "cdfg/ir.h"
#include "hls/binding.h"
#include "rtl/datapath.h"

namespace tsyn::bist {

struct SessionPlan {
  std::vector<int> modules;    ///< FU indices tested in this session
  std::vector<int> tpgr_regs;  ///< registers generating patterns
  std::vector<int> sr_regs;    ///< registers compacting responses
};

struct TestPlan {
  std::vector<SessionPlan> sessions;
  /// Registers needing BILBO (both roles across different sessions).
  std::vector<int> bilbo_regs;
  /// Registers needing CBILBO (both roles in one session).
  std::vector<int> cbilbo_regs;

  std::string to_string(const rtl::Datapath& dp) const;
};

/// Builds the plan from a binding and its session coloring.
TestPlan build_test_plan(const cdfg::Cdfg& g, const hls::Binding& b,
                         const SessionAnalysis& sessions);

}  // namespace tsyn::bist
