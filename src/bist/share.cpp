#include "bist/share.h"

#include <algorithm>
#include <climits>
#include <map>

namespace tsyn::bist {

int BistRoles::test_registers() const {
  std::set<int> all = tpgrs;
  all.insert(srs.begin(), srs.end());
  return static_cast<int>(all.size());
}

namespace {

/// Per-module input/output lifetime sets from a binding's FU map.
struct ModuleIo {
  std::vector<std::set<int>> in_lts;   // per FU
  std::vector<std::set<int>> out_lts;  // per FU
};

ModuleIo module_io(const cdfg::Cdfg& g, const hls::Binding& b) {
  ModuleIo io;
  io.in_lts.assign(b.num_fus(), {});
  io.out_lts.assign(b.num_fus(), {});
  for (cdfg::OpId o = 0; o < g.num_ops(); ++o) {
    const int fu = b.fu_of_op[o];
    if (fu < 0) continue;
    for (cdfg::VarId in : g.op(o).inputs) {
      const int lt = b.lifetimes.lifetime_of_var[in];
      if (lt >= 0) io.in_lts[fu].insert(lt);
    }
    const int out = b.lifetimes.lifetime_of_var[g.op(o).output];
    if (out >= 0) io.out_lts[fu].insert(out);
  }
  return io;
}

BistRoles roles_for_map(const cdfg::Cdfg& g, const hls::Binding& b,
                        const std::vector<int>& reg_of_lifetime) {
  const ModuleIo io = module_io(g, b);
  BistRoles roles;
  std::vector<std::set<int>> in_regs(b.num_fus());
  std::vector<std::set<int>> out_regs(b.num_fus());
  for (int fu = 0; fu < b.num_fus(); ++fu) {
    for (int lt : io.in_lts[fu]) {
      in_regs[fu].insert(reg_of_lifetime[lt]);
      roles.tpgrs.insert(reg_of_lifetime[lt]);
    }
    for (int lt : io.out_lts[fu]) {
      out_regs[fu].insert(reg_of_lifetime[lt]);
      roles.srs.insert(reg_of_lifetime[lt]);
    }
  }
  // Exact CBILBO condition: r feeds module m AND r is m's only output
  // register — generating and capturing must then happen in r at once.
  std::set<int> cbilbo_regs;
  for (int fu = 0; fu < b.num_fus(); ++fu)
    if (out_regs[fu].size() == 1) {
      const int r = *out_regs[fu].begin();
      if (in_regs[fu].count(r)) cbilbo_regs.insert(r);
    }
  roles.cbilbos = static_cast<int>(cbilbo_regs.size());
  return roles;
}

}  // namespace

BistRoles audit_roles(const cdfg::Cdfg& g, const hls::Binding& b) {
  return roles_for_map(g, b, b.reg_of_lifetime);
}

ShareResult sharing_register_assignment(const cdfg::Cdfg& g,
                                        const hls::Binding& b) {
  const cdfg::LifetimeAnalysis& lts = b.lifetimes;
  const int n = static_cast<int>(lts.lifetimes.size());
  const ModuleIo io = module_io(g, b);

  // Modules each lifetime feeds / is produced by.
  std::vector<std::set<int>> feeds(n);
  std::vector<std::set<int>> produced_by(n);
  for (int fu = 0; fu < b.num_fus(); ++fu) {
    for (int lt : io.in_lts[fu]) feeds[lt].insert(fu);
    for (int lt : io.out_lts[fu]) produced_by[lt].insert(fu);
  }

  // Greedy: lifetimes with the most module relations first; place each in
  // the register whose existing roles overlap its own the most.
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int bb) {
    const std::size_t ra = feeds[a].size() + produced_by[a].size();
    const std::size_t rb = feeds[bb].size() + produced_by[bb].size();
    if (ra != rb) return ra > rb;
    return a < bb;
  });

  ShareResult result;
  result.reg_of_lifetime.assign(n, -1);
  std::vector<std::vector<int>> members;      // per register
  std::vector<std::set<int>> reg_feeds;       // modules fed
  std::vector<std::set<int>> reg_produced;    // modules captured

  for (int lt : order) {
    int best = -1;
    long best_score = LONG_MIN;
    for (std::size_t r = 0; r < members.size(); ++r) {
      bool clash = false;
      for (int m : members[r])
        if (lts.overlap(lt, m)) {
          clash = true;
          break;
        }
      if (clash) continue;
      long score = 0;
      for (int fu : feeds[lt])
        if (reg_feeds[r].count(fu)) score += 2;  // shared TPGR
      for (int fu : produced_by[lt])
        if (reg_produced[r].count(fu)) score += 2;  // shared SR
      // Mild preference for role-homogeneous registers (input lifetimes
      // with input registers) to avoid needless BILBOs.
      if (!feeds[lt].empty() && !reg_feeds[r].empty()) score += 1;
      if (!produced_by[lt].empty() && !reg_produced[r].empty()) score += 1;
      // Avoid creating self-adjacency where possible.
      for (int fu : feeds[lt])
        if (reg_produced[r].count(fu)) score -= 3;
      for (int fu : produced_by[lt])
        if (reg_feeds[r].count(fu)) score -= 3;
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(r);
      }
    }
    if (best < 0) {
      members.emplace_back();
      reg_feeds.emplace_back();
      reg_produced.emplace_back();
      best = static_cast<int>(members.size()) - 1;
    }
    result.reg_of_lifetime[lt] = best;
    members[best].push_back(lt);
    reg_feeds[best].insert(feeds[lt].begin(), feeds[lt].end());
    reg_produced[best].insert(produced_by[lt].begin(),
                              produced_by[lt].end());
  }
  result.num_regs = static_cast<int>(members.size());
  result.roles = roles_for_map(g, b, result.reg_of_lifetime);
  return result;
}

}  // namespace tsyn::bist
