#include "bist/tfb.h"

#include <algorithm>
#include <set>

#include "graph/clique_partition.h"
#include "graph/interval.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace tsyn::bist {

TfbResult tfb_synthesis(const cdfg::Cdfg& g, const hls::Schedule& s) {
  TSYN_SPAN("bist.tfb");
  TfbResult result;
  hls::Binding& b = result.binding;
  b.lifetimes = cdfg::analyze_lifetimes(g, s.step_of_op, s.num_steps,
                                        /*split_states=*/true);
  const cdfg::LifetimeAnalysis& lts = b.lifetimes;

  // Actions: every non-copy op, identified by its id.
  std::vector<cdfg::OpId> actions;
  for (cdfg::OpId o = 0; o < g.num_ops(); ++o)
    if (g.op(o).kind != cdfg::OpKind::kCopy) actions.push_back(o);

  // Inherent self-adjacency: the op reads the register its result lands in
  // (only possible for merged last-step state updates).
  auto reads_own_output = [&](cdfg::OpId o) {
    const int out_lt = lts.lifetime_of_var[g.op(o).output];
    if (out_lt < 0) return false;
    for (cdfg::VarId in : g.op(o).inputs)
      if (lts.lifetime_of_var[in] == out_lt) return true;
    return false;
  };
  for (cdfg::OpId o : actions)
    if (reads_own_output(o)) ++result.inherent_self_adjacent;

  // Pairwise compatibility.
  auto compatible = [&](cdfg::OpId o1, cdfg::OpId o2) {
    const cdfg::Operation& a = g.op(o1);
    const cdfg::Operation& c = g.op(o2);
    if (cdfg::fu_type_of(a.kind) != cdfg::fu_type_of(c.kind)) return false;
    if (s.step_of_op[o1] == s.step_of_op[o2]) return false;
    const int lt1 = lts.lifetime_of_var[a.output];
    const int lt2 = lts.lifetime_of_var[c.output];
    if (lt1 < 0 || lt2 < 0) return false;
    if (lt1 != lt2 && lts.overlap(lt1, lt2)) return false;
    // Condition (ii): neither output register may feed the other's op.
    for (cdfg::VarId in : c.inputs) {
      const int in_lt = lts.lifetime_of_var[in];
      if (in_lt == lt1) return false;
    }
    for (cdfg::VarId in : a.inputs) {
      const int in_lt = lts.lifetime_of_var[in];
      if (in_lt == lt2) return false;
    }
    return true;
  };

  graph::UndirectedGraph compat(static_cast<int>(actions.size()));
  for (std::size_t i = 0; i < actions.size(); ++i)
    for (std::size_t j = i + 1; j < actions.size(); ++j)
      if (compatible(actions[i], actions[j]))
        compat.add_edge(static_cast<int>(i), static_cast<int>(j));

  // Cover all actions with a minimal set of cliques (prime sequences).
  const graph::CliquePartition part = graph::clique_partition(compat);
  result.num_tfbs = static_cast<int>(part.cliques.size());

  // Build the binding: one FU + one output register per TFB.
  b.fu_of_op.assign(g.num_ops(), -1);
  b.fu_type.assign(result.num_tfbs, cdfg::FuType::kAlu);
  b.fu_ops.assign(result.num_tfbs, {});
  b.reg_of_lifetime.assign(lts.lifetimes.size(), -1);
  for (std::size_t c = 0; c < part.cliques.size(); ++c) {
    for (graph::NodeId local : part.cliques[c]) {
      const cdfg::OpId o = actions[local];
      b.fu_of_op[o] = static_cast<int>(c);
      b.fu_type[c] = cdfg::fu_type_of(g.op(o).kind);
      b.fu_ops[c].push_back(o);
      const int out_lt = lts.lifetime_of_var[g.op(o).output];
      if (out_lt >= 0) b.reg_of_lifetime[out_lt] = static_cast<int>(c);
    }
    std::sort(b.fu_ops[c].begin(), b.fu_ops[c].end());
  }

  // Remaining lifetimes (PIs, split-state old values, copy outputs): pack
  // into input registers with the left-edge algorithm.
  std::vector<int> leftovers;
  for (std::size_t lt = 0; lt < lts.lifetimes.size(); ++lt)
    if (b.reg_of_lifetime[lt] < 0) leftovers.push_back(static_cast<int>(lt));
  std::vector<graph::Interval> intervals;
  for (int lt : leftovers) intervals.push_back(lts.lifetimes[lt].interval);
  int extra = 0;
  const std::vector<int> packed =
      graph::left_edge_assign(intervals, lts.num_slots, &extra);
  for (std::size_t i = 0; i < leftovers.size(); ++i)
    b.reg_of_lifetime[leftovers[i]] = result.num_tfbs + packed[i];
  result.num_input_regs = extra;
  b.num_regs = result.num_tfbs + extra;

  hls::validate_binding(g, s, b);
  util::metrics().counter("bist.tfb.runs").add();
  util::metrics().gauge("bist.tfb.units").set(result.num_tfbs);
  util::metrics().gauge("bist.tfb.input_regs").set(result.num_input_regs);
  return result;
}

XtfbResult xtfb_synthesis(const cdfg::Cdfg& g, const hls::Schedule& s) {
  TSYN_SPAN("bist.xtfb");
  TfbResult tfb = tfb_synthesis(g, s);
  XtfbResult result;
  result.binding = std::move(tfb.binding);
  hls::Binding& b = result.binding;

  // Merge ALUs (not registers): two TFB units of the same type whose ops
  // occupy disjoint steps can share one ALU with multiple output registers.
  const int n = b.num_fus();
  std::vector<int> merged_into(n);
  for (int i = 0; i < n; ++i) merged_into[i] = i;
  auto steps_of = [&](int fu) {
    std::set<int> steps;
    for (cdfg::OpId o : b.fu_ops[fu]) steps.insert(s.step_of_op[o]);
    return steps;
  };
  // Input/output registers a merged unit would have; a merge is rejected
  // when every output register would be self-adjacent (that is exactly the
  // CBILBO condition the XTFB exists to avoid).
  auto io_regs = [&](const std::vector<int>& units) {
    std::pair<std::set<int>, std::set<int>> io;
    for (int u : units)
      for (cdfg::OpId o : b.fu_ops[u]) {
        for (cdfg::VarId in : g.op(o).inputs) {
          const int lt = b.lifetimes.lifetime_of_var[in];
          if (lt >= 0) io.first.insert(b.reg_of_lifetime[lt]);
        }
        const int out = b.lifetimes.lifetime_of_var[g.op(o).output];
        if (out >= 0) io.second.insert(b.reg_of_lifetime[out]);
      }
    return io;
  };
  auto merge_safe = [&](int i, int j) {
    const auto [ins, outs] = io_regs({i, j});
    for (int r : outs)
      if (!ins.count(r)) return true;  // a clean SR remains
    return outs.empty();
  };

  for (int i = 0; i < n; ++i) {
    if (merged_into[i] != i) continue;
    for (int j = i + 1; j < n; ++j) {
      if (merged_into[j] != j || b.fu_type[i] != b.fu_type[j]) continue;
      const std::set<int> si = steps_of(i);
      const std::set<int> sj = steps_of(j);
      bool disjoint = true;
      for (int st : sj)
        if (si.count(st)) disjoint = false;
      if (!disjoint || !merge_safe(i, j)) continue;
      // Merge j into i.
      for (cdfg::OpId o : b.fu_ops[j]) {
        b.fu_of_op[o] = i;
        b.fu_ops[i].push_back(o);
      }
      b.fu_ops[j].clear();
      merged_into[j] = i;
    }
  }
  // Compact FU ids.
  std::vector<int> remap(n, -1);
  int next = 0;
  std::vector<cdfg::FuType> new_types;
  std::vector<std::vector<cdfg::OpId>> new_ops;
  for (int i = 0; i < n; ++i) {
    if (merged_into[i] != i) continue;
    remap[i] = next++;
    new_types.push_back(b.fu_type[i]);
    std::sort(b.fu_ops[i].begin(), b.fu_ops[i].end());
    new_ops.push_back(b.fu_ops[i]);
  }
  for (cdfg::OpId o = 0; o < g.num_ops(); ++o)
    if (b.fu_of_op[o] >= 0) b.fu_of_op[o] = remap[merged_into[b.fu_of_op[o]]];
  b.fu_type = std::move(new_types);
  b.fu_ops = std::move(new_ops);
  result.num_alus = next;

  hls::validate_binding(g, s, b);

  // Self-adjacency audit at the module level: registers that feed their own
  // module are fine as TPGR-only while a sibling output register exists.
  const cdfg::LifetimeAnalysis& lts = b.lifetimes;
  for (int fu = 0; fu < b.num_fus(); ++fu) {
    std::set<int> input_regs;
    std::set<int> output_regs;
    for (cdfg::OpId o : b.fu_ops[fu]) {
      for (cdfg::VarId in : g.op(o).inputs) {
        const int lt = lts.lifetime_of_var[in];
        if (lt >= 0) input_regs.insert(b.reg_of_lifetime[lt]);
      }
      const int out_lt = lts.lifetime_of_var[g.op(o).output];
      if (out_lt >= 0) output_regs.insert(b.reg_of_lifetime[out_lt]);
    }
    int self_adjacent = 0;
    for (int r : output_regs)
      if (input_regs.count(r)) ++self_adjacent;
    if (self_adjacent > 0 &&
        self_adjacent == static_cast<int>(output_regs.size()))
      ++result.cbilbos;
    else
      result.self_adjacent_tpgr_only += self_adjacent;
  }
  util::metrics().counter("bist.xtfb.runs").add();
  util::metrics().gauge("bist.xtfb.alus").set(result.num_alus);
  util::metrics().gauge("bist.xtfb.cbilbos").set(result.cbilbos);
  return result;
}

}  // namespace tsyn::bist
