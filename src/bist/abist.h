// Arithmetic BIST with subspace state coverage (§5.4, [28]).
//
// Instead of dedicated TPGR/SR hardware, the datapath's own arithmetic
// units generate patterns (an accumulator stepping by a constant) and
// compact responses. The subspace-state-coverage metric — how much of the
// k-bit operand subspace an FU's inputs sweep under the generator — both
// characterizes pattern quality and, used as a binding weight, steers
// operation-to-FU assignment so every unit sees near-complete operand
// subspaces and reaches high structural fault coverage.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "cdfg/ir.h"
#include "hls/binding.h"

namespace tsyn::bist {

struct AbistOptions {
  int iterations = 512;       ///< behavioral iterations simulated
  int subspace_bits = 4;      ///< k: subspace = low k bits of each operand
  int width = 8;              ///< behavioral word width for simulation
  std::uint64_t increment = 0x9d;  ///< accumulator step (odd)
  std::uint64_t seed = 1;
};

/// Subspace states (packed (a_k << k) | b_k) observed at each operation's
/// inputs when the behavior runs on accumulator-generated input streams.
std::vector<std::set<std::uint32_t>> subspace_states(
    const cdfg::Cdfg& g, const AbistOptions& opts = {});

/// Coverage of one state set: |S| / 2^(2k).
double state_coverage(const std::set<std::uint32_t>& states,
                      int subspace_bits);

/// FU binding maximizing the unioned state coverage at each unit's inputs
/// (weighted clique partitioning per [28]); registers are conventional.
hls::Binding coverage_maximizing_binding(const cdfg::Cdfg& g,
                                         const hls::Schedule& s,
                                         const AbistOptions& opts = {});

/// Mean (and minimum) unioned state coverage across the FUs of a binding —
/// the quantity [28] maximizes.
struct BindingCoverage {
  double mean = 0;
  double min = 1;
};
BindingCoverage binding_state_coverage(const cdfg::Cdfg& g,
                                       const hls::Binding& b,
                                       const AbistOptions& opts = {});

/// Full-width operand streams seen at each FU under the generator, for
/// gate-level fault simulation of the unit.
std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
fu_operand_streams(const cdfg::Cdfg& g, const hls::Binding& b,
                   const AbistOptions& opts = {});

}  // namespace tsyn::bist
