#include "bist/bist_assign.h"

#include <algorithm>
#include <set>

#include "graph/coloring.h"

namespace tsyn::bist {

std::vector<int> bist_aware_register_assignment(const cdfg::Cdfg& g,
                                                const hls::Binding& b) {
  const cdfg::LifetimeAnalysis& lts = b.lifetimes;
  const int n = static_cast<int>(lts.lifetimes.size());
  graph::UndirectedGraph conflict(n);

  // Lifetime overlap conflicts (the conventional edges).
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (lts.overlap(i, j)) conflict.add_edge(i, j);

  // Per-module input/output lifetime sets.
  const int num_fus = b.num_fus();
  std::vector<std::set<int>> fu_in_lts(num_fus);
  std::vector<std::set<int>> fu_out_lts(num_fus);
  for (cdfg::OpId o = 0; o < g.num_ops(); ++o) {
    const int fu = b.fu_of_op[o];
    if (fu < 0) continue;
    for (cdfg::VarId in : g.op(o).inputs) {
      const int lt = lts.lifetime_of_var[in];
      if (lt >= 0) fu_in_lts[fu].insert(lt);
    }
    const int out_lt = lts.lifetime_of_var[g.op(o).output];
    if (out_lt >= 0) fu_out_lts[fu].insert(out_lt);
  }

  // A lifetime that is an input AND an output of one module (an
  // accumulation chain on a shared ALU) is self-adjacent no matter where
  // it is placed. Spreading such lifetimes over many registers multiplies
  // the damage; they are left free of extra edges and packed first so they
  // concentrate in as few registers as possible.
  std::vector<bool> condemned(n, false);
  for (int f = 0; f < num_fus; ++f)
    for (int lt : fu_in_lts[f])
      if (fu_out_lts[f].count(lt)) condemned[lt] = true;

  // Self-adjacency avoidance edges between salvageable lifetimes: a
  // register may not hold both an input and an output of the same module.
  for (int f = 0; f < num_fus; ++f)
    for (int in_lt : fu_in_lts[f])
      for (int out_lt : fu_out_lts[f])
        if (in_lt != out_lt && !condemned[in_lt] && !condemned[out_lt])
          conflict.add_edge(in_lt, out_lt);

  // Sequential coloring, condemned lifetimes first (their chain-shaped
  // lifetimes pack into few registers), then by interval birth.
  std::vector<graph::NodeId> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int bb) {
    if (condemned[a] != condemned[bb])
      return static_cast<bool>(condemned[a]);
    if (lts.lifetimes[a].interval.birth != lts.lifetimes[bb].interval.birth)
      return lts.lifetimes[a].interval.birth <
             lts.lifetimes[bb].interval.birth;
    return a < bb;
  });
  const graph::Coloring coloring = graph::sequential_coloring(conflict, order);
  return coloring.color;
}

}  // namespace tsyn::bist
