// TPGR/SR sharing maximization (§5.1, [32]).
//
// Parulkar, Gupta & Breuer minimize BIST area by making each test register
// serve as many modules as possible: register assignment packs lifetimes so
// one register is the input (TPGR) of many modules and another the output
// (SR) of many, and the *exact* conditions under which a self-adjacent
// register truly needs a CBILBO are checked instead of assumed — a module
// with an alternative capture register lets its self-adjacent input stay a
// plain TPGR.
#pragma once

#include <set>
#include <vector>

#include "cdfg/ir.h"
#include "hls/binding.h"

namespace tsyn::bist {

/// Test-register roles implied by a binding.
struct BistRoles {
  std::set<int> tpgrs;  ///< registers needed as pattern generators
  std::set<int> srs;    ///< registers needed as signature registers
  int cbilbos = 0;      ///< self-adjacent registers truly needing CBILBO

  /// Registers that must carry any BIST structure.
  int test_registers() const;
};

/// Audits a binding: which registers feed/capture which modules, and which
/// self-adjacent ones meet the exact CBILBO condition (the register is an
/// input of a module whose only output register it is).
BistRoles audit_roles(const cdfg::Cdfg& g, const hls::Binding& b);

struct ShareResult {
  std::vector<int> reg_of_lifetime;
  int num_regs = 0;
  BistRoles roles;
};

/// Register assignment greedily maximizing TPGR/SR sharing across modules.
ShareResult sharing_register_assignment(const cdfg::Cdfg& g,
                                        const hls::Binding& b);

}  // namespace tsyn::bist
