// BIST test-register analysis and configuration (§5, [21]).
//
// In situ pseudorandom BIST reconfigures functional registers as TPGRs at
// logic-block inputs and SRs at outputs. A register that is both an input
// and an output of the same block is *self-adjacent* and naively needs a
// CBILBO — the expensive case every §5.1 technique minimizes. This module
// computes register/module adjacency on a bound datapath and applies the
// conventional (worst-case) configuration as the baseline.
#pragma once

#include <vector>

#include "rtl/datapath.h"

namespace tsyn::bist {

/// Adjacency between registers and FUs (the BIST logic blocks).
struct BistAdjacency {
  /// FUs each register feeds (register is a TPGR candidate for them).
  std::vector<std::vector<int>> drives;
  /// FUs each register is loaded from (register is an SR candidate).
  std::vector<std::vector<int>> loaded_from;
  /// Registers that are both an input and an output of one FU.
  std::vector<bool> self_adjacent;

  int self_adjacent_count() const;
};

BistAdjacency analyze_adjacency(const rtl::Datapath& dp);

/// Conventional in-situ BIST configuration ([3]'s baseline assumption):
/// every self-adjacent register becomes a CBILBO; registers with both roles
/// across different FUs become BILBOs; pure input/output-role registers
/// become TPGR/SR. Returns the number of CBILBOs.
int configure_bist_conventional(rtl::Datapath& dp);

/// Counts registers of each test kind.
struct TestRegCounts {
  int none = 0;
  int scan = 0;
  int tpgr = 0;
  int sr = 0;
  int bilbo = 0;
  int cbilbo = 0;
};

TestRegCounts count_test_registers(const rtl::Datapath& dp);

}  // namespace tsyn::bist
