#include "bist/abist.h"

#include <algorithm>
#include <map>

#include "cdfg/interp.h"
#include "gatelevel/bistgen.h"
#include "graph/clique_partition.h"
#include "hls/schedule.h"

namespace tsyn::bist {

namespace {

/// Runs the behavior on accumulator streams; returns per-iteration values.
std::vector<cdfg::VarValues> run_generator(const cdfg::Cdfg& g,
                                           const AbistOptions& opts) {
  const std::vector<cdfg::VarId> pis = g.inputs();
  std::vector<std::vector<std::uint64_t>> frames(opts.iterations);
  // One accumulator per input with staggered seeds (the paper's "additional
  // generator applied at the inputs of the CDFG").
  std::vector<std::vector<std::uint64_t>> seqs;
  for (std::size_t i = 0; i < pis.size(); ++i)
    seqs.push_back(gl::accumulator_sequence(
        opts.width, opts.increment | 1,
        opts.seed + 0x61c88647ULL * (i + 1), opts.iterations));
  for (int it = 0; it < opts.iterations; ++it) {
    frames[it].resize(pis.size());
    for (std::size_t i = 0; i < pis.size(); ++i)
      frames[it][i] = seqs[i][it];
  }
  return cdfg::execute(g, frames);
}

}  // namespace

std::vector<std::set<std::uint32_t>> subspace_states(
    const cdfg::Cdfg& g, const AbistOptions& opts) {
  const auto trace = run_generator(g, opts);
  const std::uint32_t mask = (1u << opts.subspace_bits) - 1;
  std::vector<std::set<std::uint32_t>> states(g.num_ops());
  for (const cdfg::VarValues& vals : trace) {
    for (cdfg::OpId o = 0; o < g.num_ops(); ++o) {
      const cdfg::Operation& op = g.op(o);
      const std::uint32_t a =
          static_cast<std::uint32_t>(vals[op.inputs[0]]) & mask;
      const std::uint32_t b =
          op.inputs.size() > 1
              ? static_cast<std::uint32_t>(vals[op.inputs[1]]) & mask
              : 0;
      states[o].insert((a << opts.subspace_bits) | b);
    }
  }
  return states;
}

double state_coverage(const std::set<std::uint32_t>& states,
                      int subspace_bits) {
  const double total = static_cast<double>(1u << (2 * subspace_bits));
  return static_cast<double>(states.size()) / total;
}

namespace {

struct CoverageCtx {
  const std::vector<std::set<std::uint32_t>>* states;
};

double coverage_weight(graph::NodeId u, graph::NodeId v, const void* ctx) {
  const auto* c = static_cast<const CoverageCtx*>(ctx);
  const auto& su = (*c->states)[u];
  const auto& sv = (*c->states)[v];
  std::set<std::uint32_t> uni = su;
  uni.insert(sv.begin(), sv.end());
  // Gain in union size over the larger operand set, scaled to dominate the
  // plain common-neighbor term for meaningful differences.
  const double gain = static_cast<double>(uni.size()) -
                      static_cast<double>(std::max(su.size(), sv.size()));
  return gain * 0.5;
}

}  // namespace

hls::Binding coverage_maximizing_binding(const cdfg::Cdfg& g,
                                         const hls::Schedule& s,
                                         const AbistOptions& opts) {
  const auto states = subspace_states(g, opts);
  graph::UndirectedGraph compat(g.num_ops());
  for (cdfg::OpId i = 0; i < g.num_ops(); ++i) {
    if (g.op(i).kind == cdfg::OpKind::kCopy) continue;
    for (cdfg::OpId j = i + 1; j < g.num_ops(); ++j) {
      if (g.op(j).kind == cdfg::OpKind::kCopy) continue;
      if (hls::ops_compatible(g, s, i, j)) compat.add_edge(i, j);
    }
  }
  CoverageCtx ctx{&states};
  const graph::CliquePartition part =
      graph::clique_partition(compat, coverage_weight, &ctx);

  std::vector<int> fu_of_op(g.num_ops(), -1);
  int next = 0;
  for (const auto& clique : part.cliques) {
    bool real = false;
    for (graph::NodeId o : clique)
      if (g.op(o).kind != cdfg::OpKind::kCopy) real = true;
    if (!real) continue;
    for (graph::NodeId o : clique) fu_of_op[o] = next;
    ++next;
  }
  return hls::make_binding_with_fu_map(g, s, fu_of_op);
}

BindingCoverage binding_state_coverage(const cdfg::Cdfg& g,
                                       const hls::Binding& b,
                                       const AbistOptions& opts) {
  const auto states = subspace_states(g, opts);
  BindingCoverage out;
  if (b.num_fus() == 0) return out;
  double sum = 0;
  for (int fu = 0; fu < b.num_fus(); ++fu) {
    std::set<std::uint32_t> uni;
    for (cdfg::OpId o : b.fu_ops[fu])
      uni.insert(states[o].begin(), states[o].end());
    const double cov = state_coverage(uni, opts.subspace_bits);
    sum += cov;
    out.min = std::min(out.min, cov);
  }
  out.mean = sum / b.num_fus();
  return out;
}

std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
fu_operand_streams(const cdfg::Cdfg& g, const hls::Binding& b,
                   const AbistOptions& opts) {
  const auto trace = run_generator(g, opts);
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> streams(
      b.num_fus());
  for (const cdfg::VarValues& vals : trace) {
    for (cdfg::OpId o = 0; o < g.num_ops(); ++o) {
      const int fu = b.fu_of_op[o];
      if (fu < 0) continue;
      const cdfg::Operation& op = g.op(o);
      streams[fu].emplace_back(
          vals[op.inputs[0]],
          op.inputs.size() > 1 ? vals[op.inputs[1]] : 0);
    }
  }
  return streams;
}

}  // namespace tsyn::bist
