// Test-function-block (TFB) synthesis [31] and the XTFB extension [19]
// (§5.1).
//
// A TFB is an ALU with multiplexed inputs and ONE test register on its
// output. Mapping is done over actions (v, o(v)) — a variable and the
// operation producing it. Two actions merge into the same TFB only if their
// lifetimes are disjoint AND neither variable is an input of the other's
// operation, which structurally guarantees the TFB's output register never
// feeds its own ALU: no self-adjacent registers, hence no CBILBOs.
//
// The XTFB [19] relaxes the one-output-register restriction: an ALU may own
// several output registers, and a self-adjacent register is acceptable as
// long as it only needs to be a TPGR (some sibling register captures the
// response). XTFB datapaths need fewer ALUs (less test area) than TFB
// datapaths while still avoiding CBILBOs.
#pragma once

#include "cdfg/ir.h"
#include "hls/binding.h"

namespace tsyn::bist {

struct TfbResult {
  hls::Binding binding;
  int num_tfbs = 0;
  int num_input_regs = 0;  ///< extra registers for PIs / split states
  /// Actions whose operation reads its own output register (impossible to
  /// fix by assignment alone; zero on benchmarks scheduled sanely).
  int inherent_self_adjacent = 0;
};

/// Synthesizes the TFB datapath for a scheduled CDFG.
TfbResult tfb_synthesis(const cdfg::Cdfg& g, const hls::Schedule& s);

struct XtfbResult {
  hls::Binding binding;
  int num_alus = 0;
  int self_adjacent_tpgr_only = 0;  ///< tolerated self-adjacent registers
  int cbilbos = 0;  ///< modules whose every output register is self-adjacent
};

/// Synthesizes the XTFB datapath: TFB partition followed by ALU merging.
XtfbResult xtfb_synthesis(const cdfg::Cdfg& g, const hls::Schedule& s);

}  // namespace tsyn::bist
