#include "bist/test_registers.h"

#include <algorithm>

namespace tsyn::bist {

int BistAdjacency::self_adjacent_count() const {
  return static_cast<int>(
      std::count(self_adjacent.begin(), self_adjacent.end(), true));
}

BistAdjacency analyze_adjacency(const rtl::Datapath& dp) {
  BistAdjacency adj;
  adj.drives.assign(dp.num_regs(), {});
  adj.loaded_from.assign(dp.num_regs(), {});
  adj.self_adjacent.assign(dp.num_regs(), false);

  for (int f = 0; f < dp.num_fus(); ++f) {
    for (const auto& port : dp.fus[f].port_drivers)
      for (const rtl::Source& s : port)
        if (s.kind == rtl::Source::Kind::kRegister) {
          auto& d = adj.drives[s.index];
          if (std::find(d.begin(), d.end(), f) == d.end()) d.push_back(f);
        }
  }
  for (int r = 0; r < dp.num_regs(); ++r) {
    for (const rtl::Source& s : dp.regs[r].drivers)
      if (s.kind == rtl::Source::Kind::kFu) {
        auto& l = adj.loaded_from[r];
        if (std::find(l.begin(), l.end(), s.index) == l.end())
          l.push_back(s.index);
      }
    for (int f : adj.drives[r])
      if (std::find(adj.loaded_from[r].begin(), adj.loaded_from[r].end(),
                    f) != adj.loaded_from[r].end())
        adj.self_adjacent[r] = true;
  }
  return adj;
}

int configure_bist_conventional(rtl::Datapath& dp) {
  const BistAdjacency adj = analyze_adjacency(dp);
  int cbilbos = 0;
  for (int r = 0; r < dp.num_regs(); ++r) {
    const bool in_role = !adj.drives[r].empty();
    const bool out_role = !adj.loaded_from[r].empty();
    rtl::TestRegKind kind = rtl::TestRegKind::kNone;
    if (adj.self_adjacent[r]) {
      kind = rtl::TestRegKind::kCbilbo;
      ++cbilbos;
    } else if (in_role && out_role) {
      kind = rtl::TestRegKind::kBilbo;
    } else if (in_role) {
      kind = rtl::TestRegKind::kTpgr;
    } else if (out_role) {
      kind = rtl::TestRegKind::kSr;
    } else {
      kind = rtl::TestRegKind::kScan;  // isolated: make it accessible
    }
    dp.regs[r].test_kind = kind;
  }
  return cbilbos;
}

TestRegCounts count_test_registers(const rtl::Datapath& dp) {
  TestRegCounts c;
  for (const rtl::RegisterInfo& r : dp.regs) {
    switch (r.test_kind) {
      case rtl::TestRegKind::kNone: ++c.none; break;
      case rtl::TestRegKind::kScan: ++c.scan; break;
      case rtl::TestRegKind::kTpgr: ++c.tpgr; break;
      case rtl::TestRegKind::kSr: ++c.sr; break;
      case rtl::TestRegKind::kBilbo: ++c.bilbo; break;
      case rtl::TestRegKind::kCbilbo: ++c.cbilbo; break;
    }
  }
  return c;
}

}  // namespace tsyn::bist
