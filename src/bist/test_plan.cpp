#include "bist/test_plan.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace tsyn::bist {

TestPlan build_test_plan(const cdfg::Cdfg& g, const hls::Binding& b,
                         const SessionAnalysis& sessions) {
  TestPlan plan;
  plan.sessions.resize(std::max(sessions.num_sessions, 0));

  // Per-module register roles.
  std::vector<std::set<int>> in_regs(b.num_fus());
  std::vector<std::set<int>> out_regs(b.num_fus());
  for (cdfg::OpId o = 0; o < g.num_ops(); ++o) {
    const int fu = b.fu_of_op[o];
    if (fu < 0) continue;
    for (cdfg::VarId in : g.op(o).inputs) {
      const int r = b.reg_of_var(in);
      if (r >= 0) in_regs[fu].insert(r);
    }
    const int r = b.reg_of_var(g.op(o).output);
    if (r >= 0) out_regs[fu].insert(r);
  }

  // Roles per session, and cross/within-session role conflicts.
  std::set<int> ever_tpgr;
  std::set<int> ever_sr;
  std::set<int> cbilbo;
  for (int m = 0; m < sessions.num_modules; ++m) {
    const int s = sessions.session_of_module.empty()
                      ? 0
                      : sessions.session_of_module[m];
    SessionPlan& sp = plan.sessions[s];
    sp.modules.push_back(m);
    for (int r : in_regs[m]) sp.tpgr_regs.push_back(r);
    for (int r : out_regs[m]) sp.sr_regs.push_back(r);
  }
  for (SessionPlan& sp : plan.sessions) {
    auto uniq = [](std::vector<int>& v) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    uniq(sp.modules);
    uniq(sp.tpgr_regs);
    uniq(sp.sr_regs);
    for (int r : sp.tpgr_regs) {
      ever_tpgr.insert(r);
      if (std::binary_search(sp.sr_regs.begin(), sp.sr_regs.end(), r))
        cbilbo.insert(r);
    }
    for (int r : sp.sr_regs) ever_sr.insert(r);
  }
  plan.cbilbo_regs.assign(cbilbo.begin(), cbilbo.end());
  for (int r : ever_tpgr)
    if (ever_sr.count(r) && !cbilbo.count(r)) plan.bilbo_regs.push_back(r);
  return plan;
}

std::string TestPlan::to_string(const rtl::Datapath& dp) const {
  std::ostringstream out;
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    const SessionPlan& sp = sessions[s];
    out << "session " << s << ": modules {";
    for (std::size_t i = 0; i < sp.modules.size(); ++i)
      out << (i ? " " : "") << dp.fus[sp.modules[i]].name;
    out << "} TPGR {";
    for (std::size_t i = 0; i < sp.tpgr_regs.size(); ++i)
      out << (i ? " " : "") << dp.regs[sp.tpgr_regs[i]].name;
    out << "} SR {";
    for (std::size_t i = 0; i < sp.sr_regs.size(); ++i)
      out << (i ? " " : "") << dp.regs[sp.sr_regs[i]].name;
    out << "}\n";
  }
  if (!bilbo_regs.empty()) {
    out << "BILBO:";
    for (int r : bilbo_regs) out << " " << dp.regs[r].name;
    out << "\n";
  }
  if (!cbilbo_regs.empty()) {
    out << "CBILBO:";
    for (int r : cbilbo_regs) out << " " << dp.regs[r].name;
    out << "\n";
  }
  return out.str();
}

}  // namespace tsyn::bist
