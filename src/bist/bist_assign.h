// BIST register assignment minimizing self-adjacent registers (§5.1, [3]).
//
// Avra's observation: self-adjacency is an artifact of register assignment.
// Adding conflict edges between any variable pair that would make one
// register both an input and an output of the same module — the input and
// output of one operation, or an input of one and the output of another
// operation on the same FU — lets ordinary conflict-graph coloring produce
// data paths with (near-)zero self-adjacent registers at the same total
// register count.
#pragma once

#include <vector>

#include "cdfg/ir.h"
#include "hls/binding.h"

namespace tsyn::bist {

/// Register map over the binding's lifetimes that avoids self-adjacency.
/// The FU assignment in `b` must be final (it defines "same module").
std::vector<int> bist_aware_register_assignment(const cdfg::Cdfg& g,
                                                const hls::Binding& b);

}  // namespace tsyn::bist
