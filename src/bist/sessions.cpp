#include "bist/sessions.h"

#include <set>

#include "graph/clique_partition.h"
#include "graph/coloring.h"

namespace tsyn::bist {

namespace {

struct ModuleRegs {
  std::vector<std::set<int>> in_regs;
  std::vector<std::set<int>> out_regs;
};

ModuleRegs module_regs(const cdfg::Cdfg& g, const hls::Binding& b) {
  ModuleRegs mr;
  mr.in_regs.assign(b.num_fus(), {});
  mr.out_regs.assign(b.num_fus(), {});
  for (cdfg::OpId o = 0; o < g.num_ops(); ++o) {
    const int fu = b.fu_of_op[o];
    if (fu < 0) continue;
    for (cdfg::VarId in : g.op(o).inputs) {
      const int r = b.reg_of_var(in);
      if (r >= 0) mr.in_regs[fu].insert(r);
    }
    const int out = b.reg_of_var(g.op(o).output);
    if (out >= 0) mr.out_regs[fu].insert(out);
  }
  return mr;
}

}  // namespace

SessionAnalysis schedule_test_sessions(const cdfg::Cdfg& g,
                                       const hls::Binding& b) {
  const ModuleRegs mr = module_regs(g, b);
  const int n = b.num_fus();

  graph::UndirectedGraph conflict(n);
  auto intersects = [](const std::set<int>& a, const std::set<int>& b2) {
    for (int x : a)
      if (b2.count(x)) return true;
    return false;
  };
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      // §5.2 path model: a register that captures one module's response
      // while feeding another is a SERIES test path (tolerated — the
      // response propagates through and is captured downstream). What
      // cannot be shared within a session is the capture register itself:
      // one SR mux, one signature.
      if (intersects(mr.out_regs[i], mr.out_regs[j]))
        conflict.add_edge(i, j);
    }
  }

  SessionAnalysis result;
  result.num_modules = n;
  result.num_conflicts = static_cast<int>(conflict.num_edges());
  if (n == 0) {
    result.num_sessions = 0;
    return result;
  }
  const graph::Coloring c = graph::dsatur_coloring(conflict);
  result.num_sessions = c.num_colors;
  result.session_of_module = c.color;
  return result;
}

namespace {

struct ConflictCtx {
  const cdfg::Cdfg* g;
};

double conflict_weight(graph::NodeId u, graph::NodeId v, const void* ctx) {
  // Indexed over op ids via the wrapper below; penalize merges where one
  // op's output feeds the other (creates a self-adjacent module register,
  // the strongest source of session conflicts).
  const auto* c = static_cast<const ConflictCtx*>(ctx);
  const cdfg::Operation& a = c->g->op(u);
  const cdfg::Operation& b = c->g->op(v);
  for (cdfg::VarId in : b.inputs)
    if (in == a.output) return -5.0;
  for (cdfg::VarId in : a.inputs)
    if (in == b.output) return -5.0;
  return 0.0;
}

}  // namespace

hls::Binding conflict_aware_binding(const cdfg::Cdfg& g,
                                    const hls::Schedule& s) {
  // FU binding: per-type clique partition with the conflict penalty. The
  // compatibility graph is built over ALL ops (op ids as nodes) so the
  // weight callback can address them; cross-type pairs just have no edge.
  graph::UndirectedGraph compat(g.num_ops());
  for (cdfg::OpId i = 0; i < g.num_ops(); ++i) {
    if (g.op(i).kind == cdfg::OpKind::kCopy) continue;
    for (cdfg::OpId j = i + 1; j < g.num_ops(); ++j) {
      if (g.op(j).kind == cdfg::OpKind::kCopy) continue;
      if (hls::ops_compatible(g, s, i, j)) compat.add_edge(i, j);
    }
  }
  ConflictCtx ctx{&g};
  const graph::CliquePartition part =
      graph::clique_partition(compat, conflict_weight, &ctx);

  std::vector<int> fu_of_op(g.num_ops(), -1);
  int next = 0;
  for (const auto& clique : part.cliques) {
    // Singleton cliques of copy ops stay FU-less.
    bool real = false;
    for (graph::NodeId o : clique)
      if (g.op(o).kind != cdfg::OpKind::kCopy) real = true;
    if (!real) continue;
    for (graph::NodeId o : clique) fu_of_op[o] = next;
    ++next;
  }
  hls::Binding b = hls::make_binding_with_fu_map(g, s, fu_of_op);

  // Register assignment: overlap conflicts + self-adjacency avoidance +
  // dedicated SRs (no output-register sharing across modules).
  const cdfg::LifetimeAnalysis& lts = b.lifetimes;
  const int nlts = static_cast<int>(lts.lifetimes.size());
  graph::UndirectedGraph reg_conflict(nlts);
  for (int i = 0; i < nlts; ++i)
    for (int j = i + 1; j < nlts; ++j)
      if (lts.overlap(i, j)) reg_conflict.add_edge(i, j);
  std::vector<std::set<int>> fu_in(b.num_fus());
  std::vector<std::set<int>> fu_out(b.num_fus());
  for (cdfg::OpId o = 0; o < g.num_ops(); ++o) {
    const int fu = b.fu_of_op[o];
    if (fu < 0) continue;
    for (cdfg::VarId in : g.op(o).inputs) {
      const int lt = lts.lifetime_of_var[in];
      if (lt >= 0) fu_in[fu].insert(lt);
    }
    const int out = lts.lifetime_of_var[g.op(o).output];
    if (out >= 0) fu_out[fu].insert(out);
  }
  // Full role dedication: no register may both generate (module input) and
  // capture (module output), and no two modules share a capture register.
  // Conflicts then only remain where one LIFETIME inherently carries both
  // roles (a value produced by one module and consumed by another).
  std::set<int> all_in;
  std::set<int> all_out;
  for (int f = 0; f < b.num_fus(); ++f) {
    all_in.insert(fu_in[f].begin(), fu_in[f].end());
    all_out.insert(fu_out[f].begin(), fu_out[f].end());
  }
  for (int in_lt : all_in)
    for (int out_lt : all_out)
      if (in_lt != out_lt) reg_conflict.add_edge(in_lt, out_lt);
  for (int f1 = 0; f1 < b.num_fus(); ++f1)
    for (int f2 = f1 + 1; f2 < b.num_fus(); ++f2)
      for (int o1 : fu_out[f1])
        for (int o2 : fu_out[f2])
          if (o1 != o2) reg_conflict.add_edge(o1, o2);

  const graph::Coloring coloring = graph::dsatur_coloring(reg_conflict);
  hls::rebind_registers(g, b, coloring.color);
  hls::validate_binding(g, s, b);

  // Portfolio fallback: the heuristic occasionally loses to the plain
  // binding on chain-heavy behaviors; keep whichever needs fewer sessions.
  const hls::Binding conventional = hls::make_binding(g, s);
  if (schedule_test_sessions(g, conventional).num_sessions <
      schedule_test_sessions(g, b).num_sessions)
    return conventional;
  return b;
}

}  // namespace tsyn::bist
