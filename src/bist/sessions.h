// Test-session scheduling and conflict-aware synthesis for test concurrency
// (§5.2, [20]).
//
// Testing a module needs its TPGRs generating, its SR capturing, and the
// interconnect between them free. Two modules conflict when their test
// paths share a resource in incompatible roles — most importantly a
// register that must generate for one module and capture for the other at
// the same time. The minimum number of test sessions is a coloring of the
// module conflict graph; Harris & Orailoglu synthesize datapaths whose
// conflict graph is empty so one session tests everything.
#pragma once

#include <vector>

#include "cdfg/ir.h"
#include "hls/binding.h"

namespace tsyn::bist {

/// Module-pair test conflicts implied by a binding.
struct SessionAnalysis {
  int num_modules = 0;
  int num_conflicts = 0;   ///< conflicting module pairs
  int num_sessions = 0;    ///< colors needed to schedule all module tests
  std::vector<int> session_of_module;
};

/// Computes conflicts and a session schedule (greedy coloring).
SessionAnalysis schedule_test_sessions(const cdfg::Cdfg& g,
                                       const hls::Binding& b);

/// Conflict-aware FU binding: clique-partitions operations with a penalty
/// against merges that create register role conflicts between the resulting
/// modules, then assigns registers conventionally. Returns a binding whose
/// session count is (near-)minimal.
hls::Binding conflict_aware_binding(const cdfg::Cdfg& g,
                                    const hls::Schedule& s);

}  // namespace tsyn::bist
