// Sweep manifests: the declarative input of the campaign orchestrator.
//
// A manifest names the axes of a design-space sweep — behaviors, FU
// allocations, scan policies, datapath widths, X-fill seeds — and the
// orchestrator expands their cross product into a deterministic job grid.
// This is the batch-service shape the ROADMAP's "heavy traffic" item calls
// for: one file describes thousands of configuration variants, and the
// grid (ids, ordering, stage keys) is a pure function of the file, so two
// runs of the same manifest agree on every job before any of them runs.
//
// Manifest JSON schema (schema 1):
//   {
//     "schema": 1,
//     "designs": ["bench:diffeq", "path/to/file.cdfg", ...],   (required)
//     "configs": [{"name": "a2m2", "alu": 2, "mul": 2, "steps": 0}, ...],
//                                                              (required)
//     "scan":    ["full" | "none" | "mfvs" | "loopcut" |
//                 "boundary" | "interior", ...],     (default ["full"])
//     "widths":  [4, 8, ...],                        (default [4])
//     "seeds":   [61713, ...],                       (default [61713])
//     "compact": "off" | "static" | "dynamic",       (default "static")
//     "xfill":   "random" | "0" | "1" | "adjacent",  (default "random")
//     "backtrack_limit": 10000,                      (comb PODEM budget)
//     "seq_max_frames": 6,                           (sequential jobs)
//     "seq_backtrack_limit": 1000,
//     "seq_fault_cap": 0                             (0 = whole fault list)
//   }
//
// Every grid point is design x config x scan x width x seed. Jobs whose
// scan policy leaves state unscanned expand to a sequential netlist and
// run time-frame-expansion ATPG under the seq_* budgets; fully scanned
// (and feed-forward) jobs run the combinational compaction pipeline.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace tsyn::campaign {

/// Thrown on a structurally invalid manifest (wrong types, unknown
/// values, duplicate names). JSON syntax errors propagate as
/// util::JsonParseError with line/column context instead.
class ManifestError : public std::runtime_error {
 public:
  explicit ManifestError(const std::string& msg) : std::runtime_error(msg) {}
};

/// One schedule/binding configuration axis value.
struct FuConfig {
  std::string name;  ///< unique label, becomes part of job ids
  int alu = 2;
  int mul = 2;
  int steps = 0;  ///< >0 switches to time-constrained scheduling
};

struct Manifest {
  std::vector<std::string> designs;  ///< "bench:NAME" or a .cdfg path
  std::vector<FuConfig> configs;
  std::vector<std::string> scans;  ///< scan policies (see header comment)
  std::vector<int> widths;
  std::vector<std::uint64_t> seeds;  ///< X-fill seeds (comb jobs)
  std::string compact = "static";
  std::string xfill = "random";
  long backtrack_limit = 10000;
  int seq_max_frames = 6;
  long seq_backtrack_limit = 1000;
  /// Sequential jobs target at most this many faults (0 = all). Time-frame
  /// ATPG cost grows with both list size and depth; sweeps over unscanned
  /// designs usually want a bounded, comparable slice.
  long seq_fault_cap = 0;

  /// Stable content hash over every field that defines the grid and the
  /// per-job campaigns. Identifies "the same sweep" across runs — the
  /// journal refuses to resume under a different manifest hash.
  std::string content_hash() const;
};

/// Parses and validates manifest JSON. Throws util::JsonParseError (syntax,
/// with line/column) or ManifestError (structure).
Manifest parse_manifest(const std::string& text);

/// One grid point, fully resolved.
struct JobSpec {
  std::string id;  ///< "<design>.<config>.<scan>.w<width>.s<seed>"
  std::string design;
  FuConfig config;
  std::string scan;
  int width = 4;
  std::uint64_t seed = 0;
};

/// Expands the cross product, sorted by id. Ids are unique by construction
/// (axis values are deduplicated and config names validated unique).
std::vector<JobSpec> expand_grid(const Manifest& m);

/// The id-safe stem of a design spec: "bench:diffeq" -> "diffeq",
/// "data/my design.cdfg" -> "my_design" (non [A-Za-z0-9_-] mapped to '_').
std::string design_stem(const std::string& design);

}  // namespace tsyn::campaign
