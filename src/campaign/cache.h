// Content-addressed stage cache: memoizes the shared prefixes of sweep
// jobs so a 1000-job grid sharing 40 (design, schedule-config) pairs
// lowers 40 netlists, not 1000.
//
// Three stages are cached, each keyed by a stable structural hash
// (util::Fnv1a over a canonical field serialization, see sweep.cpp for
// the key recipes):
//
//   parse   design spec/content          -> cdfg::Cdfg
//   synth   parse key + alu/mul/steps    -> hls::Synthesis
//   expand  synth key + scan + width     -> ExpandStage (netlist + faults)
//
// Concurrency contract: the first requester of a key computes; every
// concurrent requester of the same key blocks on that computation's
// shared_future instead of duplicating it, so stage-work counts are a
// function of the grid, not of scheduling luck — the property the
// acceptance tests assert. A computation that throws poisons its entry
// (same key -> same exception), which is the right call for deterministic
// inputs: retrying an unparsable design cannot succeed.
//
// Hit/miss totals are mirrored into the process metrics registry
// ("campaign.cache.<stage>.hit|miss") and kept as per-cache atomics so one
// sweep can report its own rates even after many sweeps in one process.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "cdfg/ir.h"
#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "hls/synthesis.h"
#include "util/metrics.h"

namespace tsyn::campaign {

/// One stage's hit/miss cell. The counters here are per-StageCache;
/// MemoTable mirrors every increment into the global registry counters the
/// heartbeat stream snapshots.
struct StageCounters {
  std::atomic<std::int64_t> hits{0};
  std::atomic<std::int64_t> misses{0};
  /// Hits that arrived while the owner was still computing — the requester
  /// blocked on the shared_future instead of duplicating the work. A
  /// subset of hits; it measures how much the coalescing actually saved
  /// under contention (always 0 in a serial sweep).
  std::atomic<std::int64_t> coalesced{0};
};

/// Point-in-time copy of a cache's counters (index/summary reporting).
struct CacheStats {
  std::int64_t parse_hits = 0, parse_misses = 0, parse_coalesced = 0;
  std::int64_t synth_hits = 0, synth_misses = 0, synth_coalesced = 0;
  std::int64_t expand_hits = 0, expand_misses = 0, expand_coalesced = 0;
  std::int64_t hits() const { return parse_hits + synth_hits + expand_hits; }
  std::int64_t misses() const {
    return parse_misses + synth_misses + expand_misses;
  }
  std::int64_t coalesced() const {
    return parse_coalesced + synth_coalesced + expand_coalesced;
  }
};

/// Generic single-computation memo table over 64-bit content keys.
template <typename T>
class MemoTable {
 public:
  MemoTable(StageCounters* local, util::Counter* hit, util::Counter* miss,
            util::Counter* coalesce)
      : local_(local), hit_(hit), miss_(miss), coalesce_(coalesce) {}

  /// Returns the cached value for `key`, computing it at most once across
  /// all threads. `compute` runs outside the table lock. When `outcome` is
  /// non-null it receives this call's classification — "miss" (computed
  /// here), "hit" (already resident), or "coalesced" (blocked on another
  /// thread's in-flight miss) — which is what the job timeline annotates
  /// stage spans with.
  std::shared_ptr<const T> get_or_compute(
      std::uint64_t key,
      const std::function<std::shared_ptr<const T>()>& compute,
      const char** outcome = nullptr) {
    std::promise<std::shared_ptr<const T>> promise;
    std::shared_future<std::shared_ptr<const T>> future;
    bool owner = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto [it, inserted] = map_.try_emplace(key);
      if (inserted) {
        it->second = promise.get_future().share();
        owner = true;
      }
      future = it->second;
    }
    if (owner) {
      if (outcome) *outcome = "miss";
      local_->misses.fetch_add(1, std::memory_order_relaxed);
      miss_->add(1);
      try {
        promise.set_value(compute());
      } catch (...) {
        promise.set_exception(std::current_exception());
      }
    } else {
      local_->hits.fetch_add(1, std::memory_order_relaxed);
      hit_->add(1);
      if (future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        // The owner is mid-computation: this requester is about to block
        // on it rather than recompute — the coalescing win the timeline
        // and sweep_stats attribute contention to.
        if (outcome) *outcome = "coalesced";
        local_->coalesced.fetch_add(1, std::memory_order_relaxed);
        coalesce_->add(1);
      } else {
        if (outcome) *outcome = "hit";
      }
    }
    return future.get();  // rethrows the computer's exception, if any
  }

 private:
  StageCounters* local_;
  util::Counter* hit_;
  util::Counter* miss_;
  util::Counter* coalesce_;
  std::mutex mu_;
  std::unordered_map<std::uint64_t,
                     std::shared_future<std::shared_ptr<const T>>>
      map_;
};

/// The expansion stage's cached payload: the gate netlist (with its
/// SimGraph pre-lowered — see StageCache::StageCache) and the collapsed
/// fault universe every sharing job grades against.
struct ExpandStage {
  gl::ExpandedDesign design;
  std::vector<gl::Fault> faults;
};

class StageCache {
 public:
  StageCache()
      : parse(&parse_counters_, &util::metrics().counter("campaign.cache.parse.hit"),
              &util::metrics().counter("campaign.cache.parse.miss"),
              &util::metrics().counter("campaign.cache.parse.coalesce")),
        synth(&synth_counters_, &util::metrics().counter("campaign.cache.synth.hit"),
              &util::metrics().counter("campaign.cache.synth.miss"),
              &util::metrics().counter("campaign.cache.synth.coalesce")),
        expand(&expand_counters_,
               &util::metrics().counter("campaign.cache.expand.hit"),
               &util::metrics().counter("campaign.cache.expand.miss"),
               &util::metrics().counter("campaign.cache.expand.coalesce")) {}

  MemoTable<cdfg::Cdfg> parse;
  MemoTable<hls::Synthesis> synth;
  MemoTable<ExpandStage> expand;

  CacheStats stats() const {
    CacheStats s;
    s.parse_hits = parse_counters_.hits.load(std::memory_order_relaxed);
    s.parse_misses = parse_counters_.misses.load(std::memory_order_relaxed);
    s.synth_hits = synth_counters_.hits.load(std::memory_order_relaxed);
    s.synth_misses = synth_counters_.misses.load(std::memory_order_relaxed);
    s.expand_hits = expand_counters_.hits.load(std::memory_order_relaxed);
    s.expand_misses = expand_counters_.misses.load(std::memory_order_relaxed);
    s.parse_coalesced =
        parse_counters_.coalesced.load(std::memory_order_relaxed);
    s.synth_coalesced =
        synth_counters_.coalesced.load(std::memory_order_relaxed);
    s.expand_coalesced =
        expand_counters_.coalesced.load(std::memory_order_relaxed);
    return s;
  }

 private:
  StageCounters parse_counters_;
  StageCounters synth_counters_;
  StageCounters expand_counters_;
};

}  // namespace tsyn::campaign
