// Content-addressed stage cache: memoizes the shared prefixes of sweep
// jobs so a 1000-job grid sharing 40 (design, schedule-config) pairs
// lowers 40 netlists, not 1000.
//
// Three stages are cached, each keyed by a stable structural hash
// (util::Fnv1a over a canonical field serialization, see sweep.cpp for
// the key recipes):
//
//   parse   design spec/content          -> cdfg::Cdfg
//   synth   parse key + alu/mul/steps    -> hls::Synthesis
//   expand  synth key + scan + width     -> ExpandStage (netlist + faults)
//
// Concurrency contract: the first requester of a key computes; every
// concurrent requester of the same key blocks on that computation's
// shared_future instead of duplicating it, so stage-work counts are a
// function of the grid, not of scheduling luck — the property the
// acceptance tests assert. A computation that throws poisons its entry
// (same key -> same exception), which is the right call for deterministic
// inputs: retrying an unparsable design cannot succeed.
//
// Hit/miss totals are mirrored into the process metrics registry
// ("campaign.cache.<stage>.hit|miss") and kept as per-cache atomics so one
// sweep can report its own rates even after many sweeps in one process.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "cdfg/ir.h"
#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "hls/synthesis.h"
#include "util/metrics.h"

namespace tsyn::campaign {

/// One stage's hit/miss cell. The counters here are per-StageCache;
/// MemoTable mirrors every increment into the global registry counters the
/// heartbeat stream snapshots.
struct StageCounters {
  std::atomic<std::int64_t> hits{0};
  std::atomic<std::int64_t> misses{0};
};

/// Point-in-time copy of a cache's counters (index/summary reporting).
struct CacheStats {
  std::int64_t parse_hits = 0, parse_misses = 0;
  std::int64_t synth_hits = 0, synth_misses = 0;
  std::int64_t expand_hits = 0, expand_misses = 0;
  std::int64_t hits() const { return parse_hits + synth_hits + expand_hits; }
  std::int64_t misses() const {
    return parse_misses + synth_misses + expand_misses;
  }
};

/// Generic single-computation memo table over 64-bit content keys.
template <typename T>
class MemoTable {
 public:
  MemoTable(StageCounters* local, util::Counter* hit, util::Counter* miss)
      : local_(local), hit_(hit), miss_(miss) {}

  /// Returns the cached value for `key`, computing it at most once across
  /// all threads. `compute` runs outside the table lock.
  std::shared_ptr<const T> get_or_compute(
      std::uint64_t key,
      const std::function<std::shared_ptr<const T>()>& compute) {
    std::promise<std::shared_ptr<const T>> promise;
    std::shared_future<std::shared_ptr<const T>> future;
    bool owner = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto [it, inserted] = map_.try_emplace(key);
      if (inserted) {
        it->second = promise.get_future().share();
        owner = true;
      }
      future = it->second;
    }
    if (owner) {
      local_->misses.fetch_add(1, std::memory_order_relaxed);
      miss_->add(1);
      try {
        promise.set_value(compute());
      } catch (...) {
        promise.set_exception(std::current_exception());
      }
    } else {
      local_->hits.fetch_add(1, std::memory_order_relaxed);
      hit_->add(1);
    }
    return future.get();  // rethrows the computer's exception, if any
  }

 private:
  StageCounters* local_;
  util::Counter* hit_;
  util::Counter* miss_;
  std::mutex mu_;
  std::unordered_map<std::uint64_t,
                     std::shared_future<std::shared_ptr<const T>>>
      map_;
};

/// The expansion stage's cached payload: the gate netlist (with its
/// SimGraph pre-lowered — see StageCache::StageCache) and the collapsed
/// fault universe every sharing job grades against.
struct ExpandStage {
  gl::ExpandedDesign design;
  std::vector<gl::Fault> faults;
};

class StageCache {
 public:
  StageCache()
      : parse(&parse_counters_, &util::metrics().counter("campaign.cache.parse.hit"),
              &util::metrics().counter("campaign.cache.parse.miss")),
        synth(&synth_counters_, &util::metrics().counter("campaign.cache.synth.hit"),
              &util::metrics().counter("campaign.cache.synth.miss")),
        expand(&expand_counters_,
               &util::metrics().counter("campaign.cache.expand.hit"),
               &util::metrics().counter("campaign.cache.expand.miss")) {}

  MemoTable<cdfg::Cdfg> parse;
  MemoTable<hls::Synthesis> synth;
  MemoTable<ExpandStage> expand;

  CacheStats stats() const {
    CacheStats s;
    s.parse_hits = parse_counters_.hits.load(std::memory_order_relaxed);
    s.parse_misses = parse_counters_.misses.load(std::memory_order_relaxed);
    s.synth_hits = synth_counters_.hits.load(std::memory_order_relaxed);
    s.synth_misses = synth_counters_.misses.load(std::memory_order_relaxed);
    s.expand_hits = expand_counters_.hits.load(std::memory_order_relaxed);
    s.expand_misses = expand_counters_.misses.load(std::memory_order_relaxed);
    return s;
  }

 private:
  StageCounters parse_counters_;
  StageCounters synth_counters_;
  StageCounters expand_counters_;
};

}  // namespace tsyn::campaign
