#include "campaign/manifest.h"

#include <algorithm>
#include <set>

#include "util/hash.h"
#include "util/json.h"

namespace tsyn::campaign {

namespace {

using util::Json;

[[noreturn]] void bad(const std::string& msg) { throw ManifestError(msg); }

/// Numbers in manifests are counts and seeds; reject anything that does
/// not round-trip through an integer so "alu": 2.5 fails loudly.
std::int64_t as_int(const Json& v, const std::string& what) {
  if (!v.is_number()) bad(what + " must be a number");
  const std::int64_t n = static_cast<std::int64_t>(v.number);
  if (static_cast<double>(n) != v.number) bad(what + " must be an integer");
  return n;
}

const Json& member(const Json& obj, const std::string& key,
                   const std::string& what) {
  const Json* v = obj.find(key);
  if (!v) bad(what + " is missing required member \"" + key + "\"");
  return *v;
}

bool known_scan(const std::string& s) {
  return s == "full" || s == "none" || s == "mfvs" || s == "loopcut" ||
         s == "boundary" || s == "interior";
}

bool known_compact(const std::string& s) {
  return s == "off" || s == "static" || s == "dynamic";
}

bool known_xfill(const std::string& s) {
  return s == "random" || s == "0" || s == "1" || s == "adjacent";
}

}  // namespace

std::string design_stem(const std::string& design) {
  std::string base = design;
  if (base.rfind("bench:", 0) == 0) {
    base = base.substr(6);
  } else {
    const std::size_t slash = base.find_last_of("/\\");
    if (slash != std::string::npos) base = base.substr(slash + 1);
    const std::size_t dot = base.rfind('.');
    if (dot != std::string::npos && dot > 0) base = base.substr(0, dot);
  }
  for (char& c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return base.empty() ? "design" : base;
}

std::string Manifest::content_hash() const {
  util::Fnv1a h;
  h.str("tsyn.manifest.v1");
  h.u64(designs.size());
  for (const std::string& d : designs) h.str(d);
  h.u64(configs.size());
  for (const FuConfig& c : configs)
    h.str(c.name).i64(c.alu).i64(c.mul).i64(c.steps);
  h.u64(scans.size());
  for (const std::string& s : scans) h.str(s);
  h.u64(widths.size());
  for (int w : widths) h.i64(w);
  h.u64(seeds.size());
  for (std::uint64_t s : seeds) h.u64(s);
  h.str(compact).str(xfill).i64(backtrack_limit);
  h.i64(seq_max_frames).i64(seq_backtrack_limit).i64(seq_fault_cap);
  return h.hex();
}

Manifest parse_manifest(const std::string& text) {
  const Json doc = Json::parse(text);
  if (!doc.is_object()) bad("manifest must be a JSON object");
  static const std::set<std::string> kKnown = {
      "schema",  "designs",         "configs",
      "scan",    "widths",          "seeds",
      "compact", "xfill",           "backtrack_limit",
      "seq_max_frames",             "seq_backtrack_limit",
      "seq_fault_cap"};
  for (const auto& [key, value] : doc.obj) {
    (void)value;
    if (!kKnown.count(key)) bad("unknown manifest member \"" + key + "\"");
  }
  const std::int64_t schema = as_int(member(doc, "schema", "manifest"),
                                     "\"schema\"");
  if (schema != 1) bad("unsupported manifest schema " +
                       std::to_string(schema) + " (expected 1)");

  Manifest m;
  const Json& designs = member(doc, "designs", "manifest");
  if (!designs.is_array() || designs.arr.empty())
    bad("\"designs\" must be a non-empty array");
  for (const Json& d : designs.arr) {
    if (!d.is_string()) bad("\"designs\" entries must be strings");
    m.designs.push_back(d.str);
  }

  const Json& configs = member(doc, "configs", "manifest");
  if (!configs.is_array() || configs.arr.empty())
    bad("\"configs\" must be a non-empty array");
  for (const Json& c : configs.arr) {
    if (!c.is_object()) bad("\"configs\" entries must be objects");
    FuConfig fc;
    const Json& name = member(c, "name", "config");
    if (!name.is_string() || name.str.empty())
      bad("config \"name\" must be a non-empty string");
    fc.name = name.str;
    if (const Json* v = c.find("alu"))
      fc.alu = static_cast<int>(as_int(*v, "config \"alu\""));
    if (const Json* v = c.find("mul"))
      fc.mul = static_cast<int>(as_int(*v, "config \"mul\""));
    if (const Json* v = c.find("steps"))
      fc.steps = static_cast<int>(as_int(*v, "config \"steps\""));
    if (fc.alu < 1 || fc.mul < 1)
      bad("config \"" + fc.name + "\" needs alu >= 1 and mul >= 1");
    if (fc.steps < 0) bad("config \"" + fc.name + "\" has negative steps");
    m.configs.push_back(std::move(fc));
  }

  if (const Json* scans = doc.find("scan")) {
    if (!scans->is_array() || scans->arr.empty())
      bad("\"scan\" must be a non-empty array");
    for (const Json& s : scans->arr) {
      if (!s.is_string() || !known_scan(s.str))
        bad("unknown scan policy " +
            (s.is_string() ? "\"" + s.str + "\"" : "(non-string)") +
            " (expected full|none|mfvs|loopcut|boundary|interior)");
      m.scans.push_back(s.str);
    }
  } else {
    m.scans = {"full"};
  }

  if (const Json* widths = doc.find("widths")) {
    if (!widths->is_array() || widths->arr.empty())
      bad("\"widths\" must be a non-empty array");
    for (const Json& w : widths->arr) {
      const std::int64_t v = as_int(w, "\"widths\" entry");
      if (v < 1 || v > 64) bad("width " + std::to_string(v) +
                               " out of range [1, 64]");
      m.widths.push_back(static_cast<int>(v));
    }
  } else {
    m.widths = {4};
  }

  if (const Json* seeds = doc.find("seeds")) {
    if (!seeds->is_array() || seeds->arr.empty())
      bad("\"seeds\" must be a non-empty array");
    for (const Json& s : seeds->arr) {
      const std::int64_t v = as_int(s, "\"seeds\" entry");
      if (v < 0) bad("seeds must be non-negative");
      m.seeds.push_back(static_cast<std::uint64_t>(v));
    }
  } else {
    m.seeds = {0xF111};
  }

  if (const Json* v = doc.find("compact")) {
    if (!v->is_string() || !known_compact(v->str))
      bad("\"compact\" must be off|static|dynamic");
    m.compact = v->str;
  }
  if (const Json* v = doc.find("xfill")) {
    if (!v->is_string() || !known_xfill(v->str))
      bad("\"xfill\" must be random|0|1|adjacent");
    m.xfill = v->str;
  }
  if (const Json* v = doc.find("backtrack_limit")) {
    m.backtrack_limit = as_int(*v, "\"backtrack_limit\"");
    if (m.backtrack_limit < 1) bad("\"backtrack_limit\" must be >= 1");
  }
  if (const Json* v = doc.find("seq_max_frames")) {
    m.seq_max_frames = static_cast<int>(as_int(*v, "\"seq_max_frames\""));
    if (m.seq_max_frames < 1) bad("\"seq_max_frames\" must be >= 1");
  }
  if (const Json* v = doc.find("seq_backtrack_limit")) {
    m.seq_backtrack_limit = as_int(*v, "\"seq_backtrack_limit\"");
    if (m.seq_backtrack_limit < 1) bad("\"seq_backtrack_limit\" must be >= 1");
  }
  if (const Json* v = doc.find("seq_fault_cap")) {
    m.seq_fault_cap = as_int(*v, "\"seq_fault_cap\"");
    if (m.seq_fault_cap < 0) bad("\"seq_fault_cap\" must be >= 0");
  }

  // Duplicate axis values would create colliding job ids (and silently
  // inflate the grid); reject them all up front.
  {
    std::set<std::string> stems;
    for (const std::string& d : m.designs)
      if (!stems.insert(design_stem(d)).second)
        bad("two designs share the id stem \"" + design_stem(d) +
            "\" — rename or alias one of them");
    std::set<std::string> names;
    for (const FuConfig& c : m.configs)
      if (!names.insert(c.name).second)
        bad("duplicate config name \"" + c.name + "\"");
    std::set<std::string> scans(m.scans.begin(), m.scans.end());
    if (scans.size() != m.scans.size()) bad("duplicate scan policy");
    std::set<int> widths(m.widths.begin(), m.widths.end());
    if (widths.size() != m.widths.size()) bad("duplicate width");
    std::set<std::uint64_t> seeds(m.seeds.begin(), m.seeds.end());
    if (seeds.size() != m.seeds.size()) bad("duplicate seed");
  }
  return m;
}

std::vector<JobSpec> expand_grid(const Manifest& m) {
  std::vector<JobSpec> jobs;
  jobs.reserve(m.designs.size() * m.configs.size() * m.scans.size() *
               m.widths.size() * m.seeds.size());
  for (const std::string& design : m.designs) {
    const std::string stem = design_stem(design);
    for (const FuConfig& config : m.configs)
      for (const std::string& scan : m.scans)
        for (int width : m.widths)
          for (std::uint64_t seed : m.seeds) {
            JobSpec j;
            j.id = stem + "." + config.name + "." + scan + ".w" +
                   std::to_string(width) + ".s" + std::to_string(seed);
            j.design = design;
            j.config = config;
            j.scan = scan;
            j.width = width;
            j.seed = seed;
            jobs.push_back(std::move(j));
          }
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const JobSpec& a, const JobSpec& b) { return a.id < b.id; });
  return jobs;
}

}  // namespace tsyn::campaign
