#include "campaign/sweep.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "campaign/timeline.h"
#include "cdfg/benchmarks.h"
#include "cdfg/parser.h"
#include "compaction/compaction.h"
#include "gatelevel/atpg_seq.h"
#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "gatelevel/faultsim.h"
#include "gatelevel/simgraph.h"
#include "hls/synthesis.h"
#include "observe/history.h"
#include "observe/report.h"
#include "testability/scan_select.h"
#include "util/hash.h"
#include "util/json.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace tsyn::campaign {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Compact human-facing double (index.json); matches the report emitter.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  std::string s(buf);
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  return s;
}

/// Round-trip-exact double (journal); the index re-formats through
/// fmt_double after a parse, so journal-restored rows match fresh ones.
std::string fmt_exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

/// The byte content a design spec's cache identity is built from:
/// benchmarks are identified by name (their construction is part of the
/// binary), files by their bytes. An unreadable file gets a deterministic
/// sentinel so the job runs, fails with the real error, and stays
/// journal-skippable until the file actually changes.
std::string design_token(const std::string& design) {
  if (design.rfind("bench:", 0) == 0) return design;
  std::string content;
  if (!read_file(design, &content)) return "<unreadable>";
  return content;
}

std::uint64_t parse_key(const JobSpec& spec, const std::string& token) {
  return util::Fnv1a().str("stage.parse.v1").str(spec.design).str(token)
      .value();
}

std::uint64_t synth_key(std::uint64_t parse, const FuConfig& c) {
  return util::Fnv1a().str("stage.synth.v1").u64(parse).i64(c.alu).i64(c.mul)
      .i64(c.steps).value();
}

std::uint64_t expand_key(std::uint64_t synth, const std::string& scan,
                         int width) {
  return util::Fnv1a().str("stage.expand.v1").u64(synth).str(scan).i64(width)
      .value();
}

/// Everything that defines one job's result bytes — the journal's skip
/// criterion. Folding the manifest content hash covers every campaign
/// knob; the design token covers file edits between runs.
std::string job_spec_hash(const JobSpec& spec, const Manifest& m,
                          const std::string& token) {
  return util::Fnv1a().str("job.v1").str(m.content_hash()).str(spec.id)
      .str(spec.design).str(token).hex();
}

std::shared_ptr<const cdfg::Cdfg> load_design(const JobSpec& spec,
                                              const std::string& token) {
  if (spec.design.rfind("bench:", 0) == 0) {
    const std::string name = spec.design.substr(6);
    for (cdfg::Cdfg& g : cdfg::standard_benchmarks())
      if (g.name() == name)
        return std::make_shared<const cdfg::Cdfg>(std::move(g));
    throw std::runtime_error("unknown benchmark: " + name);
  }
  if (token == "<unreadable>")
    throw std::runtime_error("cannot open design file: " + spec.design);
  return std::make_shared<const cdfg::Cdfg>(cdfg::parse_cdfg(token));
}

std::vector<cdfg::VarId> scan_vars_for(const cdfg::Cdfg& g,
                                       const std::string& policy) {
  if (policy == "mfvs") return testability::select_scan_vars_mfvs(g);
  if (policy == "loopcut") return testability::select_scan_vars_loopcut(g);
  if (policy == "boundary") return testability::select_scan_vars_boundary(g);
  if (policy == "interior") return testability::select_scan_vars_interior(g);
  throw std::runtime_error("unknown scan policy: " + policy);
}

/// A failed job still writes a (deterministic) artifact, so results/ is
/// complete and the journal's content-hash verification applies uniformly.
std::string failure_report_json(const JobSpec& spec, const std::string& err) {
  std::ostringstream os;
  os << "{\n  \"schema\": 1,\n  \"tool\": \"tsyn\",\n  \"title\": \""
     << json_escape(spec.id) << "\",\n  \"status\": \"failed\",\n"
     << "  \"error\": \"" << json_escape(err) << "\"\n}\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

struct JournalEntry {
  std::string spec;    ///< job_spec_hash hex
  std::string status;  ///< "ok" | "failed"
  std::string result;  ///< report content hash hex
  std::string error;
  std::int64_t gates = 0, faults = 0, patterns = 0, cubes = 0;
  double coverage = 0, efficiency = 0, wall_ms = 0;
};

/// Failure diagnostics for the journal: the process metrics snapshot and
/// the last heartbeat line at the moment the failure was recorded. Pure
/// triage data — read_journal ignores unknown keys, so resume semantics
/// (and the journal-restore path) are untouched by its presence.
std::string failure_diagnostics_json() {
  const util::MetricsSnapshot snap = util::metrics().snapshot();
  std::ostringstream os;
  os << ",\"diag\":{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    os << (first ? "" : ",") << '"' << json_escape(name) << "\":" << v;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    os << (first ? "" : ",") << '"' << json_escape(name)
       << "\":" << fmt_exact(v);
    first = false;
  }
  os << "},\"heartbeat\":\"" << json_escape(util::telemetry_last_line())
     << "\"}";
  return os.str();
}

/// `extra` is a pre-rendered ",\"key\":..." suffix (failure diagnostics);
/// empty for ok jobs so the common record shape is unchanged.
std::string journal_line(const JobResult& r, const std::string& extra = "") {
  std::ostringstream os;
  os << "{\"type\":\"job\",\"job\":\"" << json_escape(r.spec.id)
     << "\",\"spec\":\"" << r.result_spec_hash
     << "\",\"status\":\"" << r.status << "\",\"result\":\"" << r.result_hash
     << "\",\"gates\":" << r.gates << ",\"faults\":" << r.faults
     << ",\"patterns\":" << r.patterns << ",\"cubes\":" << r.cubes
     << ",\"coverage\":" << fmt_exact(r.coverage)
     << ",\"efficiency\":" << fmt_exact(r.efficiency)
     << ",\"wall_ms\":" << fmt_exact(r.wall_ms) << ",\"error\":\""
     << json_escape(r.error) << "\"" << extra << "}\n";
  return os.str();
}

/// Parses the journal: header manifest hash + last entry per job id.
/// Unparsable lines are skipped, not fatal: a kill mid-write tears at most
/// the trailing record, and every record is independently verified against
/// its report file's content hash before it is trusted — a corrupt line
/// can only cause a re-run, never a wrong skip.
struct JournalState {
  bool has_header = false;
  std::string manifest_hash;
  std::map<std::string, JournalEntry> jobs;
};

JournalState read_journal(const std::string& path) {
  JournalState st;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    util::Json doc;
    try {
      doc = util::Json::parse(line);
    } catch (const util::JsonParseError&) {
      continue;  // torn record from a kill; the rest of the journal stands
    }
    const util::Json* type = doc.find("type");
    if (!type || !type->is_string()) continue;
    if (type->str == "sweep") {
      const util::Json* mh = doc.find("manifest");
      if (mh && mh->is_string()) {
        st.has_header = true;
        st.manifest_hash = mh->str;
      }
      continue;
    }
    if (type->str != "job") continue;
    const util::Json* id = doc.find("job");
    if (!id || !id->is_string()) continue;
    JournalEntry e;
    auto str_of = [&](const char* key) {
      const util::Json* v = doc.find(key);
      return v && v->is_string() ? v->str : std::string();
    };
    e.spec = str_of("spec");
    e.status = str_of("status");
    e.result = str_of("result");
    e.error = str_of("error");
    e.gates = static_cast<std::int64_t>(doc.number_or("gates", 0));
    e.faults = static_cast<std::int64_t>(doc.number_or("faults", 0));
    e.patterns = static_cast<std::int64_t>(doc.number_or("patterns", 0));
    e.cubes = static_cast<std::int64_t>(doc.number_or("cubes", 0));
    e.coverage = doc.number_or("coverage", 0);
    e.efficiency = doc.number_or("efficiency", 0);
    e.wall_ms = doc.number_or("wall_ms", 0);
    st.jobs[id->str] = std::move(e);
  }
  return st;
}

}  // namespace

// ---------------------------------------------------------------------------
// One job
// ---------------------------------------------------------------------------

JobResult run_one_job(const JobSpec& spec, const Manifest& m,
                      StageCache& cache, std::string* report_json,
                      std::vector<StageSpan>* stages) {
  JobResult r;
  r.spec = spec;
  const Clock::time_point jt0 = Clock::now();
  const char* outcome = "none";
  auto record_stage = [&](const char* name, double t0_ms) {
    if (stages) stages->push_back({name, t0_ms, ms_since(jt0), outcome});
  };
  const std::string token = design_token(spec.design);
  r.result_spec_hash = job_spec_hash(spec, m, token);
  try {
    TSYN_SPAN("sweep.job");
    const std::uint64_t pk = parse_key(spec, token);
    double st0 = ms_since(jt0);
    const auto g = cache.parse.get_or_compute(
        pk, [&] { return load_design(spec, token); }, &outcome);
    record_stage("parse", st0);

    const std::uint64_t sk = synth_key(pk, spec.config);
    st0 = ms_since(jt0);
    const auto syn = cache.synth.get_or_compute(sk, [&] {
      TSYN_SPAN("sweep.stage.synth");
      hls::SynthesisOptions opts;
      opts.resources =
          hls::Resources{{cdfg::FuType::kAlu, spec.config.alu},
                         {cdfg::FuType::kMultiplier, spec.config.mul}};
      opts.num_steps = spec.config.steps;
      return std::make_shared<const hls::Synthesis>(hls::synthesize(*g, opts));
    }, &outcome);
    record_stage("synth", st0);

    const std::uint64_t ek = expand_key(sk, spec.scan, spec.width);
    st0 = ms_since(jt0);
    const auto ex = cache.expand.get_or_compute(ek, [&] {
      TSYN_SPAN("sweep.stage.expand");
      rtl::Datapath dp = syn->rtl.datapath;
      if (spec.scan == "full") {
        for (auto& reg : dp.regs) reg.test_kind = rtl::TestRegKind::kScan;
      } else if (spec.scan != "none") {
        testability::apply_scan(*g, syn->binding, scan_vars_for(*g, spec.scan),
                                dp);
      }
      gl::ExpandOptions eo;
      eo.width_override = spec.width;
      // A sweep churns thousands of expansions; provenance recording is
      // the per-job explain/report flow's business, not the fleet's.
      eo.record_provenance = false;
      auto stage = std::make_shared<ExpandStage>();
      stage->design = gl::expand_datapath(dp, eo);
      stage->faults = gl::enumerate_faults(stage->design.netlist);
      // Lower the SoA sim graph now, single-threaded under the cache's
      // miss coalescing: SimGraph::of's lower-and-cache slot on the
      // netlist is not safe against concurrent first access, but every
      // job that shares this netlist from here on only reads it.
      gl::SimGraph::of(stage->design.netlist);
      return stage;
    }, &outcome);
    record_stage("expand", st0);
    outcome = "none";  // atpg has no cache in front of it
    st0 = ms_since(jt0);

    const gl::Netlist& n = ex->design.netlist;
    observe::RunReport rep;
    rep.title = spec.id;
    rep.behavior = spec.design;
    rep.width = spec.width;
    rep.gates = n.gate_count();
    rep.pis = static_cast<std::int64_t>(n.primary_inputs().size());
    rep.faults = static_cast<std::int64_t>(ex->faults.size());

    gl::FaultSimOptions sim;
    sim.num_threads = 1;  // parallelism is job-level; keep reports invariant

    if (!ex->design.sequential()) {
      compaction::CompactionOptions copts;
      if (!compaction::parse_compact_mode(m.compact, &copts.mode))
        throw std::runtime_error("bad compact mode: " + m.compact);
      if (!compaction::parse_xfill(m.xfill, &copts.xfill))
        throw std::runtime_error("bad xfill: " + m.xfill);
      copts.fill_seed = spec.seed;
      const compaction::CompactedCampaign c = compaction::run_compacted_atpg(
          n, ex->faults, copts, m.backtrack_limit, sim);
      rep.compact_mode = compaction::to_string(copts.mode);
      rep.xfill = compaction::to_string(copts.xfill);
      rep.fault_coverage = c.campaign.fault_coverage;
      rep.fault_efficiency = c.campaign.fault_efficiency;
      rep.cubes = c.stats.cubes_generated;
      rep.patterns = static_cast<std::int64_t>(c.patterns.size());
      rep.baseline_patterns = c.baseline_patterns;
    } else {
      std::vector<gl::Fault> faults = ex->faults;
      if (m.seq_fault_cap > 0 &&
          static_cast<long>(faults.size()) > m.seq_fault_cap)
        faults.resize(static_cast<std::size_t>(m.seq_fault_cap));
      const gl::SeqAtpgCampaign c = gl::run_sequential_atpg(
          n, faults, m.seq_max_frames, m.seq_backtrack_limit, sim);
      rep.compact_mode = "seq-tfe";  // time-frame expansion, no compaction
      rep.xfill = "none";
      rep.faults = static_cast<std::int64_t>(faults.size());
      rep.fault_coverage = c.fault_coverage;
      rep.fault_efficiency = c.fault_efficiency;
      // Sequential campaigns report coverage/efficiency; pattern-set size
      // is a compaction concept and stays 0 rather than an approximation.
    }

    record_stage("atpg", st0);
    *report_json = observe::report_to_json(rep);
    r.gates = rep.gates;
    r.faults = rep.faults;
    r.patterns = rep.patterns;
    r.cubes = rep.cubes;
    r.coverage = rep.fault_coverage;
    r.efficiency = rep.fault_efficiency;
  } catch (const std::exception& e) {
    r.status = "failed";
    r.error = e.what();
    *report_json = failure_report_json(spec, r.error);
  } catch (...) {
    r.status = "failed";
    r.error = "unknown exception";
    *report_json = failure_report_json(spec, r.error);
  }
  r.result_hash = util::Fnv1a::hash_hex(util::fnv1a(*report_json));
  return r;
}

// ---------------------------------------------------------------------------
// Live sweep rollup (observability endpoint)
// ---------------------------------------------------------------------------

namespace {

/// What the /jobs endpoint can ask about a sweep mid-flight. The cache
/// pointer stays valid for the published window (RAII scope below);
/// StageCache::stats() is atomics-only, so concurrent reads are safe.
struct SweepLive {
  std::mutex mu;
  bool active = false;
  std::string manifest_hash;
  std::int64_t grid = 0;
  std::int64_t journal_hits = 0;
  std::int64_t to_run = 0;
  const StageCache* cache = nullptr;
};

SweepLive& sweep_live() {
  static SweepLive* s = new SweepLive();  // never dtor'd
  return *s;
}

/// Publishes the in-flight sweep for sweep_live_json(); clears on scope
/// exit (normal completion or a thrown SweepError alike).
class SweepLiveScope {
 public:
  SweepLiveScope(const std::string& manifest_hash, std::int64_t grid,
                 std::int64_t journal_hits, std::int64_t to_run,
                 const StageCache* cache) {
    SweepLive& s = sweep_live();
    std::lock_guard<std::mutex> lk(s.mu);
    s.active = true;
    s.manifest_hash = manifest_hash;
    s.grid = grid;
    s.journal_hits = journal_hits;
    s.to_run = to_run;
    s.cache = cache;
  }
  ~SweepLiveScope() {
    SweepLive& s = sweep_live();
    std::lock_guard<std::mutex> lk(s.mu);
    s.active = false;
    s.cache = nullptr;
  }
};

}  // namespace

std::string sweep_live_json() {
  SweepLive& s = sweep_live();
  std::lock_guard<std::mutex> lk(s.mu);
  if (!s.active) return "";
  const CacheStats c = s.cache ? s.cache->stats() : CacheStats{};
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "{\"manifest\":\"%s\",\"grid\":%lld,\"journal_hits\":%lld,"
                "\"to_run\":%lld,\"cache\":{\"hits\":%lld,\"misses\":%lld,"
                "\"coalesced\":%lld}}",
                s.manifest_hash.c_str(), static_cast<long long>(s.grid),
                static_cast<long long>(s.journal_hits),
                static_cast<long long>(s.to_run),
                static_cast<long long>(c.hits()),
                static_cast<long long>(c.misses()),
                static_cast<long long>(c.coalesced()));
  return buf;
}

// ---------------------------------------------------------------------------
// The sweep
// ---------------------------------------------------------------------------

SweepSummary run_sweep(const Manifest& m, const SweepOptions& opts) {
  const Clock::time_point t0 = Clock::now();
  SweepSummary summary;
  summary.manifest_hash = m.content_hash();
  const std::vector<JobSpec> grid = expand_grid(m);
  summary.jobs.resize(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) summary.jobs[i].spec = grid[i];

  const fs::path dir(opts.results_dir);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec && !fs::is_directory(dir))
    throw SweepError("cannot create results dir " + opts.results_dir + ": " +
                     ec.message());
  const std::string journal_path = (dir / "journal.jsonl").string();

  JournalState journal;
  const bool journal_exists = fs::exists(journal_path);
  if (journal_exists) {
    if (!opts.resume)
      throw SweepError(opts.results_dir +
                       " already holds a sweep journal; pass --resume to "
                       "continue it or choose a fresh results dir");
    journal = read_journal(journal_path);
    if (journal.has_header && journal.manifest_hash != summary.manifest_hash)
      throw SweepError(
          "journal in " + opts.results_dir +
          " belongs to a different manifest (journal " +
          journal.manifest_hash + ", this manifest " + summary.manifest_hash +
          "); refusing to mix sweeps in one results dir");
  } else if (opts.resume) {
    throw SweepError("--resume: no journal found in " + opts.results_dir);
  }

  // Decide per job: satisfied by the journal (spec hash matches AND the
  // report file on disk still hashes to what the journal recorded), or
  // pending. Verification makes a half-deleted results dir self-heal.
  std::vector<int> pending;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    JobResult& r = summary.jobs[i];
    const std::string token = design_token(grid[i].design);
    const std::string spec_hash = job_spec_hash(grid[i], m, token);
    r.result_spec_hash = spec_hash;
    const auto it = journal.jobs.find(grid[i].id);
    bool satisfied = false;
    if (it != journal.jobs.end() && it->second.spec == spec_hash) {
      std::string content;
      if (read_file((dir / (grid[i].id + ".json")).string(), &content) &&
          util::Fnv1a::hash_hex(util::fnv1a(content)) == it->second.result) {
        const JournalEntry& e = it->second;
        r.status = e.status;
        r.error = e.error;
        r.gates = e.gates;
        r.faults = e.faults;
        r.patterns = e.patterns;
        r.cubes = e.cubes;
        r.coverage = e.coverage;
        r.efficiency = e.efficiency;
        r.wall_ms = e.wall_ms;
        r.result_hash = e.result;
        r.from_journal = true;
        satisfied = true;
      }
    }
    if (!satisfied) pending.push_back(static_cast<int>(i));
  }
  summary.journal_hits =
      static_cast<std::int64_t>(grid.size() - pending.size());

  if (opts.max_jobs > 0 &&
      static_cast<int>(pending.size()) > opts.max_jobs) {
    pending.resize(static_cast<std::size_t>(opts.max_jobs));
    summary.complete = false;
    for (JobResult& r : summary.jobs)
      if (!r.from_journal) r.status = "pending";
  }

  // A kill mid-write can leave the journal without a trailing newline;
  // appending straight after the torn fragment would weld it onto the next
  // record and corrupt both. Terminate the tear first.
  if (journal_exists) {
    std::ifstream probe(journal_path, std::ios::binary | std::ios::ate);
    const auto size = probe.tellg();
    char last = '\n';
    if (size > 0) {
      probe.seekg(-1, std::ios::end);
      probe.get(last);
    }
    if (last != '\n') {
      std::ofstream fix(journal_path, std::ios::binary | std::ios::app);
      fix << '\n';
    }
  }
  std::FILE* jf = std::fopen(journal_path.c_str(), "a");
  if (!jf)
    throw SweepError("cannot open journal " + journal_path + " for append");
  if (!journal_exists) {
    std::fprintf(jf, "{\"type\":\"sweep\",\"schema\":1,\"manifest\":\"%s\","
                 "\"jobs\":%zu}\n",
                 summary.manifest_hash.c_str(), grid.size());
    std::fflush(jf);
  }

  util::telemetry_set_phase("sweep");
  util::telemetry_jobs_reset();  // heartbeat job counts are per-sweep
  static util::Progress& jobs_progress = util::progress("sweep.jobs");
  jobs_progress.add_total(static_cast<std::int64_t>(pending.size()));
  util::logf(util::LogLevel::kInfo, "sweep",
             "grid %zu jobs: %zu from journal, %zu to run",
             grid.size(), grid.size() - pending.size(), pending.size());

  StageCache cache;
  // Declared after `cache` so the live view unpublishes before the cache
  // it points at dies.
  SweepLiveScope live(summary.manifest_hash,
                      static_cast<std::int64_t>(grid.size()),
                      summary.journal_hits,
                      static_cast<std::int64_t>(pending.size()), &cache);
  std::mutex io_mu;
  std::vector<JobSpan> timeline;
  const bool want_timeline = !opts.timeline_path.empty();
  util::ThreadPool& pool = util::ThreadPool::shared();
  const int threads =
      opts.threads > 0 ? opts.threads : pool.max_parallelism();
  pool.run(static_cast<int>(pending.size()), threads, [&](int k, int slot) {
    const int i = pending[static_cast<std::size_t>(k)];
    const JobSpec& spec = grid[static_cast<std::size_t>(i)];
    util::telemetry_job_begin(spec.id);
    const double sweep_t0_ms = ms_since(t0);
    const Clock::time_point jt0 = Clock::now();
    std::string report;
    std::vector<StageSpan> stages;
    JobResult r = run_one_job(spec, m, cache, &report,
                              want_timeline ? &stages : nullptr);
    r.wall_ms = ms_since(jt0);
    const std::string path = (dir / (spec.id + ".json")).string();
    if (!write_file(path, report)) {
      // An unwritable report is a job failure, not a sweep failure: the
      // journal records it (unverifiable, so a resume retries it).
      r.status = "failed";
      r.error = "cannot write " + path;
    }
    util::telemetry_job_end(spec.id, r.status == "failed");
    // Snapshot diagnostics outside the io lock; only failed records pay.
    const std::string diag =
        r.status == "failed" ? failure_diagnostics_json() : std::string();
    {
      std::lock_guard<std::mutex> lk(io_mu);
      const std::string line = journal_line(r, diag);
      std::fwrite(line.data(), 1, line.size(), jf);
      std::fflush(jf);
      if (want_timeline) {
        JobSpan span;
        span.id = spec.id;
        span.slot = slot;
        span.t0_ms = sweep_t0_ms;
        span.t1_ms = sweep_t0_ms + r.wall_ms;
        span.status = r.status;
        span.stages = std::move(stages);
        for (StageSpan& st : span.stages) {  // job-relative -> sweep-relative
          st.t0_ms += sweep_t0_ms;
          st.t1_ms += sweep_t0_ms;
        }
        timeline.push_back(std::move(span));
      }
      summary.jobs[static_cast<std::size_t>(i)] = std::move(r);
    }
    util::logf(util::LogLevel::kInfo, "sweep", "job %s: %s cov=%.2f%%",
               spec.id.c_str(),
               summary.jobs[static_cast<std::size_t>(i)].status.c_str(),
               100 * summary.jobs[static_cast<std::size_t>(i)].coverage);
    jobs_progress.add(1);
  });
  std::fclose(jf);

  summary.ran = static_cast<std::int64_t>(pending.size());
  summary.cache = cache.stats();
  for (const JobResult& r : summary.jobs)
    if (r.status == "failed") ++summary.failed;
  summary.wall_ms = ms_since(t0);

  if (want_timeline) {
    const fs::path tp(opts.timeline_path);
    if (tp.has_parent_path()) fs::create_directories(tp.parent_path(), ec);
    if (!write_file(opts.timeline_path, timeline_to_json(timeline)))
      throw SweepError("cannot write timeline " + opts.timeline_path);
  }

  if (summary.complete && !opts.history_dir.empty()) {
    observe::HistoryRun hr;
    hr.manifest = summary.manifest_hash;
    hr.source = "sweep:" + opts.results_dir;
    hr.wall_ms = summary.wall_ms;
    const std::int64_t memo_hits = summary.journal_hits + summary.cache.hits();
    const std::int64_t lookups = memo_hits + summary.cache.misses();
    hr.memo_hit_rate = lookups > 0 ? static_cast<double>(memo_hits) /
                                         static_cast<double>(lookups)
                                   : 1.0;
    hr.entries.reserve(summary.jobs.size());
    for (const JobResult& r : summary.jobs) {
      observe::HistoryEntry e;
      e.job = r.spec.id;
      e.design = r.spec.design;
      e.config = r.spec.config.name;
      e.scan = r.spec.scan;
      e.width = r.spec.width;
      e.seed = r.spec.seed;
      e.status = r.status;
      e.error = r.error;
      e.gates = r.gates;
      e.faults = r.faults;
      e.patterns = r.patterns;
      e.cubes = r.cubes;
      e.coverage = r.coverage;
      e.efficiency = r.efficiency;
      e.wall_ms = r.wall_ms;
      hr.entries.push_back(std::move(e));
    }
    try {
      const observe::IngestResult ing =
          observe::history_ingest(opts.history_dir, hr);
      summary.history_run_id = ing.run_id;
      summary.history_added = ing.added;
      summary.history_runs_total = ing.runs_total;
      summary.history_outliers_json = observe::outliers_to_json(
          observe::history_outliers(observe::history_load(opts.history_dir)));
    } catch (const observe::HistoryError& e) {
      throw SweepError(std::string("history ingest failed: ") + e.what());
    }
  }

  if (summary.complete) {
    if (!write_file((dir / "index.json").string(), index_to_json(summary)))
      throw SweepError("cannot write index.json in " + opts.results_dir);
    if (!write_file((dir / "sweep_stats.json").string(),
                    sweep_stats_to_json(summary)))
      throw SweepError("cannot write sweep_stats.json in " + opts.results_dir);
  }
  return summary;
}

// ---------------------------------------------------------------------------
// Artifacts
// ---------------------------------------------------------------------------

std::string index_to_json(const SweepSummary& s) {
  // "schema"/"seed" keep the index bench_diff-compatible; the seed slot
  // carries the manifest identity (low 32 bits, exact in a double) so a
  // baseline from a different manifest is rejected up front.
  std::uint64_t manifest_bits = 0;
  for (char c : s.manifest_hash) {
    manifest_bits <<= 4;
    manifest_bits |= static_cast<std::uint64_t>(
        c <= '9' ? c - '0' : c - 'a' + 10);
  }
  std::ostringstream os;
  os << "{\n  \"schema\": 2,\n  \"seed\": " << (manifest_bits & 0xFFFFFFFFu)
     << ",\n  \"manifest\": \"" << s.manifest_hash << "\",\n  \"jobs\": [";
  double cov_sum = 0;
  std::int64_t ok = 0;
  for (std::size_t i = 0; i < s.jobs.size(); ++i) {
    const JobResult& r = s.jobs[i];
    if (r.status == "ok") {
      cov_sum += r.coverage;
      ++ok;
    }
    os << (i ? ",\n    " : "\n    ") << "{\"case\": \""
       << json_escape(r.spec.id) << "\", \"design\": \""
       << json_escape(r.spec.design) << "\", \"config\": \""
       << json_escape(r.spec.config.name) << "\", \"scan\": \"" << r.spec.scan
       << "\", \"width\": " << r.spec.width << ", \"job_seed\": " << r.spec.seed
       << ", \"status\": \"" << r.status << "\", \"gates\": " << r.gates
       << ", \"faults\": " << r.faults
       << ", \"coverage\": " << fmt_double(r.coverage)
       << ", \"efficiency\": " << fmt_double(r.efficiency)
       << ", \"patterns\": " << r.patterns << ", \"cubes\": " << r.cubes
       << ", \"wall_ms\": " << fmt_double(r.wall_ms) << ", \"error\": \""
       << json_escape(r.error) << "\"}";
  }
  os << "\n  ],\n  \"summary\": {\"jobs\": " << s.jobs.size()
     << ", \"jobs_ok\": " << ok << ", \"jobs_failed\": " << s.failed
     << ", \"mean_coverage\": "
     << fmt_double(ok > 0 ? cov_sum / static_cast<double>(ok) : 0.0)
     << "}\n}\n";
  return os.str();
}

std::string strip_timing(const std::string& index_json) {
  static const std::string kKey = "\"wall_ms\": ";
  std::string out;
  out.reserve(index_json.size());
  std::size_t pos = 0;
  for (;;) {
    const std::size_t at = index_json.find(kKey, pos);
    if (at == std::string::npos) {
      out.append(index_json, pos, std::string::npos);
      return out;
    }
    const std::size_t val = at + kKey.size();
    std::size_t end = val;
    while (end < index_json.size() &&
           (std::isdigit(static_cast<unsigned char>(index_json[end])) ||
            index_json[end] == '.' || index_json[end] == '-' ||
            index_json[end] == '+' || index_json[end] == 'e' ||
            index_json[end] == 'E'))
      ++end;
    out.append(index_json, pos, val - pos);
    out += "0";
    pos = end;
  }
}

std::string sweep_stats_to_json(const SweepSummary& s) {
  const CacheStats& c = s.cache;
  const std::int64_t memo_hits = s.journal_hits + c.hits();
  const std::int64_t lookups = memo_hits + c.misses();
  std::ostringstream os;
  os << "{\n  \"schema\": 1,\n  \"manifest\": \"" << s.manifest_hash
     << "\",\n  \"jobs\": " << s.jobs.size() << ",\n  \"ran\": " << s.ran
     << ",\n  \"journal_hits\": " << s.journal_hits
     << ",\n  \"failed\": " << s.failed
     << ",\n  \"wall_ms\": " << fmt_double(s.wall_ms) << ",\n  \"cache\": {"
     << "\"parse\": {\"hits\": " << c.parse_hits
     << ", \"misses\": " << c.parse_misses << "}, "
     << "\"synth\": {\"hits\": " << c.synth_hits
     << ", \"misses\": " << c.synth_misses << "}, "
     << "\"expand\": {\"hits\": " << c.expand_hits
     << ", \"misses\": " << c.expand_misses << "}},\n"
     << "  \"coalesced\": {\"parse\": " << c.parse_coalesced
     << ", \"synth\": " << c.synth_coalesced
     << ", \"expand\": " << c.expand_coalesced << "},\n"
     << "  \"memo_hit_rate\": "
     << fmt_double(lookups > 0
                       ? static_cast<double>(memo_hits) /
                             static_cast<double>(lookups)
                       : 1.0);
  if (!s.history_run_id.empty()) {
    os << ",\n  \"history\": {\"run\": \"" << s.history_run_id
       << "\", \"added\": " << (s.history_added ? "true" : "false")
       << ", \"runs_total\": " << s.history_runs_total << ", \"outliers\": "
       << (s.history_outliers_json.empty() ? "[]" : s.history_outliers_json)
       << "}";
  }
  os << "\n}\n";
  return os.str();
}

}  // namespace tsyn::campaign
