// Job timeline: the sweep's scheduling record, exported as Chrome
// trace_event JSON (chrome://tracing, Perfetto).
//
// The orchestrator's own trace spans (util/trace.h) answer "where did one
// job's time go"; the timeline answers the fleet question — where did the
// *sweep's* wall-clock go: scheduling gaps, cache-miss serialization, or
// one straggler job pinning a worker while the rest of the pool drains.
// One track (tid) per pool worker slot, one "X" span per job carrying its
// status, and one sub-span per pipeline stage annotated with whether the
// stage was computed here ("miss"), satisfied instantly ("hit"), or
// blocked on another job's in-flight computation ("coalesced").
//
// Timestamps are milliseconds since the sweep started (microseconds in the
// exported JSON, per the trace_event spec) — monotonic within one run and
// deliberately not wall-clock dates, matching the repo's timestamp-free
// artifact rule. The timeline is a run-varying artifact like
// sweep_stats.json, never part of the deterministic index.
#pragma once

#include <string>
#include <vector>

namespace tsyn::campaign {

/// One pipeline stage inside a job span. `cache` is "hit", "miss",
/// "coalesced" (blocked on another thread's miss), or "none" for stages
/// that have no cache (atpg).
struct StageSpan {
  std::string name;  ///< "parse" | "synth" | "expand" | "atpg"
  double t0_ms = 0;  ///< relative to the *job* start when recorded by
  double t1_ms = 0;  ///<   run_one_job; run_sweep rebases to sweep time
  std::string cache;
};

/// One job's occupancy of one worker slot.
struct JobSpan {
  std::string id;      ///< grid job id
  int slot = 0;        ///< pool worker slot == timeline track
  double t0_ms = 0;    ///< sweep-relative
  double t1_ms = 0;
  std::string status;  ///< "ok" | "failed"
  std::vector<StageSpan> stages;
};

/// Renders the Chrome trace_event document: thread_name metadata per slot,
/// job spans, stage sub-spans. Spans are emitted sorted by (slot, t0, id)
/// so the bytes are a function of the recorded set, not of append order.
std::string timeline_to_json(const std::vector<JobSpan>& jobs);

}  // namespace tsyn::campaign
