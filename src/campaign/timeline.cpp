#include "campaign/timeline.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

namespace tsyn::campaign {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// trace_event timestamps are integer-friendly microseconds; one decimal
/// keeps sub-µs stage boundaries distinct without noisy precision.
std::string us(double ms) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.1f", ms * 1000.0);
  return buf;
}

void append_span(std::ostringstream& os, bool* first, const std::string& name,
                 const char* cat, int tid, double t0_ms, double t1_ms,
                 const std::string& args_key, const std::string& args_val) {
  if (!*first) os << ",\n";
  *first = false;
  os << "    {\"name\": \"" << json_escape(name) << "\", \"cat\": \"" << cat
     << "\", \"ph\": \"X\", \"ts\": " << us(t0_ms)
     << ", \"dur\": " << us(std::max(0.0, t1_ms - t0_ms))
     << ", \"pid\": 1, \"tid\": " << tid << ", \"args\": {\"" << args_key
     << "\": \"" << json_escape(args_val) << "\"}}";
}

}  // namespace

std::string timeline_to_json(const std::vector<JobSpan>& jobs) {
  std::vector<const JobSpan*> order;
  order.reserve(jobs.size());
  for (const JobSpan& j : jobs) order.push_back(&j);
  std::sort(order.begin(), order.end(),
            [](const JobSpan* a, const JobSpan* b) {
              if (a->slot != b->slot) return a->slot < b->slot;
              if (a->t0_ms != b->t0_ms) return a->t0_ms < b->t0_ms;
              return a->id < b->id;
            });

  std::set<int> slots;
  for (const JobSpan& j : jobs) slots.insert(j.slot);

  std::ostringstream os;
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  bool first = true;
  for (int slot : slots) {
    if (!first) os << ",\n";
    first = false;
    os << "    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
          "\"tid\": "
       << slot << ", \"args\": {\"name\": \"worker-" << slot << "\"}}";
  }
  for (const JobSpan* j : order) {
    append_span(os, &first, j->id, "job", j->slot, j->t0_ms, j->t1_ms,
                "status", j->status);
    for (const StageSpan& st : j->stages)
      append_span(os, &first, st.name, "stage", j->slot, st.t0_ms, st.t1_ms,
                  "cache", st.cache);
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace tsyn::campaign
