// The campaign orchestrator: a memoizing batch sweep service over
// design x config grids.
//
// run_sweep() expands a manifest into its job grid and runs every job on
// the shared util::ThreadPool work queue. Jobs are isolated — a throwing
// job is caught, recorded as "status":"failed" with its error text, and
// never takes the sweep down — and share their pipeline prefixes through
// the content-addressed StageCache, so coverage of a 1000-point grid costs
// one CDFG parse per design, one schedule+binding per (design, config),
// and one RTL->gate lowering per (design, config, scan, width).
//
// Durability: every completed job appends one flushed JSONL record to
// <results>/journal.jsonl and streams its schema-1 report to
// <results>/<job-id>.json. A killed sweep therefore loses at most the
// in-flight jobs; resuming with SweepOptions::resume skips every
// journaled job whose report file still matches the journal's content
// hash (and whose spec hash still matches the manifest) and completes the
// remainder. When the grid is complete the orchestrator writes
// <results>/index.json — the deterministic grid summary (bench_diff-able
// against a checked-in baseline) — and <results>/sweep_stats.json — run
// mechanics (cache rates, journal hits, wall time) that legitimately vary
// between runs and are deliberately kept out of the index.
//
// Determinism contract: per-job reports contain no timestamps and every
// campaign is run with a serial inner engine, so the report bytes are a
// pure function of the job spec — re-running a manifest reproduces
// results/ byte-for-byte, and index.json is identical across interrupted+
// resumed and uninterrupted runs up to the per-job wall_ms field (compare
// with strip_timing()).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/cache.h"
#include "campaign/manifest.h"
#include "campaign/timeline.h"

namespace tsyn::campaign {

struct SweepOptions {
  std::string results_dir = "results";
  /// Max worker threads for the job queue (0 = the shared pool's width).
  /// Inner fault-sim/ATPG engines always run serial — parallelism comes
  /// from job-level fan-out, keeping every report thread-count-invariant.
  int threads = 0;
  /// Consult an existing journal: skip verified completed jobs, append the
  /// rest. Without this, a results dir that already has a journal is
  /// refused (overwriting finished work must be explicit).
  bool resume = false;
  /// Stop (cleanly, journal flushed) after this many completed jobs;
  /// 0 = run the whole grid. This is the kill-and-resume test hook: the
  /// index is only written when the grid actually completed.
  int max_jobs = 0;
  /// Non-empty: export a Chrome trace_event job timeline here (one track
  /// per pool worker slot, one span per executed job with stage
  /// sub-spans). Run-varying, like sweep_stats.json; written even for an
  /// incomplete (max_jobs-stopped) run so partial runs stay inspectable.
  std::string timeline_path;
  /// Non-empty: on grid completion, ingest this sweep's results into the
  /// persistent run-history store at this directory (observe/history.h)
  /// and surface the store's verdicts in sweep_stats.json's "history"
  /// block. Values are ingested at journal (%.17g) precision, so history
  /// queries reproduce sweep numbers exactly.
  std::string history_dir;
};

/// One grid point's outcome. `status` is "ok" or "failed"; failed jobs
/// carry `error` and zeros elsewhere.
struct JobResult {
  JobSpec spec;
  std::string status = "ok";
  std::string error;
  std::int64_t gates = 0;
  std::int64_t faults = 0;
  std::int64_t patterns = 0;
  std::int64_t cubes = 0;
  double coverage = 0.0;
  double efficiency = 0.0;
  double wall_ms = 0.0;
  std::string result_hash;       ///< FNV-1a hex of the report file bytes
  std::string result_spec_hash;  ///< job identity the journal matches on
  bool from_journal = false;     ///< skipped via journal lookup, not re-run
};

struct SweepSummary {
  std::vector<JobResult> jobs;  ///< sorted by job id, one per grid point
  std::string manifest_hash;
  CacheStats cache;
  std::int64_t journal_hits = 0;  ///< jobs satisfied from the journal
  std::int64_t ran = 0;           ///< jobs actually executed this run
  std::int64_t failed = 0;        ///< jobs with status "failed"
  double wall_ms = 0.0;
  /// False when max_jobs stopped the run early; the index is not written.
  bool complete = true;
  /// Filled when SweepOptions::history_dir was set and the grid completed:
  /// the ingested run's content id, whether it was new to the store, the
  /// store's run count, and the store's current outlier verdicts (compact
  /// JSON array) — all echoed into sweep_stats.json's "history" block.
  std::string history_run_id;
  bool history_added = false;
  std::int64_t history_runs_total = 0;
  std::string history_outliers_json;

  std::int64_t total() const {
    return static_cast<std::int64_t>(jobs.size());
  }
};

/// Thrown for orchestration-level failures: unwritable results dir,
/// journal/manifest mismatch, resume without a journal, refusing to
/// clobber. (Per-job failures are data, not exceptions.)
class SweepError : public std::runtime_error {
 public:
  explicit SweepError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Runs the sweep. Progress is published on the "sweep.jobs" counter and
/// heartbeat phase labels while jobs are in flight (PR-7 telemetry).
SweepSummary run_sweep(const Manifest& m, const SweepOptions& opts);

/// Live rollup of the sweep currently in flight in this process, as a
/// compact JSON object: manifest hash, grid size, journal hits, jobs to
/// run, and the stage cache's hit/miss/coalesced totals so far. Returns
/// "" when no sweep is running. This is what the observability
/// endpoint's /jobs embeds as its "sweep" block — the accessor lives
/// here (not in observe/) so the serve layer stays below campaign.
std::string sweep_live_json();

/// The deterministic grid index ("schema": 2, bench_diff-compatible; rows
/// keyed by "case" so fleet-wide diffs match jobs by id).
std::string index_to_json(const SweepSummary& s);

/// `index_to_json` output with every "wall_ms" value zeroed — the identity
/// key under which an interrupted+resumed run must equal an uninterrupted
/// one.
std::string strip_timing(const std::string& index_json);

/// Run mechanics (cache hit/miss, journal hits, threads, wall time) — the
/// legitimately run-dependent numbers, kept out of index.json.
std::string sweep_stats_to_json(const SweepSummary& s);

/// Runs one job against a caller-provided cache, no files involved.
/// Exposed for tests and the bench; run_sweep wraps this with the journal
/// and report plumbing. Returns the report JSON via `report_json`. When
/// `stages` is non-null, each pipeline stage appends a StageSpan timed
/// relative to the job start and annotated with its cache outcome
/// ("miss"/"hit"/"coalesced"; "none" for the uncached atpg stage).
JobResult run_one_job(const JobSpec& spec, const Manifest& m,
                      StageCache& cache, std::string* report_json,
                      std::vector<StageSpan>* stages = nullptr);

}  // namespace tsyn::campaign
