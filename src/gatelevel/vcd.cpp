#include "gatelevel/vcd.h"

#include <set>
#include <sstream>

namespace tsyn::gl {

namespace {

/// Compact VCD identifier for signal index i (printable ASCII 33..126).
std::string vcd_id(int i) {
  std::string id;
  do {
    id += static_cast<char>(33 + (i % 94));
    i /= 94;
  } while (i > 0);
  return id;
}

char bit_of(const Bits& b, int lane) {
  if ((b.x >> lane) & 1) return 'x';
  return ((b.v >> lane) & 1) ? '1' : '0';
}

}  // namespace

std::string trace_to_vcd(const Netlist& n,
                         const std::vector<std::vector<Bits>>& trace,
                         int lane, const std::string& module_name) {
  // Pick the signals: named nodes, PIs, POs.
  std::set<int> nodes;
  for (int id = 0; id < n.num_nodes(); ++id)
    if (!n.node(id).name.empty()) nodes.insert(id);
  for (int pi : n.primary_inputs()) nodes.insert(pi);
  for (int po : n.primary_outputs()) nodes.insert(po);

  std::ostringstream out;
  out << "$timescale 1ns $end\n$scope module " << module_name << " $end\n";
  int idx = 0;
  std::vector<std::pair<int, std::string>> signals;
  for (int id : nodes) {
    const std::string name = n.node(id).name.empty()
                                 ? "n" + std::to_string(id)
                                 : n.node(id).name;
    std::string sanitized;
    for (char c : name)
      sanitized += (c == ' ' || c == '[' || c == ']') ? '_' : c;
    const std::string sid = vcd_id(idx++);
    signals.emplace_back(id, sid);
    out << "$var wire 1 " << sid << " " << sanitized << " $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n";

  std::vector<char> last(signals.size(), '?');
  for (std::size_t frame = 0; frame < trace.size(); ++frame) {
    out << "#" << frame << "\n";
    for (std::size_t i = 0; i < signals.size(); ++i) {
      const char b = bit_of(trace[frame][signals[i].first], lane);
      if (b != last[i]) {
        out << b << signals[i].second << "\n";
        last[i] = b;
      }
    }
  }
  out << "#" << trace.size() << "\n";
  return out.str();
}

}  // namespace tsyn::gl
