#include "gatelevel/atpg_comb.h"

#include <algorithm>
#include <cassert>
#include <climits>
#include <deque>
#include <stdexcept>

#include "gatelevel/faultsim.h"
#include "gatelevel/scoap.h"
#include "observe/scoap_attr.h"
#include "util/metrics.h"
#include "util/telemetry.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace tsyn::gl {

namespace {

V and_v(V a, V b) {
  if (a == V::k0 || b == V::k0) return V::k0;
  if (a == V::k1 && b == V::k1) return V::k1;
  return V::kX;
}
V or_v(V a, V b) {
  if (a == V::k1 || b == V::k1) return V::k1;
  if (a == V::k0 && b == V::k0) return V::k0;
  return V::kX;
}
V xor_v(V a, V b) {
  if (a == V::kX || b == V::kX) return V::kX;
  return a == b ? V::k0 : V::k1;
}

V eval_plane(GateType type, const V* in, int num) {
  switch (type) {
    case GateType::kConst0: return V::k0;
    case GateType::kConst1: return V::k1;
    case GateType::kBuf: return in[0];
    case GateType::kNot: return !in[0];
    case GateType::kAnd:
    case GateType::kNand: {
      V r = in[0];
      for (int i = 1; i < num; ++i) r = and_v(r, in[i]);
      return type == GateType::kNand ? !r : r;
    }
    case GateType::kOr:
    case GateType::kNor: {
      V r = in[0];
      for (int i = 1; i < num; ++i) r = or_v(r, in[i]);
      return type == GateType::kNor ? !r : r;
    }
    case GateType::kXor: return xor_v(in[0], in[1]);
    case GateType::kXnor: return !xor_v(in[0], in[1]);
    case GateType::kMux: {
      const V sel = in[0];
      if (sel == V::k0) return in[1];
      if (sel == V::k1) return in[2];
      if (in[1] != V::kX && in[1] == in[2]) return in[1];
      return V::kX;
    }
    case GateType::kInput:
    case GateType::kDff:
      break;
  }
  assert(false);
  return V::kX;
}

/// Controlling value of a gate's inputs (X if none, e.g. XOR).
V controlling_value(GateType t) {
  switch (t) {
    case GateType::kAnd:
    case GateType::kNand:
      return V::k0;
    case GateType::kOr:
    case GateType::kNor:
      return V::k1;
    default:
      return V::kX;
  }
}

bool inverts(GateType t) {
  return t == GateType::kNot || t == GateType::kNand ||
         t == GateType::kNor || t == GateType::kXnor;
}

}  // namespace

Podem::Podem(const Netlist& n) : n_(n) {
  if (!n.flops().empty())
    throw std::runtime_error("PODEM is combinational; unroll first");
  vals_.resize(n.num_nodes());
  pi_assignment_.assign(n.num_nodes(), V::kX);
  frozen_.assign(n.num_nodes(), 0);
  pi_position_.assign(n.num_nodes(), -1);
  for (std::size_t i = 0; i < n.primary_inputs().size(); ++i)
    pi_position_[n.primary_inputs()[i]] = static_cast<int>(i);
  rebuild_assignable_cones();
}

void Podem::freeze_inputs(const std::vector<int>& pi_positions) {
  for (int pos : pi_positions) frozen_[n_.primary_inputs()[pos]] = 1;
  rebuild_assignable_cones();
}

void Podem::use_scoap_guidance(bool enable) {
  if (enable) {
    const Scoap s = compute_scoap(n_);
    cc0_ = s.cc0;
    cc1_ = s.cc1;
  } else {
    cc0_.clear();
    cc1_.clear();
  }
}

void Podem::rebuild_assignable_cones() {
  assignable_cone_.assign(n_.num_nodes(), 0);
  for (int id : n_.topo_order()) {
    const Node& node = n_.node(id);
    if (node.type == GateType::kInput) {
      assignable_cone_[id] = !frozen_[id];
      continue;
    }
    for (int f : node.fanins)
      if (f >= 0 && assignable_cone_[f]) {
        assignable_cone_[id] = 1;
        break;
      }
  }
}

void Podem::imply(const std::vector<Fault>& sites) {
  ++stats_.implications;
  V fanin_good[16];
  V fanin_faulty[16];
  for (int id : n_.topo_order()) {
    const Node& node = n_.node(id);
    if (node.type == GateType::kInput) {
      vals_[id].good = pi_assignment_[id];
      vals_[id].faulty = pi_assignment_[id];
    } else {
      for (std::size_t i = 0; i < node.fanins.size(); ++i) {
        fanin_good[i] = vals_[node.fanins[i]].good;
        fanin_faulty[i] = vals_[node.fanins[i]].faulty;
      }
      // Pin-fault overrides on the faulty plane.
      for (const Fault& f : sites)
        if (f.fanin_index >= 0 && f.node == id)
          fanin_faulty[f.fanin_index] = f.stuck_at_one ? V::k1 : V::k0;
      vals_[id].good = eval_plane(node.type, fanin_good,
                                  static_cast<int>(node.fanins.size()));
      vals_[id].faulty = eval_plane(node.type, fanin_faulty,
                                    static_cast<int>(node.fanins.size()));
    }
    // Output-fault overrides.
    for (const Fault& f : sites)
      if (f.fanin_index < 0 && f.node == id)
        vals_[id].faulty = f.stuck_at_one ? V::k1 : V::k0;
  }
}

bool Podem::detected_at_po() const {
  for (int po : n_.primary_outputs()) {
    const NodeVal& v = vals_[po];
    if (v.good != V::kX && v.faulty != V::kX && v.good != v.faulty)
      return true;
  }
  return false;
}

bool Podem::x_path_exists(const std::vector<Fault>& sites) const {
  // BFS from nodes carrying (or still capable of carrying) a fault effect
  // through X-valued nodes to a PO. A fault site whose composite value is
  // still X is a potential effect source — for a pin fault the divergence
  // lives inside the gate and only shows once the good value resolves.
  std::vector<char> po_mark(n_.num_nodes(), 0);
  for (int po : n_.primary_outputs()) po_mark[po] = 1;
  std::vector<char> visited(n_.num_nodes(), 0);
  std::deque<int> queue;
  for (int id = 0; id < n_.num_nodes(); ++id) {
    const NodeVal& v = vals_[id];
    const bool effect =
        v.good != V::kX && v.faulty != V::kX && v.good != v.faulty;
    if (effect) {
      if (po_mark[id]) return true;
      queue.push_back(id);
      visited[id] = 1;
    }
  }
  for (const Fault& f : sites) {
    const NodeVal& v = vals_[f.node];
    if (visited[f.node]) continue;
    if (v.good == V::kX || v.faulty == V::kX) {
      if (po_mark[f.node]) return true;
      queue.push_back(f.node);
      visited[f.node] = 1;
    }
  }
  const auto& fanouts = n_.fanouts();
  while (!queue.empty()) {
    const int id = queue.front();
    queue.pop_front();
    for (int s : fanouts[id]) {
      if (visited[s]) continue;
      const NodeVal& v = vals_[s];
      // Propagation possible only through nodes still X on some plane.
      if (v.good != V::kX && v.faulty != V::kX && v.good == v.faulty)
        continue;
      visited[s] = 1;
      if (po_mark[s]) return true;
      queue.push_back(s);
    }
  }
  return false;
}

bool Podem::next_assignment(const std::vector<Fault>& sites, int* pi_node,
                            V* pi_value) const {
  int node = -1;
  V value = V::kX;
  auto try_objective = [&](int obj_node, V obj_value) {
    return backtrace(obj_node, obj_value, pi_node, pi_value);
  };
  (void)node;
  (void)value;
  // Activation first: the line each fault sits on must carry the opposite
  // of the stuck value in the good machine.
  for (const Fault& f : sites) {
    const int line = f.fanin_index < 0
                         ? f.node
                         : n_.node(f.node).fanins[f.fanin_index];
    const V need = f.stuck_at_one ? V::k0 : V::k1;
    // A line without an assignable PI in its cone can never be justified
    // (e.g. the frame-0 replica over a pinned unknown state): try the
    // fault's other frames/sites instead.
    if (vals_[line].good == V::kX && assignable_cone_[line] &&
        try_objective(line, need))
      return true;
  }
  // Pin-fault sites whose good output is still undetermined: resolving the
  // remaining X inputs manifests the internal divergence at the gate
  // output (the D-frontier test below cannot see it because the fanin
  // NODES agree on both planes).
  for (const Fault& f : sites) {
    if (f.fanin_index < 0) continue;
    const NodeVal& out = vals_[f.node];
    if (out.good != V::kX && out.faulty != V::kX) continue;
    const Node& site = n_.node(f.node);
    for (std::size_t i = 0; i < site.fanins.size(); ++i) {
      if (static_cast<int>(i) == f.fanin_index) continue;
      if (vals_[site.fanins[i]].good != V::kX) continue;
      if (!assignable_cone_[site.fanins[i]]) continue;
      V target = controlling_value(site.type);
      target = target == V::kX ? V::k0 : !target;
      if (try_objective(site.fanins[i], target)) return true;
    }
  }
  // Propagation: pick a D-frontier gate, set one X input to the
  // non-controlling value.
  for (int id : n_.topo_order()) {
    const Node& g = n_.node(id);
    if (g.fanins.empty()) continue;
    const NodeVal& out = vals_[id];
    if (out.good != V::kX && out.faulty != V::kX) continue;  // already set
    bool has_effect_input = false;
    for (int f : g.fanins) {
      const NodeVal& v = vals_[f];
      if (v.good != V::kX && v.faulty != V::kX && v.good != v.faulty)
        has_effect_input = true;
    }
    if (!has_effect_input) continue;
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      const NodeVal& v = vals_[g.fanins[i]];
      if (v.good != V::kX) continue;
      if (!assignable_cone_[g.fanins[i]]) continue;
      V target = controlling_value(g.type);
      if (target == V::kX) {
        // XOR/MUX-like: any defined value unblocks; for a mux select,
        // steer toward the effect leg when recognizable, else pick 0.
        target = V::k0;
      } else {
        target = !target;  // non-controlling
      }
      if (try_objective(g.fanins[i], target)) return true;
    }
  }
  return false;
}

bool Podem::backtrace(int node, V value, int* pi_node, V* pi_value) const {
  int cur = node;
  V v = value;
  for (int guard = 0; guard < n_.num_nodes() + 1; ++guard) {
    const Node& g = n_.node(cur);
    if (g.type == GateType::kInput) {
      if (frozen_[cur] || pi_assignment_[cur] != V::kX) return false;
      *pi_node = cur;
      *pi_value = v;
      return true;
    }
    if (g.fanins.empty()) return false;  // constant: cannot justify
    if (inverts(g.type)) v = !v;
    // Choose an X-valued fanin whose cone contains an assignable PI —
    // under SCOAP guidance, the one cheapest to drive to the target value.
    auto eligible = [&](int f) {
      return vals_[f].good == V::kX && assignable_cone_[f];
    };
    int chosen = -1;
    if (cc0_.empty()) {
      for (int f : g.fanins)
        if (eligible(f)) {
          chosen = f;
          break;
        }
    } else {
      int best_cost = INT_MAX;
      for (int f : g.fanins) {
        if (!eligible(f)) continue;
        const int cost = v == V::k1 ? cc1_[f] : v == V::k0 ? cc0_[f]
                                              : std::min(cc0_[f], cc1_[f]);
        if (cost < best_cost) {
          best_cost = cost;
          chosen = f;
        }
      }
    }
    if (chosen < 0) return false;
    // For MUX pursue the select when it is X, else the selected leg.
    if (g.type == GateType::kMux) {
      if (eligible(g.fanins[0])) {
        chosen = g.fanins[0];
        v = V::k0;
      } else if (vals_[g.fanins[0]].good != V::kX) {
        chosen = vals_[g.fanins[0]].good == V::k0 ? g.fanins[1]
                                                  : g.fanins[2];
        if (!eligible(chosen)) return false;
      } else {
        return false;  // select is X but pinned: legs cannot be steered
      }
    }
    cur = chosen;
  }
  return false;
}

AtpgResult Podem::generate(const Fault& fault, long backtrack_limit) {
  return generate_multi({fault}, backtrack_limit);
}

AtpgResult Podem::generate_multi(const std::vector<Fault>& sites,
                                 long backtrack_limit) {
  return generate_multi_from_base(sites, {}, backtrack_limit);
}

AtpgResult Podem::generate_multi_from_base(const std::vector<Fault>& sites,
                                           const std::vector<V>& base,
                                           long backtrack_limit) {
  stats_ = {};
  std::fill(pi_assignment_.begin(), pi_assignment_.end(), V::kX);
  if (!base.empty()) {
    if (base.size() != n_.primary_inputs().size())
      throw std::runtime_error("base cube size != primary input count");
    // Base bits become pre-assigned givens. They are never pushed on the
    // decision stack, so backtracking can neither flip nor unassign them;
    // backtrace() already refuses assigned PIs, so the search only spends
    // decisions on the cube's X bits.
    for (std::size_t i = 0; i < base.size(); ++i)
      pi_assignment_[n_.primary_inputs()[i]] = base[i];
  }

  struct Decision {
    int pi_node;
    bool tried_both;
  };
  std::vector<Decision> stack;
  imply(sites);

  AtpgResult result;
  for (;;) {
    if (detected_at_po()) {
      result.status = AtpgStatus::kDetected;
      break;
    }
    bool need_backtrack = false;
    // Check whether the fault can still be activated and propagated.
    bool activated = false;
    bool activation_possible = false;
    for (const Fault& f : sites) {
      const int line = f.fanin_index < 0
                           ? f.node
                           : n_.node(f.node).fanins[f.fanin_index];
      const V need = f.stuck_at_one ? V::k0 : V::k1;
      if (vals_[line].good == need) activated = true;
      if (vals_[line].good != !need) activation_possible = true;
    }
    if (!activated && !activation_possible) {
      need_backtrack = true;
    } else if (activated && !x_path_exists(sites)) {
      need_backtrack = true;
    }

    int pi = -1;
    V pi_val = V::kX;
    if (!need_backtrack) {
      if (!next_assignment(sites, &pi, &pi_val)) need_backtrack = true;
    }

    if (!need_backtrack) {
      ++stats_.decisions;
      pi_assignment_[pi] = pi_val;
      stack.push_back({pi, false});
      imply(sites);
      continue;
    }

    // Backtrack.
    for (;;) {
      if (stack.empty()) {
        result.status = AtpgStatus::kUntestable;
        goto done;
      }
      Decision& d = stack.back();
      if (!d.tried_both) {
        ++stats_.backtracks;
        if (stats_.backtracks > backtrack_limit) {
          result.status = AtpgStatus::kAborted;
          goto done;
        }
        d.tried_both = true;
        pi_assignment_[d.pi_node] = !pi_assignment_[d.pi_node];
        imply(sites);
        break;
      }
      pi_assignment_[d.pi_node] = V::kX;
      stack.pop_back();
    }
  }
done:
  result.stats = stats_;
  if (observe::ledger_enabled() && !sites.empty()) {
    // One targeted event per PODEM attempt, attributed to the primary
    // site (secondary multi-fault sites ride along unrecorded). Safe from
    // wave workers: each engine is slot-private, recording is
    // thread-striped.
    const observe::TargetOutcome outcome =
        result.status == AtpgStatus::kDetected
            ? observe::TargetOutcome::kDetected
            : result.status == AtpgStatus::kUntestable
                  ? observe::TargetOutcome::kUntestable
                  : observe::TargetOutcome::kAborted;
    observe::record_targeted(observe::make_fault_key(sites[0]), outcome,
                             stats_.decisions, stats_.backtracks);
  }
  result.pi_values.assign(n_.primary_inputs().size(), V::kX);
  if (result.status == AtpgStatus::kDetected)
    for (std::size_t i = 0; i < n_.primary_inputs().size(); ++i)
      result.pi_values[i] = pi_assignment_[n_.primary_inputs()[i]];
  return result;
}

namespace {

/// Publishes a campaign's effort into the metrics registry, keeping the
/// public AtpgStats struct as the caller-facing view of the same numbers.
void publish_comb_campaign(const AtpgCampaign& campaign) {
  static util::Counter& decisions =
      util::metrics().counter("atpg.comb.decisions");
  static util::Counter& backtracks =
      util::metrics().counter("atpg.comb.backtracks");
  static util::Counter& implications =
      util::metrics().counter("atpg.comb.implications");
  static util::Counter& detected =
      util::metrics().counter("atpg.comb.detected");
  static util::Counter& untestable =
      util::metrics().counter("atpg.comb.untestable");
  static util::Counter& aborted =
      util::metrics().counter("atpg.comb.aborted");
  static util::Counter& limit_hits =
      util::metrics().counter("atpg.comb.backtrack_limit_hits");
  decisions.add(campaign.total.decisions);
  backtracks.add(campaign.total.backtracks);
  implications.add(campaign.total.implications);
  long n_det = 0, n_unt = 0, n_abt = 0;
  for (AtpgStatus s : campaign.status) {
    if (s == AtpgStatus::kDetected) ++n_det;
    else if (s == AtpgStatus::kUntestable) ++n_unt;
    else ++n_abt;
  }
  detected.add(n_det);
  untestable.add(n_unt);
  aborted.add(n_abt);
  // PODEM aborts exactly when the backtrack limit trips, so the abort
  // count IS the limit-hit count for the combinational engine.
  limit_hits.add(n_abt);
}

}  // namespace

AtpgCampaign run_combinational_atpg(const Netlist& n,
                                    const std::vector<Fault>& faults,
                                    long backtrack_limit,
                                    const FaultSimOptions& sim_options) {
  TSYN_SPAN("gl.atpg.comb");
  if (observe::ledger_enabled())
    observe::record_universe(static_cast<long>(faults.size()));
  static util::Progress& p_targets = util::progress("atpg.targets");
  p_targets.add_total(static_cast<std::int64_t>(faults.size()));
  AtpgCampaign campaign;
  campaign.status.assign(faults.size(), AtpgStatus::kAborted);
  std::vector<bool> handled(faults.size(), false);

  FaultSimulator sim(n, sim_options);
  util::Rng rng(kAtpgGradeFillSeed);
  static util::Histogram& bt_hist =
      util::metrics().histogram("atpg.comb.backtracks_per_fault");

  // Grades one generated test against all still-unhandled faults, dropping
  // the ones it detects. The cube's X inputs are filled with random words
  // (64 independent completions per cube, one rng stream in test order);
  // the exact block is recorded in graded_fill so the campaign's detection
  // decisions are reproducible downstream — see kAtpgGradeFillSeed.
  auto grade_test = [&](const std::vector<V>& pi_values) {
    campaign.tests.push_back(pi_values);
    std::vector<Bits> block(n.primary_inputs().size());
    for (std::size_t i = 0; i < block.size(); ++i) {
      switch (pi_values[i]) {
        case V::k0: block[i] = Bits::all0(); break;
        case V::k1: block[i] = Bits::all1(); break;
        case V::kX: block[i] = Bits::known(rng.next_u64()); break;
      }
    }
    campaign.graded_fill.push_back(block);
    std::vector<bool> drop(faults.size(), false);
    for (std::size_t j = 0; j < faults.size(); ++j) drop[j] = handled[j];
    sim.run_block(block, faults, drop);
    std::int64_t closed = 0;
    for (std::size_t j = 0; j < faults.size(); ++j) {
      if (!handled[j] && drop[j]) {
        handled[j] = true;
        campaign.status[j] = AtpgStatus::kDetected;
        ++closed;
      }
    }
    if (closed) p_targets.add(closed);
  };

  auto add_stats = [&](const AtpgStats& s) {
    campaign.total.decisions += s.decisions;
    campaign.total.backtracks += s.backtracks;
    campaign.total.implications += s.implications;
    bt_hist.observe(s.backtracks);
  };

  const int wave = sim_options.resolved_atpg_wave();
  if (wave <= 1) {
    // Serial generation: fault by fault, grading after each detection —
    // bit-identical to the original single-threaded engine.
    Podem podem(n);
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (handled[fi]) continue;
      const AtpgResult r = podem.generate(faults[fi], backtrack_limit);
      add_stats(r.stats);
      campaign.status[fi] = r.status;
      handled[fi] = true;
      p_targets.add(1);
      if (r.status == AtpgStatus::kDetected) grade_test(r.pi_values);
    }
  } else {
    // Wave-parallel generation: take up to `wave` unhandled faults, PODEM
    // them concurrently (one engine per worker slot, each result carrying
    // its own AtpgStats so the campaign totals are the SUM over workers),
    // then grade the wave's tests serially in wave order. Deterministic
    // for a fixed wave width regardless of worker count; differs from the
    // serial path only in that a wave member may be generated although an
    // earlier wave-mate's test would have dropped it (that extra effort is
    // counted — it was spent).
    const int workers =
        std::max(1, std::min(sim_options.resolved_threads(), wave));
    std::vector<Podem> podems;
    podems.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) podems.emplace_back(n);

    std::size_t cursor = 0;
    std::vector<std::size_t> wave_idx;
    std::vector<AtpgResult> results;
    for (;;) {
      wave_idx.clear();
      while (cursor < faults.size() &&
             wave_idx.size() < static_cast<std::size_t>(wave)) {
        if (!handled[cursor]) wave_idx.push_back(cursor);
        ++cursor;
      }
      if (wave_idx.empty()) break;
      results.assign(wave_idx.size(), AtpgResult{});
      auto job = [&](int i, int slot) {
        results[i] =
            podems[slot].generate(faults[wave_idx[i]], backtrack_limit);
      };
      const int count = static_cast<int>(wave_idx.size());
      if (workers <= 1 || count <= 1) {
        for (int i = 0; i < count; ++i) job(i, 0);
      } else {
        util::ThreadPool::shared().run(count, workers, job);
      }
      for (std::size_t i = 0; i < wave_idx.size(); ++i) {
        const std::size_t fi = wave_idx[i];
        const AtpgResult& r = results[i];
        add_stats(r.stats);
        if (handled[fi]) continue;  // dropped by an earlier wave-mate
        campaign.status[fi] = r.status;
        handled[fi] = true;
        p_targets.add(1);
        if (r.status == AtpgStatus::kDetected) grade_test(r.pi_values);
      }
    }
  }

  long detected = 0;
  long untestable = 0;
  for (AtpgStatus s : campaign.status) {
    if (s == AtpgStatus::kDetected) ++detected;
    else if (s == AtpgStatus::kUntestable) ++untestable;
  }
  const double total = static_cast<double>(faults.size());
  campaign.fault_coverage = total == 0 ? 1.0 : detected / total;
  campaign.fault_efficiency =
      total == 0 ? 1.0 : (detected + untestable) / total;
  publish_comb_campaign(campaign);
  return campaign;
}

}  // namespace tsyn::gl
