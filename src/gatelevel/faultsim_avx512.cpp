// AVX-512F instantiation of the wide PPSFP engine (512-lane rows only;
// a 256-lane row is a single AVX2 vector already). Compiled with
// -mavx512f when the compiler accepts it; called only after runtime CPU
// detection. Same comdat caveat as faultsim_avx2.cpp: nothing but the
// instantiation lives here.
#include "gatelevel/faultsim_wide.h"

namespace tsyn::gl::wide_detail {

void wide_campaign_avx512_w8(const Netlist& n,
                             const std::vector<std::vector<Bits>>& blocks,
                             const std::vector<Fault>& faults,
                             const FaultSimOptions& options,
                             std::vector<bool>* detected,
                             std::vector<std::uint64_t>* matrix) {
  wide_campaign<8, Avx512Words>(n, blocks, faults, options, detected, matrix);
}

}  // namespace tsyn::gl::wide_detail
