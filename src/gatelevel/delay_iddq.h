// Delay-fault (transition) and IDDQ test grading — the two methodologies
// §7(b) of the survey names as unaddressed by the high-level techniques.
//
// * Transition faults: a slow-to-rise/slow-to-fall defect at a node needs a
//   TWO-pattern test — the first pattern establishes the initial value, the
//   second launches the transition and propagates the (late) final value,
//   i.e. detects the corresponding stuck-at fault. Pattern pairs are
//   consecutive lanes of the applied sequence (launch-on-capture style on a
//   full-scan circuit).
// * IDDQ (pseudo-stuck-at): a defective node draws quiescent current the
//   moment the fault is ACTIVATED; no propagation to an output is needed.
#pragma once

#include <vector>

#include "gatelevel/faults.h"
#include "gatelevel/faultsim.h"
#include "gatelevel/netlist.h"

namespace tsyn::gl {

/// A transition fault at a node's output.
struct TransitionFault {
  int node = -1;
  bool slow_to_rise = false;
};

/// All transition faults (two per non-constant node).
std::vector<TransitionFault> enumerate_transition_faults(const Netlist& n);

/// Two-pattern transition coverage under an applied pattern sequence
/// (consecutive lanes form launch/capture pairs; pairs chain across
/// blocks). Combinational netlists only.
double transition_fault_coverage(
    const Netlist& n, const std::vector<std::vector<Bits>>& blocks,
    const std::vector<TransitionFault>& faults,
    const FaultSimOptions& options = {});

/// IDDQ (pseudo-stuck-at) coverage: fraction of stuck-at faults whose site
/// is driven to the opposite value by at least one pattern.
double iddq_fault_coverage(const Netlist& n,
                           const std::vector<std::vector<Bits>>& blocks,
                           const std::vector<Fault>& faults,
                           const FaultSimOptions& options = {});

}  // namespace tsyn::gl
