// Sequential ATPG via time-frame expansion (§3.1, §3.3).
//
// Unrolls the sequential circuit over k frames (frame-0 state unknown),
// replicates the target fault in every frame, and runs PODEM on the unrolled
// combinational circuit, growing k until the fault is detected or limits are
// hit. Decision/backtrack counters aggregate across frame counts — the
// quantity that grows exponentially with S-graph cycle length and linearly
// with sequential depth in the empirical observation the survey builds on
// ([10],[22]).
#pragma once

#include <vector>

#include "gatelevel/atpg_comb.h"
#include "gatelevel/faultsim.h"
#include "gatelevel/netlist.h"

namespace tsyn::gl {

/// Time-frame expansion of a sequential netlist.
struct Unrolled {
  Netlist net;
  int frames = 0;
  /// node id in `net` of (frame, original node).
  std::vector<std::vector<int>> node_map;
  /// PI positions in `net` of frame-0 pseudo inputs (must stay X).
  std::vector<int> frozen_pi_positions;
  /// PI position in `net` of (frame, original PI position).
  std::vector<std::vector<int>> pi_map;

  /// The fault's per-frame replicas.
  std::vector<Fault> map_fault(const Fault& f) const;
};

/// `initial_state` (optional, by flop position, kX = unknown) pins frame-0
/// flop values to constants — the "test begins after a fault-free warm-up
/// sequence" convention practical sequential ATPG uses. Unknown entries
/// stay frozen pseudo inputs.
Unrolled unroll(const Netlist& n, int frames,
                const std::vector<V>* initial_state = nullptr);

struct SeqAtpgResult {
  AtpgStatus status = AtpgStatus::kAborted;
  int frames_used = 0;
  AtpgStats stats;  ///< aggregated over all frame counts tried
  /// Per-frame PI assignment (frame-major, by PI position), when detected.
  std::vector<std::vector<V>> frame_inputs;
};

/// Generates a sequential test for `fault`, trying 1..max_frames frames.
SeqAtpgResult sequential_atpg(const Netlist& n, const Fault& fault,
                              int max_frames = 12,
                              long backtrack_limit = 20000,
                              const std::vector<V>* initial_state = nullptr,
                              int min_frames = 1);

/// Campaign over a fault list; reports coverage, efficiency and total
/// effort. Detected tests are fault-simulated sequentially to drop other
/// faults.
struct SeqAtpgCampaign {
  long detected = 0;
  long untestable = 0;
  long aborted = 0;
  AtpgStats total;
  double fault_coverage = 0;
  double fault_efficiency = 0;
};

/// `sim_options` controls the reverse-order grading simulator that drops
/// other faults caught by each generated sequence.
SeqAtpgCampaign run_sequential_atpg(const Netlist& n,
                                    const std::vector<Fault>& faults,
                                    int max_frames = 12,
                                    long backtrack_limit = 20000,
                                    const FaultSimOptions& sim_options = {});

}  // namespace tsyn::gl
