// Fault simulation.
//
// Parallel-pattern single-fault propagation with fault dropping for
// combinational circuits — the workhorse behind every fault-coverage
// number in the benches (full-scan coverage, BIST coverage, test-point
// evaluation). The engines run on the compiled SoA form (simgraph.h):
// levelized order, flat fanin/fanout arenas, per-level event buckets.
// Grading is 64 lanes per pass by default and can widen to 256/512 lanes
// (FaultSimOptions::lanes) with SIMD-dispatched kernels (widebits.h), so
// one good-machine pass and one propagation per fault cover a whole
// super-block of patterns. The fault list is spread over a worker pool
// with chunked work-stealing: each worker drains its own contiguous range
// chunk by chunk, then steals chunks from the others, so cone-size
// imbalance stops costing wall-clock. Sequential circuits get an
// event-driven faulty-machine simulator that carries only the divergent
// flip-flop state between frames and drops detected faults mid-sequence.
#pragma once

#include <cstdint>
#include <vector>

#include "gatelevel/faults.h"
#include "gatelevel/netlist.h"
#include "gatelevel/simgraph.h"

namespace tsyn::gl {

/// Knobs shared by every fault-simulation entry point.
struct FaultSimOptions {
  /// Worker threads the fault list is spread over. 0 = one per hardware
  /// thread; 1 = serial, bit-identical to the single-threaded engine (the
  /// parallel path is deterministic too — faults are independent — but 1
  /// also avoids touching the pool entirely).
  int num_threads = 0;

  /// PODEM wave width for ATPG campaigns: the campaign takes this many
  /// still-undetected faults at a time, generates their tests concurrently
  /// over `num_threads` workers (each worker's AtpgStats are summed into
  /// the campaign totals — never last-writer-wins), then grades the wave's
  /// tests serially so fault dropping stays deterministic for a fixed wave
  /// width. 1 = fault-by-fault serial generation, bit-identical to the
  /// pre-parallel engine (the default, so results never silently vary with
  /// the host's core count); 0 = one wave per resolved_threads().
  int atpg_wave = 1;

  /// Pattern lanes graded per good-machine pass: 64 (one machine word,
  /// the default — byte-identical to the historical engine, including
  /// ledger JSON), 256, or 512. Wider widths produce the exact same
  /// detected-fault set and per-fault first-detecting pattern as the
  /// corresponding sequence of 64-lane blocks (asserted in
  /// tests/test_simgraph.cpp); only per-fault simulation-effort event
  /// counts in the ledger differ (fewer, wider propagations). Widening
  /// pays off when most faults stay live across many blocks — no-drop
  /// detection matrices (N-detect, compaction pruning), BIST signature
  /// grading — and on the good-machine side; with aggressive fault
  /// dropping the first 64 lanes already retire most faults and 64 stays
  /// the right default. See docs/faultsim.md.
  int lanes = 64;

  /// num_threads with 0 resolved to the hardware parallelism (>= 1).
  int resolved_threads() const;

  /// atpg_wave with 0 resolved to the worker count.
  int resolved_atpg_wave() const {
    return atpg_wave > 0 ? atpg_wave : resolved_threads();
  }

  /// lanes snapped to a supported width (64, 256, or 512).
  int resolved_lanes() const {
    return lanes == 256 || lanes == 512 ? lanes : 64;
  }
};

/// Per-thread fault-propagation scratch plus the one propagation routine
/// both the serial and the sharded PPSFP paths (and the sequential engine)
/// share. Values are copy-on-write against a caller-owned good-value
/// vector: a node reads as good until touched in the current epoch.
/// Internally runs on the netlist's cached SimGraph: flat CSR fanouts,
/// levelized sweep with per-level event buckets (untouched levels are
/// skipped wholesale — on shallow scan netlists most of them are).
class FaultPropagator {
 public:
  explicit FaultPropagator(const Netlist& n);

  /// Starts a new epoch against `good` (node-indexed). The reference must
  /// stay valid until the epoch's last call.
  void begin(const std::vector<Bits>& good);

  /// Sets node `id` to `v`; schedules its fanouts if the value diverges
  /// from the current (faulty-machine) value. Used to seed divergent
  /// flip-flop state in the sequential engine.
  void force(int id, Bits v);

  /// Injects fault `f`: output faults force the node, input-pin faults
  /// re-evaluate the gate with the pin forced. Pin faults on DFFs are
  /// ignored (matching the reference simulator: the D pin is sampled by
  /// the state capture, which the caller owns).
  void inject(const Fault& f);

  /// Drains the event buckets level by level, re-evaluating `f`'s gate
  /// with the faulted pin forced whenever it is reached.
  void drain(const Fault& f);

  /// 64-bit lane mask of primary outputs where the faulty machine provably
  /// differs from the good machine (both known, values differ). Valid
  /// after drain().
  std::uint64_t po_diff_mask() const;

  /// Faulty-machine value of `id` in the current epoch.
  Bits value(int id) const {
    return stamp_[id] == current_stamp_ ? faulty_[id] : (*good_)[id];
  }

  /// Marks nodes to watch (negative ids ignored). force() records which
  /// watched nodes get touched each epoch; the sequential engine watches
  /// the DFF D-pins so state capture is O(touched), not O(flops).
  void set_watches(const std::vector<int>& nodes);

  /// Watched node ids touched in the current epoch (deduplicated).
  const std::vector<int>& touched_watches() const { return touched_watches_; }

  /// begin() + inject() + drain() + po_diff_mask(): one combinational
  /// fault, start to finish.
  std::uint64_t propagate(const Fault& f, const std::vector<Bits>& good);

  /// Work counters for the metrics registry: gate evaluations drain() has
  /// performed and faults propagate() has run since construction or the
  /// last reset_work_counters(). Owned by the propagator's worker — read
  /// them only between parallel sections (after ThreadPool::run returns).
  long events_processed() const { return events_; }
  long faults_propagated() const { return faults_; }
  /// Gate evaluations the most recent propagate() cost (for per-fault
  /// ledger attribution; worker-private like the totals above).
  long last_propagate_events() const { return last_propagate_events_; }
  void reset_work_counters() {
    events_ = 0;
    faults_ = 0;
    last_propagate_events_ = 0;
  }

 private:
  void schedule_fanouts(int id);

  const Netlist& n_;
  const SimGraph* g_ = nullptr;  ///< cached lowered form (owned by n_)
  const std::vector<Bits>* good_ = nullptr;
  // Timestamped copy-on-write faulty values: faulty_[id] is valid only
  // when stamp_[id] == current_stamp_.
  std::vector<Bits> faulty_;
  std::vector<int> stamp_;
  std::vector<int> sched_stamp_;  ///< node already scheduled this epoch
  int current_stamp_ = 0;
  /// Per-node flags: bit0 = primary output, bit1 = watched (SimGraph
  /// flags plus the propagator-local watch bit). One load on the force()
  /// fast path instead of parallel arrays.
  std::vector<char> flags_;
  /// Per-level event buckets replacing the single global sweep range:
  /// scheduling stamps the node's level and widens that level's
  /// [lvl_lo_, lvl_hi_] position span; drain() walks levels
  /// [min_lvl_, max_lvl_] skipping unstamped ones. Fanouts sit at
  /// strictly deeper levels, so one ascending pass suffices and a level's
  /// span is frozen by the time the sweep reaches it.
  std::vector<int> lvl_stamp_, lvl_lo_, lvl_hi_;
  int min_lvl_ = 0, max_lvl_ = -1;
  /// Primary outputs touched this epoch (deduplicated via sched stamps on
  /// a parallel array), so po_diff_mask() is O(touched POs).
  std::vector<int> touched_pos_;
  std::vector<int> po_stamp_;
  /// Watched nodes (see set_watches) touched this epoch.
  std::vector<int> watch_stamp_;
  std::vector<int> touched_watches_;
  /// Work counters (see events_processed); plain longs, worker-private.
  long events_ = 0;
  long faults_ = 0;
  long last_propagate_events_ = 0;
};

/// Parallel-pattern combinational fault simulator. The netlist must be
/// combinational (no DFFs) — expand scan/BIST registers as PI/PO first.
class FaultSimulator {
 public:
  explicit FaultSimulator(const Netlist& n,
                          const FaultSimOptions& options = {});

  /// Simulates one 64-lane block. `pi_values[i]` is the Bits value of
  /// primary input i (by position in primary_inputs()). Marks faults
  /// detected in `detected`; already-detected faults are skipped (fault
  /// dropping). Returns how many new faults the block detected.
  int run_block(const std::vector<Bits>& pi_values,
                const std::vector<Fault>& faults,
                std::vector<bool>& detected);

  /// Good-machine PO values of the last block (by output position).
  const std::vector<Bits>& good_outputs() const { return good_po_; }

  /// Like run_block but without fault dropping: fills `lane_masks[i]` with
  /// the 64-bit mask of lanes detecting fault i, and leaves the good
  /// values queryable via good_value(). Needed by two-pattern (transition
  /// fault) grading, which must know *which* pattern detects.
  void run_block_detail(const std::vector<Bits>& pi_values,
                        const std::vector<Fault>& faults,
                        std::vector<std::uint64_t>& lane_masks);

  /// Good-machine value of any node after the last block.
  const Bits& good_value(int node) const { return good_[node]; }

 private:
  void simulate_good(const std::vector<Bits>& pi_values);
  /// Spreads `faults` over the worker pool (chunked work-stealing);
  /// masks[i] receives the detecting lane mask (0 for faults where
  /// skip[i] is true).
  void propagate_shard(const std::vector<Fault>& faults,
                       const std::vector<bool>* skip,
                       std::vector<std::uint64_t>& masks);

  const Netlist& n_;
  FaultSimOptions options_;
  std::vector<Bits> good_;
  std::vector<Bits> good_po_;
  std::vector<FaultPropagator> propagators_;  ///< one per worker slot
  std::vector<std::uint64_t> masks_;          ///< run_block scratch
  /// Blocks run_block has graded, so ledger detect events carry global
  /// pattern indices (64 * block + lane) across a whole campaign.
  long blocks_run_ = 0;
};

/// Convenience: coverage of `faults` under `blocks` of PI patterns.
/// Returns the fraction detected; `detected` (optional) receives the mask.
/// options.lanes = 256/512 grades 4/8 blocks per pass with the wide-lane
/// engine — same detected set and first-detecting patterns, fewer passes.
double fault_coverage(const Netlist& n,
                      const std::vector<std::vector<Bits>>& blocks,
                      const std::vector<Fault>& faults,
                      std::vector<bool>* detected = nullptr,
                      const FaultSimOptions& options = {});

/// Full detection matrix, no fault dropping: grades every fault against
/// every block and fills `masks[f * blocks.size() + b]` with the 64-bit
/// lane mask of block b detecting fault f. This is the workload shape of
/// N-detect grading and compaction's reverse-order pruning, and the one
/// where wide lanes pay off most — options.lanes picks the engine width,
/// the result is bit-identical across widths.
void detection_masks(const Netlist& n,
                     const std::vector<std::vector<Bits>>& blocks,
                     const std::vector<Fault>& faults,
                     std::vector<std::uint64_t>& masks,
                     const FaultSimOptions& options = {});

/// Per-fault sequential simulation over a vector sequence (64 lanes of
/// sequences in parallel; lane l of frame f is vector f of sequence l).
/// FFs start unknown. Event-driven: the good trace is simulated once, each
/// fault then propagates only its divergence per frame, carrying only the
/// flip-flops that differ from the good machine across frame boundaries,
/// and stops at its first detecting frame. The fault list is spread over
/// the worker pool with chunked work-stealing. Returns the detected mask.
std::vector<bool> sequential_fault_sim(
    const Netlist& n, const std::vector<std::vector<Bits>>& input_frames,
    const std::vector<Fault>& faults, const FaultSimOptions& options = {});

/// Reference implementation of sequential_fault_sim: full-circuit
/// re-simulation of every frame for every fault, single-threaded. Kept as
/// the equivalence oracle for tests and the baseline for the perf bench.
std::vector<bool> sequential_fault_sim_full_resim(
    const Netlist& n, const std::vector<std::vector<Bits>>& input_frames,
    const std::vector<Fault>& faults);

}  // namespace tsyn::gl
