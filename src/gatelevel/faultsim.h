// Fault simulation.
//
// Parallel-pattern (64 lanes) single-fault propagation with fault dropping
// for combinational circuits — the workhorse behind every fault-coverage
// number in the benches (full-scan coverage, BIST coverage, test-point
// evaluation). A straightforward per-fault sequential simulator covers the
// small circuits used by the sequential-ATPG experiments.
#pragma once

#include <vector>

#include "gatelevel/faults.h"
#include "gatelevel/netlist.h"

namespace tsyn::gl {

/// Parallel-pattern combinational fault simulator. The netlist must be
/// combinational (no DFFs) — expand scan/BIST registers as PI/PO first.
class FaultSimulator {
 public:
  explicit FaultSimulator(const Netlist& n);

  /// Simulates one 64-lane block. `pi_values[i]` is the Bits value of
  /// primary input i (by position in primary_inputs()). Marks faults
  /// detected in `detected`; already-detected faults are skipped (fault
  /// dropping). Returns how many new faults the block detected.
  int run_block(const std::vector<Bits>& pi_values,
                const std::vector<Fault>& faults,
                std::vector<bool>& detected);

  /// Good-machine PO values of the last block (by output position).
  const std::vector<Bits>& good_outputs() const { return good_po_; }

  /// Like run_block but without fault dropping: fills `lane_masks[i]` with
  /// the 64-bit mask of lanes detecting fault i, and leaves the good
  /// values queryable via good_value(). Needed by two-pattern (transition
  /// fault) grading, which must know *which* pattern detects.
  void run_block_detail(const std::vector<Bits>& pi_values,
                        const std::vector<Fault>& faults,
                        std::vector<std::uint64_t>& lane_masks);

  /// Good-machine value of any node after the last block.
  const Bits& good_value(int node) const { return good_[node]; }

 private:
  Bits eval_node_faulty(int id, const Fault& f, std::uint64_t forced_v,
                        std::uint64_t forced_known);

  const Netlist& n_;
  std::vector<Bits> good_;
  std::vector<Bits> good_po_;
  // Timestamped copy-on-write of faulty values: faulty_[id] is valid only
  // when stamp_[id] == current_stamp_.
  std::vector<Bits> faulty_;
  std::vector<int> stamp_;
  int current_stamp_ = 0;
  std::vector<int> topo_pos_;
  std::vector<char> is_po_;
};

/// Convenience: coverage of `faults` under `blocks` of PI patterns.
/// Returns the fraction detected; `detected` (optional) receives the mask.
double fault_coverage(const Netlist& n,
                      const std::vector<std::vector<Bits>>& blocks,
                      const std::vector<Fault>& faults,
                      std::vector<bool>* detected = nullptr);

/// Per-fault sequential simulation over a vector sequence (64 lanes of
/// sequences in parallel; lane l of frame f is vector f of sequence l).
/// FFs start unknown. Suitable for small circuits only (full resim per
/// fault). Returns the detected mask.
std::vector<bool> sequential_fault_sim(
    const Netlist& n, const std::vector<std::vector<Bits>>& input_frames,
    const std::vector<Fault>& faults);

}  // namespace tsyn::gl
