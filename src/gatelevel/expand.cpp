#include "gatelevel/expand.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/metrics.h"
#include "util/trace.h"

namespace tsyn::gl {

Word make_input_word(Netlist& n, const std::string& name, int width) {
  Word w(width);
  for (int i = 0; i < width; ++i)
    w[i] = n.add_input(name + "[" + std::to_string(i) + "]");
  return w;
}

Word make_const_word(Netlist& n, long value, int width) {
  Word w(width);
  for (int i = 0; i < width; ++i) w[i] = n.add_const((value >> i) & 1);
  return w;
}

Word bitwise(Netlist& n, GateType type, const Word& a, const Word& b) {
  assert(a.size() == b.size());
  Word w(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    w[i] = n.add_gate(type, {a[i], b[i]});
  return w;
}

Word invert(Netlist& n, const Word& a) {
  Word w(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    w[i] = n.add_gate(GateType::kNot, {a[i]});
  return w;
}

Word ripple_add(Netlist& n, const Word& a, const Word& b, int cin_node,
                int* cout) {
  assert(a.size() == b.size());
  Word sum(a.size());
  int carry = cin_node;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const int axb = n.add_gate(GateType::kXor, {a[i], b[i]});
    sum[i] = n.add_gate(GateType::kXor, {axb, carry});
    // The last bit's carry is dead logic unless the caller wants cout;
    // building it would create structurally undetectable faults.
    if (i + 1 == a.size() && !cout) break;
    const int t1 = n.add_gate(GateType::kAnd, {a[i], b[i]});
    const int t2 = n.add_gate(GateType::kAnd, {axb, carry});
    carry = n.add_gate(GateType::kOr, {t1, t2});
  }
  if (cout) *cout = carry;
  return sum;
}

Word ripple_sub(Netlist& n, const Word& a, const Word& b, int* borrow_out) {
  const Word nb = invert(n, b);
  int cout = -1;
  const Word diff = ripple_add(n, a, nb, n.add_const(true),
                               borrow_out ? &cout : nullptr);
  if (borrow_out) *borrow_out = n.add_gate(GateType::kNot, {cout});
  return diff;
}

int less_than(Netlist& n, const Word& a, const Word& b) {
  // Borrow chain of a - b only (no dead difference bits): unsigned a < b.
  const Word nb = invert(n, b);
  int carry = n.add_const(true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const int axb = n.add_gate(GateType::kXor, {a[i], nb[i]});
    const int t1 = n.add_gate(GateType::kAnd, {a[i], nb[i]});
    const int t2 = n.add_gate(GateType::kAnd, {axb, carry});
    carry = n.add_gate(GateType::kOr, {t1, t2});
  }
  return n.add_gate(GateType::kNot, {carry});
}

int equal(Netlist& n, const Word& a, const Word& b) {
  assert(a.size() == b.size());
  std::vector<int> eq_bits;
  for (std::size_t i = 0; i < a.size(); ++i)
    eq_bits.push_back(n.add_gate(GateType::kXnor, {a[i], b[i]}));
  if (eq_bits.size() == 1) return eq_bits[0];
  return n.add_gate(GateType::kAnd, eq_bits);
}

Word array_multiply(Netlist& n, const Word& a, const Word& b) {
  const int width = static_cast<int>(a.size());
  // Accumulate shifted partial products; truncate to `width` bits.
  Word acc = make_const_word(n, 0, width);
  for (int i = 0; i < width; ++i) {
    Word pp(width);
    for (int j = 0; j < width; ++j) {
      if (j < i)
        pp[j] = n.add_const(false);
      else
        pp[j] = n.add_gate(GateType::kAnd, {a[j - i], b[i]});
    }
    acc = ripple_add(n, acc, pp, n.add_const(false));
  }
  return acc;
}

Word mux_word(Netlist& n, int sel, const Word& a, const Word& b) {
  assert(a.size() == b.size());
  Word w(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    w[i] = n.add_gate(GateType::kMux, {sel, b[i], a[i]});  // sel ? a : b
  return w;
}

int select_width(int num_choices) {
  int bits = 0;
  while ((1 << bits) < num_choices) ++bits;
  return bits;
}

namespace {

Word mux_tree_rec(Netlist& n, const std::vector<Word>& sources, int lo,
                  int hi, const std::vector<int>& sel_bits, int level) {
  if (hi - lo == 1) return sources[lo];
  const int span = 1 << level;
  const int mid = std::min(lo + span, hi);
  const Word low = mux_tree_rec(n, sources, lo, mid, sel_bits, level - 1);
  if (mid >= hi) {
    // High half empty: still insert the mux so the select line is
    // structurally present (ATPG sees the same interconnect the controller
    // drives); both legs are the low result.
    return mux_word(n, sel_bits[level], low, low);
  }
  const Word high = mux_tree_rec(n, sources, mid, hi, sel_bits, level - 1);
  // sel bit set -> take the high half.
  return mux_word(n, sel_bits[level], high, low);
}

}  // namespace

Word mux_tree(Netlist& n, const std::vector<Word>& sources,
              const std::vector<int>& sel_bits) {
  assert(!sources.empty());
  if (sources.size() == 1) return sources[0];
  const int bits = select_width(static_cast<int>(sources.size()));
  assert(static_cast<int>(sel_bits.size()) >= bits);
  return mux_tree_rec(n, sources, 0, static_cast<int>(sources.size()),
                      sel_bits, bits - 1);
}

namespace {

using rtl::Source;

/// RAII provenance scope: nodes created while alive attribute to `comp`.
/// No-op when the builder records nothing (comp < 0 attributes to none).
class ProvScope {
 public:
  ProvScope(observe::ProvenanceBuilder& b, const Netlist& n, int comp)
      : b_(b), n_(n) {
    b_.push(comp, n_.num_nodes());
  }
  ~ProvScope() { b_.pop(n_.num_nodes()); }
  ProvScope(const ProvScope&) = delete;
  ProvScope& operator=(const ProvScope&) = delete;

 private:
  observe::ProvenanceBuilder& b_;
  const Netlist& n_;
};

/// Builds all control lines either as free inputs or from a synthesized
/// controller decode, in the exact signal order of hls::build_rtl.
class ControlPlane {
 public:
  ControlPlane(Netlist& n, const ExpandOptions& opts) : n_(n), opts_(opts) {}

  /// Registers a consumer needing `width` lines for controller signal
  /// `signal_index` (the next signal in order). Returns the line nodes.
  /// For free-input mode, `name` labels the PIs.
  std::vector<int> lines(const std::string& name, int width) {
    std::vector<int> nodes;
    if (!opts_.controller) {
      for (int i = 0; i < width; ++i) {
        nodes.push_back(n_.add_input(name + "#" + std::to_string(i)));
        free_inputs_.push_back(nodes.back());
      }
    } else {
      if (next_signal_ >= opts_.controller->num_signals())
        throw std::runtime_error("controller has fewer signals than the "
                                 "datapath needs");
      nodes = decode_signal(next_signal_, width);
    }
    ++next_signal_;
    return nodes;
  }

  /// Builds the step counter + one-hot decode. Call before any lines() in
  /// controller mode.
  void build_counter(std::vector<int>* state_ffs) {
    if (!opts_.controller) return;
    // The decode always covers ALL vectors; reachability is enforced only
    // by the wrap target, selected by a tied test-mode constant through
    // fold-free muxes. The functional-only and test-augmented variants are
    // then structurally identical (fault lists align 1:1) — exactly how a
    // real [14] controller is built, with the test states present but
    // unreachable without test mode.
    const int total = opts_.controller->num_vectors();
    const int functional = opts_.num_reachable_vectors < 0
                               ? total
                               : opts_.num_reachable_vectors;
    num_vectors_ = total;
    const int bits = std::max(select_width(total), 1);
    // State FFs with a synchronous reset (every real controller has one;
    // without it sequential ATPG could never leave the unknown state).
    const int reset = n_.add_input("ctl_reset");
    Word state(bits);
    for (int i = 0; i < bits; ++i)
      state[i] = n_.add_dff(-1, "ctl_state" + std::to_string(i));
    // next = reset ? 0 : (state == wrap target) ? 0 : state + 1, where the
    // wrap target is functional-1 or total-1 by the test-mode strap.
    const Word one = make_const_word(n_, 1, bits);
    const Word inc = ripple_add(n_, state, one, n_.add_const(false));
    const int mode = n_.add_const(opts_.test_mode);
    const Word func_w = make_const_word(n_, functional - 1, bits);
    const Word full_w = make_const_word(n_, total - 1, bits);
    Word target(bits);
    for (int i = 0; i < bits; ++i)
      target[i] =
          n_.add_gate_raw(GateType::kMux, {mode, func_w[i], full_w[i]});
    const int wrap = equal(n_, state, target);
    Word next = mux_word(n_, wrap, make_const_word(n_, 0, bits), inc);
    next = mux_word(n_, reset, make_const_word(n_, 0, bits), next);
    for (int i = 0; i < bits; ++i) n_.set_dff_input(state[i], next[i]);
    // One-hot decode per vector.
    onehot_.resize(total);
    for (int v = 0; v < total; ++v) {
      std::vector<int> terms;
      for (int i = 0; i < bits; ++i) {
        const int bit = state[i];
        terms.push_back((v >> i) & 1
                            ? bit
                            : n_.add_gate(GateType::kNot, {bit}));
      }
      onehot_[v] = terms.size() == 1
                       ? terms[0]
                       : n_.add_gate(GateType::kAnd, terms);
    }
    if (state_ffs) *state_ffs = state;
  }

  const std::vector<int>& free_inputs() const { return free_inputs_; }

 private:
  std::vector<int> decode_signal(int signal, int width) {
    std::vector<int> out(width);
    for (int b = 0; b < width; ++b) {
      std::vector<int> ones;
      for (int v = 0; v < num_vectors_; ++v) {
        const int value = opts_.controller->vector(v)[signal];
        // Don't-cares (-1) decode as 0.
        if (value >= 0 && ((value >> b) & 1)) ones.push_back(onehot_[v]);
      }
      if (ones.empty())
        out[b] = n_.add_const(false);
      else if (ones.size() == 1)
        out[b] = n_.add_gate(GateType::kBuf, {ones[0]});
      else
        out[b] = n_.add_gate(GateType::kOr, ones);
    }
    return out;
  }

  Netlist& n_;
  const ExpandOptions& opts_;
  int next_signal_ = 0;
  int num_vectors_ = 0;
  std::vector<int> onehot_;
  std::vector<int> free_inputs_;
};

}  // namespace

Word build_op_result(Netlist& n, cdfg::OpKind kind, const Word& a,
                     const Word& b, const Word& c) {
  const int width = static_cast<int>(a.size());
  auto flag_word = [&](int flag) {
    Word w = make_const_word(n, 0, width);
    w[0] = flag;
    return w;
  };
  switch (kind) {
    case cdfg::OpKind::kAdd:
      return ripple_add(n, a, b, n.add_const(false));
    case cdfg::OpKind::kSub:
      return ripple_sub(n, a, b);
    case cdfg::OpKind::kMul:
      return array_multiply(n, a, b);
    case cdfg::OpKind::kDiv:
      // Restoring division is enormous at gate level; the benchmarks do not
      // use it. Approximate with a subtract so the unit is still testable
      // logic rather than a stub.
      return ripple_sub(n, a, b);
    case cdfg::OpKind::kAnd:
      return bitwise(n, GateType::kAnd, a, b);
    case cdfg::OpKind::kOr:
      return bitwise(n, GateType::kOr, a, b);
    case cdfg::OpKind::kXor:
      return bitwise(n, GateType::kXor, a, b);
    case cdfg::OpKind::kNot:
      return invert(n, a);
    case cdfg::OpKind::kNeg:
      return ripple_sub(n, make_const_word(n, 0, width), a);
    case cdfg::OpKind::kShl: {
      Word w(width);
      w[0] = n.add_const(false);
      for (int i = 1; i < width; ++i) w[i] = a[i - 1];
      return w;
    }
    case cdfg::OpKind::kShr: {
      Word w(width);
      for (int i = 0; i + 1 < width; ++i) w[i] = a[i + 1];
      w[width - 1] = n.add_const(false);
      return w;
    }
    case cdfg::OpKind::kLt:
      return flag_word(less_than(n, a, b));
    case cdfg::OpKind::kEq:
      return flag_word(equal(n, a, b));
    case cdfg::OpKind::kMux: {
      // op inputs: {sel, x, y} -> sel ? x : y; sel = bit 0 of port 0.
      return mux_word(n, a[0], b, c);
    }
    case cdfg::OpKind::kCopy:
      return a;
  }
  throw std::runtime_error("unsupported op kind in expansion");
}

Netlist expand_standalone_fu(const std::vector<cdfg::OpKind>& kinds,
                             int width) {
  Netlist n;
  const Word a = make_input_word(n, "a", width);
  const Word b = make_input_word(n, "b", width);
  const Word c = make_input_word(n, "c", width);
  std::vector<Word> results;
  for (cdfg::OpKind k : kinds)
    results.push_back(build_op_result(n, k, a, b, c));
  std::vector<int> op_sel;
  if (results.size() > 1) {
    const int bits = select_width(static_cast<int>(results.size()));
    for (int i = 0; i < bits; ++i)
      op_sel.push_back(n.add_input("op" + std::to_string(i)));
  }
  const Word out = mux_tree(n, results, op_sel);
  for (int bit : out) n.mark_output(bit);
  n.validate();
  return n;
}

ExpandedDesign expand_datapath(const rtl::Datapath& dp,
                               const ExpandOptions& opts) {
  TSYN_SPAN("gl.netlist_expand");
  ExpandedDesign out;
  Netlist& n = out.netlist;

  {
    // Pre-size the node table (and the name map) from the datapath shape:
    // a register bit costs a DFF plus a scan/steering mux or two, an FU
    // bit a few dozen gates, plus the port muxes and the controller. A
    // rough over-estimate is fine — this is a capacity hint, not a limit.
    const auto est_w = [&](int w) {
      return opts.width_override > 0 ? opts.width_override : w;
    };
    long est = 64;  // controller counter/decode and misc slack
    for (const auto& r : dp.regs) est += 6L * est_w(r.width);
    for (const auto& f : dp.fus) est += 40L * est_w(f.width);
    est += 2L * dp.mux2_count();
    for (const auto& pi : dp.primary_inputs) est += est_w(pi.width);
    for (const auto& c : dp.constants) est += est_w(c.width);
    n.reserve_nodes(static_cast<int>(std::min<long>(est, 1L << 24)));
  }

  // Provenance: the component table comes straight from the datapath; the
  // node attribution streams out of the scopes below. Control lines and
  // their decode attribute to the mux that consumes them; only the shared
  // step counter and one-hot belong to the controller component.
  if (opts.record_provenance)
    out.provenance =
        observe::make_component_map(dp, opts.controller != nullptr);
  observe::ProvenanceBuilder prov(
      opts.record_provenance ? &out.provenance : nullptr);
  using observe::CompKind;
  auto comp = [&](CompKind kind, int index, int port = -1) {
    return prov.enabled() ? out.provenance.find(kind, index, port) : -1;
  };

  ControlPlane ctl(n, opts);
  {
    ProvScope scope(prov, n, comp(CompKind::kController, -1));
    ctl.build_counter(&out.controller_state);
  }

  auto width_of = [&](int w) {
    return opts.width_override > 0 ? opts.width_override : w;
  };

  // Primary inputs and constants.
  out.pi_nodes.resize(dp.primary_inputs.size());
  for (std::size_t i = 0; i < dp.primary_inputs.size(); ++i) {
    ProvScope scope(prov, n,
                    comp(CompKind::kPrimaryInput, static_cast<int>(i)));
    out.pi_nodes[i] = make_input_word(n, dp.primary_inputs[i].name,
                                      width_of(dp.primary_inputs[i].width));
  }
  std::vector<Word> const_words(dp.constants.size());
  for (std::size_t i = 0; i < dp.constants.size(); ++i) {
    ProvScope scope(prov, n, comp(CompKind::kConstant, static_cast<int>(i)));
    const_words[i] = make_const_word(n, dp.constants[i].value,
                                     width_of(dp.constants[i].width));
  }

  // Register Q sides first (so FU inputs can reference them).
  const int num_regs = dp.num_regs();
  out.reg_q.resize(num_regs);
  out.reg_d.resize(num_regs);
  std::vector<bool> scanned(num_regs, false);
  for (int r = 0; r < num_regs; ++r) {
    const rtl::RegisterInfo& reg = dp.regs[r];
    const int w = width_of(reg.width);
    scanned[r] =
        opts.respect_scan && reg.test_kind != rtl::TestRegKind::kNone;
    ProvScope scope(prov, n, comp(CompKind::kRegister, r));
    out.reg_q[r].resize(w);
    for (int i = 0; i < w; ++i) {
      out.reg_q[r][i] =
          scanned[r]
              ? n.add_input(reg.name + ".q" + std::to_string(i))
              : n.add_dff(-1, reg.name + ".q" + std::to_string(i));
    }
  }

  auto word_of_source = [&](const Source& s, int width) -> Word {
    Word w;
    switch (s.kind) {
      case Source::Kind::kRegister: w = out.reg_q[s.index]; break;
      case Source::Kind::kPrimaryInput: w = out.pi_nodes[s.index]; break;
      case Source::Kind::kConstant: w = const_words[s.index]; break;
      case Source::Kind::kFu: w = out.fu_out[s.index]; break;
    }
    // Pad or truncate to the consumer width.
    while (static_cast<int>(w.size()) < width) w.push_back(n.add_const(false));
    w.resize(width);
    return w;
  };

  // FUs. Control lines are consumed in hls::build_rtl's signal order:
  // all registers first (select + load), then per-FU port selects and
  // opcode. To honor that order we must create register control lines
  // before FU ones even though FU logic is built in between; so gather
  // register control lines now.
  std::vector<std::vector<int>> reg_sel_lines(num_regs);
  std::vector<int> reg_ld_line(num_regs, -1);
  for (int r = 0; r < num_regs; ++r) {
    const rtl::RegisterInfo& reg = dp.regs[r];
    // Select/load lines (and their decode) belong to the register's input
    // mux; an undriven register has no mux, so its dangling load line
    // attributes to the register itself.
    ProvScope scope(prov, n,
                    comp(reg.drivers.empty() ? CompKind::kRegister
                                             : CompKind::kRegMux,
                         r));
    if (reg.drivers.size() > 1)
      reg_sel_lines[r] = ctl.lines(
          "sel_" + reg.name,
          select_width(static_cast<int>(reg.drivers.size())));
    reg_ld_line[r] = ctl.lines("ld_" + reg.name, 1)[0];
  }

  out.fu_out.resize(dp.num_fus());
  for (int f = 0; f < dp.num_fus(); ++f) {
    const rtl::FuInfo& fu = dp.fus[f];
    const int w = width_of(fu.width);
    ProvScope fu_scope(prov, n, comp(CompKind::kFu, f));
    // Port operands through their mux trees.
    std::vector<Word> port_words;
    for (std::size_t p = 0; p < fu.port_drivers.size(); ++p) {
      const auto& drivers = fu.port_drivers[p];
      const bool muxed = drivers.size() > 1;
      // Single-driver ports have no mux component; their wiring (width
      // adaptation, constants) stays with the FU itself.
      ProvScope port_scope(prov, n,
                           muxed ? comp(CompKind::kFuMux, f, static_cast<int>(p))
                                 : comp(CompKind::kFu, f));
      std::vector<Word> srcs;
      for (const Source& s : drivers) srcs.push_back(word_of_source(s, w));
      std::vector<int> sel;
      if (muxed)
        sel = ctl.lines("sel_" + fu.name + "_p" + std::to_string(p),
                        select_width(static_cast<int>(srcs.size())));
      port_words.push_back(mux_tree(n, srcs, sel));
    }
    while (port_words.size() < 3)
      port_words.push_back(make_const_word(n, 0, w));

    // Opcode-muxed results.
    std::vector<cdfg::OpKind> kinds = fu.op_kinds;
    if (kinds.empty()) kinds.push_back(cdfg::OpKind::kAdd);
    std::vector<Word> results;
    for (cdfg::OpKind k : kinds)
      results.push_back(build_op_result(n, k, port_words[0], port_words[1],
                                    port_words[2]));
    std::vector<int> op_sel;
    if (results.size() > 1)
      op_sel = ctl.lines("op_" + fu.name,
                         select_width(static_cast<int>(results.size())));
    out.fu_out[f] = mux_tree(n, results, op_sel);
  }

  // Register D sides: driver mux tree + hold mux.
  for (int r = 0; r < num_regs; ++r) {
    const rtl::RegisterInfo& reg = dp.regs[r];
    const int w = width_of(reg.width);
    ProvScope scope(prov, n,
                    comp(reg.drivers.empty() ? CompKind::kRegister
                                             : CompKind::kRegMux,
                         r));
    Word d_word;
    if (reg.drivers.empty()) {
      d_word = out.reg_q[r];  // never written: holds forever
    } else {
      std::vector<Word> srcs;
      for (const Source& s : reg.drivers) srcs.push_back(word_of_source(s, w));
      const Word loaded = mux_tree(n, srcs, reg_sel_lines[r]);
      // ld ? loaded : hold
      d_word = mux_word(n, reg_ld_line[r], loaded, out.reg_q[r]);
    }
    out.reg_d[r] = d_word;
    if (scanned[r]) {
      for (int i = 0; i < w; ++i) n.mark_output(d_word[i]);
    } else {
      for (int i = 0; i < w; ++i) n.set_dff_input(out.reg_q[r][i], d_word[i]);
    }
  }

  // Primary outputs: observed register Q bits.
  for (const rtl::PrimaryOutputInfo& po : dp.primary_outputs)
    for (int bit : out.reg_q[po.source.index]) n.mark_output(bit);

  out.control_inputs = ctl.free_inputs();
  prov.finish(n.num_nodes());
  if (prov.enabled())
    util::metrics()
        .gauge("tsyn.provenance.entries")
        .set(static_cast<double>(out.provenance.num_attributed()));
  n.validate();
  static util::Counter& gates =
      util::metrics().counter("gl.expand.gates_built");
  gates.add(n.gate_count());
  util::metrics().gauge("gl.expand.last_gates").set(n.gate_count());
  util::metrics()
      .gauge("gl.expand.last_flops")
      .set(static_cast<double>(n.flops().size()));
  return out;
}

}  // namespace tsyn::gl
