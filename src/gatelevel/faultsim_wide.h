// Wide-lane PPSFP engine, templated over the lane width W and the SIMD
// word-vector backend V (widebits.h). This header is instantiated by
// several translation units compiled with different ISA flags:
//
//   faultsim.cpp         (portable flags)  -> wide_campaign<W, ScalarWords<W>>
//   faultsim_avx2.cpp    (-mavx2)          -> wide_campaign<W, Avx2Words>
//   faultsim_avx512.cpp  (-mavx512f)       -> wide_campaign<8, Avx512Words>
//
// and run_wide_campaign (faultsim.cpp) picks an entry point at runtime
// from what the CPU supports. Every template here therefore carries V in
// its parameter list even where the code never touches V: instantiations
// from differently-flagged TUs must have distinct symbols, or the linker
// could keep an AVX-encoded comdat copy and hand it to the scalar path on
// a CPU without that ISA.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include "gatelevel/faultsim.h"
#include "gatelevel/netlist.h"
#include "gatelevel/simgraph.h"
#include "gatelevel/widebits.h"
#include "observe/scoap_attr.h"
#include "util/metrics.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace tsyn::gl::wide_detail {

/// Items claimed per work-stealing grab; mirrors the narrow engine's
/// kPpsfpStealChunk (faultsim.cpp) and for the same reason — per-fault
/// propagation is microseconds, one atomic add each is pure contention.
constexpr int kWideStealChunk = 16;

/// Good-machine value rows for one super-block, shared read-only by every
/// worker's propagator. Rows are interleaved: node id owns 2W contiguous
/// words, the W value words then the W x words — one pointer addresses a
/// node's whole three-valued row and the row sits on adjacent cache lines
/// (split v/x arrays cost twice the line and TLB traffic on the per-event
/// hot path).
template <int W>
struct WideGood {
  std::vector<std::uint64_t> rows;  // node-major, 2W words per node

  const std::uint64_t* row(int id) const {
    return &rows[static_cast<std::size_t>(id) * 2 * W];
  }
};

/// Evaluates one V-chunk (V::kWords lanes-of-64 at word offset `off`) of a
/// gate from per-fanin row pointers. These are eval_gate's formulas routed
/// through the widebits.h kernels.
template <int W, class V>
inline Tv<V> wide_eval_chunk(GateType type, const std::uint64_t* const* fr,
                             int nf, int off) {
  const auto ld = [&](int i) {
    return Tv<V>{V::load(fr[i] + off), V::load(fr[i] + W + off)};
  };
  Tv<V> r;
  switch (type) {
    case GateType::kConst0:
      r.v = V::zero();
      r.x = V::zero();
      break;
    case GateType::kConst1:
      r.v = V::ones();
      r.x = V::zero();
      break;
    case GateType::kBuf:
      r = ld(0);
      break;
    case GateType::kNot:
      r = tv_not(ld(0));
      break;
    case GateType::kAnd:
    case GateType::kNand:
      r = ld(0);
      for (int i = 1; i < nf; ++i) r = tv_and(r, ld(i));
      if (type == GateType::kNand) r = tv_not(r);
      break;
    case GateType::kOr:
    case GateType::kNor:
      r = ld(0);
      for (int i = 1; i < nf; ++i) r = tv_or(r, ld(i));
      if (type == GateType::kNor) r = tv_not(r);
      break;
    case GateType::kXor:
      r = tv_xor(ld(0), ld(1));
      break;
    case GateType::kXnor:
      r = tv_not(tv_xor(ld(0), ld(1)));
      break;
    case GateType::kMux:
      r = tv_mux(ld(0), ld(1), ld(2));
      break;
    case GateType::kInput:
    case GateType::kDff:
      assert(false && "wide eval on a source node");
      r.v = V::zero();
      r.x = V::ones();
      break;
  }
  return r;
}

/// Evaluates one gate row (W lanes-of-64) into `out`.
template <int W, class V>
inline void wide_eval_row(GateType type, const std::uint64_t* const* fr,
                          int nf, std::uint64_t* out) {
  static_assert(W % V::kWords == 0, "backend width must divide the row");
  constexpr int kChunks = W / V::kWords;
  for (int c = 0; c < kChunks; ++c) {
    const int off = c * V::kWords;
    const Tv<V> r = wide_eval_chunk<W, V>(type, fr, nf, off);
    r.v.store(out + off);
    r.x.store(out + W + off);
  }
}

/// Evaluates one gate row, returning whether the result differs from
/// `old` (the node's previous faulty-machine row) and storing it to `dst`
/// only when it does. This is the per-event hot path: the old
/// copy-on-write shape (eval to a temp row, memcmp, memcpy) streamed
/// every row through memory three extra times; here the row lives in
/// registers while the diff accumulates, and unchanged events — the cone
/// boundary, a large share of all events — never dirty a cache line.
template <int W, class V>
inline bool wide_eval_diff(GateType type, const std::uint64_t* const* fr,
                           int nf, const std::uint64_t* old,
                           std::uint64_t* dst) {
  static_assert(W % V::kWords == 0, "backend width must divide the row");
  constexpr int kChunks = W / V::kWords;
  Tv<V> rs[kChunks];
  V diff = V::zero();
  for (int c = 0; c < kChunks; ++c) {
    const int off = c * V::kWords;
    rs[c] = wide_eval_chunk<W, V>(type, fr, nf, off);
    diff = diff | (rs[c].v ^ V::load(old + off)) |
           (rs[c].x ^ V::load(old + W + off));
  }
  if (!diff.any()) return false;
  for (int c = 0; c < kChunks; ++c) {
    const int off = c * V::kWords;
    rs[c].v.store(dst + off);
    rs[c].x.store(dst + W + off);
  }
  return true;
}

/// Loads PI rows for the super-block starting at block `base`. Blocks past
/// the end of the campaign pad with all-X lanes; three-valued monotonicity
/// makes them inert (an X-input lane can only detect a fault that every
/// real lane also detects, so first-detection attribution stays real).
template <int W, class V>
void wide_set_inputs(const SimGraph& g,
                     const std::vector<std::vector<Bits>>& blocks,
                     std::size_t base, WideGood<W>& good) {
  const std::size_t nn = static_cast<std::size_t>(g.num_nodes());
  good.rows.assign(nn * 2 * W, 0);
  for (std::size_t id = 0; id < nn; ++id) {  // default all lanes to X
    std::uint64_t* rx = &good.rows[id * 2 * W + W];
    for (int w = 0; w < W; ++w) rx[w] = ~0ULL;
  }
  const auto& pis = g.pis();
  for (std::size_t i = 0; i < pis.size(); ++i) {
    std::uint64_t* r = &good.rows[static_cast<std::size_t>(pis[i]) * 2 * W];
    for (int w = 0; w < W; ++w) {
      const std::size_t b = base + static_cast<std::size_t>(w);
      if (b >= blocks.size() || i >= blocks[b].size()) continue;
      r[w] = blocks[b][i].v;
      r[W + w] = blocks[b][i].x;
    }
  }
}

/// Full good simulation of the preset rows (one levelized pass).
template <int W, class V>
void wide_simulate_good(const SimGraph& g, WideGood<W>& good) {
  const std::uint64_t* frp[16];
  const std::int32_t* foff = g.fanin_off();
  const std::int32_t* fin = g.fanin();
  for (const std::int32_t id : g.order()) {
    const GateType t = g.type(id);
    if (t == GateType::kInput || t == GateType::kDff) continue;
    const std::int32_t lo = foff[id];
    const int nf = foff[id + 1] - lo;
    assert(nf <= 16);
    for (int i = 0; i < nf; ++i)
      frp[i] = &good.rows[static_cast<std::size_t>(fin[lo + i]) * 2 * W];
    wide_eval_row<W, V>(t, frp, nf,
                        &good.rows[static_cast<std::size_t>(id) * 2 * W]);
  }
}

/// FaultPropagator widened to W×64 lanes: same copy-on-write stamps, same
/// per-level event buckets, value rows instead of single Bits. One
/// instance per worker slot.
template <int W, class V>
class WideProp {
 public:
  explicit WideProp(const SimGraph& g) : g_(&g) {
    const std::size_t nn = static_cast<std::size_t>(g.num_nodes());
    frows_.assign(nn * 2 * W, 0);
    stamp_.assign(nn, -1);
    sched_stamp_.assign(nn, -1);
    po_stamp_.assign(nn, -1);
    lvl_stamp_.assign(g.num_levels(), -1);
    lvl_nodes_.resize(g.num_levels());
  }

  /// One fault against the whole super-block: out_mask[w] is the detecting
  /// lane mask of the super-block's w-th 64-lane block.
  void propagate(const Fault& f, const WideGood<W>& good,
                 std::uint64_t* out_mask) {
    ++faults_;
    const long before = events_;
    begin(good);
    inject(f);
    drain(f);
    last_events_ = events_ - before;
    po_diff(out_mask);
  }

  long events() const { return events_; }
  long faults() const { return faults_; }
  long last_events() const { return last_events_; }
  void reset_work_counters() {
    events_ = 0;
    faults_ = 0;
    last_events_ = 0;
  }

 private:
  /// Current faulty-machine row of `id`: its copy-on-write row when touched
  /// this epoch, the shared good row otherwise.
  const std::uint64_t* row(int id) const {
    return stamp_[id] == cur_ ? &frows_[static_cast<std::size_t>(id) * 2 * W]
                              : good_->row(id);
  }

  void begin(const WideGood<W>& good) {
    good_ = &good;
    if (cur_ == std::numeric_limits<int>::max()) {
      std::fill(stamp_.begin(), stamp_.end(), -1);
      std::fill(sched_stamp_.begin(), sched_stamp_.end(), -1);
      std::fill(po_stamp_.begin(), po_stamp_.end(), -1);
      std::fill(lvl_stamp_.begin(), lvl_stamp_.end(), -1);
      cur_ = 0;
    }
    ++cur_;
    min_lvl_ = g_->num_levels();
    max_lvl_ = -1;
    touched_pos_.clear();
  }

  void schedule_fanouts(int id) {
    const std::int32_t* foff = g_->fanout_off();
    const std::int32_t* fo = g_->fanout();
    const std::int32_t* level_of = g_->level_of();
    const std::int32_t end = foff[id + 1];
    for (std::int32_t k = foff[id]; k < end; ++k) {
      const int s = fo[k];
      if (sched_stamp_[s] == cur_) continue;
      sched_stamp_[s] = cur_;
      // The sweep reaches `s` strictly later (deeper level); start pulling
      // its good row in now so the eval doesn't stall on it.
      const std::uint64_t* gr = good_->row(s);
      __builtin_prefetch(gr);
      __builtin_prefetch(gr + W);
      const int lvl = level_of[s];
      if (lvl_stamp_[lvl] != cur_) {
        lvl_stamp_[lvl] = cur_;
        lvl_nodes_[lvl].clear();
        if (lvl < min_lvl_) min_lvl_ = lvl;
        if (lvl > max_lvl_) max_lvl_ = lvl;
      }
      lvl_nodes_[lvl].push_back(s);
    }
  }

  /// Marks `id` as diverged this epoch: stamp, PO bookkeeping, fanouts.
  void touch(int id) {
    stamp_[id] = cur_;
    if ((g_->flags()[id] & SimGraph::kFlagPo) && po_stamp_[id] != cur_) {
      po_stamp_[id] = cur_;
      touched_pos_.push_back(id);
    }
    schedule_fanouts(id);
  }

  /// Overwrites node `id`'s row with `srow` (output-fault injection; once
  /// per fault, so the memcmp shape is fine here).
  void force(int id, const std::uint64_t* srow) {
    if (std::memcmp(row(id), srow, sizeof(std::uint64_t) * 2 * W) == 0)
      return;
    std::memcpy(&frows_[static_cast<std::size_t>(id) * 2 * W], srow,
                sizeof(std::uint64_t) * 2 * W);
    touch(id);
  }

  /// Re-evaluates node `id` with fanin pin `pin` (or -1: none) overridden
  /// to the `srow` row, directly into its copy-on-write row.
  void eval_node(int id, int pin, const std::uint64_t* srow) {
    const std::uint64_t* frp[16];
    const std::int32_t* fin = g_->fanin();
    const std::int32_t lo = g_->fanin_off()[id];
    const int nf = g_->fanin_off()[id + 1] - lo;
    assert(nf <= 16);
    for (int i = 0; i < nf; ++i)
      frp[i] = i == pin ? srow : row(fin[lo + i]);
    std::uint64_t* dst = &frows_[static_cast<std::size_t>(id) * 2 * W];
    const std::uint64_t* old = stamp_[id] == cur_ ? dst : good_->row(id);
    if (wide_eval_diff<W, V>(g_->type(id), frp, nf, old, dst)) touch(id);
  }

  /// The faulted pin/node row: stuck value in every lane, nothing unknown.
  void stuck_row(const Fault& f, std::uint64_t* srow) const {
    for (int w = 0; w < W; ++w) {
      srow[w] = f.stuck_at_one ? ~0ULL : 0;
      srow[W + w] = 0;
    }
  }

  void inject(const Fault& f) {
    std::uint64_t srow[2 * W];
    stuck_row(f, srow);
    if (f.fanin_index < 0) {
      force(f.node, srow);
      return;
    }
    if (g_->type(f.node) == GateType::kDff) return;
    eval_node(f.node, f.fanin_index, srow);
  }

  void drain(const Fault& f) {
    std::uint64_t srow[2 * W];
    stuck_row(f, srow);
    // Scheduled nodes sit in per-level worklists (no scanning a level's
    // position span for the few scheduled entries — cones here are small
    // and the holes would dominate). A level's list is complete once the
    // sweep reaches it: scheduling only ever targets deeper levels.
    for (int lvl = min_lvl_; lvl <= max_lvl_; ++lvl) {
      if (lvl_stamp_[lvl] != cur_) continue;
      for (const int id : lvl_nodes_[lvl]) {
        ++events_;
        if (f.fanin_index < 0 && id == f.node) continue;  // pinned
        eval_node(id, id == f.node ? f.fanin_index : -1, srow);
      }
    }
  }

  void po_diff(std::uint64_t* out) const {
    for (int w = 0; w < W; ++w) out[w] = 0;
    for (const int id : touched_pos_) {
      const std::uint64_t* gr = good_->row(id);
      const std::uint64_t* br = &frows_[static_cast<std::size_t>(id) * 2 * W];
      for (int w = 0; w < W; ++w)
        out[w] |= (gr[w] ^ br[w]) & ~gr[W + w] & ~br[W + w];
    }
  }

  const SimGraph* g_;
  const WideGood<W>* good_ = nullptr;
  std::vector<std::uint64_t> frows_;  ///< copy-on-write rows, 2W words/node
  std::vector<int> stamp_, sched_stamp_, po_stamp_;
  int cur_ = 0;
  std::vector<int> lvl_stamp_;
  std::vector<std::vector<int>> lvl_nodes_;  ///< scheduled ids per level
  int min_lvl_ = 0, max_lvl_ = -1;
  std::vector<int> touched_pos_;
  long events_ = 0, faults_ = 0, last_events_ = 0;
};

/// One wide campaign over all blocks. Drop mode when `detected` is given
/// (fault dropping plus ledger detect events, exactly the serial
/// first-detection attribution); matrix mode when `matrix` is given (no
/// dropping, every block's lane mask recorded).
template <int W, class V>
void wide_campaign(const Netlist& n,
                   const std::vector<std::vector<Bits>>& blocks,
                   const std::vector<Fault>& faults,
                   const FaultSimOptions& options, std::vector<bool>* detected,
                   std::vector<std::uint64_t>* matrix) {
  if (!n.flops().empty())
    throw std::runtime_error(
        "wide fault sim is combinational; expand state as PI/PO first");
  const SimGraph& g = SimGraph::of(n);  // built before workers fan out
  const int count = static_cast<int>(faults.size());
  const std::size_t nb = blocks.size();
  if (count == 0 || nb == 0) return;
  const std::size_t nsuper = (nb + W - 1) / W;
  const int workers = std::min(options.resolved_threads(), count);
  std::vector<WideProp<W, V>> props;
  props.reserve(static_cast<std::size_t>(std::max(workers, 1)));
  for (int w = 0; w < std::max(workers, 1); ++w) props.emplace_back(g);

  WideGood<W> good;
  std::vector<std::uint64_t> block_masks(static_cast<std::size_t>(count) * W);
  const bool ledger_on = observe::ledger_enabled();
  long newly = 0, blocks_done = 0;
  for (std::size_t s = 0; s < nsuper; ++s) {
    wide_set_inputs<W, V>(g, blocks, s * W, good);
    wide_simulate_good<W, V>(g, good);
    auto job = [&](int i, int slot) {
      std::uint64_t* mw = &block_masks[static_cast<std::size_t>(i) * W];
      if (detected && (*detected)[i]) {
        std::fill(mw, mw + W, 0);
        return;
      }
      props[slot].propagate(faults[i], good, mw);
      if (ledger_on)
        observe::record_sim_effort(observe::make_fault_key(faults[i]),
                                   props[slot].last_events());
    };
    if (workers <= 1) {
      for (int i = 0; i < count; ++i) job(i, 0);
    } else {
      util::ThreadPool::shared().run_chunked(count, workers, kWideStealChunk,
                                             job);
    }
    const int real = static_cast<int>(
        std::min<std::size_t>(W, nb - s * W));  // blocks, minus padding
    if (detected) {
      const long pattern_base = 64 * static_cast<long>(s * W);
      for (int i = 0; i < count; ++i) {
        if ((*detected)[i]) continue;
        const std::uint64_t* mw =
            &block_masks[static_cast<std::size_t>(i) * W];
        for (int w = 0; w < W; ++w) {
          if (mw[w] == 0) continue;
          (*detected)[i] = true;
          ++newly;
          if (ledger_on)
            observe::record_detected(
                observe::make_fault_key(faults[i]),
                pattern_base + 64 * w + std::countr_zero(mw[w]));
          break;
        }
      }
    }
    if (matrix) {
      for (int i = 0; i < count; ++i) {
        const std::uint64_t* mw =
            &block_masks[static_cast<std::size_t>(i) * W];
        std::uint64_t* row = &(*matrix)[static_cast<std::size_t>(i) * nb];
        for (int w = 0; w < real; ++w) row[s * W + w] = mw[w];
      }
    }
    blocks_done += real;
    // Live progress after each good-machine pass, not once at the end, so
    // heartbeats see pattern-grained advance inside long campaigns.
    static util::Progress& p_patterns = util::progress("sim.patterns");
    p_patterns.add(64 * static_cast<std::int64_t>(real));
  }

  long events = 0, done = 0;
  for (WideProp<W, V>& p : props) {
    events += p.events();
    done += p.faults();
    p.reset_work_counters();
  }
  util::metrics().counter("faultsim.ppsfp.events").add(events);
  util::metrics().counter("faultsim.ppsfp.faults_simulated").add(done);
  util::metrics().counter("faultsim.ppsfp.blocks").add(blocks_done);
  util::metrics().counter("faultsim.ppsfp.faults_detected").add(newly);
  util::metrics()
      .counter("faultsim.wide.super_blocks")
      .add(static_cast<long>(nsuper));
  util::metrics().gauge("faultsim.wide.lanes").set(64 * W);
}

// Per-ISA entry points, defined in faultsim_avx2.cpp / faultsim_avx512.cpp
// when the build compiled them (TSYN_WIDE_AVX2 / TSYN_WIDE_AVX512). Only
// call after active_simd_backend() confirms the CPU has the ISA.
void wide_campaign_avx2_w4(const Netlist& n,
                           const std::vector<std::vector<Bits>>& blocks,
                           const std::vector<Fault>& faults,
                           const FaultSimOptions& options,
                           std::vector<bool>* detected,
                           std::vector<std::uint64_t>* matrix);
void wide_campaign_avx2_w8(const Netlist& n,
                           const std::vector<std::vector<Bits>>& blocks,
                           const std::vector<Fault>& faults,
                           const FaultSimOptions& options,
                           std::vector<bool>* detected,
                           std::vector<std::uint64_t>* matrix);
void wide_campaign_avx512_w8(const Netlist& n,
                             const std::vector<std::vector<Bits>>& blocks,
                             const std::vector<Fault>& faults,
                             const FaultSimOptions& options,
                             std::vector<bool>* detected,
                             std::vector<std::uint64_t>* matrix);

}  // namespace tsyn::gl::wide_detail
