// SCOAP testability measures (Goldstein's controllability/observability).
//
// CC0/CC1(n): number of line assignments needed to force node n to 0/1;
// CO(n): assignments to propagate n to a primary output. Used as analysis
// output and as backtrace guidance for PODEM (pick the cheapest input to
// justify a non-controlling value, the hardest for a controlling one).
#pragma once

#include <vector>

#include "gatelevel/netlist.h"

namespace tsyn::gl {

struct Scoap {
  std::vector<int> cc0;  ///< per node; saturating arithmetic
  std::vector<int> cc1;
  std::vector<int> co;   ///< INT_MAX/2 when unobservable
};

/// Computes SCOAP over a combinational netlist (DFF-free).
Scoap compute_scoap(const Netlist& n);

}  // namespace tsyn::gl
