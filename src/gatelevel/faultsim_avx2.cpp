// AVX2 instantiations of the wide PPSFP engine. This translation unit is
// compiled with -mavx2 (see CMakeLists.txt) and added to the build only
// when the compiler accepts the flag; run_wide_campaign calls in here only
// after runtime CPU detection says AVX2 exists. Keep the TU to these
// instantiations — any other code compiled here may pick up AVX encodings
// and leak into the portable build through comdat folding.
#include "gatelevel/faultsim_wide.h"

namespace tsyn::gl::wide_detail {

void wide_campaign_avx2_w4(const Netlist& n,
                           const std::vector<std::vector<Bits>>& blocks,
                           const std::vector<Fault>& faults,
                           const FaultSimOptions& options,
                           std::vector<bool>* detected,
                           std::vector<std::uint64_t>* matrix) {
  wide_campaign<4, Avx2Words>(n, blocks, faults, options, detected, matrix);
}

void wide_campaign_avx2_w8(const Netlist& n,
                           const std::vector<std::vector<Bits>>& blocks,
                           const std::vector<Fault>& faults,
                           const FaultSimOptions& options,
                           std::vector<bool>* detected,
                           std::vector<std::uint64_t>* matrix) {
  wide_campaign<8, Avx2Words>(n, blocks, faults, options, detected, matrix);
}

}  // namespace tsyn::gl::wide_detail
