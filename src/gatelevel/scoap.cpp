#include "gatelevel/scoap.h"

#include <algorithm>
#include <climits>
#include <stdexcept>

namespace tsyn::gl {

namespace {

constexpr int kInf = INT_MAX / 4;

int sat_add(int a, int b) { return std::min(a + b, kInf); }

}  // namespace

Scoap compute_scoap(const Netlist& n) {
  if (!n.flops().empty())
    throw std::runtime_error("SCOAP here is combinational; unroll first");
  Scoap s;
  s.cc0.assign(n.num_nodes(), kInf);
  s.cc1.assign(n.num_nodes(), kInf);
  s.co.assign(n.num_nodes(), kInf);

  // Controllability: forward over the topological order.
  for (int id : n.topo_order()) {
    const Node& g = n.node(id);
    auto& c0 = s.cc0[id];
    auto& c1 = s.cc1[id];
    switch (g.type) {
      case GateType::kInput: c0 = c1 = 1; break;
      case GateType::kConst0: c0 = 0; c1 = kInf; break;
      case GateType::kConst1: c1 = 0; c0 = kInf; break;
      case GateType::kBuf:
        c0 = sat_add(s.cc0[g.fanins[0]], 1);
        c1 = sat_add(s.cc1[g.fanins[0]], 1);
        break;
      case GateType::kNot:
        c0 = sat_add(s.cc1[g.fanins[0]], 1);
        c1 = sat_add(s.cc0[g.fanins[0]], 1);
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        int all1 = 1;
        int any0 = kInf;
        for (int f : g.fanins) {
          all1 = sat_add(all1, s.cc1[f]);
          any0 = std::min(any0, sat_add(s.cc0[f], 1));
        }
        if (g.type == GateType::kAnd) {
          c1 = all1;
          c0 = any0;
        } else {
          c0 = all1;
          c1 = any0;
        }
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        int all0 = 1;
        int any1 = kInf;
        for (int f : g.fanins) {
          all0 = sat_add(all0, s.cc0[f]);
          any1 = std::min(any1, sat_add(s.cc1[f], 1));
        }
        if (g.type == GateType::kOr) {
          c0 = all0;
          c1 = any1;
        } else {
          c1 = all0;
          c0 = any1;
        }
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        const int a = g.fanins[0];
        const int b = g.fanins[1];
        const int same = std::min(sat_add(s.cc0[a], s.cc0[b]),
                                  sat_add(s.cc1[a], s.cc1[b]));
        const int diff = std::min(sat_add(s.cc0[a], s.cc1[b]),
                                  sat_add(s.cc1[a], s.cc0[b]));
        if (g.type == GateType::kXor) {
          c0 = sat_add(same, 1);
          c1 = sat_add(diff, 1);
        } else {
          c1 = sat_add(same, 1);
          c0 = sat_add(diff, 1);
        }
        break;
      }
      case GateType::kMux: {
        const int sel = g.fanins[0];
        const int a = g.fanins[1];  // taken when sel == 0
        const int b = g.fanins[2];  // taken when sel == 1
        c0 = sat_add(std::min(sat_add(s.cc0[sel], s.cc0[a]),
                              sat_add(s.cc1[sel], s.cc0[b])),
                     1);
        c1 = sat_add(std::min(sat_add(s.cc0[sel], s.cc1[a]),
                              sat_add(s.cc1[sel], s.cc1[b])),
                     1);
        break;
      }
      case GateType::kDff:
        break;  // excluded by precondition
    }
  }

  // Observability: backward.
  for (int po : n.primary_outputs()) s.co[po] = 0;
  const auto& topo = n.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const int id = *it;
    const Node& g = n.node(id);
    if (s.co[id] >= kInf) continue;
    auto propagate = [&](int fanin, int extra) {
      s.co[fanin] = std::min(s.co[fanin], sat_add(s.co[id], extra));
    };
    switch (g.type) {
      case GateType::kBuf:
      case GateType::kNot:
        propagate(g.fanins[0], 1);
        break;
      case GateType::kAnd:
      case GateType::kNand:
        for (std::size_t i = 0; i < g.fanins.size(); ++i) {
          int side = 1;
          for (std::size_t j = 0; j < g.fanins.size(); ++j)
            if (j != i) side = sat_add(side, s.cc1[g.fanins[j]]);
          propagate(g.fanins[i], side);
        }
        break;
      case GateType::kOr:
      case GateType::kNor:
        for (std::size_t i = 0; i < g.fanins.size(); ++i) {
          int side = 1;
          for (std::size_t j = 0; j < g.fanins.size(); ++j)
            if (j != i) side = sat_add(side, s.cc0[g.fanins[j]]);
          propagate(g.fanins[i], side);
        }
        break;
      case GateType::kXor:
      case GateType::kXnor: {
        const int a = g.fanins[0];
        const int b = g.fanins[1];
        propagate(a, sat_add(std::min(s.cc0[b], s.cc1[b]), 1));
        propagate(b, sat_add(std::min(s.cc0[a], s.cc1[a]), 1));
        break;
      }
      case GateType::kMux: {
        const int sel = g.fanins[0];
        const int a = g.fanins[1];
        const int b = g.fanins[2];
        propagate(a, sat_add(s.cc0[sel], 1));
        propagate(b, sat_add(s.cc1[sel], 1));
        // Observing the select needs distinguishable legs.
        propagate(sel, sat_add(std::min(sat_add(s.cc0[a], s.cc1[b]),
                                        sat_add(s.cc1[a], s.cc0[b])),
                               1));
        break;
      }
      default:
        break;
    }
  }
  return s;
}

}  // namespace tsyn::gl
