// Combinational ATPG (PODEM).
//
// Generates a primary-input assignment detecting a given stuck-at fault,
// with decision/backtrack counters exposed — the surveyed empirical law
// (§3.1: ATPG effort vs loop length and sequential depth) is measured with
// these counters. Multi-site targets (the same fault replicated across time
// frames) support the sequential engine in atpg_seq.h.
#pragma once

#include <cstdint>
#include <vector>

#include "gatelevel/faults.h"
#include "gatelevel/faultsim.h"
#include "gatelevel/netlist.h"

namespace tsyn::gl {

/// Scalar ternary value.
enum class V : std::uint8_t { k0, k1, kX };

inline V operator!(V v) {
  if (v == V::kX) return V::kX;
  return v == V::k0 ? V::k1 : V::k0;
}

struct AtpgStats {
  long decisions = 0;
  long backtracks = 0;
  long implications = 0;
};

enum class AtpgStatus { kDetected, kUntestable, kAborted };

struct AtpgResult {
  AtpgStatus status = AtpgStatus::kAborted;
  /// PI assignment (by position in primary_inputs()); kX = unconstrained.
  std::vector<V> pi_values;
  AtpgStats stats;
};

/// PODEM test generator over a combinational netlist.
class Podem {
 public:
  explicit Podem(const Netlist& n);

  /// Generates a test for one fault (or one fault replicated over several
  /// sites, which must be behaviorally the same defect — used for
  /// time-frame expansion).
  AtpgResult generate(const Fault& fault, long backtrack_limit = 10000);
  AtpgResult generate_multi(const std::vector<Fault>& sites,
                            long backtrack_limit = 10000);

  /// Like generate_multi, but the search starts from a partial test cube
  /// `base` (by PI position; kX = free). Specified base bits are immutable
  /// givens: only the remaining X inputs are assigned and backtracked, so a
  /// kDetected result's pi_values is a refinement of `base` (every
  /// specified base bit is preserved). kUntestable here means untestable
  /// UNDER the base cube — the fault may well be testable with other base
  /// bits. This is the compatibility test dynamic compaction
  /// (compaction/compaction.h) is built on: merge a secondary fault's test
  /// into the unspecified bits of an already-generated cube.
  AtpgResult generate_multi_from_base(const std::vector<Fault>& sites,
                                      const std::vector<V>& base,
                                      long backtrack_limit = 10000);

  /// PIs the generator must leave at X (e.g. unknowable initial state of a
  /// time-frame-0 pseudo input). Indices into primary_inputs().
  void freeze_inputs(const std::vector<int>& pi_positions);

  /// Enables SCOAP-guided backtrace: at each gate the cheapest
  /// controllable input (by CC0/CC1) is pursued instead of the first X
  /// input. Usually cuts backtracks on arithmetic logic.
  void use_scoap_guidance(bool enable);

 private:
  struct NodeVal {
    V good = V::kX;
    V faulty = V::kX;
  };

  void imply(const std::vector<Fault>& sites);
  bool detected_at_po() const;
  bool x_path_exists(const std::vector<Fault>& sites) const;
  /// Finds the next PI assignment: enumerates candidate objectives
  /// (activation sites, pin-fault side inputs, D-frontier inputs) and
  /// returns the first whose backtrace reaches an assignable PI.
  bool next_assignment(const std::vector<Fault>& sites, int* pi_node,
                       V* pi_value) const;
  /// Maps an objective to an unassigned PI; returns false if blocked.
  bool backtrace(int node, V value, int* pi_node, V* pi_value) const;

  void rebuild_assignable_cones();

  const Netlist& n_;
  std::vector<NodeVal> vals_;
  std::vector<V> pi_assignment_;   // by node id
  std::vector<char> frozen_;       // by node id
  std::vector<int> pi_position_;   // node id -> PI position
  /// Node has an assignable (non-frozen) PI in its transitive fanin — the
  /// backtrace only descends into such cones.
  std::vector<char> assignable_cone_;
  /// SCOAP guidance (optional): cc0_/cc1_ empty when disabled.
  std::vector<int> cc0_;
  std::vector<int> cc1_;
  AtpgStats stats_;
};

/// Seed of the Rng that fills a test cube's X inputs for fault-dropping
/// simulation in run_combinational_atpg. The fill is RANDOM, not 0-fill:
/// every kX input of a generated cube becomes an independent 64-bit word,
/// so each cube is graded as 64 distinct random completions. Exposed (and
/// the graded blocks recorded in AtpgCampaign::graded_fill) so downstream
/// consumers — the compaction subsystem's coverage accounting in
/// particular — can reproduce the campaign's detection decisions
/// bit-for-bit instead of guessing at an implicit fill.
inline constexpr std::uint64_t kAtpgGradeFillSeed = 0x7357;

/// Full-scan campaign: runs PODEM on every fault, fault-simulating each
/// generated test against the remaining faults (test compaction by fault
/// dropping). Returns per-fault status and the test set.
struct AtpgCampaign {
  std::vector<AtpgStatus> status;
  /// Raw ternary cubes as PODEM produced them (kX = unspecified).
  std::vector<std::vector<V>> tests;
  /// The exact 64-lane block each cube was graded with: specified bits are
  /// all0/all1 across lanes, X bits are random words drawn from an Rng
  /// seeded with kAtpgGradeFillSeed (one stream across the whole campaign,
  /// consumed in test order). graded_fill[i] corresponds to tests[i];
  /// `status` marks a fault kDetected exactly when one of these blocks'
  /// lanes detects it. Lane l of block i is therefore a fully-specified
  /// pattern the campaign actually takes credit for.
  std::vector<std::vector<Bits>> graded_fill;
  AtpgStats total;
  double fault_efficiency = 0;  ///< (detected + proven untestable) / total
  double fault_coverage = 0;    ///< detected / total
};

/// `sim_options` controls the fault-dropping simulator's parallelism.
AtpgCampaign run_combinational_atpg(const Netlist& n,
                                    const std::vector<Fault>& faults,
                                    long backtrack_limit = 10000,
                                    const FaultSimOptions& sim_options = {});

}  // namespace tsyn::gl
