// VCD waveform dump of gate-level simulation traces.
//
// Lets a simulate_sequence() run be inspected in any waveform viewer
// (GTKWave etc.). One lane of the 64-lane simulation is dumped; unknown
// values become 'x'.
#pragma once

#include <string>
#include <vector>

#include "gatelevel/netlist.h"

namespace tsyn::gl {

/// Serializes `trace` (as returned by simulate_sequence) to VCD.
/// Only named nodes plus primary inputs/outputs get signals; `lane` picks
/// which of the 64 simulation lanes to dump.
std::string trace_to_vcd(const Netlist& n,
                         const std::vector<std::vector<Bits>>& trace,
                         int lane = 0,
                         const std::string& module_name = "tsyn");

}  // namespace tsyn::gl
