#include "gatelevel/delay_iddq.h"

#include <algorithm>

#include "gatelevel/faultsim.h"
#include "util/thread_pool.h"

namespace tsyn::gl {

std::vector<TransitionFault> enumerate_transition_faults(const Netlist& n) {
  std::vector<TransitionFault> faults;
  for (int id = 0; id < n.num_nodes(); ++id) {
    const GateType t = n.node(id).type;
    if (t == GateType::kConst0 || t == GateType::kConst1) continue;
    faults.push_back({id, true});
    faults.push_back({id, false});
  }
  return faults;
}

double transition_fault_coverage(
    const Netlist& n, const std::vector<std::vector<Bits>>& blocks,
    const std::vector<TransitionFault>& faults,
    const FaultSimOptions& options) {
  if (faults.empty()) return 1.0;

  // The capture pattern of a slow-to-rise fault must detect node SA0 (the
  // late value still looks 0); slow-to-fall dually needs SA1.
  std::vector<Fault> sa;
  sa.reserve(faults.size());
  for (const TransitionFault& f : faults)
    sa.push_back({f.node, -1, f.slow_to_rise});  // STR -> SA? see below
  // STR: late 1 behaves as stuck-at-0 during capture.
  for (std::size_t i = 0; i < faults.size(); ++i)
    sa[i].stuck_at_one = !faults[i].slow_to_rise;

  FaultSimulator sim(n, options);
  std::vector<bool> detected(faults.size(), false);
  // Carries the last lane's good node value across block boundaries.
  std::vector<char> prev_value(n.num_nodes(), -1);  // -1 unknown

  std::vector<std::uint64_t> masks;
  for (const auto& block : blocks) {
    sim.run_block_detail(block, sa, masks);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (detected[i]) continue;
      const TransitionFault& f = faults[i];
      const Bits good = sim.good_value(f.node);
      // Lane l launches from lane l-1 (or from the previous block's last
      // lane for l == 0).
      const char init_needed = f.slow_to_rise ? 0 : 1;
      for (int lane = 0; lane < 64 && !detected[i]; ++lane) {
        if (((masks[i] >> lane) & 1) == 0) continue;  // capture must detect
        char init;
        if (lane == 0) {
          init = prev_value[f.node];
        } else {
          if ((good.x >> (lane - 1)) & 1) continue;
          init = static_cast<char>((good.v >> (lane - 1)) & 1);
        }
        if (init == init_needed) detected[i] = true;
      }
    }
    // Record the last lane's good values for the next block boundary.
    for (int id = 0; id < n.num_nodes(); ++id) {
      const Bits good = sim.good_value(id);
      prev_value[id] = ((good.x >> 63) & 1)
                           ? static_cast<char>(-1)
                           : static_cast<char>((good.v >> 63) & 1);
    }
  }
  const long hit = std::count(detected.begin(), detected.end(), true);
  return static_cast<double>(hit) / static_cast<double>(faults.size());
}

double iddq_fault_coverage(const Netlist& n,
                           const std::vector<std::vector<Bits>>& blocks,
                           const std::vector<Fault>& faults,
                           const FaultSimOptions& options) {
  if (faults.empty()) return 1.0;
  // Activation needs no propagation, so the per-fault scan is a pure read
  // of the good values — shard it over the pool (char, not vector<bool>,
  // so concurrent writes land on distinct bytes).
  std::vector<char> activated(faults.size(), 0);
  std::vector<Bits> values(n.num_nodes(), Bits::unknown());
  const int workers = std::min<int>(options.resolved_threads(),
                                    static_cast<int>(faults.size()));
  auto scan = [&](int i, int) {
    if (activated[i]) return;
    const Fault& f = faults[i];
    // The line the fault sits on (its driver for pin faults).
    const int line = f.fanin_index < 0
                         ? f.node
                         : n.node(f.node).fanins[f.fanin_index];
    const Bits v = values[line];
    const std::uint64_t opposite =
        f.stuck_at_one ? (~v.v & ~v.x) : (v.v & ~v.x);
    if (opposite != 0) activated[i] = 1;
  };
  for (const auto& block : blocks) {
    for (std::size_t i = 0; i < n.primary_inputs().size(); ++i)
      values[n.primary_inputs()[i]] =
          i < block.size() ? block[i] : Bits::unknown();
    simulate_frame(n, values);
    if (workers <= 1) {
      for (std::size_t i = 0; i < faults.size(); ++i) scan(static_cast<int>(i), 0);
    } else {
      util::ThreadPool::shared().run(static_cast<int>(faults.size()), workers,
                                     scan);
    }
  }
  const long hit = std::count(activated.begin(), activated.end(), 1);
  return static_cast<double>(hit) / static_cast<double>(faults.size());
}

}  // namespace tsyn::gl
