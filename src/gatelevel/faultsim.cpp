#include "gatelevel/faultsim.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <stdexcept>

namespace tsyn::gl {

FaultSimulator::FaultSimulator(const Netlist& n) : n_(n) {
  if (!n.flops().empty())
    throw std::runtime_error(
        "FaultSimulator is combinational; expand state as PI/PO first");
  topo_pos_.assign(n.num_nodes(), 0);
  const auto& topo = n.topo_order();
  for (std::size_t i = 0; i < topo.size(); ++i)
    topo_pos_[topo[i]] = static_cast<int>(i);
  is_po_.assign(n.num_nodes(), 0);
  for (int po : n.primary_outputs()) is_po_[po] = 1;
  good_.assign(n.num_nodes(), Bits::unknown());
  faulty_.assign(n.num_nodes(), Bits::unknown());
  stamp_.assign(n.num_nodes(), -1);
}

int FaultSimulator::run_block(const std::vector<Bits>& pi_values,
                              const std::vector<Fault>& faults,
                              std::vector<bool>& detected) {
  assert(pi_values.size() == n_.primary_inputs().size());
  detected.resize(faults.size(), false);

  // Good simulation.
  std::fill(good_.begin(), good_.end(), Bits::unknown());
  for (std::size_t i = 0; i < pi_values.size(); ++i)
    good_[n_.primary_inputs()[i]] = pi_values[i];
  simulate_frame(n_, good_);
  good_po_.clear();
  for (int po : n_.primary_outputs()) good_po_.push_back(good_[po]);

  const auto& fanouts = n_.fanouts();
  int newly_detected = 0;

  Bits fanin_vals[16];
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (detected[fi]) continue;
    const Fault& f = faults[fi];
    ++current_stamp_;

    auto value_of = [&](int id) -> Bits {
      return stamp_[id] == current_stamp_ ? faulty_[id] : good_[id];
    };
    auto set_faulty = [&](int id, Bits v) {
      faulty_[id] = v;
      stamp_[id] = current_stamp_;
    };

    // Inject.
    std::priority_queue<std::pair<int, int>,
                        std::vector<std::pair<int, int>>,
                        std::greater<>> pending;  // (topo pos, node)
    std::uint64_t diff_mask = 0;
    auto touch = [&](int id, Bits v) {
      const Bits old = value_of(id);
      if (old.v == v.v && old.x == v.x) return;
      set_faulty(id, v);
      if (is_po_[id])
        diff_mask |= (good_[id].v ^ v.v) & ~good_[id].x & ~v.x;
      for (int s : fanouts[id]) pending.push({topo_pos_[s], s});
    };

    const Bits stuck =
        f.stuck_at_one ? Bits::all1() : Bits::all0();
    if (f.fanin_index < 0) {
      touch(f.node, stuck);
    } else {
      // Recompute the gate with the faulted pin forced.
      const Node& g = n_.node(f.node);
      for (std::size_t i = 0; i < g.fanins.size(); ++i)
        fanin_vals[i] = static_cast<int>(i) == f.fanin_index
                            ? stuck
                            : value_of(g.fanins[i]);
      touch(f.node, eval_gate(g.type, fanin_vals,
                              static_cast<int>(g.fanins.size())));
    }

    // Event-driven propagation in topological order.
    while (!pending.empty()) {
      const auto [pos, id] = pending.top();
      pending.pop();
      (void)pos;  // queue key; duplicates re-evaluate to the same value
      const Node& g = n_.node(id);
      if (g.type == GateType::kInput) continue;
      for (std::size_t i = 0; i < g.fanins.size(); ++i) {
        Bits v = value_of(g.fanins[i]);
        if (f.fanin_index >= 0 && id == f.node &&
            static_cast<int>(i) == f.fanin_index)
          v = stuck;
        fanin_vals[i] = v;
      }
      touch(id, eval_gate(g.type, fanin_vals,
                          static_cast<int>(g.fanins.size())));
    }

    if (diff_mask != 0) {
      detected[fi] = true;
      ++newly_detected;
    }
  }
  return newly_detected;
}

void FaultSimulator::run_block_detail(const std::vector<Bits>& pi_values,
                                      const std::vector<Fault>& faults,
                                      std::vector<std::uint64_t>& lane_masks) {
  assert(pi_values.size() == n_.primary_inputs().size());
  lane_masks.assign(faults.size(), 0);

  std::fill(good_.begin(), good_.end(), Bits::unknown());
  for (std::size_t i = 0; i < pi_values.size(); ++i)
    good_[n_.primary_inputs()[i]] = pi_values[i];
  simulate_frame(n_, good_);
  good_po_.clear();
  for (int po : n_.primary_outputs()) good_po_.push_back(good_[po]);

  const auto& fanouts = n_.fanouts();
  Bits fanin_vals[16];
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    const Fault& f = faults[fi];
    ++current_stamp_;
    auto value_of = [&](int id) -> Bits {
      return stamp_[id] == current_stamp_ ? faulty_[id] : good_[id];
    };
    auto set_faulty = [&](int id, Bits v) {
      faulty_[id] = v;
      stamp_[id] = current_stamp_;
    };
    std::priority_queue<std::pair<int, int>,
                        std::vector<std::pair<int, int>>,
                        std::greater<>> pending;
    std::uint64_t diff_mask = 0;
    auto touch = [&](int id, Bits v) {
      const Bits old = value_of(id);
      if (old.v == v.v && old.x == v.x) return;
      set_faulty(id, v);
      if (is_po_[id])
        diff_mask |= (good_[id].v ^ v.v) & ~good_[id].x & ~v.x;
      for (int s : fanouts[id]) pending.push({topo_pos_[s], s});
    };
    const Bits stuck = f.stuck_at_one ? Bits::all1() : Bits::all0();
    if (f.fanin_index < 0) {
      touch(f.node, stuck);
    } else {
      const Node& g = n_.node(f.node);
      for (std::size_t i = 0; i < g.fanins.size(); ++i)
        fanin_vals[i] = static_cast<int>(i) == f.fanin_index
                            ? stuck
                            : value_of(g.fanins[i]);
      touch(f.node, eval_gate(g.type, fanin_vals,
                              static_cast<int>(g.fanins.size())));
    }
    while (!pending.empty()) {
      const auto [pos, id] = pending.top();
      pending.pop();
      (void)pos;
      const Node& g = n_.node(id);
      if (g.type == GateType::kInput) continue;
      for (std::size_t i = 0; i < g.fanins.size(); ++i) {
        Bits v = value_of(g.fanins[i]);
        if (f.fanin_index >= 0 && id == f.node &&
            static_cast<int>(i) == f.fanin_index)
          v = stuck;
        fanin_vals[i] = v;
      }
      touch(id, eval_gate(g.type, fanin_vals,
                          static_cast<int>(g.fanins.size())));
    }
    lane_masks[fi] = diff_mask;
  }
}

double fault_coverage(const Netlist& n,
                      const std::vector<std::vector<Bits>>& blocks,
                      const std::vector<Fault>& faults,
                      std::vector<bool>* detected_out) {
  FaultSimulator sim(n);
  std::vector<bool> detected(faults.size(), false);
  for (const auto& block : blocks) sim.run_block(block, faults, detected);
  const long hit = std::count(detected.begin(), detected.end(), true);
  if (detected_out) *detected_out = std::move(detected);
  return faults.empty() ? 1.0
                        : static_cast<double>(hit) /
                              static_cast<double>(faults.size());
}

namespace {

// Full-circuit frame simulation with one fault injected.
void simulate_frame_with_fault(const Netlist& n, const Fault& f,
                               std::vector<Bits>& values) {
  const Bits stuck = f.stuck_at_one ? Bits::all1() : Bits::all0();
  Bits fanin_vals[16];
  for (int id : n.topo_order()) {
    const Node& node = n.node(id);
    if (node.type != GateType::kInput && node.type != GateType::kDff) {
      for (std::size_t i = 0; i < node.fanins.size(); ++i) {
        Bits v = values[node.fanins[i]];
        if (f.fanin_index >= 0 && id == f.node &&
            static_cast<int>(i) == f.fanin_index)
          v = stuck;
        fanin_vals[i] = v;
      }
      values[id] = eval_gate(node.type, fanin_vals,
                             static_cast<int>(node.fanins.size()));
    }
    if (f.fanin_index < 0 && id == f.node) values[id] = stuck;
  }
}

}  // namespace

std::vector<bool> sequential_fault_sim(
    const Netlist& n, const std::vector<std::vector<Bits>>& input_frames,
    const std::vector<Fault>& faults) {
  // Good trace.
  const auto good = simulate_sequence(n, input_frames);

  std::vector<bool> detected(faults.size(), false);
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    const Fault& f = faults[fi];
    const Bits stuck = f.stuck_at_one ? Bits::all1() : Bits::all0();
    std::vector<Bits> state(n.flops().size(), Bits::unknown());
    for (std::size_t frame = 0; frame < input_frames.size() && !detected[fi];
         ++frame) {
      std::vector<Bits> values(n.num_nodes(), Bits::unknown());
      for (std::size_t i = 0; i < n.primary_inputs().size(); ++i)
        values[n.primary_inputs()[i]] = i < input_frames[frame].size()
                                            ? input_frames[frame][i]
                                            : Bits::unknown();
      for (std::size_t i = 0; i < n.flops().size(); ++i)
        values[n.flops()[i]] = state[i];
      // A stuck-at on a DFF output overrides its state.
      if (f.fanin_index < 0 && n.node(f.node).type == GateType::kDff)
        values[f.node] = stuck;
      simulate_frame_with_fault(n, f, values);
      for (std::size_t i = 0; i < n.flops().size(); ++i) {
        const int d = n.node(n.flops()[i]).fanins[0];
        state[i] = d >= 0 ? values[d] : Bits::unknown();
      }
      for (int po : n.primary_outputs()) {
        const Bits& g = good[frame][po];
        const Bits& b = values[po];
        if (((g.v ^ b.v) & ~g.x & ~b.x) != 0) {
          detected[fi] = true;
          break;
        }
      }
    }
  }
  return detected;
}

}  // namespace tsyn::gl
