#include "gatelevel/faultsim.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <thread>

#include "gatelevel/faultsim_wide.h"
#include "gatelevel/widebits.h"
#include "observe/scoap_attr.h"
#include "util/metrics.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace tsyn::gl {

namespace {

/// Items claimed per work-stealing grab. Fault propagations are cheap
/// (microseconds on small benches), so claiming one per atomic add is pure
/// contention; a chunk this size amortizes it while the tail imbalance
/// stays under a handful of propagations.
constexpr int kPpsfpStealChunk = 16;
/// Sequential faults cost a whole frame sweep each; smaller chunks keep
/// the tail short.
constexpr int kSeqStealChunk = 4;

}  // namespace

int FaultSimOptions::resolved_threads() const {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// ---------------------------------------------------------------------------
// FaultPropagator — the one propagation routine every path shares.
// ---------------------------------------------------------------------------

FaultPropagator::FaultPropagator(const Netlist& n)
    : n_(n), g_(&SimGraph::of(n)) {
  const int nn = g_->num_nodes();
  flags_.assign(nn, 0);
  const std::uint8_t* gf = g_->flags();
  for (int id = 0; id < nn; ++id)
    if (gf[id] & SimGraph::kFlagPo) flags_[id] |= 1;
  faulty_.assign(nn, Bits::unknown());
  stamp_.assign(nn, -1);
  sched_stamp_.assign(nn, -1);
  po_stamp_.assign(nn, -1);
  watch_stamp_.assign(nn, -1);
  lvl_stamp_.assign(g_->num_levels(), -1);
  lvl_lo_.assign(g_->num_levels(), 0);
  lvl_hi_.assign(g_->num_levels(), 0);
}

void FaultPropagator::set_watches(const std::vector<int>& nodes) {
  for (char& f : flags_) f &= ~2;
  for (int id : nodes)
    if (id >= 0) flags_[id] |= 2;
}

void FaultPropagator::begin(const std::vector<Bits>& good) {
  assert(good.size() == static_cast<std::size_t>(n_.num_nodes()));
  good_ = &good;
  if (current_stamp_ == std::numeric_limits<int>::max()) {
    std::fill(stamp_.begin(), stamp_.end(), -1);
    std::fill(sched_stamp_.begin(), sched_stamp_.end(), -1);
    std::fill(po_stamp_.begin(), po_stamp_.end(), -1);
    std::fill(watch_stamp_.begin(), watch_stamp_.end(), -1);
    std::fill(lvl_stamp_.begin(), lvl_stamp_.end(), -1);
    current_stamp_ = 0;
  }
  ++current_stamp_;
  min_lvl_ = g_->num_levels();
  max_lvl_ = -1;
  touched_pos_.clear();
  touched_watches_.clear();
}

void FaultPropagator::schedule_fanouts(int id) {
  // The SimGraph fanout CSR carries combinational edges only, so there is
  // no D-edge check here — state capture is the sequential engine's job.
  const std::int32_t* foff = g_->fanout_off();
  const std::int32_t* fo = g_->fanout();
  const std::int32_t* pos_of = g_->pos_of();
  const std::int32_t* level_of = g_->level_of();
  const std::int32_t end = foff[id + 1];
  for (std::int32_t k = foff[id]; k < end; ++k) {
    const int s = fo[k];
    if (sched_stamp_[s] == current_stamp_) continue;
    sched_stamp_[s] = current_stamp_;
    const int pos = pos_of[s];
    const int lvl = level_of[s];
    if (lvl_stamp_[lvl] != current_stamp_) {
      lvl_stamp_[lvl] = current_stamp_;
      lvl_lo_[lvl] = pos;
      lvl_hi_[lvl] = pos;
      if (lvl < min_lvl_) min_lvl_ = lvl;
      if (lvl > max_lvl_) max_lvl_ = lvl;
    } else {
      if (pos < lvl_lo_[lvl]) lvl_lo_[lvl] = pos;
      if (pos > lvl_hi_[lvl]) lvl_hi_[lvl] = pos;
    }
  }
}

void FaultPropagator::force(int id, Bits v) {
  const Bits old = value(id);
  if (old.v == v.v && old.x == v.x) return;
  faulty_[id] = v;
  stamp_[id] = current_stamp_;
  const char fl = flags_[id];
  if (fl & 3) {  // PO / watched bookkeeping, off the fast path
    if ((fl & 1) && po_stamp_[id] != current_stamp_) {
      po_stamp_[id] = current_stamp_;
      touched_pos_.push_back(id);
    }
    if ((fl & 2) && watch_stamp_[id] != current_stamp_) {
      watch_stamp_[id] = current_stamp_;
      touched_watches_.push_back(id);
    }
  }
  schedule_fanouts(id);
}

void FaultPropagator::inject(const Fault& f) {
  const Bits stuck = f.stuck_at_one ? Bits::all1() : Bits::all0();
  if (f.fanin_index < 0) {
    force(f.node, stuck);
    return;
  }
  const GateType t = g_->type(f.node);
  if (t == GateType::kDff) return;  // sampled at state capture
  const std::int32_t* fin = g_->fanin();
  const std::int32_t lo = g_->fanin_off()[f.node];
  const int nf = g_->num_fanins(f.node);
  Bits fanin_vals[16];
  for (int i = 0; i < nf; ++i)
    fanin_vals[i] = i == f.fanin_index ? stuck : value(fin[lo + i]);
  force(f.node, eval_gate(t, fanin_vals, nf));
}

void FaultPropagator::drain(const Fault& f) {
  const Bits stuck = f.stuck_at_one ? Bits::all1() : Bits::all0();
  Bits fanin_vals[16];
  const std::int32_t* order = g_->order().data();
  const std::int32_t* foff = g_->fanin_off();
  const std::int32_t* fin = g_->fanin();
  const std::uint8_t* types = g_->types();
  // Fanouts sit at strictly deeper levels, so scheduling during the sweep
  // only ever stamps levels ahead of the cursor (max_lvl_ may grow, the
  // current level's span cannot) — one ascending pass over the stamped
  // levels suffices, and untouched levels cost one compare each.
  for (int lvl = min_lvl_; lvl <= max_lvl_; ++lvl) {
    if (lvl_stamp_[lvl] != current_stamp_) continue;
    const int hi = lvl_hi_[lvl];
    for (int pos = lvl_lo_[lvl]; pos <= hi; ++pos) {
      const int id = order[pos];
      if (sched_stamp_[id] != current_stamp_) continue;
      ++events_;
      // Only combinational gates ever get scheduled (the fanout CSR
      // excludes DFF targets and sources are never fanout targets).
      // An output-faulted node stays pinned at its stuck value even when
      // its fanins diverge (possible through flip-flop feedback in the
      // sequential engine); inject() already forced it.
      if (f.fanin_index < 0 && id == f.node) continue;
      const std::int32_t lo = foff[id];
      const int nf = foff[id + 1] - lo;
      for (int i = 0; i < nf; ++i) {
        Bits v = value(fin[lo + i]);
        if (f.fanin_index >= 0 && id == f.node && i == f.fanin_index)
          v = stuck;
        fanin_vals[i] = v;
      }
      force(id, eval_gate(static_cast<GateType>(types[id]), fanin_vals, nf));
    }
  }
}

std::uint64_t FaultPropagator::po_diff_mask() const {
  std::uint64_t mask = 0;
  for (int id : touched_pos_) {
    const Bits& g = (*good_)[id];
    const Bits& b = faulty_[id];
    mask |= (g.v ^ b.v) & ~g.x & ~b.x;
  }
  return mask;
}

std::uint64_t FaultPropagator::propagate(const Fault& f,
                                         const std::vector<Bits>& good) {
  ++faults_;
  const long before = events_;
  begin(good);
  inject(f);
  drain(f);
  last_propagate_events_ = events_ - before;
  return po_diff_mask();
}

// ---------------------------------------------------------------------------
// FaultSimulator — PPSFP with the fault list spread over the worker pool.
// ---------------------------------------------------------------------------

FaultSimulator::FaultSimulator(const Netlist& n,
                               const FaultSimOptions& options)
    : n_(n), options_(options) {
  if (!n.flops().empty())
    throw std::runtime_error(
        "FaultSimulator is combinational; expand state as PI/PO first");
  SimGraph::of(n);  // build the lowered form before any worker reads it
  good_.assign(n.num_nodes(), Bits::unknown());
}

void FaultSimulator::simulate_good(const std::vector<Bits>& pi_values) {
  assert(pi_values.size() == n_.primary_inputs().size());
  std::fill(good_.begin(), good_.end(), Bits::unknown());
  for (std::size_t i = 0; i < pi_values.size(); ++i)
    good_[n_.primary_inputs()[i]] = pi_values[i];
  simulate_frame(n_, good_);
  good_po_.clear();
  for (int po : n_.primary_outputs()) good_po_.push_back(good_[po]);
}

void FaultSimulator::propagate_shard(const std::vector<Fault>& faults,
                                     const std::vector<bool>* skip,
                                     std::vector<std::uint64_t>& masks) {
  const int count = static_cast<int>(faults.size());
  masks.assign(faults.size(), 0);
  if (count == 0) return;
  const int workers = std::min(options_.resolved_threads(), count);
  while (static_cast<int>(propagators_.size()) < std::max(workers, 1))
    propagators_.emplace_back(n_);

  const bool ledger_on = observe::ledger_enabled();
  auto job = [&](int i, int slot) {
    if (skip && (*skip)[i]) return;
    FaultPropagator& p = propagators_[slot];
    masks[i] = p.propagate(faults[i], good_);
    if (ledger_on)
      observe::record_sim_effort(observe::make_fault_key(faults[i]),
                                 p.last_propagate_events());
  };
  if (workers <= 1) {
    for (int i = 0; i < count; ++i) job(i, 0);
  } else {
    util::ThreadPool::shared().run_chunked(count, workers, kPpsfpStealChunk,
                                           job);
  }

  // Publish the shard's work into the registry off the hot path — worker
  // counters are stable once run_chunked() has returned. Imbalance is the
  // largest slot's share over the ideal equal share (1.0 = perfectly
  // balanced, `workers` = one slot did everything).
  static util::Counter& m_events =
      util::metrics().counter("faultsim.ppsfp.events");
  static util::Counter& m_sims =
      util::metrics().counter("faultsim.ppsfp.faults_simulated");
  long events = 0, done = 0, biggest = 0;
  for (FaultPropagator& p : propagators_) {
    events += p.events_processed();
    done += p.faults_propagated();
    biggest = std::max(biggest, p.faults_propagated());
    p.reset_work_counters();
  }
  m_events.add(events);
  m_sims.add(done);
  if (workers > 1 && done > 0)
    util::metrics()
        .gauge("faultsim.ppsfp.shard_imbalance")
        .set(static_cast<double>(biggest) * workers /
             static_cast<double>(done));
}

int FaultSimulator::run_block(const std::vector<Bits>& pi_values,
                              const std::vector<Fault>& faults,
                              std::vector<bool>& detected) {
  detected.resize(faults.size(), false);
  simulate_good(pi_values);
  propagate_shard(faults, &detected, masks_);
  const long pattern_base = 64 * blocks_run_++;
  const bool ledger_on = observe::ledger_enabled();
  int newly_detected = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (detected[i] || masks_[i] == 0) continue;
    detected[i] = true;
    ++newly_detected;
    if (ledger_on)
      observe::record_detected(observe::make_fault_key(faults[i]),
                               pattern_base + std::countr_zero(masks_[i]));
  }
  static util::Counter& m_blocks =
      util::metrics().counter("faultsim.ppsfp.blocks");
  static util::Counter& m_detected =
      util::metrics().counter("faultsim.ppsfp.faults_detected");
  m_blocks.add();
  m_detected.add(newly_detected);
  static util::Progress& p_patterns = util::progress("sim.patterns");
  p_patterns.add(64);
  return newly_detected;
}

void FaultSimulator::run_block_detail(const std::vector<Bits>& pi_values,
                                      const std::vector<Fault>& faults,
                                      std::vector<std::uint64_t>& lane_masks) {
  simulate_good(pi_values);
  propagate_shard(faults, nullptr, lane_masks);
  static util::Progress& p_patterns = util::progress("sim.patterns");
  p_patterns.add(64);
}

// ---------------------------------------------------------------------------
// Wide-lane engine: W×64 patterns per good-machine pass and per fault
// propagation, value rows stored SoA (W value words then W x-words per
// node) so the kernels stream whole rows through the chosen SIMD backend.
// The engine itself lives in faultsim_wide.h, instantiated per ISA in
// dedicated TUs; only the runtime dispatch is here.
// ---------------------------------------------------------------------------

namespace {

using wide_detail::wide_campaign;

/// Per-width backend dispatch: the widest runtime-detected backend whose
/// kernel TU is in the build (TSYN_WIDE_AVX2 / TSYN_WIDE_AVX512, see
/// CMakeLists.txt), demoted to scalar by TSYN_FORCE_SCALAR
/// (active_simd_backend). The ISA-specific entry points live in TUs
/// compiled with the matching -m flags; this TU stays portable, so the
/// binary runs on any x86-64 and still uses AVX where the CPU has it.
template <int W>
void run_wide_campaign(const Netlist& n,
                       const std::vector<std::vector<Bits>>& blocks,
                       const std::vector<Fault>& faults,
                       const FaultSimOptions& options,
                       std::vector<bool>* detected,
                       std::vector<std::uint64_t>* matrix) {
  const SimdBackend be = active_simd_backend();
  (void)be;
#if defined(TSYN_WIDE_AVX512)
  if constexpr (W == 8) {
    if (be == SimdBackend::kAvx512) {
      wide_detail::wide_campaign_avx512_w8(n, blocks, faults, options,
                                           detected, matrix);
      return;
    }
  }
#endif
#if defined(TSYN_WIDE_AVX2)
  if (be == SimdBackend::kAvx2 || be == SimdBackend::kAvx512) {
    if constexpr (W == 4)
      wide_detail::wide_campaign_avx2_w4(n, blocks, faults, options, detected,
                                         matrix);
    else
      wide_detail::wide_campaign_avx2_w8(n, blocks, faults, options, detected,
                                         matrix);
    return;
  }
#endif
  wide_campaign<W, ScalarWords<W>>(n, blocks, faults, options, detected,
                                   matrix);
}

}  // namespace

double fault_coverage(const Netlist& n,
                      const std::vector<std::vector<Bits>>& blocks,
                      const std::vector<Fault>& faults,
                      std::vector<bool>* detected_out,
                      const FaultSimOptions& options) {
  TSYN_SPAN("gl.faultsim.ppsfp");
  if (observe::ledger_enabled())
    observe::record_universe(static_cast<long>(faults.size()));
  util::progress("sim.patterns")
      .add_total(64 * static_cast<std::int64_t>(blocks.size()));
  std::vector<bool> detected(faults.size(), false);
  const int lanes = options.resolved_lanes();
  if (lanes != 64 && !blocks.empty() && !faults.empty()) {
    if (lanes == 256)
      run_wide_campaign<4>(n, blocks, faults, options, &detected, nullptr);
    else
      run_wide_campaign<8>(n, blocks, faults, options, &detected, nullptr);
  } else {
    FaultSimulator sim(n, options);
    for (const auto& block : blocks) sim.run_block(block, faults, detected);
  }
  const long hit = std::count(detected.begin(), detected.end(), true);
  if (detected_out) *detected_out = std::move(detected);
  return faults.empty() ? 1.0
                        : static_cast<double>(hit) /
                              static_cast<double>(faults.size());
}

void detection_masks(const Netlist& n,
                     const std::vector<std::vector<Bits>>& blocks,
                     const std::vector<Fault>& faults,
                     std::vector<std::uint64_t>& masks,
                     const FaultSimOptions& options) {
  TSYN_SPAN("gl.faultsim.matrix");
  const std::size_t count = faults.size();
  const std::size_t nb = blocks.size();
  masks.assign(count * nb, 0);
  if (count == 0 || nb == 0) return;
  util::progress("sim.patterns").add_total(64 * static_cast<std::int64_t>(nb));
  const int lanes = options.resolved_lanes();
  if (lanes == 64) {
    FaultSimulator sim(n, options);
    std::vector<std::uint64_t> row;
    for (std::size_t b = 0; b < nb; ++b) {
      sim.run_block_detail(blocks[b], faults, row);
      for (std::size_t i = 0; i < count; ++i) masks[i * nb + b] = row[i];
    }
    return;
  }
  if (lanes == 256)
    run_wide_campaign<4>(n, blocks, faults, options, nullptr, &masks);
  else
    run_wide_campaign<8>(n, blocks, faults, options, nullptr, &masks);
}

// ---------------------------------------------------------------------------
// Sequential fault simulation.
// ---------------------------------------------------------------------------

std::vector<bool> sequential_fault_sim(
    const Netlist& n, const std::vector<std::vector<Bits>>& input_frames,
    const std::vector<Fault>& faults, const FaultSimOptions& options) {
  TSYN_SPAN("gl.faultsim.seq");
  const bool ledger_on = observe::ledger_enabled();
  if (ledger_on) observe::record_universe(static_cast<long>(faults.size()));
  static util::Progress& p_seq = util::progress("sim.seq.faults");
  p_seq.add_total(static_cast<std::int64_t>(faults.size()));
  // Good trace, simulated once and shared (read-only) by every worker.
  const auto good = simulate_sequence(n, input_frames);
  const int count = static_cast<int>(faults.size());
  std::vector<bool> detected(faults.size(), false);
  if (count == 0 || input_frames.empty()) return detected;
  SimGraph::of(n);  // build the lowered form before any worker reads it

  const auto& flops = n.flops();
  const int workers = std::min(options.resolved_threads(), count);

  // D-pin watch set: the faulty next-state of a flip-flop can differ from
  // the good trace only if its D node was touched this frame, so state
  // capture walks the touched watches — O(divergence), not O(flops).
  // Flip-flops may share a D node (CSR map below); unconnected (d < 0)
  // flops stay unknown in both machines and never diverge.
  std::vector<int> d_count(n.num_nodes(), 0);
  std::vector<int> watch_nodes;
  for (std::size_t i = 0; i < flops.size(); ++i) {
    const int d = n.node(flops[i]).fanins[0];
    if (d < 0) continue;
    if (d_count[d]++ == 0) watch_nodes.push_back(d);
  }
  std::vector<int> fd_off(n.num_nodes() + 1, 0);
  for (int id = 0; id < n.num_nodes(); ++id)
    fd_off[id + 1] = fd_off[id] + d_count[id];
  std::vector<int> fd_flat(fd_off.back());
  std::vector<int> fd_fill = fd_off;
  for (std::size_t i = 0; i < flops.size(); ++i) {
    const int d = n.node(flops[i]).fanins[0];
    if (d >= 0) fd_flat[fd_fill[d]++] = static_cast<int>(i);
  }

  // Per-worker scratch: propagator plus the faulty flip-flop state (sparse:
  // state[i] is meaningful only while i is in div_list). All of it is
  // reused across the worker's whole fault shard — no per-frame or
  // per-fault allocation.
  struct Scratch {
    FaultPropagator prop;
    std::vector<Bits> state;
    std::vector<int> div_list, new_div;
    /// Slot-private effort counters, merged into the registry at the end.
    long faults_done = 0, frames_done = 0, detected = 0, dropped_mid = 0;
    Scratch(const Netlist& net, const std::vector<int>& watches)
        : prop(net), state(net.flops().size()) {
      prop.set_watches(watches);
    }
  };
  std::vector<Scratch> scratch;
  scratch.reserve(static_cast<std::size_t>(std::max(workers, 1)));
  for (int w = 0; w < std::max(workers, 1); ++w)
    scratch.emplace_back(n, watch_nodes);

  util::Histogram& frames_to_detect =
      util::metrics().histogram("faultsim.seq.frames_to_detect");
  std::vector<char> det(faults.size(), 0);
  auto simulate_fault = [&](int fi, int slot) {
    const Fault& f = faults[fi];
    Scratch& s = scratch[slot];
    ++s.faults_done;
    const long events_before = s.prop.events_processed();
    // FFs start unknown in both machines: no initial divergence.
    s.div_list.clear();
    for (std::size_t frame = 0; frame < input_frames.size(); ++frame) {
      ++s.frames_done;
      s.prop.begin(good[frame]);
      // Seed: flip-flops whose faulty state differs from the good trace,
      // then the fault site itself (a stuck DFF output overrides its
      // state; DFF D-pin faults are sampled at capture below, matching
      // the full-resim reference).
      for (int i : s.div_list) s.prop.force(flops[i], s.state[i]);
      s.prop.inject(f);
      s.prop.drain(f);
      if (s.prop.po_diff_mask() != 0) {
        det[fi] = 1;  // detected: drop the fault mid-sequence
        ++s.detected;
        if (frame + 1 < input_frames.size()) ++s.dropped_mid;
        frames_to_detect.observe(static_cast<std::int64_t>(frame) + 1);
        if (ledger_on) {
          const observe::FaultKey key = observe::make_fault_key(f);
          observe::record_seq_detected(key, static_cast<long>(frame) + 1);
          observe::record_sim_effort(
              key, s.prop.events_processed() - events_before);
        }
        p_seq.add(1);
        return;
      }
      // Capture the next frame's state, keeping only the divergence.
      s.new_div.clear();
      for (int d : s.prop.touched_watches()) {
        const Bits fv = s.prop.value(d);
        const Bits& gv = good[frame][d];
        if (fv.v == gv.v && fv.x == gv.x) continue;
        const int end = fd_off[d + 1];
        for (int k = fd_off[d]; k < end; ++k) {
          const int i = fd_flat[k];
          s.new_div.push_back(i);
          s.state[i] = fv;
        }
      }
      s.div_list.swap(s.new_div);
    }
    if (ledger_on)
      observe::record_sim_effort(observe::make_fault_key(f),
                                 s.prop.events_processed() - events_before);
    p_seq.add(1);
  };
  if (workers <= 1) {
    for (int i = 0; i < count; ++i) simulate_fault(i, 0);
  } else {
    util::ThreadPool::shared().run_chunked(count, workers, kSeqStealChunk,
                                           simulate_fault);
  }

  // Merge the slot-private effort counters (stable after the pool returns).
  static util::Counter& m_faults =
      util::metrics().counter("faultsim.seq.faults_simulated");
  static util::Counter& m_frames =
      util::metrics().counter("faultsim.seq.frames_simulated");
  static util::Counter& m_events =
      util::metrics().counter("faultsim.seq.events");
  static util::Counter& m_detected =
      util::metrics().counter("faultsim.seq.faults_detected");
  static util::Counter& m_dropped =
      util::metrics().counter("faultsim.seq.faults_dropped_midseq");
  long done = 0, biggest = 0;
  for (Scratch& s : scratch) {
    m_frames.add(s.frames_done);
    m_events.add(s.prop.events_processed());
    m_detected.add(s.detected);
    m_dropped.add(s.dropped_mid);
    done += s.faults_done;
    biggest = std::max(biggest, s.faults_done);
  }
  m_faults.add(done);
  if (workers > 1 && done > 0)
    util::metrics()
        .gauge("faultsim.seq.shard_imbalance")
        .set(static_cast<double>(biggest) * workers /
             static_cast<double>(done));

  for (std::size_t i = 0; i < faults.size(); ++i)
    detected[i] = det[i] != 0;
  return detected;
}

namespace {

// Full-circuit frame simulation with one fault injected.
void simulate_frame_with_fault(const Netlist& n, const Fault& f,
                               std::vector<Bits>& values) {
  const Bits stuck = f.stuck_at_one ? Bits::all1() : Bits::all0();
  Bits fanin_vals[16];
  for (int id : n.topo_order()) {
    const Node& node = n.node(id);
    if (node.type != GateType::kInput && node.type != GateType::kDff) {
      for (std::size_t i = 0; i < node.fanins.size(); ++i) {
        Bits v = values[node.fanins[i]];
        if (f.fanin_index >= 0 && id == f.node &&
            static_cast<int>(i) == f.fanin_index)
          v = stuck;
        fanin_vals[i] = v;
      }
      values[id] = eval_gate(node.type, fanin_vals,
                             static_cast<int>(node.fanins.size()));
    }
    if (f.fanin_index < 0 && id == f.node) values[id] = stuck;
  }
}

}  // namespace

std::vector<bool> sequential_fault_sim_full_resim(
    const Netlist& n, const std::vector<std::vector<Bits>>& input_frames,
    const std::vector<Fault>& faults) {
  // Good trace.
  const auto good = simulate_sequence(n, input_frames);

  std::vector<bool> detected(faults.size(), false);
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    const Fault& f = faults[fi];
    const Bits stuck = f.stuck_at_one ? Bits::all1() : Bits::all0();
    std::vector<Bits> state(n.flops().size(), Bits::unknown());
    for (std::size_t frame = 0; frame < input_frames.size() && !detected[fi];
         ++frame) {
      std::vector<Bits> values(n.num_nodes(), Bits::unknown());
      for (std::size_t i = 0; i < n.primary_inputs().size(); ++i)
        values[n.primary_inputs()[i]] = i < input_frames[frame].size()
                                            ? input_frames[frame][i]
                                            : Bits::unknown();
      for (std::size_t i = 0; i < n.flops().size(); ++i)
        values[n.flops()[i]] = state[i];
      // A stuck-at on a DFF output overrides its state.
      if (f.fanin_index < 0 && n.node(f.node).type == GateType::kDff)
        values[f.node] = stuck;
      simulate_frame_with_fault(n, f, values);
      for (std::size_t i = 0; i < n.flops().size(); ++i) {
        const int d = n.node(n.flops()[i]).fanins[0];
        state[i] = d >= 0 ? values[d] : Bits::unknown();
      }
      for (int po : n.primary_outputs()) {
        const Bits& g = good[frame][po];
        const Bits& b = values[po];
        if (((g.v ^ b.v) & ~g.x & ~b.x) != 0) {
          detected[fi] = true;
          break;
        }
      }
    }
  }
  return detected;
}

}  // namespace tsyn::gl
