// Compiled, levelized structure-of-arrays simulation form of a Netlist.
//
// `gl::Netlist` is the construction substrate: per-node heap fanin
// vectors, names, lazy caches — convenient to build and edit, hostile to
// simulate (every gate evaluation chases two or three pointers). SimGraph
// is the compiled form the hot paths run on: lowered once per netlist,
// node ids preserved, everything flattened into contiguous arrays —
//
//  - type[] / fanin_off[] / fanin[]: gate kind plus a flat CSR fanin arena
//    (one indexed load per pin instead of a vector indirection);
//  - order[] / pos_of[] / level_of[] / level_off[]: a levelized
//    topological order (sources at level 0, each gate one past its
//    deepest fanin) with per-level spans, so event sweeps can skip whole
//    untouched levels;
//  - fanout_off[] / fanout[]: CSR fanouts over combinational edges only
//    (DFF D-edges are capture boundaries, never propagation targets);
//  - pis / pos / ffs and flags[]: dense role maps shared by every engine.
//
// Lowering is cached on the Netlist (SimGraph::of) and invalidated by
// structural edits, so callers holding a mutable Netlist keep their
// existing entry points: simulate_frame, FaultPropagator, and the PPSFP
// and sequential engines all lower-and-cache internally. Contract: the
// cache is built on the calling thread — entry points that shard work
// call SimGraph::of (or construct their propagators) before fanning out,
// exactly like the Netlist's own lazy topo/fanout caches.
#pragma once

#include <cstdint>
#include <vector>

#include "gatelevel/netlist.h"

namespace tsyn::gl {

class SimGraph {
 public:
  /// Per-node role flags (flags()[id]): primary output / D flip-flop.
  static constexpr std::uint8_t kFlagPo = 1;
  static constexpr std::uint8_t kFlagDff = 4;

  /// Lowers `n` into a fresh SimGraph. O(nodes + edges); throws on
  /// combinational cycles (via Netlist::topo_order).
  static SimGraph lower(const Netlist& n);

  /// Lower-and-cache: returns the SimGraph for `n`, building it on first
  /// use and after any structural edit. NOT thread-safe on the building
  /// call — warm it on the calling thread before sharding work, like
  /// Netlist::topo_order().
  static const SimGraph& of(const Netlist& n);

  int num_nodes() const { return static_cast<int>(type_.size()); }
  int num_levels() const { return static_cast<int>(level_off_.size()) - 1; }

  GateType type(int id) const { return static_cast<GateType>(type_[id]); }
  const std::uint8_t* types() const { return type_.data(); }

  /// Flat fanin arena: pins of node `id` are fanin()[fanin_off()[id]]
  /// .. fanin()[fanin_off()[id+1]). Unconnected DFF D-pins are -1.
  const std::int32_t* fanin_off() const { return fanin_off_.data(); }
  const std::int32_t* fanin() const { return fanin_.data(); }
  int num_fanins(int id) const { return fanin_off_[id + 1] - fanin_off_[id]; }

  /// Levelized topological order over ALL nodes (sources first). Any
  /// prefix-respecting evaluation of it is a valid simulation schedule.
  const std::vector<std::int32_t>& order() const { return order_; }
  /// order() position of node `id`.
  const std::int32_t* pos_of() const { return pos_of_.data(); }
  /// Level of node `id` (sources 0, gates 1 + max fanin level).
  const std::int32_t* level_of() const { return level_of_.data(); }
  /// Level L occupies order() positions [level_off()[L], level_off()[L+1]).
  const std::int32_t* level_off() const { return level_off_.data(); }

  /// CSR fanouts over combinational edges (DFF targets excluded — state
  /// capture is the engines' job). Every target sits at a strictly deeper
  /// level than its source, which is what lets event sweeps walk levels
  /// monotonically.
  const std::int32_t* fanout_off() const { return fanout_off_.data(); }
  const std::int32_t* fanout() const { return fanout_.data(); }

  const std::uint8_t* flags() const { return flags_.data(); }

  /// Dense role index maps (same order as the Netlist's lists).
  const std::vector<std::int32_t>& pis() const { return pis_; }
  const std::vector<std::int32_t>& pos() const { return pos_; }
  const std::vector<std::int32_t>& ffs() const { return ffs_; }

 private:
  std::vector<std::uint8_t> type_;
  std::vector<std::int32_t> fanin_off_, fanin_;
  std::vector<std::int32_t> order_, pos_of_, level_of_, level_off_;
  std::vector<std::int32_t> fanout_off_, fanout_;
  std::vector<std::uint8_t> flags_;
  std::vector<std::int32_t> pis_, pos_, ffs_;
};

}  // namespace tsyn::gl
