#include "gatelevel/netlist.h"

#include <cassert>
#include <deque>
#include <set>
#include <stdexcept>

#include "gatelevel/simgraph.h"

namespace tsyn::gl {

std::string to_string(GateType t) {
  switch (t) {
    case GateType::kInput: return "input";
    case GateType::kConst0: return "const0";
    case GateType::kConst1: return "const1";
    case GateType::kBuf: return "buf";
    case GateType::kNot: return "not";
    case GateType::kAnd: return "and";
    case GateType::kOr: return "or";
    case GateType::kNand: return "nand";
    case GateType::kNor: return "nor";
    case GateType::kXor: return "xor";
    case GateType::kXnor: return "xnor";
    case GateType::kMux: return "mux";
    case GateType::kDff: return "dff";
  }
  return "?";
}

namespace {

int expected_arity(GateType t) {
  switch (t) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return 0;
    case GateType::kBuf:
    case GateType::kNot:
    case GateType::kDff:
      return 1;
    case GateType::kXor:
    case GateType::kXnor:
      return 2;
    case GateType::kMux:
      return 3;
    case GateType::kAnd:
    case GateType::kOr:
    case GateType::kNand:
    case GateType::kNor:
      return -1;  // 2+
  }
  return -1;
}

}  // namespace

std::string Netlist::unique_name(const std::string& name) {
  if (name.empty()) return name;
  auto [it, fresh] = name_uses_.try_emplace(name, 0);
  if (fresh) return name;
  // Probe "<name>#k" until free; explicitly inserted "<name>#k" nodes
  // occupy their slot in the same map, so the loop cannot re-issue them.
  std::string candidate;
  do {
    candidate = name + "#" + std::to_string(++it->second);
  } while (!name_uses_.try_emplace(candidate, 0).second);
  return candidate;
}

void Netlist::reserve_nodes(int expected_nodes) {
  if (expected_nodes <= num_nodes()) return;
  nodes_.reserve(static_cast<std::size_t>(expected_nodes));
  // Most nodes carry a distinct name; sizing the hash table with them
  // avoids rehashing mid-construction.
  name_uses_.reserve(static_cast<std::size_t>(expected_nodes));
}

int Netlist::add_input(const std::string& name) {
  invalidate_caches();
  nodes_.push_back({GateType::kInput, {}, unique_name(name)});
  inputs_.push_back(num_nodes() - 1);
  return num_nodes() - 1;
}

int Netlist::add_const(bool value) {
  invalidate_caches();
  nodes_.push_back({value ? GateType::kConst1 : GateType::kConst0, {}, ""});
  return num_nodes() - 1;
}

int Netlist::add_gate(GateType type, const std::vector<int>& fanins,
                      const std::string& name) {
  const int arity = expected_arity(type);
  if (arity >= 0 && static_cast<int>(fanins.size()) != arity)
    throw std::runtime_error("gate arity mismatch for " + to_string(type));
  if (arity < 0 && fanins.size() < 2)
    throw std::runtime_error("n-ary gate needs >= 2 fanins");
  for (int f : fanins)
    if (f < 0 || f >= num_nodes())
      throw std::runtime_error("bad fanin id");

  // Constant folding: tied inputs would otherwise create structurally
  // untestable faults that real synthesis removes.
  auto c0 = [&](int f) { return nodes_[f].type == GateType::kConst0; };
  auto c1 = [&](int f) { return nodes_[f].type == GateType::kConst1; };
  auto constant = [&](bool v) { return add_const(v); };
  switch (type) {
    case GateType::kNot:
      if (c0(fanins[0])) return constant(true);
      if (c1(fanins[0])) return constant(false);
      break;
    case GateType::kAnd:
    case GateType::kNand: {
      std::vector<int> live;
      for (int f : fanins) {
        if (c0(f)) return constant(type == GateType::kNand);
        if (!c1(f)) live.push_back(f);
      }
      if (live.empty()) return constant(type == GateType::kAnd);
      if (live.size() == 1)
        return type == GateType::kAnd
                   ? live[0]
                   : add_gate(GateType::kNot, {live[0]}, name);
      if (live.size() < fanins.size())
        return add_gate(type, live, name);
      break;
    }
    case GateType::kOr:
    case GateType::kNor: {
      std::vector<int> live;
      for (int f : fanins) {
        if (c1(f)) return constant(type == GateType::kOr);
        if (!c0(f)) live.push_back(f);
      }
      if (live.empty()) return constant(type == GateType::kNor);
      if (live.size() == 1)
        return type == GateType::kOr
                   ? live[0]
                   : add_gate(GateType::kNot, {live[0]}, name);
      if (live.size() < fanins.size())
        return add_gate(type, live, name);
      break;
    }
    case GateType::kXor:
      if (c0(fanins[0])) return fanins[1];
      if (c0(fanins[1])) return fanins[0];
      if (c1(fanins[0])) return add_gate(GateType::kNot, {fanins[1]}, name);
      if (c1(fanins[1])) return add_gate(GateType::kNot, {fanins[0]}, name);
      break;
    case GateType::kXnor:
      if (c1(fanins[0])) return fanins[1];
      if (c1(fanins[1])) return fanins[0];
      if (c0(fanins[0])) return add_gate(GateType::kNot, {fanins[1]}, name);
      if (c0(fanins[1])) return add_gate(GateType::kNot, {fanins[0]}, name);
      break;
    case GateType::kMux:
      // fanins = {sel, a, b}: sel ? b : a.
      if (c0(fanins[0])) return fanins[1];
      if (c1(fanins[0])) return fanins[2];
      if (fanins[1] == fanins[2]) return fanins[1];
      break;
    default:
      break;
  }

  return add_gate_raw(type, fanins, name);
}

int Netlist::add_gate_raw(GateType type, const std::vector<int>& fanins,
                          const std::string& name) {
  const int arity = expected_arity(type);
  if (arity >= 0 && static_cast<int>(fanins.size()) != arity)
    throw std::runtime_error("gate arity mismatch for " + to_string(type));
  if (arity < 0 && fanins.size() < 2)
    throw std::runtime_error("n-ary gate needs >= 2 fanins");
  for (int f : fanins)
    if (f < 0 || f >= num_nodes())
      throw std::runtime_error("bad fanin id");
  invalidate_caches();
  nodes_.push_back({type, fanins, unique_name(name)});
  return num_nodes() - 1;
}

int Netlist::add_dff(int d_fanin, const std::string& name) {
  invalidate_caches();
  nodes_.push_back({GateType::kDff, {d_fanin}, unique_name(name)});
  flops_.push_back(num_nodes() - 1);
  return num_nodes() - 1;
}

void Netlist::set_dff_input(int dff_node, int d_fanin) {
  if (nodes_.at(dff_node).type != GateType::kDff)
    throw std::runtime_error("set_dff_input on non-DFF");
  if (d_fanin < 0 || d_fanin >= num_nodes())
    throw std::runtime_error("bad D fanin");
  invalidate_caches();
  nodes_[dff_node].fanins[0] = d_fanin;
}

void Netlist::mark_output(int node) {
  if (node < 0 || node >= num_nodes())
    throw std::runtime_error("bad output node");
  outputs_.push_back(node);
}

void Netlist::invalidate_caches() {
  caches_valid_ = false;
  lowered_.reset();  // the SimGraph mirrors the structure; rebuild lazily
}

const std::vector<int>& Netlist::topo_order() const {
  if (!caches_valid_) {
    // Kahn over combinational edges only (DFF D-edges are cut).
    std::vector<int> in_deg(num_nodes(), 0);
    fanouts_.assign(num_nodes(), {});
    for (int n = 0; n < num_nodes(); ++n) {
      if (nodes_[n].type == GateType::kDff) {
        if (nodes_[n].fanins[0] >= 0)
          fanouts_[nodes_[n].fanins[0]].push_back(n);  // recorded, not walked
        continue;
      }
      for (int f : nodes_[n].fanins) {
        ++in_deg[n];
        fanouts_[f].push_back(n);
      }
    }
    topo_.clear();
    std::deque<int> ready;
    for (int n = 0; n < num_nodes(); ++n)
      if (in_deg[n] == 0) ready.push_back(n);
    while (!ready.empty()) {
      const int n = ready.front();
      ready.pop_front();
      topo_.push_back(n);
      for (int s : fanouts_[n]) {
        if (nodes_[s].type == GateType::kDff) continue;
        if (--in_deg[s] == 0) ready.push_back(s);
      }
    }
    if (static_cast<int>(topo_.size()) != num_nodes())
      throw std::runtime_error("combinational cycle in netlist");
    caches_valid_ = true;
  }
  return topo_;
}

const std::vector<std::vector<int>>& Netlist::fanouts() const {
  topo_order();
  return fanouts_;
}

int Netlist::gate_count() const {
  int count = 0;
  for (const Node& n : nodes_) {
    switch (n.type) {
      case GateType::kInput:
      case GateType::kConst0:
      case GateType::kConst1:
      case GateType::kBuf:
        break;
      default:
        ++count;
    }
  }
  return count;
}

void Netlist::validate() const {
  for (const Node& n : nodes_) {
    const int arity = expected_arity(n.type);
    if (arity >= 0 && static_cast<int>(n.fanins.size()) != arity)
      throw std::runtime_error("arity violation on " + to_string(n.type));
    for (int f : n.fanins)
      if (f < 0 || f >= num_nodes())
        throw std::runtime_error("dangling fanin");
  }
#ifndef NDEBUG
  {
    // Non-empty names must be unique — provenance and reports key on them.
    std::set<std::string> seen;
    for (const Node& n : nodes_)
      assert(n.name.empty() || seen.insert(n.name).second);
  }
#endif
  topo_order();  // throws on combinational cycles
}

void simulate_frame(const Netlist& n, std::vector<Bits>& values) {
  assert(values.size() == static_cast<std::size_t>(n.num_nodes()));
  // Runs on the compiled SoA form: flat fanin arena, levelized order —
  // one indexed load per pin instead of chasing per-node heap vectors.
  const SimGraph& g = SimGraph::of(n);
  Bits fanin_vals[16];
  const std::int32_t* fanin = g.fanin();
  const std::int32_t* off = g.fanin_off();
  Bits* vals = values.data();
  for (const std::int32_t id : g.order()) {
    const GateType type = g.type(id);
    if (type == GateType::kInput || type == GateType::kDff)
      continue;  // sources, preset by the caller
    const std::int32_t lo = off[id];
    const int nf = off[id + 1] - lo;
    assert(nf <= 16);
    for (int i = 0; i < nf; ++i) fanin_vals[i] = vals[fanin[lo + i]];
    vals[id] = eval_gate(type, fanin_vals, nf);
  }
}

std::vector<std::vector<Bits>> simulate_sequence(
    const Netlist& n, const std::vector<std::vector<Bits>>& input_frames,
    const std::vector<Bits>* initial_state) {
  std::vector<std::vector<Bits>> result;
  std::vector<Bits> state(n.flops().size(), Bits::unknown());
  if (initial_state) state = *initial_state;
  for (const auto& frame_inputs : input_frames) {
    std::vector<Bits> values(n.num_nodes(), Bits::unknown());
    for (std::size_t i = 0; i < n.primary_inputs().size(); ++i)
      values[n.primary_inputs()[i]] =
          i < frame_inputs.size() ? frame_inputs[i] : Bits::unknown();
    for (std::size_t i = 0; i < n.flops().size(); ++i)
      values[n.flops()[i]] = state[i];
    simulate_frame(n, values);
    for (std::size_t i = 0; i < n.flops().size(); ++i) {
      const int d = n.node(n.flops()[i]).fanins[0];
      state[i] = d >= 0 ? values[d] : Bits::unknown();
    }
    result.push_back(std::move(values));
  }
  return result;
}

}  // namespace tsyn::gl
