#include "gatelevel/faults.h"

namespace tsyn::gl {

std::string describe(const Netlist& n, const Fault& f) {
  const Node& node = n.node(f.node);
  std::string base = node.name.empty()
                         ? to_string(node.type) + "@" + std::to_string(f.node)
                         : node.name;
  if (f.fanin_index >= 0) base += ".in" + std::to_string(f.fanin_index);
  return base + (f.stuck_at_one ? "/1" : "/0");
}

std::vector<Fault> enumerate_faults(const Netlist& n, bool collapse) {
  std::vector<Fault> faults;
  const auto& fanouts = n.fanouts();

  for (int id = 0; id < n.num_nodes(); ++id) {
    const Node& node = n.node(id);
    if (node.type == GateType::kConst0 || node.type == GateType::kConst1)
      continue;  // tied lines are not fault sites

    // Output faults.
    faults.push_back({id, -1, false});
    faults.push_back({id, -1, true});

    // Input-pin (branch) faults.
    for (std::size_t i = 0; i < node.fanins.size(); ++i) {
      const int driver = node.fanins[i];
      if (driver < 0) continue;
      if (collapse && fanouts[driver].size() <= 1)
        continue;  // single fanout: equivalent to the driver's output fault
      for (const bool sa1 : {false, true}) {
        if (collapse) {
          // Controlling-value equivalence with this gate's output fault.
          const GateType t = node.type;
          const bool is_and = t == GateType::kAnd || t == GateType::kNand;
          const bool is_or = t == GateType::kOr || t == GateType::kNor;
          if (is_and && !sa1) continue;  // in-sa0 == out-sa0 (or nand sa1)
          if (is_or && sa1) continue;    // in-sa1 == out-sa1 (or nor sa0)
        }
        faults.push_back({id, static_cast<int>(i), sa1});
      }
    }
  }
  return faults;
}

}  // namespace tsyn::gl
