#include "gatelevel/bistgen.h"

#include <algorithm>
#include <cassert>

#include "util/rng.h"
#include <stdexcept>

namespace tsyn::gl {

namespace {

std::uint64_t default_taps(int width) {
  // Maximal-length polynomials (taps as bit masks, LSB = stage 0).
  switch (width) {
    case 8: return 0xB8;                  // x^8+x^6+x^5+x^4+1
    case 16: return 0xB400;               // x^16+x^14+x^13+x^11+1
    case 24: return 0xE10000;             // x^24+x^23+x^22+x^17+1
    case 32: return 0x80200003;           // x^32+x^22+x^2+x^1+1
    case 64: return 0xD800000000000000ULL;  // x^64+x^63+x^61+x^60+1
    default:
      throw std::runtime_error("no default taps for LFSR width " +
                               std::to_string(width));
  }
}

}  // namespace

Lfsr::Lfsr(int width, std::uint64_t seed)
    : width_(width),
      taps_(default_taps(width)),
      mask_(width == 64 ? ~0ULL : ((1ULL << width) - 1)) {
  state_ = seed & mask_;
  if (state_ == 0) state_ = 1;  // the all-zero state is absorbing
}

std::uint64_t Lfsr::step() {
  // Galois form: shift right, conditionally XOR taps.
  const bool lsb = state_ & 1;
  state_ >>= 1;
  if (lsb) state_ ^= taps_ & mask_;
  return state_;
}

Misr::Misr(int width) : lfsr_(width, 1), state_(0) {}

void Misr::absorb(std::uint64_t response) {
  state_ ^= response;
  // Advance through the LFSR feedback once per word.
  const bool lsb = state_ & 1;
  state_ >>= 1;
  if (lsb) state_ ^= 0x80200003ULL;
}

std::vector<std::vector<Bits>> lfsr_pattern_blocks(int num_inputs,
                                                   int num_blocks,
                                                   std::uint64_t seed) {
  Lfsr lfsr(64, seed ^ 0x5DEECE66DULL);
  std::vector<std::vector<Bits>> blocks(num_blocks);
  for (auto& block : blocks) {
    block.assign(num_inputs, Bits::all0());
    for (int lane = 0; lane < 64; ++lane) {
      // A PRPG shifts the whole chain between captures; stepping past the
      // state width leaves successive patterns effectively independent.
      for (int s = 0; s < 66; ++s) lfsr.step();
      const std::uint64_t s1 = lfsr.step();
      const std::uint64_t s2 = lfsr.step();
      for (int i = 0; i < num_inputs; ++i) {
        const std::uint64_t word = (i / 64) % 2 == 0 ? s1 : s2;
        const bool bit = (word >> (i % 64)) & 1;
        if (bit) block[i].v |= 1ULL << lane;
      }
    }
  }
  return blocks;
}

std::vector<std::uint64_t> accumulator_sequence(int width,
                                                std::uint64_t increment,
                                                std::uint64_t seed,
                                                int count) {
  const std::uint64_t mask =
      width == 64 ? ~0ULL : ((1ULL << width) - 1);
  std::vector<std::uint64_t> out;
  out.reserve(count);
  std::uint64_t acc = seed & mask;
  for (int i = 0; i < count; ++i) {
    out.push_back(acc);
    acc = (acc + increment) & mask;
  }
  return out;
}

std::vector<std::vector<Bits>> weighted_pattern_blocks(
    const std::vector<double>& weights, int num_blocks, std::uint64_t seed) {
  util::Rng rng(seed ^ 0x5EEDULL);
  std::vector<std::vector<Bits>> blocks(num_blocks);
  for (auto& block : blocks) {
    block.assign(weights.size(), Bits::all0());
    for (std::size_t i = 0; i < weights.size(); ++i)
      for (int lane = 0; lane < 64; ++lane)
        if (rng.next_bool(weights[i])) block[i].v |= 1ULL << lane;
  }
  return blocks;
}

std::vector<double> weights_from_tests(
    const std::vector<std::vector<V>>& tests, int num_inputs) {
  std::vector<double> weights(num_inputs, 0.5);
  if (tests.empty()) return weights;
  for (int i = 0; i < num_inputs; ++i) {
    double ones = 0;
    for (const auto& t : tests) {
      const V v = i < static_cast<int>(t.size()) ? t[i] : V::kX;
      ones += v == V::k1 ? 1.0 : v == V::k0 ? 0.0 : 0.5;
    }
    weights[i] = std::min(0.9, std::max(0.1, ones / tests.size()));
  }
  return weights;
}

std::vector<std::vector<Bits>> pack_word_patterns(
    const std::vector<std::vector<std::uint64_t>>& port_words, int width) {
  assert(!port_words.empty());
  const std::size_t count = port_words[0].size();
  for (const auto& seq : port_words) {
    (void)seq;
    assert(seq.size() == count);
  }

  const int num_blocks = static_cast<int>((count + 63) / 64);
  const int num_inputs = static_cast<int>(port_words.size()) * width;
  std::vector<std::vector<Bits>> blocks(num_blocks);
  for (int blk = 0; blk < num_blocks; ++blk) {
    blocks[blk].assign(num_inputs, Bits::all0());
    for (int lane = 0; lane < 64; ++lane) {
      const std::size_t pattern = static_cast<std::size_t>(blk) * 64 + lane;
      // Repeat the last pattern into unused lanes of the final block.
      const std::size_t idx = pattern < count ? pattern : count - 1;
      for (std::size_t port = 0; port < port_words.size(); ++port) {
        const std::uint64_t word = port_words[port][idx];
        for (int b = 0; b < width; ++b)
          if ((word >> b) & 1)
            blocks[blk][port * width + b].v |= 1ULL << lane;
      }
    }
  }
  return blocks;
}

}  // namespace tsyn::gl
