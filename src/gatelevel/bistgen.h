// BIST pattern sources and response compaction (§5, [21], [28]).
//
// Software models of the test-mode hardware: LFSR-based pseudorandom
// pattern generators (TPGR), MISR signature registers (SR), and the
// arithmetic (accumulator-based) generators of Mukherjee et al. [28]. They
// produce the input streams fault simulation consumes; compaction aliasing
// is modelled by the MISR signature.
#pragma once

#include <cstdint>
#include <vector>

#include "gatelevel/atpg_comb.h"
#include "gatelevel/netlist.h"

namespace tsyn::gl {

/// Fibonacci LFSR; default taps give a maximal-length sequence for the
/// supported widths (8, 16, 24, 32, 64).
class Lfsr {
 public:
  Lfsr(int width, std::uint64_t seed);

  /// Advances one clock and returns the new state.
  std::uint64_t step();
  std::uint64_t state() const { return state_; }
  int width() const { return width_; }

 private:
  int width_;
  std::uint64_t state_;
  std::uint64_t taps_;
  std::uint64_t mask_;
};

/// Multiple-input signature register (software model).
class Misr {
 public:
  explicit Misr(int width = 32);
  /// Compacts one response word.
  void absorb(std::uint64_t response);
  std::uint64_t signature() const { return state_; }

 private:
  Lfsr lfsr_;
  std::uint64_t state_;
};

/// Pseudorandom pattern blocks for bit-level fault simulation: `blocks`
/// 64-pattern groups over `num_inputs` PI bits, driven by one long LFSR the
/// way a PRPG feeding a scan chain would.
std::vector<std::vector<Bits>> lfsr_pattern_blocks(int num_inputs,
                                                   int num_blocks,
                                                   std::uint64_t seed);

/// Arithmetic BIST generator [28]: the word sequence of an accumulator
/// repeatedly adding `increment` (mod 2^width). Good increments (odd,
/// near 2^width * golden ratio) sweep operand subspaces quickly.
std::vector<std::uint64_t> accumulator_sequence(int width,
                                                std::uint64_t increment,
                                                std::uint64_t seed,
                                                int count);

/// Weighted pseudorandom pattern blocks: input i is 1 with probability
/// weights[i]. The classic remedy for random-pattern-resistant logic
/// (deep AND trees, comparators) without inserting test points.
std::vector<std::vector<Bits>> weighted_pattern_blocks(
    const std::vector<double>& weights, int num_blocks, std::uint64_t seed);

/// Derives input weights from deterministic tests (e.g. a PODEM campaign):
/// the fraction of tests asserting each input 1, with X treated as 0.5 and
/// the result clamped to [0.1, 0.9] so no input is pinned.
std::vector<double> weights_from_tests(
    const std::vector<std::vector<V>>& tests, int num_inputs);

/// Packs word sequences (one per input port, each `count` words of
/// `width` bits) into 64-lane Bits blocks for fault simulation. Port i's
/// bit b maps to consecutive PI positions (port-major, LSB first).
std::vector<std::vector<Bits>> pack_word_patterns(
    const std::vector<std::vector<std::uint64_t>>& port_words, int width);

}  // namespace tsyn::gl
