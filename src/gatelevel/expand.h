// RTL-to-gate expansion.
//
// Turns a datapath (and optionally its controller) into a stuck-at-testable
// gate netlist: registers become DFF vectors with hold muxes, FUs become
// ripple/array arithmetic with opcode muxing, multi-driver ports become
// binary-selected mux trees. Scan/BIST registers (test_kind != kNone) are
// modelled the standard ATPG way: their Q bits become pseudo primary inputs
// and their D bits pseudo primary outputs.
//
// When no controller is supplied, every control line (mux selects, load
// enables, opcodes) becomes a free primary input — the "control signals
// fully controllable in test mode" assumption of §3.5. Supplying the
// controller instead synthesizes the control FSM (step counter + vector
// decode) so composite controller/datapath testability can be measured
// ([14]).
#pragma once

#include <vector>

#include "gatelevel/netlist.h"
#include "observe/provenance.h"
#include "rtl/controller.h"
#include "rtl/datapath.h"

namespace tsyn::gl {

struct ExpandOptions {
  /// Treat registers with test_kind != kNone as scanned (PI/PO pseudo
  /// ports). Set false to expand the purely functional circuit.
  bool respect_scan = true;
  /// Synthesize this controller to drive the control lines; nullptr leaves
  /// them as free primary inputs.
  const rtl::Controller* controller = nullptr;
  /// With a controller: how many of its vectors are functional (the rest
  /// are appended test vectors). -1 = all functional.
  int num_reachable_vectors = -1;
  /// Test-mode strap: when true the step counter wraps after ALL vectors
  /// (test vectors reachable); when false it wraps after the functional
  /// ones. Both straps produce structurally identical netlists (fault
  /// lists align 1:1) — only the tied mode constant differs.
  bool test_mode = false;
  /// Override every component width (0 = keep datapath widths). Gate-level
  /// experiments typically use 4-8 bits to keep fault lists tractable.
  int width_override = 0;
  /// Record the node -> RTL component provenance map into
  /// ExpandedDesign::provenance (observe/provenance.h). On by default —
  /// recording is a serial O(components) bookkeeping pass on top of
  /// expansion (the <= 2% bench_faultsim_perf budget); set false for
  /// rigs that churn thousands of expansions.
  bool record_provenance = true;
};

/// Expansion result with the cross-reference maps experiments need.
struct ExpandedDesign {
  Netlist netlist;
  /// Q-side node per register bit (PI nodes when the register is scanned).
  std::vector<std::vector<int>> reg_q;
  /// D-side node per register bit (also marked PO when scanned).
  std::vector<std::vector<int>> reg_d;
  /// Nodes of each datapath primary input, per bit.
  std::vector<std::vector<int>> pi_nodes;
  /// Output nodes of each FU, per bit.
  std::vector<std::vector<int>> fu_out;
  /// Free control-line inputs (empty when a controller was synthesized).
  std::vector<int> control_inputs;
  /// Counter state FFs of the synthesized controller (empty otherwise).
  std::vector<int> controller_state;
  /// Node -> RTL component -> CDFG op map (empty when
  /// ExpandOptions::record_provenance is false). Every node is attributed
  /// to exactly one component; control lines belong to the mux they feed.
  observe::ProvenanceMap provenance;

  bool sequential() const { return !netlist.flops().empty(); }
};

/// Expands the datapath per the options. Throws std::runtime_error if the
/// controller's signal list does not match the datapath structure.
ExpandedDesign expand_datapath(const rtl::Datapath& dp,
                               const ExpandOptions& opts = {});

// ---- reusable word-level construction helpers (also used by tests) ----

using Word = std::vector<int>;  ///< node ids, LSB first

Word make_input_word(Netlist& n, const std::string& name, int width);
Word make_const_word(Netlist& n, long value, int width);
Word bitwise(Netlist& n, GateType type, const Word& a, const Word& b);
Word invert(Netlist& n, const Word& a);
/// a + b + cin; drops the carry-out unless `cout` is non-null.
Word ripple_add(Netlist& n, const Word& a, const Word& b, int cin_node,
                int* cout = nullptr);
Word ripple_sub(Netlist& n, const Word& a, const Word& b,
                int* borrow_out = nullptr);
/// Unsigned less-than: single node.
int less_than(Netlist& n, const Word& a, const Word& b);
/// Equality: single node.
int equal(Netlist& n, const Word& a, const Word& b);
/// Truncated array multiplier (low `width(a)` bits of a*b).
Word array_multiply(Netlist& n, const Word& a, const Word& b);
/// sel ? a : b, per bit.
Word mux_word(Netlist& n, int sel, const Word& a, const Word& b);
/// Binary mux tree over k sources; `sel_bits` has ceil(log2 k) lines,
/// sel_bits[i] = bit i of the source index. k == 1 needs no lines.
Word mux_tree(Netlist& n, const std::vector<Word>& sources,
              const std::vector<int>& sel_bits);
/// Number of select lines a k-way mux needs.
int select_width(int num_choices);

/// Combinational result of one operation kind over word operands (c is the
/// third operand for mux). The building block FU expansion uses; also
/// handy for standalone module netlists in hierarchical ATPG.
Word build_op_result(Netlist& n, cdfg::OpKind kind, const Word& a,
                     const Word& b, const Word& c);

/// Standalone netlist of one FU: operand words as PIs, opcode-select PIs
/// when it implements several kinds, result bits as POs.
Netlist expand_standalone_fu(const std::vector<cdfg::OpKind>& kinds,
                             int width);

}  // namespace tsyn::gl
