// Gate-level netlist and three-valued parallel logic simulation.
//
// The substrate for every fault-coverage and test-effort measurement: RTL
// datapaths expand into this representation (expand.h), fault simulation and
// ATPG run on it. Signals are dense node ids; each node is driven by a
// primary input, a constant, a combinational gate, or a D flip-flop (the
// node is the FF's Q; fanin[0] is its D).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tsyn::gl {

enum class GateType {
  kInput,   ///< primary input
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,   ///< 2-input
  kXnor,  ///< 2-input
  kMux,   ///< fanins = {sel, a, b}: sel ? b : a
  kDff,   ///< fanins = {d}; node value is Q
};

std::string to_string(GateType t);

struct Node {
  GateType type = GateType::kBuf;
  std::vector<int> fanins;
  std::string name;  ///< optional, for reports
};

/// 64 patterns in parallel with three-valued logic: bit i of `x` set means
/// lane i is unknown; otherwise bit i of `v` is the value.
struct Bits {
  std::uint64_t v = 0;
  std::uint64_t x = ~0ULL;  ///< all-unknown by default

  static Bits known(std::uint64_t value) { return {value, 0}; }
  static Bits all0() { return {0, 0}; }
  static Bits all1() { return {~0ULL, 0}; }
  static Bits unknown() { return {0, ~0ULL}; }
};

class Netlist {
 public:
  // Node names are a reporting/provenance key, so non-empty names are kept
  // unique: a second insertion of name N lands as "N#1", then "N#2", ...
  // (validate() asserts uniqueness in debug builds).
  int add_input(const std::string& name = "");
  int add_const(bool value);
  int add_gate(GateType type, const std::vector<int>& fanins,
               const std::string& name = "");
  /// add_gate without constant folding. For experiment rigs that need two
  /// netlists to stay structurally identical while a tied constant differs
  /// (e.g. a test-mode pin strapped 0 vs 1).
  int add_gate_raw(GateType type, const std::vector<int>& fanins,
                   const std::string& name = "");
  /// Adds a DFF; its D connection may be set later with set_dff_input
  /// (pass -1 now) to allow feedback loops.
  int add_dff(int d_fanin, const std::string& name = "");
  void set_dff_input(int dff_node, int d_fanin);
  void mark_output(int node);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Node& node(int n) const { return nodes_[n]; }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<int>& primary_inputs() const { return inputs_; }
  const std::vector<int>& primary_outputs() const { return outputs_; }
  const std::vector<int>& flops() const { return flops_; }

  /// Combinational nodes in topological order (DFF Qs and inputs are
  /// sources). Built lazily; invalidated by structural edits.
  const std::vector<int>& topo_order() const;

  /// Fanout lists (built lazily with topo_order).
  const std::vector<std::vector<int>>& fanouts() const;

  /// Number of gate-equivalents (combinational gates + FFs; buffers free).
  int gate_count() const;

  /// Checks structure: fanin arities, no combinational cycles.
  void validate() const;

 private:
  void invalidate_caches();
  /// Returns `name` unchanged on first use, "<name>#k" on collisions.
  std::string unique_name(const std::string& name);

  std::vector<Node> nodes_;
  /// Per base name: next collision suffix (0 = only the base used so far).
  std::map<std::string, int> name_uses_;
  std::vector<int> inputs_;
  std::vector<int> outputs_;
  std::vector<int> flops_;
  mutable std::vector<int> topo_;
  mutable std::vector<std::vector<int>> fanouts_;
  mutable bool caches_valid_ = false;
};

/// Evaluates one combinational gate from fanin values.
Bits eval_gate(GateType type, const Bits* fanin_values, int num_fanins);

/// Full-parallel good simulation of one clock frame.
/// `values` must be sized num_nodes; entries for kInput and kDff nodes are
/// taken as given (set them before calling), all others are computed.
void simulate_frame(const Netlist& n, std::vector<Bits>& values);

/// Multi-frame sequential simulation. `input_frames[f]` gives the PI values
/// of frame f (indexed by position in primary_inputs()). FFs start unknown
/// unless `initial_state` is provided (indexed by position in flops()).
/// Returns per-frame node values.
std::vector<std::vector<Bits>> simulate_sequence(
    const Netlist& n, const std::vector<std::vector<Bits>>& input_frames,
    const std::vector<Bits>* initial_state = nullptr);

}  // namespace tsyn::gl
