// Gate-level netlist and three-valued parallel logic simulation.
//
// The substrate for every fault-coverage and test-effort measurement: RTL
// datapaths expand into this representation (expand.h), fault simulation and
// ATPG run on it. Signals are dense node ids; each node is driven by a
// primary input, a constant, a combinational gate, or a D flip-flop (the
// node is the FF's Q; fanin[0] is its D).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace tsyn::gl {

enum class GateType {
  kInput,   ///< primary input
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,   ///< 2-input
  kXnor,  ///< 2-input
  kMux,   ///< fanins = {sel, a, b}: sel ? b : a
  kDff,   ///< fanins = {d}; node value is Q
};

std::string to_string(GateType t);

struct Node {
  GateType type = GateType::kBuf;
  std::vector<int> fanins;
  std::string name;  ///< optional, for reports
};

/// 64 patterns in parallel with three-valued logic: bit i of `x` set means
/// lane i is unknown; otherwise bit i of `v` is the value.
struct Bits {
  std::uint64_t v = 0;
  std::uint64_t x = ~0ULL;  ///< all-unknown by default

  static Bits known(std::uint64_t value) { return {value, 0}; }
  static Bits all0() { return {0, 0}; }
  static Bits all1() { return {~0ULL, 0}; }
  static Bits unknown() { return {0, ~0ULL}; }
};

class Netlist {
 public:
  // Node names are a reporting/provenance key, so non-empty names are kept
  // unique: a second insertion of name N lands as "N#1", then "N#2", ...
  // (validate() asserts uniqueness in debug builds).
  int add_input(const std::string& name = "");
  int add_const(bool value);
  /// Pre-sizes the node table (and the name map's bucket array) for a
  /// construction pass that knows roughly how many nodes it will add —
  /// expand_datapath does, and reallocation during expansion is pure
  /// waste. A hint, not a limit.
  void reserve_nodes(int expected_nodes);
  int add_gate(GateType type, const std::vector<int>& fanins,
               const std::string& name = "");
  /// add_gate without constant folding. For experiment rigs that need two
  /// netlists to stay structurally identical while a tied constant differs
  /// (e.g. a test-mode pin strapped 0 vs 1).
  int add_gate_raw(GateType type, const std::vector<int>& fanins,
                   const std::string& name = "");
  /// Adds a DFF; its D connection may be set later with set_dff_input
  /// (pass -1 now) to allow feedback loops.
  int add_dff(int d_fanin, const std::string& name = "");
  void set_dff_input(int dff_node, int d_fanin);
  void mark_output(int node);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Node& node(int n) const { return nodes_[n]; }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<int>& primary_inputs() const { return inputs_; }
  const std::vector<int>& primary_outputs() const { return outputs_; }
  const std::vector<int>& flops() const { return flops_; }

  /// Combinational nodes in topological order (DFF Qs and inputs are
  /// sources). Built lazily; invalidated by structural edits.
  const std::vector<int>& topo_order() const;

  /// Fanout lists (built lazily with topo_order).
  const std::vector<std::vector<int>>& fanouts() const;

  /// Number of gate-equivalents (combinational gates + FFs; buffers free).
  int gate_count() const;

  /// Checks structure: fanin arities, no combinational cycles.
  void validate() const;

  /// Opaque cache slot for the lowered SoA simulation form, owned by
  /// gl::SimGraph::of (simgraph.h) and reset together with the topo and
  /// fanout caches on every structural edit. Opaque here so netlist.h
  /// stays free of the simgraph dependency; nobody else should touch it.
  const std::shared_ptr<const void>& lowered_cache() const {
    return lowered_;
  }
  void set_lowered_cache(std::shared_ptr<const void> cache) const {
    lowered_ = std::move(cache);
  }

 private:
  void invalidate_caches();
  /// Returns `name` unchanged on first use, "<name>#k" on collisions.
  std::string unique_name(const std::string& name);

  std::vector<Node> nodes_;
  /// Per base name: next collision suffix (0 = only the base used so far).
  /// Only ever probed point-wise, never iterated, so hash order is safe.
  std::unordered_map<std::string, int> name_uses_;
  std::vector<int> inputs_;
  std::vector<int> outputs_;
  std::vector<int> flops_;
  mutable std::vector<int> topo_;
  mutable std::vector<std::vector<int>> fanouts_;
  mutable bool caches_valid_ = false;
  mutable std::shared_ptr<const void> lowered_;
};

/// Evaluates one combinational gate from fanin values. Header-inline so
/// the simulation hot loops (simulate_frame, FaultPropagator::drain) fold
/// the whole evaluation into one switch instead of an out-of-line call;
/// the wide-lane kernels in widebits.h are these same formulas lifted to
/// W words and must stay bit-identical at W=1.
inline Bits eval_gate(GateType type, const Bits* in, int num_fanins) {
  auto and2 = [](Bits a, Bits b) {
    Bits r;
    r.v = a.v & b.v;
    // Unknown unless either side is a known 0.
    r.x = (a.x | b.x) & ~((~a.v & ~a.x) | (~b.v & ~b.x));
    r.v &= ~r.x;
    return r;
  };
  auto or2 = [](Bits a, Bits b) {
    Bits r;
    r.v = (a.v & ~a.x) | (b.v & ~b.x);
    r.x = (a.x | b.x) & ~((a.v & ~a.x) | (b.v & ~b.x));
    return r;
  };
  auto inv = [](Bits a) {
    return Bits{~a.v & ~a.x, a.x};
  };
  auto xor2 = [](Bits a, Bits b) {
    Bits r;
    r.x = a.x | b.x;
    r.v = (a.v ^ b.v) & ~r.x;
    return r;
  };

  switch (type) {
    case GateType::kConst0: return Bits::all0();
    case GateType::kConst1: return Bits::all1();
    case GateType::kBuf: return in[0];
    case GateType::kNot: return inv(in[0]);
    case GateType::kAnd:
    case GateType::kNand: {
      Bits r = in[0];
      for (int i = 1; i < num_fanins; ++i) r = and2(r, in[i]);
      return type == GateType::kNand ? inv(r) : r;
    }
    case GateType::kOr:
    case GateType::kNor: {
      Bits r = in[0];
      for (int i = 1; i < num_fanins; ++i) r = or2(r, in[i]);
      return type == GateType::kNor ? inv(r) : r;
    }
    case GateType::kXor: return xor2(in[0], in[1]);
    case GateType::kXnor: return inv(xor2(in[0], in[1]));
    case GateType::kMux: {
      // sel ? b : a, with X-pessimism when sel is unknown and a != b.
      const Bits sel = in[0];
      const Bits a = in[1];
      const Bits b = in[2];
      Bits r;
      const std::uint64_t sel_known = ~sel.x;
      const std::uint64_t pick_b = sel.v & sel_known;
      const std::uint64_t pick_a = ~sel.v & sel_known;
      r.v = (a.v & pick_a) | (b.v & pick_b);
      r.x = (a.x & pick_a) | (b.x & pick_b);
      // Unknown select: known only where a and b agree and are known.
      const std::uint64_t agree = ~(a.v ^ b.v) & ~a.x & ~b.x;
      r.v |= sel.x & agree & a.v;
      r.x |= sel.x & ~agree;
      return r;
    }
    case GateType::kInput:
    case GateType::kDff:
      break;  // sources: handled by the caller
  }
  assert(false && "eval_gate on a source node");
  return Bits::unknown();
}

/// Full-parallel good simulation of one clock frame.
/// `values` must be sized num_nodes; entries for kInput and kDff nodes are
/// taken as given (set them before calling), all others are computed.
void simulate_frame(const Netlist& n, std::vector<Bits>& values);

/// Multi-frame sequential simulation. `input_frames[f]` gives the PI values
/// of frame f (indexed by position in primary_inputs()). FFs start unknown
/// unless `initial_state` is provided (indexed by position in flops()).
/// Returns per-frame node values.
std::vector<std::vector<Bits>> simulate_sequence(
    const Netlist& n, const std::vector<std::vector<Bits>>& input_frames,
    const std::vector<Bits>* initial_state = nullptr);

}  // namespace tsyn::gl
