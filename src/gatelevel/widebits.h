// Wide-lane three-valued values and the SIMD kernel layer under them.
//
// `Bits` carries 64 pattern lanes in one {v, x} word pair; `WideBits<W>`
// widens that to W×64 lanes (W ∈ {1, 4, 8} → 64/256/512 patterns) so one
// good-machine pass and one fault propagation grade a whole super-block.
// The gate kernels are written once against a small "word vector" concept
// (bitwise ops over K machine words) and instantiated per backend:
//
//  - ScalarWords<W>: plain uint64 loops, always built, auto-vectorizable;
//  - Avx2Words / Avx512Words: 256/512-bit intrinsic paths, visible only in
//    translation units built with -mavx2 / -mavx512f. The build compiles
//    the wide engine into such TUs (faultsim_avx2.cpp, faultsim_avx512.cpp,
//    gated on compiler support and advertised via TSYN_WIDE_AVX2 /
//    TSYN_WIDE_AVX512) while the rest of the binary stays portable.
//
// Backend choice happens per wide pass (never per gate) from what the
// running CPU supports among the compiled-in kernel TUs, demoted by the
// TSYN_FORCE_SCALAR=1 environment override that forces the scalar path
// for differential testing. All backends compute bit-identical results —
// the override exists to prove it cheaply.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "gatelevel/netlist.h"

namespace tsyn::gl {

/// W×64 pattern lanes of three-valued logic, stored as W value words then
/// W unknown-mask words. Word w holds lanes [64w, 64w+63]; lane semantics
/// match `Bits` exactly (x bit set = unknown, else v bit = value).
template <int W>
struct WideBits {
  static_assert(W >= 1, "lane width must be positive");
  std::uint64_t v[W];
  std::uint64_t x[W];

  static WideBits unknown() {
    WideBits b;
    for (int w = 0; w < W; ++w) {
      b.v[w] = 0;
      b.x[w] = ~0ULL;
    }
    return b;
  }

  bool operator==(const WideBits& o) const {
    return std::memcmp(this, &o, sizeof(WideBits)) == 0;
  }
};

// ---------------------------------------------------------------------------
// Backend selection.
// ---------------------------------------------------------------------------

enum class SimdBackend { kScalar, kAvx2, kAvx512 };

/// Widest backend compiled into THIS translation unit (its -m flags).
constexpr SimdBackend compiled_simd_backend() {
#if defined(__AVX512F__)
  return SimdBackend::kAvx512;
#elif defined(__AVX2__)
  return SimdBackend::kAvx2;
#else
  return SimdBackend::kScalar;
#endif
}

/// Widest backend the running CPU supports among those whose kernel TUs
/// are in the build (TSYN_WIDE_AVX2 / TSYN_WIDE_AVX512 come from the
/// build system alongside faultsim_avx2.cpp / faultsim_avx512.cpp). Falls
/// back to this TU's own compile-time ISA, so a whole-build -mavx2 binary
/// without the dedicated TUs still reports what it will execute.
inline SimdBackend detected_simd_backend() {
#if defined(TSYN_WIDE_AVX512)
  if (__builtin_cpu_supports("avx512f")) return SimdBackend::kAvx512;
#endif
#if defined(TSYN_WIDE_AVX2)
  if (__builtin_cpu_supports("avx2")) return SimdBackend::kAvx2;
#endif
  return compiled_simd_backend();
}

/// Backend the wide kernels will actually run: the runtime-detected
/// maximum, demoted to scalar when TSYN_FORCE_SCALAR=1 is set in the
/// environment. Re-read on every call (it only guards per-pass dispatch,
/// never the per-gate hot loop) so tests can flip the override without
/// re-execing.
inline SimdBackend active_simd_backend() {
  const char* force = std::getenv("TSYN_FORCE_SCALAR");
  if (force && force[0] == '1') return SimdBackend::kScalar;
  return detected_simd_backend();
}

inline const char* to_string(SimdBackend b) {
  switch (b) {
    case SimdBackend::kScalar: return "scalar";
    case SimdBackend::kAvx2: return "avx2";
    case SimdBackend::kAvx512: return "avx512";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Word-vector backends. Each models K consecutive uint64 words with the
// bitwise operators the three-valued kernels need. Loads/stores take plain
// uint64 pointers so values stay in ordinary (unaligned) arrays.
// ---------------------------------------------------------------------------

template <int K>
struct ScalarWords {
  static constexpr int kWords = K;
  std::uint64_t w[K];

  static ScalarWords load(const std::uint64_t* p) {
    ScalarWords r;
    for (int i = 0; i < K; ++i) r.w[i] = p[i];
    return r;
  }
  void store(std::uint64_t* p) const {
    for (int i = 0; i < K; ++i) p[i] = w[i];
  }
  static ScalarWords zero() {
    ScalarWords r;
    for (int i = 0; i < K; ++i) r.w[i] = 0;
    return r;
  }
  static ScalarWords ones() {
    ScalarWords r;
    for (int i = 0; i < K; ++i) r.w[i] = ~0ULL;
    return r;
  }
  friend ScalarWords operator&(ScalarWords a, ScalarWords b) {
    for (int i = 0; i < K; ++i) a.w[i] &= b.w[i];
    return a;
  }
  friend ScalarWords operator|(ScalarWords a, ScalarWords b) {
    for (int i = 0; i < K; ++i) a.w[i] |= b.w[i];
    return a;
  }
  friend ScalarWords operator^(ScalarWords a, ScalarWords b) {
    for (int i = 0; i < K; ++i) a.w[i] ^= b.w[i];
    return a;
  }
  ScalarWords operator~() const {
    ScalarWords r;
    for (int i = 0; i < K; ++i) r.w[i] = ~w[i];
    return r;
  }
  /// ~a & b in one op where the ISA has it (vpandn); the scalar spelling
  /// keeps the kernels' shape identical across backends.
  static ScalarWords andnot(ScalarWords a, ScalarWords b) {
    for (int i = 0; i < K; ++i) a.w[i] = ~a.w[i] & b.w[i];
    return a;
  }
  bool any() const {
    std::uint64_t acc = 0;
    for (int i = 0; i < K; ++i) acc |= w[i];
    return acc != 0;
  }
};

#if defined(__AVX2__)
struct Avx2Words {
  static constexpr int kWords = 4;
  __m256i w;

  static Avx2Words load(const std::uint64_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void store(std::uint64_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), w);
  }
  static Avx2Words zero() { return {_mm256_setzero_si256()}; }
  static Avx2Words ones() {
    return {_mm256_set1_epi64x(-1)};
  }
  friend Avx2Words operator&(Avx2Words a, Avx2Words b) {
    return {_mm256_and_si256(a.w, b.w)};
  }
  friend Avx2Words operator|(Avx2Words a, Avx2Words b) {
    return {_mm256_or_si256(a.w, b.w)};
  }
  friend Avx2Words operator^(Avx2Words a, Avx2Words b) {
    return {_mm256_xor_si256(a.w, b.w)};
  }
  Avx2Words operator~() const {
    return {_mm256_xor_si256(w, _mm256_set1_epi64x(-1))};
  }
  static Avx2Words andnot(Avx2Words a, Avx2Words b) {
    return {_mm256_andnot_si256(a.w, b.w)};  // ~a & b
  }
  bool any() const { return _mm256_testz_si256(w, w) == 0; }
};
#endif  // __AVX2__

#if defined(__AVX512F__)
struct Avx512Words {
  static constexpr int kWords = 8;
  __m512i w;

  static Avx512Words load(const std::uint64_t* p) {
    return {_mm512_loadu_si512(p)};
  }
  void store(std::uint64_t* p) const { _mm512_storeu_si512(p, w); }
  static Avx512Words zero() { return {_mm512_setzero_si512()}; }
  static Avx512Words ones() { return {_mm512_set1_epi64(-1)}; }
  friend Avx512Words operator&(Avx512Words a, Avx512Words b) {
    return {_mm512_and_si512(a.w, b.w)};
  }
  friend Avx512Words operator|(Avx512Words a, Avx512Words b) {
    return {_mm512_or_si512(a.w, b.w)};
  }
  friend Avx512Words operator^(Avx512Words a, Avx512Words b) {
    return {_mm512_xor_si512(a.w, b.w)};
  }
  Avx512Words operator~() const {
    return {_mm512_xor_si512(w, _mm512_set1_epi64(-1))};
  }
  static Avx512Words andnot(Avx512Words a, Avx512Words b) {
    return {_mm512_andnot_si512(a.w, b.w)};
  }
  bool any() const { return _mm512_test_epi64_mask(w, w) != 0; }
};
#endif  // __AVX512F__

// ---------------------------------------------------------------------------
// Three-valued gate kernels over {v, x} word pairs. These are the exact
// formulas of eval_gate (netlist.h) lifted to a word-vector type V; any
// change here must keep W=1 bit-identical to eval_gate — the round-trip
// tests in tests/test_simgraph.cpp enforce it.
// ---------------------------------------------------------------------------

template <class V>
struct Tv {  // one three-valued word-vector
  V v, x;

  static Tv load(const std::uint64_t* pv, const std::uint64_t* px) {
    return {V::load(pv), V::load(px)};
  }
  void store(std::uint64_t* pv, std::uint64_t* px) const {
    v.store(pv);
    x.store(px);
  }
};

template <class V>
inline Tv<V> tv_and(Tv<V> a, Tv<V> b) {
  Tv<V> r;
  r.v = a.v & b.v;
  // Unknown unless either side is a known 0.
  r.x = (a.x | b.x) & ~(V::andnot(a.v, ~a.x) | V::andnot(b.v, ~b.x));
  r.v = V::andnot(r.x, r.v);
  return r;
}

template <class V>
inline Tv<V> tv_or(Tv<V> a, Tv<V> b) {
  Tv<V> r;
  const V ka = V::andnot(a.x, a.v);  // known 1 on a
  const V kb = V::andnot(b.x, b.v);
  r.v = ka | kb;
  r.x = V::andnot(ka | kb, a.x | b.x);
  return r;
}

template <class V>
inline Tv<V> tv_not(Tv<V> a) {
  return {V::andnot(a.x, ~a.v), a.x};
}

template <class V>
inline Tv<V> tv_xor(Tv<V> a, Tv<V> b) {
  Tv<V> r;
  r.x = a.x | b.x;
  r.v = V::andnot(r.x, a.v ^ b.v);
  return r;
}

template <class V>
inline Tv<V> tv_mux(Tv<V> sel, Tv<V> a, Tv<V> b) {
  // sel ? b : a, with X-pessimism when sel is unknown and a != b.
  Tv<V> r;
  const V sel_known = ~sel.x;
  const V pick_b = sel.v & sel_known;
  const V pick_a = V::andnot(sel.v, sel_known);
  r.v = (a.v & pick_a) | (b.v & pick_b);
  r.x = (a.x & pick_a) | (b.x & pick_b);
  const V agree = ~(a.v ^ b.v) & ~a.x & ~b.x;
  r.v = r.v | (sel.x & agree & a.v);
  r.x = r.x | V::andnot(agree, sel.x);
  return r;
}

}  // namespace tsyn::gl
