// Single stuck-at fault model (the fault class all surveyed techniques
// target, §7b).
#pragma once

#include <string>
#include <vector>

#include "gatelevel/netlist.h"

namespace tsyn::gl {

/// A single stuck-at fault: on a node's output (fanin_index == -1) or on a
/// specific input pin of `node` (the connection from node.fanins[i]).
struct Fault {
  int node = -1;
  int fanin_index = -1;
  bool stuck_at_one = false;

  friend bool operator==(const Fault&, const Fault&) = default;
};

std::string describe(const Netlist& n, const Fault& f);

/// Enumerates the collapsed fault list:
///  - output faults (both polarities) on every gate, input, and DFF;
///  - input-pin faults only on fanout branches (checkpoint theorem),
///  - with controlling-value equivalences dropped (AND input-sa0 == output
///    sa0, OR input-sa1 == output sa1, and the NAND/NOR duals).
/// `collapse=false` returns the full uncollapsed list instead.
std::vector<Fault> enumerate_faults(const Netlist& n, bool collapse = true);

}  // namespace tsyn::gl
