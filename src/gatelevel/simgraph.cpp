#include "gatelevel/simgraph.h"

#include <algorithm>
#include <memory>

#include "util/metrics.h"
#include "util/trace.h"

namespace tsyn::gl {

SimGraph SimGraph::lower(const Netlist& n) {
  TSYN_SPAN("gl.simgraph.lower");
  const int nn = n.num_nodes();
  SimGraph g;
  g.type_.resize(nn);
  g.fanin_off_.assign(nn + 1, 0);
  g.flags_.assign(nn, 0);
  for (int id = 0; id < nn; ++id) {
    const Node& node = n.node(id);
    g.type_[id] = static_cast<std::uint8_t>(node.type);
    g.fanin_off_[id + 1] =
        g.fanin_off_[id] + static_cast<std::int32_t>(node.fanins.size());
    if (node.type == GateType::kDff) g.flags_[id] |= kFlagDff;
  }
  for (int po : n.primary_outputs()) g.flags_[po] |= kFlagPo;
  g.fanin_.resize(g.fanin_off_[nn]);
  for (int id = 0; id < nn; ++id)
    std::copy(n.node(id).fanins.begin(), n.node(id).fanins.end(),
              g.fanin_.begin() + g.fanin_off_[id]);

  // Levelize along the Netlist's own topological order (which also proves
  // acyclicity): sources sit at level 0, every comb gate one past its
  // deepest fanin. DFFs are sources — their D edge is a capture boundary.
  g.level_of_.assign(nn, 0);
  int max_level = 0;
  for (int id : n.topo_order()) {
    const Node& node = n.node(id);
    if (node.type == GateType::kInput || node.type == GateType::kDff)
      continue;
    int lvl = 0;
    for (int f : node.fanins) lvl = std::max(lvl, g.level_of_[f] + 1);
    g.level_of_[id] = lvl;
    max_level = std::max(max_level, lvl);
  }

  // Counting sort by level, node id ascending within a level, giving the
  // levelized order plus the per-level spans.
  g.level_off_.assign(max_level + 2, 0);
  for (int id = 0; id < nn; ++id) ++g.level_off_[g.level_of_[id] + 1];
  for (int l = 0; l < max_level + 1; ++l)
    g.level_off_[l + 1] += g.level_off_[l];
  g.order_.resize(nn);
  g.pos_of_.resize(nn);
  {
    std::vector<std::int32_t> fill(g.level_off_.begin(),
                                   g.level_off_.end() - 1);
    for (int id = 0; id < nn; ++id) {
      const std::int32_t pos = fill[g.level_of_[id]]++;
      g.order_[pos] = id;
      g.pos_of_[id] = pos;
    }
  }

  // CSR fanouts over combinational edges only.
  g.fanout_off_.assign(nn + 1, 0);
  for (int id = 0; id < nn; ++id) {
    if (g.type(id) == GateType::kDff) continue;
    for (int f : n.node(id).fanins) ++g.fanout_off_[f + 1];
  }
  for (int id = 0; id < nn; ++id) g.fanout_off_[id + 1] += g.fanout_off_[id];
  g.fanout_.resize(g.fanout_off_[nn]);
  {
    std::vector<std::int32_t> fill(g.fanout_off_.begin(),
                                   g.fanout_off_.end() - 1);
    for (int id = 0; id < nn; ++id) {
      if (g.type(id) == GateType::kDff) continue;
      for (int f : n.node(id).fanins) g.fanout_[fill[f]++] = id;
    }
  }

  g.pis_.assign(n.primary_inputs().begin(), n.primary_inputs().end());
  g.pos_.assign(n.primary_outputs().begin(), n.primary_outputs().end());
  g.ffs_.assign(n.flops().begin(), n.flops().end());

  util::metrics().counter("gl.simgraph.lowered").add();
  util::metrics().gauge("gl.simgraph.last_levels").set(g.num_levels());
  return g;
}

const SimGraph& SimGraph::of(const Netlist& n) {
  const auto& slot = n.lowered_cache();
  if (!slot)
    n.set_lowered_cache(std::make_shared<const SimGraph>(lower(n)));
  return *static_cast<const SimGraph*>(n.lowered_cache().get());
}

}  // namespace tsyn::gl
