#include "gatelevel/atpg_seq.h"

#include <algorithm>
#include <stdexcept>

#include "gatelevel/faultsim.h"
#include "util/metrics.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace tsyn::gl {

std::vector<Fault> Unrolled::map_fault(const Fault& f) const {
  std::vector<Fault> sites;
  for (int fr = 0; fr < frames; ++fr) {
    const int mapped = node_map[fr][f.node];
    if (mapped < 0) continue;
    // A DFF output fault becomes an output fault on the frame's pseudo
    // input / buffer node; pin faults keep their pin. A pin fault has no
    // frame-0 counterpart when the flop became a pseudo input there.
    if (f.fanin_index >= 0 &&
        f.fanin_index >= static_cast<int>(net.node(mapped).fanins.size()))
      continue;
    sites.push_back({mapped, f.fanin_index, f.stuck_at_one});
  }
  return sites;
}

Unrolled unroll(const Netlist& n, int frames,
                const std::vector<V>* initial_state) {
  Unrolled u;
  u.frames = frames;
  u.node_map.assign(frames, std::vector<int>(n.num_nodes(), -1));
  u.pi_map.assign(frames, std::vector<int>(n.primary_inputs().size(), -1));

  int pi_count = 0;
  for (int fr = 0; fr < frames; ++fr) {
    for (int id : n.topo_order()) {
      const Node& node = n.node(id);
      int mapped = -1;
      switch (node.type) {
        case GateType::kInput: {
          mapped = u.net.add_input("f" + std::to_string(fr) + "." +
                                   node.name);
          // Record PI position.
          for (std::size_t p = 0; p < n.primary_inputs().size(); ++p)
            if (n.primary_inputs()[p] == id)
              u.pi_map[fr][p] = pi_count;
          ++pi_count;
          break;
        }
        case GateType::kDff: {
          if (fr == 0) {
            // Pinned by the warm-up state when known; frozen PI otherwise.
            V init = V::kX;
            if (initial_state)
              for (std::size_t fl = 0; fl < n.flops().size(); ++fl)
                if (n.flops()[fl] == id) init = (*initial_state)[fl];
            if (init != V::kX) {
              mapped = u.net.add_const(init == V::k1);
            } else {
              mapped = u.net.add_input("f0." + node.name + ".q");
              u.frozen_pi_positions.push_back(pi_count);
              ++pi_count;
            }
          } else {
            const int prev_d = u.node_map[fr - 1][node.fanins[0]];
            if (prev_d < 0)
              throw std::runtime_error("unroll: D source missing");
            mapped = u.net.add_gate(GateType::kBuf, {prev_d},
                                    "f" + std::to_string(fr) + "." +
                                        node.name + ".q");
          }
          break;
        }
        default: {
          std::vector<int> fanins;
          for (int f : node.fanins) {
            const int m = u.node_map[fr][f];
            if (m < 0) throw std::runtime_error("unroll: fanin missing");
            fanins.push_back(m);
          }
          if (node.type == GateType::kConst0 ||
              node.type == GateType::kConst1) {
            mapped = u.net.add_const(node.type == GateType::kConst1);
          } else {
            mapped = u.net.add_gate(node.type, fanins, node.name);
          }
          break;
        }
      }
      u.node_map[fr][id] = mapped;
    }
    for (int po : n.primary_outputs())
      u.net.mark_output(u.node_map[fr][po]);
  }
  return u;
}

namespace {

// DFF topo-order caveat: topo_order() lists DFFs among the sources, but the
// D fanin of a frame's DFF must reference the PREVIOUS frame, which the
// unroll above already handles; combinational nodes see same-frame fanins.

SeqAtpgResult try_frames(const Netlist& n, const Fault& fault, int frames,
                         long backtrack_limit,
                         const std::vector<V>* initial_state) {
  const Unrolled u = unroll(n, frames, initial_state);
  Podem podem(u.net);
  podem.freeze_inputs(u.frozen_pi_positions);
  const std::vector<Fault> sites = u.map_fault(fault);
  SeqAtpgResult r;
  if (sites.empty()) {
    r.status = AtpgStatus::kUntestable;
    return r;
  }
  const AtpgResult a = podem.generate_multi(sites, backtrack_limit);
  r.status = a.status;
  r.frames_used = frames;
  r.stats = a.stats;
  if (a.status == AtpgStatus::kDetected) {
    r.frame_inputs.assign(frames,
                          std::vector<V>(n.primary_inputs().size(), V::kX));
    for (int fr = 0; fr < frames; ++fr)
      for (std::size_t p = 0; p < n.primary_inputs().size(); ++p) {
        const int pos = u.pi_map[fr][p];
        if (pos >= 0) r.frame_inputs[fr][p] = a.pi_values[pos];
      }
  }
  return r;
}

}  // namespace

SeqAtpgResult sequential_atpg(const Netlist& n, const Fault& fault,
                              int max_frames, long backtrack_limit,
                              const std::vector<V>* initial_state,
                              int min_frames) {
  SeqAtpgResult best;
  AtpgStats accumulated;
  for (int frames = std::max(min_frames, 1); frames <= max_frames;
       ++frames) {
    SeqAtpgResult r =
        try_frames(n, fault, frames, backtrack_limit, initial_state);
    accumulated.decisions += r.stats.decisions;
    accumulated.backtracks += r.stats.backtracks;
    accumulated.implications += r.stats.implications;
    if (r.status == AtpgStatus::kDetected) {
      r.stats = accumulated;
      return r;
    }
    best = r;
  }
  best.stats = accumulated;
  // Exhausting the frame budget without proof of untestability is an abort
  // (more frames might succeed).
  if (best.status == AtpgStatus::kUntestable && max_frames > 0)
    best.status = AtpgStatus::kAborted;
  return best;
}

SeqAtpgCampaign run_sequential_atpg(const Netlist& n,
                                    const std::vector<Fault>& faults,
                                    int max_frames, long backtrack_limit,
                                    const FaultSimOptions& sim_options) {
  TSYN_SPAN("gl.atpg.seq");
  static util::Histogram& frames_hist =
      util::metrics().histogram("atpg.seq.frames_used");
  static util::Progress& p_targets = util::progress("atpg.targets");
  p_targets.add_total(static_cast<std::int64_t>(faults.size()));
  SeqAtpgCampaign c;
  std::vector<bool> handled(faults.size(), false);
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (handled[fi]) continue;
    const SeqAtpgResult r =
        sequential_atpg(n, faults[fi], max_frames, backtrack_limit);
    c.total.decisions += r.stats.decisions;
    c.total.backtracks += r.stats.backtracks;
    c.total.implications += r.stats.implications;
    handled[fi] = true;
    p_targets.add(1);
    switch (r.status) {
      case AtpgStatus::kDetected: {
        ++c.detected;
        frames_hist.observe(r.frames_used);
        // Drop other faults caught by this sequence.
        std::vector<std::vector<Bits>> frames_bits;
        for (const auto& frame : r.frame_inputs) {
          std::vector<Bits> b(frame.size());
          for (std::size_t i = 0; i < frame.size(); ++i) {
            switch (frame[i]) {
              case V::k0: b[i] = Bits::all0(); break;
              case V::k1: b[i] = Bits::all1(); break;
              case V::kX: b[i] = Bits::all0(); break;  // deterministic fill
            }
          }
          frames_bits.push_back(std::move(b));
        }
        std::vector<Fault> remaining;
        std::vector<std::size_t> remaining_idx;
        for (std::size_t j = fi + 1; j < faults.size(); ++j)
          if (!handled[j]) {
            remaining.push_back(faults[j]);
            remaining_idx.push_back(j);
          }
        const std::vector<bool> hit =
            sequential_fault_sim(n, frames_bits, remaining, sim_options);
        for (std::size_t k = 0; k < remaining.size(); ++k)
          if (hit[k]) {
            handled[remaining_idx[k]] = true;
            p_targets.add(1);
            ++c.detected;
          }
        break;
      }
      case AtpgStatus::kUntestable:
        ++c.untestable;
        break;
      case AtpgStatus::kAborted:
        ++c.aborted;
        break;
    }
  }
  const double total = static_cast<double>(faults.size());
  c.fault_coverage = total == 0 ? 1.0 : c.detected / total;
  c.fault_efficiency =
      total == 0 ? 1.0 : (c.detected + c.untestable) / total;
  static util::Counter& decisions =
      util::metrics().counter("atpg.seq.decisions");
  static util::Counter& backtracks =
      util::metrics().counter("atpg.seq.backtracks");
  static util::Counter& implications =
      util::metrics().counter("atpg.seq.implications");
  static util::Counter& detected =
      util::metrics().counter("atpg.seq.detected");
  static util::Counter& untestable =
      util::metrics().counter("atpg.seq.untestable");
  static util::Counter& aborted = util::metrics().counter("atpg.seq.aborted");
  decisions.add(c.total.decisions);
  backtracks.add(c.total.backtracks);
  implications.add(c.total.implications);
  detected.add(c.detected);
  untestable.add(c.untestable);
  aborted.add(c.aborted);
  return c;
}

}  // namespace tsyn::gl
