#include "hiertest/hier_atpg.h"

#include <algorithm>

#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "hls/datapath_builder.h"

namespace tsyn::hiertest {

HierAtpgResult hierarchical_atpg(const cdfg::Cdfg& g, const hls::Binding& b,
                                 int width) {
  const EnvAnalysis env = analyze_test_environments(g);
  HierAtpgResult result;
  result.modules = b.num_fus();
  result.modules_with_env = modules_with_env(g, b, env);

  for (int fu = 0; fu < b.num_fus(); ++fu) {
    // Kinds this unit implements.
    std::vector<cdfg::OpKind> kinds;
    bool has_env = false;
    for (cdfg::OpId o : b.fu_ops[fu]) {
      if (std::find(kinds.begin(), kinds.end(), g.op(o).kind) == kinds.end())
        kinds.push_back(g.op(o).kind);
      if (env.op_has_env[o]) has_env = true;
    }
    std::sort(kinds.begin(), kinds.end());
    const gl::Netlist unit = gl::expand_standalone_fu(kinds, width);
    const std::vector<gl::Fault> faults = gl::enumerate_faults(unit);
    result.faults_total += static_cast<long>(faults.size());
    if (!has_env) continue;  // no way to apply the module tests in situ

    const gl::AtpgCampaign campaign = gl::run_combinational_atpg(unit, faults);
    result.effort.decisions += campaign.total.decisions;
    result.effort.backtracks += campaign.total.backtracks;
    result.effort.implications += campaign.total.implications;
    result.faults_detected += static_cast<long>(
        campaign.fault_coverage * static_cast<double>(faults.size()) + 0.5);
  }
  result.module_fault_coverage =
      result.faults_total == 0
          ? 1.0
          : static_cast<double>(result.faults_detected) /
                static_cast<double>(result.faults_total);
  return result;
}

FlatAtpgResult flat_atpg(const cdfg::Cdfg& g, const hls::Schedule& s,
                         const hls::Binding& b, int width) {
  hls::RtlDesign design = hls::build_rtl(g, s, b);
  // Full scan: every register becomes PI/PO so the whole netlist is one
  // combinational ATPG problem (the conventional flat flow).
  for (rtl::RegisterInfo& r : design.datapath.regs)
    r.test_kind = rtl::TestRegKind::kScan;
  gl::ExpandOptions opts;
  opts.width_override = width;
  const gl::ExpandedDesign x = gl::expand_datapath(design.datapath, opts);
  const std::vector<gl::Fault> faults = gl::enumerate_faults(x.netlist);

  const gl::AtpgCampaign campaign =
      gl::run_combinational_atpg(x.netlist, faults);
  FlatAtpgResult result;
  result.fault_coverage = campaign.fault_coverage;
  result.effort = campaign.total;
  result.faults_total = static_cast<long>(faults.size());
  return result;
}

}  // namespace tsyn::hiertest
