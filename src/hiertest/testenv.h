// Test environments for hierarchical test (§6, [7],[38]).
//
// A module's precomputed (gate-level) tests can be reused at the top level
// only if a *test environment* exists: symbolic justification paths that
// deliver arbitrary values from primary inputs to the module's operand
// ports, and a propagation path that carries its response to a primary
// output. Justification composes through value-transparent operations
// (add with 0, multiply by 1, mux steering, ...). Genesis-style synthesis
// [7] biases the assignment so every module executes at least one operation
// that has a test environment.
#pragma once

#include <vector>

#include "cdfg/ir.h"
#include "hls/binding.h"

namespace tsyn::hiertest {

struct EnvAnalysis {
  /// Arbitrary values can be justified onto this variable from the PIs.
  std::vector<bool> justifiable;
  /// This variable's value can be propagated to a primary output.
  std::vector<bool> propagatable;
  /// The operation's inputs are justifiable and its output propagatable.
  std::vector<bool> op_has_env;

  int ops_with_env() const;
};

EnvAnalysis analyze_test_environments(const cdfg::Cdfg& g);

/// Modules of the binding that own at least one operation with a test
/// environment.
int modules_with_env(const cdfg::Cdfg& g, const hls::Binding& b,
                     const EnvAnalysis& env);

/// FU binding that spreads environment-carrying operations across modules
/// (the assignment assistance of [7]); registers conventional.
hls::Binding env_aware_binding(const cdfg::Cdfg& g, const hls::Schedule& s);

}  // namespace tsyn::hiertest
