// Hierarchical vs flat test generation (§6, [38],[29]).
//
// Hierarchical macro test: generate tests per module on its standalone
// netlist (small PODEM problems), then reuse them through the module's test
// environment. Flat test: PODEM over the whole expanded datapath. The
// surveyed claim — hierarchical generation is much faster at comparable
// coverage of module-internal faults, but only covers modules that have a
// test environment — is what this harness measures.
#pragma once

#include "cdfg/ir.h"
#include "gatelevel/atpg_comb.h"
#include "hiertest/testenv.h"
#include "hls/binding.h"

namespace tsyn::hiertest {

struct HierAtpgResult {
  int modules = 0;
  int modules_with_env = 0;
  /// Coverage over module-internal faults (weighted by fault count);
  /// modules without an environment contribute zero.
  double module_fault_coverage = 0;
  gl::AtpgStats effort;
  long faults_total = 0;
  long faults_detected = 0;
};

/// Runs per-module ATPG for every FU of the binding at the given bit width.
HierAtpgResult hierarchical_atpg(const cdfg::Cdfg& g, const hls::Binding& b,
                                 int width);

/// Flat baseline: full-scan PODEM campaign over the complete expanded
/// datapath (built from g + binding at `width`). Returns coverage over all
/// faults and the total effort.
struct FlatAtpgResult {
  double fault_coverage = 0;
  gl::AtpgStats effort;
  long faults_total = 0;
};

FlatAtpgResult flat_atpg(const cdfg::Cdfg& g, const hls::Schedule& s,
                         const hls::Binding& b, int width);

}  // namespace tsyn::hiertest
