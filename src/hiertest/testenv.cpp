#include "hiertest/testenv.h"

#include <algorithm>
#include <set>

#include "graph/clique_partition.h"

namespace tsyn::hiertest {

namespace {

using cdfg::OpKind;

/// Can the side operand be driven to the identity element of this op?
/// `side_controllable` = the side operand is justifiable; constants count
/// when they equal the identity.
bool side_neutralizable(const cdfg::Cdfg& g, OpKind kind, cdfg::VarId side,
                        const std::vector<bool>& justifiable) {
  const cdfg::Variable& v = g.var(side);
  if (justifiable[side]) return true;
  if (v.kind != cdfg::VarKind::kConstant) return false;
  switch (kind) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kOr:
    case OpKind::kXor:
      return v.constant_value == 0;
    case OpKind::kMul:
      return v.constant_value == 1;
    case OpKind::kAnd:
      return v.constant_value == -1 ||
             v.constant_value == (1L << v.width) - 1;
    default:
      return false;
  }
}

bool transparent_kind(OpKind k) {
  switch (k) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kAnd:
    case OpKind::kOr:
    case OpKind::kXor:
    case OpKind::kNot:
    case OpKind::kNeg:
    case OpKind::kCopy:
    case OpKind::kMux:
      return true;
    default:
      return false;  // comparisons and shifts lose information
  }
}

/// Justification transparency: output of op takes arbitrary values when
/// one operand is justifiable and the sides are neutralizable. Multiply
/// only composes with side == 1 (justifiable side is NOT enough to sweep
/// all values because of zero divisors); we accept justifiable sides for
/// add/sub/xor and constant identities elsewhere.
bool op_justifies_output(const cdfg::Cdfg& g, const cdfg::Operation& op,
                         const std::vector<bool>& justifiable) {
  switch (op.kind) {
    case OpKind::kNot:
    case OpKind::kNeg:
    case OpKind::kCopy:
      return justifiable[op.inputs[0]];
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kXor:
      // One controllable operand suffices: the other side's value is
      // deterministic, so the offset is compensated symbolically.
      return justifiable[op.inputs[0]] || justifiable[op.inputs[1]];
    case OpKind::kMul:
    case OpKind::kAnd:
    case OpKind::kOr: {
      // Identity side required.
      return (justifiable[op.inputs[0]] &&
              side_neutralizable(g, op.kind, op.inputs[1], justifiable)) ||
             (justifiable[op.inputs[1]] &&
              side_neutralizable(g, op.kind, op.inputs[0], justifiable));
    }
    case OpKind::kMux:
      return justifiable[op.inputs[0]] &&
             (justifiable[op.inputs[1]] || justifiable[op.inputs[2]]);
    default:
      return false;
  }
}

}  // namespace

int EnvAnalysis::ops_with_env() const {
  return static_cast<int>(
      std::count(op_has_env.begin(), op_has_env.end(), true));
}

EnvAnalysis analyze_test_environments(const cdfg::Cdfg& g) {
  EnvAnalysis env;
  env.justifiable.assign(g.num_vars(), false);
  env.propagatable.assign(g.num_vars(), false);
  env.op_has_env.assign(g.num_ops(), false);

  for (const cdfg::Variable& v : g.vars()) {
    if (v.kind == cdfg::VarKind::kPrimaryInput) env.justifiable[v.id] = true;
    if (v.is_output) env.propagatable[v.id] = true;
  }

  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < g.num_vars() + 4) {
    changed = false;
    // Justification: forward.
    for (const cdfg::Operation& op : g.ops()) {
      if (env.justifiable[op.output]) continue;
      if (op_justifies_output(g, op, env.justifiable)) {
        env.justifiable[op.output] = true;
        changed = true;
      }
    }
    for (cdfg::VarId s : g.states()) {
      // The state holds last iteration's update value: justifiable across
      // an iteration boundary if the update is.
      if (!env.justifiable[s] &&
          env.justifiable[g.var(s).update_var]) {
        env.justifiable[s] = true;
        changed = true;
      }
    }
    // Propagation: backward.
    for (const cdfg::Operation& op : g.ops()) {
      if (!env.propagatable[op.output] || !transparent_kind(op.kind))
        continue;
      for (std::size_t i = 0; i < op.inputs.size(); ++i) {
        if (env.propagatable[op.inputs[i]]) continue;
        bool sides_ok = true;
        if (op.kind == OpKind::kMux) {
          // Propagate a data leg by steering the (justifiable) select.
          if (i == 0) continue;
          sides_ok = env.justifiable[op.inputs[0]];
        } else {
          for (std::size_t jj = 0; jj < op.inputs.size(); ++jj)
            if (jj != i &&
                !side_neutralizable(g, op.kind, op.inputs[jj],
                                    env.justifiable))
              sides_ok = false;
        }
        if (sides_ok) {
          env.propagatable[op.inputs[i]] = true;
          changed = true;
        }
      }
    }
    for (cdfg::VarId s : g.states()) {
      if (env.propagatable[s] &&
          !env.propagatable[g.var(s).update_var]) {
        env.propagatable[g.var(s).update_var] = true;
        changed = true;
      }
    }
  }

  for (cdfg::OpId o = 0; o < g.num_ops(); ++o) {
    const cdfg::Operation& op = g.op(o);
    bool ok = env.propagatable[op.output];
    for (cdfg::VarId in : op.inputs) {
      const cdfg::Variable& v = g.var(in);
      if (v.kind == cdfg::VarKind::kConstant) continue;  // fixed operand
      if (!env.justifiable[in]) ok = false;
    }
    env.op_has_env[o] = ok;
  }
  return env;
}

int modules_with_env(const cdfg::Cdfg& g, const hls::Binding& b,
                     const EnvAnalysis& env) {
  std::set<int> covered;
  for (cdfg::OpId o = 0; o < g.num_ops(); ++o)
    if (b.fu_of_op[o] >= 0 && env.op_has_env[o])
      covered.insert(b.fu_of_op[o]);
  (void)g;
  return static_cast<int>(covered.size());
}

namespace {

struct EnvCtx {
  const std::vector<bool>* op_has_env;
};

double env_weight(graph::NodeId u, graph::NodeId v, const void* ctx) {
  const auto* c = static_cast<const EnvCtx*>(ctx);
  const bool eu = (*c->op_has_env)[u];
  const bool ev = (*c->op_has_env)[v];
  if (eu && ev) return -3.0;  // spread environment carriers apart
  if (eu != ev) return 3.0;   // attach env-less ops to a carrier
  return 0.0;
}

}  // namespace

hls::Binding env_aware_binding(const cdfg::Cdfg& g, const hls::Schedule& s) {
  const EnvAnalysis env = analyze_test_environments(g);
  graph::UndirectedGraph compat(g.num_ops());
  for (cdfg::OpId i = 0; i < g.num_ops(); ++i) {
    if (g.op(i).kind == cdfg::OpKind::kCopy) continue;
    for (cdfg::OpId j = i + 1; j < g.num_ops(); ++j) {
      if (g.op(j).kind == cdfg::OpKind::kCopy) continue;
      if (hls::ops_compatible(g, s, i, j)) compat.add_edge(i, j);
    }
  }
  EnvCtx ctx{&env.op_has_env};
  const graph::CliquePartition part =
      graph::clique_partition(compat, env_weight, &ctx);

  std::vector<int> fu_of_op(g.num_ops(), -1);
  int next = 0;
  for (const auto& clique : part.cliques) {
    bool real = false;
    for (graph::NodeId o : clique)
      if (g.op(o).kind != cdfg::OpKind::kCopy) real = true;
    if (!real) continue;
    for (graph::NodeId o : clique) fu_of_op[o] = next;
    ++next;
  }
  return hls::make_binding_with_fu_map(g, s, fu_of_op);
}

}  // namespace tsyn::hiertest
