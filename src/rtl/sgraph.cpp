#include "rtl/sgraph.h"

#include "graph/paths.h"
#include "graph/scc.h"

namespace tsyn::rtl {

graph::Digraph build_sgraph(const Datapath& dp, bool exclude_scan) {
  const int n = dp.num_regs();
  graph::Digraph g(n);
  auto scanned = [&](int r) {
    return exclude_scan && dp.regs[r].test_kind != TestRegKind::kNone;
  };
  for (int r = 0; r < n; ++r) {
    if (scanned(r)) continue;
    for (const Source& s : dp.regs[r].drivers) {
      if (s.kind == Source::Kind::kRegister) {
        if (!scanned(s.index)) g.add_edge_unique(s.index, r);
      } else if (s.kind == Source::Kind::kFu) {
        const FuInfo& fu = dp.fus[s.index];
        for (const auto& port : fu.port_drivers)
          for (const Source& ps : port)
            if (ps.kind == Source::Kind::kRegister && !scanned(ps.index))
              g.add_edge_unique(ps.index, r);
      }
    }
  }
  return g;
}

std::string to_string(LoopClass c) {
  switch (c) {
    case LoopClass::kSelfLoop: return "self";
    case LoopClass::kCdfgLoop: return "cdfg";
    case LoopClass::kAssignmentLoop: return "assignment";
  }
  return "?";
}

std::vector<DatapathLoop> analyze_loops(const Datapath& dp, bool exclude_scan,
                                        std::size_t max_loops) {
  const graph::Digraph g = build_sgraph(dp, exclude_scan);
  std::vector<DatapathLoop> out;
  for (graph::Cycle& c : graph::elementary_cycles(g, max_loops)) {
    DatapathLoop loop;
    if (c.size() == 1) {
      loop.kind = LoopClass::kSelfLoop;
    } else {
      loop.kind = LoopClass::kAssignmentLoop;
      for (graph::NodeId r : c)
        if (dp.regs[r].holds_state) {
          loop.kind = LoopClass::kCdfgLoop;
          break;
        }
    }
    loop.registers = std::move(c);
    out.push_back(std::move(loop));
  }
  return out;
}

LoopStats loop_stats(const Datapath& dp, bool exclude_scan) {
  LoopStats stats;
  for (const DatapathLoop& l : analyze_loops(dp, exclude_scan)) {
    switch (l.kind) {
      case LoopClass::kSelfLoop: ++stats.self_loops; break;
      case LoopClass::kCdfgLoop: ++stats.cdfg_loops; break;
      case LoopClass::kAssignmentLoop: ++stats.assignment_loops; break;
    }
  }
  return stats;
}

int datapath_sequential_depth(const Datapath& dp, bool exclude_scan) {
  const graph::Digraph g = build_sgraph(dp, exclude_scan);
  const auto depth = graph::sequential_depth(g);
  return depth ? *depth : -1;
}

int io_register_count(const Datapath& dp) {
  int count = 0;
  for (const RegisterInfo& r : dp.regs)
    if (r.is_input || r.is_output) ++count;
  return count;
}

}  // namespace tsyn::rtl
