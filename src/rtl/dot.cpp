#include "rtl/dot.h"

#include <sstream>

#include "rtl/sgraph.h"

namespace tsyn::rtl {

namespace {

std::string reg_color(TestRegKind k) {
  switch (k) {
    case TestRegKind::kNone: return "white";
    case TestRegKind::kScan: return "lightsalmon";
    case TestRegKind::kTpgr: return "lightblue";
    case TestRegKind::kSr: return "lightgreen";
    case TestRegKind::kBilbo: return "khaki";
    case TestRegKind::kCbilbo: return "orangered";
  }
  return "white";
}

}  // namespace

std::string datapath_to_dot(const Datapath& dp) {
  std::ostringstream out;
  out << "digraph \"" << dp.name << "\" {\n  rankdir=LR;\n"
      << "  node [fontsize=10];\n";
  for (std::size_t i = 0; i < dp.primary_inputs.size(); ++i)
    out << "  pi" << i << " [label=\"" << dp.primary_inputs[i].name
        << "\", shape=invtriangle];\n";
  for (int r = 0; r < dp.num_regs(); ++r)
    out << "  r" << r << " [label=\"" << dp.regs[r].name << "\\n"
        << to_string(dp.regs[r].test_kind)
        << "\", shape=box, style=filled, fillcolor="
        << reg_color(dp.regs[r].test_kind) << "];\n";
  for (int f = 0; f < dp.num_fus(); ++f)
    out << "  f" << f << " [label=\"" << dp.fus[f].name
        << "\", shape=trapezium, style=filled, fillcolor=lightgray];\n";

  auto src_name = [&](const Source& s) -> std::string {
    switch (s.kind) {
      case Source::Kind::kRegister: return "r" + std::to_string(s.index);
      case Source::Kind::kFu: return "f" + std::to_string(s.index);
      case Source::Kind::kPrimaryInput:
        return "pi" + std::to_string(s.index);
      case Source::Kind::kConstant: return "";
    }
    return "";
  };
  for (int r = 0; r < dp.num_regs(); ++r)
    for (const Source& s : dp.regs[r].drivers) {
      const std::string from = src_name(s);
      if (!from.empty()) out << "  " << from << " -> r" << r << ";\n";
    }
  for (int f = 0; f < dp.num_fus(); ++f)
    for (std::size_t p = 0; p < dp.fus[f].port_drivers.size(); ++p)
      for (const Source& s : dp.fus[f].port_drivers[p]) {
        const std::string from = src_name(s);
        if (!from.empty())
          out << "  " << from << " -> f" << f << " [label=\"p" << p
              << "\", fontsize=8];\n";
      }
  for (std::size_t o = 0; o < dp.primary_outputs.size(); ++o) {
    out << "  po" << o << " [label=\"" << dp.primary_outputs[o].name
        << "\", shape=triangle];\n";
    out << "  r" << dp.primary_outputs[o].source.index << " -> po" << o
        << ";\n";
  }
  out << "}\n";
  return out.str();
}

std::string sgraph_to_dot(const Datapath& dp) {
  const graph::Digraph s = build_sgraph(dp);
  std::ostringstream out;
  out << "digraph sgraph {\n  node [shape=box, fontsize=10];\n";
  for (int r = 0; r < dp.num_regs(); ++r) {
    const bool scanned = dp.regs[r].test_kind != TestRegKind::kNone;
    out << "  r" << r << " [label=\"" << dp.regs[r].name << "\""
        << (scanned ? ", style=dashed, color=red" : "") << "];\n";
  }
  for (int u = 0; u < s.num_nodes(); ++u)
    for (int v : s.successors(u)) out << "  r" << u << " -> r" << v << ";\n";
  out << "}\n";
  return out.str();
}

}  // namespace tsyn::rtl
