#include "rtl/dot.h"

#include <cstdio>
#include <sstream>

#include "rtl/sgraph.h"

namespace tsyn::rtl {

namespace {

std::string reg_color(TestRegKind k) {
  switch (k) {
    case TestRegKind::kNone: return "white";
    case TestRegKind::kScan: return "lightsalmon";
    case TestRegKind::kTpgr: return "lightblue";
    case TestRegKind::kSr: return "lightgreen";
    case TestRegKind::kBilbo: return "khaki";
    case TestRegKind::kCbilbo: return "orangered";
  }
  return "white";
}

double heat_value(const std::vector<double>& heat, int i) {
  return i >= 0 && i < static_cast<int>(heat.size())
             ? heat[static_cast<std::size_t>(i)]
             : -1.0;
}

/// Red -> yellow -> green ramp over [0,1] as a "#rrggbb" hex color.
std::string heat_color(double v) {
  if (v < 0) v = 0;
  if (v > 1) v = 1;
  const auto lerp = [](int a, int b, double t) {
    return static_cast<int>(a + (b - a) * t + 0.5);
  };
  int r, g, b;
  if (v < 0.5) {  // #d73027 -> #fee08b
    r = lerp(0xd7, 0xfe, v * 2), g = lerp(0x30, 0xe0, v * 2),
    b = lerp(0x27, 0x8b, v * 2);
  } else {  // #fee08b -> #1a9850
    r = lerp(0xfe, 0x1a, v * 2 - 1), g = lerp(0xe0, 0x98, v * 2 - 1),
    b = lerp(0x8b, 0x50, v * 2 - 1);
  }
  char buf[8];
  std::snprintf(buf, sizeof buf, "#%02x%02x%02x", r, g, b);
  return buf;
}

/// "87%" with round-half-up — deterministic across platforms.
std::string heat_pct(double v) {
  return std::to_string(static_cast<int>(v * 100.0 + 0.5)) + "%";
}

}  // namespace

std::string datapath_to_dot(const Datapath& dp, const DatapathHeat* heat) {
  std::ostringstream out;
  out << "digraph \"" << dp.name << "\" {\n  rankdir=LR;\n"
      << "  node [fontsize=10];\n";
  for (std::size_t i = 0; i < dp.primary_inputs.size(); ++i)
    out << "  pi" << i << " [label=\"" << dp.primary_inputs[i].name
        << "\", shape=invtriangle];\n";
  for (int r = 0; r < dp.num_regs(); ++r) {
    const double h = heat ? heat_value(heat->reg, r) : -1.0;
    out << "  r" << r << " [label=\"" << dp.regs[r].name << "\\n"
        << to_string(dp.regs[r].test_kind);
    if (h >= 0) out << "\\n" << heat_pct(h);
    out << "\", shape=box, style=filled, fillcolor=";
    // Hex colors need quoting; plain named colors stay unquoted so the
    // no-heat rendering is byte-identical to what it always was.
    if (h >= 0)
      out << "\"" << heat_color(h) << "\"";
    else
      out << reg_color(dp.regs[r].test_kind);
    out << "];\n";
  }
  for (int f = 0; f < dp.num_fus(); ++f) {
    const double h = heat ? heat_value(heat->fu, f) : -1.0;
    out << "  f" << f << " [label=\"" << dp.fus[f].name;
    if (h >= 0) out << "\\n" << heat_pct(h);
    out << "\", shape=trapezium, style=filled, fillcolor=";
    if (h >= 0)
      out << "\"" << heat_color(h) << "\"";
    else
      out << "lightgray";
    out << "];\n";
  }

  auto src_name = [&](const Source& s) -> std::string {
    switch (s.kind) {
      case Source::Kind::kRegister: return "r" + std::to_string(s.index);
      case Source::Kind::kFu: return "f" + std::to_string(s.index);
      case Source::Kind::kPrimaryInput:
        return "pi" + std::to_string(s.index);
      case Source::Kind::kConstant: return "";
    }
    return "";
  };
  for (int r = 0; r < dp.num_regs(); ++r)
    for (const Source& s : dp.regs[r].drivers) {
      const std::string from = src_name(s);
      if (!from.empty()) out << "  " << from << " -> r" << r << ";\n";
    }
  for (int f = 0; f < dp.num_fus(); ++f)
    for (std::size_t p = 0; p < dp.fus[f].port_drivers.size(); ++p)
      for (const Source& s : dp.fus[f].port_drivers[p]) {
        const std::string from = src_name(s);
        if (!from.empty())
          out << "  " << from << " -> f" << f << " [label=\"p" << p
              << "\", fontsize=8];\n";
      }
  for (std::size_t o = 0; o < dp.primary_outputs.size(); ++o) {
    out << "  po" << o << " [label=\"" << dp.primary_outputs[o].name
        << "\", shape=triangle];\n";
    out << "  r" << dp.primary_outputs[o].source.index << " -> po" << o
        << ";\n";
  }
  out << "}\n";
  return out.str();
}

std::string sgraph_to_dot(const Datapath& dp) {
  const graph::Digraph s = build_sgraph(dp);
  std::ostringstream out;
  out << "digraph sgraph {\n  node [shape=box, fontsize=10];\n";
  for (int r = 0; r < dp.num_regs(); ++r) {
    const bool scanned = dp.regs[r].test_kind != TestRegKind::kNone;
    out << "  r" << r << " [label=\"" << dp.regs[r].name << "\""
        << (scanned ? ", style=dashed, color=red" : "") << "];\n";
  }
  for (int u = 0; u < s.num_nodes(); ++u)
    for (int v : s.successors(u)) out << "  r" << u << " -> r" << v << ";\n";
  out << "}\n";
  return out.str();
}

}  // namespace tsyn::rtl
