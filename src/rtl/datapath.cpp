#include "rtl/datapath.h"

#include <sstream>
#include <stdexcept>

namespace tsyn::rtl {

std::string to_string(TestRegKind k) {
  switch (k) {
    case TestRegKind::kNone: return "reg";
    case TestRegKind::kScan: return "scan";
    case TestRegKind::kTpgr: return "TPGR";
    case TestRegKind::kSr: return "SR";
    case TestRegKind::kBilbo: return "BILBO";
    case TestRegKind::kCbilbo: return "CBILBO";
  }
  return "?";
}

int Datapath::mux2_count() const {
  int muxes = 0;
  for (const RegisterInfo& r : regs)
    if (r.drivers.size() > 1)
      muxes += static_cast<int>(r.drivers.size()) - 1;
  for (const FuInfo& f : fus)
    for (const auto& port : f.port_drivers)
      if (port.size() > 1) muxes += static_cast<int>(port.size()) - 1;
  return muxes;
}

std::vector<int> Datapath::scan_registers() const {
  std::vector<int> out;
  for (int r = 0; r < num_regs(); ++r)
    if (regs[r].test_kind != TestRegKind::kNone) out.push_back(r);
  return out;
}

void Datapath::validate() const {
  auto check_source = [&](const Source& s, bool allow_fu,
                          const std::string& where) {
    switch (s.kind) {
      case Source::Kind::kRegister:
        if (s.index < 0 || s.index >= num_regs())
          throw std::runtime_error(where + ": bad register index");
        break;
      case Source::Kind::kFu:
        if (!allow_fu)
          throw std::runtime_error(where + ": FU chained into an FU port");
        if (s.index < 0 || s.index >= num_fus())
          throw std::runtime_error(where + ": bad FU index");
        break;
      case Source::Kind::kPrimaryInput:
        if (s.index < 0 ||
            s.index >= static_cast<int>(primary_inputs.size()))
          throw std::runtime_error(where + ": bad primary input index");
        break;
      case Source::Kind::kConstant:
        if (s.index < 0 || s.index >= static_cast<int>(constants.size()))
          throw std::runtime_error(where + ": bad constant index");
        break;
    }
  };
  for (const RegisterInfo& r : regs)
    for (const Source& s : r.drivers)
      check_source(s, /*allow_fu=*/true, "register " + r.name);
  for (const FuInfo& f : fus) {
    if (f.port_drivers.empty())
      throw std::runtime_error("FU " + f.name + " has no ports");
    for (const auto& port : f.port_drivers)
      for (const Source& s : port)
        check_source(s, /*allow_fu=*/false, "fu " + f.name);
  }
  for (const PrimaryOutputInfo& po : primary_outputs) {
    if (po.source.kind != Source::Kind::kRegister)
      throw std::runtime_error("primary output " + po.name +
                               " not register-sourced");
    check_source(po.source, false, "primary output " + po.name);
  }
}

std::string Datapath::to_string() const {
  std::ostringstream out;
  out << "datapath " << name << ": " << num_regs() << " regs, " << num_fus()
      << " fus, " << mux2_count() << " mux2, "
      << primary_inputs.size() << " PIs, " << primary_outputs.size()
      << " POs\n";
  for (const RegisterInfo& r : regs) {
    out << "  " << rtl::to_string(r.test_kind) << " " << r.name << " ["
        << r.drivers.size() << " drv]";
    if (r.is_input) out << " in";
    if (r.is_output) out << " out";
    if (r.holds_state) out << " state";
    out << "\n";
  }
  for (const FuInfo& f : fus) {
    out << "  " << cdfg::to_string(f.type) << " " << f.name << " (";
    for (std::size_t p = 0; p < f.port_drivers.size(); ++p) {
      if (p) out << ", ";
      out << f.port_drivers[p].size() << " drv";
    }
    out << ")\n";
  }
  return out.str();
}

}  // namespace tsyn::rtl
