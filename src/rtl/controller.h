// Controller (control FSM) model and control-vector analysis (§3.5, [14]).
//
// The controller steps through the schedule and drives the datapath's mux
// selects and register load-enables. In functional mode only the vectors in
// this table ever appear at the control outputs; combinations of control
// values that never co-occur are *control signal implications* which create
// conflicts during sequential ATPG on the composite circuit. The DFT remedy
// of Dey/Gangaram/Potkonjak [14] adds a few extra (test-mode-only) control
// vectors that realize the missing combinations.
#pragma once

#include <string>
#include <vector>

#include "util/rng.h"

namespace tsyn::rtl {

struct ControlSignal {
  std::string name;
  int num_values = 2;  ///< cardinality (mux with k drivers has k values)
};

/// Control table: one output vector per control step (plus any appended
/// test vectors). Entry -1 is a don't-care (the signal's consumer is
/// inactive that step, e.g. a mux select while its register holds).
class Controller {
 public:
  int add_signal(const std::string& name, int num_values);
  /// Appends a vector (size must equal #signals); returns its index.
  int add_vector(std::vector<int> values, bool is_test_vector = false);

  int num_signals() const { return static_cast<int>(signals_.size()); }
  int num_vectors() const { return static_cast<int>(vectors_.size()); }
  int num_test_vectors() const { return num_test_vectors_; }
  const ControlSignal& signal(int s) const { return signals_.at(s); }
  const std::vector<int>& vector(int v) const { return vectors_.at(v); }

  /// True if some vector has signal s == value (don't-cares count as
  /// realizable: ATPG may choose them freely).
  bool value_occurs(int s, int value) const;

  /// True if some vector realizes s1==v1 and s2==v2 simultaneously.
  bool pair_occurs(int s1, int v1, int s2, int v2) const;

 private:
  std::vector<ControlSignal> signals_;
  std::vector<std::vector<int>> vectors_;
  int num_test_vectors_ = 0;
};

/// A pairwise implication conflict: both assignments occur individually but
/// never together, so ATPG cannot justify them simultaneously.
struct PairConflict {
  int signal_a = 0;
  int value_a = 0;
  int signal_b = 0;
  int value_b = 0;
};

/// Enumerates all pairwise conflicts of a control table.
std::vector<PairConflict> find_pair_conflicts(const Controller& c);

/// The controller DFT of [14]: appends a minimal greedy set of extra control
/// vectors so every previously conflicting pair is realized by some vector.
/// Unconstrained entries of the new vectors are filled with don't-cares.
/// Returns the number of vectors added.
int add_conflict_resolving_vectors(Controller& c);

/// Conflict-freedom measure in [0,1]: fraction of (occurring-value) pairs
/// that are simultaneously realizable. 1.0 means no implications constrain
/// ATPG.
double pair_coverage(const Controller& c);

}  // namespace tsyn::rtl
