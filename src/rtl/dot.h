// Graphviz (DOT) export of datapaths and their S-graphs.
#pragma once

#include <string>
#include <vector>

#include "rtl/datapath.h"

namespace tsyn::rtl {

/// Fault-coverage overlay for datapath_to_dot: one value in [0,1] per
/// register / FU (typically observe::register_heat / observe::fu_heat),
/// -1 or missing = no data (node keeps its structural color). Covered
/// components render green, uncovered red.
struct DatapathHeat {
  std::vector<double> reg;
  std::vector<double> fu;
};

/// Structural view: registers, FUs, and the driver edges between them.
/// Scan/BIST registers are colored by role. With `heat`, nodes are
/// re-colored on a red->yellow->green coverage ramp and labels gain the
/// coverage percentage; without it the output is byte-identical to the
/// plain rendering.
std::string datapath_to_dot(const Datapath& dp,
                            const DatapathHeat* heat = nullptr);

/// S-graph view: one node per register, an edge per combinational path;
/// scanned registers dashed.
std::string sgraph_to_dot(const Datapath& dp);

}  // namespace tsyn::rtl
