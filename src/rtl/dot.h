// Graphviz (DOT) export of datapaths and their S-graphs.
#pragma once

#include <string>

#include "rtl/datapath.h"

namespace tsyn::rtl {

/// Structural view: registers, FUs, and the driver edges between them.
/// Scan/BIST registers are colored by role.
std::string datapath_to_dot(const Datapath& dp);

/// S-graph view: one node per register, an edge per combinational path;
/// scanned registers dashed.
std::string sgraph_to_dot(const Datapath& dp);

}  // namespace tsyn::rtl
