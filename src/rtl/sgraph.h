// S-graph extraction and loop taxonomy (§3.1, §3.3).
//
// The S-graph has one node per register and an edge u -> v when a strictly
// combinational path runs from register u to register v. Sequential ATPG
// effort grows empirically ~exponentially with the length of S-graph cycles
// and ~linearly with sequential depth, so every testability-driven synthesis
// technique in the survey reasons about this graph.
#pragma once

#include <string>
#include <vector>

#include "graph/cycles.h"
#include "graph/digraph.h"
#include "rtl/datapath.h"

namespace tsyn::rtl {

/// Builds the register-level S-graph of a datapath.
/// Scan registers (`exclude_scan`) are removed from the graph: in test mode
/// they are pseudo primary inputs/outputs and no longer propagate state.
graph::Digraph build_sgraph(const Datapath& dp, bool exclude_scan = false);

/// Classification of one S-graph loop, following the taxonomy of §3.3:
/// self-loops are tolerable; CDFG loops stem from loop-carried behavior;
/// assignment loops are artifacts of hardware sharing.
enum class LoopClass { kSelfLoop, kCdfgLoop, kAssignmentLoop };

std::string to_string(LoopClass c);

struct DatapathLoop {
  graph::Cycle registers;  ///< register indices along the loop
  LoopClass kind = LoopClass::kSelfLoop;
};

/// Enumerates and classifies all S-graph loops (after scan exclusion when
/// requested). A loop touching any state-holding register is a CDFG loop;
/// a length-1 loop is a self-loop; everything else is an assignment loop.
std::vector<DatapathLoop> analyze_loops(const Datapath& dp,
                                        bool exclude_scan = false,
                                        std::size_t max_loops = 10000);

/// Summary counters used across the benches.
struct LoopStats {
  int self_loops = 0;
  int cdfg_loops = 0;
  int assignment_loops = 0;
  int total() const { return self_loops + cdfg_loops + assignment_loops; }
  /// Loops other than self-loops, i.e. the ones sequential ATPG cares about.
  int breakable() const { return cdfg_loops + assignment_loops; }
};

LoopStats loop_stats(const Datapath& dp, bool exclude_scan = false);

/// Sequential depth of the datapath's S-graph ignoring self-loops;
/// -1 when non-self loops remain (depth undefined until they are broken).
int datapath_sequential_depth(const Datapath& dp, bool exclude_scan = false);

/// Number of registers directly connected to primary I/O: input registers
/// (loadable from a PI) plus output registers (observed at a PO). The
/// register C/O measure of §3.2.
int io_register_count(const Datapath& dp);

}  // namespace tsyn::rtl
