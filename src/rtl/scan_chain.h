// Scan chain construction and test application time.
//
// The survey's practical context: scan registers must be stitched into a
// serial chain, and every test pattern costs chain-length shift cycles.
// Test application time is therefore where partial scan pays off — fewer
// scanned bits means a shorter chain AND fewer shift cycles per pattern.
#pragma once

#include <vector>

#include "rtl/datapath.h"

namespace tsyn::rtl {

struct ScanChainPlan {
  /// Register indices in chain order (scan_in -> ... -> scan_out).
  std::vector<int> order;
  /// Total scannable bits (sum of chained register widths).
  int chain_bits = 0;
  /// Stitching cost under the index-distance proxy for wire length.
  int wire_cost = 0;

  /// Cycles to apply `num_patterns` scan patterns: per pattern, shift-in
  /// chain_bits, one capture cycle; plus the final shift-out.
  long test_cycles(int num_patterns) const {
    if (chain_bits == 0) return num_patterns;  // combinational application
    return static_cast<long>(num_patterns) * (chain_bits + 1) + chain_bits;
  }
};

/// Builds a chain over all registers with test_kind != kNone, ordered by a
/// nearest-neighbor heuristic on the register index distance (a placement
/// proxy: registers with close indices were allocated together).
ScanChainPlan build_scan_chain(const Datapath& dp);

}  // namespace tsyn::rtl
