// Structural area and delay model.
//
// The survey's area claims are relative overhead percentages, so a
// gate-equivalent (GE) model suffices: each component contributes a per-bit
// GE cost calibrated to typical standard-cell libraries of the era. Test
// register variants carry their published overheads (scan FF ~ +30% of a FF;
// BILBO adds XOR feedback + mode logic; CBILBO roughly doubles a BILBO).
#pragma once

#include "rtl/datapath.h"

namespace tsyn::rtl {

struct AreaModel {
  // Gate equivalents per bit.
  double ff = 6.0;
  double scan_ff_extra = 2.0;     ///< scan mux + routing per bit
  double tpgr_extra = 3.0;        ///< LFSR feedback XOR + mode mux per bit
  double sr_extra = 3.0;          ///< MISR compactor per bit
  double bilbo_extra = 4.5;       ///< combined TPGR/SR mode logic per bit
  double cbilbo_extra = 10.0;     ///< duplicated register + both modes
  double mux2 = 3.0;              ///< one 2:1 mux per bit
  double alu_per_bit = 12.0;      ///< add/sub/logic/compare ALU slice
  double adder_per_bit = 5.0;     ///< plain ripple adder cell
  double multiplier_per_bit2 = 5.0;  ///< array multiplier, per bit^2
  double divider_per_bit2 = 8.0;
  double shifter_per_bit = 4.0;
  double copy_per_bit = 0.0;      ///< wires only
};

/// Area of one register including its test configuration, in GE.
double register_area(const RegisterInfo& reg, const AreaModel& m = {});

/// Area of one functional unit, in GE.
double fu_area(const FuInfo& fu, const AreaModel& m = {});

/// Total datapath area: registers + FUs + interconnect muxes, in GE.
double datapath_area(const Datapath& dp, const AreaModel& m = {});

/// Area of the same datapath with all test_kind fields treated as kNone;
/// the denominator of test-overhead percentages.
double datapath_functional_area(const Datapath& dp, const AreaModel& m = {});

/// Test area overhead fraction: (area - functional area) / functional area.
double test_area_overhead(const Datapath& dp, const AreaModel& m = {});

}  // namespace tsyn::rtl
