#include "rtl/area.h"

namespace tsyn::rtl {

double register_area(const RegisterInfo& reg, const AreaModel& m) {
  double per_bit = m.ff;
  switch (reg.test_kind) {
    case TestRegKind::kNone: break;
    case TestRegKind::kScan: per_bit += m.scan_ff_extra; break;
    case TestRegKind::kTpgr: per_bit += m.tpgr_extra; break;
    case TestRegKind::kSr: per_bit += m.sr_extra; break;
    case TestRegKind::kBilbo: per_bit += m.bilbo_extra; break;
    case TestRegKind::kCbilbo: per_bit += m.cbilbo_extra; break;
  }
  return per_bit * reg.width;
}

double fu_area(const FuInfo& fu, const AreaModel& m) {
  const double w = fu.width;
  switch (fu.type) {
    case cdfg::FuType::kAlu: return m.alu_per_bit * w;
    case cdfg::FuType::kMultiplier: return m.multiplier_per_bit2 * w * w;
    case cdfg::FuType::kDivider: return m.divider_per_bit2 * w * w;
    case cdfg::FuType::kShifter: return m.shifter_per_bit * w;
    case cdfg::FuType::kMux: return m.mux2 * w;
    case cdfg::FuType::kCopyUnit: return m.copy_per_bit * w;
  }
  return 0;
}

namespace {

double interconnect_area(const Datapath& dp, const AreaModel& m) {
  // Every extra driver on a port costs one 2:1 mux slice per bit.
  double area = 0;
  for (const RegisterInfo& r : dp.regs)
    if (r.drivers.size() > 1)
      area += (static_cast<double>(r.drivers.size()) - 1) * m.mux2 * r.width;
  for (const FuInfo& f : dp.fus)
    for (const auto& port : f.port_drivers)
      if (port.size() > 1)
        area += (static_cast<double>(port.size()) - 1) * m.mux2 * f.width;
  return area;
}

}  // namespace

double datapath_area(const Datapath& dp, const AreaModel& m) {
  double area = interconnect_area(dp, m);
  for (const RegisterInfo& r : dp.regs) area += register_area(r, m);
  for (const FuInfo& f : dp.fus) area += fu_area(f, m);
  return area;
}

double datapath_functional_area(const Datapath& dp, const AreaModel& m) {
  double area = interconnect_area(dp, m);
  for (RegisterInfo r : dp.regs) {
    r.test_kind = TestRegKind::kNone;
    area += register_area(r, m);
  }
  for (const FuInfo& f : dp.fus) area += fu_area(f, m);
  return area;
}

double test_area_overhead(const Datapath& dp, const AreaModel& m) {
  const double functional = datapath_functional_area(dp, m);
  if (functional <= 0) return 0;
  return (datapath_area(dp, m) - functional) / functional;
}

}  // namespace tsyn::rtl
