// Structural Verilog emission for RTL designs.
//
// Writes the synthesized datapath (registers, FUs, mux trees) and its
// controller (state counter + vector decode) as synthesizable Verilog-2001,
// so tsyn output can be taken into any downstream flow. Scan registers get
// a scan port chain (scan_en/scan_in/scan_out) stitched in register order.
#pragma once

#include <string>

#include "rtl/controller.h"
#include "rtl/datapath.h"

namespace tsyn::rtl {

struct VerilogOptions {
  std::string module_name;  ///< default: datapath name
  /// Emit the controller FSM and wire its outputs to the control ports;
  /// false leaves mux selects / load enables as module inputs (test mode).
  bool include_controller = true;
  /// Stitch test_kind != kNone registers into a scan chain.
  bool emit_scan_chain = true;
};

/// Emits one self-contained Verilog module for the design.
std::string emit_verilog(const Datapath& dp, const Controller& ctrl,
                         const VerilogOptions& opts = {});

}  // namespace tsyn::rtl
