#include "rtl/scan_chain.h"

#include <algorithm>
#include <cstdlib>

namespace tsyn::rtl {

ScanChainPlan build_scan_chain(const Datapath& dp) {
  ScanChainPlan plan;
  std::vector<int> pool = dp.scan_registers();
  if (pool.empty()) return plan;

  // Nearest-neighbor stitching from the lowest-index register.
  std::sort(pool.begin(), pool.end());
  int current = pool.front();
  plan.order.push_back(current);
  pool.erase(pool.begin());
  while (!pool.empty()) {
    auto best = pool.begin();
    for (auto it = pool.begin(); it != pool.end(); ++it)
      if (std::abs(*it - current) < std::abs(*best - current)) best = it;
    plan.wire_cost += std::abs(*best - current);
    current = *best;
    plan.order.push_back(current);
    pool.erase(best);
  }
  for (int r : plan.order) plan.chain_bits += dp.regs[r].width;
  return plan;
}

}  // namespace tsyn::rtl
