// RTL datapath netlist.
//
// The output of high-level synthesis: registers, functional units, and the
// interconnect between them (mux trees are implicit in multi-driver ports).
// All loop/testability analyses (§3.3) and the gate-level expansion consume
// this model.
//
// Structural invariant: FU operand ports are driven only by registers,
// primary inputs, or constants — scheduling does not chain FUs — so every
// combinational register-to-register path crosses at most one FU. Register
// inputs may be driven by FU outputs, registers (copy/transfer paths),
// primary inputs, or constants.
#pragma once

#include <string>
#include <vector>

#include "cdfg/ir.h"

namespace tsyn::rtl {

/// A combinational signal source in the datapath.
struct Source {
  enum class Kind { kRegister, kFu, kPrimaryInput, kConstant };
  Kind kind = Kind::kRegister;
  int index = -1;  ///< into regs/fus/primary_inputs/constants

  friend bool operator==(const Source&, const Source&) = default;
};

/// Kinds of test register a storage element can be configured as (§5, [21]).
enum class TestRegKind {
  kNone,     ///< plain functional register
  kScan,     ///< scan register (partial/full scan)
  kTpgr,     ///< pseudorandom test pattern generator
  kSr,       ///< signature register (response analyzer)
  kBilbo,    ///< TPGR or SR, one role per session
  kCbilbo,   ///< concurrent BILBO: TPGR and SR simultaneously (expensive)
};

std::string to_string(TestRegKind k);

struct RegisterInfo {
  std::string name;
  int width = 16;
  bool is_input = false;   ///< loaded from a primary input
  bool is_output = false;  ///< observed at a primary output
  bool holds_state = false;  ///< carries a value across iterations
  TestRegKind test_kind = TestRegKind::kNone;
  /// Distinct sources multiplexed into this register's data input.
  std::vector<Source> drivers;
  /// Variables stored here over the schedule (reporting/trace).
  std::vector<cdfg::VarId> vars;
  /// Provenance cross reference, parallel to `drivers` when recorded by
  /// hls::build_rtl: the CDFG ops whose results arrive through each driver
  /// (sorted, deduped; empty sub-list for op-less writes such as
  /// primary-input reloads). May be empty or shorter than `drivers` on
  /// hand-built datapaths or after transforms that add drivers — consumers
  /// must treat missing entries as unrecorded, not fail.
  std::vector<std::vector<cdfg::OpId>> driver_ops;
};

struct FuInfo {
  std::string name;
  cdfg::FuType type = cdfg::FuType::kAlu;
  int width = 16;
  /// Distinct sources multiplexed into each operand port.
  std::vector<std::vector<Source>> port_drivers;  // size = #ports (1..3)
  /// Operations executed on this unit (reporting/trace).
  std::vector<cdfg::OpId> ops;
  /// Distinct operation kinds this unit implements, sorted; the opcode
  /// control signal (if any) indexes into this list.
  std::vector<cdfg::OpKind> op_kinds;
  /// Provenance cross reference, parallel to `port_drivers` when recorded
  /// by hls::build_rtl: per port, per driver, the CDFG ops that read their
  /// operand through that driver (sorted, deduped). Same degrade-to-empty
  /// contract as RegisterInfo::driver_ops.
  std::vector<std::vector<std::vector<cdfg::OpId>>> port_driver_ops;
};

struct PrimaryInputInfo {
  std::string name;
  int width = 16;
};

struct ConstantInfo {
  std::string name;
  long value = 0;
  int width = 16;
};

struct PrimaryOutputInfo {
  std::string name;
  Source source;  ///< must be a register (outputs are registered)
};

/// The datapath netlist.
struct Datapath {
  std::string name;
  std::vector<RegisterInfo> regs;
  std::vector<FuInfo> fus;
  std::vector<PrimaryInputInfo> primary_inputs;
  std::vector<ConstantInfo> constants;
  std::vector<PrimaryOutputInfo> primary_outputs;

  int num_regs() const { return static_cast<int>(regs.size()); }
  int num_fus() const { return static_cast<int>(fus.size()); }

  /// Total 2:1-mux-equivalents implied by multi-driver ports
  /// (a k-driver port needs k-1 two-input muxes per bit).
  int mux2_count() const;

  /// Registers currently configured as scan (kScan or BILBO-family — all
  /// are scannable in test mode).
  std::vector<int> scan_registers() const;

  /// Validates the structural invariants; throws std::runtime_error.
  void validate() const;

  /// Human-readable structural summary.
  std::string to_string() const;
};

}  // namespace tsyn::rtl
