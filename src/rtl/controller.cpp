#include "rtl/controller.h"

#include <cassert>
#include <stdexcept>

namespace tsyn::rtl {

int Controller::add_signal(const std::string& name, int num_values) {
  assert(num_values >= 1);
  if (num_vectors() > 0)
    throw std::runtime_error("add signals before vectors");
  signals_.push_back({name, num_values});
  return num_signals() - 1;
}

int Controller::add_vector(std::vector<int> values, bool is_test_vector) {
  if (static_cast<int>(values.size()) != num_signals())
    throw std::runtime_error("control vector width mismatch");
  for (int s = 0; s < num_signals(); ++s)
    if (values[s] < -1 || values[s] >= signals_[s].num_values)
      throw std::runtime_error("control value out of range for " +
                               signals_[s].name);
  vectors_.push_back(std::move(values));
  if (is_test_vector) ++num_test_vectors_;
  return num_vectors() - 1;
}

bool Controller::value_occurs(int s, int value) const {
  for (const auto& vec : vectors_)
    if (vec[s] == value || vec[s] == -1) return true;
  return false;
}

bool Controller::pair_occurs(int s1, int v1, int s2, int v2) const {
  for (const auto& vec : vectors_) {
    const bool a = vec[s1] == v1 || vec[s1] == -1;
    const bool b = vec[s2] == v2 || vec[s2] == -1;
    if (a && b) return true;
  }
  return false;
}

std::vector<PairConflict> find_pair_conflicts(const Controller& c) {
  std::vector<PairConflict> conflicts;
  for (int s1 = 0; s1 < c.num_signals(); ++s1) {
    for (int v1 = 0; v1 < c.signal(s1).num_values; ++v1) {
      if (!c.value_occurs(s1, v1)) continue;
      for (int s2 = s1 + 1; s2 < c.num_signals(); ++s2) {
        for (int v2 = 0; v2 < c.signal(s2).num_values; ++v2) {
          if (!c.value_occurs(s2, v2)) continue;
          if (!c.pair_occurs(s1, v1, s2, v2))
            conflicts.push_back({s1, v1, s2, v2});
        }
      }
    }
  }
  return conflicts;
}

int add_conflict_resolving_vectors(Controller& c) {
  int added = 0;
  for (;;) {
    const std::vector<PairConflict> conflicts = find_pair_conflicts(c);
    if (conflicts.empty()) break;
    // Greedy: build one vector satisfying as many outstanding conflicts as
    // fit without contradicting each other.
    std::vector<int> vec(c.num_signals(), -1);
    int packed = 0;
    for (const PairConflict& pc : conflicts) {
      const bool a_ok = vec[pc.signal_a] == -1 || vec[pc.signal_a] == pc.value_a;
      const bool b_ok = vec[pc.signal_b] == -1 || vec[pc.signal_b] == pc.value_b;
      if (a_ok && b_ok) {
        vec[pc.signal_a] = pc.value_a;
        vec[pc.signal_b] = pc.value_b;
        ++packed;
      }
    }
    if (packed == 0) break;  // cannot happen, but guards non-termination
    c.add_vector(std::move(vec), /*is_test_vector=*/true);
    ++added;
  }
  return added;
}

double pair_coverage(const Controller& c) {
  long realizable = 0;
  long total = 0;
  for (int s1 = 0; s1 < c.num_signals(); ++s1) {
    for (int v1 = 0; v1 < c.signal(s1).num_values; ++v1) {
      if (!c.value_occurs(s1, v1)) continue;
      for (int s2 = s1 + 1; s2 < c.num_signals(); ++s2) {
        for (int v2 = 0; v2 < c.signal(s2).num_values; ++v2) {
          if (!c.value_occurs(s2, v2)) continue;
          ++total;
          if (c.pair_occurs(s1, v1, s2, v2)) ++realizable;
        }
      }
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(realizable) / total;
}

}  // namespace tsyn::rtl
