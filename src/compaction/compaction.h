// Test-set compaction & compression: the pipeline stage between "fault
// coverage achieved" and "test time minimized".
//
// The ATPG campaign emits one independent ternary cube per detected fault
// and never exploits the don't-care bits PODEM leaves. This subsystem
// consumes those cubes and minimizes the shipped test set in four passes:
//
//   1. dynamic compaction — after PODEM detects a primary fault, re-enter
//      the generator with the partial cube as an immutable base
//      (Podem::generate_multi_from_base) and target secondary faults into
//      the unspecified inputs, so fewer cubes are emitted at all;
//   2. static compaction — greedy compatible-cube merging (cube.h) with an
//      order heuristic;
//   3. X-fill — the surviving don't-cares become tester constants
//      (random / 0 / 1 / adjacent), gradeable for N-detect quality;
//   4. reverse-order pruning — fault-simulate the filled patterns
//      last-to-first with fault dropping and drop every pattern that
//      contributes no unique detection.
//
// Cost contract: `patterns` is what ships. pattern count = patterns.size(),
// test data volume = pattern count x PI count bits. The uncompacted
// baseline is the pattern set the plain campaign's fault_coverage actually
// certifies: run_combinational_atpg grades (and fault-drops against) a
// 64-lane random-completion block per cube (AtpgCampaign::graded_fill), so
// realizing its claimed coverage means applying all 64 completions of
// every cube — baseline_patterns = 64 x cube count. Coverage never drops:
// each input cube's guaranteed detections survive merging and filling
// (merging only specifies X bits), pruning keeps one detecting pattern per
// covered fault, and a final top-up stage re-adds a detecting pattern
// (extracted from the campaign's recorded grading blocks,
// AtpgCampaign::graded_fill) for any fault the campaign detected only
// through a lucky random fill. All passes are deterministic and
// independent of the grading thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compaction/cube.h"
#include "gatelevel/atpg_comb.h"
#include "gatelevel/faults.h"
#include "gatelevel/faultsim.h"
#include "gatelevel/netlist.h"

namespace tsyn::compaction {

/// How much of the pipeline runs.
enum class CompactMode {
  kOff,     ///< plain run_combinational_atpg, bit-identical; no merging
  kStatic,  ///< static merging + fill + pruning on the campaign's cubes
  kDynamic, ///< secondary-fault targeting during generation, then kStatic
};

const char* to_string(CompactMode mode);
/// Parses "off", "static", "dynamic". Returns false on anything else.
bool parse_compact_mode(const std::string& text, CompactMode* out);

struct CompactionOptions {
  CompactMode mode = CompactMode::kOff;
  XFill xfill = XFill::kRandom;
  MergeOrder merge_order = MergeOrder::kMostSpecifiedFirst;
  /// Drop patterns contributing no unique detection (pass 4). Ignored in
  /// kOff mode.
  bool reverse_order_prune = true;
  /// Rng seed for XFill::kRandom.
  std::uint64_t fill_seed = 0xF111;
  /// Dynamic compaction: how many still-undetected faults are probed as
  /// secondary targets per primary cube...
  int dynamic_candidate_window = 96;
  /// ...how many may be merged into one cube...
  int dynamic_max_secondary = 32;
  /// ...and the (cheap) per-probe backtrack budget. A probe that aborts
  /// just means "not merged here"; the fault keeps its own turn later.
  long dynamic_backtrack_limit = 400;
  /// Also run the plain campaign: its graded-block pattern count (64 per
  /// cube, see baseline_patterns) becomes the reported baseline and its
  /// detected set widens the coverage floor the top-up stage restores.
  /// kStatic gets this for free (the plain campaign IS the generator);
  /// kDynamic pays a second generation pass for an honest measured
  /// baseline instead of an assumed one.
  bool measure_baseline = true;
};

struct CompactionStats {
  long cubes_generated = 0;    ///< cubes out of generation (post-dynamic)
  long secondary_merged = 0;   ///< faults folded into earlier cubes
  long cubes_after_merge = 0;  ///< bins after static compaction
  long patterns_pruned = 0;    ///< dropped by reverse-order pruning
  long topup_patterns = 0;     ///< re-added (greedy set cover) to restore
                               ///< campaign coverage
};

/// A campaign plus its compacted, shippable test set.
struct CompactedCampaign {
  /// The generating campaign. Mode kOff/kStatic: bit-identical to
  /// run_combinational_atpg with the same arguments. Mode kDynamic: the
  /// dynamic generator's statuses and effort (secondary probes included).
  gl::AtpgCampaign campaign;
  /// Final merged cubes (ternary; == campaign.tests in kOff mode).
  std::vector<TestCube> cubes;
  /// The shipped test set: fully-specified, post-fill/prune/top-up.
  std::vector<TestCube> patterns;
  /// Coverage of `patterns` on the fault list, graded from scratch with
  /// the PPSFP engine. >= the campaign's fault_coverage (and the measured
  /// baseline's, when enabled) by construction.
  double pattern_coverage = 0;
  /// The uncompacted campaign's shipped pattern count at its claimed
  /// coverage: 64 fully-specified patterns per cube (the graded_fill
  /// blocks its fault dropping is certified against). kOff mode reports
  /// patterns.size() — no compaction, no reduction claimed. 0 when
  /// measure_baseline is off.
  long baseline_patterns = 0;
  CompactionStats stats;

  long test_data_bits() const {
    return static_cast<long>(patterns.size()) *
           (patterns.empty() ? 0 : static_cast<long>(patterns[0].size()));
  }
  /// Fractional pattern-count reduction vs the measured baseline.
  double reduction() const {
    return baseline_patterns > 0
               ? 1.0 - static_cast<double>(patterns.size()) /
                           static_cast<double>(baseline_patterns)
               : 0.0;
  }
};

/// The full pipeline. `n` must be combinational (full-scan expanded);
/// `backtrack_limit` bounds each primary PODEM run exactly as in
/// run_combinational_atpg; `sim_options` parallelizes every grading pass
/// (PPSFP sharding plus block-parallel pattern grading on
/// util::ThreadPool). Deterministic for fixed options regardless of
/// thread count.
CompactedCampaign run_compacted_atpg(
    const gl::Netlist& n, const std::vector<gl::Fault>& faults,
    const CompactionOptions& copts = {}, long backtrack_limit = 10000,
    const gl::FaultSimOptions& sim_options = {});

// ---- grading utilities (used by the pipeline, benches, and tests) ----

/// Packs fully-specified patterns into 64-lane blocks (lane l of block b
/// carries pattern 64*b+l; trailing lanes of the last block repeat the
/// block's first pattern, which is harmless for coverage). Throws if a
/// pattern still contains kX.
std::vector<std::vector<gl::Bits>> patterns_to_blocks(
    const std::vector<TestCube>& patterns);

/// Per-fault, per-pattern detection matrix: bit (p % 64) of
/// result[f][p / 64] is set iff pattern p detects fault f. No fault
/// dropping. Blocks are graded in parallel on util::ThreadPool (one
/// serial FaultSimulator per worker slot), so the matrix is identical for
/// every thread count.
std::vector<std::vector<std::uint64_t>> detection_matrix(
    const gl::Netlist& n, const std::vector<TestCube>& patterns,
    const std::vector<gl::Fault>& faults,
    const gl::FaultSimOptions& sim_options = {});

/// Reverse-order pruning on an explicit pattern set: fault-simulates
/// last-to-first with fault dropping (each fault is credited to the LAST
/// pattern detecting it) and returns the indices (ascending) of patterns
/// that earn at least one credit. The kept subset detects exactly the
/// faults the full set detects.
std::vector<int> reverse_order_prune(
    const gl::Netlist& n, const std::vector<TestCube>& patterns,
    const std::vector<gl::Fault>& faults,
    const gl::FaultSimOptions& sim_options = {});

/// N-detect profile of a pattern set: counts[f] = how many patterns detect
/// fault f. The X-fill quality measure (random fill buys incidental
/// multi-detects, 0-fill rarely does).
struct NdetectProfile {
  std::vector<int> counts;
  /// Fraction of `faults` detected at least `k` times.
  double fraction_at_least(int k) const;
};
NdetectProfile grade_ndetect(const gl::Netlist& n,
                             const std::vector<TestCube>& patterns,
                             const std::vector<gl::Fault>& faults,
                             const gl::FaultSimOptions& sim_options = {});

}  // namespace tsyn::compaction
