#include "compaction/cube.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "util/rng.h"

namespace tsyn::compaction {

int specified_count(const TestCube& c) {
  int n = 0;
  for (V v : c) n += v != V::kX;
  return n;
}

bool compatible(const TestCube& a, const TestCube& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != V::kX && b[i] != V::kX && a[i] != b[i]) return false;
  return true;
}

TestCube merge(const TestCube& a, const TestCube& b) {
  assert(compatible(a, b));
  TestCube out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = a[i] != V::kX ? a[i] : b[i];
  return out;
}

std::vector<TestCube> merge_compatible_cubes(
    const std::vector<TestCube>& cubes, MergeOrder order) {
  std::vector<int> idx(cubes.size());
  std::iota(idx.begin(), idx.end(), 0);
  if (order != MergeOrder::kAsGenerated) {
    const int sign = order == MergeOrder::kMostSpecifiedFirst ? -1 : 1;
    std::vector<int> spec(cubes.size());
    for (std::size_t i = 0; i < cubes.size(); ++i)
      spec[i] = specified_count(cubes[i]);
    std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
      return sign * spec[a] < sign * spec[b];
    });
  }
  std::vector<TestCube> bins;
  for (int i : idx) {
    bool placed = false;
    for (TestCube& bin : bins) {
      if (compatible(bin, cubes[i])) {
        bin = merge(bin, cubes[i]);
        placed = true;
        break;
      }
    }
    if (!placed) bins.push_back(cubes[i]);
  }
  return bins;
}

void apply_xfill(std::vector<TestCube>& cubes, XFill fill,
                 std::uint64_t seed) {
  util::Rng rng(seed);
  for (TestCube& c : cubes) {
    switch (fill) {
      case XFill::kRandom:
        for (V& v : c)
          if (v == V::kX) v = rng.next_bool() ? V::k1 : V::k0;
        break;
      case XFill::kZero:
        for (V& v : c)
          if (v == V::kX) v = V::k0;
        break;
      case XFill::kOne:
        for (V& v : c)
          if (v == V::kX) v = V::k1;
        break;
      case XFill::kAdjacent: {
        V last = V::kX;
        for (V& v : c) {
          if (v == V::kX) v = last;  // may stay X in a leading run
          else last = v;
        }
        // Leading X run: copy the first specified bit backwards; an
        // all-X cube degenerates to 0-fill.
        V first = V::kX;
        for (V v : c)
          if (v != V::kX) {
            first = v;
            break;
          }
        if (first == V::kX) first = V::k0;
        for (V& v : c) {
          if (v != V::kX) break;
          v = first;
        }
        break;
      }
    }
  }
}

const char* to_string(XFill fill) {
  switch (fill) {
    case XFill::kRandom: return "random";
    case XFill::kZero: return "0";
    case XFill::kOne: return "1";
    case XFill::kAdjacent: return "adjacent";
  }
  return "?";
}

bool parse_xfill(const std::string& text, XFill* out) {
  if (text == "random") *out = XFill::kRandom;
  else if (text == "0" || text == "zero") *out = XFill::kZero;
  else if (text == "1" || text == "one") *out = XFill::kOne;
  else if (text == "adjacent") *out = XFill::kAdjacent;
  else return false;
  return true;
}

}  // namespace tsyn::compaction
