// Ternary test-cube algebra: the value domain of test-set compaction.
//
// A test cube is a PI assignment with don't-cares (kX), exactly as PODEM
// emits it in AtpgResult::pi_values. Static compaction merges compatible
// cubes (no bit conflicts) into one; X-fill turns the surviving cubes into
// the fully-specified patterns a tester actually applies. Both operations
// are pure functions here so they are unit-testable without a netlist.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gatelevel/atpg_comb.h"

namespace tsyn::compaction {

using gl::V;

/// One ternary PI assignment, by position in Netlist::primary_inputs().
using TestCube = std::vector<V>;

/// Number of non-X bits.
int specified_count(const TestCube& c);

/// Two cubes are compatible when no position carries opposing constants
/// (k0 vs k1). Compatible cubes can be served by one pattern.
bool compatible(const TestCube& a, const TestCube& b);

/// Bitwise intersection of two compatible cubes: specified bits win over
/// X. Every test either cube guarantees, the merged cube guarantees too
/// (its specified bits are a superset of each input's).
TestCube merge(const TestCube& a, const TestCube& b);

/// Order heuristic for greedy first-fit merging.
enum class MergeOrder {
  kAsGenerated,           ///< campaign emission order
  kMostSpecifiedFirst,    ///< dense cubes seed bins, sparse cubes slot in
  kFewestSpecifiedFirst,  ///< sparse cubes seed bins
};

/// Greedy static compaction: visits cubes in the heuristic order and
/// merges each into the first compatible bin, opening a new bin when none
/// fits. Deterministic (ties broken by emission order). Every input cube
/// is absorbed by exactly one output cube that refines it, so any fault a
/// cube guarantees to detect stays detected by its bin's every completion.
std::vector<TestCube> merge_compatible_cubes(
    const std::vector<TestCube>& cubes,
    MergeOrder order = MergeOrder::kMostSpecifiedFirst);

/// X-fill strategies (§test-data volume / N-detect trade-off): how the
/// don't-care bits left after compaction become tester constants.
enum class XFill {
  kRandom,    ///< seeded random bits — best incidental N-detect
  kZero,      ///< all X -> 0 — best compression of the shipped vectors
  kOne,       ///< all X -> 1
  kAdjacent,  ///< repeat the nearest specified bit — fewest transitions
              ///< (shift-power heuristic); leading X run copies the first
              ///< specified bit, an all-X cube 0-fills
};

/// Fills every X bit of every cube in place. kRandom draws from one Rng
/// (seeded `seed`) in cube order then bit order, so a filled set is a pure
/// function of (cubes, fill, seed) — thread count never changes it.
void apply_xfill(std::vector<TestCube>& cubes, XFill fill,
                 std::uint64_t seed);

const char* to_string(XFill fill);
/// Parses "random", "0"/"zero", "1"/"one", "adjacent". Returns false on
/// anything else.
bool parse_xfill(const std::string& text, XFill* out);

}  // namespace tsyn::compaction
