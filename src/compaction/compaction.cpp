#include "compaction/compaction.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "observe/scoap_attr.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace tsyn::compaction {

namespace {

using gl::AtpgCampaign;
using gl::AtpgStatus;
using gl::Bits;
using gl::Fault;
using gl::FaultSimOptions;
using gl::FaultSimulator;
using gl::Netlist;
using gl::Podem;

bool has_x(const TestCube& c) {
  return std::find(c.begin(), c.end(), V::kX) != c.end();
}

/// Lane-extraction: one fully-specified pattern out of a 64-lane grading
/// block (all lanes of graded_fill blocks are known bits by construction).
TestCube extract_lane(const std::vector<Bits>& block, int lane) {
  TestCube p(block.size());
  for (std::size_t i = 0; i < block.size(); ++i)
    p[i] = ((block[i].v >> lane) & 1) ? V::k1 : V::k0;
  return p;
}

/// Reverse-order credit assignment on a precomputed detection matrix:
/// every fault is credited to the LAST pattern detecting it; patterns with
/// no credit are pruned. Returns kept indices, ascending.
std::vector<int> prune_from_matrix(
    const std::vector<std::vector<std::uint64_t>>& matrix,
    std::size_t num_patterns) {
  std::vector<char> keep(num_patterns, 0);
  for (const std::vector<std::uint64_t>& row : matrix) {
    for (int b = static_cast<int>(row.size()) - 1; b >= 0; --b) {
      if (row[b] == 0) continue;
      const int lane = 63 - std::countl_zero(row[b]);
      keep[static_cast<std::size_t>(b) * 64 + lane] = 1;
      break;
    }
  }
  std::vector<int> kept;
  for (std::size_t p = 0; p < num_patterns; ++p)
    if (keep[p]) kept.push_back(static_cast<int>(p));
  return kept;
}

/// Dynamic-compaction generation: the serial PODEM campaign loop of
/// run_combinational_atpg, except that every detected primary cube is
/// re-entered (generate_multi_from_base) to fold secondary faults into its
/// unspecified inputs before it is graded. Grading uses the identical
/// random-fill scheme (and records graded_fill) so the campaign's
/// detection decisions stay reproducible.
AtpgCampaign run_dynamic_campaign(const Netlist& n,
                                  const std::vector<Fault>& faults,
                                  const CompactionOptions& copts,
                                  long backtrack_limit,
                                  const FaultSimOptions& sim_options,
                                  CompactionStats* stats) {
  TSYN_SPAN("compaction.dynamic_generate");
  static util::Counter& m_probes =
      util::metrics().counter("compaction.dynamic.secondary_probes");
  static util::Counter& m_merged =
      util::metrics().counter("compaction.dynamic.secondary_merged");

  static util::Progress& p_targets = util::progress("atpg.targets");
  p_targets.add_total(static_cast<std::int64_t>(faults.size()));
  AtpgCampaign campaign;
  campaign.status.assign(faults.size(), AtpgStatus::kAborted);
  std::vector<bool> handled(faults.size(), false);

  FaultSimulator sim(n, sim_options);
  util::Rng rng(gl::kAtpgGradeFillSeed);

  auto grade_test = [&](const TestCube& pi_values) {
    campaign.tests.push_back(pi_values);
    std::vector<Bits> block(n.primary_inputs().size());
    for (std::size_t i = 0; i < block.size(); ++i) {
      switch (pi_values[i]) {
        case V::k0: block[i] = Bits::all0(); break;
        case V::k1: block[i] = Bits::all1(); break;
        case V::kX: block[i] = Bits::known(rng.next_u64()); break;
      }
    }
    campaign.graded_fill.push_back(block);
    std::vector<bool> drop(faults.size(), false);
    for (std::size_t j = 0; j < faults.size(); ++j) drop[j] = handled[j];
    sim.run_block(block, faults, drop);
    std::int64_t closed = 0;
    for (std::size_t j = 0; j < faults.size(); ++j) {
      if (!handled[j] && drop[j]) {
        handled[j] = true;
        campaign.status[j] = AtpgStatus::kDetected;
        ++closed;
      }
    }
    if (closed) p_targets.add(closed);
  };

  auto add_stats = [&](const gl::AtpgStats& s) {
    campaign.total.decisions += s.decisions;
    campaign.total.backtracks += s.backtracks;
    campaign.total.implications += s.implications;
  };

  Podem podem(n);
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (handled[fi]) continue;
    const gl::AtpgResult r = podem.generate(faults[fi], backtrack_limit);
    add_stats(r.stats);
    campaign.status[fi] = r.status;
    handled[fi] = true;
    p_targets.add(1);
    if (r.status != AtpgStatus::kDetected) continue;

    TestCube cube = r.pi_values;
    int probes = 0;
    int merged = 0;
    for (std::size_t fj = fi + 1;
         fj < faults.size() && probes < copts.dynamic_candidate_window &&
         merged < copts.dynamic_max_secondary && has_x(cube);
         ++fj) {
      if (handled[fj]) continue;
      ++probes;
      // A kDetected probe refines `cube` (base bits immutable) and its
      // ternary PO difference holds for every completion, so the merged
      // fault stays detected through fill and static merging. Anything
      // else just means "not compatible here" — the fault keeps its own
      // turn as a primary later.
      const gl::AtpgResult r2 = podem.generate_multi_from_base(
          {faults[fj]}, cube, copts.dynamic_backtrack_limit);
      add_stats(r2.stats);
      if (r2.status == AtpgStatus::kDetected) {
        cube = r2.pi_values;
        handled[fj] = true;
        campaign.status[fj] = AtpgStatus::kDetected;
        p_targets.add(1);
        ++merged;
      }
    }
    m_probes.add(probes);
    m_merged.add(merged);
    stats->secondary_merged += merged;
    grade_test(cube);
  }

  long detected = 0;
  long untestable = 0;
  for (AtpgStatus s : campaign.status) {
    if (s == AtpgStatus::kDetected) ++detected;
    else if (s == AtpgStatus::kUntestable) ++untestable;
  }
  const double total = static_cast<double>(faults.size());
  campaign.fault_coverage = total == 0 ? 1.0 : detected / total;
  campaign.fault_efficiency =
      total == 0 ? 1.0 : (detected + untestable) / total;
  return campaign;
}

double grade_patterns(const Netlist& n, const std::vector<TestCube>& patterns,
                      const std::vector<Fault>& faults,
                      const FaultSimOptions& sim_options) {
  if (faults.empty()) return 1.0;
  if (patterns.empty()) return 0.0;
  return gl::fault_coverage(n, patterns_to_blocks(patterns), faults, nullptr,
                            sim_options);
}

}  // namespace

const char* to_string(CompactMode mode) {
  switch (mode) {
    case CompactMode::kOff: return "off";
    case CompactMode::kStatic: return "static";
    case CompactMode::kDynamic: return "dynamic";
  }
  return "?";
}

bool parse_compact_mode(const std::string& text, CompactMode* out) {
  if (text == "off") *out = CompactMode::kOff;
  else if (text == "static") *out = CompactMode::kStatic;
  else if (text == "dynamic") *out = CompactMode::kDynamic;
  else return false;
  return true;
}

std::vector<std::vector<Bits>> patterns_to_blocks(
    const std::vector<TestCube>& patterns) {
  std::vector<std::vector<Bits>> blocks;
  if (patterns.empty()) return blocks;
  const std::size_t num_pis = patterns[0].size();
  const std::size_t num_blocks = (patterns.size() + 63) / 64;
  blocks.assign(num_blocks, std::vector<Bits>(num_pis, Bits::all0()));
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const TestCube& pat = patterns[p];
    if (pat.size() != num_pis)
      throw std::runtime_error("pattern width mismatch");
    for (std::size_t i = 0; i < num_pis; ++i) {
      if (pat[i] == V::kX)
        throw std::runtime_error("pattern still has X bits; fill first");
      if (pat[i] == V::k1) blocks[p / 64][i].v |= 1ULL << (p % 64);
    }
  }
  // Trailing lanes of the last block repeat the block's first pattern so
  // every lane is a real stimulus (coverage-neutral).
  const std::size_t tail = patterns.size() % 64;
  if (tail != 0) {
    for (std::size_t i = 0; i < num_pis; ++i) {
      Bits& b = blocks.back()[i];
      const std::uint64_t first = b.v & 1;
      if (first) b.v |= ~((1ULL << tail) - 1);
    }
  }
  return blocks;
}

std::vector<std::vector<std::uint64_t>> detection_matrix(
    const Netlist& n, const std::vector<TestCube>& patterns,
    const std::vector<Fault>& faults, const FaultSimOptions& sim_options) {
  TSYN_SPAN("compaction.detection_matrix");
  std::vector<std::vector<std::uint64_t>> matrix(
      faults.size(), std::vector<std::uint64_t>());
  const std::vector<std::vector<Bits>> blocks = patterns_to_blocks(patterns);
  for (auto& row : matrix) row.assign(blocks.size(), 0);
  if (blocks.empty() || faults.empty()) return matrix;
  util::progress("sim.patterns")
      .add_total(64 * static_cast<std::int64_t>(blocks.size()));

  // Blocks are independent without fault dropping, so they shard over the
  // pool: one SERIAL FaultSimulator per worker slot (the per-block inner
  // engine must not re-enter the shared pool from a worker thread).
  const int num_blocks = static_cast<int>(blocks.size());
  const int workers = std::max(
      1, std::min(sim_options.resolved_threads(), num_blocks));
  std::vector<FaultSimulator> sims;
  sims.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w)
    sims.emplace_back(n, FaultSimOptions{1});

  auto job = [&](int b, int slot) {
    std::vector<std::uint64_t> lane_masks;
    sims[slot].run_block_detail(blocks[b], faults, lane_masks);
    for (std::size_t f = 0; f < faults.size(); ++f)
      matrix[f][b] = lane_masks[f];
  };
  if (workers <= 1) {
    for (int b = 0; b < num_blocks; ++b) job(b, 0);
  } else {
    util::ThreadPool::shared().run(num_blocks, workers, job);
  }

  // Mask the padding lanes of the last block out of the matrix so no
  // consumer credits a pattern that does not exist.
  const std::size_t tail = patterns.size() % 64;
  if (tail != 0) {
    const std::uint64_t valid = (1ULL << tail) - 1;
    for (auto& row : matrix) row.back() &= valid;
  }

  // The matrix is the ledger's n-detect source: it grades every fault
  // against every pattern with no dropping, so the per-fault popcount is
  // the true detection multiplicity of the graded set, and the first set
  // bit its first-detect pattern.
  if (observe::ledger_enabled()) {
    observe::record_universe(static_cast<long>(faults.size()));
    for (std::size_t f = 0; f < faults.size(); ++f) {
      long count = 0;
      long first = -1;
      for (std::size_t b = 0; b < matrix[f].size(); ++b) {
        const std::uint64_t w = matrix[f][b];
        if (w == 0) continue;
        if (first < 0)
          first = static_cast<long>(64 * b) + std::countr_zero(w);
        count += std::popcount(w);
      }
      const observe::FaultKey key = observe::make_fault_key(faults[f]);
      observe::record_ndetect(key, count);
      if (first >= 0) observe::record_detected(key, first);
    }
  }
  return matrix;
}

std::vector<int> reverse_order_prune(const Netlist& n,
                                     const std::vector<TestCube>& patterns,
                                     const std::vector<Fault>& faults,
                                     const FaultSimOptions& sim_options) {
  TSYN_SPAN("compaction.prune");
  return prune_from_matrix(detection_matrix(n, patterns, faults, sim_options),
                           patterns.size());
}

double NdetectProfile::fraction_at_least(int k) const {
  if (counts.empty()) return 0.0;
  long hit = 0;
  for (int c : counts) hit += c >= k;
  return static_cast<double>(hit) / static_cast<double>(counts.size());
}

NdetectProfile grade_ndetect(const Netlist& n,
                             const std::vector<TestCube>& patterns,
                             const std::vector<Fault>& faults,
                             const FaultSimOptions& sim_options) {
  TSYN_SPAN("compaction.ndetect");
  const auto matrix = detection_matrix(n, patterns, faults, sim_options);
  NdetectProfile profile;
  profile.counts.assign(faults.size(), 0);
  for (std::size_t f = 0; f < faults.size(); ++f) {
    int c = 0;
    for (std::uint64_t w : matrix[f]) c += std::popcount(w);
    profile.counts[f] = c;
  }
  return profile;
}

CompactedCampaign run_compacted_atpg(const Netlist& n,
                                     const std::vector<Fault>& faults,
                                     const CompactionOptions& copts,
                                     long backtrack_limit,
                                     const FaultSimOptions& sim_options) {
  TSYN_SPAN("compaction.pipeline");
  static util::Counter& m_cubes_in =
      util::metrics().counter("compaction.cubes_in");
  static util::Counter& m_merged_away =
      util::metrics().counter("compaction.cubes_merged_away");
  static util::Counter& m_pruned =
      util::metrics().counter("compaction.patterns_pruned");
  static util::Counter& m_topup =
      util::metrics().counter("compaction.topup_patterns");

  CompactedCampaign out;
  if (copts.mode == CompactMode::kOff) {
    // No compaction: the campaign is the exact run_combinational_atpg
    // output (bit-identical, the --compact=off contract); the only new
    // work is making the shipped fill explicit.
    {
      observe::LedgerPhase ledger_phase("compact.generate");
      out.campaign =
          gl::run_combinational_atpg(n, faults, backtrack_limit, sim_options);
    }
    out.cubes = out.campaign.tests;
    out.stats.cubes_generated = static_cast<long>(out.cubes.size());
    out.stats.cubes_after_merge = out.stats.cubes_generated;
    out.patterns = out.cubes;
    apply_xfill(out.patterns, copts.xfill, copts.fill_seed);
    {
      observe::LedgerPhase ledger_phase("compact.ship");
      out.pattern_coverage =
          grade_patterns(n, out.patterns, faults, sim_options);
    }
    out.baseline_patterns = static_cast<long>(out.patterns.size());
    return out;
  }

  // 1. Generation (with dynamic compaction in kDynamic mode).
  {
    observe::LedgerPhase ledger_phase("compact.generate");
    if (copts.mode == CompactMode::kStatic) {
      out.campaign =
          gl::run_combinational_atpg(n, faults, backtrack_limit, sim_options);
    } else {
      out.campaign = run_dynamic_campaign(n, faults, copts, backtrack_limit,
                                          sim_options, &out.stats);
    }
  }
  out.stats.cubes_generated = static_cast<long>(out.campaign.tests.size());
  m_cubes_in.add(out.stats.cubes_generated);

  // The measured baseline: the plain campaign's shipped pattern count (64
  // random completions per cube — the graded_fill blocks its claimed
  // coverage is certified against), and the union of detected sets as the
  // coverage floor the top-up restores.
  const AtpgCampaign* baseline = nullptr;
  AtpgCampaign baseline_storage;
  if (copts.measure_baseline) {
    if (copts.mode == CompactMode::kStatic) {
      baseline = &out.campaign;  // the plain campaign IS the generator
    } else {
      TSYN_SPAN("compaction.baseline");
      observe::LedgerPhase ledger_phase("compact.baseline");
      baseline_storage =
          gl::run_combinational_atpg(n, faults, backtrack_limit, sim_options);
      baseline = &baseline_storage;
    }
    out.baseline_patterns = 64 * static_cast<long>(baseline->tests.size());
  }

  // 2. Static compaction.
  {
    TSYN_SPAN("compaction.merge");
    out.cubes = merge_compatible_cubes(out.campaign.tests, copts.merge_order);
  }
  out.stats.cubes_after_merge = static_cast<long>(out.cubes.size());
  m_merged_away.add(out.stats.cubes_generated - out.stats.cubes_after_merge);

  // 3. X-fill.
  std::vector<TestCube> patterns = out.cubes;
  apply_xfill(patterns, copts.xfill, copts.fill_seed);

  // 4. Reverse-order pruning (on the full detection matrix, which the
  //    coverage accounting below reuses).
  std::vector<std::vector<std::uint64_t>> matrix;
  {
    observe::LedgerPhase ledger_phase("compact.grade");
    matrix = detection_matrix(n, patterns, faults, sim_options);
  }
  std::vector<int> kept;
  if (copts.reverse_order_prune) {
    TSYN_SPAN("compaction.prune");
    kept = prune_from_matrix(matrix, patterns.size());
  } else {
    kept.resize(patterns.size());
    for (std::size_t p = 0; p < patterns.size(); ++p)
      kept[p] = static_cast<int>(p);
  }
  out.stats.patterns_pruned =
      static_cast<long>(patterns.size()) - static_cast<long>(kept.size());
  m_pruned.add(out.stats.patterns_pruned);

  // 5. Top-up: any fault the campaign (or the measured baseline) detected
  //    that the filled pattern set misses was a lucky random-fill
  //    detection; re-extract one detecting lane from the recorded grading
  //    blocks so final coverage provably never drops. Pruning credits
  //    every matrix-covered fault to a kept pattern, so "matrix row
  //    nonzero" == "covered by the kept set".
  std::vector<std::size_t> missing;
  for (std::size_t f = 0; f < faults.size(); ++f) {
    const bool want =
        out.campaign.status[f] == AtpgStatus::kDetected ||
        (baseline && baseline->status[f] == AtpgStatus::kDetected);
    if (!want) continue;
    bool covered = false;
    for (std::uint64_t w : matrix[f]) covered = covered || w != 0;
    if (!covered) missing.push_back(f);
  }
  std::vector<TestCube> topups;
  if (!missing.empty()) {
    TSYN_SPAN("compaction.topup");
    observe::LedgerPhase ledger_phase("compact.topup");
    FaultSimulator sim(n, sim_options);
    std::vector<const AtpgCampaign*> sources{&out.campaign};
    if (baseline && baseline != &out.campaign) sources.push_back(baseline);
    // Candidate pool: every recorded-block lane that detects at least one
    // missing fault, with its coverage as a bitset over `missing`. Greedy
    // set cover then extracts the fewest lanes that restore the union
    // coverage (ties break to the earliest candidate — deterministic).
    struct Candidate {
      const std::vector<Bits>* block;
      int lane;
      std::vector<std::uint64_t> covers;
      int count = 0;
    };
    const std::size_t words = (missing.size() + 63) / 64;
    std::vector<Fault> subset;
    subset.reserve(missing.size());
    for (std::size_t f : missing) subset.push_back(faults[f]);
    std::vector<Candidate> cands;
    for (const AtpgCampaign* src : sources) {
      for (const std::vector<Bits>& block : src->graded_fill) {
        std::vector<std::uint64_t> masks;
        sim.run_block_detail(block, subset, masks);
        std::uint64_t lanes = 0;
        for (std::uint64_t m : masks) lanes |= m;
        for (; lanes != 0; lanes &= lanes - 1) {
          Candidate c;
          c.block = &block;
          c.lane = std::countr_zero(lanes);
          c.covers.assign(words, 0);
          for (std::size_t s = 0; s < missing.size(); ++s) {
            if ((masks[s] >> c.lane) & 1) {
              c.covers[s / 64] |= 1ULL << (s % 64);
              ++c.count;
            }
          }
          cands.push_back(std::move(c));
        }
      }
    }
    std::size_t uncovered = missing.size();
    while (uncovered > 0) {
      Candidate* best = nullptr;
      for (Candidate& c : cands)
        if (c.count > 0 && (!best || c.count > best->count)) best = &c;
      // Every fault in the union set was detected by some recorded lane,
      // so the cover always drains.
      assert(best != nullptr);
      if (!best) break;
      topups.push_back(extract_lane(*best->block, best->lane));
      uncovered -= static_cast<std::size_t>(best->count);
      const std::vector<std::uint64_t> picked = best->covers;
      for (Candidate& c : cands) {
        if (c.count == 0) continue;
        c.count = 0;
        for (std::size_t w = 0; w < words; ++w) {
          c.covers[w] &= ~picked[w];
          c.count += std::popcount(c.covers[w]);
        }
      }
    }
  }
  out.stats.topup_patterns = static_cast<long>(topups.size());
  m_topup.add(out.stats.topup_patterns);

  out.patterns.clear();
  out.patterns.reserve(kept.size() + topups.size());
  for (int p : kept) out.patterns.push_back(patterns[p]);
  for (TestCube& t : topups) out.patterns.push_back(std::move(t));

  // 6. Final from-scratch grading of the shipped set — the number the
  //    acceptance contract (coverage never drops) is checked against.
  {
    TSYN_SPAN("compaction.final_grade");
    observe::LedgerPhase ledger_phase("compact.ship");
    out.pattern_coverage =
        grade_patterns(n, out.patterns, faults, sim_options);
  }
  util::metrics().gauge("compaction.reduction").set(out.reduction());
  return out;
}

}  // namespace tsyn::compaction
