// SCOAP cross-attribution: does structural testability predict ATPG effort?
//
// The survey's testability-analysis claim is that cheap structural
// measures (Goldstein's SCOAP controllability/observability) predict where
// test generation will struggle. With the fault-lifecycle ledger we can
// check that claim on our own engines: join each targeted fault's recorded
// PODEM effort (decisions + backtracks) against its SCOAP-predicted
// difficulty (controllability of the activation value plus observability
// of the faulted line), rank both sides, and report the Spearman rank
// correlation plus the top-K faults SCOAP mispredicted hardest — the
// interesting residue where structure alone fails.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gatelevel/faults.h"
#include "gatelevel/netlist.h"
#include "observe/ledger.h"

namespace tsyn::observe {

/// gl::Fault -> ledger key. Templated so the util-level ledger stays free
/// of gatelevel types; any struct with {node, fanin_index, stuck_at_one}
/// qualifies.
template <typename F>
FaultKey make_fault_key(const F& f) {
  return FaultKey{f.node, f.fanin_index, f.stuck_at_one ? 1 : 0};
}

/// Spearman rank correlation of two equal-length samples: Pearson
/// correlation of the rank vectors, with ties assigned their average rank.
/// Returns 0 when either side has no variance or fewer than two samples.
double spearman_rank_correlation(const std::vector<double>& a,
                                 const std::vector<double>& b);

/// Average-tie ranks of `v` (rank 1 = smallest), the primitive the
/// correlation and the misprediction gap are both built on.
std::vector<double> average_ranks(const std::vector<double>& v);

struct ScoapFaultRow {
  FaultKey key;
  std::string label;  ///< gl::describe() of the fault
  std::string status;
  int cc = 0;  ///< controllability of the activation value at the line
  int co = 0;  ///< observability of the line
  std::int64_t predicted = 0;  ///< cc + co
  std::int64_t effort = 0;     ///< ledger decisions + backtracks
  double predicted_rank = 0.0;
  double effort_rank = 0.0;
  double rank_gap() const { return effort_rank - predicted_rank; }
};

struct ScoapAttribution {
  /// One row per ATPG-targeted fault (targets > 0), sorted by key.
  std::vector<ScoapFaultRow> rows;
  /// Rank correlation of predicted difficulty vs. actual effort over
  /// `rows`. The survey's claim is a solidly positive value.
  double spearman = 0.0;
  /// Indices into `rows` with the largest |rank_gap()|, descending
  /// (ties broken by key). At most `top_k` entries.
  std::vector<int> top_mispredicted;
};

/// Joins ledger journeys against SCOAP on `n` (combinational). Faults in
/// the ledger whose line no longer resolves in `n` are skipped.
ScoapAttribution attribute_scoap(const gl::Netlist& n,
                                 const LedgerSnapshot& ledger,
                                 int top_k = 10);

}  // namespace tsyn::observe
