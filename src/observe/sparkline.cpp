#include "observe/sparkline.h"

#include <algorithm>
#include <cstdio>

namespace tsyn::observe {

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

void append_sparkline(std::ostream& os, const std::vector<double>& ys,
                      const char* color) {
  constexpr double kW = 120, kH = 26, kPad = 3;
  os << "<svg class=\"spark\" viewBox=\"0 0 " << kW << ' ' << kH << "\">";
  if (!ys.empty()) {
    double lo = ys[0], hi = ys[0];
    for (double y : ys) {
      lo = std::min(lo, y);
      hi = std::max(hi, y);
    }
    const double span = hi - lo;
    auto px = [&](std::size_t i) {
      return ys.size() < 2
                 ? kW / 2
                 : kPad + (kW - 2 * kPad) * static_cast<double>(i) /
                       static_cast<double>(ys.size() - 1);
    };
    auto py = [&](double y) {
      return span == 0 ? kH / 2 : kH - kPad - (kH - 2 * kPad) * (y - lo) / span;
    };
    os << "<polyline fill=\"none\" stroke=\"" << color
       << "\" stroke-width=\"1.5\" points=\"";
    for (std::size_t i = 0; i < ys.size(); ++i) {
      if (i) os << ' ';
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.1f,%.1f", px(i), py(ys[i]));
      os << buf;
    }
    os << "\"/>";
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2\" fill=\"%s\"/>",
                  px(ys.size() - 1), py(ys.back()), color);
    os << buf;
  }
  os << "</svg>";
}

}  // namespace tsyn::observe
