// Structured comparison of two BENCH_*.json artifacts (schema 2).
//
// The perf-bench harness writes machine-readable baselines; bench_diff is
// the gate that makes them actionable: it walks a baseline and a fresh
// run together, classifies every leaf by its key name (coverage-like
// fields must not drop, time-like fields may grow only within a
// tolerance, workload identity fields must match exactly), and reports
// regressions vs. informational drift. The CLI wrapper in tools/ turns
// the result into an exit code CI can gate on.
#pragma once

#include <string>
#include <vector>

#include "util/json.h"

namespace tsyn::observe {

struct BenchDiffOptions {
  /// Allowed relative growth of *_ms fields, in percent. Benchmarks on
  /// shared CI runners jitter hard; the default is deliberately loose.
  double time_tolerance_pct = 50.0;
  /// Absolute slack when comparing quality values (coverage, counts).
  double value_tolerance = 1e-9;
  /// When false, *_ms fields are skipped entirely (--no-time).
  bool check_time = true;
  /// When true, rows/fields present in the baseline but missing from the
  /// fresh run are notes instead of regressions.
  bool allow_missing = false;
};

struct BenchDiffResult {
  /// False when the two files disagree on "schema" (or a file is not an
  /// object) — comparison is meaningless, CLI exits 2.
  bool schema_ok = true;
  std::string schema_error;
  /// Failures: quality drops, out-of-tolerance slowdowns, changed
  /// workload identity, missing rows.
  std::vector<std::string> regressions;
  /// Non-gating observations (improvements, new fields, informational
  /// drift).
  std::vector<std::string> notes;

  bool ok() const { return schema_ok && regressions.empty(); }
};

/// Compares `fresh` against `baseline`.
BenchDiffResult diff_bench_json(const util::Json& baseline,
                                const util::Json& fresh,
                                const BenchDiffOptions& opts = {});

/// The canonical human rendering of a diff result — "FAIL ..." lines,
/// "note ..." lines (suppressed when `quiet`), and the one-line summary
/// tagged with `label`. Shared by the bench_diff CLI and
/// `tsyn_cli history diff`, so the two gates read identically.
std::string diff_result_to_text(const BenchDiffResult& res, bool quiet,
                                const std::string& label);

}  // namespace tsyn::observe
