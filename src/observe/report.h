// Self-contained run reports: one JSON artifact (and optionally one HTML
// page) consolidating everything a test-generation run produced — design
// numbers, ATPG/compaction results, the fault-lifecycle ledger with its
// coverage waterfalls, SCOAP effort attribution, and the metrics registry.
//
// The HTML renderer inlines all CSS and draws the waterfall curves as
// inline SVG, so the page opens from file:// with no network and no
// external assets — it can be attached to a CI run or mailed around as a
// single file.
#pragma once

#include <string>
#include <vector>

#include "observe/ledger.h"
#include "observe/profile.h"
#include "observe/provenance.h"
#include "observe/scoap_attr.h"

namespace tsyn::observe {

/// Everything a report consolidates. The caller (tsyn_cli report, or a
/// test) runs the pipeline with the ledger enabled and fills this in.
struct RunReport {
  std::string title;          ///< e.g. "diffeq w4 static"
  std::string behavior;       ///< benchmark / source spec
  std::string compact_mode;   ///< off | static | dynamic | full
  std::string xfill;          ///< random | zero | one | repeat
  int width = 0;              ///< datapath bit width
  std::int64_t gates = 0;
  std::int64_t pis = 0;       ///< primary inputs incl. scan cells
  std::int64_t faults = 0;    ///< collapsed fault universe
  double fault_coverage = 0.0;
  double fault_efficiency = 0.0;
  std::int64_t cubes = 0;               ///< pre-merge test cubes
  std::int64_t patterns = 0;            ///< shipped pattern count
  std::int64_t baseline_patterns = 0;   ///< uncompacted reference
  LedgerSnapshot ledger;
  ScoapAttribution scoap;
  /// Cross-layer provenance: the gate->component->op map recorded during
  /// expansion and its ledger join. Leave the map empty (the default) when
  /// the pipeline ran with record_provenance off — the report then simply
  /// omits the provenance section.
  ProvenanceMap provenance;
  ProvenanceAttribution attribution;
  /// Wall-clock sampling profile (filled when the run sampled via
  /// --profile): total stack samples and the top self-time frames. Zero
  /// samples (the default) omits the profile section.
  std::int64_t profile_samples = 0;
  std::vector<ProfileFrame> profile_top;
  std::string metrics_json;  ///< util::metrics().to_json(), embedded raw
};

/// The consolidated JSON artifact:
///   {"schema": 1, "tool": "tsyn", "title": ..., "design": {...},
///    "atpg": {...}, "ledger": {...}, "scoap": {...},
///    "provenance": {...}, "metrics": {...}}
/// `ledger` embeds ledger_to_json(report.ledger) verbatim and
/// `provenance` embeds provenance_to_json (present only when the map was
/// recorded), so the determinism contracts carry through.
std::string report_to_json(const RunReport& r);

/// Self-contained HTML rendering of the same data.
std::string report_to_html(const RunReport& r);

}  // namespace tsyn::observe
