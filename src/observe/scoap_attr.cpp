#include "observe/scoap_attr.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "gatelevel/scoap.h"

namespace tsyn::observe {

std::vector<double> average_ranks(const std::vector<double>& v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[idx[j + 1]] == v[idx[i]]) ++j;
    // Positions i..j (0-based) share the value: average 1-based rank.
    const double avg = (static_cast<double>(i + j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[idx[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double spearman_rank_correlation(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const std::vector<double> ra = average_ranks(a);
  const std::vector<double> rb = average_ranks(b);
  const double n = static_cast<double>(a.size());
  double ma = 0, mb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += ra[i];
    mb += rb[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = ra[i] - ma;
    const double db = rb[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

ScoapAttribution attribute_scoap(const gl::Netlist& n,
                                 const LedgerSnapshot& ledger, int top_k) {
  ScoapAttribution out;
  const gl::Scoap scoap = gl::compute_scoap(n);

  for (const FaultJourney& j : ledger.journeys) {
    if (j.targets == 0) continue;  // no ATPG effort to attribute
    if (j.key.node < 0 || j.key.node >= n.num_nodes()) continue;
    // The faulted line: the node itself for output faults, the driver of
    // the faulted pin otherwise.
    int line = j.key.node;
    if (j.key.pin >= 0) {
      const auto& fanins = n.node(j.key.node).fanins;
      if (j.key.pin >= static_cast<std::int32_t>(fanins.size())) continue;
      line = fanins[static_cast<std::size_t>(j.key.pin)];
    }
    if (line < 0) continue;
    ScoapFaultRow row;
    row.key = j.key;
    row.status = j.status;
    gl::Fault f;
    f.node = j.key.node;
    f.fanin_index = j.key.pin;
    f.stuck_at_one = j.key.sa1 != 0;
    row.label = gl::describe(n, f);
    // Testing stuck-at-1 requires driving the line to 0 (CC0) and
    // observing it (CO); stuck-at-0 dually.
    row.cc = j.key.sa1 ? scoap.cc0[line] : scoap.cc1[line];
    row.co = scoap.co[line];
    row.predicted = static_cast<std::int64_t>(row.cc) + row.co;
    row.effort = j.decisions + j.backtracks;
    out.rows.push_back(std::move(row));
  }

  std::vector<double> predicted, effort;
  predicted.reserve(out.rows.size());
  effort.reserve(out.rows.size());
  for (const ScoapFaultRow& r : out.rows) {
    predicted.push_back(static_cast<double>(r.predicted));
    effort.push_back(static_cast<double>(r.effort));
  }
  const std::vector<double> pr = average_ranks(predicted);
  const std::vector<double> er = average_ranks(effort);
  for (std::size_t i = 0; i < out.rows.size(); ++i) {
    out.rows[i].predicted_rank = pr[i];
    out.rows[i].effort_rank = er[i];
  }
  out.spearman = spearman_rank_correlation(predicted, effort);

  std::vector<int> order(out.rows.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double ga = std::abs(out.rows[static_cast<std::size_t>(a)].rank_gap());
    const double gb = std::abs(out.rows[static_cast<std::size_t>(b)].rank_gap());
    if (ga != gb) return ga > gb;
    return out.rows[static_cast<std::size_t>(a)].key <
           out.rows[static_cast<std::size_t>(b)].key;
  });
  const int k = std::min<int>(top_k, static_cast<int>(order.size()));
  out.top_mispredicted.assign(order.begin(), order.begin() + k);
  return out;
}

}  // namespace tsyn::observe
