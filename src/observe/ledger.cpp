#include "observe/ledger.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

namespace tsyn::observe {

#ifndef TSYN_LEDGER_NOOP

namespace detail {

std::atomic<bool> g_enabled{false};
std::atomic<int> g_phase{0};

}  // namespace detail

namespace {

using detail::Event;
using detail::kEvDetected;
using detail::kEvNDetect;
using detail::kEvSeqDetected;
using detail::kEvSimEffort;
using detail::kEvTargeted;

struct LedgerState {
  std::mutex mu;
  /// One event buffer per recording thread, registered on first use and
  /// kept alive for the process lifetime — the util/trace buffer pattern.
  /// Only the owning thread appends; readers run between parallel
  /// sections.
  std::vector<std::shared_ptr<std::vector<Event>>> buffers;
  std::vector<std::string> phase_names{"run"};
  /// Largest record_universe() per phase, parallel to phase_names.
  std::vector<std::int64_t> universe{0};
};

LedgerState& state() {
  static LedgerState* s = new LedgerState();  // never dtor'd
  return *s;
}

}  // namespace

namespace detail {

std::vector<Event>* acquire_thread_events() {
  auto b = std::make_shared<std::vector<Event>>();
  b->reserve(1024);  // skip the early growth reallocations
  LedgerState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.buffers.push_back(b);
  return b.get();
}

}  // namespace detail

void ledger_enable() {
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void ledger_disable() {
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

void ledger_reset() {
  LedgerState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  for (auto& b : s.buffers) b->clear();
  s.phase_names.assign(1, "run");
  s.universe.assign(1, 0);
  detail::g_phase.store(0, std::memory_order_relaxed);
}

std::size_t ledger_event_count() {
  LedgerState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  std::size_t n = 0;
  for (const auto& b : s.buffers) n += b->size();
  return n;
}

LedgerPhase::LedgerPhase(const char* name) {
  LedgerState& s = state();
  int id = -1;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    for (std::size_t i = 0; i < s.phase_names.size(); ++i)
      if (s.phase_names[i] == name) {
        id = static_cast<int>(i);
        break;
      }
    if (id < 0) {
      id = static_cast<int>(s.phase_names.size());
      s.phase_names.emplace_back(name);
      s.universe.push_back(0);
    }
  }
  prev_ = detail::g_phase.exchange(id, std::memory_order_relaxed);
}

LedgerPhase::~LedgerPhase() {
  detail::g_phase.store(prev_, std::memory_order_relaxed);
}

void record_universe(long num_faults) {
  if (!ledger_enabled()) return;
  LedgerState& s = state();
  const int phase = detail::g_phase.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(s.mu);
  auto& u = s.universe[static_cast<std::size_t>(phase)];
  u = std::max(u, static_cast<std::int64_t>(num_faults));
}

#endif  // !TSYN_LEDGER_NOOP

#ifndef TSYN_LEDGER_NOOP
namespace {

/// Per-journey aggregation scratch beyond the public FaultJourney fields.
struct Agg {
  FaultJourney j;
  int ndetect_phase = -1;
  int seq_phase = -1;
};

void classify(FaultJourney& j) {
  if (j.outcome_detected > 0) j.status = "detected";
  else if (j.first_detect_pattern >= 0 || j.first_detect_frame >= 0)
    j.status = "dropped";
  else if (j.outcome_untestable > 0) j.status = "redundant";
  else if (j.outcome_aborted > 0) j.status = "aborted";
  else j.status = "undetected";
}

}  // namespace
#endif  // !TSYN_LEDGER_NOOP

LedgerSnapshot ledger_snapshot() {
  LedgerSnapshot out;
#ifndef TSYN_LEDGER_NOOP
  LedgerState& s = state();
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    out.phases = s.phase_names;
    std::size_t total = 0;
    for (const auto& b : s.buffers) total += b->size();
    events.reserve(total);
    for (const auto& b : s.buffers)
      events.insert(events.end(), b->begin(), b->end());
  }

  // Merge into one journey per fault. Every aggregation below is
  // order-insensitive (sum / min / max / lexicographic min), so the
  // arbitrary buffer interleaving across thread counts cannot show.
  std::map<FaultKey, Agg> by_fault;
  // Per (phase, fault): earliest detecting pattern/frame, for waterfalls.
  std::map<std::pair<int, FaultKey>, std::int64_t> first_pattern;
  std::map<std::pair<int, FaultKey>, std::int64_t> first_frame;
  for (const Event& e : events) {
    Agg& a = by_fault[e.key];
    a.j.key = e.key;
    switch (e.kind) {
      case kEvTargeted: {
        ++a.j.targets;
        a.j.decisions += e.a;
        a.j.backtracks += e.b;
        const auto oc = static_cast<TargetOutcome>(e.outcome);
        if (oc == TargetOutcome::kDetected) ++a.j.outcome_detected;
        else if (oc == TargetOutcome::kUntestable) ++a.j.outcome_untestable;
        else ++a.j.outcome_aborted;
        break;
      }
      case kEvDetected: {
        if (a.j.first_detect_phase < 0 || e.phase < a.j.first_detect_phase ||
            (e.phase == a.j.first_detect_phase &&
             e.a < a.j.first_detect_pattern)) {
          a.j.first_detect_phase = e.phase;
          a.j.first_detect_pattern = e.a;
        }
        auto [it, fresh] =
            first_pattern.try_emplace({e.phase, e.key}, e.a);
        if (!fresh) it->second = std::min(it->second, e.a);
        break;
      }
      case kEvSeqDetected: {
        if (a.seq_phase < 0 || e.phase < a.seq_phase ||
            (e.phase == a.seq_phase && e.a < a.j.first_detect_frame)) {
          a.seq_phase = e.phase;
          a.j.first_detect_frame = e.a;
        }
        auto [it, fresh] = first_frame.try_emplace({e.phase, e.key}, e.a);
        if (!fresh) it->second = std::min(it->second, e.a);
        break;
      }
      case kEvSimEffort:
        a.j.sim_events += e.a;
        break;
      case kEvNDetect:
        // Several phases may grade a detection matrix (pre-prune set,
        // shipped set); keep the latest phase's count, max within a phase.
        if (e.phase > a.ndetect_phase) {
          a.ndetect_phase = e.phase;
          a.j.n_detect = e.a;
        } else if (e.phase == a.ndetect_phase) {
          a.j.n_detect = std::max(a.j.n_detect, e.a);
        }
        break;
    }
  }

  out.journeys.reserve(by_fault.size());
  for (auto& [key, agg] : by_fault) {
    classify(agg.j);
    if (agg.j.status == "detected") ++out.detected;
    else if (agg.j.status == "dropped") ++out.dropped;
    else if (agg.j.status == "redundant") ++out.redundant;
    else if (agg.j.status == "aborted") ++out.aborted;
    else ++out.undetected;
    out.total_decisions += agg.j.decisions;
    out.total_backtracks += agg.j.backtracks;
    out.total_sim_events += agg.j.sim_events;
    out.journeys.push_back(std::move(agg.j));
  }

  // Waterfalls: per phase and domain, sort the per-fault first detections
  // by index and emit one cumulative point per distinct index.
  auto build = [&](const std::map<std::pair<int, FaultKey>, std::int64_t>&
                       firsts,
                   const char* domain) {
    std::map<int, std::vector<std::int64_t>> per_phase;
    for (const auto& [pk, index] : firsts)
      per_phase[pk.first].push_back(index);
    for (auto& [phase, indices] : per_phase) {
      std::sort(indices.begin(), indices.end());
      Waterfall w;
      w.phase = phase;
      w.phase_name = out.phases[static_cast<std::size_t>(phase)];
      w.domain = domain;
      {
        std::lock_guard<std::mutex> lk(s.mu);
        w.universe = s.universe[static_cast<std::size_t>(phase)];
      }
      if (w.universe == 0)
        w.universe = static_cast<std::int64_t>(indices.size());
      std::int64_t cum = 0;
      for (std::size_t i = 0; i < indices.size(); ++i) {
        ++cum;
        if (i + 1 < indices.size() && indices[i + 1] == indices[i]) continue;
        w.curve.push_back({indices[i], cum});
      }
      out.waterfalls.push_back(std::move(w));
    }
  };
  build(first_pattern, "pattern");
  build(first_frame, "frame");
  std::sort(out.waterfalls.begin(), out.waterfalls.end(),
            [](const Waterfall& a, const Waterfall& b) {
              return a.phase != b.phase ? a.phase < b.phase
                                        : a.domain < b.domain;
            });
#else
  out.phases.emplace_back("run");
#endif  // !TSYN_LEDGER_NOOP
  return out;
}

namespace {

void append_json_string(std::ostream& os, const std::string& t) {
  os << '"';
  for (char ch : t) {
    if (ch == '"' || ch == '\\') os << '\\';
    os << ch;
  }
  os << '"';
}

}  // namespace

std::string ledger_to_json(const LedgerSnapshot& snap) {
  // Integers only — no float formatting to keep the byte-identity
  // contract trivially robust.
  std::ostringstream os;
  os << "{\n  \"schema\": 1,\n  \"phases\": [";
  for (std::size_t i = 0; i < snap.phases.size(); ++i) {
    if (i) os << ", ";
    append_json_string(os, snap.phases[i]);
  }
  os << "],\n  \"summary\": {\"faults\": " << snap.journeys.size()
     << ", \"detected\": " << snap.detected
     << ", \"dropped\": " << snap.dropped
     << ", \"redundant\": " << snap.redundant
     << ", \"aborted\": " << snap.aborted
     << ", \"undetected\": " << snap.undetected
     << ", \"decisions\": " << snap.total_decisions
     << ", \"backtracks\": " << snap.total_backtracks
     << ", \"sim_events\": " << snap.total_sim_events << "},\n"
     << "  \"waterfalls\": [";
  for (std::size_t i = 0; i < snap.waterfalls.size(); ++i) {
    const Waterfall& w = snap.waterfalls[i];
    os << (i ? ",\n    " : "\n    ") << "{\"phase\": ";
    append_json_string(os, w.phase_name);
    os << ", \"domain\": \"" << w.domain << "\", \"universe\": " << w.universe
       << ", \"curve\": [";
    for (std::size_t p = 0; p < w.curve.size(); ++p) {
      if (p) os << ", ";
      os << "{\"i\": " << w.curve[p].index
         << ", \"detected\": " << w.curve[p].detected << "}";
    }
    os << "]}";
  }
  os << (snap.waterfalls.empty() ? "]" : "\n  ]") << ",\n  \"faults\": [";
  for (std::size_t i = 0; i < snap.journeys.size(); ++i) {
    const FaultJourney& j = snap.journeys[i];
    os << (i ? ",\n    " : "\n    ") << "{\"node\": " << j.key.node
       << ", \"pin\": " << j.key.pin << ", \"sa\": " << j.key.sa1
       << ", \"status\": \"" << j.status << "\", \"targets\": " << j.targets
       << ", \"decisions\": " << j.decisions
       << ", \"backtracks\": " << j.backtracks
       << ", \"first_detect_pattern\": " << j.first_detect_pattern
       << ", \"first_detect_frame\": " << j.first_detect_frame
       << ", \"n_detect\": " << j.n_detect
       << ", \"sim_events\": " << j.sim_events << "}";
  }
  os << (snap.journeys.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

std::string ledger_to_json() { return ledger_to_json(ledger_snapshot()); }

}  // namespace tsyn::observe
