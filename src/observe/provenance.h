// Cross-layer provenance: gate -> RTL component -> CDFG operation.
//
// The survey's thesis is that testability is decided at the behavioral
// level, yet every measurement we take lands at the gate level: a fault is
// a (node, pin, polarity) triple with a lossy name string. The provenance
// map closes that gap structurally. During gl::expand every created node
// is attributed to exactly one RTL component (register, register input
// mux, FU, FU port mux, controller, primary-input pad, constant), and
// hls::build_rtl records which CDFG ops each component serves (the ops a
// register's drivers write, the ops an FU executes, the ops that read
// through each port-mux leg). Joining the PR-4 fault ledger against the
// map then answers the paper's actual question — *which synthesis
// decision* cost us coverage — as per-component and per-op fault coverage.
//
// Determinism contract: the map is built serially during expansion, the
// ledger snapshot is already byte-identical across thread counts, and the
// join below is a deterministic fold over both — so provenance_to_json()
// is byte-identical at any thread count, like ledger_to_json().
//
// Layering: this header depends on rtl/cdfg only (no gatelevel types),
// mirroring how the ledger sits below the engines that feed it. Node ids
// are plain ints; gl::expand populates them through ProvenanceBuilder.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cdfg/ir.h"
#include "rtl/datapath.h"

namespace tsyn::observe {

struct LedgerSnapshot;  // observe/ledger.h

/// RTL component classes a gate can originate from.
enum class CompKind : std::uint8_t {
  kController,    ///< step counter + one-hot decode (shared control logic)
  kPrimaryInput,  ///< input pad word
  kConstant,      ///< tied constant word
  kRegister,      ///< register bits (Q flops / scan ports)
  kRegMux,        ///< a register's input mux tree + hold mux + its controls
  kFu,            ///< a functional unit's arithmetic + opcode mux
  kFuMux,         ///< one FU operand port's mux tree + its select lines
};

const char* to_string(CompKind k);

struct ProvComponent {
  CompKind kind = CompKind::kFu;
  /// Index into the datapath's regs/fus/primary_inputs/constants; -1 for
  /// the controller.
  int index = -1;
  /// Operand port for kFuMux; -1 otherwise.
  int port = -1;
  /// Stable human key: register/FU/pad name, "<reg>.in", "<fu>.p<k>",
  /// or "ctl".
  std::string name;
  /// CDFG ops bound onto this component (sorted, deduped): the ops an FU
  /// executes, the ops whose results a register mux routes, the ops that
  /// read an operand through a port mux, the readers+writers of a
  /// register. Empty only for the controller (it serves every op) and for
  /// datapaths built without hls::build_rtl's cross references.
  std::vector<cdfg::OpId> ops;
  /// Variables stored in the component (registers only; sorted).
  std::vector<cdfg::VarId> vars;
};

/// The map itself: the component table plus one component id per netlist
/// node (-1 = unattributed, which expand never produces).
struct ProvenanceMap {
  std::vector<ProvComponent> components;
  std::vector<std::int32_t> comp_of_node;
  /// Optional per-op labels, filled by annotate_ops for reports/explain.
  std::vector<std::string> op_label;

  bool empty() const { return components.empty(); }
  int component_of(int node) const {
    return node >= 0 && node < static_cast<int>(comp_of_node.size())
               ? comp_of_node[static_cast<std::size_t>(node)]
               : -1;
  }
  /// Linear scan by identity; the table is small (O(datapath)).
  int find(CompKind kind, int index, int port = -1) const;
  std::int64_t num_attributed() const;
  /// 1 + the largest op id any component references (0 when none).
  int num_ops() const;
};

/// Derives the component table from the datapath structure, including the
/// RTL->CDFG cross references hls::build_rtl records (driver_ops /
/// port_driver_ops). Missing or mis-sized cross references (hand-built
/// datapaths, post-build transforms that add drivers) degrade to empty op
/// lists rather than failing. comp_of_node stays empty — gl::expand fills
/// it through ProvenanceBuilder.
ProvenanceMap make_component_map(const rtl::Datapath& dp,
                                 bool with_controller);

/// Streams node-range attribution during netlist construction. The
/// expander opens a component scope, builds gates, and closes it; every
/// node created while a scope is open is attributed to the innermost open
/// component. Scopes nest (controller decode built while a mux component
/// is open attributes to the mux — the consumer owns its control lines).
/// Constructed with nullptr the builder is a no-op.
class ProvenanceBuilder {
 public:
  explicit ProvenanceBuilder(ProvenanceMap* map) : map_(map) {}

  /// Enters component `comp` for nodes created from id `num_nodes` on.
  void push(int comp, int num_nodes) {
    if (!map_) return;
    flush(num_nodes);
    stack_.push_back(comp);
  }
  /// Leaves the innermost component; nodes up to `num_nodes` belong to it.
  void pop(int num_nodes) {
    if (!map_) return;
    flush(num_nodes);
    stack_.pop_back();
  }
  /// Final flush; sizes comp_of_node to exactly `num_nodes`.
  void finish(int num_nodes) {
    if (!map_) return;
    flush(num_nodes);
  }
  bool enabled() const { return map_ != nullptr; }

 private:
  /// resize's fill value attributes exactly the nodes created since the
  /// last flush to the component that was open while they were built.
  void flush(int num_nodes) {
    const std::int32_t comp =
        stack_.empty() ? -1 : static_cast<std::int32_t>(stack_.back());
    map_->comp_of_node.resize(static_cast<std::size_t>(num_nodes), comp);
  }

  ProvenanceMap* map_ = nullptr;
  std::vector<int> stack_;
};

/// Fills map.op_label with one-line descriptions of every referenced op —
/// "o3 x1 = mul(x, dx) @s2" — reconstructed from the CDFG (the textual
/// form ops are written in, i.e. the behavioral source line). Pass the
/// schedule's step_of_op for the "@s<k>" suffix, or nullptr to omit it.
void annotate_ops(ProvenanceMap& map, const cdfg::Cdfg& g,
                  const std::vector<int>* step_of_op = nullptr);

// ---------------------------------------------------------------------------
// Coverage attribution: ledger join
// ---------------------------------------------------------------------------

/// Exact per-component rollup: every ledger fault lands in exactly one
/// component, so the integer counts below sum to the ledger's totals.
struct ComponentCoverage {
  std::int64_t faults = 0;
  std::int64_t detected = 0;    ///< own-test detections
  std::int64_t dropped = 0;     ///< detected by another fault's test
  std::int64_t redundant = 0;
  std::int64_t aborted = 0;
  std::int64_t undetected = 0;
  std::int64_t decisions = 0;   ///< summed ATPG effort
  std::int64_t backtracks = 0;
  std::int64_t sim_events = 0;
  /// Covered / coverable, the campaign's definition: detected + dropped
  /// over all faults (redundant faults count against, like
  /// AtpgCampaign::fault_coverage).
  double coverage() const {
    return faults > 0
               ? static_cast<double>(detected + dropped) /
                     static_cast<double>(faults)
               : 0.0;
  }
};

/// Per-op rollup. A fault belongs to one component but a component serves
/// several ops, so each fault contributes weight 1/|ops(component)| to
/// every op of its component; the weighted sums over all ops plus the
/// unattributed bucket reconcile exactly with the global counts.
struct OpCoverage {
  std::int64_t faults = 0;    ///< raw overlapping count
  std::int64_t covered = 0;   ///< detected + dropped, overlapping
  double faults_w = 0.0;      ///< weighted share of the fault universe
  double covered_w = 0.0;
  double coverage() const {
    return faults > 0
               ? static_cast<double>(covered) / static_cast<double>(faults)
               : 0.0;
  }
};

struct ProvenanceAttribution {
  /// Parallel to ProvenanceMap::components.
  std::vector<ComponentCoverage> components;
  /// Indexed by op id (size = map.num_ops()); ops no component references
  /// stay all-zero.
  std::vector<OpCoverage> ops;
  /// Ledger totals restated (faults = journeys joined).
  std::int64_t total_faults = 0;
  std::int64_t total_covered = 0;  ///< detected + dropped
  /// Journeys whose node resolved to no component (0 for expand-produced
  /// maps; nonzero means the map and netlist are out of sync).
  std::int64_t orphan_faults = 0;
  /// Weighted mass from components with no op cross reference (the
  /// controller, or unrecorded datapaths).
  double unattributed_faults_w = 0.0;
  double unattributed_covered_w = 0.0;
  /// Component indices sorted by ascending coverage (worst first), ties by
  /// more faults, then index; components with no faults excluded.
  std::vector<int> worst_components;
};

/// Joins the ledger's per-fault journeys against the map. Deterministic:
/// a pure fold over two already-deterministic structures. Also publishes
/// the tsyn.provenance.entries gauge and the provenance.attr.join
/// histogram (per-component joined fault counts) to the metrics registry.
ProvenanceAttribution attribute_coverage(const ProvenanceMap& map,
                                         const LedgerSnapshot& ledger);

/// The provenance report section:
///   {"schema": 1,
///    "summary": {"components":N, "attributed_nodes":N, "faults":N,
///                "covered":N, "orphans":0, ...},
///    "components": [{"name":..., "kind":..., "faults":..., ...}, ...],
///    "ops": [{"op":K, "label":..., "faults":..., "faults_w":..., ...}],
///    "worst_components": [idx, ...]}
/// Byte-identical across thread counts for deterministic workloads.
std::string provenance_to_json(const ProvenanceMap& map,
                               const ProvenanceAttribution& attr);

// ---------------------------------------------------------------------------
// Heatmap overlays
// ---------------------------------------------------------------------------

/// Per-register coverage in [0,1] for rtl::datapath_to_dot's overlay,
/// merging each register's kRegister and kRegMux components; -1 where no
/// faults attribute.
std::vector<double> register_heat(const ProvenanceMap& map,
                                  const ProvenanceAttribution& attr,
                                  int num_regs);
/// Per-FU coverage, merging kFu with that FU's kFuMux components.
std::vector<double> fu_heat(const ProvenanceMap& map,
                            const ProvenanceAttribution& attr, int num_fus);
/// Per-op weighted coverage for cdfg::to_dot's overlay; -1 for ops with no
/// attributed faults.
std::vector<double> op_heat(const ProvenanceMap& map,
                            const ProvenanceAttribution& attr, int num_ops);

}  // namespace tsyn::observe
