#include "observe/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

namespace tsyn::observe {

namespace {

void append_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\') os << '\\';
    os << ch;
  }
  os << '"';
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  std::string s(buf);
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  return s;
}

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += ch;
    }
  }
  return out;
}

void append_scoap_row_json(std::ostream& os, const ScoapFaultRow& row) {
  os << "{\"fault\": ";
  append_json_string(os, row.label);
  os << ", \"status\": ";
  append_json_string(os, row.status);
  os << ", \"cc\": " << row.cc << ", \"co\": " << row.co
     << ", \"predicted\": " << row.predicted << ", \"effort\": " << row.effort
     << ", \"predicted_rank\": " << fmt_double(row.predicted_rank)
     << ", \"effort_rank\": " << fmt_double(row.effort_rank) << "}";
}

}  // namespace

std::string report_to_json(const RunReport& r) {
  std::ostringstream os;
  os << "{\n  \"schema\": 1,\n  \"tool\": \"tsyn\",\n  \"title\": ";
  append_json_string(os, r.title);
  os << ",\n  \"design\": {\"behavior\": ";
  append_json_string(os, r.behavior);
  os << ", \"width\": " << r.width << ", \"gates\": " << r.gates
     << ", \"pis\": " << r.pis << ", \"faults\": " << r.faults << "},\n";
  os << "  \"atpg\": {\"compact\": ";
  append_json_string(os, r.compact_mode);
  os << ", \"xfill\": ";
  append_json_string(os, r.xfill);
  os << ", \"fault_coverage\": " << fmt_double(r.fault_coverage)
     << ", \"fault_efficiency\": " << fmt_double(r.fault_efficiency)
     << ", \"cubes\": " << r.cubes << ", \"patterns\": " << r.patterns
     << ", \"baseline_patterns\": " << r.baseline_patterns << "},\n";
  os << "  \"ledger\": " << ledger_to_json(r.ledger) << ",\n";
  os << "  \"scoap\": {\"spearman\": " << fmt_double(r.scoap.spearman)
     << ", \"rows\": " << r.scoap.rows.size() << ", \"top_mispredicted\": [";
  bool first = true;
  for (int idx : r.scoap.top_mispredicted) {
    if (!first) os << ", ";
    first = false;
    append_scoap_row_json(os, r.scoap.rows[static_cast<std::size_t>(idx)]);
  }
  os << "]},\n";
  if (!r.provenance.empty())
    os << "  \"provenance\": "
       << provenance_to_json(r.provenance, r.attribution) << ",\n";
  if (r.profile_samples > 0) {
    os << "  \"profile\": {\"samples\": " << r.profile_samples
       << ", \"top\": [";
    bool first_frame = true;
    for (const ProfileFrame& f : r.profile_top) {
      if (!first_frame) os << ", ";
      first_frame = false;
      os << "{\"frame\": ";
      append_json_string(os, f.name);
      os << ", \"self\": " << f.self << ", \"total\": " << f.total << "}";
    }
    os << "]},\n";
  }
  os << "  \"metrics\": "
     << (r.metrics_json.empty() ? std::string("{}") : r.metrics_json);
  os << "\n}\n";
  return os.str();
}

namespace {

// ---------------------------------------------------------------------------
// HTML rendering
// ---------------------------------------------------------------------------

const char* const kPalette[] = {"#4269d0", "#efb118", "#ff725c", "#6cc5b0",
                                "#3ca951", "#ff8ab7", "#a463f2", "#97bbf5"};
constexpr int kPaletteSize = 8;

std::string fmt_pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", v);
  return buf;
}

/// One chart per domain: every phase's curve as a stepped polyline,
/// y = cumulative detections as % of the phase's universe.
void append_waterfall_svg(std::ostream& os,
                          const std::vector<const Waterfall*>& curves,
                          const std::string& x_label) {
  constexpr double kW = 640, kH = 300;
  constexpr double kL = 56, kR = 16, kT = 16, kB = 40;
  const double plot_w = kW - kL - kR, plot_h = kH - kT - kB;
  std::int64_t x_max = 1;
  for (const Waterfall* w : curves)
    if (!w->curve.empty()) x_max = std::max(x_max, w->curve.back().index + 1);
  const auto sx = [&](double i) { return kL + i / static_cast<double>(x_max) * plot_w; };
  const auto sy = [&](double pct) { return kT + (1.0 - pct / 100.0) * plot_h; };

  os << "<svg viewBox=\"0 0 " << kW << ' ' << kH
     << "\" role=\"img\" aria-label=\"coverage waterfall\">\n";
  // Gridlines + y-axis labels at 0/25/50/75/100%.
  for (int pct = 0; pct <= 100; pct += 25) {
    const double y = sy(pct);
    os << "<line x1=\"" << kL << "\" y1=\"" << y << "\" x2=\"" << kW - kR
       << "\" y2=\"" << y << "\" stroke=\"#e0e0e0\"/>\n";
    os << "<text x=\"" << kL - 6 << "\" y=\"" << y + 4
       << "\" text-anchor=\"end\" class=\"tick\">" << pct << "%</text>\n";
  }
  // x-axis labels at 0, mid, max.
  for (const std::int64_t x : {std::int64_t{0}, x_max / 2, x_max}) {
    os << "<text x=\"" << sx(static_cast<double>(x)) << "\" y=\"" << kH - kB + 18
       << "\" text-anchor=\"middle\" class=\"tick\">" << x << "</text>\n";
  }
  os << "<text x=\"" << kL + plot_w / 2 << "\" y=\"" << kH - 6
     << "\" text-anchor=\"middle\" class=\"tick\">" << html_escape(x_label)
     << "</text>\n";

  int color = 0;
  for (const Waterfall* w : curves) {
    const char* c = kPalette[color % kPaletteSize];
    ++color;
    if (w->curve.empty()) continue;
    const double uni =
        w->universe > 0 ? static_cast<double>(w->universe)
                        : static_cast<double>(w->curve.back().detected);
    os << "<polyline fill=\"none\" stroke=\"" << c
       << "\" stroke-width=\"2\" points=\"";
    double prev_pct = 0.0;
    bool first = true;
    for (const Waterfall::Point& p : w->curve) {
      const double pct =
          uni > 0 ? 100.0 * static_cast<double>(p.detected) / uni : 0.0;
      const double x = sx(static_cast<double>(p.index));
      if (!first) os << ' ' << x << ',' << sy(prev_pct);  // step
      os << (first ? "" : " ") << x << ',' << sy(pct);
      prev_pct = pct;
      first = false;
    }
    os << ' ' << sx(static_cast<double>(x_max)) << ',' << sy(prev_pct);
    os << "\"/>\n";
  }
  os << "</svg>\n";

  // Legend.
  os << "<div class=\"legend\">";
  color = 0;
  for (const Waterfall* w : curves) {
    const char* c = kPalette[color % kPaletteSize];
    ++color;
    const double uni =
        w->universe > 0 ? static_cast<double>(w->universe) : 0.0;
    const std::int64_t det = w->curve.empty() ? 0 : w->curve.back().detected;
    os << "<span><i style=\"background:" << c << "\"></i>"
       << html_escape(w->phase_name) << " — " << det << " detected";
    if (uni > 0)
      os << " (" << fmt_pct(100.0 * static_cast<double>(det) / uni) << ")";
    os << "</span> ";
  }
  os << "</div>\n";
}

void append_kv_row(std::ostream& os, const std::string& k,
                   const std::string& v) {
  os << "<tr><th>" << html_escape(k) << "</th><td>" << html_escape(v)
     << "</td></tr>\n";
}

}  // namespace

std::string report_to_html(const RunReport& r) {
  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
     << "<meta charset=\"utf-8\">\n<title>tsyn report — "
     << html_escape(r.title) << "</title>\n<style>\n"
     << "body{font:14px/1.45 system-ui,sans-serif;margin:2em auto;"
        "max-width:60em;padding:0 1em;color:#222}\n"
     << "h1{font-size:1.4em}h2{font-size:1.1em;margin-top:2em;"
        "border-bottom:1px solid #ddd;padding-bottom:.2em}\n"
     << "table{border-collapse:collapse;margin:.5em 0}\n"
     << "th,td{border:1px solid #ccc;padding:.25em .6em;text-align:left}\n"
     << "th{background:#f5f5f5;font-weight:600}\n"
     << "td.num,th.num{text-align:right;font-variant-numeric:tabular-nums}\n"
     << "svg{width:100%;height:auto;max-width:640px;display:block}\n"
     << ".tick{font-size:11px;fill:#666}\n"
     << ".legend span{margin-right:1.2em;white-space:nowrap}\n"
     << ".legend i{display:inline-block;width:.8em;height:.8em;"
        "margin-right:.3em;border-radius:2px}\n"
     << "code{background:#f5f5f5;padding:.1em .3em}\n"
     << "</style>\n</head>\n<body>\n";
  os << "<h1>tsyn run report — " << html_escape(r.title) << "</h1>\n";

  os << "<h2>Summary</h2>\n<table>\n";
  append_kv_row(os, "behavior", r.behavior);
  append_kv_row(os, "datapath width", std::to_string(r.width));
  append_kv_row(os, "gates", std::to_string(r.gates));
  append_kv_row(os, "primary inputs (incl. scan)", std::to_string(r.pis));
  append_kv_row(os, "collapsed faults", std::to_string(r.faults));
  append_kv_row(os, "compaction", r.compact_mode + " / xfill=" + r.xfill);
  append_kv_row(os, "fault coverage", fmt_pct(r.fault_coverage));
  append_kv_row(os, "fault efficiency", fmt_pct(r.fault_efficiency));
  append_kv_row(os, "shipped patterns",
                std::to_string(r.patterns) + " (baseline " +
                    std::to_string(r.baseline_patterns) + ", cubes " +
                    std::to_string(r.cubes) + ")");
  os << "</table>\n";

  const LedgerSnapshot& led = r.ledger;
  os << "<h2>Fault lifecycle</h2>\n<table>\n"
     << "<tr><th>status</th><th class=\"num\">faults</th></tr>\n";
  const auto status_row = [&](const char* name, std::int64_t v) {
    os << "<tr><td>" << name << "</td><td class=\"num\">" << v
       << "</td></tr>\n";
  };
  status_row("detected (by own test)", led.detected);
  status_row("dropped (detected by another fault's test)", led.dropped);
  status_row("redundant (proven untestable)", led.redundant);
  status_row("aborted (backtrack limit)", led.aborted);
  status_row("undetected", led.undetected);
  os << "</table>\n<p>Total ATPG effort: <code>" << led.total_decisions
     << "</code> decisions, <code>" << led.total_backtracks
     << "</code> backtracks; simulation moved <code>" << led.total_sim_events
     << "</code> gate events.</p>\n";

  // Waterfalls, one chart per domain.
  std::vector<const Waterfall*> pattern_curves, frame_curves;
  for (const Waterfall& w : led.waterfalls)
    (w.domain == "frame" ? frame_curves : pattern_curves).push_back(&w);
  if (!pattern_curves.empty()) {
    os << "<h2>Coverage waterfall — pattern domain</h2>\n";
    append_waterfall_svg(os, pattern_curves, "pattern index");
  }
  if (!frame_curves.empty()) {
    os << "<h2>Coverage waterfall — frame domain</h2>\n";
    append_waterfall_svg(os, frame_curves, "frame index");
  }

  // Hardest faults by recorded ATPG effort.
  std::vector<const FaultJourney*> by_effort;
  for (const FaultJourney& j : led.journeys)
    if (j.targets > 0) by_effort.push_back(&j);
  std::sort(by_effort.begin(), by_effort.end(),
            [](const FaultJourney* a, const FaultJourney* b) {
              const std::int64_t ea = a->decisions + a->backtracks;
              const std::int64_t eb = b->decisions + b->backtracks;
              if (ea != eb) return ea > eb;
              return a->key < b->key;
            });
  if (by_effort.size() > 10) by_effort.resize(10);
  if (!by_effort.empty()) {
    os << "<h2>Hardest faults (ATPG effort)</h2>\n<table>\n"
       << "<tr><th>fault (node/pin/sa)</th><th>status</th>"
          "<th class=\"num\">decisions</th><th class=\"num\">backtracks</th>"
          "<th class=\"num\">first detect</th><th class=\"num\">n-detect</th>"
          "</tr>\n";
    for (const FaultJourney* j : by_effort) {
      os << "<tr><td>" << j->key.node << '/' << j->key.pin << "/sa"
         << j->key.sa1 << "</td><td>" << html_escape(j->status)
         << "</td><td class=\"num\">" << j->decisions
         << "</td><td class=\"num\">" << j->backtracks
         << "</td><td class=\"num\">" << j->first_detect_pattern
         << "</td><td class=\"num\">" << j->n_detect << "</td></tr>\n";
    }
    os << "</table>\n";
  }

  os << "<h2>SCOAP effort attribution</h2>\n";
  os << "<p>Spearman rank correlation between SCOAP-predicted difficulty "
        "(CC + CO of the faulted line) and recorded PODEM effort over "
     << r.scoap.rows.size() << " targeted faults: <code>"
     << fmt_double(r.scoap.spearman) << "</code>.</p>\n";
  if (!r.scoap.top_mispredicted.empty()) {
    os << "<table>\n<tr><th>fault</th><th>status</th>"
          "<th class=\"num\">CC</th><th class=\"num\">CO</th>"
          "<th class=\"num\">predicted rank</th>"
          "<th class=\"num\">effort rank</th>"
          "<th class=\"num\">effort</th></tr>\n";
    for (int idx : r.scoap.top_mispredicted) {
      const ScoapFaultRow& row = r.scoap.rows[static_cast<std::size_t>(idx)];
      os << "<tr><td>" << html_escape(row.label) << "</td><td>"
         << html_escape(row.status) << "</td><td class=\"num\">" << row.cc
         << "</td><td class=\"num\">" << row.co << "</td><td class=\"num\">"
         << row.predicted_rank << "</td><td class=\"num\">" << row.effort_rank
         << "</td><td class=\"num\">" << row.effort << "</td></tr>\n";
    }
    os << "</table>\n<p>Rows are the faults SCOAP mispredicted hardest "
          "(largest rank gap either way).</p>\n";
  }

  if (!r.provenance.empty()) {
    const ProvenanceMap& pm = r.provenance;
    const ProvenanceAttribution& pa = r.attribution;
    os << "<h2>Provenance — coverage by RTL component</h2>\n";
    os << "<p>Every collapsed fault attributed to the RTL component whose "
          "expansion created the faulted gate ("
       << pm.components.size() << " components, " << pm.num_attributed()
       << " of " << pm.comp_of_node.size()
       << " nodes attributed); worst components first.</p>\n";
    std::vector<int> comp_rows = pa.worst_components;
    if (comp_rows.size() > 10) comp_rows.resize(10);
    if (!comp_rows.empty()) {
      os << "<table>\n<tr><th>component</th><th>kind</th>"
            "<th class=\"num\">faults</th><th class=\"num\">detected</th>"
            "<th class=\"num\">dropped</th><th class=\"num\">undetected</th>"
            "<th class=\"num\">aborted</th><th class=\"num\">redundant</th>"
            "<th class=\"num\">decisions</th><th class=\"num\">coverage</th>"
            "</tr>\n";
      for (int idx : comp_rows) {
        const ProvComponent& comp = pm.components[static_cast<std::size_t>(idx)];
        const ComponentCoverage& c =
            pa.components[static_cast<std::size_t>(idx)];
        os << "<tr><td>" << html_escape(comp.name) << "</td><td>"
           << to_string(comp.kind) << "</td><td class=\"num\">" << c.faults
           << "</td><td class=\"num\">" << c.detected
           << "</td><td class=\"num\">" << c.dropped
           << "</td><td class=\"num\">" << c.undetected
           << "</td><td class=\"num\">" << c.aborted
           << "</td><td class=\"num\">" << c.redundant
           << "</td><td class=\"num\">" << c.decisions
           << "</td><td class=\"num\">" << fmt_pct(100.0 * c.coverage())
           << "</td></tr>\n";
      }
      os << "</table>\n";
    }

    os << "<h2>Provenance — coverage by CDFG operation</h2>\n"
       << "<p>Component counts fanned out to the operations each component "
          "serves (weight 1/|ops| per fault, so the weighted column sums "
          "to the fault universe";
    if (pa.unattributed_faults_w > 0)
      os << "; " << fmt_double(pa.unattributed_faults_w)
         << " weighted faults sit in op-less components such as the "
            "controller";
    os << ").</p>\n";
    bool any_op = false;
    for (std::size_t o = 0; o < pa.ops.size(); ++o) {
      const OpCoverage& oc = pa.ops[o];
      if (oc.faults == 0) continue;
      if (!any_op) {
        os << "<table>\n<tr><th>op</th><th>source line</th>"
              "<th class=\"num\">faults (overlapping)</th>"
              "<th class=\"num\">weighted share</th>"
              "<th class=\"num\">coverage</th></tr>\n";
        any_op = true;
      }
      const std::string label =
          o < pm.op_label.size() && !pm.op_label[o].empty()
              ? pm.op_label[o]
              : "o" + std::to_string(o);
      os << "<tr><td>o" << o << "</td><td><code>" << html_escape(label)
         << "</code></td><td class=\"num\">" << oc.faults
         << "</td><td class=\"num\">" << fmt_double(oc.faults_w)
         << "</td><td class=\"num\">" << fmt_pct(100.0 * oc.coverage())
         << "</td></tr>\n";
    }
    if (any_op) os << "</table>\n";
  }

  if (r.profile_samples > 0) {
    os << "<h2>Sampling profile</h2>\n<p>Wall-clock span-stack samples: "
          "<code>"
       << r.profile_samples
       << "</code>. Self = samples with the span as the innermost live "
          "frame; total = samples with it anywhere on the stack.</p>\n"
          "<table>\n<tr><th>span</th><th class=\"num\">self</th>"
          "<th class=\"num\">self %</th><th class=\"num\">total</th>"
          "<th class=\"num\">total %</th></tr>\n";
    const double denom = static_cast<double>(r.profile_samples);
    for (const ProfileFrame& f : r.profile_top) {
      os << "<tr><td><code>" << html_escape(f.name)
         << "</code></td><td class=\"num\">" << f.self
         << "</td><td class=\"num\">"
         << fmt_pct(100.0 * static_cast<double>(f.self) / denom)
         << "</td><td class=\"num\">" << f.total << "</td><td class=\"num\">"
         << fmt_pct(100.0 * static_cast<double>(f.total) / denom)
         << "</td></tr>\n";
    }
    os << "</table>\n";
  }

  os << "</body>\n</html>\n";
  return os.str();
}

}  // namespace tsyn::observe
