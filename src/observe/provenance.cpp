#include "observe/provenance.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "observe/ledger.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace tsyn::observe {

const char* to_string(CompKind k) {
  switch (k) {
    case CompKind::kController: return "controller";
    case CompKind::kPrimaryInput: return "input";
    case CompKind::kConstant: return "constant";
    case CompKind::kRegister: return "register";
    case CompKind::kRegMux: return "reg-mux";
    case CompKind::kFu: return "fu";
    case CompKind::kFuMux: return "fu-mux";
  }
  return "?";
}

int ProvenanceMap::find(CompKind kind, int index, int port) const {
  for (std::size_t i = 0; i < components.size(); ++i) {
    const ProvComponent& c = components[i];
    if (c.kind == kind && c.index == index && c.port == port)
      return static_cast<int>(i);
  }
  return -1;
}

std::int64_t ProvenanceMap::num_attributed() const {
  std::int64_t n = 0;
  for (std::int32_t c : comp_of_node) n += c >= 0;
  return n;
}

int ProvenanceMap::num_ops() const {
  int max_op = -1;
  for (const ProvComponent& c : components)
    for (cdfg::OpId o : c.ops) max_op = std::max(max_op, o);
  return max_op + 1;
}

namespace {

void sort_unique(std::vector<int>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

void append(std::vector<int>& dst, const std::vector<int>& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

}  // namespace

ProvenanceMap make_component_map(const rtl::Datapath& dp,
                                 bool with_controller) {
  ProvenanceMap map;
  const int num_regs = dp.num_regs();
  const int num_fus = dp.num_fus();

  // Writers per register: the ops whose results its drivers carry, as
  // recorded by hls::build_rtl. Mis-sized cross references (post-build
  // driver edits) degrade to empty.
  std::vector<std::vector<int>> writers(num_regs);
  for (int r = 0; r < num_regs; ++r) {
    const rtl::RegisterInfo& reg = dp.regs[r];
    const std::size_t nd =
        std::min(reg.drivers.size(), reg.driver_ops.size());
    for (std::size_t d = 0; d < nd; ++d)
      append(writers[r], reg.driver_ops[d]);
  }

  // Readers per register / pad / constant: the ops that consume the value
  // through an FU operand port or a register copy driver.
  std::vector<std::vector<int>> readers(num_regs);
  std::vector<std::vector<int>> pi_ops(dp.primary_inputs.size());
  std::vector<std::vector<int>> const_ops(dp.constants.size());
  auto credit_source = [&](const rtl::Source& s,
                           const std::vector<int>& ops) {
    switch (s.kind) {
      case rtl::Source::Kind::kRegister: append(readers[s.index], ops); break;
      case rtl::Source::Kind::kPrimaryInput:
        append(pi_ops[s.index], ops);
        break;
      case rtl::Source::Kind::kConstant: append(const_ops[s.index], ops); break;
      case rtl::Source::Kind::kFu: break;  // FU chaining: owns its own ops
    }
  };
  for (int f = 0; f < num_fus; ++f) {
    const rtl::FuInfo& fu = dp.fus[f];
    for (std::size_t p = 0; p < fu.port_drivers.size(); ++p)
      for (std::size_t d = 0; d < fu.port_drivers[p].size(); ++d) {
        const bool recorded = p < fu.port_driver_ops.size() &&
                              d < fu.port_driver_ops[p].size();
        credit_source(fu.port_drivers[p][d],
                      recorded ? fu.port_driver_ops[p][d] : fu.ops);
      }
  }
  for (int r = 0; r < num_regs; ++r) {
    const rtl::RegisterInfo& reg = dp.regs[r];
    const std::size_t nd =
        std::min(reg.drivers.size(), reg.driver_ops.size());
    for (std::size_t d = 0; d < nd; ++d)
      credit_source(reg.drivers[d], reg.driver_ops[d]);
  }
  // An input pad additionally serves everything done with the registers it
  // reloads — a fault on the pad corrupts the value those ops consume.
  for (int r = 0; r < num_regs; ++r)
    for (const rtl::Source& s : dp.regs[r].drivers)
      if (s.kind == rtl::Source::Kind::kPrimaryInput) {
        append(pi_ops[s.index], readers[r]);
        append(pi_ops[s.index], writers[r]);
      }

  auto add = [&](CompKind kind, int index, int port, std::string name,
                 std::vector<int> ops, std::vector<int> vars = {}) {
    sort_unique(ops);
    sort_unique(vars);
    map.components.push_back(
        {kind, index, port, std::move(name), std::move(ops),
         std::move(vars)});
  };

  if (with_controller) add(CompKind::kController, -1, -1, "ctl", {});
  for (std::size_t i = 0; i < dp.primary_inputs.size(); ++i)
    add(CompKind::kPrimaryInput, static_cast<int>(i), -1,
        dp.primary_inputs[i].name, pi_ops[i]);
  for (std::size_t c = 0; c < dp.constants.size(); ++c)
    add(CompKind::kConstant, static_cast<int>(c), -1, dp.constants[c].name,
        const_ops[c]);
  for (int r = 0; r < num_regs; ++r) {
    std::vector<int> ops = writers[r];
    append(ops, readers[r]);
    add(CompKind::kRegister, r, -1, dp.regs[r].name, std::move(ops),
        dp.regs[r].vars);
  }
  for (int r = 0; r < num_regs; ++r) {
    if (dp.regs[r].drivers.empty()) continue;  // no input mux built
    // The mux routes the writers' results; an unwritten-but-muxed register
    // falls back to the register's full op set.
    std::vector<int> ops = writers[r];
    if (ops.empty()) {
      ops = readers[r];
    }
    add(CompKind::kRegMux, r, -1, dp.regs[r].name + ".in", std::move(ops));
  }
  for (int f = 0; f < num_fus; ++f)
    add(CompKind::kFu, f, -1, dp.fus[f].name, dp.fus[f].ops);
  for (int f = 0; f < num_fus; ++f) {
    const rtl::FuInfo& fu = dp.fus[f];
    for (std::size_t p = 0; p < fu.port_drivers.size(); ++p) {
      if (fu.port_drivers[p].size() <= 1) continue;  // no mux tree built
      std::vector<int> ops;
      if (p < fu.port_driver_ops.size())
        for (const auto& dops : fu.port_driver_ops[p]) append(ops, dops);
      if (ops.empty()) ops = fu.ops;
      add(CompKind::kFuMux, f, static_cast<int>(p),
          fu.name + ".p" + std::to_string(p), std::move(ops));
    }
  }
  return map;
}

void annotate_ops(ProvenanceMap& map, const cdfg::Cdfg& g,
                  const std::vector<int>* step_of_op) {
  map.op_label.assign(static_cast<std::size_t>(map.num_ops()), "");
  for (const ProvComponent& c : map.components)
    for (cdfg::OpId o : c.ops) {
      if (o < 0 || o >= g.num_ops()) continue;
      std::string& label = map.op_label[static_cast<std::size_t>(o)];
      if (!label.empty()) continue;
      const cdfg::Operation& op = g.op(o);
      std::ostringstream os;
      os << (op.name.empty() ? "o" + std::to_string(op.id) : op.name) << ' '
         << g.var(op.output).name << " = " << cdfg::to_string(op.kind) << '(';
      for (std::size_t i = 0; i < op.inputs.size(); ++i)
        os << (i ? ", " : "") << g.var(op.inputs[i]).name;
      os << ')';
      if (op.guard >= 0)
        os << (op.guard_polarity ? " if " : " if !") << g.var(op.guard).name;
      if (step_of_op && o < static_cast<int>(step_of_op->size()))
        os << " @s" << (*step_of_op)[static_cast<std::size_t>(o)];
      label = os.str();
    }
}

ProvenanceAttribution attribute_coverage(const ProvenanceMap& map,
                                         const LedgerSnapshot& ledger) {
  TSYN_SPAN("observe.attr_join");
  ProvenanceAttribution attr;
  attr.components.resize(map.components.size());
  attr.ops.resize(static_cast<std::size_t>(map.num_ops()));

  for (const FaultJourney& j : ledger.journeys) {
    ++attr.total_faults;
    const bool covered = j.status == "detected" || j.status == "dropped";
    attr.total_covered += covered;
    const int comp = map.component_of(j.key.node);
    if (comp < 0) {
      ++attr.orphan_faults;
      continue;
    }
    ComponentCoverage& c = attr.components[static_cast<std::size_t>(comp)];
    ++c.faults;
    if (j.status == "detected") ++c.detected;
    else if (j.status == "dropped") ++c.dropped;
    else if (j.status == "redundant") ++c.redundant;
    else if (j.status == "aborted") ++c.aborted;
    else ++c.undetected;
    c.decisions += j.decisions;
    c.backtracks += j.backtracks;
    c.sim_events += j.sim_events;
  }

  // Fan each component's exact counts out to its ops with equal weights;
  // op-less components (the controller) pool into the unattributed bucket
  // so the weighted mass still sums to the global totals.
  for (std::size_t i = 0; i < map.components.size(); ++i) {
    const ProvComponent& comp = map.components[i];
    const ComponentCoverage& c = attr.components[i];
    if (c.faults == 0) continue;
    const std::int64_t cov = c.detected + c.dropped;
    if (comp.ops.empty()) {
      attr.unattributed_faults_w += static_cast<double>(c.faults);
      attr.unattributed_covered_w += static_cast<double>(cov);
      continue;
    }
    const double w = 1.0 / static_cast<double>(comp.ops.size());
    for (cdfg::OpId o : comp.ops) {
      OpCoverage& oc = attr.ops[static_cast<std::size_t>(o)];
      oc.faults += c.faults;
      oc.covered += cov;
      oc.faults_w += static_cast<double>(c.faults) * w;
      oc.covered_w += static_cast<double>(cov) * w;
    }
  }

  for (std::size_t i = 0; i < attr.components.size(); ++i)
    if (attr.components[i].faults > 0)
      attr.worst_components.push_back(static_cast<int>(i));
  std::sort(attr.worst_components.begin(), attr.worst_components.end(),
            [&](int a, int b) {
              const ComponentCoverage& ca =
                  attr.components[static_cast<std::size_t>(a)];
              const ComponentCoverage& cb =
                  attr.components[static_cast<std::size_t>(b)];
              if (ca.coverage() != cb.coverage())
                return ca.coverage() < cb.coverage();
              if (ca.faults != cb.faults) return ca.faults > cb.faults;
              return a < b;
            });

  util::metrics().gauge("tsyn.provenance.entries")
      .set(static_cast<double>(map.num_attributed()));
  static util::Histogram& join_hist =
      util::metrics().histogram("provenance.attr.join");
  for (const ComponentCoverage& c : attr.components)
    if (c.faults > 0) join_hist.observe(c.faults);
  return attr;
}

namespace {

void append_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\') os << '\\';
    os << ch;
  }
  os << '"';
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  std::string s(buf);
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  return s;
}

}  // namespace

std::string provenance_to_json(const ProvenanceMap& map,
                               const ProvenanceAttribution& attr) {
  std::ostringstream os;
  os << "{\n    \"schema\": 1,\n    \"summary\": {\"components\": "
     << map.components.size()
     << ", \"nodes\": " << map.comp_of_node.size()
     << ", \"attributed_nodes\": " << map.num_attributed()
     << ", \"faults\": " << attr.total_faults
     << ", \"covered\": " << attr.total_covered
     << ", \"orphans\": " << attr.orphan_faults
     << ", \"unattributed_faults_w\": "
     << fmt_double(attr.unattributed_faults_w)
     << ", \"unattributed_covered_w\": "
     << fmt_double(attr.unattributed_covered_w) << "},\n"
     << "    \"components\": [";
  for (std::size_t i = 0; i < map.components.size(); ++i) {
    const ProvComponent& comp = map.components[i];
    const ComponentCoverage& c = attr.components[i];
    os << (i ? ",\n      " : "\n      ") << "{\"name\": ";
    append_json_string(os, comp.name);
    os << ", \"kind\": \"" << to_string(comp.kind) << "\", \"ops\": [";
    for (std::size_t k = 0; k < comp.ops.size(); ++k)
      os << (k ? ", " : "") << comp.ops[k];
    os << "], \"faults\": " << c.faults << ", \"detected\": " << c.detected
       << ", \"dropped\": " << c.dropped << ", \"redundant\": " << c.redundant
       << ", \"aborted\": " << c.aborted
       << ", \"undetected\": " << c.undetected
       << ", \"decisions\": " << c.decisions
       << ", \"backtracks\": " << c.backtracks
       << ", \"sim_events\": " << c.sim_events
       << ", \"coverage\": " << fmt_double(c.coverage()) << "}";
  }
  os << (map.components.empty() ? "]" : "\n    ]") << ",\n    \"ops\": [";
  bool first = true;
  for (std::size_t o = 0; o < attr.ops.size(); ++o) {
    const OpCoverage& oc = attr.ops[o];
    if (oc.faults == 0) continue;  // never referenced or never faulted
    os << (first ? "\n      " : ",\n      ") << "{\"op\": " << o;
    if (o < map.op_label.size() && !map.op_label[o].empty()) {
      os << ", \"label\": ";
      append_json_string(os, map.op_label[o]);
    }
    os << ", \"faults\": " << oc.faults << ", \"covered\": " << oc.covered
       << ", \"faults_w\": " << fmt_double(oc.faults_w)
       << ", \"covered_w\": " << fmt_double(oc.covered_w)
       << ", \"coverage\": " << fmt_double(oc.coverage()) << "}";
    first = false;
  }
  os << (first ? "]" : "\n    ]") << ",\n    \"worst_components\": [";
  for (std::size_t i = 0; i < attr.worst_components.size(); ++i)
    os << (i ? ", " : "") << attr.worst_components[i];
  os << "]\n  }";
  return os.str();
}

namespace {

std::vector<double> merged_heat(const ProvenanceMap& map,
                                const ProvenanceAttribution& attr, int count,
                                CompKind main_kind, CompKind mux_kind) {
  std::vector<std::int64_t> faults(static_cast<std::size_t>(count), 0);
  std::vector<std::int64_t> covered(static_cast<std::size_t>(count), 0);
  for (std::size_t i = 0; i < map.components.size(); ++i) {
    const ProvComponent& comp = map.components[i];
    if (comp.kind != main_kind && comp.kind != mux_kind) continue;
    if (comp.index < 0 || comp.index >= count) continue;
    const ComponentCoverage& c = attr.components[i];
    faults[static_cast<std::size_t>(comp.index)] += c.faults;
    covered[static_cast<std::size_t>(comp.index)] +=
        c.detected + c.dropped;
  }
  std::vector<double> heat(static_cast<std::size_t>(count), -1.0);
  for (int i = 0; i < count; ++i)
    if (faults[static_cast<std::size_t>(i)] > 0)
      heat[static_cast<std::size_t>(i)] =
          static_cast<double>(covered[static_cast<std::size_t>(i)]) /
          static_cast<double>(faults[static_cast<std::size_t>(i)]);
  return heat;
}

}  // namespace

std::vector<double> register_heat(const ProvenanceMap& map,
                                  const ProvenanceAttribution& attr,
                                  int num_regs) {
  return merged_heat(map, attr, num_regs, CompKind::kRegister,
                     CompKind::kRegMux);
}

std::vector<double> fu_heat(const ProvenanceMap& map,
                            const ProvenanceAttribution& attr, int num_fus) {
  return merged_heat(map, attr, num_fus, CompKind::kFu, CompKind::kFuMux);
}

std::vector<double> op_heat(const ProvenanceMap& /*map*/,
                            const ProvenanceAttribution& attr, int num_ops) {
  std::vector<double> heat(static_cast<std::size_t>(num_ops), -1.0);
  for (int o = 0; o < num_ops && o < static_cast<int>(attr.ops.size()); ++o) {
    const OpCoverage& oc = attr.ops[static_cast<std::size_t>(o)];
    if (oc.faults_w > 0.0)
      heat[static_cast<std::size_t>(o)] = oc.covered_w / oc.faults_w;
  }
  return heat;
}

}  // namespace tsyn::observe
