// Shared inline-SVG sparkline + HTML-escaping helpers.
//
// Factored out of the history dashboard (history.cpp) so the live
// observability endpoint's dashboard draws the same sparklines from the
// same code instead of a drifting copy. Everything here emits
// self-contained markup — no scripts, no external references — which
// both dashboards' self-containment checks rely on.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace tsyn::observe {

/// Observable-10-ish palette shared by every dashboard surface.
inline constexpr const char* kSparkBlue = "#4269d0";
inline constexpr const char* kSparkOrange = "#efb118";
inline constexpr const char* kSparkRed = "#ff725c";
inline constexpr const char* kSparkGreen = "#3ca951";

/// `s` with &, <, >, " replaced by entities.
std::string html_escape(const std::string& s);

/// Inline sparkline: a polyline over `ys` scaled into a fixed 120x26
/// viewBox, with the last point marked. Flat series draw a midline.
/// Styling hook: the svg carries class="spark".
void append_sparkline(std::ostream& os, const std::vector<double>& ys,
                      const char* color);

}  // namespace tsyn::observe
