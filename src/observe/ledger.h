// Fault-lifecycle ledger: per-fault journey recording across the whole
// test-generation pipeline.
//
// The PR 2 metrics registry answers "how much total effort"; the ledger
// answers "which fault got it". Every engine that touches a fault posts an
// event — PODEM posts targeted(outcome, decisions, backtracks), the PPSFP
// detection loop posts detected(pattern index), the sequential engine
// posts seq_detected(frame), the propagation kernel posts sim_effort(gate
// events), and the compaction detection matrix posts n_detect(count).
// Reading the ledger merges the events into one journey per fault
// (targeted -> detected / dropped / redundant / aborted), plus per-phase
// coverage-waterfall curves (cumulative first-detections vs. pattern or
// frame index).
//
// Concurrency and determinism contract: recording appends to a
// thread-striped lock-free buffer (a thread_local vector, registered once
// under a mutex exactly like util/trace's span buffers), so pool workers
// record without synchronization. The merge aggregates with
// order-insensitive operations only — sums for effort, lexicographic
// (phase, index) minima for first detections, per-phase maxima for
// n-detect — and sorts journeys by fault key, so ledger_to_json() is
// byte-identical at any thread count for a deterministic workload. Collect
// only between parallel sections (ThreadPool::run's completion handshake
// orders worker writes before the caller's read), the same rule the trace
// layer has.
//
// Cost model: a disabled record is one relaxed atomic load and a branch.
// Compile with -DTSYN_LEDGER_NOOP (CMake option of the same name) to
// compile recording out entirely — the baseline the ledger-overhead
// acceptance bound in BENCH_faultsim.json is measured against.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace tsyn::observe {

/// Identity of a stuck-at fault, mirroring gl::Fault field-for-field
/// (node, fanin pin with -1 = output fault, stuck polarity) without
/// depending on the gatelevel library — the ledger sits below it.
struct FaultKey {
  std::int32_t node = -1;
  std::int32_t pin = -1;
  std::int32_t sa1 = 0;
  friend bool operator==(const FaultKey&, const FaultKey&) = default;
  friend auto operator<=>(const FaultKey&, const FaultKey&) = default;
};

/// How one PODEM run on a fault ended.
enum class TargetOutcome : std::uint8_t {
  kDetected = 0,
  kUntestable = 1,
  kAborted = 2,
};

#ifdef TSYN_LEDGER_NOOP

// Compile-time no-op path: ledger_enabled() folds to false so engine
// wiring (`if (observe::ledger_enabled()) record_...`) dead-codes away.
inline void ledger_enable() {}
inline void ledger_disable() {}
inline constexpr bool ledger_enabled() { return false; }
inline void ledger_reset() {}
inline std::size_t ledger_event_count() { return 0; }

class LedgerPhase {
 public:
  explicit LedgerPhase(const char* /*name*/) {}
  LedgerPhase(const LedgerPhase&) = delete;
  LedgerPhase& operator=(const LedgerPhase&) = delete;
};

inline void record_targeted(const FaultKey&, TargetOutcome, long /*decisions*/,
                            long /*backtracks*/) {}
inline void record_detected(const FaultKey&, long /*pattern*/) {}
inline void record_seq_detected(const FaultKey&, long /*frame*/) {}
inline void record_sim_effort(const FaultKey&, long /*events*/) {}
inline void record_ndetect(const FaultKey&, long /*count*/) {}
inline void record_universe(long /*num_faults*/) {}

#else

// -- recording internals (header-inline so the hot path costs a relaxed
// load, a TLS read, and a push_back — the engines record one event per
// live fault per pattern block, so an out-of-line call per event shows up
// as whole percents of PPSFP wall-clock) ------------------------------------

namespace detail {

enum EventKind : std::uint8_t {
  kEvTargeted = 0,
  kEvDetected = 1,
  kEvSeqDetected = 2,
  kEvSimEffort = 3,
  kEvNDetect = 4,
};

struct Event {
  FaultKey key;
  std::uint8_t kind = 0;
  std::uint8_t outcome = 0;  ///< TargetOutcome, kEvTargeted only
  std::int32_t phase = 0;
  std::int64_t a = 0;  ///< pattern / frame / events / count / decisions
  std::int64_t b = 0;  ///< backtracks (kEvTargeted)
};

/// Process-wide switches (defined in ledger.cpp). Read relaxed on the hot
/// path; written serially by enable/disable and LedgerPhase.
extern std::atomic<bool> g_enabled;
extern std::atomic<int> g_phase;

/// Slow path, once per thread: registers this thread's event buffer with
/// the global registry and returns it. The registry keeps every buffer
/// alive for the process lifetime, so the pointer never dangles.
std::vector<Event>* acquire_thread_events();

inline std::vector<Event>& thread_events() {
  thread_local std::vector<Event>* events = acquire_thread_events();
  return *events;
}

inline void push(const FaultKey& key, std::uint8_t kind, std::uint8_t outcome,
                 std::int64_t a, std::int64_t b) {
  thread_events().push_back(
      Event{key, kind, outcome, g_phase.load(std::memory_order_relaxed), a, b});
}

}  // namespace detail

// -- runtime switch ---------------------------------------------------------

void ledger_enable();
void ledger_disable();
inline bool ledger_enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
/// Drops every buffered event, phase registration, and recorded universe.
void ledger_reset();
/// Buffered event count (for tests and overhead sanity checks).
std::size_t ledger_event_count();

// -- phases -----------------------------------------------------------------

/// Sets the current phase for subsequently recorded events and restores
/// the previous phase on destruction. Phase names are interned on first
/// use (intern order defines phase ids — keep registration serial, which
/// the pipeline's phase scoping already guarantees). The default phase is
/// "run". Nesting is fine; recording from worker threads while a phase
/// scope is open on the spawning thread attributes to that phase.
class LedgerPhase {
 public:
  explicit LedgerPhase(const char* name);
  ~LedgerPhase();
  LedgerPhase(const LedgerPhase&) = delete;
  LedgerPhase& operator=(const LedgerPhase&) = delete;

 private:
  int prev_ = 0;
};

// -- recording --------------------------------------------------------------

/// One PODEM attempt on the fault (primary target or secondary probe) with
/// the search effort it spent.
inline void record_targeted(const FaultKey& key, TargetOutcome outcome,
                            long decisions, long backtracks) {
  if (!ledger_enabled()) return;
  detail::push(key, detail::kEvTargeted, static_cast<std::uint8_t>(outcome),
       decisions, backtracks);
}
/// The fault was detected by pattern `pattern` (64*block + lane) in a
/// combinational grading pass.
inline void record_detected(const FaultKey& key, long pattern) {
  if (!ledger_enabled()) return;
  detail::push(key, detail::kEvDetected, 0, pattern, 0);
}
/// The fault was detected at frame `frame` (1-based) by the sequential
/// engine.
inline void record_seq_detected(const FaultKey& key, long frame) {
  if (!ledger_enabled()) return;
  detail::push(key, detail::kEvSeqDetected, 0, frame, 0);
}
/// Gate-evaluation events one propagation of the fault cost.
inline void record_sim_effort(const FaultKey& key, long events) {
  if (!ledger_enabled()) return;
  detail::push(key, detail::kEvSimEffort, 0, events, 0);
}
/// How many patterns of a graded set detect the fault (detection matrix).
/// When several phases grade, the snapshot keeps the latest phase's count.
inline void record_ndetect(const FaultKey& key, long count) {
  if (!ledger_enabled()) return;
  detail::push(key, detail::kEvNDetect, 0, count, 0);
}
/// Size of the fault universe the current phase grades against (for
/// waterfall coverage denominators). Call from serial code.
void record_universe(long num_faults);

#endif  // TSYN_LEDGER_NOOP

// -- reading ----------------------------------------------------------------

/// One fault's merged journey.
struct FaultJourney {
  FaultKey key;
  /// "detected"   — a targeted run returned kDetected;
  /// "dropped"    — never successfully targeted, but a grading pass
  ///                detected it (fault dropping / secondary credit);
  /// "redundant"  — proven untestable, never detected;
  /// "aborted"    — targeting hit the backtrack limit, never detected;
  /// "undetected" — simulated (or merely enumerated) without detection.
  std::string status;
  int targets = 0;  ///< PODEM attempts (probes included)
  int outcome_detected = 0, outcome_untestable = 0, outcome_aborted = 0;
  std::int64_t decisions = 0, backtracks = 0;  ///< summed over attempts
  /// First combinational detection, as (phase, pattern) lexicographic
  /// minimum over detect events; -1 when never detected in pattern domain.
  std::int64_t first_detect_pattern = -1;
  int first_detect_phase = -1;
  /// First sequential detection frame (1-based); -1 when none.
  std::int64_t first_detect_frame = -1;
  /// Detection-matrix n-detect count from the latest recording phase; -1
  /// when no matrix graded this fault.
  std::int64_t n_detect = -1;
  std::int64_t sim_events = 0;  ///< summed propagation effort
};

/// One phase's coverage-accrual curve: cumulative first-detections by
/// ascending pattern (or frame) index. Monotone by construction.
struct Waterfall {
  int phase = 0;
  std::string phase_name;
  /// "pattern" (combinational grading) or "frame" (sequential sim).
  std::string domain;
  /// Fault universe recorded for the phase (largest record_universe call),
  /// or the phase's distinct detected count when none was recorded.
  std::int64_t universe = 0;
  struct Point {
    std::int64_t index = 0;     ///< pattern/frame index
    std::int64_t detected = 0;  ///< cumulative distinct faults detected
  };
  std::vector<Point> curve;
};

/// Deterministic merged view of everything recorded.
struct LedgerSnapshot {
  std::vector<std::string> phases;    ///< by phase id
  std::vector<FaultJourney> journeys; ///< sorted by key
  std::vector<Waterfall> waterfalls;  ///< sorted by (phase, domain)
  // Summary counts over journeys.
  std::int64_t detected = 0, dropped = 0, redundant = 0, aborted = 0,
               undetected = 0;
  std::int64_t total_decisions = 0, total_backtracks = 0,
               total_sim_events = 0;
};

LedgerSnapshot ledger_snapshot();

/// The snapshot as one JSON object — the determinism contract's artifact:
///   {"schema": 1, "phases": [...],
///    "summary": {"faults":N,"detected":..,...},
///    "waterfalls": [{"phase":"...","domain":"pattern","universe":N,
///                    "curve":[{"i":P,"detected":C},...]}, ...],
///    "faults": [{"node":..,"pin":..,"sa":..,"status":"...",...}, ...]}
/// Byte-identical across thread counts for deterministic workloads.
std::string ledger_to_json();
std::string ledger_to_json(const LedgerSnapshot& snap);

}  // namespace tsyn::observe
