#include "observe/profile.h"

#include <algorithm>
#include <set>

#include "util/trace.h"

namespace tsyn::observe {

void Profiler::sample() {
  const std::vector<util::ThreadStack> stacks = util::trace_sample_stacks();
  std::lock_guard<std::mutex> lk(mu_);
  ++ticks_;
  for (const util::ThreadStack& ts : stacks) {
    std::string key;
    for (std::size_t i = 0; i < ts.frames.size(); ++i) {
      if (i) key += ';';
      key += ts.frames[i];
    }
    ++stacks_[key];
    ++samples_;
  }
}

std::int64_t Profiler::ticks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ticks_;
}

std::int64_t Profiler::samples() const {
  std::lock_guard<std::mutex> lk(mu_);
  return samples_;
}

std::string Profiler::collapsed() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  for (const auto& [key, count] : stacks_) {
    out += key;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::vector<ProfileFrame> Profiler::top_self(int n) const {
  std::map<std::string, ProfileFrame> frames;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [key, count] : stacks_) {
      // Split the collapsed key back into frames; credit total once per
      // frame per stack (a recursive frame still counts one sample).
      std::set<std::string> seen;
      std::size_t start = 0;
      std::string leaf;
      while (start <= key.size()) {
        const std::size_t semi = key.find(';', start);
        const std::size_t end = semi == std::string::npos ? key.size() : semi;
        leaf = key.substr(start, end - start);
        if (seen.insert(leaf).second) {
          ProfileFrame& f = frames[leaf];
          f.name = leaf;
          f.total += count;
        }
        if (semi == std::string::npos) break;
        start = semi + 1;
      }
      if (!leaf.empty()) frames[leaf].self += count;
    }
  }
  std::vector<ProfileFrame> out;
  out.reserve(frames.size());
  for (auto& [name, f] : frames) out.push_back(std::move(f));
  std::sort(out.begin(), out.end(), [](const ProfileFrame& a,
                                       const ProfileFrame& b) {
    if (a.self != b.self) return a.self > b.self;
    return a.name < b.name;
  });
  if (n >= 0 && static_cast<std::size_t>(n) < out.size()) out.resize(n);
  return out;
}

}  // namespace tsyn::observe
