#include "observe/bench_diff.h"

#include <cmath>
#include <cstdio>
#include <string>

namespace tsyn::observe {

namespace {

using util::Json;

bool ends_with(const std::string& s, const std::string& suf) {
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

/// How a leaf field is judged, decided purely from its key name.
enum class FieldClass {
  kSkip,          ///< environment-dependent, ignore
  kIdentity,      ///< workload identity: must match exactly
  kLowerWorse,    ///< quality: fresh < base - tol is a regression
  kHigherWorse,   ///< cost count: fresh > base + tol is a regression
  kTime,          ///< *_ms: fresh may grow by time_tolerance_pct
  kInfo,          ///< differences are notes only
};

FieldClass classify(const std::string& key) {
  if (key == "hardware_concurrency" || key == "threads_used" ||
      key == "timestamp")
    return FieldClass::kSkip;
  // Derived from times; they drift whenever times drift.
  if (contains(key, "speedup") || ends_with(key, "overhead_pct"))
    return FieldClass::kInfo;
  if (ends_with(key, "_ms")) return FieldClass::kTime;
  if (contains(key, "coverage") || contains(key, "efficiency") ||
      contains(key, "reduction") || key == "detected" ||
      key.rfind("at_least", 0) == 0)
    return FieldClass::kLowerWorse;
  if (key.rfind("patterns", 0) == 0 || key.rfind("tdv_bits", 0) == 0 ||
      key == "cubes" || key == "topup")
    return FieldClass::kHigherWorse;
  if (key == "gates" || key == "faults" || key == "frames" ||
      key == "blocks" || key == "width" || key == "pis")
    return FieldClass::kIdentity;
  return FieldClass::kInfo;
}

std::string fmt_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

struct Differ {
  const BenchDiffOptions& opts;
  BenchDiffResult& out;

  void fail(const std::string& path, const std::string& msg) {
    out.regressions.push_back(path + ": " + msg);
  }
  void note(const std::string& path, const std::string& msg) {
    out.notes.push_back(path + ": " + msg);
  }

  void diff_number(const std::string& path, const std::string& key, double b,
                   double f) {
    const double tol = opts.value_tolerance;
    if (std::abs(b - f) <= tol) return;
    const std::string delta =
        "base=" + fmt_num(b) + " new=" + fmt_num(f);
    switch (classify(key)) {
      case FieldClass::kSkip:
        return;
      case FieldClass::kIdentity:
        fail(path, delta + " (workload identity changed)");
        return;
      case FieldClass::kLowerWorse:
        if (f < b - tol)
          fail(path, delta + " (quality dropped)");
        else
          note(path, delta + " (improved)");
        return;
      case FieldClass::kHigherWorse:
        if (f > b + tol)
          fail(path, delta + " (count grew)");
        else
          note(path, delta + " (improved)");
        return;
      case FieldClass::kTime: {
        if (!opts.check_time) return;
        const double limit = b * (1.0 + opts.time_tolerance_pct / 100.0);
        if (f > limit && f - b > tol)
          fail(path, delta + " (slower than +" +
                         fmt_num(opts.time_tolerance_pct) + "% tolerance)");
        else
          note(path, delta);
        return;
      }
      case FieldClass::kInfo:
        note(path, delta);
        return;
    }
  }

  void diff_value(const std::string& path, const std::string& key,
                  const Json& b, const Json& f) {
    // Whole subtrees that are observability payloads, not benchmark
    // results.
    if (key == "metrics" || key == "ledger") return;
    if (classify(key) == FieldClass::kSkip) return;
    if (b.type != f.type) {
      // A null on either side is a skip marker — the bench decided the
      // measurement is meaningless in that environment (e.g.
      // "parallel_ms": null on a single-core host) rather than timing
      // noise dressed up as data. A skipped measurement is never a
      // regression; only workload identity may not flip to null.
      if (b.type == Json::Type::kNull || f.type == Json::Type::kNull) {
        if (classify(key) == FieldClass::kIdentity)
          fail(path, "null vs value (workload identity changed)");
        else
          note(path, b.type == Json::Type::kNull
                         ? "unmeasured in baseline, measured in new run"
                         : "measured in baseline, skipped in new run");
        return;
      }
      fail(path, "type changed");
      return;
    }
    switch (b.type) {
      case Json::Type::kNumber:
        diff_number(path, key, b.number, f.number);
        return;
      case Json::Type::kString:
        if (b.str != f.str) {
          if (key == "circuit" || key == "fill" || key == "case")
            fail(path, "\"" + b.str + "\" vs \"" + f.str +
                           "\" (workload identity changed)");
          else
            note(path, "\"" + b.str + "\" vs \"" + f.str + "\"");
        }
        return;
      case Json::Type::kBool:
        if (b.boolean != f.boolean) note(path, "bool changed");
        return;
      case Json::Type::kNull:
        return;
      case Json::Type::kArray:
        diff_array(path, b, f);
        return;
      case Json::Type::kObject:
        diff_object(path, b, f);
        return;
    }
  }

  /// Array rows carry a name under one of these keys; matched rows diff
  /// field-by-field, nameless arrays diff index-wise.
  static const Json* row_name(const Json& row) {
    if (!row.is_object()) return nullptr;
    for (const char* k : {"circuit", "fill", "case"}) {
      const Json* v = row.find(k);
      if (v && v->is_string()) return v;
    }
    return nullptr;
  }

  void diff_array(const std::string& path, const Json& b, const Json& f) {
    const bool named = !b.arr.empty() && row_name(b.arr.front()) != nullptr;
    if (!named) {
      if (b.arr.size() != f.arr.size()) {
        note(path, "array length " + std::to_string(b.arr.size()) + " vs " +
                       std::to_string(f.arr.size()));
      }
      const std::size_t n = std::min(b.arr.size(), f.arr.size());
      for (std::size_t i = 0; i < n; ++i)
        diff_value(path + "[" + std::to_string(i) + "]", "", b.arr[i],
                   f.arr[i]);
      return;
    }
    for (const Json& brow : b.arr) {
      const Json* name = row_name(brow);
      const std::string rpath =
          path + "[" + (name ? name->str : "?") + "]";
      const Json* frow = nullptr;
      for (const Json& cand : f.arr) {
        const Json* cname = row_name(cand);
        if (name && cname && cname->str == name->str) {
          frow = &cand;
          break;
        }
      }
      if (!frow) {
        if (opts.allow_missing)
          note(rpath, "missing from new run");
        else
          fail(rpath, "missing from new run");
        continue;
      }
      diff_object(rpath, brow, *frow);
    }
    for (const Json& frow : f.arr) {
      const Json* name = row_name(frow);
      bool in_base = false;
      for (const Json& brow : b.arr) {
        const Json* bname = row_name(brow);
        if (name && bname && bname->str == name->str) {
          in_base = true;
          break;
        }
      }
      if (!in_base) note(path + "[" + (name ? name->str : "?") + "]",
                         "new row (not in baseline)");
    }
  }

  void diff_object(const std::string& path, const Json& b, const Json& f) {
    for (const auto& [key, bval] : b.obj) {
      if (key == "metrics" || key == "ledger") continue;
      if (classify(key) == FieldClass::kSkip) continue;
      const std::string kpath = path.empty() ? key : path + "." + key;
      const Json* fval = f.find(key);
      if (!fval) {
        // A missing leaf measurement is the same statement as an explicit
        // null: the new run skipped it. Structural members (sections,
        // row arrays) and identity fields must still be present.
        const bool leaf = !bval.is_object() && !bval.is_array();
        if (opts.allow_missing ||
            (leaf && classify(key) != FieldClass::kIdentity))
          note(kpath, "missing from new run");
        else
          fail(kpath, "missing from new run");
        continue;
      }
      diff_value(kpath, key, bval, *fval);
    }
    for (const auto& [key, fval] : f.obj) {
      (void)fval;
      if (!b.find(key)) {
        const std::string kpath = path.empty() ? key : path + "." + key;
        note(kpath, "new field (not in baseline)");
      }
    }
  }
};

}  // namespace

BenchDiffResult diff_bench_json(const Json& baseline, const Json& fresh,
                                const BenchDiffOptions& opts) {
  BenchDiffResult out;
  if (!baseline.is_object() || !fresh.is_object()) {
    out.schema_ok = false;
    out.schema_error = "both inputs must be JSON objects";
    return out;
  }
  for (const char* key : {"schema", "seed"}) {
    const Json* b = baseline.find(key);
    const Json* f = fresh.find(key);
    const double bv = b && b->is_number() ? b->number : -1.0;
    const double fv = f && f->is_number() ? f->number : -1.0;
    if (bv != fv) {
      out.schema_ok = false;
      out.schema_error = std::string(key) + " mismatch: base=" + fmt_num(bv) +
                         " new=" + fmt_num(fv);
      return out;
    }
  }
  Differ d{opts, out};
  d.diff_object("", baseline, fresh);
  return out;
}

std::string diff_result_to_text(const BenchDiffResult& res, bool quiet,
                                const std::string& label) {
  std::string out;
  if (!res.schema_ok) {
    out += "bench_diff: " + res.schema_error + "\n";
    return out;
  }
  for (const std::string& r : res.regressions) out += "FAIL " + r + "\n";
  if (!quiet)
    for (const std::string& n : res.notes) out += "note " + n + "\n";
  out += "bench_diff: " + std::to_string(res.regressions.size()) +
         " regression(s), " + std::to_string(res.notes.size()) + " note(s)";
  if (!label.empty()) out += " [" + label + "]";
  out += "\n";
  return out;
}

}  // namespace tsyn::observe
