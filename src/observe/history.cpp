#include "observe/history.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "observe/sparkline.h"
#include "util/hash.h"
#include "util/json.h"

namespace tsyn::observe {

namespace {

namespace fs = std::filesystem;

/// Sentinel z for "MAD is zero and the value moved": a deterministic
/// metric changed at all, which is categorically anomalous, not merely
/// far out. Finite so it serializes as plain JSON.
constexpr double kInfZ = 1e9;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Round-trip-exact double: the store must reproduce the sweep's numbers
/// exactly, so every persisted double goes through %.17g.
std::string fmt_exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Compact human-facing double (queries, sweep_stats block).
std::string fmt_short(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

std::vector<const HistoryEntry*> sorted_entries(const HistoryRun& r) {
  std::vector<const HistoryEntry*> out;
  out.reserve(r.entries.size());
  for (const HistoryEntry& e : r.entries) out.push_back(&e);
  std::sort(out.begin(), out.end(),
            [](const HistoryEntry* a, const HistoryEntry* b) {
              return a->job < b->job;
            });
  return out;
}

std::string entry_record(const std::string& run_id, const HistoryEntry& e) {
  std::ostringstream os;
  os << "{\"type\":\"entry\",\"run\":\"" << run_id << "\",\"job\":\""
     << json_escape(e.job) << "\",\"design\":\"" << json_escape(e.design)
     << "\",\"config\":\"" << json_escape(e.config) << "\",\"scan\":\""
     << json_escape(e.scan) << "\",\"width\":" << e.width
     << ",\"seed\":" << e.seed << ",\"status\":\"" << json_escape(e.status)
     << "\",\"gates\":" << e.gates << ",\"faults\":" << e.faults
     << ",\"patterns\":" << e.patterns << ",\"cubes\":" << e.cubes
     << ",\"coverage\":" << fmt_exact(e.coverage)
     << ",\"efficiency\":" << fmt_exact(e.efficiency)
     << ",\"wall_ms\":" << fmt_exact(e.wall_ms) << ",\"error\":\""
     << json_escape(e.error) << "\"}\n";
  return os.str();
}

std::string run_record(const HistoryRun& r) {
  std::ostringstream os;
  os << "{\"type\":\"run\",\"run\":\"" << r.run_id << "\",\"manifest\":\""
     << json_escape(r.manifest) << "\",\"source\":\"" << json_escape(r.source)
     << "\",\"jobs\":" << r.entries.size()
     << ",\"wall_ms\":" << fmt_exact(r.wall_ms)
     << ",\"memo_hit_rate\":" << fmt_exact(r.memo_hit_rate) << "}\n";
  return os.str();
}

/// Robust location/scale. Even-length medians average the middle pair.
double median_of(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

struct RobustStats {
  double median = 0, mad = 0;
};

RobustStats robust_stats(const std::vector<double>& xs) {
  RobustStats s;
  s.median = median_of(xs);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (double x : xs) dev.push_back(std::abs(x - s.median));
  s.mad = median_of(std::move(dev));
  return s;
}

double robust_z(double x, const RobustStats& s) {
  if (s.mad == 0.0) return x == s.median ? 0.0 : kInfZ;
  return 0.6745 * (x - s.median) / s.mad;
}

}  // namespace

std::string history_run_id(const HistoryRun& r) {
  util::Fnv1a h;
  h.str("history.run.v1").str(r.manifest);
  h.u64(double_bits(r.wall_ms)).u64(double_bits(r.memo_hit_rate));
  h.u64(r.entries.size());
  for (const HistoryEntry* e : sorted_entries(r)) {
    h.str(e->job).str(e->design).str(e->config).str(e->scan);
    h.i64(e->width).u64(e->seed).str(e->status).str(e->error);
    h.i64(e->gates).i64(e->faults).i64(e->patterns).i64(e->cubes);
    h.u64(double_bits(e->coverage)).u64(double_bits(e->efficiency));
    h.u64(double_bits(e->wall_ms));
  }
  return h.hex();
}

History history_load(const std::string& dir) {
  const std::string path = (fs::path(dir) / "store.jsonl").string();
  std::ifstream in(path);
  if (!in) throw HistoryError("no history store in " + dir + " (missing " +
                              path + ")");
  History h;
  std::map<std::string, std::size_t> run_index;  // run id -> h.runs slot
  std::map<std::string, std::int64_t> declared_jobs;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    util::Json doc;
    try {
      doc = util::Json::parse(line);
    } catch (const util::JsonParseError&) {
      continue;  // torn trailing record from a killed ingest
    }
    const util::Json* type = doc.find("type");
    if (!type || !type->is_string()) continue;
    auto str_of = [&](const char* key) {
      const util::Json* v = doc.find(key);
      return v && v->is_string() ? v->str : std::string();
    };
    if (type->str == "run") {
      HistoryRun r;
      r.run_id = str_of("run");
      r.manifest = str_of("manifest");
      r.source = str_of("source");
      r.wall_ms = doc.number_or("wall_ms", 0);
      r.memo_hit_rate = doc.number_or("memo_hit_rate", -1);
      if (r.run_id.empty() || run_index.count(r.run_id)) continue;
      declared_jobs[r.run_id] =
          static_cast<std::int64_t>(doc.number_or("jobs", 0));
      run_index[r.run_id] = h.runs.size();
      h.runs.push_back(std::move(r));
      continue;
    }
    if (type->str != "entry") continue;
    const auto it = run_index.find(str_of("run"));
    if (it == run_index.end()) continue;  // entry without a header: drop
    HistoryEntry e;
    e.job = str_of("job");
    e.design = str_of("design");
    e.config = str_of("config");
    e.scan = str_of("scan");
    e.width = static_cast<int>(doc.number_or("width", 0));
    e.seed = static_cast<std::uint64_t>(doc.number_or("seed", 0));
    e.status = str_of("status");
    e.error = str_of("error");
    e.gates = static_cast<std::int64_t>(doc.number_or("gates", 0));
    e.faults = static_cast<std::int64_t>(doc.number_or("faults", 0));
    e.patterns = static_cast<std::int64_t>(doc.number_or("patterns", 0));
    e.cubes = static_cast<std::int64_t>(doc.number_or("cubes", 0));
    e.coverage = doc.number_or("coverage", 0);
    e.efficiency = doc.number_or("efficiency", 0);
    e.wall_ms = doc.number_or("wall_ms", 0);
    h.runs[it->second].entries.push_back(std::move(e));
  }
  // A run is trusted only when complete and content-verified: a kill mid-
  // ingest (or a hand-edited store) can only drop that run, never corrupt
  // the derived views.
  History verified;
  for (HistoryRun& r : h.runs) {
    if (declared_jobs[r.run_id] !=
        static_cast<std::int64_t>(r.entries.size()))
      continue;
    if (history_run_id(r) != r.run_id) continue;
    verified.runs.push_back(std::move(r));
  }
  return verified;
}

std::vector<std::size_t> history_canonical_order(const History& h) {
  std::vector<std::size_t> order(h.runs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return h.runs[a].run_id < h.runs[b].run_id;
  });
  return order;
}

std::string history_index_json(const History& h) {
  std::set<std::string> keys;
  for (const HistoryRun& r : h.runs)
    for (const HistoryEntry& e : r.entries) keys.insert(e.job);
  std::ostringstream os;
  os << "{\n  \"schema\": 1,\n  \"runs_total\": " << h.runs.size()
     << ",\n  \"keys\": " << keys.size() << ",\n  \"runs\": [";
  bool first_run = true;
  for (std::size_t i : history_canonical_order(h)) {
    const HistoryRun& r = h.runs[i];
    os << (first_run ? "\n    " : ",\n    ") << "{\"run\": \"" << r.run_id
       << "\", \"manifest\": \"" << json_escape(r.manifest)
       << "\", \"jobs\": " << r.entries.size()
       << ", \"wall_ms\": " << fmt_exact(r.wall_ms)
       << ", \"memo_hit_rate\": " << fmt_exact(r.memo_hit_rate)
       << ", \"entries\": [";
    first_run = false;
    bool first = true;
    for (const HistoryEntry* e : sorted_entries(r)) {
      os << (first ? "\n      " : ",\n      ") << "{\"job\": \""
         << json_escape(e->job) << "\", \"design\": \""
         << json_escape(e->design) << "\", \"config\": \""
         << json_escape(e->config) << "\", \"scan\": \""
         << json_escape(e->scan) << "\", \"width\": " << e->width
         << ", \"seed\": " << e->seed << ", \"status\": \""
         << json_escape(e->status) << "\", \"gates\": " << e->gates
         << ", \"faults\": " << e->faults << ", \"patterns\": " << e->patterns
         << ", \"cubes\": " << e->cubes
         << ", \"coverage\": " << fmt_exact(e->coverage)
         << ", \"efficiency\": " << fmt_exact(e->efficiency)
         << ", \"wall_ms\": " << fmt_exact(e->wall_ms) << ", \"error\": \""
         << json_escape(e->error) << "\"}";
      first = false;
    }
    os << (first ? "]}" : "\n    ]}");
  }
  os << (first_run ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

IngestResult history_ingest(const std::string& dir, const HistoryRun& run) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec && !fs::is_directory(dir))
    throw HistoryError("cannot create history dir " + dir + ": " +
                       ec.message());
  const std::string store_path = (fs::path(dir) / "store.jsonl").string();

  IngestResult res;
  HistoryRun stamped = run;
  stamped.run_id = history_run_id(stamped);
  res.run_id = stamped.run_id;
  res.entries = static_cast<std::int64_t>(stamped.entries.size());

  History existing;
  if (fs::exists(store_path)) existing = history_load(dir);
  bool present = false;
  for (const HistoryRun& r : existing.runs)
    if (r.run_id == stamped.run_id) present = true;

  if (!present) {
    // Same torn-newline discipline as the sweep journal: terminate any
    // partial trailing record before appending.
    if (fs::exists(store_path)) {
      std::ifstream probe(store_path, std::ios::binary | std::ios::ate);
      const auto size = probe.tellg();
      char last = '\n';
      if (size > 0) {
        probe.seekg(-1, std::ios::end);
        probe.get(last);
      }
      if (last != '\n') {
        std::ofstream fix(store_path, std::ios::binary | std::ios::app);
        fix << '\n';
      }
    }
    std::FILE* f = std::fopen(store_path.c_str(), "a");
    if (!f) throw HistoryError("cannot append to " + store_path);
    const std::string header = run_record(stamped);
    std::fwrite(header.data(), 1, header.size(), f);
    for (const HistoryEntry* e : sorted_entries(stamped)) {
      const std::string line = entry_record(stamped.run_id, *e);
      std::fwrite(line.data(), 1, line.size(), f);
    }
    std::fflush(f);
    std::fclose(f);
    res.added = true;
    existing.runs.push_back(std::move(stamped));
  }
  res.runs_total = static_cast<std::int64_t>(existing.runs.size());

  const std::string index = history_index_json(existing);
  std::ofstream out((fs::path(dir) / "index.json").string(),
                    std::ios::binary);
  if (!out) throw HistoryError("cannot write index.json in " + dir);
  out << index;
  if (!out) throw HistoryError("cannot write index.json in " + dir);
  return res;
}

const HistoryRun* history_resolve(const History& h, const std::string& ref,
                                  std::string* err) {
  const std::vector<std::size_t> order = history_canonical_order(h);
  if (order.empty()) {
    if (err) *err = "history store is empty";
    return nullptr;
  }
  if (ref.empty() || ref == "latest") return &h.runs[order.back()];
  if (ref == "prev") {
    if (order.size() < 2) {
      if (err) *err = "no previous run (store holds a single run)";
      return nullptr;
    }
    return &h.runs[order[order.size() - 2]];
  }
  if (std::all_of(ref.begin(), ref.end(),
                  [](unsigned char c) { return std::isdigit(c); })) {
    const std::size_t n = static_cast<std::size_t>(std::stoul(ref));
    if (n < 1 || n > order.size()) {
      if (err)
        *err = "run ordinal " + ref + " out of range (store holds " +
               std::to_string(order.size()) + " runs)";
      return nullptr;
    }
    return &h.runs[order[n - 1]];
  }
  const HistoryRun* match = nullptr;
  for (std::size_t i : order) {
    if (h.runs[i].run_id.rfind(ref, 0) != 0) continue;
    if (match) {
      if (err) *err = "run ref \"" + ref + "\" is ambiguous";
      return nullptr;
    }
    match = &h.runs[i];
  }
  if (!match && err)
    *err = "no run matches \"" + ref +
           "\" (want latest, prev, an ordinal, or a run-id prefix)";
  return match;
}

std::string history_run_to_bench_json(const HistoryRun& r) {
  std::ostringstream os;
  os << "{\n  \"schema\": 2,\n  \"seed\": 0,\n  \"manifest\": \""
     << json_escape(r.manifest) << "\",\n  \"wall_ms\": "
     << fmt_exact(r.wall_ms) << ",\n  \"memo_hit_rate\": "
     << fmt_exact(r.memo_hit_rate) << ",\n  \"jobs\": [";
  double cov_sum = 0;
  std::int64_t ok = 0;
  bool first = true;
  for (const HistoryEntry* e : sorted_entries(r)) {
    if (e->status == "ok") {
      cov_sum += e->coverage;
      ++ok;
    }
    os << (first ? "\n    " : ",\n    ") << "{\"case\": \""
       << json_escape(e->job) << "\", \"status\": \""
       << json_escape(e->status) << "\", \"detected\": "
       << (e->status == "ok" ? 1 : 0) << ", \"gates\": " << e->gates
       << ", \"faults\": " << e->faults << ", \"width\": " << e->width
       << ", \"coverage\": " << fmt_exact(e->coverage)
       << ", \"efficiency\": " << fmt_exact(e->efficiency)
       << ", \"patterns\": " << e->patterns << ", \"cubes\": " << e->cubes
       << ", \"wall_ms\": " << fmt_exact(e->wall_ms) << "}";
    first = false;
  }
  os << "\n  ],\n  \"summary\": {\"jobs\": " << r.entries.size()
     << ", \"jobs_ok\": " << ok << ", \"mean_coverage\": "
     << fmt_exact(ok > 0 ? cov_sum / static_cast<double>(ok) : 0.0)
     << "}\n}\n";
  return os.str();
}

std::vector<TrendSeries> history_trend(const History& h,
                                       const std::string& filter) {
  std::map<std::string, TrendSeries> by_job;
  for (std::size_t i : history_canonical_order(h)) {
    const HistoryRun& r = h.runs[i];
    for (const HistoryEntry* e : sorted_entries(r)) {
      if (!filter.empty() && e->job.find(filter) == std::string::npos)
        continue;
      TrendSeries& s = by_job[e->job];
      s.job = e->job;
      TrendPoint p;
      p.run_id = r.run_id;
      p.status = e->status;
      p.coverage = e->coverage;
      p.efficiency = e->efficiency;
      p.wall_ms = e->wall_ms;
      p.patterns = e->patterns;
      s.points.push_back(std::move(p));
    }
  }
  std::vector<TrendSeries> out;
  out.reserve(by_job.size());
  for (auto& [job, s] : by_job) out.push_back(std::move(s));
  return out;
}

std::vector<HistoryOutlier> history_outliers(const History& h,
                                             const OutlierOptions& opts) {
  std::vector<HistoryOutlier> out;
  const std::vector<std::size_t> order = history_canonical_order(h);
  const std::size_t min_pts =
      static_cast<std::size_t>(std::max(2, opts.min_points));

  // Peers scope: within each run, wall_ms against same-design peers.
  for (std::size_t i : order) {
    const HistoryRun& r = h.runs[i];
    std::map<std::string, std::vector<const HistoryEntry*>> by_design;
    for (const HistoryEntry* e : sorted_entries(r))
      by_design[e->design].push_back(e);
    for (const auto& [design, peers] : by_design) {
      if (peers.size() < min_pts) continue;
      std::vector<double> xs;
      xs.reserve(peers.size());
      for (const HistoryEntry* e : peers) xs.push_back(e->wall_ms);
      const RobustStats st = robust_stats(xs);
      for (const HistoryEntry* e : peers) {
        const double z = robust_z(e->wall_ms, st);
        if (std::abs(z) < opts.z_threshold) continue;
        HistoryOutlier o;
        o.job = e->job;
        o.metric = "wall_ms";
        o.scope = "peers";
        o.run_id = r.run_id;
        o.value = e->wall_ms;
        o.median = st.median;
        o.mad = st.mad;
        o.z = z;
        o.gating = false;  // timing: informational, like bench_diff's kTime
        out.push_back(std::move(o));
      }
    }
  }

  // Runs scope: each key's metrics across the last_n canonical runs.
  for (const TrendSeries& s : history_trend(h)) {
    std::vector<TrendPoint> pts = s.points;
    if (opts.last_n > 0 &&
        pts.size() > static_cast<std::size_t>(opts.last_n))
      pts.erase(pts.begin(),
                pts.end() - static_cast<std::ptrdiff_t>(opts.last_n));
    if (pts.size() < min_pts) continue;
    struct Metric {
      const char* name;
      bool gating;
      double (*get)(const TrendPoint&);
    };
    const Metric metrics[] = {
        {"coverage", true, [](const TrendPoint& p) { return p.coverage; }},
        {"patterns", true,
         [](const TrendPoint& p) { return static_cast<double>(p.patterns); }},
        {"wall_ms", false, [](const TrendPoint& p) { return p.wall_ms; }},
    };
    for (const Metric& m : metrics) {
      std::vector<double> xs;
      xs.reserve(pts.size());
      for (const TrendPoint& p : pts) xs.push_back(m.get(p));
      const RobustStats st = robust_stats(xs);
      for (std::size_t i = 0; i < pts.size(); ++i) {
        const double z = robust_z(xs[i], st);
        if (std::abs(z) < opts.z_threshold) continue;
        HistoryOutlier o;
        o.job = s.job;
        o.metric = m.name;
        o.scope = "runs";
        o.run_id = pts[i].run_id;
        o.value = xs[i];
        o.median = st.median;
        o.mad = st.mad;
        o.z = z;
        o.gating = m.gating;
        out.push_back(std::move(o));
      }
    }
  }

  std::sort(out.begin(), out.end(),
            [](const HistoryOutlier& a, const HistoryOutlier& b) {
              if (a.gating != b.gating) return a.gating > b.gating;
              if (std::abs(a.z) != std::abs(b.z))
                return std::abs(a.z) > std::abs(b.z);
              if (a.job != b.job) return a.job < b.job;
              if (a.metric != b.metric)
                return std::strcmp(a.metric.c_str(), b.metric.c_str()) < 0;
              return a.run_id < b.run_id;
            });
  return out;
}

// ---------------------------------------------------------------------------
// Fleet dashboard
// ---------------------------------------------------------------------------

namespace {

// Escaping, palette, and sparklines come from observe/sparkline.h —
// shared with the live endpoint's dashboard.
constexpr const char* kBlue = kSparkBlue;
constexpr const char* kOrange = kSparkOrange;
constexpr const char* kRed = kSparkRed;
constexpr const char* kGreen = kSparkGreen;

std::string fmt_pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", 100 * v);
  return buf;
}

std::string fmt_ms(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f ms", v);
  return buf;
}

}  // namespace

std::string history_to_html(const History& h) {
  const std::vector<std::size_t> order = history_canonical_order(h);
  const std::vector<TrendSeries> trend = history_trend(h);
  const std::vector<HistoryOutlier> outliers = history_outliers(h);
  const HistoryRun* latest = order.empty() ? nullptr : &h.runs[order.back()];
  const HistoryRun* prev =
      order.size() < 2 ? nullptr : &h.runs[order[order.size() - 2]];

  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
     << "<meta charset=\"utf-8\">\n<title>tsyn fleet history</title>\n"
     << "<style>\n"
     << "body{font:14px/1.45 system-ui,sans-serif;margin:2em auto;"
        "max-width:72em;padding:0 1em;color:#1a1a2e}\n"
     << "h1{font-size:1.5em}h2{font-size:1.15em;margin-top:1.6em;"
        "border-bottom:1px solid #ddd;padding-bottom:.25em}\n"
     << "table{border-collapse:collapse;width:100%;font-size:13px}\n"
     << "th,td{text-align:left;padding:.3em .7em;border-bottom:1px solid "
        "#eee;vertical-align:middle}\n"
     << "th{background:#f6f6fa}td.num,th.num{text-align:right;"
        "font-variant-numeric:tabular-nums}\n"
     << "code{background:#f4f4f8;padding:.1em .3em;border-radius:3px}\n"
     << ".spark{width:120px;height:26px;display:inline-block;"
        "vertical-align:middle}\n"
     << ".up{color:#3ca951}.down{color:#ff725c}.flat{color:#888}\n"
     << ".bar{display:inline-block;height:10px;background:#4269d0;"
        "border-radius:2px;vertical-align:middle}\n"
     << ".muted{color:#888}\n"
     << "</style>\n</head>\n<body>\n";
  os << "<h1>tsyn fleet history</h1>\n";
  os << "<p>" << h.runs.size() << " run(s), " << trend.size()
     << " grid key(s). Run order is canonical (sorted by content id); the "
        "store is timestamp-free by design.</p>\n";

  // -- trend sparklines ------------------------------------------------------
  os << "<h2>Trends per key</h2>\n<table>\n<tr><th>job</th>"
        "<th>coverage</th><th class=\"num\">latest</th>"
        "<th>runtime</th><th class=\"num\">latest</th>"
        "<th class=\"num\">patterns</th><th class=\"num\">runs</th></tr>\n";
  for (const TrendSeries& s : trend) {
    std::vector<double> cov, ms;
    for (const TrendPoint& p : s.points) {
      cov.push_back(p.coverage);
      ms.push_back(p.wall_ms);
    }
    const TrendPoint& last = s.points.back();
    os << "<tr><td><code>" << html_escape(s.job) << "</code></td><td>";
    append_sparkline(os, cov, kBlue);
    os << "</td><td class=\"num\">" << fmt_pct(last.coverage) << "</td><td>";
    append_sparkline(os, ms, kOrange);
    os << "</td><td class=\"num\">" << fmt_ms(last.wall_ms)
       << "</td><td class=\"num\">" << last.patterns
       << "</td><td class=\"num\">" << s.points.size() << "</td></tr>\n";
  }
  os << "</table>\n";

  // -- regression table: latest vs previous ---------------------------------
  os << "<h2>Latest vs previous run</h2>\n";
  if (!latest || !prev) {
    os << "<p class=\"muted\">Need at least two runs for a regression "
          "view.</p>\n";
  } else {
    std::map<std::string, const HistoryEntry*> prev_by_job;
    for (const HistoryEntry& e : prev->entries) prev_by_job[e.job] = &e;
    os << "<table>\n<tr><th>job</th><th class=\"num\">coverage Δ</th>"
          "<th class=\"num\">patterns Δ</th><th class=\"num\">wall_ms Δ</th>"
          "<th>status</th></tr>\n";
    for (const HistoryEntry* e : sorted_entries(*latest)) {
      const auto it = prev_by_job.find(e->job);
      if (it == prev_by_job.end()) continue;
      const HistoryEntry* p = it->second;
      auto delta_cell = [&](double d, bool higher_better,
                            const std::string& text) {
        const char* cls = d == 0 ? "flat" : ((d > 0) == higher_better)
                                                 ? "up"
                                                 : "down";
        os << "<td class=\"num " << cls << "\">" << text << "</td>";
      };
      char buf[64];
      os << "<tr><td><code>" << html_escape(e->job) << "</code></td>";
      const double dc = e->coverage - p->coverage;
      std::snprintf(buf, sizeof(buf), "%+.3f pp", 100 * dc);
      delta_cell(dc, true, buf);
      const double dp = static_cast<double>(e->patterns - p->patterns);
      std::snprintf(buf, sizeof(buf), "%+lld",
                    static_cast<long long>(e->patterns - p->patterns));
      delta_cell(dp, false, buf);
      const double dm = e->wall_ms - p->wall_ms;
      std::snprintf(buf, sizeof(buf), "%+.1f", dm);
      delta_cell(dm, false, buf);
      os << "<td>" << html_escape(e->status)
         << (e->status != p->status
                 ? " <span class=\"down\">(was " + html_escape(p->status) +
                       ")</span>"
                 : "")
         << "</td></tr>\n";
    }
    os << "</table>\n";
  }

  // -- outliers --------------------------------------------------------------
  os << "<h2>Outliers</h2>\n";
  if (outliers.empty()) {
    os << "<p class=\"muted\">No anomalies at the default robust-z "
          "threshold.</p>\n";
  } else {
    os << "<table>\n<tr><th>job</th><th>metric</th><th>scope</th>"
          "<th class=\"num\">value</th><th class=\"num\">median</th>"
          "<th class=\"num\">z</th><th>gating</th></tr>\n";
    for (const HistoryOutlier& o : outliers) {
      char zbuf[32];
      std::snprintf(zbuf, sizeof(zbuf), "%.1f", o.z);
      os << "<tr><td><code>" << html_escape(o.job) << "</code></td><td>"
         << o.metric << "</td><td>" << o.scope << "</td><td class=\"num\">"
         << fmt_short(o.value) << "</td><td class=\"num\">"
         << fmt_short(o.median) << "</td><td class=\"num\">"
         << (std::abs(o.z) >= kInfZ ? "∞" : zbuf) << "</td><td>"
         << (o.gating ? "<span class=\"down\">yes</span>" : "no")
         << "</td></tr>\n";
    }
    os << "</table>\n";
  }

  // -- cache economy ---------------------------------------------------------
  os << "<h2>Cache economy per run</h2>\n<table>\n"
        "<tr><th>run</th><th class=\"num\">jobs</th>"
        "<th class=\"num\">wall</th><th>memo hit rate</th></tr>\n";
  for (std::size_t i : order) {
    const HistoryRun& r = h.runs[i];
    const double rate = r.memo_hit_rate < 0 ? 0 : r.memo_hit_rate;
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "<span class=\"bar\" style=\"width:%.0fpx\"></span> %s",
                  120 * rate,
                  r.memo_hit_rate < 0 ? "n/a" : fmt_pct(rate).c_str());
    os << "<tr><td><code>" << html_escape(r.run_id.substr(0, 12))
       << "</code></td><td class=\"num\">" << r.entries.size()
       << "</td><td class=\"num\">" << fmt_ms(r.wall_ms) << "</td><td>" << buf
       << "</td></tr>\n";
  }
  os << "</table>\n";

  // -- stragglers ------------------------------------------------------------
  os << "<h2>Stragglers (latest run)</h2>\n";
  if (!latest || latest->entries.empty()) {
    os << "<p class=\"muted\">No runs ingested yet.</p>\n";
  } else {
    std::vector<const HistoryEntry*> by_cost = sorted_entries(*latest);
    std::stable_sort(by_cost.begin(), by_cost.end(),
                     [](const HistoryEntry* a, const HistoryEntry* b) {
                       return a->wall_ms > b->wall_ms;
                     });
    const double max_ms = std::max(1e-9, by_cost.front()->wall_ms);
    const std::size_t shown = std::min<std::size_t>(by_cost.size(), 8);
    os << "<table>\n<tr><th>job</th><th class=\"num\">wall_ms</th>"
          "<th>share</th></tr>\n";
    for (std::size_t i = 0; i < shown; ++i) {
      const HistoryEntry* e = by_cost[i];
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "<span class=\"bar\" style=\"width:%.0fpx;background:%s\">"
                    "</span>",
                    220 * e->wall_ms / max_ms, i == 0 ? kRed : kGreen);
      os << "<tr><td><code>" << html_escape(e->job)
         << "</code></td><td class=\"num\">" << fmt_ms(e->wall_ms)
         << "</td><td>" << buf << "</td></tr>\n";
    }
    os << "</table>\n";
  }

  os << "</body>\n</html>\n";
  return os.str();
}

std::string outliers_to_json(const std::vector<HistoryOutlier>& outliers) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < outliers.size(); ++i) {
    const HistoryOutlier& o = outliers[i];
    os << (i ? ",\n   " : "\n   ") << "{\"job\": \"" << json_escape(o.job)
       << "\", \"metric\": \"" << o.metric << "\", \"scope\": \"" << o.scope
       << "\", \"run\": \"" << o.run_id
       << "\", \"value\": " << fmt_short(o.value)
       << ", \"median\": " << fmt_short(o.median)
       << ", \"mad\": " << fmt_short(o.mad) << ", \"z\": " << fmt_short(o.z)
       << ", \"gating\": " << (o.gating ? "true" : "false") << "}";
  }
  os << (outliers.empty() ? "]" : "\n  ]");
  return os.str();
}

}  // namespace tsyn::observe
