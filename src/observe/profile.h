// Wall-clock sampling profiler over the live span stacks.
//
// The telemetry sampler thread calls Profiler::sample() every ~5 ms; each
// call snapshots every thread's current span stack (util/trace's
// mutex-free live stacks) and counts one hit per distinct stack. Because
// sampling is on wall-clock time, the counts estimate where threads
// actually spend their time — including inside util::ThreadPool workers —
// without instrumenting anything beyond the TSYN_SPAN markers the
// pipeline already carries.
//
// Two outputs:
//  * collapsed() — the standard collapsed-stack flamegraph format, one
//    "outer;inner;leaf COUNT" line per distinct stack, ready for
//    flamegraph.pl / speedscope / inferno.
//  * top_self(n) — a self-time table (samples where the frame was the
//    leaf, plus total samples where it appeared at all), folded into the
//    run report's JSON and HTML.
//
// Requires util::trace_stacks_enable() — without it the span stacks stay
// empty and every sample sees idle threads.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace tsyn::observe {

/// One row of the self-time table.
struct ProfileFrame {
  std::string name;
  std::int64_t self = 0;   ///< samples with this frame as the leaf
  std::int64_t total = 0;  ///< samples with this frame anywhere on the stack
};

class Profiler {
 public:
  /// Snapshots all live span stacks and records one hit per thread with a
  /// non-empty stack. Called from the telemetry sampler thread; safe to
  /// call concurrently with readers.
  void sample();

  /// Sampler ticks taken (calls to sample(), whether or not any stack was
  /// live at the time).
  std::int64_t ticks() const;

  /// Samples that actually hit a non-empty stack.
  std::int64_t samples() const;

  /// Collapsed-stack flamegraph text: "frame;frame;leaf COUNT\n" lines,
  /// sorted by stack name. Empty string when nothing was sampled.
  std::string collapsed() const;

  /// Top `n` frames by self-time, descending (ties by name).
  std::vector<ProfileFrame> top_self(int n) const;

 private:
  /// Key: frames joined with ';', outermost first.
  mutable std::mutex mu_;
  std::map<std::string, std::int64_t> stacks_;
  std::int64_t ticks_ = 0;
  std::int64_t samples_ = 0;
};

}  // namespace tsyn::observe
