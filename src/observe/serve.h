// Live observability endpoint: the in-process HTTP surface over the
// metrics registry, the telemetry progress/jobs state, and the sampling
// profiler.
//
// Everything below this layer is post-hoc — metrics dump at exit,
// heartbeats append to a file — so the only way to ask a running sweep
// anything was to kill it. ObservabilityServer mounts the same snapshot
// APIs the artifacts are rendered from on a util::HttpServer, which
// makes a live scrape and the final artifact two views of one state:
//
//   /metrics             Prometheus text exposition of the registry
//                        (util/prometheus.h) plus tsyn_serve_* self
//                        stats and tsyn_progress_* gauges
//   /progress            JSON: phase, progress rows, last heartbeat line
//   /jobs                JSON: fleet job rollup (+ orchestrator extras
//                        via ServeOptions::jobs_extra)
//   /profile?seconds=N   on-demand collapsed-stack flamegraph, sampled
//                        live from the span stacks for N seconds
//   /healthz, /readyz    liveness / telemetry-session-attached
//   /quitz               graceful shutdown request (standalone daemon
//                        only, ServeOptions::allow_quit)
//   /                    self-contained auto-refreshing HTML dashboard
//                        (no scripts, no external fetches — same rule as
//                        the history dashboard)
//
// Perturbation contract: the server owns one thread (util::HttpServer's)
// and every handler only *reads* shared state through the same wait-free
// snapshot paths the heartbeat sampler already exercises. Its own
// request counters stay out of the metrics registry so a scraped run's
// --metrics artifact is byte-identical to an unscraped one — the
// property the reconciliation test and the paired off/on bench pin down.
//
// This is the seam the ROADMAP's persistent `tsyn_serve` daemon plugs
// into: `tsyn_cli serve` is this server plus wait_for_quit().
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>

#include "util/httpd.h"

namespace tsyn::observe {

struct ServeOptions {
  std::string addr = "127.0.0.1";
  int port = 0;  ///< 0 = kernel-assigned; read back via port()
  /// Command label shown on the dashboard ("sweep", "atpg", "serve").
  std::string command = "serve";
  /// Enables GET /quitz (graceful shutdown). On for the standalone
  /// daemon, off when riding along a command via --serve.
  bool allow_quit = false;
  int max_profile_seconds = 10;  ///< /profile?seconds=N clamp
  /// When set, the returned string (a JSON object, e.g. the campaign's
  /// live sweep stats) is embedded in /jobs under "sweep". Keeps this
  /// layer below campaign in the link order.
  std::function<std::string()> jobs_extra;
};

class ObservabilityServer {
 public:
  /// Binds and starts serving. False + `*err` on bind failure.
  /// Span-stack recording (for /profile) is NOT enabled here — the
  /// first /profile request switches it on lazily, so an unscraped or
  /// metrics-only server adds nothing to the workload's span pushes.
  bool start(const ServeOptions& opts, std::string* err = nullptr);

  /// Stops the HTTP thread. Idempotent; safe from the crash-flush path.
  void stop();

  bool running() const { return http_.running(); }
  int port() const { return http_.port(); }
  const std::string& address() const { return http_.address(); }
  std::int64_t requests() const { return http_.requests(); }

  /// True once a client fetched /quitz (allow_quit only).
  bool quit_requested() const {
    return quit_.load(std::memory_order_acquire);
  }

  /// Blocks until quit_requested() or, when given, `until()` turns true.
  /// ~10 Hz poll; returns immediately if the server is not running.
  void wait_for_quit(const std::function<bool()>& until = {}) const;

 private:
  util::HttpResponse handle(const util::HttpRequest& req);
  util::HttpResponse dashboard() const;
  util::HttpResponse profile_endpoint(const std::string& query) const;
  void sample_rings();

  util::HttpServer http_;
  ServeOptions opts_;
  std::atomic<bool> quit_{false};
  double start_ms_ = 0.0;

  /// Dashboard sparkline feed, sampled from the HTTP thread's idle tick:
  /// total progress-done and its instantaneous rate, bounded history.
  static constexpr std::size_t kRingCap = 120;
  mutable std::mutex ring_mu_;
  std::deque<double> done_ring_;
  std::deque<double> rate_ring_;
  double last_sample_ms_ = 0.0;
  double last_sample_done_ = 0.0;
};

}  // namespace tsyn::observe
