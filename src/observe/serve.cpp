#include "observe/serve.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "observe/profile.h"
#include "observe/sparkline.h"
#include "util/metrics.h"
#include "util/prometheus.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace tsyn::observe {

namespace {

double now_ms() {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

/// Strict non-negative integer parse for ?seconds=N (digits only).
bool parse_seconds(const std::string& text, int* out) {
  if (text.empty() || text.size() > 4) return false;
  int v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  *out = v;
  return true;
}

constexpr const char* kTextPlain = "text/plain; charset=utf-8";
constexpr const char* kAppJson = "application/json; charset=utf-8";
constexpr const char* kTextHtml = "text/html; charset=utf-8";

}  // namespace

bool ObservabilityServer::start(const ServeOptions& opts, std::string* err) {
  opts_ = opts;
  quit_.store(false, std::memory_order_release);
  start_ms_ = now_ms();
  {
    std::lock_guard<std::mutex> lk(ring_mu_);
    done_ring_.clear();
    rate_ring_.clear();
    last_sample_ms_ = 0.0;
    last_sample_done_ = 0.0;
  }
  http_.set_idle_tick([this] { sample_rings(); });
  return http_.start(opts.addr, opts.port,
                     [this](const util::HttpRequest& r) { return handle(r); },
                     err);
}

void ObservabilityServer::stop() { http_.stop(); }

void ObservabilityServer::wait_for_quit(
    const std::function<bool()>& until) const {
  while (running() && !quit_requested() && !(until && until())) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

void ObservabilityServer::sample_rings() {
  // Runs on the HTTP thread's idle tick (~10 Hz idle, more often under
  // scrape load); keep the dashboard cadence time-based, not tick-based.
  const double now = now_ms();
  std::lock_guard<std::mutex> lk(ring_mu_);
  if (last_sample_ms_ != 0.0 && now - last_sample_ms_ < 500.0) return;
  double done = 0.0;
  for (const util::ProgressRow& row : util::progress_snapshot())
    done += static_cast<double>(row.done);
  const double dt_s =
      last_sample_ms_ == 0.0 ? 0.0 : (now - last_sample_ms_) / 1e3;
  const double rate =
      dt_s > 0.0 ? std::max(0.0, (done - last_sample_done_) / dt_s) : 0.0;
  done_ring_.push_back(done);
  rate_ring_.push_back(rate);
  while (done_ring_.size() > kRingCap) done_ring_.pop_front();
  while (rate_ring_.size() > kRingCap) rate_ring_.pop_front();
  last_sample_ms_ = now;
  last_sample_done_ = done;
}

util::HttpResponse ObservabilityServer::handle(const util::HttpRequest& req) {
  if (req.path == "/healthz") return {200, kTextPlain, "ok\n"};

  if (req.path == "/readyz") {
    // Ready means "the workload's telemetry session is attached": the
    // progress/jobs endpoints report live data rather than zeros.
    if (util::telemetry_active()) return {200, kTextPlain, "ready\n"};
    return {503, kTextPlain, "no telemetry session attached\n"};
  }

  if (req.path == "/quitz") {
    if (!opts_.allow_quit)
      return {404, kTextPlain, "quit disabled (attached server)\n"};
    quit_.store(true, std::memory_order_release);
    return {200, kTextPlain, "bye\n"};
  }

  if (req.path == "/metrics") {
    std::string out = util::metrics_to_prometheus(util::metrics().snapshot());
    // Server self-stats ride along under their own tsyn_serve_* names —
    // deliberately *not* registry counters, so scraping never shows up
    // in the workload's --metrics artifact (see header contract). The
    // +1 counts this in-flight request, already acked by HttpServer.
    out += "# TYPE tsyn_serve_requests_total counter\n";
    out += "tsyn_serve_requests_total " + std::to_string(http_.requests()) +
           "\n";
    out += "# TYPE tsyn_serve_rejected_total counter\n";
    out += "tsyn_serve_rejected_total " + std::to_string(http_.rejected()) +
           "\n";
    out += "# TYPE tsyn_serve_uptime_seconds gauge\n";
    out += "tsyn_serve_uptime_seconds ";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f\n", (now_ms() - start_ms_) / 1e3);
    out += buf;
    // Progress rows as labeled gauges (done/total pairs).
    const std::vector<util::ProgressRow> rows = util::progress_snapshot();
    if (!rows.empty()) {
      out += "# TYPE tsyn_progress_done gauge\n";
      for (const util::ProgressRow& r : rows)
        out += "tsyn_progress_done{name=\"" + r.name + "\"} " +
               std::to_string(r.done) + "\n";
      out += "# TYPE tsyn_progress_total gauge\n";
      for (const util::ProgressRow& r : rows)
        out += "tsyn_progress_total{name=\"" + r.name + "\"} " +
               std::to_string(std::max(r.total, r.done)) + "\n";
    }
    return {200, "text/plain; version=0.0.4; charset=utf-8", out};
  }

  if (req.path == "/progress") {
    std::string out = "{\"schema\":1,\"command\":\"";
    append_json_escaped(out, opts_.command);
    out += "\",\"t_ms\":";
    append_double(out, now_ms() - start_ms_);
    out += ",\"telemetry_active\":";
    out += util::telemetry_active() ? "true" : "false";
    out += ",\"phase\":\"";
    append_json_escaped(out, util::telemetry_phase());
    out += "\",\"progress\":[";
    bool first = true;
    for (const util::ProgressRow& row : util::progress_snapshot()) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"";
      append_json_escaped(out, row.name);
      out += "\",\"done\":" + std::to_string(row.done);
      out += ",\"total\":" + std::to_string(std::max(row.total, row.done));
      out += "}";
    }
    out += "],\"last_heartbeat\":";
    const std::string hb = util::telemetry_last_line();
    out += hb.empty() ? "null" : hb;  // already a JSON object
    out += "}\n";
    return {200, kAppJson, out};
  }

  if (req.path == "/jobs") {
    const util::JobsSnapshot jobs = util::telemetry_jobs_snapshot();
    std::string out = "{\"schema\":1,\"jobs\":{\"started\":";
    out += std::to_string(jobs.started);
    out += ",\"done\":" + std::to_string(jobs.done);
    out += ",\"failed\":" + std::to_string(jobs.failed);
    out += ",\"in_flight\":" + std::to_string(jobs.running.size());
    out += ",\"running\":[";
    const std::size_t shown =
        std::min(jobs.running.size(), util::kJobsRunningCap);
    for (std::size_t i = 0; i < shown; ++i) {
      if (i) out += ',';
      out += '"';
      append_json_escaped(out, jobs.running[i]);
      out += '"';
    }
    out += "]}";
    if (opts_.jobs_extra) {
      const std::string extra = opts_.jobs_extra();
      if (!extra.empty()) out += ",\"sweep\":" + extra;
    }
    out += "}\n";
    return {200, kAppJson, out};
  }

  if (req.path == "/profile") return profile_endpoint(req.query);

  if (req.path == "/") return dashboard();

  return {404, kTextPlain,
          "not found\nendpoints: / /metrics /progress /jobs "
          "/profile?seconds=N /healthz /readyz" +
              std::string(opts_.allow_quit ? " /quitz" : "") + "\n"};
}

util::HttpResponse ObservabilityServer::profile_endpoint(
    const std::string& query) const {
  int seconds = 1;
  const std::string arg = util::http_query_param(query, "seconds");
  if (!arg.empty() && !parse_seconds(arg, &seconds))
    return {400, kTextPlain, "bad seconds= (strict non-negative integer)\n"};
  seconds = std::min(seconds, opts_.max_profile_seconds);

  // Span-stack recording is enabled lazily, on the first /profile hit: a
  // server nobody profiles must not tax every span push in the workload.
  // Spans entered after this line are sampled; recording stays on for
  // the rest of the process, so repeat profiles see warm stacks.
  util::trace_stacks_enable();

  // Sampling happens here, on the serving thread: the request *is* the
  // profiling session. A second scraper queues behind it (serial server),
  // which is the bounded-budget behavior we want.
  Profiler prof;
  const double deadline = now_ms() + 1e3 * seconds;
  do {
    prof.sample();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  } while (now_ms() < deadline);

  std::string out = "# tsyn profile seconds=" + std::to_string(seconds) +
                    " ticks=" + std::to_string(prof.ticks()) +
                    " samples=" + std::to_string(prof.samples()) + "\n";
  out += prof.collapsed();
  return {200, kTextPlain, out};
}

util::HttpResponse ObservabilityServer::dashboard() const {
  std::deque<double> done_ring, rate_ring;
  {
    std::lock_guard<std::mutex> lk(ring_mu_);
    done_ring = done_ring_;
    rate_ring = rate_ring_;
  }
  const std::vector<double> done_ys(done_ring.begin(), done_ring.end());
  const std::vector<double> rate_ys(rate_ring.begin(), rate_ring.end());
  const util::JobsSnapshot jobs = util::telemetry_jobs_snapshot();
  const util::MetricsSnapshot m = util::metrics().snapshot();

  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
     << "<meta charset=\"utf-8\">\n"
     << "<meta http-equiv=\"refresh\" content=\"2\">\n"
     << "<title>tsyn live</title>\n"
     << "<style>\n"
     << "body{font:14px/1.45 system-ui,sans-serif;margin:2em auto;"
        "max-width:72em;padding:0 1em;color:#1a1a2e}\n"
     << "h1{font-size:1.5em}h2{font-size:1.15em;margin-top:1.6em;"
        "border-bottom:1px solid #ddd;padding-bottom:.25em}\n"
     << "table{border-collapse:collapse;width:100%;font-size:13px}\n"
     << "th,td{text-align:left;padding:.3em .7em;border-bottom:1px solid "
        "#eee;vertical-align:middle}\n"
     << "th{background:#f6f6fa}td.num,th.num{text-align:right;"
        "font-variant-numeric:tabular-nums}\n"
     << "code{background:#f4f4f8;padding:.1em .3em;border-radius:3px}\n"
     << ".spark{width:120px;height:26px;display:inline-block;"
        "vertical-align:middle}\n"
     << ".bar{display:inline-block;height:10px;background:" << kSparkBlue
     << ";border-radius:2px;vertical-align:middle}\n"
     << ".muted{color:#888}\n"
     << "</style>\n</head>\n<body>\n";

  char buf[160];
  std::snprintf(buf, sizeof buf, "%.1f", (now_ms() - start_ms_) / 1e3);
  os << "<h1>tsyn live &middot; <code>" << html_escape(opts_.command)
     << "</code></h1>\n<p class=\"muted\">" << html_escape(address()) << ':'
     << port() << " &middot; up " << buf << " s &middot; phase <code>"
     << html_escape(util::telemetry_phase()) << "</code> &middot; telemetry "
     << (util::telemetry_active() ? "attached" : "detached")
     << " &middot; auto-refresh 2s</p>\n";

  os << "<h2>Throughput</h2>\n<table>\n"
     << "<tr><th>series</th><th>trend</th><th class=\"num\">now</th></tr>\n";
  os << "<tr><td>progress done (all counters)</td><td>";
  append_sparkline(os, done_ys, kSparkBlue);
  os << "</td><td class=\"num\">"
     << (done_ys.empty() ? std::string("&ndash;")
                         : std::to_string(
                               static_cast<std::int64_t>(done_ys.back())))
     << "</td></tr>\n";
  os << "<tr><td>rate (items/s)</td><td>";
  append_sparkline(os, rate_ys, kSparkOrange);
  std::snprintf(buf, sizeof buf, "%.1f", rate_ys.empty() ? 0.0
                                                         : rate_ys.back());
  os << "</td><td class=\"num\">" << buf << "</td></tr>\n</table>\n";

  os << "<h2>Progress</h2>\n";
  const std::vector<util::ProgressRow> rows = util::progress_snapshot();
  if (rows.empty()) {
    os << "<p class=\"muted\">no progress counters registered yet</p>\n";
  } else {
    os << "<table>\n<tr><th>counter</th><th class=\"num\">done</th>"
       << "<th class=\"num\">total</th><th>completion</th></tr>\n";
    for (const util::ProgressRow& row : rows) {
      const std::int64_t total = std::max(row.total, row.done);
      const double frac =
          total > 0 ? static_cast<double>(row.done) /
                          static_cast<double>(total)
                    : 0.0;
      std::snprintf(buf, sizeof buf,
                    "<span class=\"bar\" style=\"width:%.0fpx\"></span> "
                    "%.1f%%",
                    120.0 * frac, 100.0 * frac);
      os << "<tr><td><code>" << html_escape(row.name)
         << "</code></td><td class=\"num\">" << row.done
         << "</td><td class=\"num\">" << total << "</td><td>" << buf
         << "</td></tr>\n";
    }
    os << "</table>\n";
  }

  if (jobs.started > 0) {
    os << "<h2>Jobs</h2>\n<p>" << jobs.done << " / " << jobs.started
       << " done, " << jobs.failed << " failed, " << jobs.running.size()
       << " in flight</p>\n";
    if (!jobs.running.empty()) {
      os << "<p>";
      const std::size_t shown =
          std::min(jobs.running.size(), util::kJobsRunningCap);
      for (std::size_t i = 0; i < shown; ++i)
        os << (i ? " " : "") << "<code>" << html_escape(jobs.running[i])
           << "</code>";
      if (jobs.running.size() > shown)
        os << " <span class=\"muted\">+"
           << (jobs.running.size() - shown) << " more</span>";
      os << "</p>\n";
    }
  }

  os << "<h2>Top counters</h2>\n";
  std::vector<std::pair<std::string, std::int64_t>> top(m.counters.begin(),
                                                        m.counters.end());
  std::stable_sort(top.begin(), top.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  if (top.size() > 12) top.resize(12);
  if (top.empty()) {
    os << "<p class=\"muted\">registry is empty</p>\n";
  } else {
    os << "<table>\n<tr><th>counter</th><th class=\"num\">value</th></tr>\n";
    for (const auto& [name, v] : top)
      os << "<tr><td><code>" << html_escape(name)
         << "</code></td><td class=\"num\">" << v << "</td></tr>\n";
    os << "</table>\n";
  }

  os << "<h2>Endpoints</h2>\n<p><code>/metrics</code> <code>/progress</code> "
        "<code>/jobs</code> <code>/profile?seconds=1</code> "
        "<code>/healthz</code> <code>/readyz</code>"
     << (opts_.allow_quit ? " <code>/quitz</code>" : "") << "</p>\n"
     << "<p class=\"muted\">served " << requests()
     << " requests; scraping never perturbs the workload &mdash; see "
        "docs/observability.md</p>\n</body>\n</html>\n";
  return {200, kTextHtml, os.str()};
}

}  // namespace tsyn::observe
