// Persistent cross-run history: the fleet's memory.
//
// Every other artifact in the repo describes one run — a report, an
// index.json, a BENCH baseline. The history store is the layer above:
// an append-only, content-hashed record of *many* runs of the same (or
// different) campaign grids, from which trends, regressions, and
// anomalies are computed after the fact. It is what turns "this sweep
// produced these numbers" into "this sweep produced numbers that drifted
// from the last eight runs".
//
// Layout under a history directory:
//
//   store.jsonl   append-only ingest log, flushed per record: one
//                 {"type":"run"} header per ingested run followed by its
//                 {"type":"entry"} rows. Chronological; re-ingesting a
//                 byte-identical run is a no-op (dedup by run id).
//   index.json    derived canonical view, rebuilt on every ingest: runs
//                 sorted by run id, entries sorted by job id, doubles at
//                 %.17g. A pure function of the *set* of ingested runs —
//                 ingesting the same runs in any order yields
//                 byte-identical bytes (the determinism contract
//                 tests/test_history.cpp asserts).
//
// A run's id is the FNV-1a hash of its manifest hash plus every entry
// (sorted by job, wall_ms included): two executions of the same manifest
// are distinct runs (their timings differ), while re-ingesting literally
// identical results deduplicates. There are deliberately no timestamps —
// "canonical run order" means sorted by run id, and the store order in
// store.jsonl preserves ingest chronology for humans. All cross-run
// analyses (trend, diff, outliers) use canonical order so their verdicts
// are ingestion-order- and thread-count-invariant.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace tsyn::observe {

/// Orchestration-level store failure (unreadable dir, corrupt index,
/// unknown run ref). Query results are data, not exceptions.
class HistoryError : public std::runtime_error {
 public:
  explicit HistoryError(const std::string& msg) : std::runtime_error(msg) {}
};

/// One job outcome inside one run — the grid key (design, config, scan,
/// width, seed) plus the measured numbers, mirroring a sweep index row.
struct HistoryEntry {
  std::string job;  ///< grid job id, unique within a run
  std::string design, config, scan;
  int width = 0;
  std::uint64_t seed = 0;
  std::string status = "ok";  ///< "ok" | "failed"
  std::string error;
  std::int64_t gates = 0, faults = 0, patterns = 0, cubes = 0;
  double coverage = 0, efficiency = 0, wall_ms = 0;
};

struct HistoryRun {
  std::string run_id;    ///< content hash; filled by ingest/load
  std::string manifest;  ///< manifest content hash (or a source tag)
  std::string source;    ///< free-form label, store.jsonl only (unhashed)
  double wall_ms = 0;          ///< sweep wall time; 0 = unknown
  double memo_hit_rate = -1;   ///< cache economy; < 0 = unknown
  std::vector<HistoryEntry> entries;
};

/// The loaded store. `runs` is store (ingest) order; analyses re-sort by
/// run id via canonical_order().
struct History {
  std::vector<HistoryRun> runs;
};

/// Content identity of a run: manifest + every entry, entries sorted by
/// job id first, so the id is independent of how the caller ordered them.
std::string history_run_id(const HistoryRun& r);

struct IngestResult {
  std::string run_id;
  bool added = false;  ///< false: identical run was already in the store
  std::int64_t runs_total = 0;
  std::int64_t entries = 0;  ///< entries in the ingested run
};

/// Appends `run` to DIR/store.jsonl (creating the directory) unless an
/// identical run id is already present, then rebuilds DIR/index.json.
IngestResult history_ingest(const std::string& dir, const HistoryRun& run);

/// Loads DIR/store.jsonl. A missing store is an error; a torn trailing
/// record (kill mid-ingest) is dropped with its partial run.
History history_load(const std::string& dir);

/// The canonical derived index (see file header for the determinism
/// contract).
std::string history_index_json(const History& h);

/// Indices into h.runs, sorted by run id — the canonical run order every
/// cross-run analysis uses.
std::vector<std::size_t> history_canonical_order(const History& h);

/// Resolves a run reference: "latest" / "prev" (canonical order), a
/// 1-based canonical ordinal, or a unique run-id prefix. Returns nullptr
/// and sets *err on failure.
const HistoryRun* history_resolve(const History& h, const std::string& ref,
                                  std::string* err);

/// A run rendered as a schema-2 bench document (rows keyed "case",
/// per-row "detected" 0/1 so an ok->failed flip is a quality regression),
/// ready for observe::diff_bench_json. "seed" is pinned to 0 on both
/// sides so cross-manifest diffs compare instead of hard-failing.
std::string history_run_to_bench_json(const HistoryRun& r);

// -- trend -------------------------------------------------------------------

struct TrendPoint {
  std::string run_id;
  std::string status;
  double coverage = 0, efficiency = 0, wall_ms = 0;
  std::int64_t patterns = 0;
};

/// One job key's series across runs, in canonical run order. Runs that
/// lack the key contribute no point.
struct TrendSeries {
  std::string job;
  std::vector<TrendPoint> points;
};

/// Every key's series (sorted by job id), optionally filtered to keys
/// containing `filter`.
std::vector<TrendSeries> history_trend(const History& h,
                                       const std::string& filter = "");

// -- outliers ----------------------------------------------------------------

/// One anomalous measurement, flagged by robust z-score
/// (z = 0.6745 * (x - median) / MAD).
struct HistoryOutlier {
  std::string job;
  std::string metric;  ///< "wall_ms" | "coverage" | "patterns"
  std::string scope;   ///< "peers" (within-run) | "runs" (cross-run)
  std::string run_id;
  double value = 0, median = 0, mad = 0, z = 0;
  /// Deterministic-metric anomalies (coverage, patterns) gate; timing
  /// anomalies are informational, mirroring bench_diff's time class.
  bool gating = false;
};

struct OutlierOptions {
  double z_threshold = 3.5;  ///< standard robust-outlier cut
  int last_n = 8;            ///< cross-run window, canonical order
  int min_points = 4;        ///< below this, MAD is meaningless: skip
};

/// Peers scope: within each run, each job's wall_ms against same-design
/// peers (straggler detection). Runs scope: each key's coverage /
/// patterns / wall_ms across the last_n canonical runs. Output is sorted
/// (gating first, then |z| descending, then job/metric) and invariant to
/// ingestion order and to the thread count of the producing sweeps
/// (gating metrics are deterministic per job).
std::vector<HistoryOutlier> history_outliers(const History& h,
                                             const OutlierOptions& opts = {});

/// Compact JSON array of outlier records — embedded in sweep_stats.json's
/// "history" block and behind `history outliers --json`.
std::string outliers_to_json(const std::vector<HistoryOutlier>& outliers);

// -- dashboard ---------------------------------------------------------------

/// Self-contained HTML fleet dashboard (no scripts, no external refs):
/// per-key coverage/runtime sparklines, latest-vs-previous regression
/// table, cache-economy panel, straggler panel.
std::string history_to_html(const History& h);

}  // namespace tsyn::observe
