#include "util/trace.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace tsyn::util {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SpanEvent {
  const char* name;
  std::int64_t start_ns;
  std::int64_t dur_ns;
};

/// Owned jointly by its thread (thread_local shared_ptr) and the global
/// registry, so spans recorded by pool workers survive until export even
/// if a thread exits. Only the owning thread writes `events`; readers run
/// between parallel sections (see trace.h).
struct ThreadBuffer {
  int tid;
  std::vector<SpanEvent> events;
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::atomic<std::int64_t> epoch_ns{0};
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  int next_tid = 1;
};

TraceState& state() {
  static TraceState* s = new TraceState();  // never dtor'd
  return *s;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceState& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    b->tid = s.next_tid++;
    s.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

}  // namespace

void trace_enable() {
  TraceState& s = state();
  std::int64_t expected = 0;
  s.epoch_ns.compare_exchange_strong(expected, now_ns(),
                                     std::memory_order_relaxed);
  s.enabled.store(true, std::memory_order_relaxed);
}

void trace_disable() {
  state().enabled.store(false, std::memory_order_relaxed);
}

bool trace_enabled() {
  return state().enabled.load(std::memory_order_relaxed);
}

void trace_reset() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  for (auto& b : s.buffers) b->events.clear();
  s.epoch_ns.store(0, std::memory_order_relaxed);
}

std::size_t trace_span_count() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  std::size_t n = 0;
  for (const auto& b : s.buffers) n += b->events.size();
  return n;
}

std::string trace_to_json() {
  TraceState& s = state();
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  std::lock_guard<std::mutex> lk(s.mu);
  const std::int64_t epoch = s.epoch_ns.load(std::memory_order_relaxed);
  bool first = true;
  for (const auto& b : s.buffers) {
    for (const SpanEvent& e : b->events) {
      if (!first) os << ",\n";
      first = false;
      // Chrome wants microseconds; keep nanosecond precision as fractions.
      os << "{\"name\":\"" << e.name << "\",\"ph\":\"X\",\"ts\":"
         << static_cast<double>(e.start_ns - epoch) / 1e3
         << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1e3
         << ",\"pid\":1,\"tid\":" << b->tid << "}";
    }
  }
  os << "\n]}\n";
  return os.str();
}

bool trace_write(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << trace_to_json();
  return static_cast<bool>(out);
}

#ifndef TSYN_TRACE_NOOP

Span::Span(const char* name) {
  if (!trace_enabled()) return;
  name_ = name;
  start_ns_ = now_ns();
}

Span::~Span() {
  if (!name_) return;
  const std::int64_t end = now_ns();
  local_buffer().events.push_back({name_, start_ns_, end - start_ns_});
}

#endif  // TSYN_TRACE_NOOP

}  // namespace tsyn::util
