#include "util/trace.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace tsyn::util {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SpanEvent {
  const char* name;
  std::int64_t start_ns;
  std::int64_t dur_ns;
};

/// Owned jointly by its thread (thread_local shared_ptr) and the global
/// registry, so spans recorded by pool workers survive until export even
/// if a thread exits. Only the owning thread writes `events`; readers run
/// between parallel sections (see trace.h). The live-stack fields are the
/// exception: they are written by the owning thread and read concurrently
/// by the telemetry sampler, so they are atomics — push stores the slot,
/// then the depth with release order, so a reader that acquires the depth
/// always sees fully written frames below it. `stack_gen` bumps on every
/// push/pop so the reader can detect a race and retry.
struct ThreadBuffer {
  int tid;
  std::vector<SpanEvent> events;
  std::atomic<std::int32_t> stack_depth{0};
  std::atomic<std::uint32_t> stack_gen{0};
  std::atomic<const char*> stack[kMaxSampledSpanDepth] = {};
};

// Bitmask over what Spans do; a fully disabled Span stays one relaxed load.
constexpr unsigned kModeEvents = 1u;  ///< buffer (name, start, dur) tuples
constexpr unsigned kModeStacks = 2u;  ///< maintain the live sampling stack

struct TraceState {
  std::atomic<unsigned> mode{0};
  std::atomic<std::int64_t> epoch_ns{0};
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  int next_tid = 1;
};

TraceState& state() {
  static TraceState* s = new TraceState();  // never dtor'd
  return *s;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceState& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    b->tid = s.next_tid++;
    s.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

}  // namespace

void trace_enable() {
  TraceState& s = state();
  std::int64_t expected = 0;
  s.epoch_ns.compare_exchange_strong(expected, now_ns(),
                                     std::memory_order_relaxed);
  s.mode.fetch_or(kModeEvents, std::memory_order_relaxed);
}

void trace_disable() {
  state().mode.fetch_and(~kModeEvents, std::memory_order_relaxed);
}

bool trace_enabled() {
  return (state().mode.load(std::memory_order_relaxed) & kModeEvents) != 0;
}

void trace_stacks_enable() {
  state().mode.fetch_or(kModeStacks, std::memory_order_relaxed);
}

void trace_stacks_disable() {
  state().mode.fetch_and(~kModeStacks, std::memory_order_relaxed);
}

bool trace_stacks_enabled() {
  return (state().mode.load(std::memory_order_relaxed) & kModeStacks) != 0;
}

std::vector<ThreadStack> trace_sample_stacks() {
  std::vector<ThreadStack> out;
  TraceState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  for (const auto& b : s.buffers) {
    std::vector<const char*> frames;
    // Retry while the owner is mid push/pop; after a few attempts accept
    // the copy — depth was acquired after the slots were released, so it
    // is a consistent (if momentarily stale) prefix either way.
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint32_t gen = b->stack_gen.load(std::memory_order_acquire);
      const std::int32_t depth = b->stack_depth.load(std::memory_order_acquire);
      const int n = depth < kMaxSampledSpanDepth
                        ? (depth > 0 ? depth : 0)
                        : kMaxSampledSpanDepth;
      frames.clear();
      frames.reserve(n);
      for (int i = 0; i < n; ++i) {
        const char* f = b->stack[i].load(std::memory_order_relaxed);
        if (f) frames.push_back(f);
      }
      if (b->stack_gen.load(std::memory_order_acquire) == gen) break;
    }
    if (!frames.empty()) out.push_back({b->tid, std::move(frames)});
  }
  return out;
}

void trace_reset() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  for (auto& b : s.buffers) b->events.clear();
  s.epoch_ns.store(0, std::memory_order_relaxed);
}

std::size_t trace_span_count() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  std::size_t n = 0;
  for (const auto& b : s.buffers) n += b->events.size();
  return n;
}

std::string trace_to_json() {
  TraceState& s = state();
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  std::lock_guard<std::mutex> lk(s.mu);
  const std::int64_t epoch = s.epoch_ns.load(std::memory_order_relaxed);
  bool first = true;
  for (const auto& b : s.buffers) {
    for (const SpanEvent& e : b->events) {
      if (!first) os << ",\n";
      first = false;
      // Chrome wants microseconds; keep nanosecond precision as fractions.
      os << "{\"name\":\"" << e.name << "\",\"ph\":\"X\",\"ts\":"
         << static_cast<double>(e.start_ns - epoch) / 1e3
         << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1e3
         << ",\"pid\":1,\"tid\":" << b->tid << "}";
    }
  }
  os << "\n]}\n";
  return os.str();
}

bool trace_write(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << trace_to_json();
  return static_cast<bool>(out);
}

#ifndef TSYN_TRACE_NOOP

Span::Span(const char* name) {
  const unsigned mode = state().mode.load(std::memory_order_relaxed);
  if (mode == 0) return;
  if (mode & kModeEvents) {
    name_ = name;
    start_ns_ = now_ns();
  }
  if (mode & kModeStacks) {
    ThreadBuffer& b = local_buffer();
    const std::int32_t d = b.stack_depth.load(std::memory_order_relaxed);
    if (d < kMaxSampledSpanDepth)
      b.stack[d].store(name, std::memory_order_relaxed);
    b.stack_depth.store(d + 1, std::memory_order_release);
    b.stack_gen.fetch_add(1, std::memory_order_release);
    pushed_ = true;
  }
}

Span::~Span() {
  if (pushed_) {
    ThreadBuffer& b = local_buffer();
    const std::int32_t d = b.stack_depth.load(std::memory_order_relaxed);
    if (d > 0) b.stack_depth.store(d - 1, std::memory_order_release);
    b.stack_gen.fetch_add(1, std::memory_order_release);
  }
  if (!name_) return;
  const std::int64_t end = now_ns();
  local_buffer().events.push_back({name_, start_ns_, end - start_ns_});
}

#endif  // TSYN_TRACE_NOOP

}  // namespace tsyn::util
