// Prometheus text exposition over the metrics registry.
//
// The /metrics endpoint speaks the Prometheus text format (version
// 0.0.4): `# TYPE` headers, one `name value` sample per line, labels in
// braces. This file renders a util::MetricsSnapshot into that format so
// the exposition is a pure function of the same snapshot --metrics
// serializes — which is what makes the scrape reconcile *exactly* with
// the final JSON artifact instead of approximately.
//
// Mapping:
//  * registry counter "atpg.backtracks" -> counter
//      tsyn_atpg_backtracks_total <int64>
//  * registry gauge "sched.len"        -> gauge
//      tsyn_sched_len <double>
//  * registry histogram "h"            -> summary
//      tsyn_h{quantile="0.5"|"0.9"|"0.99"} <interpolated percentile>
//      tsyn_h_sum / tsyn_h_count, plus tsyn_h_min / tsyn_h_max gauges
//      (Prometheus summaries carry no min/max; ours are exact, so they
//      ride along as two extra gauges).
//
// Names are sanitized to the Prometheus charset [a-zA-Z_:][a-zA-Z0-9_:]*
// ('.' and every other invalid byte become '_', a leading digit gets a
// '_' prefix). Sanitization can collide ("a.b" vs "a_b"); later names
// take an "_2"-style suffix so the exposition never emits a duplicate
// series, which Prometheus would reject wholesale.
#pragma once

#include <string>

#include "util/metrics.h"

namespace tsyn::util {

/// `name` mapped into the Prometheus metric-name charset (no uniqueness
/// guarantee — the exporter layers collision suffixes on top).
std::string prom_sanitize_name(const std::string& name);

/// Full text exposition of `m`, every metric prefixed with `prefix`
/// (default "tsyn_"). Deterministic: snapshot maps are name-sorted.
std::string metrics_to_prometheus(const MetricsSnapshot& m,
                                  const std::string& prefix = "tsyn_");

}  // namespace tsyn::util
