// Hierarchical scoped-span tracing with Chrome trace_event JSON export.
//
// A Span is an RAII timer: construct it at the top of a stage, and when it
// destructs the (name, start, duration, thread) tuple lands in a
// thread-local buffer. trace_to_json() merges the buffers into the Chrome
// "complete event" ("ph":"X") format, loadable in chrome://tracing or
// Perfetto, where same-thread spans nest by containment — so the
// schedule → binding → datapath → netlist → fault-sim pipeline renders as
// a flame graph, including spans opened inside util::ThreadPool workers
// (each worker is its own track).
//
// Cost model: tracing is off by default; a disabled Span is one relaxed
// atomic load. An enabled Span is two steady_clock reads and a vector
// push_back on a thread-local buffer — no locks, safe in pool workers.
// Buffers are registered once per thread under a mutex and survive thread
// exit until trace_reset(). Collect the JSON only between parallel
// sections (ThreadPool::run's completion handshake makes worker writes
// visible to the caller).
//
// Compile with -DTSYN_TRACE_NOOP (CMake option of the same name) to turn
// spans into empty objects — the baseline the instrumentation-overhead
// acceptance bound is measured against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tsyn::util {

/// Starts collecting spans (clears nothing; pair with trace_reset() for a
/// fresh capture). Cheap to call redundantly.
void trace_enable();
void trace_disable();
bool trace_enabled();

/// Drops every buffered span and re-zeroes the trace clock.
void trace_reset();

/// Chrome trace_event JSON of everything collected so far:
///   {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,
///                    "pid":1,"tid":...}, ...]}
/// ts/dur are microseconds (fractional) from the first trace_enable().
std::string trace_to_json();

/// Writes trace_to_json() to `path`. Returns false on I/O failure.
bool trace_write(const std::string& path);

/// Number of spans buffered (for tests).
std::size_t trace_span_count();

// -- live span stacks (telemetry sampling) ----------------------------------
//
// Orthogonal to event collection: when stack tracking is on, every Span
// additionally pushes its name onto a thread-local live stack that the
// telemetry sampler thread can snapshot while the span is still open —
// the raw material for the wall-clock sampling profiler and the stall
// watchdog's per-thread diagnostics. The writer side is mutex-free: push
// stores the frame slot then the depth (release), pop stores the depth,
// and a generation counter lets the reader detect that it raced a
// push/pop and retry. A sample is therefore a consistent prefix of some
// recent stack state, never a torn mix, and costs the traced threads
// nothing beyond the push/pop stores themselves.

/// Frames beyond this depth still trace as events; they just don't appear
/// in samples (the depth count keeps push/pop balanced regardless).
inline constexpr int kMaxSampledSpanDepth = 32;

void trace_stacks_enable();
void trace_stacks_disable();
bool trace_stacks_enabled();

/// One thread's live span stack, outermost frame first. Names are the
/// span-name literals (valid for the process lifetime).
struct ThreadStack {
  int tid = 0;
  std::vector<const char*> frames;
};

/// Snapshot of every registered thread's current span stack; threads with
/// an empty stack (parked pool workers, exited threads) are skipped.
/// Intended for the telemetry sampler thread; safe to call concurrently
/// with spans opening and closing on any thread.
std::vector<ThreadStack> trace_sample_stacks();

#ifdef TSYN_TRACE_NOOP

class Span {
 public:
  explicit Span(const char* /*name*/) {}
};

#else

class Span {
 public:
  /// `name` must outlive the trace capture (string literals in practice).
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;  ///< nullptr when tracing was off at entry
  std::int64_t start_ns_ = 0;
  bool pushed_ = false;  ///< frame is on the live stack and must be popped
};

#endif  // TSYN_TRACE_NOOP

}  // namespace tsyn::util

#define TSYN_TRACE_CONCAT2(a, b) a##b
#define TSYN_TRACE_CONCAT(a, b) TSYN_TRACE_CONCAT2(a, b)
/// Scoped span covering the rest of the enclosing block.
#define TSYN_SPAN(name) \
  ::tsyn::util::Span TSYN_TRACE_CONCAT(tsyn_span_, __LINE__)(name)
