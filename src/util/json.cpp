#include "util/json.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace tsyn::util {

const Json* Json::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj)
    if (k == key) return &v;
  return nullptr;
}

double Json::number_or(const std::string& key, double fallback) const {
  const Json* v = find(key);
  return v && v->is_number() ? v->number : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    // Resolve the byte offset into a line/column and pull the offending
    // line as context, clipped around the error column so one pathological
    // minified line cannot flood a terminal.
    const std::size_t at = std::min(pos_, text_.size());
    std::size_t line = 1, bol = 0;
    for (std::size_t i = 0; i < at; ++i) {
      if (text_[i] == '\n') {
        ++line;
        bol = i + 1;
      }
    }
    const std::size_t column = at - bol + 1;
    std::size_t eol = text_.find('\n', bol);
    if (eol == std::string::npos) eol = text_.size();
    constexpr std::size_t kMaxContext = 60;
    std::size_t from = bol, to = eol;
    if (at > from + kMaxContext / 2) from = at - kMaxContext / 2;
    if (to > from + kMaxContext) to = from + kMaxContext;
    std::string snippet = text_.substr(from, to - from);
    for (char& c : snippet)  // tabs would misalign the caret
      if (c == '\t') c = ' ';
    const std::string context =
        "  " + snippet + "\n  " + std::string(at - from, ' ') + "^";
    throw JsonParseError(msg, pos_, line, column, context);
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;  // point the error at the offending character, not past it
      fail(std::string("expected '") + c + "'");
    }
  }

  void literal(const char* word) {
    const std::size_t start = pos_;
    for (const char* p = word; *p; ++p)
      if (pos_ >= text_.size() || text_[pos_++] != *p) {
        pos_ = start;  // report the whole literal as invalid from its start
        fail(std::string("invalid literal (expected ") + word + ")");
      }
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Json v;
        v.type = Json::Type::kString;
        v.str = string();
        return v;
      }
      case 't': {
        literal("true");
        Json v;
        v.type = Json::Type::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        literal("false");
        Json v;
        v.type = Json::Type::kBool;
        return v;
      }
      case 'n': {
        literal("null");
        return Json{};
      }
      default: return number();
    }
  }

  Json object() {
    expect('{');
    Json v;
    v.type = Json::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.obj.emplace_back(std::move(key), value());
      skip_ws();
      const char c = next();
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json array() {
    expect('[');
    Json v;
    v.type = Json::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr.push_back(value());
      skip_ws();
      const char c = next();
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // combined — none of our emitters produce them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("invalid escape sequence");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      if (pos_ >= text_.size() || !std::isdigit(
              static_cast<unsigned char>(text_[pos_])))
        fail("invalid number");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      digits();
    }
    Json v;
    v.type = Json::Type::kNumber;
    v.number = std::strtod(text_.c_str() + start, nullptr);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).run(); }

}  // namespace tsyn::util
