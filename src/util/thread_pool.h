// Reusable worker pool for data-parallel loops.
//
// The fault-simulation engine (and any future sharded kernel) needs to fan
// an index range out over threads without paying thread creation per call.
// The pool keeps its workers parked on a condition variable; run() hands
// them a batch, participates from the calling thread, and returns once
// every index has been processed. Each participating thread gets a stable
// `slot` id so callers can give it private scratch memory.
#pragma once

#include <functional>
#include <memory>
#include <vector>

namespace tsyn::util {

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the calling thread is the remaining
  /// participant). 0 = one per hardware thread.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Maximum number of threads a run() can use (workers + caller).
  int max_parallelism() const { return num_workers_ + 1; }

  /// Runs job(item, slot) for every item in [0, count), dynamically load-
  /// balanced over at most `max_threads` threads including the caller.
  /// `slot` is in [0, max_threads) and unique per participating thread, so
  /// job may use slot-indexed scratch without locking. The caller always
  /// holds slot 0; max_threads <= 1 (or count <= 1) degenerates to a plain
  /// inline loop — bit-identical to never having had a pool. Exceptions
  /// thrown by job are rethrown on the calling thread (first one wins).
  void run(int count, int max_threads, const std::function<void(int, int)>& job);

  /// Like run(), but with chunked work-stealing instead of a single shared
  /// counter: [0, count) is split into one contiguous range per slot, each
  /// participant claims `chunk` items at a time from its own range with one
  /// atomic add, and steals chunks from the other ranges once its own is
  /// dry. Ranges only ever drain, so one pass over the victims suffices and
  /// every item runs exactly once. Same guarantees as run() (slot ids,
  /// caller participation, inline degeneration, exception rethrow); use it
  /// when items are cheap enough that one atomic per item shows up, or
  /// skewed enough that idle threads should steal. Chunk granularity trades
  /// contention against tail imbalance — the final `chunk` items of the
  /// slowest range can't be shared.
  void run_chunked(int count, int max_threads, int chunk,
                   const std::function<void(int, int)>& job);

  /// Process-wide pool sized to the hardware. Lazily constructed.
  static ThreadPool& shared();

 private:
  struct Batch;
  struct State;
  void worker_loop();
  void run_batch(const std::shared_ptr<Batch>& b);
  static void work(Batch& b, int slot);
  static void work_chunked(Batch& b, int slot);

  std::unique_ptr<State> state_;
  int num_workers_ = 0;
};

}  // namespace tsyn::util
