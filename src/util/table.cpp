#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tsyn::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c] << std::string(widths[c] - row[c].size(), ' ')
          << ' ';
    }
    out << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    out << '|' << std::string(widths[c] + 2, '-');
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string fmt_factor(double v, int decimals) {
  return fmt(v, decimals) + "x";
}

std::string fmt_pct(double fraction, int decimals) {
  return fmt(fraction * 100.0, decimals) + "%";
}

}  // namespace tsyn::util
