// Minimal JSON document model and recursive-descent parser.
//
// The repo emits JSON in several places (metrics registry, trace export,
// BENCH_*.json, run reports) but until bench_diff nothing needed to READ
// it back. This is the reader: a small DOM good enough for the tooling
// that consumes our own artifacts — objects keep insertion order, numbers
// are doubles (every value we emit fits a double exactly below 2^53), and
// parse errors throw with the byte offset. It is not a general-purpose
// JSON library and does not aim to be one.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace tsyn::util {

/// Thrown by Json::parse on malformed input. what() carries everything a
/// human needs to fix the file — 1-based line and column plus a snippet of
/// the offending line with a caret — so a typo in a hand-written manifest
/// reads like a compiler diagnostic, not a bare byte offset:
///
///   expected ':' in object at line 4, column 12 (offset 61)
///     "alu" 2,
///          ^
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& msg, std::size_t offset, std::size_t line,
                 std::size_t column, const std::string& context)
      : std::runtime_error(msg + " at line " + std::to_string(line) +
                           ", column " + std::to_string(column) +
                           " (offset " + std::to_string(offset) + ")" +
                           (context.empty() ? "" : "\n" + context)),
        offset_(offset),
        line_(line),
        column_(column) {}
  std::size_t offset() const { return offset_; }
  std::size_t line() const { return line_; }      ///< 1-based
  std::size_t column() const { return column_; }  ///< 1-based

 private:
  std::size_t offset_;
  std::size_t line_;
  std::size_t column_;
};

/// One JSON value. A plain tagged struct rather than a class hierarchy:
/// consumers pattern-match on `type` and read the matching member.
struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> arr;
  /// Members in document order (duplicate keys kept as-is; find() returns
  /// the first).
  std::vector<std::pair<std::string, Json>> obj;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// First member named `key`, or nullptr (also for non-objects).
  const Json* find(const std::string& key) const;

  /// find(key)->number with a fallback for missing/non-number members.
  double number_or(const std::string& key, double fallback) const;

  /// Parses one JSON document (trailing non-whitespace is an error).
  /// Throws JsonParseError on malformed input.
  static Json parse(const std::string& text);
};

}  // namespace tsyn::util
