// Minimal JSON document model and recursive-descent parser.
//
// The repo emits JSON in several places (metrics registry, trace export,
// BENCH_*.json, run reports) but until bench_diff nothing needed to READ
// it back. This is the reader: a small DOM good enough for the tooling
// that consumes our own artifacts — objects keep insertion order, numbers
// are doubles (every value we emit fits a double exactly below 2^53), and
// parse errors throw with the byte offset. It is not a general-purpose
// JSON library and does not aim to be one.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace tsyn::util {

/// Thrown by Json::parse on malformed input; what() includes the offset.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& msg, std::size_t offset)
      : std::runtime_error(msg + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// One JSON value. A plain tagged struct rather than a class hierarchy:
/// consumers pattern-match on `type` and read the matching member.
struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> arr;
  /// Members in document order (duplicate keys kept as-is; find() returns
  /// the first).
  std::vector<std::pair<std::string, Json>> obj;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// First member named `key`, or nullptr (also for non-objects).
  const Json* find(const std::string& key) const;

  /// find(key)->number with a fallback for missing/non-number members.
  double number_or(const std::string& key, double fallback) const;

  /// Parses one JSON document (trailing non-whitespace is an error).
  /// Throws JsonParseError on malformed input.
  static Json parse(const std::string& text);
};

}  // namespace tsyn::util
