// Small leveled structured logger.
//
// One line per event on stderr, machine-greppable:
//   tsyn level=info stage=atpg msg="campaign done" faults=412
// The level gate is a relaxed atomic load, so debug logging in library
// code costs one branch when filtered out. Each line goes out through
// util::stderr_write (one locked fwrite), so concurrent loggers, the
// telemetry TTY status line, and "-"-heartbeats interleave whole lines,
// never characters.
#pragma once

#include <string>

namespace tsyn::util {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Filter: events with a level above this are dropped. Default kWarn.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "error"|"warn"|"info"|"debug". Returns false on anything else.
bool parse_log_level(const std::string& text, LogLevel* out);

const char* log_level_name(LogLevel level);

/// Emits one structured line. `stage` names the subsystem ("hls",
/// "faultsim", ...); `fmt`/... is a printf payload that lands in
/// msg="..." (quotes in the payload are escaped).
void logf(LogLevel level, const char* stage, const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 3, 4)))
#endif
    ;

}  // namespace tsyn::util
