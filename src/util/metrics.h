// Process-wide metrics registry (counters, gauges, histograms).
//
// Every pipeline stage publishes its effort numbers — ATPG backtracks,
// fault-sim events, scheduler steps — through this registry instead of
// ad-hoc structs, so one `--metrics` dump compares passes and runs. The
// hot-path contract: an update is one relaxed atomic RMW on a
// thread-striped cell (no lock, no false sharing with readers), so the
// sharded fault-sim kernels can count without perturbing PR 1's scaling.
// Reads merge the stripes; merging is exact (atomic adds never lose
// increments), so snapshots are deterministic for a deterministic workload
// regardless of thread count.
//
// Call sites cache the handle so name lookup (one mutex acquisition) never
// sits on a hot path:
//
//   static util::Counter& backtracks = util::metrics().counter("atpg.bt");
//   backtracks.add(1);
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace tsyn::util {

/// Stripes per metric. Each updating thread hashes to one stripe; 16 covers
/// the pool widths the fault-sim engine uses without measurable collision
/// cost (a collision is still just an uncontended-in-practice atomic add).
inline constexpr int kMetricStripes = 16;

namespace detail {
/// Stable per-thread stripe index in [0, kMetricStripes).
int thread_stripe();

struct alignas(64) StripedCell {
  std::atomic<std::int64_t> v{0};
};
}  // namespace detail

/// Monotonic counter. add() is wait-free; read() merges the stripes.
class Counter {
 public:
  void add(std::int64_t n = 1) {
    cells_[detail::thread_stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t read() const {
    std::int64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  friend class MetricsRegistry;
  void reset() {
    for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }
  detail::StripedCell cells_[kMetricStripes];
};

/// Last-written value (schedule length, shard imbalance, ...). Stored as
/// millionths so one atomic word carries fractional gauges exactly enough
/// for reporting.
class Gauge {
 public:
  void set(double v) {
    micro_.store(static_cast<std::int64_t>(v * 1e6),
                 std::memory_order_relaxed);
  }
  void set_max(double v) {
    const std::int64_t n = static_cast<std::int64_t>(v * 1e6);
    std::int64_t cur = micro_.load(std::memory_order_relaxed);
    while (n > cur &&
           !micro_.compare_exchange_weak(cur, n, std::memory_order_relaxed)) {
    }
  }
  double read() const {
    return static_cast<double>(micro_.load(std::memory_order_relaxed)) / 1e6;
  }

 private:
  friend class MetricsRegistry;
  void reset() { micro_.store(0, std::memory_order_relaxed); }
  std::atomic<std::int64_t> micro_{0};
};

/// Merged histogram state, as returned by Histogram::read().
struct HistogramSnapshot {
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  ///< meaningful only when count > 0
  std::int64_t max = 0;
  /// buckets[k] counts observations v with 2^(k-1) <= v < 2^k (bucket 0:
  /// v <= 0). Power-of-two bounds keep recording branch-free.
  std::int64_t buckets[64] = {};
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Estimated value at percentile `p` in [0, 100]: walks the cumulative
  /// bucket counts to the bucket containing rank p% * count, interpolates
  /// linearly inside that bucket's [2^(k-1), 2^k) value range, and clamps
  /// to the observed [min, max]. Exact when a bucket holds one distinct
  /// value; otherwise off by at most the bucket width (a factor of 2).
  /// Returns 0 for an empty histogram.
  double percentile(double p) const;
};

/// Log2-bucketed distribution of a non-negative quantity (backtracks per
/// fault, frames to detection, ...). Thread-striped like Counter.
class Histogram {
 public:
  void observe(std::int64_t v);
  HistogramSnapshot read() const;

 private:
  friend class MetricsRegistry;
  void reset();
  struct alignas(64) Stripe {
    std::atomic<std::int64_t> count{0};
    std::atomic<std::int64_t> sum{0};
    std::atomic<std::int64_t> min{0};  ///< valid when count > 0
    std::atomic<std::int64_t> max{0};
    std::atomic<std::int64_t> buckets[64] = {};
  };
  Stripe stripes_[kMetricStripes];
};

/// One merged view of every registered metric, for reporting and tests.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Name -> metric handle table. Handles are created on first use and live
/// for the process (stable references), so lookups happen once per call
/// site, not per update.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Snapshot rendered as a JSON object:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {"name": {"count":..,"sum":..,"min":..,"max":..,
  ///                            "mean":..,"p50":..,"p90":..,"p99":..,
  ///                            "buckets":[{"le":N,"count":C}, ...]}}}
  /// Histogram buckets are emitted sparsely (nonzero only), "le" being the
  /// exclusive power-of-two upper bound.
  std::string to_json() const;

  /// Zeroes every registered metric (handles stay valid). For benches and
  /// tests that measure one phase in a process that ran others before.
  void reset();

 private:
  friend MetricsRegistry& metrics();
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry.
MetricsRegistry& metrics();

}  // namespace tsyn::util
