// Dependency-free embedded HTTP/1.1 server (POSIX sockets only).
//
// The observability endpoint (observe/serve) needs exactly one thing from
// a web server: answer small idempotent GETs from a scraper or a browser
// without ever perturbing the instrumented workload. So this is the
// smallest server that does that honestly:
//
//  * One background thread. accept() is driven by poll() with a short
//    timeout so stop() latency is bounded; requests are handled serially
//    on that thread. There is no worker pool to steal cycles from the
//    fault-sim shards, and a slow client can at worst delay other
//    *scrapers*, never the workload.
//  * Bounded everything. Request heads are capped (kMaxRequestBytes),
//    clients get a read deadline (kClientTimeoutMs), and at most
//    kMaxQueuedConns connections are queued in the listen backlog —
//    beyond that the kernel sheds load, not us.
//  * Connection: close on every response (HTTP/1.1 without keep-alive).
//    One request per connection keeps the state machine trivial and makes
//    "bounded" provable.
//
// Binding port 0 asks the kernel for an ephemeral port; port() reports
// the bound one, which is how CI attaches curl to a fresh server without
// a port-collision dance.
//
// The tiny blocking client (http_get) exists so tests and the overhead
// bench can scrape without shelling out to curl.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace tsyn::util {

/// One parsed request line. Only the pieces handlers need: the method,
/// the path with its query split off, and the query string itself
/// ("seconds=2", no '?'). Headers are read and discarded.
struct HttpRequest {
  std::string method;
  std::string path;
  std::string query;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Parses a `[ADDR:]PORT` server spec ("8080", "0", "0.0.0.0:9091").
/// PORT must be a strict decimal integer in [0, 65535] (0 = ephemeral);
/// ADDR, when present, a dotted-quad IPv4 literal. Returns false without
/// touching the outputs on anything else.
bool parse_serve_spec(const std::string& spec, std::string* addr, int* port);

/// Returns the value of `key` in an application/x-www-form-urlencoded
/// query string ("a=1&b=2"), or "" when absent.
std::string http_query_param(const std::string& query,
                             const std::string& key);

class HttpServer {
 public:
  static constexpr int kMaxQueuedConns = 16;     ///< listen() backlog
  static constexpr int kClientTimeoutMs = 2000;  ///< per-read deadline
  static constexpr std::size_t kMaxRequestBytes = 8192;

  HttpServer() = default;
  ~HttpServer();  // stops and joins
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds `addr:port` (port 0 = kernel-assigned), spawns the serving
  /// thread, and returns true. On failure returns false and, when `err`
  /// is non-null, stores a one-line reason.
  bool start(const std::string& addr, int port, HttpHandler handler,
             std::string* err = nullptr);

  /// Stops the serving thread and closes the socket. Idempotent; also run
  /// by the destructor. Safe to call from a signal-ish context (the
  /// crash-flush path): it only flips an atomic, closes fds, and joins.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound address/port — meaningful after a successful start().
  /// port() reports the kernel's choice when the caller bound port 0.
  int port() const { return port_; }
  const std::string& address() const { return addr_; }

  /// Served-request count (any response, including 404s). These live here
  /// as plain atomics rather than in the metrics registry on purpose: the
  /// registry must reconcile exactly with the workload's own --metrics
  /// artifact, so the scraper's activity never leaks into it.
  std::int64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Connections dropped for exceeding kMaxRequestBytes, timing out, or
  /// sending an unparsable request line.
  std::int64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

  /// Invoked from the serving thread on every poll() wakeup (~10 Hz even
  /// when idle). The observability layer uses it to sample dashboard
  /// sparkline points without owning a second thread.
  void set_idle_tick(std::function<void()> tick) { tick_ = std::move(tick); }

 private:
  void serve_loop();
  void handle_conn(int fd);

  HttpHandler handler_;
  std::function<void()> tick_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::string addr_;
  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> rejected_{0};
};

/// Minimal blocking HTTP GET against 127.0.0.1-style literals, for tests
/// and the bench. Returns the response status (or -1 on connect/IO
/// failure) and fills `body` (headers stripped) when non-null.
int http_get(const std::string& addr, int port, const std::string& target,
             std::string* body = nullptr);

}  // namespace tsyn::util
