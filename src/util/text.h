// Small string utilities shared by the CDFG parser and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tsyn::util {

/// Splits on any of the delimiter characters; empty tokens are dropped.
std::vector<std::string> split(std::string_view text, std::string_view delims);

/// Removes leading/trailing whitespace.
std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace tsyn::util
