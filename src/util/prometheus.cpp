#include "util/prometheus.h"

#include <cstdio>
#include <set>

namespace tsyn::util {

namespace {

void append_value(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out += buf;
}

/// Registry name -> unique exposition name: sanitize, then suffix on
/// collision. `taken` spans all metric families of one exposition.
std::string unique_name(const std::string& name, const std::string& prefix,
                        std::set<std::string>& taken) {
  std::string base = prefix + prom_sanitize_name(name);
  std::string candidate = base;
  for (int i = 2; !taken.insert(candidate).second; ++i)
    candidate = base + "_" + std::to_string(i);
  return candidate;
}

}  // namespace

std::string prom_sanitize_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

std::string metrics_to_prometheus(const MetricsSnapshot& m,
                                  const std::string& prefix) {
  std::string out;
  std::set<std::string> taken;

  for (const auto& [name, v] : m.counters) {
    // The _total suffix is the Prometheus counter convention; reserving
    // the suffixed form keeps a gauge literally named "x_total" from
    // colliding with counter "x".
    const std::string pn = unique_name(name + "_total", prefix, taken);
    out += "# TYPE " + pn + " counter\n";
    out += pn + " " + std::to_string(v) + "\n";
  }

  for (const auto& [name, v] : m.gauges) {
    const std::string pn = unique_name(name, prefix, taken);
    out += "# TYPE " + pn + " gauge\n";
    out += pn + " ";
    append_value(out, v);
    out += "\n";
  }

  for (const auto& [name, h] : m.histograms) {
    const std::string pn = unique_name(name, prefix, taken);
    out += "# TYPE " + pn + " summary\n";
    const double quantiles[][2] = {{0.5, h.percentile(50.0)},
                                   {0.9, h.percentile(90.0)},
                                   {0.99, h.percentile(99.0)}};
    for (const auto& [q, v] : quantiles) {
      out += pn + "{quantile=\"";
      append_value(out, q);
      out += "\"} ";
      append_value(out, v);
      out += "\n";
    }
    out += pn + "_sum " + std::to_string(h.sum) + "\n";
    out += pn + "_count " + std::to_string(h.count) + "\n";
    const std::string mn = unique_name(name + "_min", prefix, taken);
    out += "# TYPE " + mn + " gauge\n" + mn + " " + std::to_string(h.min) +
           "\n";
    const std::string mx = unique_name(name + "_max", prefix, taken);
    out += "# TYPE " + mx + " gauge\n" + mx + " " + std::to_string(h.max) +
           "\n";
  }
  return out;
}

}  // namespace tsyn::util
