#include "util/httpd.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tsyn::util {

namespace {

/// Strict decimal port parse: digits only, no sign, fits in [0, 65535].
bool parse_port(const std::string& text, int* out) {
  if (text.empty() || text.size() > 5) return false;
  long v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  if (v > 65535) return false;
  *out = static_cast<int>(v);
  return true;
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

/// Writes the whole buffer, retrying short writes; best-effort (a client
/// that hung up mid-response is its own problem).
void write_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

void write_response(int fd, const HttpResponse& r) {
  std::string head = "HTTP/1.1 ";
  head += std::to_string(r.status);
  head += ' ';
  head += status_text(r.status);
  head += "\r\nContent-Type: ";
  head += r.content_type;
  head += "\r\nContent-Length: ";
  head += std::to_string(r.body.size());
  head += "\r\nConnection: close\r\n\r\n";
  write_all(fd, head.data(), head.size());
  write_all(fd, r.body.data(), r.body.size());
}

}  // namespace

bool parse_serve_spec(const std::string& spec, std::string* addr, int* port) {
  const std::size_t colon = spec.rfind(':');
  std::string addr_part = "127.0.0.1";
  std::string port_part = spec;
  if (colon != std::string::npos) {
    addr_part = spec.substr(0, colon);
    port_part = spec.substr(colon + 1);
    in_addr probe{};
    if (addr_part.empty() ||
        ::inet_pton(AF_INET, addr_part.c_str(), &probe) != 1)
      return false;
  }
  int p = 0;
  if (!parse_port(port_part, &p)) return false;
  if (addr) *addr = addr_part;
  if (port) *port = p;
  return true;
}

std::string http_query_param(const std::string& query,
                             const std::string& key) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0)
      return query.substr(eq + 1, amp - eq - 1);
    if (eq == std::string::npos || eq >= amp) {
      // bare key with no '=' counts as present-but-empty
      if (query.compare(pos, amp - pos, key) == 0) return "";
    }
    pos = amp + 1;
  }
  return "";
}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start(const std::string& addr, int port, HttpHandler handler,
                       std::string* err) {
  if (running_.load(std::memory_order_acquire)) {
    if (err) *err = "server already running";
    return false;
  }
  auto fail = [&](const std::string& what) {
    if (err) *err = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1) {
    if (err) *err = "bad address literal: " + addr;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0)
    return fail("bind " + addr + ":" + std::to_string(port));
  if (::listen(listen_fd_, kMaxQueuedConns) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0)
    return fail("getsockname");
  port_ = ntohs(bound.sin_port);
  addr_ = addr;

  handler_ = std::move(handler);
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int n = ::poll(&pfd, 1, 100);
    if (tick_) tick_();
    if (n <= 0) continue;  // timeout (the stop check) or EINTR
    sockaddr_in peer{};
    socklen_t len = sizeof peer;
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) continue;
    handle_conn(fd);
    ::close(fd);
  }
}

void HttpServer::handle_conn(int fd) {
  // Read until the end of the request head (CRLFCRLF) or a bound trips.
  // GET bodies are not a thing we serve, so the head is the request.
  std::string head;
  char buf[1024];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, kClientTimeoutMs);
    if (pr <= 0) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      write_response(fd, {408, "text/plain; charset=utf-8", "timeout\n"});
      return;
    }
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return;  // peer went away before finishing the head
    }
    head.append(buf, static_cast<std::size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos)
      break;
    if (head.size() > kMaxRequestBytes) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      write_response(fd, {431, "text/plain; charset=utf-8", "too large\n"});
      return;
    }
  }

  // Request line: METHOD SP TARGET SP VERSION
  const std::size_t eol = head.find_first_of("\r\n");
  const std::string line = head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                   : line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    write_response(fd, {400, "text/plain; charset=utf-8", "bad request\n"});
    return;
  }
  HttpRequest req;
  req.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t q = target.find('?');
  req.path = target.substr(0, q);
  if (q != std::string::npos) req.query = target.substr(q + 1);

  requests_.fetch_add(1, std::memory_order_relaxed);
  if (req.method != "GET" && req.method != "HEAD") {
    write_response(fd,
                   {405, "text/plain; charset=utf-8", "method not allowed\n"});
    return;
  }
  HttpResponse resp = handler_ ? handler_(req)
                               : HttpResponse{404, "text/plain; charset=utf-8",
                                              "not found\n"};
  if (req.method == "HEAD") resp.body.clear();
  write_response(fd, resp);
}

int http_get(const std::string& addr, int port, const std::string& target,
             std::string* body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    ::close(fd);
    return -1;
  }
  std::string req = "GET " + target + " HTTP/1.1\r\nHost: " + addr +
                    "\r\nConnection: close\r\n\r\n";
  write_all(fd, req.data(), req.size());

  std::string resp;
  char buf[4096];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, HttpServer::kClientTimeoutMs * 5) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  if (resp.compare(0, 5, "HTTP/") != 0) return -1;
  const std::size_t sp = resp.find(' ');
  if (sp == std::string::npos || sp + 4 > resp.size()) return -1;
  const int status = (resp[sp + 1] - '0') * 100 + (resp[sp + 2] - '0') * 10 +
                     (resp[sp + 3] - '0');
  if (body) {
    std::size_t split = resp.find("\r\n\r\n");
    std::size_t skip = 4;
    if (split == std::string::npos) {
      split = resp.find("\n\n");
      skip = 2;
    }
    *body = split == std::string::npos ? "" : resp.substr(split + skip);
  }
  return status;
}

}  // namespace tsyn::util
