#include "util/metrics.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <mutex>
#include <sstream>

namespace tsyn::util {

namespace detail {

int thread_stripe() {
  static std::atomic<int> next{0};
  thread_local const int stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
  return stripe;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

namespace {

/// Bucket 0 holds v <= 0; bucket k holds 2^(k-1) <= v < 2^k.
int bucket_of(std::int64_t v) {
  if (v <= 0) return 0;
  return std::bit_width(static_cast<std::uint64_t>(v));
}

}  // namespace

void Histogram::observe(std::int64_t v) {
  Stripe& s = stripes_[detail::thread_stripe()];
  // First observation on a stripe seeds min/max; racing seeds both run the
  // CAS loops below, so the merged result is still the true extremum.
  if (s.count.fetch_add(1, std::memory_order_relaxed) == 0) {
    s.min.store(v, std::memory_order_relaxed);
    s.max.store(v, std::memory_order_relaxed);
  } else {
    std::int64_t cur = s.min.load(std::memory_order_relaxed);
    while (v < cur &&
           !s.min.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = s.max.load(std::memory_order_relaxed);
    while (v > cur &&
           !s.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  s.sum.fetch_add(v, std::memory_order_relaxed);
  s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  if (p <= 0.0) return static_cast<double>(min);
  if (p >= 100.0) return static_cast<double>(max);
  const double target = p / 100.0 * static_cast<double>(count);
  std::int64_t cum = 0;
  for (int k = 0; k < 64; ++k) {
    if (buckets[k] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += buckets[k];
    if (static_cast<double>(cum) < target) continue;
    // The target rank lands in bucket k: interpolate inside its bounds.
    // Bucket 0 holds v <= 0 (range [min, 0]); bucket k >= 1 holds
    // [2^(k-1), 2^k).
    double lo, hi;
    if (k == 0) {
      lo = std::min(static_cast<double>(min), 0.0);
      hi = 0.0;
    } else {
      lo = static_cast<double>(std::int64_t{1} << (k - 1));
      hi = static_cast<double>(std::int64_t{1} << k);
    }
    const double frac =
        (target - before) / static_cast<double>(buckets[k]);
    double v = lo + frac * (hi - lo);
    v = std::max(v, static_cast<double>(min));
    v = std::min(v, static_cast<double>(max));
    return v;
  }
  return static_cast<double>(max);
}

HistogramSnapshot Histogram::read() const {
  HistogramSnapshot out;
  for (const Stripe& s : stripes_) {
    const std::int64_t c = s.count.load(std::memory_order_relaxed);
    if (c == 0) continue;
    const std::int64_t lo = s.min.load(std::memory_order_relaxed);
    const std::int64_t hi = s.max.load(std::memory_order_relaxed);
    if (out.count == 0) {
      out.min = lo;
      out.max = hi;
    } else {
      if (lo < out.min) out.min = lo;
      if (hi > out.max) out.max = hi;
    }
    out.count += c;
    out.sum += s.sum.load(std::memory_order_relaxed);
    for (int k = 0; k < 64; ++k)
      out.buckets[k] += s.buckets[k].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (Stripe& s : stripes_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, c] : counters_) out.counters[name] = c->read();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->read();
  for (const auto& [name, h] : histograms_) out.histograms[name] = h->read();
  return out;
}

namespace {

void append_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\') os << '\\';
    os << ch;
  }
  os << '"';
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os << v;
  const std::string s = os.str();
  // Bare integers are valid JSON numbers but keep a decimal point so
  // consumers see a stable type for gauges.
  return s.find_first_of(".eE") == std::string::npos ? s + ".0" : s;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  const MetricsSnapshot snap = snapshot();
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    append_json_string(os, name);
    os << ": " << v;
  }
  os << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    append_json_string(os, name);
    os << ": " << fmt_double(v);
  }
  os << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    append_json_string(os, name);
    os << ": {\"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"min\": " << h.min << ", \"max\": " << h.max
       << ", \"mean\": " << fmt_double(h.mean())
       << ", \"p50\": " << fmt_double(h.percentile(50))
       << ", \"p90\": " << fmt_double(h.percentile(90))
       << ", \"p99\": " << fmt_double(h.percentile(99))
       << ", \"buckets\": [";
    bool bfirst = true;
    for (int k = 0; k < 64; ++k) {
      if (h.buckets[k] == 0) continue;
      if (!bfirst) os << ", ";
      bfirst = false;
      os << "{\"le\": " << (k == 0 ? 0 : (std::int64_t{1} << k))
         << ", \"count\": " << h.buckets[k] << "}";
    }
    os << "]}";
  }
  os << (first ? "}" : "\n  }") << "\n}\n";
  return os.str();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dtor'd
  return *registry;
}

}  // namespace tsyn::util
