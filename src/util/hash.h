// Stable structural hashing for content-addressed memoization.
//
// The campaign orchestrator keys its stage cache (CDFG parse, schedule +
// binding, RTL->gate expansion) by what actually went into a stage, not by
// when it ran. That needs a hash that is (a) stable across runs, platforms,
// and std-library versions — std::hash guarantees none of that — and
// (b) unambiguous over composite inputs, so ("ab","c") never collides with
// ("a","bc") by construction. FNV-1a over a canonical serialization gives
// both: every field is folded with an explicit length or fixed width, and
// the 64-bit state is cheap enough to use on hot paths.
//
//   util::Fnv1a h;
//   h.str(design_spec).i64(alu).i64(mul).i64(steps);
//   cache.lookup(h.value());
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tsyn::util {

/// Incremental 64-bit FNV-1a over a canonical field serialization. Each
/// fold method returns *this so keys read as one chained expression.
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffset = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  /// Raw bytes, no framing. Building block for the framed folds below;
  /// callers composing multiple variable-length fields should prefer
  /// str(), which frames with the length.
  Fnv1a& bytes(const void* data, std::size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= kPrime;
    }
    return *this;
  }

  /// A length-framed string: folds the size first, then the bytes, so
  /// adjacent string fields cannot alias each other's boundaries.
  Fnv1a& str(std::string_view s) {
    u64(s.size());
    return bytes(s.data(), s.size());
  }

  /// Fixed-width little-endian integer fold (explicit byte order keeps the
  /// value stable across platforms).
  Fnv1a& u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= static_cast<unsigned char>(v >> (8 * i));
      h_ *= kPrime;
    }
    return *this;
  }

  Fnv1a& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }

  std::uint64_t value() const { return h_; }

  /// 16 lowercase hex digits — the spelling journals and index files use.
  std::string hex() const { return hash_hex(h_); }

  static std::string hash_hex(std::uint64_t v) {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
      out[static_cast<std::size_t>(i)] = digits[v & 0xF];
      v >>= 4;
    }
    return out;
  }

 private:
  std::uint64_t h_ = kOffset;
};

/// One-shot convenience: FNV-1a of a byte string (unframed — fine when the
/// whole input is a single blob, e.g. a result file's content).
inline std::uint64_t fnv1a(std::string_view s) {
  return Fnv1a().bytes(s.data(), s.size()).value();
}

}  // namespace tsyn::util
