#include "util/rng.h"

#include <cassert>

namespace tsyn::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed with splitmix64 as recommended by the xoshiro authors;
  // guarantees a non-zero state for any seed.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::next_int(int lo, int hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<int>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

std::size_t Rng::pick_index(std::size_t size) {
  assert(size > 0);
  return static_cast<std::size_t>(next_below(size));
}

}  // namespace tsyn::util
