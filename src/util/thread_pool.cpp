#include "util/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace tsyn::util {

/// One run() call in flight. Work is claimed index-by-index from `next` so
/// uneven items (fault propagation cost varies wildly) balance themselves.
struct ThreadPool::Batch {
  int count = 0;
  /// Helper slots still unclaimed; the caller retires the leftovers when it
  /// finishes its own share. Guarded by the pool mutex.
  int open_slots = 0;
  int started = 0;   ///< helpers that joined (guarded by the pool mutex)
  int finished = 0;  ///< helpers that completed (guarded by the pool mutex)
  std::atomic<int> next{0};
  const std::function<void(int, int)>* job = nullptr;
  std::mutex err_mu;
  std::exception_ptr error;
};

struct ThreadPool::State {
  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::shared_ptr<Batch> batch;  ///< current batch with open slots, if any
  bool stop = false;
  std::vector<std::thread> workers;
};

ThreadPool::ThreadPool(int num_threads) : state_(new State) {
  if (num_threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  num_workers_ = num_threads - 1;
  state_->workers.reserve(static_cast<std::size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i)
    state_->workers.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(state_->mu);
    state_->stop = true;
  }
  state_->work_cv.notify_all();
  for (std::thread& t : state_->workers) t.join();
}

void ThreadPool::work(Batch& b, int slot) {
  try {
    for (int i = b.next.fetch_add(1, std::memory_order_relaxed); i < b.count;
         i = b.next.fetch_add(1, std::memory_order_relaxed))
      (*b.job)(i, slot);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lk(b.err_mu);
      if (!b.error) b.error = std::current_exception();
    }
    b.next.store(b.count, std::memory_order_relaxed);  // abandon the rest
  }
}

void ThreadPool::worker_loop() {
  State& s = *state_;
  for (;;) {
    std::shared_ptr<Batch> b;
    int slot;
    {
      std::unique_lock<std::mutex> lk(s.mu);
      s.work_cv.wait(lk, [&] { return s.stop || s.batch != nullptr; });
      if (s.stop) return;
      b = s.batch;
      slot = ++b->started;  // caller is slot 0; helpers are 1..
      if (--b->open_slots == 0) s.batch = nullptr;
    }
    work(*b, slot);
    {
      std::lock_guard<std::mutex> lk(s.mu);
      ++b->finished;
    }
    s.done_cv.notify_all();
  }
}

void ThreadPool::run(int count, int max_threads,
                     const std::function<void(int, int)>& job) {
  if (count <= 0) return;
  const int helpers =
      std::min({max_threads - 1, num_workers_, count - 1});
  if (helpers <= 0) {
    for (int i = 0; i < count; ++i) job(i, 0);
    return;
  }

  State& s = *state_;
  auto b = std::make_shared<Batch>();
  b->count = count;
  b->open_slots = helpers;
  b->job = &job;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    s.batch = b;
  }
  s.work_cv.notify_all();

  work(*b, 0);  // the caller is a participant, not just a dispatcher

  std::unique_lock<std::mutex> lk(s.mu);
  if (s.batch == b) s.batch = nullptr;  // retire slots no worker claimed
  s.done_cv.wait(lk, [&] { return b->finished == b->started; });
  lk.unlock();

  if (b->error) std::rethrow_exception(b->error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace tsyn::util
