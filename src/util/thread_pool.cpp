#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace tsyn::util {

/// One run()/run_chunked() call in flight. run() claims work index-by-index
/// from `next` so uneven items (fault propagation cost varies wildly)
/// balance themselves; run_chunked() splits the range into per-slot deques
/// (next_of/end_of) that participants drain chunk-wise and steal from.
struct ThreadPool::Batch {
  int count = 0;
  /// Helper slots still unclaimed; the caller retires the leftovers when it
  /// finishes its own share. Guarded by the pool mutex.
  int open_slots = 0;
  int started = 0;   ///< helpers that joined (guarded by the pool mutex)
  int finished = 0;  ///< helpers that completed (guarded by the pool mutex)
  std::atomic<int> next{0};
  /// Chunked mode (chunk > 0): slot s owns items [start of its range,
  /// end_of[s]) and claims `chunk` of them per fetch_add on next_of[s];
  /// a cursor past its end means the range is dry (it never refills, which
  /// is what makes a single stealing pass over the victims complete).
  int chunk = 0;
  int slots = 0;
  std::unique_ptr<std::atomic<long>[]> next_of;
  std::vector<long> end_of;
  const std::function<void(int, int)>* job = nullptr;
  std::mutex err_mu;
  std::exception_ptr error;
};

struct ThreadPool::State {
  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::shared_ptr<Batch> batch;  ///< current batch with open slots, if any
  bool stop = false;
  std::vector<std::thread> workers;
};

ThreadPool::ThreadPool(int num_threads) : state_(new State) {
  if (num_threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  num_workers_ = num_threads - 1;
  state_->workers.reserve(static_cast<std::size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i)
    state_->workers.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(state_->mu);
    state_->stop = true;
  }
  state_->work_cv.notify_all();
  for (std::thread& t : state_->workers) t.join();
}

void ThreadPool::work(Batch& b, int slot) {
  if (b.chunk > 0) {
    work_chunked(b, slot);
    return;
  }
  try {
    for (int i = b.next.fetch_add(1, std::memory_order_relaxed); i < b.count;
         i = b.next.fetch_add(1, std::memory_order_relaxed))
      (*b.job)(i, slot);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lk(b.err_mu);
      if (!b.error) b.error = std::current_exception();
    }
    b.next.store(b.count, std::memory_order_relaxed);  // abandon the rest
  }
}

void ThreadPool::work_chunked(Batch& b, int slot) {
  try {
    // Drain our own range first, then visit each victim in turn. Ranges
    // only deplete, so by the time we move past a victim it is dry for
    // good — one pass covers everything even if some planned helper never
    // actually joined the batch (its range just gets stolen whole).
    for (int v = 0; v < b.slots; ++v) {
      const int victim = (slot + v) % b.slots;
      const long end = b.end_of[victim];
      for (;;) {
        const long i =
            b.next_of[victim].fetch_add(b.chunk, std::memory_order_relaxed);
        if (i >= end) break;
        const long stop = std::min(i + b.chunk, end);
        for (long k = i; k < stop; ++k)
          (*b.job)(static_cast<int>(k), slot);
      }
    }
  } catch (...) {
    {
      std::lock_guard<std::mutex> lk(b.err_mu);
      if (!b.error) b.error = std::current_exception();
    }
    for (int v = 0; v < b.slots; ++v)  // abandon the rest
      b.next_of[v].store(b.end_of[v], std::memory_order_relaxed);
  }
}

void ThreadPool::worker_loop() {
  State& s = *state_;
  for (;;) {
    std::shared_ptr<Batch> b;
    int slot;
    {
      std::unique_lock<std::mutex> lk(s.mu);
      s.work_cv.wait(lk, [&] { return s.stop || s.batch != nullptr; });
      if (s.stop) return;
      b = s.batch;
      slot = ++b->started;  // caller is slot 0; helpers are 1..
      if (--b->open_slots == 0) s.batch = nullptr;
    }
    work(*b, slot);
    {
      std::lock_guard<std::mutex> lk(s.mu);
      ++b->finished;
    }
    s.done_cv.notify_all();
  }
}

void ThreadPool::run_batch(const std::shared_ptr<Batch>& b) {
  State& s = *state_;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    s.batch = b;
  }
  s.work_cv.notify_all();

  work(*b, 0);  // the caller is a participant, not just a dispatcher

  std::unique_lock<std::mutex> lk(s.mu);
  if (s.batch == b) s.batch = nullptr;  // retire slots no worker claimed
  s.done_cv.wait(lk, [&] { return b->finished == b->started; });
  lk.unlock();

  if (b->error) std::rethrow_exception(b->error);
}

void ThreadPool::run(int count, int max_threads,
                     const std::function<void(int, int)>& job) {
  if (count <= 0) return;
  const int helpers =
      std::min({max_threads - 1, num_workers_, count - 1});
  if (helpers <= 0) {
    for (int i = 0; i < count; ++i) job(i, 0);
    return;
  }

  auto b = std::make_shared<Batch>();
  b->count = count;
  b->open_slots = helpers;
  b->job = &job;
  run_batch(b);
}

void ThreadPool::run_chunked(int count, int max_threads, int chunk,
                             const std::function<void(int, int)>& job) {
  if (count <= 0) return;
  if (chunk < 1) chunk = 1;
  const int helpers =
      std::min({max_threads - 1, num_workers_, count - 1});
  if (helpers <= 0) {
    for (int i = 0; i < count; ++i) job(i, 0);
    return;
  }

  auto b = std::make_shared<Batch>();
  b->count = count;
  b->open_slots = helpers;
  b->job = &job;
  b->chunk = chunk;
  b->slots = helpers + 1;
  b->next_of.reset(new std::atomic<long>[b->slots]);
  b->end_of.resize(b->slots);
  for (int v = 0; v < b->slots; ++v) {
    // Even contiguous split; empty ranges (count < slots) are fine — they
    // are born dry and thieves skip straight past them.
    b->next_of[v].store(static_cast<long>(count) * v / b->slots,
                        std::memory_order_relaxed);
    b->end_of[v] = static_cast<long>(count) * (v + 1) / b->slots;
  }
  run_batch(b);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace tsyn::util
