#include "util/text.h"

namespace tsyn::util {

std::vector<std::string> split(std::string_view text,
                               std::string_view delims) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find_first_of(delims, start);
    const std::size_t stop = (end == std::string_view::npos) ? text.size()
                                                             : end;
    if (stop > start) out.emplace_back(text.substr(start, stop - start));
    start = stop + 1;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const auto first = text.find_first_not_of(" \t\r\n");
  if (first == std::string_view::npos) return {};
  const auto last = text.find_last_not_of(" \t\r\n");
  return text.substr(first, last - first + 1);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace tsyn::util
