#include "util/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "util/telemetry.h"

namespace tsyn::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool parse_log_level(const std::string& text, LogLevel* out) {
  if (text == "error") *out = LogLevel::kError;
  else if (text == "warn") *out = LogLevel::kWarn;
  else if (text == "info") *out = LogLevel::kInfo;
  else if (text == "debug") *out = LogLevel::kDebug;
  else return false;
  return true;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

void logf(LogLevel level, const char* stage, const char* fmt, ...) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed))
    return;

  char payload[512];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(payload, sizeof payload, fmt, args);
  va_end(args);

  char line[640];
  int n = std::snprintf(line, sizeof line, "tsyn level=%s stage=%s msg=\"",
                        log_level_name(level), stage);
  for (const char* p = payload; *p && n < static_cast<int>(sizeof line) - 3;
       ++p) {
    if (*p == '"' || *p == '\\') line[n++] = '\\';
    line[n++] = *p == '\n' ? ' ' : *p;
  }
  line[n++] = '"';
  line[n++] = '\n';
  // Through the shared stderr writer so log lines, the TTY status line,
  // and "-"-heartbeats interleave whole-line, never sheared.
  stderr_write(line, static_cast<std::size_t>(n));
}

}  // namespace tsyn::util
