// Live telemetry: progress counters, JSONL heartbeats, and a stall
// watchdog, streamed from a background sampler thread while a run is in
// flight.
//
// Everything else in the observability stack (metrics, trace spans, the
// fault ledger, run reports) is post-mortem — nothing is visible until
// the process exits. The campaign-orchestrator item on the ROADMAP needs
// the opposite: thousands of long-running jobs reporting liveness,
// progress, and cost while they run. This layer provides that substrate:
//
//  * Progress counters — phase-scoped (done, total) pairs such as
//    "sim.patterns" or "atpg.targets". add() is one relaxed load plus (when
//    telemetry is on) one wait-free striped atomic add, the same hot-path
//    contract as util::Counter and the ledger. Off by default; a disabled
//    add() is a single relaxed atomic load.
//
//  * Heartbeats — a background thread wakes every interval_ms and appends
//    one self-contained JSON object per line (JSONL) to a file or stderr:
//    schema version, sequence number, monotonic elapsed time, current
//    phase, every progress counter with an EWMA rate and ETA, and the
//    merged counter/gauge snapshot of the metrics registry. Each line is
//    flushed as written, so the stream survives a crash of the host
//    process.
//
//  * Stall watchdog — if no progress counter advances for watchdog_ms,
//    the sampler emits one diagnostic "stall" record carrying the live
//    per-thread span stacks (util::trace_sample_stacks()), the last
//    per-counter deltas, and the metric snapshot, then re-arms when
//    progress resumes.
//
// The sampler thread also drives an optional external hook (the
// observe::Profiler's sample() in practice) at a fine cadence, which keeps
// this file free of dependencies above util.
//
// Heartbeat line schema (version 1):
//   {"schema":1,"type":"heartbeat","seq":3,"t_ms":752.1,"phase":"atpg",
//    "progress":[{"name":"atpg.targets","done":120,"total":482,
//                 "delta":40,"rate_per_s":160.4,"eta_ms":2256.9}, ...],
//    "counters":{...},"gauges":{...}}
// Stall records use "type":"stall" and add "stalled_ms" plus
//   "stacks":[{"tid":1,"frames":["cli.report","gl.atpg.comb"]}, ...].
// `total` is clamped to at least `done` (some producers learn their totals
// late); `eta_ms` is null until a nonzero rate is observed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace tsyn::util {

namespace detail {
extern std::atomic<bool> g_progress_enabled;
}  // namespace detail

/// True while progress counters record. Enabled by telemetry_start() (and
/// directly by tests/benches via progress_enable()).
inline bool progress_enabled() {
  return detail::g_progress_enabled.load(std::memory_order_relaxed);
}
void progress_enable();
void progress_disable();

/// A (done, total) pair for one unit of pipeline work. Producers call
/// add_total() when they learn how much work exists and add() as they
/// finish it; both are no-ops while progress is disabled, so the counts
/// always cover one telemetry session, not process history.
class Progress {
 public:
  void add(std::int64_t n = 1) {
    if (!progress_enabled()) return;
    done_[detail::thread_stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void add_total(std::int64_t n) {
    if (!progress_enabled()) return;
    total_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t done() const {
    std::int64_t t = 0;
    for (const auto& c : done_) t += c.v.load(std::memory_order_relaxed);
    return t;
  }
  std::int64_t total() const {
    return total_.load(std::memory_order_relaxed);
  }

 private:
  friend void progress_reset();
  detail::StripedCell done_[kMetricStripes];
  std::atomic<std::int64_t> total_{0};
};

/// Stable handle for `name`, created on first use and alive for the
/// process — cache it at the call site like a metrics handle:
///   static util::Progress& p = util::progress("sim.patterns");
Progress& progress(const std::string& name);

/// One merged progress row, as reported in heartbeats.
struct ProgressRow {
  std::string name;
  std::int64_t done = 0;
  std::int64_t total = 0;
};

/// Sorted-by-name snapshot of every registered progress counter.
std::vector<ProgressRow> progress_snapshot();

/// Zeroes done and total on every registered counter (handles stay valid).
void progress_reset();

/// Labels subsequent heartbeats with the pipeline phase ("synth", "atpg",
/// "report", ...). Must be a string literal or otherwise outlive the run.
void telemetry_set_phase(const char* phase);
const char* telemetry_phase();

// -- shared stderr writer ----------------------------------------------------
//
// Three producers target stderr concurrently: the --progress TTY status
// line and a heartbeat stream pointed at "-" (both from the sampler
// thread), and the structured logger (from any worker). Interleaved
// fwrite calls can shear one producer's line through another's, so all
// of them funnel through this single mutex-guarded writer: one call, one
// contiguous byte range on the stream.

/// Writes `[data, data+len)` to stderr as one unit (single fwrite +
/// fflush under a process-wide mutex).
void stderr_write(const char* data, std::size_t len);
inline void stderr_write(const std::string& s) {
  stderr_write(s.data(), s.size());
}

struct TelemetryOptions {
  /// Heartbeat JSONL destination: a file path, "-" for stderr, or empty
  /// for no heartbeat stream (the thread still runs for sampler/watchdog).
  std::string heartbeat_path;
  int interval_ms = 250;   ///< heartbeat cadence
  long watchdog_ms = 0;    ///< 0 disables the stall watchdog
  bool tty_progress = false;  ///< live single-line progress view on stderr
  /// Called from the sampler thread every tick (~5 ms when set); the CLI
  /// points this at observe::Profiler::sample().
  std::function<void()> sampler;
  /// Called once per stall episode, after the stall record is written.
  std::function<void()> on_stall;
};

/// Enables progress counters and starts the sampler thread. Creates parent
/// directories for heartbeat_path. Returns false (and starts nothing) if
/// the heartbeat destination cannot be opened. At most one telemetry
/// session runs at a time; a second start while active fails.
bool telemetry_start(const TelemetryOptions& opts);

/// Emits a final heartbeat, stops the thread, closes the stream, and
/// disables progress counters. Safe to call when not active.
void telemetry_stop();
bool telemetry_active();

/// Heartbeat lines emitted by the current/most recent session (stall
/// records included). For tests and the overhead bench.
long telemetry_heartbeat_count();

/// The most recent heartbeat/stall line emitted by the current or most
/// recent session, without its trailing newline ("" before the first).
/// Failure post-mortems attach this instead of re-deriving the live view.
std::string telemetry_last_line();

// -- fleet job tracking ------------------------------------------------------
//
// A batch orchestrator (the campaign sweep) labels its in-flight work so
// heartbeat lines carry a fleet rollup:
//   "jobs":{"started":8,"done":5,"failed":1,"running":["a.cfg.w4.s1", ...]}
// The section only appears once at least one job has been registered, so
// single-job commands keep their PR-7 heartbeat shape. The running list is
// sorted and capped (kJobsRunningCap) to bound line size.

struct JobsSnapshot {
  std::int64_t started = 0;
  std::int64_t done = 0;
  std::int64_t failed = 0;
  std::vector<std::string> running;  ///< sorted labels
};

/// Max running labels serialized per heartbeat line.
inline constexpr std::size_t kJobsRunningCap = 16;

/// Registers `label` as in flight. Cheap (one mutex + set insert) at
/// job granularity — not for per-pattern work.
void telemetry_job_begin(const std::string& label);
/// Retires `label`; `failed` feeds the rollup's failed counter.
void telemetry_job_end(const std::string& label, bool failed);
JobsSnapshot telemetry_jobs_snapshot();
/// Zeroes the counters and clears the running set (a fresh sweep).
void telemetry_jobs_reset();

// -- crash flush -------------------------------------------------------------

/// Registers `flush` to run at normal exit (std::atexit) and on fatal
/// signals (SEGV/ABRT/FPE/ILL/BUS/INT/TERM), at most once, so --trace /
/// --metrics / --profile artifacts survive a crash or an operator Ctrl-C
/// instead of being silently lost. The handler then restores the default
/// disposition and re-raises, preserving the exit status. Signal-context
/// execution is best-effort (the flushers allocate and take locks — fine
/// for ABRT/INT/TERM, usually fine for a crash, never worse than losing
/// the artifacts). Calling again replaces the flush callback.
void install_crash_flush(std::function<void()> flush);

/// Marks the artifacts as already written by the normal shutdown path, so
/// the atexit pass does not overwrite them.
void disarm_crash_flush();

}  // namespace tsyn::util
