// Deterministic pseudo-random number generation for experiments.
//
// Every stochastic component in tsyn (workload generators, randomized
// heuristics, pseudorandom pattern sources) draws from an explicitly seeded
// Rng so that all experiments are exactly reproducible run-to-run.
#pragma once

#include <cstdint>
#include <vector>

namespace tsyn::util {

/// A small, fast, deterministic PRNG (xoshiro256**).
///
/// We intentionally avoid std::mt19937 default-seeding and
/// std::random_device: reproducibility across platforms matters more than
/// statistical perfection for synthesis heuristics and workload generation.
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield identical streams on every
  /// platform.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int next_int(int lo, int hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p = 0.5);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element index of a non-empty container size.
  std::size_t pick_index(std::size_t size);

 private:
  std::uint64_t s_[4];
};

}  // namespace tsyn::util
