// Plain-text result tables for benchmark harnesses.
//
// Every bench binary reproduces one table/figure of the survey's claims and
// prints it through this formatter so EXPERIMENTS.md entries can be pasted
// verbatim.
#pragma once

#include <string>
#include <vector>

namespace tsyn::util {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; pads or truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with a header rule, columns padded to content width.
  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimal places.
std::string fmt(double v, int decimals = 2);

/// Formats a ratio as "x.yz x" (speedup/overhead factor).
std::string fmt_factor(double v, int decimals = 2);

/// Formats a fraction as a percentage string "97.3%".
std::string fmt_pct(double fraction, int decimals = 1);

}  // namespace tsyn::util
