#include "util/telemetry.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "util/trace.h"

namespace tsyn::util {

namespace detail {
std::atomic<bool> g_progress_enabled{false};
}  // namespace detail

void progress_enable() {
  detail::g_progress_enabled.store(true, std::memory_order_relaxed);
}

void progress_disable() {
  detail::g_progress_enabled.store(false, std::memory_order_relaxed);
}

namespace {

struct ProgressRegistry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Progress>> rows;
};

ProgressRegistry& progress_registry() {
  static ProgressRegistry* r = new ProgressRegistry();  // never dtor'd
  return *r;
}

std::atomic<const char*> g_phase{"run"};

double now_ms() {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

}  // namespace

Progress& progress(const std::string& name) {
  ProgressRegistry& r = progress_registry();
  std::lock_guard<std::mutex> lk(r.mu);
  auto& slot = r.rows[name];
  if (!slot) slot = std::make_unique<Progress>();
  return *slot;
}

std::vector<ProgressRow> progress_snapshot() {
  ProgressRegistry& r = progress_registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::vector<ProgressRow> out;
  out.reserve(r.rows.size());
  for (const auto& [name, p] : r.rows)
    out.push_back({name, p->done(), p->total()});
  return out;  // std::map iteration is already name-sorted
}

void progress_reset() {
  ProgressRegistry& r = progress_registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (auto& [name, p] : r.rows) {
    for (auto& c : p->done_) c.v.store(0, std::memory_order_relaxed);
    p->total_.store(0, std::memory_order_relaxed);
  }
}

void telemetry_set_phase(const char* phase) {
  g_phase.store(phase, std::memory_order_relaxed);
}

const char* telemetry_phase() {
  return g_phase.load(std::memory_order_relaxed);
}

namespace {
std::mutex& stderr_mu() {
  static std::mutex* mu = new std::mutex();  // leaked: usable during exit
  return *mu;
}
}  // namespace

void stderr_write(const char* data, std::size_t len) {
  std::lock_guard<std::mutex> lk(stderr_mu());
  std::fwrite(data, 1, len, stderr);
  std::fflush(stderr);
}

namespace {

/// The fleet job rollup. One mutex is fine at job granularity (a sweep
/// touches this twice per job); the sampler thread snapshots it per line.
struct JobsRegistry {
  std::mutex mu;
  std::int64_t started = 0, done = 0, failed = 0;
  std::multiset<std::string> running;
};

JobsRegistry& jobs_registry() {
  static JobsRegistry* r = new JobsRegistry();  // never dtor'd
  return *r;
}

}  // namespace

void telemetry_job_begin(const std::string& label) {
  JobsRegistry& r = jobs_registry();
  std::lock_guard<std::mutex> lk(r.mu);
  ++r.started;
  r.running.insert(label);
}

void telemetry_job_end(const std::string& label, bool failed) {
  JobsRegistry& r = jobs_registry();
  std::lock_guard<std::mutex> lk(r.mu);
  ++r.done;
  if (failed) ++r.failed;
  const auto it = r.running.find(label);
  if (it != r.running.end()) r.running.erase(it);
}

JobsSnapshot telemetry_jobs_snapshot() {
  JobsRegistry& r = jobs_registry();
  std::lock_guard<std::mutex> lk(r.mu);
  JobsSnapshot s;
  s.started = r.started;
  s.done = r.done;
  s.failed = r.failed;
  s.running.assign(r.running.begin(), r.running.end());  // multiset: sorted
  return s;
}

void telemetry_jobs_reset() {
  JobsRegistry& r = jobs_registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.started = r.done = r.failed = 0;
  r.running.clear();
}

namespace {

/// Per-progress-row rate tracking between heartbeats.
struct RowState {
  std::int64_t last_done = 0;
  double rate_per_s = 0.0;  ///< EWMA, 0 until first observed advance
};

struct TelemetrySession {
  TelemetryOptions opts;
  std::FILE* stream = nullptr;  ///< nullptr when no heartbeat destination
  bool owns_stream = false;
  std::thread thread;
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;

  double start_ms = 0.0;
  long seq = 0;
  std::map<std::string, RowState> row_state;
  bool tty_dirty = false;
};

TelemetrySession* g_session = nullptr;  // guarded by g_session_mu
std::mutex g_session_mu;
std::atomic<long> g_heartbeats{0};

/// Most recent emitted line (newline stripped), for telemetry_last_line().
std::string* g_last_line = new std::string();  // leaked: crash-flush safe
std::mutex g_last_line_mu;

/// One heartbeat/stall line. `stalled_ms` < 0 means a plain heartbeat.
void emit_record(TelemetrySession& s, double t_ms, double stalled_ms) {
  const bool stall = stalled_ms >= 0.0;
  // dt for rate estimation: time since the previous heartbeat (rates are
  // only updated on heartbeats, so stall records reuse the stored ones).
  static thread_local double last_t_ms = 0.0;  // sampler thread only
  const double dt_ms = s.seq == 0 ? t_ms : t_ms - last_t_ms;

  std::string line = "{\"schema\":1,\"type\":\"";
  line += stall ? "stall" : "heartbeat";
  line += "\",\"seq\":";
  line += std::to_string(s.seq);
  line += ",\"t_ms\":";
  append_double(line, t_ms);
  if (stall) {
    line += ",\"stalled_ms\":";
    append_double(line, stalled_ms);
  }
  line += ",\"phase\":\"";
  append_json_escaped(line, telemetry_phase());
  line += "\",\"progress\":[";
  bool first = true;
  for (const ProgressRow& row : progress_snapshot()) {
    RowState& st = s.row_state[row.name];
    // Some producers learn totals late (e.g. tests graded against blocks
    // not pre-registered); never report total < done.
    const std::int64_t total = std::max(row.total, row.done);
    const std::int64_t delta = row.done - st.last_done;
    if (!stall && dt_ms > 0.0) {
      const double inst = static_cast<double>(delta) / (dt_ms / 1e3);
      st.rate_per_s =
          st.rate_per_s == 0.0 ? inst : 0.7 * st.rate_per_s + 0.3 * inst;
    }
    if (!first) line += ',';
    first = false;
    line += "{\"name\":\"";
    append_json_escaped(line, row.name);
    line += "\",\"done\":";
    line += std::to_string(row.done);
    line += ",\"total\":";
    line += std::to_string(total);
    line += ",\"delta\":";
    line += std::to_string(delta);
    line += ",\"rate_per_s\":";
    append_double(line, st.rate_per_s);
    line += ",\"eta_ms\":";
    if (st.rate_per_s > 0.0 && total > row.done) {
      append_double(line,
                    static_cast<double>(total - row.done) / st.rate_per_s * 1e3);
    } else {
      line += "null";
    }
    line += '}';
    if (!stall) st.last_done = row.done;
  }
  line += ']';
  const JobsSnapshot jobs = telemetry_jobs_snapshot();
  if (jobs.started > 0) {
    // Fleet rollup: only present once an orchestrator registered jobs, so
    // single-job heartbeat streams keep their original shape.
    line += ",\"jobs\":{\"started\":";
    line += std::to_string(jobs.started);
    line += ",\"done\":";
    line += std::to_string(jobs.done);
    line += ",\"failed\":";
    line += std::to_string(jobs.failed);
    line += ",\"running\":[";
    const std::size_t shown = std::min(jobs.running.size(), kJobsRunningCap);
    for (std::size_t i = 0; i < shown; ++i) {
      if (i) line += ',';
      line += '"';
      append_json_escaped(line, jobs.running[i]);
      line += '"';
    }
    line += "],\"in_flight\":";
    line += std::to_string(jobs.running.size());
    line += '}';
  }
  if (stall) {
    line += ",\"stacks\":[";
    bool first_stack = true;
    for (const ThreadStack& ts : trace_sample_stacks()) {
      if (!first_stack) line += ',';
      first_stack = false;
      line += "{\"tid\":";
      line += std::to_string(ts.tid);
      line += ",\"frames\":[";
      for (std::size_t i = 0; i < ts.frames.size(); ++i) {
        if (i) line += ',';
        line += '"';
        append_json_escaped(line, ts.frames[i]);
        line += '"';
      }
      line += "]}";
    }
    line += ']';
  }
  const MetricsSnapshot m = metrics().snapshot();
  line += ",\"counters\":{";
  first = true;
  for (const auto& [name, v] : m.counters) {
    if (!first) line += ',';
    first = false;
    line += '"';
    append_json_escaped(line, name);
    line += "\":";
    line += std::to_string(v);
  }
  line += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : m.gauges) {
    if (!first) line += ',';
    first = false;
    line += '"';
    append_json_escaped(line, name);
    line += "\":";
    append_double(line, v);
  }
  line += "}}\n";

  if (!stall) {
    last_t_ms = t_ms;
    ++s.seq;
  }
  ++g_heartbeats;
  {
    std::lock_guard<std::mutex> lk(g_last_line_mu);
    g_last_line->assign(line.data(), line.size() - 1);  // strip the '\n'
  }
  if (s.stream == stderr) {
    stderr_write(line);  // shared writer: never shears the TTY line
  } else if (s.stream) {
    std::fwrite(line.data(), 1, line.size(), s.stream);
    std::fflush(s.stream);  // each line must survive a crash
  }
}

void update_tty(TelemetrySession& s) {
  std::string line = "\r[";
  line += telemetry_phase();
  line += "]";
  for (const ProgressRow& row : progress_snapshot()) {
    const std::int64_t total = std::max(row.total, row.done);
    line += ' ';
    line += row.name;
    line += ' ';
    line += std::to_string(row.done);
    line += '/';
    line += std::to_string(total);
    if (total > 0) {
      char buf[16];
      std::snprintf(buf, sizeof buf, " (%d%%)",
                    static_cast<int>(100 * row.done / total));
      line += buf;
    }
  }
  if (line.size() > 119) line.resize(119);  // 1 for '\r' + 118 visible
  line.resize(121, ' ');  // overwrite any longer previous line
  stderr_write(line);  // one write: heartbeat lines can't land mid-line
  s.tty_dirty = true;
}

void clear_tty(TelemetrySession& s) {
  if (!s.tty_dirty) return;
  std::string wipe = "\r";
  wipe.append(120, ' ');
  wipe += '\r';
  stderr_write(wipe);
  s.tty_dirty = false;
}

std::int64_t progress_done_sum() {
  std::int64_t sum = 0;
  for (const ProgressRow& row : progress_snapshot()) sum += row.done;
  return sum;
}

void sampler_loop(TelemetrySession& s) {
  const double interval = std::max(1, s.opts.interval_ms);
  double tick = interval;
  if (s.opts.sampler) tick = std::min(tick, 5.0);
  if (s.opts.watchdog_ms > 0)
    tick = std::min(tick, std::max(1.0, s.opts.watchdog_ms / 4.0));

  double last_hb = s.start_ms;
  double last_advance = s.start_ms;
  std::int64_t last_sum = progress_done_sum();
  bool stall_fired = false;

  std::unique_lock<std::mutex> lk(s.mu);
  while (!s.stop) {
    s.cv.wait_for(lk, std::chrono::duration<double, std::milli>(tick),
                  [&] { return s.stop; });
    if (s.stop) break;
    lk.unlock();

    if (s.opts.sampler) s.opts.sampler();
    const double now = now_ms();

    const std::int64_t sum = progress_done_sum();
    if (sum != last_sum) {
      last_sum = sum;
      last_advance = now;
      stall_fired = false;  // re-arm for the next episode
    }
    if (s.opts.watchdog_ms > 0 && !stall_fired &&
        now - last_advance >= static_cast<double>(s.opts.watchdog_ms)) {
      emit_record(s, now - s.start_ms, now - last_advance);
      if (s.opts.on_stall) s.opts.on_stall();
      stall_fired = true;
    }
    if (now - last_hb >= interval) {
      emit_record(s, now - s.start_ms, -1.0);
      if (s.opts.tty_progress) update_tty(s);
      last_hb = now;
    }

    lk.lock();
  }
  lk.unlock();
  emit_record(s, now_ms() - s.start_ms, -1.0);  // final state, always
  clear_tty(s);
}

}  // namespace

bool telemetry_start(const TelemetryOptions& opts) {
  std::lock_guard<std::mutex> lk(g_session_mu);
  if (g_session) return false;

  auto s = std::make_unique<TelemetrySession>();
  s->opts = opts;
  if (!opts.heartbeat_path.empty()) {
    if (opts.heartbeat_path == "-") {
      s->stream = stderr;
    } else {
      std::error_code ec;
      const auto parent =
          std::filesystem::path(opts.heartbeat_path).parent_path();
      if (!parent.empty()) std::filesystem::create_directories(parent, ec);
      s->stream = std::fopen(opts.heartbeat_path.c_str(), "w");
      if (!s->stream) return false;
      s->owns_stream = true;
    }
  }
  g_heartbeats.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> llk(g_last_line_mu);
    g_last_line->clear();  // lines are per-session, like the counter
  }
  progress_enable();
  s->start_ms = now_ms();
  TelemetrySession& ref = *s;
  s->thread = std::thread([&ref] { sampler_loop(ref); });
  g_session = s.release();
  return true;
}

void telemetry_stop() {
  TelemetrySession* s;
  {
    std::lock_guard<std::mutex> lk(g_session_mu);
    s = g_session;
    g_session = nullptr;
  }
  if (!s) return;
  {
    std::lock_guard<std::mutex> lk(s->mu);
    s->stop = true;
  }
  s->cv.notify_all();
  s->thread.join();
  if (s->owns_stream) std::fclose(s->stream);
  progress_disable();
  delete s;
}

bool telemetry_active() {
  std::lock_guard<std::mutex> lk(g_session_mu);
  return g_session != nullptr;
}

long telemetry_heartbeat_count() {
  return g_heartbeats.load(std::memory_order_relaxed);
}

std::string telemetry_last_line() {
  std::lock_guard<std::mutex> lk(g_last_line_mu);
  return *g_last_line;
}

// -- crash flush -------------------------------------------------------------

namespace {

std::atomic<bool> g_flush_done{false};
/// Leaked on purpose: a signal handler must never race a destructor.
std::function<void()>* g_flush_fn = nullptr;
std::mutex g_flush_mu;

void run_crash_flush() {
  bool expected = false;
  if (!g_flush_done.compare_exchange_strong(expected, true)) return;
  std::function<void()> fn;
  {
    std::lock_guard<std::mutex> lk(g_flush_mu);
    if (g_flush_fn) fn = *g_flush_fn;
  }
  if (fn) fn();
}

extern "C" void crash_flush_signal_handler(int sig) {
  // Not async-signal-safe in the strict sense (the flushers allocate and
  // take locks); acceptable for ABRT/INT/TERM and usually fine for a
  // crash — never worse than silently losing the artifacts.
  run_crash_flush();
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void install_crash_flush(std::function<void()> flush) {
  {
    std::lock_guard<std::mutex> lk(g_flush_mu);
    if (!g_flush_fn) g_flush_fn = new std::function<void()>();
    *g_flush_fn = std::move(flush);
  }
  g_flush_done.store(false, std::memory_order_relaxed);
  static bool installed = [] {
    std::atexit(run_crash_flush);
    const int sigs[] = {SIGSEGV, SIGABRT, SIGFPE, SIGILL, SIGINT, SIGTERM,
#ifdef SIGBUS
                        SIGBUS,
#endif
    };
    for (int sig : sigs) std::signal(sig, crash_flush_signal_handler);
    return true;
  }();
  (void)installed;
}

void disarm_crash_flush() {
  g_flush_done.store(true, std::memory_order_relaxed);
}

}  // namespace tsyn::util
