#include "testability/loop_avoid.h"

#include <algorithm>
#include <climits>
#include <map>
#include <set>
#include <stdexcept>

#include "cdfg/lifetime.h"
#include "graph/paths.h"

namespace tsyn::testability {

namespace {

/// Reachability in a small adjacency structure, skipping scan registers.
bool reaches(const std::vector<std::set<int>>& adj,
             const std::vector<bool>& scan, int from, int to) {
  if (from == to) return true;
  std::vector<int> stack{from};
  std::set<int> seen{from};
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    if (u >= static_cast<int>(adj.size())) continue;
    for (int v : adj[u]) {
      if (scan[v] || seen.count(v)) continue;
      if (v == to) return true;
      seen.insert(v);
      stack.push_back(v);
    }
  }
  return false;
}

}  // namespace

std::vector<int> loop_aware_register_assignment(
    const cdfg::Cdfg& g, const cdfg::LifetimeAnalysis& lts,
    const std::vector<cdfg::VarId>& scan_vars,
    const std::vector<int>& fu_of_op, bool structural_reg_edges,
    bool scan_reuse_reward) {
  const int n = static_cast<int>(lts.lifetimes.size());

  // Which lifetimes are scan (hold a scan variable)?
  std::vector<bool> scan_lifetime(n, false);
  for (cdfg::VarId v : scan_vars) {
    const int lt = lts.lifetime_of_var[v];
    if (lt >= 0) scan_lifetime[lt] = true;
  }

  // Producer->consumer register edges are STRUCTURAL: a shared FU's mux
  // trees connect every register feeding any of its ports to every
  // register it loads, independent of which operation is active. Copies
  // and boundary transfers add direct register-to-register paths.
  std::vector<std::set<int>> lt_preds(n);
  std::map<int, std::set<int>> fu_inputs;
  std::map<int, std::set<int>> fu_dests;
  for (const cdfg::Operation& op : g.ops()) {
    const int out_lt = lts.lifetime_of_var[op.output];
    if (out_lt < 0) continue;
    const int fu = (structural_reg_edges &&
                    op.id < static_cast<int>(fu_of_op.size()))
                       ? fu_of_op[op.id]
                       : -1;
    if (fu < 0) {
      // Copy (or unbound) op: direct edges only.
      for (cdfg::VarId in : op.inputs) {
        const int in_lt = lts.lifetime_of_var[in];
        if (in_lt >= 0 && in_lt != out_lt) lt_preds[out_lt].insert(in_lt);
      }
      continue;
    }
    fu_dests[fu].insert(out_lt);
    for (cdfg::VarId in : op.inputs) {
      const int in_lt = lts.lifetime_of_var[in];
      if (in_lt >= 0) fu_inputs[fu].insert(in_lt);
    }
  }
  for (const auto& [fu, dests] : fu_dests)
    for (int dest : dests)
      for (int in_lt : fu_inputs[fu])
        if (in_lt != dest) lt_preds[dest].insert(in_lt);
  for (int i = 0; i < n; ++i) {
    const cdfg::StorageLifetime& lt = lts.lifetimes[i];
    if (lt.transfer_from >= 0) {
      const int src = lts.lifetime_of_var[lt.transfer_from];
      if (src >= 0 && src != i) lt_preds[i].insert(src);
    }
  }

  // Assignment order: scan lifetimes first (they anchor the loop-breaking
  // registers), then by interval birth.
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (scan_lifetime[a] != scan_lifetime[b])
      return static_cast<bool>(scan_lifetime[a]);
    if (lts.lifetimes[a].interval.birth != lts.lifetimes[b].interval.birth)
      return lts.lifetimes[a].interval.birth <
             lts.lifetimes[b].interval.birth;
    return a < b;
  });

  std::vector<int> reg_of(n, -1);
  std::vector<std::vector<int>> reg_members;
  std::vector<bool> reg_scan;
  std::vector<std::set<int>> reg_adj;  // register-level edges

  // Area guard: beyond a small slack over the left-edge optimum, opening
  // another register costs more than tolerating a loop — otherwise the
  // assignment dilutes traffic over ever more FU-adjacent registers and
  // makes the S-graph worse, not better.
  std::vector<graph::Interval> intervals;
  for (const auto& lt : lts.lifetimes) intervals.push_back(lt.interval);
  int min_regs = 0;
  graph::left_edge_assign(intervals, lts.num_slots, &min_regs);
  const int reg_budget = min_regs + std::max(2, min_regs / 4);

  auto edges_for = [&](int lt, int candidate_reg) {
    // Register edges this placement would add (both directions).
    std::vector<std::pair<int, int>> edges;
    for (int p : lt_preds[lt])
      if (reg_of[p] >= 0 && reg_of[p] != candidate_reg)
        edges.emplace_back(reg_of[p], candidate_reg);
    for (int other = 0; other < n; ++other) {
      if (reg_of[other] < 0) continue;
      if (lt_preds[other].count(lt) && reg_of[other] != candidate_reg)
        edges.emplace_back(candidate_reg, reg_of[other]);
    }
    return edges;
  };

  for (int lt : order) {
    const bool lt_is_scan = scan_lifetime[lt];
    int best_reg = -1;
    long best_cost = LONG_MAX;
    const int num_regs = static_cast<int>(reg_members.size());
    for (int r = 0; r <= num_regs; ++r) {
      const bool is_new = r == num_regs;
      if (!is_new) {
        // A scan lifetime may only join a scan register and vice versa
        // (scanning a register scans everything in it; keep roles aligned
        // so the scan count stays what the selector intended).
        bool overlap = false;
        for (int m : reg_members[r])
          if (lts.overlap(lt, m)) {
            overlap = true;
            break;
          }
        if (overlap) continue;
        if (reg_scan[r] != lt_is_scan && !reg_scan[r]) continue;
      }
      // Cost: new loops closed (unless this register is scan), then
      // whether a new register is opened; sharing a scan register is
      // rewarded (its paths are broken in test mode anyway — the paper's
      // "maximally reusing existing scan registers").
      long cost = 0;
      if (is_new)
        cost = num_regs < reg_budget ? 30 : 1500;  // soft area guard
      const bool candidate_scan = is_new ? lt_is_scan : reg_scan[r];
      if (scan_reuse_reward && !is_new && candidate_scan && !lt_is_scan)
        cost -= 5;
      if (!candidate_scan) {
        std::vector<bool> scan_mask(reg_members.size() + 1, false);
        for (std::size_t i = 0; i < reg_scan.size(); ++i)
          scan_mask[i] = reg_scan[i];
        for (const auto& [from, to] : edges_for(lt, r)) {
          if (scan_mask[from] || scan_mask[to]) continue;
          if (reaches(reg_adj, scan_mask, to, from)) cost += 1000;
        }
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_reg = r;
      }
    }
    // Place.
    if (best_reg == static_cast<int>(reg_members.size())) {
      reg_members.emplace_back();
      reg_scan.push_back(lt_is_scan);
      reg_adj.emplace_back();
    }
    reg_of[lt] = best_reg;
    reg_members[best_reg].push_back(lt);
    if (lt_is_scan) reg_scan[best_reg] = true;
    for (const auto& [from, to] : edges_for(lt, best_reg)) {
      while (static_cast<int>(reg_adj.size()) <= std::max(from, to))
        reg_adj.emplace_back();
      reg_adj[from].insert(to);
    }
  }
  return reg_of;
}

namespace {

/// One greedy scheduling attempt at a fixed deadline; throws on dead-end.
LoopAvoidResult loop_avoiding_attempt(const cdfg::Cdfg& g,
                                      const LoopAvoidOptions& opts,
                                      int deadline) {
  const hls::Schedule asap = hls::asap_schedule(g);
  const hls::Schedule alap = hls::alap_schedule(
      g, std::max(deadline, hls::critical_path_length(g)));

  // FU instances per constrained type.
  std::map<cdfg::FuType, std::vector<int>> fu_ids;
  int num_fus = 0;
  auto fus_of_type = [&](cdfg::FuType t) -> std::vector<int>& {
    auto it = fu_ids.find(t);
    if (it == fu_ids.end()) {
      const int count = std::min(opts.resources.get(t), g.num_ops());
      std::vector<int> ids;
      for (int i = 0; i < count; ++i) ids.push_back(num_fus++);
      it = fu_ids.emplace(t, std::move(ids)).first;
    }
    return it->second;
  };

  const graph::Digraph dep = g.op_dependence_graph(false);
  std::vector<int> step_of(g.num_ops(), -1);
  std::vector<int> fu_of(g.num_ops(), -1);
  // Dynamic deadline: scheduling an op tightens its still-unscheduled
  // predecessors (they must finish strictly earlier).
  std::vector<int> alap_eff = alap.step_of_op;
  // (fu, step) occupancy.
  std::set<std::pair<int, int>> busy;
  // FU dependence edges accumulated so far.
  std::vector<std::set<int>> fu_adj;
  std::vector<bool> fu_no_scan;  // scan registers don't exist at FU level

  auto earliest = [&](cdfg::OpId o) {
    int e = 0;
    for (graph::NodeId p : dep.predecessors(o))
      e = std::max(e, (step_of[p] >= 0 ? step_of[p] : asap.step_of_op[p]) + 1);
    return e;
  };

  int scheduled = 0;
  while (scheduled < g.num_ops()) {
    // Least slack first among unscheduled ops.
    cdfg::OpId pick = -1;
    int pick_slack = INT_MAX;
    for (cdfg::OpId o = 0; o < g.num_ops(); ++o) {
      if (step_of[o] >= 0) continue;
      // Ready ops only (all predecessors placed): scheduling a successor
      // first could wedge its producers against an impossible deadline.
      bool ready = true;
      for (graph::NodeId p : dep.predecessors(o))
        if (step_of[p] < 0) ready = false;
      if (!ready) continue;
      const int slack = alap_eff[o] - earliest(o);
      if (slack < pick_slack) {
        pick_slack = slack;
        pick = o;
      }
    }
    if (pick < 0 || pick_slack < 0)
      throw std::runtime_error("loop-avoiding scheduler infeasible; relax "
                               "the deadline or resources");

    const cdfg::FuType type = cdfg::fu_type_of(g.op(pick).kind);
    const bool needs_fu = g.op(pick).kind != cdfg::OpKind::kCopy;
    const std::vector<int> candidates_fu =
        needs_fu ? fus_of_type(type) : std::vector<int>{-1};

    long best_cost = LONG_MAX;
    int best_fu = -2;
    int best_step = -1;
    for (int fu : candidates_fu) {
      for (int step = earliest(pick); step <= alap_eff[pick]; ++step) {
        if (fu >= 0 && busy.count({fu, step})) continue;
        long cost = 0;
        if (fu >= 0 && opts.fu_cycle_cost) {
          // Testability cost: new FU-level cycles closed by the dependence
          // edges this assignment adds (self-edges are tolerable
          // self-loops).
          while (static_cast<int>(fu_adj.size()) <= fu)
            fu_adj.emplace_back();
          std::vector<bool> no_scan(fu_adj.size(), false);
          for (graph::NodeId p : dep.predecessors(pick)) {
            const int pfu = fu_of[p];
            if (pfu < 0 || pfu == fu) continue;
            if (reaches(fu_adj, no_scan, fu, pfu)) cost += 1000;
          }
          for (graph::NodeId s : dep.successors(pick)) {
            const int sfu = fu_of[s];
            if (sfu < 0 || sfu == fu) continue;
            if (reaches(fu_adj, no_scan, sfu, fu)) cost += 1000;
          }
        }
        // Flexibility cost: occupying a slot other urgent ops may need.
        for (cdfg::OpId o = 0; o < g.num_ops(); ++o) {
          if (o == pick || step_of[o] >= 0) continue;
          if (cdfg::fu_type_of(g.op(o).kind) != type || !needs_fu) continue;
          if (alap.step_of_op[o] == step) ++cost;
        }
        // Mild preference for earlier steps (keeps lifetimes short).
        cost += step;
        if (cost < best_cost) {
          best_cost = cost;
          best_fu = fu;
          best_step = step;
        }
      }
    }
    if (best_fu == -2)
      throw std::runtime_error("no feasible (FU, step) pair; relax limits");

    step_of[pick] = best_step;
    fu_of[pick] = best_fu;
    for (graph::NodeId p : dep.predecessors(pick))
      if (step_of[p] < 0) alap_eff[p] = std::min(alap_eff[p], best_step - 1);
    if (best_fu >= 0) {
      busy.insert({best_fu, best_step});
      while (static_cast<int>(fu_adj.size()) <= best_fu)
        fu_adj.emplace_back();
      for (graph::NodeId p : dep.predecessors(pick))
        if (fu_of[p] >= 0 && fu_of[p] != best_fu)
          fu_adj[fu_of[p]].insert(best_fu);
      for (graph::NodeId s : dep.successors(pick))
        if (fu_of[s] >= 0 && fu_of[s] != best_fu)
          fu_adj[best_fu].insert(fu_of[s]);
    }
    ++scheduled;
  }

  LoopAvoidResult result;
  result.schedule.num_steps =
      1 + *std::max_element(step_of.begin(), step_of.end());
  result.schedule.num_steps = std::max(result.schedule.num_steps, deadline);
  result.schedule.step_of_op = std::move(step_of);

  // Compact FU ids (drop unused instances).
  std::vector<int> remap(num_fus, -1);
  int next = 0;
  for (cdfg::OpId o = 0; o < g.num_ops(); ++o)
    if (fu_of[o] >= 0 && remap[fu_of[o]] < 0) remap[fu_of[o]] = next++;
  for (cdfg::OpId o = 0; o < g.num_ops(); ++o)
    if (fu_of[o] >= 0) fu_of[o] = remap[fu_of[o]];

  result.binding =
      hls::make_binding_with_fu_map(g, result.schedule, fu_of);
  const std::vector<int> reg_map = loop_aware_register_assignment(
      g, result.binding.lifetimes, opts.scan_vars, result.binding.fu_of_op,
      opts.structural_reg_edges, opts.scan_reuse_reward);
  hls::rebind_registers(g, result.binding, reg_map);
  hls::validate_binding(g, result.schedule, result.binding);
  return result;
}

}  // namespace

LoopAvoidResult loop_avoiding_synthesis(const cdfg::Cdfg& g,
                                        const LoopAvoidOptions& opts) {
  // Default deadline: the shortest length the allocation can meet (the
  // critical path alone may be infeasible under tight resources). The
  // greedy least-slack order can still dead-end at a tight deadline; relax
  // by one step and retry, bounded by the trivial serial schedule.
  int deadline =
      opts.num_steps > 0
          ? opts.num_steps
          : std::max(hls::critical_path_length(g),
                     hls::list_schedule(g, opts.resources).num_steps);
  const int limit = deadline + g.num_ops() + 1;
  for (; deadline <= limit; ++deadline) {
    try {
      return loop_avoiding_attempt(g, opts, deadline);
    } catch (const std::runtime_error&) {
      // dead-end: relax the deadline
    }
  }
  throw std::runtime_error("loop-avoiding synthesis failed to converge");
}

}  // namespace tsyn::testability
