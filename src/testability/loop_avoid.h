// Loop-avoiding simultaneous scheduling and assignment (§3.3.2, [33]).
//
// Hardware sharing can create assignment loops in the data path even when
// the CDFG is loop-free (the paper's Figure 1). Potkonjak, Dey & Roy avoid
// them during synthesis: operations are scheduled and assigned together,
// least-slack first, choosing the (FU, step) pair whose testability cost —
// new loops closed in the FU dependence structure — is smallest; register
// assignment then places lifetimes so no register-level loop forms, reusing
// scan registers (which break loops for free) wherever possible.
#pragma once

#include <vector>

#include "cdfg/ir.h"
#include "hls/binding.h"
#include "hls/schedule.h"

namespace tsyn::testability {

struct LoopAvoidOptions {
  hls::Resources resources;
  /// Schedule deadline; 0 = critical path length.
  int num_steps = 0;
  /// Variables already chosen to be scanned (their registers break loops
  /// at no extra cost and are preferentially reused).
  std::vector<cdfg::VarId> scan_vars;

  // --- ablation knobs (DESIGN.md: each ON by default) ---
  /// Charge candidate (FU, step) pairs for FU-level cycles they close.
  bool fu_cycle_cost = true;
  /// Model the structural mux cross-product when placing registers (off
  /// falls back to per-operation producer/consumer edges only).
  bool structural_reg_edges = true;
  /// Reward placing non-scan lifetimes into scan registers.
  bool scan_reuse_reward = true;
};

struct LoopAvoidResult {
  hls::Schedule schedule;
  hls::Binding binding;
};

/// Runs the combined scheduling+assignment flow.
LoopAvoidResult loop_avoiding_synthesis(const cdfg::Cdfg& g,
                                        const LoopAvoidOptions& opts);

/// The register-assignment half on its own: assigns lifetimes to registers
/// minimizing register-level loop formation (edges through scan registers
/// do not count). `fu_of_op` supplies the module sharing structure, whose
/// mux trees create register-to-register paths beyond the data-dependence
/// pairs. Usable on any schedule/FU binding.
std::vector<int> loop_aware_register_assignment(
    const cdfg::Cdfg& g, const cdfg::LifetimeAnalysis& lts,
    const std::vector<cdfg::VarId>& scan_vars,
    const std::vector<int>& fu_of_op, bool structural_reg_edges = true,
    bool scan_reuse_reward = true);

}  // namespace tsyn::testability
