#include "testability/transform.h"

#include <algorithm>

#include "cdfg/lifetime.h"
#include "hls/schedule.h"

namespace tsyn::testability {

namespace {

cdfg::LifetimeAnalysis estimate(const cdfg::Cdfg& g) {
  const hls::Schedule s = hls::asap_schedule(g);
  return cdfg::analyze_lifetimes(g, s.step_of_op, std::max(s.num_steps, 1));
}

/// The CDFG step at which a scan variable's stored value is born (def step
/// of a temp/update, or 0 for inputs/states read at iteration start).
int birth_step(const cdfg::Cdfg& g, const hls::Schedule& s, cdfg::VarId v) {
  const cdfg::Variable& var = g.var(v);
  if (var.kind == cdfg::VarKind::kTemp && var.def_op >= 0)
    return s.step_of_op[var.def_op];
  return -1;  // available from the start
}

cdfg::VarId zero_constant(cdfg::Cdfg& g) {
  for (const cdfg::Variable& v : g.vars())
    if (v.kind == cdfg::VarKind::kConstant && v.constant_value == 0)
      return v.id;
  return g.add_constant("__zero", 0);
}

}  // namespace

DeflectionResult insert_deflections(
    const cdfg::Cdfg& g, const std::vector<cdfg::VarId>& scan_vars) {
  DeflectionResult result{g, 0};
  cdfg::Cdfg& t = result.transformed;

  const int baseline_cp = hls::critical_path_length(g);

  bool progress = true;
  int guard = 0;
  while (progress && guard++ < 32) {
    progress = false;
    const hls::Schedule asap = hls::asap_schedule(t);
    const cdfg::LifetimeAnalysis lts = estimate(t);

    // Find an overlapping pair of scan variables.
    for (std::size_t i = 0; i < scan_vars.size() && !progress; ++i) {
      for (std::size_t j = i + 1; j < scan_vars.size() && !progress; ++j) {
        const int la = lts.lifetime_of_var[scan_vars[i]];
        const int lb = lts.lifetime_of_var[scan_vars[j]];
        if (la < 0 || lb < 0 || la == lb) continue;
        if (!lts.overlap(la, lb)) continue;

        // Try shortening either one by deflecting its late consumers.
        for (const cdfg::VarId victim : {scan_vars[i], scan_vars[j]}) {
          const int born = birth_step(t, asap, victim);
          // Late consumers: executed two or more steps after the value is
          // produced (a deflection at born+1 can feed them instead).
          std::vector<cdfg::OpId> late;
          for (cdfg::OpId use : t.var(victim).uses)
            if (asap.step_of_op[use] >= born + 2) late.push_back(use);
          if (late.empty()) continue;

          // Tentatively transform a copy; keep it only if the critical
          // path is unchanged.
          cdfg::Cdfg candidate = t;
          const cdfg::VarId zero = zero_constant(candidate);
          const cdfg::VarId defl = candidate.add_op(
              cdfg::OpKind::kAdd,
              "__defl" + std::to_string(result.inserted) + "_" +
                  candidate.var(victim).name,
              {victim, zero});
          for (cdfg::OpId use : late) {
            const cdfg::Operation& op = candidate.op(use);
            for (std::size_t p = 0; p < op.inputs.size(); ++p)
              if (op.inputs[p] == victim)
                candidate.replace_op_input(use, p, defl);
          }
          candidate.validate();
          if (hls::critical_path_length(candidate) > baseline_cp) continue;

          // Accept only if the overlap actually went away.
          const cdfg::LifetimeAnalysis new_lts = estimate(candidate);
          const int na = new_lts.lifetime_of_var[scan_vars[i]];
          const int nb = new_lts.lifetime_of_var[scan_vars[j]];
          if (na >= 0 && nb >= 0 && na != nb && new_lts.overlap(na, nb))
            continue;
          t = std::move(candidate);
          ++result.inserted;
          progress = true;
          break;
        }
      }
    }
  }
  return result;
}

}  // namespace tsyn::testability
