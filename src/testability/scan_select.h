// Scan-variable selection for breaking CDFG loops (§3.3.1).
//
// Three selectors with one contract — return a set of CDFG variables whose
// registers will be made scannable, breaking every data-dependency loop:
//
//  * MFVS baseline: treat the variable dependence graph exactly like a
//    gate-level S-graph and pick a minimum feedback vertex set ([10],[22]
//    transplanted to the CDFG). Ignores register sharing entirely.
//  * Loop-cutting / sharing effectiveness ([33]): greedily pick variables
//    that cut many loops AND can share scan registers with other
//    candidates, so fewer physical scan registers result.
//  * Boundary variables ([24]): cut loops at the loop-carried state
//    variables (the loop "boundary"), preferring short lifetimes so
//    intermediate variables can pack into the scan registers.
//
// The number that matters downstream is not |scan vars| but the number of
// scan *registers* after binding — count_scan_registers reports it.
#pragma once

#include <vector>

#include "cdfg/ir.h"
#include "hls/binding.h"
#include "rtl/datapath.h"

namespace tsyn::testability {

/// Gate-level-style baseline: (near-)minimum feedback vertex set over the
/// variable dependence graph.
std::vector<cdfg::VarId> select_scan_vars_mfvs(const cdfg::Cdfg& g);

/// [33]: greedy selection by loop-cutting effectiveness combined with
/// register-sharing effectiveness estimated from ASAP lifetimes.
std::vector<cdfg::VarId> select_scan_vars_loopcut(const cdfg::Cdfg& g);

/// [24]: boundary (state) variables chosen by greedy loop cover,
/// shorter-estimated-lifetime first.
std::vector<cdfg::VarId> select_scan_vars_boundary(const cdfg::Cdfg& g);

/// Interior-temp selection: breaks loops at plain temporaries where
/// possible (falling back to states only for loops without one). Interior
/// lifetimes do not span the iteration boundary, so they can share scan
/// registers — the precondition the deflection transformation of [16]
/// exploits.
std::vector<cdfg::VarId> select_scan_vars_interior(const cdfg::Cdfg& g);

/// Marks the registers holding any scan variable as scan registers in the
/// binding's register map and returns their count.
int count_scan_registers(const cdfg::Cdfg& g, const hls::Binding& b,
                         const std::vector<cdfg::VarId>& scan_vars);

/// Minimum scan registers the selection can pack into under the given
/// lifetimes (greedy first-fit by overlap) — the quantity the sharing
/// measures of [33] and the transformation of [16] optimize.
int min_scan_registers(const cdfg::LifetimeAnalysis& lts,
                       const std::vector<cdfg::VarId>& scan_vars);

/// Applies scan configuration to a datapath: every register holding a scan
/// variable gets test_kind = kScan. Returns the number of scan registers.
int apply_scan(const cdfg::Cdfg& g, const hls::Binding& b,
               const std::vector<cdfg::VarId>& scan_vars,
               rtl::Datapath& dp);

}  // namespace tsyn::testability
