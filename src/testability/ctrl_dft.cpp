#include "testability/ctrl_dft.h"

namespace tsyn::testability {

ControllerDftResult apply_controller_dft(rtl::Controller& controller) {
  ControllerDftResult r;
  r.conflicts_before =
      static_cast<int>(rtl::find_pair_conflicts(controller).size());
  r.pair_coverage_before = rtl::pair_coverage(controller);
  r.vectors_added = rtl::add_conflict_resolving_vectors(controller);
  r.conflicts_after =
      static_cast<int>(rtl::find_pair_conflicts(controller).size());
  r.pair_coverage_after = rtl::pair_coverage(controller);
  return r;
}

}  // namespace tsyn::testability
