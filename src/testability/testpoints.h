// Non-scan DFT with k-level test points (§4.2, [15]).
//
// Dey & Potkonjak observe that a data-path loop need not contain a directly
// (k=0) accessible register: it suffices that every loop is k-level
// controllable and observable — some register in it can be set to an
// arbitrary value within k cycles from direct controls, and some register
// read within k cycles at direct observations. Test points (implemented
// with register files and constants rather than scan) are inserted only
// until that holds, which needs far fewer insertions than per-loop scan.
#pragma once

#include <vector>

#include "rtl/datapath.h"

namespace tsyn::testability {

/// Register-level distances: cycles to control / observe each register.
struct CoDistances {
  std::vector<int> control;  ///< -1 = uncontrollable
  std::vector<int> observe;  ///< -1 = unobservable
};

/// Control distance = BFS from input registers and control points along the
/// S-graph; observe distance = BFS to output registers and observe points.
CoDistances co_distances(const rtl::Datapath& dp,
                         const std::vector<int>& control_points,
                         const std::vector<int>& observe_points);

/// Number of S-graph loops that are NOT k-level controllable+observable.
int klevel_violations(const rtl::Datapath& dp, int k,
                      const std::vector<int>& control_points = {},
                      const std::vector<int>& observe_points = {});

struct TestPointResult {
  std::vector<int> control_point_regs;
  std::vector<int> observe_point_regs;
  int total() const {
    return static_cast<int>(control_point_regs.size() +
                            observe_point_regs.size());
  }
};

/// Greedy insertion until every loop is k-level C/O. With apply=true the
/// datapath is mutated: control points gain a primary-input driver, observe
/// points a primary output, so gate-level coverage can be measured.
TestPointResult insert_klevel_test_points(rtl::Datapath& dp, int k,
                                          bool apply = true);

}  // namespace tsyn::testability
