#include "testability/mobility_sched.h"

#include <algorithm>
#include <stdexcept>

#include "cdfg/lifetime.h"
#include "graph/paths.h"
#include "hls/fds.h"
#include "testability/reg_assign.h"

namespace tsyn::testability {

namespace {

/// Cost of a candidate schedule: extra (non-I/O) registers dominate, total
/// registers break ties — both estimated through the I/O-maximizing
/// assignment the final binding will use.
long schedule_cost(const cdfg::Cdfg& g, const hls::Schedule& s) {
  const cdfg::LifetimeAnalysis lts =
      cdfg::analyze_lifetimes(g, s.step_of_op, s.num_steps);
  const IoAssignResult a = io_maximizing_assignment(lts);
  return static_cast<long>(a.num_regs - a.num_io_regs) * 100 + a.num_regs;
}

bool schedule_feasible(const cdfg::Cdfg& g, const hls::Schedule& s,
                       const hls::Resources& res) {
  const graph::Digraph dep = g.op_dependence_graph(false);
  for (cdfg::OpId o = 0; o < g.num_ops(); ++o)
    for (graph::NodeId p : dep.predecessors(o))
      if (s.step_of_op[p] >= s.step_of_op[o]) return false;
  for (const auto& [type, used] : hls::peak_resource_usage(g, s))
    if (used > res.get(type)) return false;
  return true;
}

}  // namespace

hls::Schedule mobility_path_schedule(const cdfg::Cdfg& g, int num_steps,
                                     const hls::Resources& res) {
  if (num_steps < hls::critical_path_length(g))
    throw std::runtime_error("deadline below critical path length");

  // Start from the best feasible seed among ALAP (late intermediates =
  // short intermediate lifetimes), FDS, and the list schedule.
  std::vector<hls::Schedule> seeds;
  seeds.push_back(hls::alap_schedule(g, num_steps));
  seeds.push_back(hls::force_directed_schedule(g, num_steps));
  {
    hls::Schedule listed = hls::list_schedule(g, res);
    if (listed.num_steps <= num_steps) {
      listed.num_steps = num_steps;
      seeds.push_back(std::move(listed));
    }
  }
  hls::Schedule best;
  long best_cost = 0;
  bool have = false;
  for (hls::Schedule& seed : seeds) {
    if (!schedule_feasible(g, seed, res)) continue;
    const long cost = schedule_cost(g, seed);
    if (!have || cost < best_cost) {
      best = std::move(seed);
      best_cost = cost;
      have = true;
    }
  }
  if (!have) throw std::runtime_error("resources too tight for the deadline");

  // Window-constrained iterative improvement: move one op at a time to the
  // step that lowers the register cost most; repeat to a fixed point.
  const hls::Schedule asap = hls::asap_schedule(g);
  const hls::Schedule alap = hls::alap_schedule(g, num_steps);
  bool improved = true;
  int rounds = 0;
  while (improved && rounds++ < 20) {
    improved = false;
    for (cdfg::OpId o = 0; o < g.num_ops(); ++o) {
      const int lo = asap.step_of_op[o];
      const int hi = alap.step_of_op[o];
      for (int step = lo; step <= hi; ++step) {
        if (step == best.step_of_op[o]) continue;
        hls::Schedule candidate = best;
        candidate.step_of_op[o] = step;
        if (!schedule_feasible(g, candidate, res)) continue;
        const long cost = schedule_cost(g, candidate);
        if (cost < best_cost) {
          best = std::move(candidate);
          best_cost = cost;
          improved = true;
        }
      }
    }
  }
  return best;
}

}  // namespace tsyn::testability
