#include "testability/rtl_scan.h"

#include <algorithm>
#include <set>

#include "graph/mfvs.h"
#include "graph/scc.h"
#include "rtl/sgraph.h"

namespace tsyn::testability {

namespace {

/// S-graph edge annotated with the FU it passes through (-1 = direct
/// register-to-register path).
struct LabeledEdge {
  int from = 0;
  int to = 0;
  int via_fu = -1;
};

std::vector<LabeledEdge> labeled_sgraph_edges(const rtl::Datapath& dp) {
  std::vector<LabeledEdge> edges;
  for (int r = 0; r < dp.num_regs(); ++r) {
    for (const rtl::Source& s : dp.regs[r].drivers) {
      if (s.kind == rtl::Source::Kind::kRegister) {
        edges.push_back({s.index, r, -1});
      } else if (s.kind == rtl::Source::Kind::kFu) {
        const rtl::FuInfo& fu = dp.fus[s.index];
        std::set<int> sources;
        for (const auto& port : fu.port_drivers)
          for (const rtl::Source& ps : port)
            if (ps.kind == rtl::Source::Kind::kRegister)
              sources.insert(ps.index);
        for (int src : sources) edges.push_back({src, r, s.index});
      }
    }
  }
  return edges;
}

graph::Digraph filtered_graph(const rtl::Datapath& dp,
                              const std::vector<LabeledEdge>& edges,
                              const std::set<int>& cut_regs,
                              const std::set<int>& cut_fus) {
  graph::Digraph g(dp.num_regs());
  for (const LabeledEdge& e : edges) {
    if (cut_regs.count(e.from) || cut_regs.count(e.to)) continue;
    if (e.via_fu >= 0 && cut_fus.count(e.via_fu)) continue;
    g.add_edge_unique(e.from, e.to);
  }
  return g;
}

int cyclic_node_count(const graph::Digraph& g) {
  return static_cast<int>(
      graph::nodes_on_cycles(g, /*ignore_self_loops=*/true).size());
}

}  // namespace

RtlScanResult rtl_partial_scan(rtl::Datapath& dp, bool apply) {
  const std::vector<LabeledEdge> edges = labeled_sgraph_edges(dp);
  std::set<int> cut_regs;
  std::set<int> cut_fus;
  RtlScanResult result;

  for (;;) {
    const graph::Digraph current =
        filtered_graph(dp, edges, cut_regs, cut_fus);
    const int before = cyclic_node_count(current);
    if (before == 0) break;

    // Candidates: any register on a cycle; any FU carrying a cycle edge.
    int best_gain = 0;
    int best_reg = -1;
    int best_fu = -1;
    const std::vector<graph::NodeId> cyclic =
        graph::nodes_on_cycles(current, true);
    for (graph::NodeId r : cyclic) {
      std::set<int> regs2 = cut_regs;
      regs2.insert(r);
      const int after =
          cyclic_node_count(filtered_graph(dp, edges, regs2, cut_fus));
      if (before - after > best_gain) {
        best_gain = before - after;
        best_reg = r;
        best_fu = -1;
      }
    }
    for (int f = 0; f < dp.num_fus(); ++f) {
      if (cut_fus.count(f)) continue;
      std::set<int> fus2 = cut_fus;
      fus2.insert(f);
      const int after =
          cyclic_node_count(filtered_graph(dp, edges, cut_regs, fus2));
      // Strict improvement ties go to the transparent register: it leaves
      // all functional registers untouched.
      if (before - after >= std::max(best_gain, 1) &&
          (best_reg < 0 || before - after > best_gain)) {
        best_gain = before - after;
        best_fu = f;
        best_reg = -1;
      }
    }
    if (best_reg < 0 && best_fu < 0) {
      // Fall back: cut an arbitrary cyclic register (guaranteed progress
      // since removing a cyclic node destroys at least its own cycles).
      best_reg = cyclic.front();
    }
    if (best_fu >= 0) {
      cut_fus.insert(best_fu);
      result.transparent_fus.push_back(best_fu);
    } else {
      cut_regs.insert(best_reg);
      result.scan_regs.push_back(best_reg);
    }
  }

  if (apply)
    for (int r : result.scan_regs)
      dp.regs[r].test_kind = rtl::TestRegKind::kScan;
  std::sort(result.scan_regs.begin(), result.scan_regs.end());
  std::sort(result.transparent_fus.begin(), result.transparent_fus.end());
  return result;
}

std::vector<int> register_only_partial_scan(const rtl::Datapath& dp) {
  const graph::Digraph s = rtl::build_sgraph(dp);
  return graph::exact_mfvs(s, {.ignore_self_loops = true});
}

}  // namespace tsyn::testability
