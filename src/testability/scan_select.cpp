#include "testability/scan_select.h"

#include <algorithm>
#include <set>

#include "cdfg/lifetime.h"
#include "cdfg/loops.h"
#include "graph/mfvs.h"
#include "hls/schedule.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace tsyn::testability {

namespace {

/// Records how many variables a selection strategy picked.
void publish_selection(std::size_t count) {
  util::metrics().gauge("scan.selected_vars").set(static_cast<long>(count));
  util::metrics().counter("scan.select.runs").add();
}

}  // namespace

std::vector<cdfg::VarId> select_scan_vars_mfvs(const cdfg::Cdfg& g) {
  TSYN_SPAN("scan.select.mfvs");
  const graph::Digraph d = cdfg::var_dependence_graph(g);
  std::vector<cdfg::VarId> selected =
      graph::exact_mfvs(d, {.ignore_self_loops = false});
  publish_selection(selected.size());
  return selected;
}

namespace {

/// ASAP-based lifetime estimate used before final scheduling exists.
cdfg::LifetimeAnalysis estimate_lifetimes(const cdfg::Cdfg& g) {
  const hls::Schedule s = hls::asap_schedule(g);
  return cdfg::analyze_lifetimes(g, s.step_of_op, std::max(s.num_steps, 1));
}

/// Loops that contain variable v.
int loops_cut(const std::vector<graph::Cycle>& loops,
              const std::vector<bool>& covered, cdfg::VarId v) {
  int cut = 0;
  for (std::size_t i = 0; i < loops.size(); ++i) {
    if (covered[i]) continue;
    if (std::find(loops[i].begin(), loops[i].end(), v) != loops[i].end())
      ++cut;
  }
  return cut;
}

void mark_covered(const std::vector<graph::Cycle>& loops,
                  std::vector<bool>& covered, cdfg::VarId v) {
  for (std::size_t i = 0; i < loops.size(); ++i)
    if (!covered[i] &&
        std::find(loops[i].begin(), loops[i].end(), v) != loops[i].end())
      covered[i] = true;
}

/// Estimated number of scan registers a selection needs: greedy first-fit
/// packing of the selected variables' (estimated) lifetimes.
int estimate_scan_registers(const cdfg::LifetimeAnalysis& lts,
                            const std::vector<cdfg::VarId>& vars) {
  // Distinct lifetimes first (two vars may share one merged lifetime).
  std::vector<int> lifetimes;
  for (cdfg::VarId v : vars) {
    const int lt = lts.lifetime_of_var[v];
    if (lt >= 0 &&
        std::find(lifetimes.begin(), lifetimes.end(), lt) == lifetimes.end())
      lifetimes.push_back(lt);
  }
  // Greedy first-fit packing by overlap.
  std::vector<std::vector<int>> regs;
  for (int lt : lifetimes) {
    bool placed = false;
    for (auto& members : regs) {
      bool clash = false;
      for (int m : members)
        if (lts.overlap(m, lt)) {
          clash = true;
          break;
        }
      if (!clash) {
        members.push_back(lt);
        placed = true;
        break;
      }
    }
    if (!placed) regs.push_back({lt});
  }
  return static_cast<int>(regs.size());
}

int estimated_lifetime_length(const cdfg::LifetimeAnalysis& lts,
                              cdfg::VarId v) {
  const int lt = lts.lifetime_of_var[v];
  if (lt < 0) return 0;
  const graph::Interval& iv = lts.lifetimes[lt].interval;
  if (!iv.wraps()) return iv.death - iv.birth;
  return (lts.num_slots - iv.birth) + iv.death;
}

}  // namespace

std::vector<cdfg::VarId> select_scan_vars_loopcut(const cdfg::Cdfg& g) {
  TSYN_SPAN("scan.select.loopcut");
  const std::vector<graph::Cycle> loops = cdfg::cdfg_loops(g);
  if (loops.empty()) return {};
  const cdfg::LifetimeAnalysis lts = estimate_lifetimes(g);

  // Candidates: variables on loops that actually occupy a register.
  std::vector<cdfg::VarId> candidates;
  for (cdfg::VarId v : cdfg::vars_on_loops(g))
    if (lts.lifetime_of_var[v] >= 0) candidates.push_back(v);

  std::vector<bool> covered(loops.size(), false);
  std::vector<cdfg::VarId> selected;
  auto overlaps = [&](cdfg::VarId a, cdfg::VarId b) {
    const int la = lts.lifetime_of_var[a];
    const int lb = lts.lifetime_of_var[b];
    if (la < 0 || lb < 0 || la == lb) return la == lb;
    return lts.overlap(la, lb);
  };

  while (std::find(covered.begin(), covered.end(), false) != covered.end()) {
    cdfg::VarId best = -1;
    double best_score = -1;
    for (cdfg::VarId v : candidates) {
      if (std::find(selected.begin(), selected.end(), v) != selected.end())
        continue;
      const int cut = loops_cut(loops, covered, v);
      if (cut == 0) continue;
      // Loop-cutting effectiveness: loops removed per new scan register.
      // Sharing effectiveness: can this variable reuse an already-selected
      // scan register, and how many other candidates could share with it?
      bool reuses_selected = false;
      for (cdfg::VarId s : selected)
        if (!overlaps(v, s)) reuses_selected = true;
      int shareable = 0;
      for (cdfg::VarId c : candidates)
        if (c != v && !overlaps(v, c)) ++shareable;
      const double score =
          cut * 10.0 + (reuses_selected ? 6.0 : 0.0) +
          0.5 * shareable -
          0.1 * estimated_lifetime_length(lts, v);
      if (score > best_score) {
        best_score = score;
        best = v;
      }
    }
    if (best < 0) break;  // no candidate cuts a remaining loop
    selected.push_back(best);
    mark_covered(loops, covered, best);
  }
  std::sort(selected.begin(), selected.end());

  // The objective is scan REGISTERS, not variables: if the plain MFVS
  // transplant happens to pack into fewer registers, take it instead.
  const std::vector<cdfg::VarId> mfvs = select_scan_vars_mfvs(g);
  const int own = estimate_scan_registers(lts, selected);
  const int alt = estimate_scan_registers(lts, mfvs);
  if (alt < own || (alt == own && mfvs.size() < selected.size())) {
    publish_selection(mfvs.size());
    return mfvs;
  }
  publish_selection(selected.size());
  return selected;
}

std::vector<cdfg::VarId> select_scan_vars_boundary(const cdfg::Cdfg& g) {
  TSYN_SPAN("scan.select.boundary");
  const std::vector<graph::Cycle> loops = cdfg::cdfg_loops(g);
  if (loops.empty()) return {};
  const cdfg::LifetimeAnalysis lts = estimate_lifetimes(g);

  std::vector<bool> covered(loops.size(), false);
  std::vector<cdfg::VarId> selected;
  const std::vector<cdfg::VarId> states = g.states();
  for (;;) {
    cdfg::VarId best = -1;
    double best_score = -1;
    for (cdfg::VarId s : states) {
      if (std::find(selected.begin(), selected.end(), s) != selected.end())
        continue;
      const int cut = loops_cut(loops, covered, s);
      if (cut == 0) continue;
      // Prefer maximal cover, then shorter lifetimes (easier sharing with
      // intermediates later).
      const double score =
          cut * 10.0 - 0.1 * estimated_lifetime_length(lts, s);
      if (score > best_score) {
        best_score = score;
        best = s;
      }
    }
    if (best < 0) break;
    selected.push_back(best);
    mark_covered(loops, covered, best);
  }
  // Any loop not through a state variable (possible after transformations):
  // fall back to loop-cut selection for the remainder.
  if (std::find(covered.begin(), covered.end(), false) != covered.end()) {
    for (std::size_t i = 0; i < loops.size(); ++i) {
      if (covered[i]) continue;
      selected.push_back(loops[i].front());
      mark_covered(loops, covered, loops[i].front());
    }
  }
  std::sort(selected.begin(), selected.end());
  publish_selection(selected.size());
  return selected;
}

std::vector<cdfg::VarId> select_scan_vars_interior(const cdfg::Cdfg& g) {
  TSYN_SPAN("scan.select.interior");
  const std::vector<graph::Cycle> loops = cdfg::cdfg_loops(g);
  if (loops.empty()) return {};
  const cdfg::LifetimeAnalysis lts = estimate_lifetimes(g);

  // Candidates: pure temps with a non-state (non-wrapping) lifetime.
  auto is_interior = [&](cdfg::VarId v) {
    if (g.var(v).kind != cdfg::VarKind::kTemp) return false;
    const int lt = lts.lifetime_of_var[v];
    return lt >= 0 && !lts.lifetimes[lt].is_state;
  };

  std::vector<bool> covered(loops.size(), false);
  std::vector<cdfg::VarId> selected;
  for (;;) {
    cdfg::VarId best = -1;
    int best_cut = 0;
    for (cdfg::VarId v : cdfg::vars_on_loops(g)) {
      if (!is_interior(v)) continue;
      if (std::find(selected.begin(), selected.end(), v) != selected.end())
        continue;
      const int cut = loops_cut(loops, covered, v);
      if (cut > best_cut) {
        best_cut = cut;
        best = v;
      }
    }
    if (best < 0) break;
    selected.push_back(best);
    mark_covered(loops, covered, best);
  }
  // Loops with no interior candidate: fall back to their state variables.
  for (std::size_t i = 0; i < loops.size(); ++i) {
    if (covered[i]) continue;
    selected.push_back(loops[i].front());
    mark_covered(loops, covered, loops[i].front());
  }
  std::sort(selected.begin(), selected.end());
  publish_selection(selected.size());
  return selected;
}

int min_scan_registers(const cdfg::LifetimeAnalysis& lts,
                       const std::vector<cdfg::VarId>& scan_vars) {
  return estimate_scan_registers(lts, scan_vars);
}

int count_scan_registers(const cdfg::Cdfg& g, const hls::Binding& b,
                         const std::vector<cdfg::VarId>& scan_vars) {
  std::set<int> regs;
  for (cdfg::VarId v : scan_vars) {
    const int r = b.reg_of_var(v);
    if (r >= 0) regs.insert(r);
  }
  (void)g;
  return static_cast<int>(regs.size());
}

int apply_scan(const cdfg::Cdfg& g, const hls::Binding& b,
               const std::vector<cdfg::VarId>& scan_vars,
               rtl::Datapath& dp) {
  int count = 0;
  std::set<int> regs;
  for (cdfg::VarId v : scan_vars) {
    const int r = b.reg_of_var(v);
    if (r >= 0) regs.insert(r);
  }
  for (int r : regs) {
    if (dp.regs[r].test_kind == rtl::TestRegKind::kNone) {
      dp.regs[r].test_kind = rtl::TestRegKind::kScan;
      ++count;
    }
  }
  (void)g;
  return count;
}

}  // namespace tsyn::testability
