#include "testability/behavior_analysis.h"

#include <algorithm>

namespace tsyn::testability {

namespace {

using cdfg::OpKind;

bool invertible(OpKind k) {
  switch (k) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kXor:
    case OpKind::kNot:
    case OpKind::kNeg:
    case OpKind::kCopy:
      return true;
    default:
      return false;
  }
}

/// Can a fault effect on one operand pass transparently through this op
/// when the side operands are fully controllable?
bool value_transparent(OpKind k) {
  switch (k) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kXor:
    case OpKind::kNot:
    case OpKind::kNeg:
    case OpKind::kCopy:
    case OpKind::kMul:  // side = 1
    case OpKind::kAnd:  // side = all-ones
    case OpKind::kOr:   // side = 0
    case OpKind::kMux:  // select the leg
      return true;
    default:
      return false;  // lt/eq/shl/shr/div collapse information
  }
}

int ctrl_rank(CtrlClass c) {
  switch (c) {
    case CtrlClass::kControllable: return 2;
    case CtrlClass::kPartial: return 1;
    case CtrlClass::kUncontrollable: return 0;
  }
  return 0;
}

int obs_rank(ObsClass o) {
  switch (o) {
    case ObsClass::kObservable: return 2;
    case ObsClass::kPartial: return 1;
    case ObsClass::kUnobservable: return 0;
  }
  return 0;
}

}  // namespace

int BehaviorTestability::count_ctrl(CtrlClass c) const {
  return static_cast<int>(std::count(ctrl.begin(), ctrl.end(), c));
}

int BehaviorTestability::count_obs(ObsClass o) const {
  return static_cast<int>(std::count(obs.begin(), obs.end(), o));
}

BehaviorTestability analyze_behavior(const cdfg::Cdfg& g) {
  BehaviorTestability t;
  t.ctrl.assign(g.num_vars(), CtrlClass::kUncontrollable);
  t.obs.assign(g.num_vars(), ObsClass::kUnobservable);

  // Seeds.
  for (const cdfg::Variable& v : g.vars()) {
    if (v.kind == cdfg::VarKind::kPrimaryInput ||
        v.kind == cdfg::VarKind::kConstant)
      t.ctrl[v.id] = CtrlClass::kControllable;
    if (v.is_output) t.obs[v.id] = ObsClass::kObservable;
  }

  // Monotone fixpoint (the graph has loops via state variables).
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < g.num_vars() + 4) {
    changed = false;

    // Controllability: forward.
    for (const cdfg::Operation& op : g.ops()) {
      CtrlClass out;
      int min_in = 2;
      int max_in = 0;
      for (cdfg::VarId in : op.inputs) {
        min_in = std::min(min_in, ctrl_rank(t.ctrl[in]));
        max_in = std::max(max_in, ctrl_rank(t.ctrl[in]));
      }
      if (invertible(op.kind) && min_in == 2) {
        out = CtrlClass::kControllable;
      } else if (op.kind == OpKind::kMux &&
                 ctrl_rank(t.ctrl[op.inputs[0]]) == 2 &&
                 (ctrl_rank(t.ctrl[op.inputs[1]]) == 2 ||
                  ctrl_rank(t.ctrl[op.inputs[2]]) == 2)) {
        out = CtrlClass::kControllable;
      } else if (max_in >= 1) {
        out = CtrlClass::kPartial;
      } else {
        out = CtrlClass::kUncontrollable;
      }
      if (ctrl_rank(out) > ctrl_rank(t.ctrl[op.output])) {
        t.ctrl[op.output] = out;
        changed = true;
      }
    }
    // State variables inherit their update's controllability (previous
    // iteration's value), capped at partial: the test session cannot pick
    // an arbitrary iteration-start value directly.
    for (cdfg::VarId s : g.states()) {
      const cdfg::VarId upd = g.var(s).update_var;
      CtrlClass out = t.ctrl[upd] == CtrlClass::kUncontrollable
                          ? CtrlClass::kUncontrollable
                          : CtrlClass::kPartial;
      if (ctrl_rank(out) > ctrl_rank(t.ctrl[s])) {
        t.ctrl[s] = out;
        changed = true;
      }
    }

    // Observability: backward through consumers.
    for (const cdfg::Operation& op : g.ops()) {
      const ObsClass out_obs = t.obs[op.output];
      if (out_obs == ObsClass::kUnobservable) continue;
      for (std::size_t i = 0; i < op.inputs.size(); ++i) {
        ObsClass in_obs = ObsClass::kPartial;
        if (value_transparent(op.kind)) {
          // Fully transparent only if every side operand is controllable.
          bool sides_ok = true;
          for (std::size_t jj = 0; jj < op.inputs.size(); ++jj)
            if (jj != i &&
                t.ctrl[op.inputs[jj]] != CtrlClass::kControllable)
              sides_ok = false;
          in_obs = (sides_ok && out_obs == ObsClass::kObservable)
                       ? ObsClass::kObservable
                       : ObsClass::kPartial;
        }
        if (obs_rank(in_obs) > obs_rank(t.obs[op.inputs[i]])) {
          t.obs[op.inputs[i]] = in_obs;
          changed = true;
        }
      }
    }
    // A state's update temp is observable if the state itself is read and
    // observable somewhere (the value persists into the next iteration).
    for (cdfg::VarId s : g.states()) {
      const cdfg::VarId upd = g.var(s).update_var;
      ObsClass out = t.obs[s] == ObsClass::kUnobservable
                         ? ObsClass::kUnobservable
                         : ObsClass::kPartial;
      if (obs_rank(out) > obs_rank(t.obs[upd])) {
        t.obs[upd] = out;
        changed = true;
      }
    }
  }
  return t;
}

TestStatementResult add_test_statements(const cdfg::Cdfg& g,
                                        const TestStatementOptions& opts) {
  TestStatementResult result{g, 0, 0};
  cdfg::Cdfg& t = result.transformed;
  const BehaviorTestability before = analyze_behavior(g);

  auto hard_ctrl = [&](cdfg::VarId v) {
    return before.ctrl[v] == CtrlClass::kUncontrollable ||
           (opts.include_partial && before.ctrl[v] == CtrlClass::kPartial);
  };
  auto hard_obs = [&](cdfg::VarId v) {
    return before.obs[v] == ObsClass::kUnobservable ||
           (opts.include_partial && before.obs[v] == ObsClass::kPartial);
  };

  cdfg::VarId test_mode = -1;
  auto ensure_test_mode = [&]() {
    if (test_mode < 0) test_mode = t.add_input("TEST", 1);
    return test_mode;
  };

  const int original_vars = g.num_vars();
  for (cdfg::VarId v = 0; v < original_vars; ++v) {
    const cdfg::Variable& var = g.var(v);
    const bool is_value =
        var.kind == cdfg::VarKind::kTemp || var.kind == cdfg::VarKind::kState;
    if (!is_value) continue;

    if (hard_ctrl(v) && !var.uses.empty()) {
      // v_test = TEST ? tin : v; consumers read v_test.
      const cdfg::VarId tin =
          t.add_input("tin_" + var.name, var.width);
      const cdfg::VarId vt = t.add_op(
          cdfg::OpKind::kMux, "ts_" + var.name,
          {ensure_test_mode(), tin, v});
      for (cdfg::OpId use : g.var(v).uses) {
        const cdfg::Operation& op = t.op(use);
        for (std::size_t p = 0; p < op.inputs.size(); ++p)
          if (op.inputs[p] == v) t.replace_op_input(use, p, vt);
      }
      ++result.injections;
    }
    if (hard_obs(v)) {
      t.mark_output(v);
      ++result.observations;
    }
  }
  t.validate();
  return result;
}

}  // namespace tsyn::testability
