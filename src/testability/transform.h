// Behavioral transformation with deflection operations (§3.4, [16]).
//
// A deflection operation computes the identity (add with 0) and therefore
// preserves the behavior, but it re-times a value: redirecting a variable's
// late consumers through a deflected copy shortens the variable's lifetime.
// Applied to scan variables whose overlapping lifetimes block scan-register
// sharing, the transformed specification needs fewer scan registers than
// the original — at no performance cost (insertions that would stretch the
// critical path are rejected).
#pragma once

#include <vector>

#include "cdfg/ir.h"

namespace tsyn::testability {

struct DeflectionResult {
  cdfg::Cdfg transformed;
  int inserted = 0;  ///< deflection operations added
};

/// Inserts deflection ops so the given scan variables can share scan
/// registers. Variable ids of the original graph remain valid in the
/// transformed graph (new vars/ops are appended).
DeflectionResult insert_deflections(const cdfg::Cdfg& g,
                                    const std::vector<cdfg::VarId>& scan_vars);

}  // namespace tsyn::testability
