// Mobility-path scheduling for testability (§3.2, [26]).
//
// Lee, Wolf & Jha reschedule operations within their mobility windows so
// intermediate lifetimes stop overlapping input/output lifetimes, letting
// more intermediates share I/O registers and shrinking the sequential depth
// between registers. Reimplemented here as window-constrained iterative
// improvement over the I/O-register objective of reg_assign.h.
#pragma once

#include "cdfg/ir.h"
#include "hls/schedule.h"

namespace tsyn::testability {

/// Schedules into `num_steps` (>= critical path), maximizing the number of
/// I/O registers achievable by io_maximizing_assignment and minimizing
/// extra registers, while respecting `res` (pass an unconstrained Resources
/// for time-constrained mode).
hls::Schedule mobility_path_schedule(const cdfg::Cdfg& g, int num_steps,
                                     const hls::Resources& res = {});

}  // namespace tsyn::testability
