// Testability-driven register assignment (§3.2, [25]).
//
// Conventional register allocation minimizes register count only; Lee,
// Wolf, Jha & Acken instead maximize the number of registers directly
// connected to primary I/O: outputs and inputs anchor registers, as many
// intermediate variables as possible share those I/O registers, input and
// output registers merge where lifetimes allow, and only the leftover
// intermediates get extra (hard-to-control) registers.
#pragma once

#include <vector>

#include "cdfg/lifetime.h"

namespace tsyn::testability {

struct IoAssignResult {
  std::vector<int> reg_of_lifetime;
  int num_regs = 0;
  int num_io_regs = 0;  ///< registers holding an input or output lifetime
};

/// The I/O-register-maximizing assignment of [25].
IoAssignResult io_maximizing_assignment(const cdfg::LifetimeAnalysis& lts);

/// Statistics helper: I/O register count of an arbitrary register map.
int io_register_count(const cdfg::LifetimeAnalysis& lts,
                      const std::vector<int>& reg_of_lifetime);

}  // namespace tsyn::testability
