#include "testability/reg_assign.h"

#include <algorithm>
#include <numeric>

#include "graph/matching.h"

namespace tsyn::testability {

namespace {

/// A register under construction: member lifetimes + slot occupancy.
struct Reg {
  std::vector<int> members;
  std::vector<bool> occupied;
  bool is_input = false;
  bool is_output = false;
};

std::vector<bool> mask_of(const graph::Interval& iv, int slots) {
  std::vector<bool> m(slots, false);
  if (!iv.wraps()) {
    for (int s = iv.birth; s < iv.death && s < slots; ++s) m[s] = true;
  } else {
    for (int s = iv.birth; s < slots; ++s) m[s] = true;
    for (int s = 0; s < iv.death; ++s) m[s] = true;
    if (iv.birth == iv.death) std::fill(m.begin(), m.end(), true);
  }
  return m;
}

bool fits(const Reg& reg, const std::vector<bool>& mask) {
  for (std::size_t s = 0; s < mask.size(); ++s)
    if (mask[s] && reg.occupied[s]) return false;
  return true;
}

void place(Reg& reg, int lifetime, const std::vector<bool>& mask) {
  reg.members.push_back(lifetime);
  for (std::size_t s = 0; s < mask.size(); ++s)
    if (mask[s]) reg.occupied[s] = true;
}

}  // namespace

IoAssignResult io_maximizing_assignment(const cdfg::LifetimeAnalysis& lts) {
  const int slots = lts.num_slots;
  const int n = static_cast<int>(lts.lifetimes.size());
  std::vector<std::vector<bool>> masks(n);
  for (int i = 0; i < n; ++i)
    masks[i] = mask_of(lts.lifetimes[i].interval, slots);

  std::vector<Reg> out_regs;
  std::vector<Reg> in_regs;
  std::vector<Reg> extra_regs;
  std::vector<int> intermediates;

  // 1. Every output lifetime anchors an output register; inputs likewise.
  //    (A lifetime can be both — e.g. a state observed at a PO — treat it
  //    as an output register.)
  for (int i = 0; i < n; ++i) {
    const cdfg::StorageLifetime& lt = lts.lifetimes[i];
    if (lt.is_output) {
      Reg r;
      r.occupied.assign(slots, false);
      r.is_output = true;
      r.is_input = lt.is_input;
      place(r, i, masks[i]);
      out_regs.push_back(std::move(r));
    } else if (lt.is_input) {
      Reg r;
      r.occupied.assign(slots, false);
      r.is_input = true;
      place(r, i, masks[i]);
      in_regs.push_back(std::move(r));
    } else {
      intermediates.push_back(i);
    }
  }

  // 2. Pack intermediates into output registers, longest lifetime first
  //    (hardest to place later).
  auto by_length_desc = [&](int a, int b) {
    const auto len = [&](int i) {
      return std::count(masks[i].begin(), masks[i].end(), true);
    };
    return len(a) > len(b);
  };
  std::sort(intermediates.begin(), intermediates.end(), by_length_desc);
  std::vector<int> still_left;
  for (int i : intermediates) {
    bool placed = false;
    for (Reg& r : out_regs)
      if (fits(r, masks[i])) {
        place(r, i, masks[i]);
        placed = true;
        break;
      }
    if (!placed) still_left.push_back(i);
  }

  // 4. Pack the rest into input registers.
  std::vector<int> leftovers;
  for (int i : still_left) {
    bool placed = false;
    for (Reg& r : in_regs)
      if (fits(r, masks[i])) {
        place(r, i, masks[i]);
        placed = true;
        break;
      }
    if (!placed) leftovers.push_back(i);
  }

  // 5. Merge input registers into compatible output registers (maximum
  //    bipartite matching on the no-overlap relation).
  std::vector<std::vector<int>> adj(in_regs.size());
  for (std::size_t a = 0; a < in_regs.size(); ++a)
    for (std::size_t b = 0; b < out_regs.size(); ++b) {
      bool ok = true;
      for (int s = 0; s < slots && ok; ++s)
        ok = !(in_regs[a].occupied[s] && out_regs[b].occupied[s]);
      if (ok) adj[a].push_back(static_cast<int>(b));
    }
  const std::vector<int> match =
      graph::max_bipartite_matching(adj, static_cast<int>(out_regs.size()));
  std::vector<bool> in_merged(in_regs.size(), false);
  for (std::size_t a = 0; a < in_regs.size(); ++a) {
    if (match[a] < 0) continue;
    Reg& dst = out_regs[match[a]];
    for (int m : in_regs[a].members) {
      place(dst, m, masks[m]);
    }
    dst.is_input = true;
    in_merged[a] = true;
  }

  // 6. Leftover intermediates: first-fit into extra registers.
  for (int i : leftovers) {
    bool placed = false;
    for (Reg& r : extra_regs)
      if (fits(r, masks[i])) {
        place(r, i, masks[i]);
        placed = true;
        break;
      }
    if (!placed) {
      Reg r;
      r.occupied.assign(slots, false);
      place(r, i, masks[i]);
      extra_regs.push_back(std::move(r));
    }
  }

  // Emit the final map.
  IoAssignResult result;
  result.reg_of_lifetime.assign(n, -1);
  auto emit = [&](const Reg& r, bool io) {
    const int idx = result.num_regs++;
    if (io) ++result.num_io_regs;
    for (int m : r.members) result.reg_of_lifetime[m] = idx;
  };
  for (const Reg& r : out_regs) emit(r, true);
  for (std::size_t a = 0; a < in_regs.size(); ++a)
    if (!in_merged[a]) emit(in_regs[a], true);
  for (const Reg& r : extra_regs) emit(r, false);
  return result;
}

int io_register_count(const cdfg::LifetimeAnalysis& lts,
                      const std::vector<int>& reg_of_lifetime) {
  const int num_regs =
      reg_of_lifetime.empty()
          ? 0
          : 1 + *std::max_element(reg_of_lifetime.begin(),
                                  reg_of_lifetime.end());
  std::vector<bool> io(num_regs, false);
  for (std::size_t i = 0; i < lts.lifetimes.size(); ++i)
    if (lts.lifetimes[i].is_input || lts.lifetimes[i].is_output)
      io[reg_of_lifetime[i]] = true;
  return static_cast<int>(std::count(io.begin(), io.end(), true));
}

}  // namespace tsyn::testability
