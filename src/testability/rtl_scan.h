// RTL partial scan with transparent scan on non-register nodes
// (§4.1, [35],[37]).
//
// Gate-level partial scan may only scan existing flip-flops. At RTL both
// register nodes (replaced by scan registers) and non-register nodes (FU
// outputs, given transparent scan registers) are loop-breaking candidates;
// one transparent register on a heavily shared FU output can cut every loop
// through that FU, so significantly fewer scan elements are needed.
#pragma once

#include <vector>

#include "rtl/datapath.h"

namespace tsyn::testability {

struct RtlScanResult {
  std::vector<int> scan_regs;        ///< register indices made scannable
  std::vector<int> transparent_fus;  ///< FU indices given transparent scan
  int total() const {
    return static_cast<int>(scan_regs.size() + transparent_fus.size());
  }
};

/// Greedy loop-breaking over both candidate classes until only self-loops
/// remain. With apply=true, scan registers are marked in the datapath
/// (transparent FU registers have no RegisterInfo to mark; callers account
/// for them via the result).
RtlScanResult rtl_partial_scan(rtl::Datapath& dp, bool apply = true);

/// Baseline: register-only selection (the gate-level-equivalent MFVS on the
/// S-graph). Returns the registers chosen.
std::vector<int> register_only_partial_scan(const rtl::Datapath& dp);

}  // namespace tsyn::testability
