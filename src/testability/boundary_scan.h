// IEEE 1149.1-style boundary scan insertion (§4.2).
//
// The survey's RTL-structure example: boundary scan cells on every primary
// input and output, stitched into a ring, so chip I/O becomes controllable
// and observable through the test access port. Modelled here as dedicated
// scan registers spliced between the pads and the datapath: each PI gains a
// capture/update cell the datapath now reads, each PO a cell observing the
// output register. Area is accounted through the normal register model.
#pragma once

#include <vector>

#include "rtl/datapath.h"

namespace tsyn::testability {

struct BoundaryScanResult {
  /// Register indices of the inserted cells, in ring order (inputs first).
  std::vector<int> ring;
  int input_cells = 0;
  int output_cells = 0;
  /// Area overhead fraction added by the ring.
  double area_overhead = 0;
};

/// Inserts the boundary ring in place. Every former PI consumer is rewired
/// to read the input cell; each PO gets an observing cell appended (the
/// functional output is unchanged).
BoundaryScanResult insert_boundary_scan(rtl::Datapath& dp);

}  // namespace tsyn::testability
