#include "testability/boundary_scan.h"

#include "rtl/area.h"

namespace tsyn::testability {

BoundaryScanResult insert_boundary_scan(rtl::Datapath& dp) {
  BoundaryScanResult result;
  const double area_before = rtl::datapath_area(dp);

  // Input cells: one scan register per primary input; everything that read
  // the pad now reads the cell.
  const int num_pis = static_cast<int>(dp.primary_inputs.size());
  std::vector<int> cell_of_pi(num_pis, -1);
  for (int pi = 0; pi < num_pis; ++pi) {
    rtl::RegisterInfo cell;
    cell.name = "BS_" + dp.primary_inputs[pi].name;
    cell.width = dp.primary_inputs[pi].width;
    cell.is_input = true;
    cell.test_kind = rtl::TestRegKind::kScan;
    cell.drivers = {{rtl::Source::Kind::kPrimaryInput, pi}};
    cell_of_pi[pi] = dp.num_regs();
    dp.regs.push_back(std::move(cell));
    result.ring.push_back(cell_of_pi[pi]);
    ++result.input_cells;
  }
  auto rewire = [&](rtl::Source& s) {
    if (s.kind == rtl::Source::Kind::kPrimaryInput)
      s = {rtl::Source::Kind::kRegister, cell_of_pi[s.index]};
  };
  for (int r = 0; r < dp.num_regs(); ++r) {
    if (dp.regs[r].test_kind == rtl::TestRegKind::kScan &&
        dp.regs[r].name.rfind("BS_", 0) == 0)
      continue;  // the cells themselves keep their pad connection
    for (rtl::Source& s : dp.regs[r].drivers) rewire(s);
  }
  for (rtl::FuInfo& fu : dp.fus)
    for (auto& port : fu.port_drivers)
      for (rtl::Source& s : port) rewire(s);

  // Output cells: observe each primary output's register.
  const int num_pos = static_cast<int>(dp.primary_outputs.size());
  for (int po = 0; po < num_pos; ++po) {
    rtl::RegisterInfo cell;
    cell.name = "BS_" + dp.primary_outputs[po].name;
    const int src_reg = dp.primary_outputs[po].source.index;
    cell.width = dp.regs[src_reg].width;
    cell.is_output = true;
    cell.test_kind = rtl::TestRegKind::kScan;
    cell.drivers = {{rtl::Source::Kind::kRegister, src_reg}};
    result.ring.push_back(dp.num_regs());
    dp.regs.push_back(std::move(cell));
    ++result.output_cells;
  }
  dp.validate();
  const double area_after = rtl::datapath_area(dp);
  result.area_overhead =
      area_before > 0 ? (area_after - area_before) / area_before : 0;
  return result;
}

}  // namespace tsyn::testability
