// Controller-based DFT (§3.5, [14]).
//
// Even with a loop-free datapath, the composite controller/datapath circuit
// can resist sequential ATPG because the controller only ever emits its
// functional control vectors: control-value combinations ATPG needs may be
// unreachable (control signal implications). The remedy adds a few extra
// control vectors, reachable in test mode, that realize the conflicting
// combinations. This module wraps the analysis in rtl/controller.h into the
// flow and reports the metrics the survey cites.
#pragma once

#include "rtl/controller.h"

namespace tsyn::testability {

struct ControllerDftResult {
  int conflicts_before = 0;
  int conflicts_after = 0;
  int vectors_added = 0;
  double pair_coverage_before = 0;
  double pair_coverage_after = 0;
};

/// Applies the conflict-eliminating vector augmentation in place.
ControllerDftResult apply_controller_dft(rtl::Controller& controller);

}  // namespace tsyn::testability
