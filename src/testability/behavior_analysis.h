// Behavioral testability analysis and test statements (§3.4, [9]).
//
// Chen, Karnik & Saab analyze the behavior itself: every variable is
// classified as (fully/partially/un-) controllable and observable by
// propagating transparency rules through the CDFG — add/sub/xor are
// invertible, multiply is value-transparent only with a controllable side
// operand, comparisons collapse information, etc. Test statements (executed
// only in test mode) then inject or observe the hard variables, raising
// the fault coverage of the synthesized circuit at modest area overhead.
#pragma once

#include <vector>

#include "cdfg/ir.h"

namespace tsyn::testability {

enum class CtrlClass { kControllable, kPartial, kUncontrollable };
enum class ObsClass { kObservable, kPartial, kUnobservable };

struct BehaviorTestability {
  std::vector<CtrlClass> ctrl;  ///< per VarId
  std::vector<ObsClass> obs;    ///< per VarId

  int count_ctrl(CtrlClass c) const;
  int count_obs(ObsClass o) const;
};

/// Fixpoint classification over the variable dependence graph (loop-carried
/// state included).
BehaviorTestability analyze_behavior(const cdfg::Cdfg& g);

struct TestStatementOptions {
  /// Also inject/observe partially controllable/observable variables, not
  /// just the fully hard ones.
  bool include_partial = false;
};

struct TestStatementResult {
  cdfg::Cdfg transformed;
  int injections = 0;    ///< test-mode input muxes added
  int observations = 0;  ///< test-mode observation ports added
};

/// Adds test statements: a TEST-mode mux with a fresh test input in front
/// of each hard-to-control variable's consumers, and an observation port on
/// each hard-to-observe variable.
TestStatementResult add_test_statements(const cdfg::Cdfg& g,
                                        const TestStatementOptions& opts = {});

}  // namespace tsyn::testability
