#include "testability/testpoints.h"

#include <algorithm>

#include "graph/paths.h"
#include "rtl/sgraph.h"

namespace tsyn::testability {

CoDistances co_distances(const rtl::Datapath& dp,
                         const std::vector<int>& control_points,
                         const std::vector<int>& observe_points) {
  const graph::Digraph s = rtl::build_sgraph(dp);
  std::vector<graph::NodeId> c_sources;
  std::vector<graph::NodeId> o_sources;
  for (int r = 0; r < dp.num_regs(); ++r) {
    if (dp.regs[r].is_input) c_sources.push_back(r);
    if (dp.regs[r].is_output) o_sources.push_back(r);
  }
  for (int r : control_points) c_sources.push_back(r);
  for (int r : observe_points) o_sources.push_back(r);

  CoDistances d;
  d.control = graph::bfs_distances(s, c_sources);
  d.observe = graph::bfs_distances(s.reversed(), o_sources);
  return d;
}

namespace {

int count_violations(const rtl::Datapath& dp, int k, const CoDistances& d) {
  int violations = 0;
  for (const rtl::DatapathLoop& loop : rtl::analyze_loops(dp)) {
    if (loop.kind == rtl::LoopClass::kSelfLoop) continue;
    bool controllable = false;
    bool observable = false;
    for (graph::NodeId r : loop.registers) {
      if (d.control[r] >= 0 && d.control[r] <= k) controllable = true;
      if (d.observe[r] >= 0 && d.observe[r] <= k) observable = true;
    }
    if (!controllable || !observable) ++violations;
  }
  return violations;
}

}  // namespace

int klevel_violations(const rtl::Datapath& dp, int k,
                      const std::vector<int>& control_points,
                      const std::vector<int>& observe_points) {
  return count_violations(dp, k,
                          co_distances(dp, control_points, observe_points));
}

TestPointResult insert_klevel_test_points(rtl::Datapath& dp, int k,
                                          bool apply) {
  TestPointResult result;
  for (;;) {
    const CoDistances d = co_distances(dp, result.control_point_regs,
                                       result.observe_point_regs);
    const int before = count_violations(dp, k, d);
    if (before == 0) break;

    // Try every candidate insertion; keep the one fixing most violations.
    int best_reg = -1;
    bool best_is_control = true;
    int best_after = before;
    for (int r = 0; r < dp.num_regs(); ++r) {
      for (const bool is_control : {true, false}) {
        auto cps = result.control_point_regs;
        auto ops = result.observe_point_regs;
        auto& list = is_control ? cps : ops;
        if (std::find(list.begin(), list.end(), r) != list.end()) continue;
        list.push_back(r);
        const int after = count_violations(dp, k, co_distances(dp, cps, ops));
        if (after < best_after) {
          best_after = after;
          best_reg = r;
          best_is_control = is_control;
        }
      }
    }
    if (best_reg < 0) {
      // No single insertion helps (disconnected loop): force a control and
      // an observe point on the first violating loop.
      for (const rtl::DatapathLoop& loop : rtl::analyze_loops(dp)) {
        if (loop.kind == rtl::LoopClass::kSelfLoop) continue;
        bool c = false;
        bool o = false;
        for (graph::NodeId r : loop.registers) {
          if (d.control[r] >= 0 && d.control[r] <= k) c = true;
          if (d.observe[r] >= 0 && d.observe[r] <= k) o = true;
        }
        if (!c) result.control_point_regs.push_back(loop.registers.front());
        if (!o) result.observe_point_regs.push_back(loop.registers.front());
        if (!c || !o) break;
      }
      continue;
    }
    if (best_is_control)
      result.control_point_regs.push_back(best_reg);
    else
      result.observe_point_regs.push_back(best_reg);
  }

  if (apply) {
    for (int r : result.control_point_regs) {
      const int pi = static_cast<int>(dp.primary_inputs.size());
      dp.primary_inputs.push_back(
          {"tp_c_" + dp.regs[r].name, dp.regs[r].width});
      dp.regs[r].drivers.push_back(
          {rtl::Source::Kind::kPrimaryInput, pi});
    }
    for (int r : result.observe_point_regs)
      dp.primary_outputs.push_back(
          {"tp_o_" + dp.regs[r].name, {rtl::Source::Kind::kRegister, r}});
  }
  return result;
}

}  // namespace tsyn::testability
