// Operation scheduling (§1.1).
//
// Scheduling assigns each CDFG operation to a control step subject to data
// dependencies and, for resource-constrained list scheduling, to an
// allocation of functional units. All operations take one control step
// (the convention of the surveyed benchmarks); copy operations consume no
// FU and are never resource-limited.
#pragma once

#include <map>
#include <vector>

#include "cdfg/ir.h"

namespace tsyn::hls {

/// A schedule over 0-based control steps.
struct Schedule {
  int num_steps = 0;
  std::vector<int> step_of_op;  ///< per OpId

  bool valid_for(const cdfg::Cdfg& g) const {
    return static_cast<int>(step_of_op.size()) == g.num_ops();
  }
};

/// Allocation: number of functional units of each type. Types absent from
/// the map are unconstrained; kMux and kCopyUnit are always unconstrained
/// (interconnect, not datapath resources).
class Resources {
 public:
  Resources() = default;
  Resources(std::initializer_list<std::pair<const cdfg::FuType, int>> init)
      : counts_(init) {}

  void set(cdfg::FuType t, int count) { counts_[t] = count; }
  /// Count for a type; INT_MAX when unconstrained.
  int get(cdfg::FuType t) const;
  bool constrained(cdfg::FuType t) const;
  const std::map<cdfg::FuType, int>& counts() const { return counts_; }

 private:
  std::map<cdfg::FuType, int> counts_;
};

/// ASAP schedule: each op at its earliest dependence-feasible step.
Schedule asap_schedule(const cdfg::Cdfg& g);

/// ALAP schedule against a deadline of `num_steps` (must be >= critical
/// path length; throws otherwise).
Schedule alap_schedule(const cdfg::Cdfg& g, int num_steps);

/// Critical path length in control steps (the minimum schedule length).
int critical_path_length(const cdfg::Cdfg& g);

/// Per-op mobility (ALAP - ASAP) under the given deadline.
std::vector<int> mobility(const cdfg::Cdfg& g, int num_steps);

/// Resource-constrained list scheduling with least-ALAP-slack priority.
/// The schedule length grows beyond the critical path as needed.
Schedule list_schedule(const cdfg::Cdfg& g, const Resources& res);

/// Checks dependence and resource feasibility; throws std::runtime_error
/// with a diagnostic on violation.
void validate_schedule(const cdfg::Cdfg& g, const Schedule& s,
                       const Resources& res);

/// FUs of each constrained type actually needed by a schedule (max ops of
/// that type in any one step).
std::map<cdfg::FuType, int> peak_resource_usage(const cdfg::Cdfg& g,
                                                const Schedule& s);

}  // namespace tsyn::hls
