#include "hls/datapath_builder.h"

#include <algorithm>
#include <stdexcept>

#include "util/metrics.h"
#include "util/trace.h"

namespace tsyn::hls {

namespace {

using rtl::Source;

int find_or_add_source(std::vector<Source>& list, const Source& s) {
  const auto it = std::find(list.begin(), list.end(), s);
  if (it != list.end()) return static_cast<int>(it - list.begin());
  list.push_back(s);
  return static_cast<int>(list.size()) - 1;
}

/// One register write event: at the end of `step`, load from `driver`.
struct WriteEvent {
  int step = 0;
  int driver = 0;  ///< index into the register's driver list
};

/// Distinct op kinds executed by a set of ops, sorted by enum value.
std::vector<cdfg::OpKind> fu_op_kinds(const cdfg::Cdfg& g,
                                      const std::vector<cdfg::OpId>& ops) {
  std::vector<cdfg::OpKind> kinds;
  for (cdfg::OpId o : ops)
    if (std::find(kinds.begin(), kinds.end(), g.op(o).kind) == kinds.end())
      kinds.push_back(g.op(o).kind);
  std::sort(kinds.begin(), kinds.end());
  return kinds;
}

}  // namespace

RtlDesign build_rtl(const cdfg::Cdfg& g, const Schedule& s,
                    const Binding& b) {
  TSYN_SPAN("rtl.datapath");
  static util::Counter& runs = util::metrics().counter("rtl.datapath.runs");
  runs.add();
  RtlDesign design;
  rtl::Datapath& dp = design.datapath;
  dp.name = g.name();

  // Primary inputs and constants, indexed by variable id.
  std::vector<int> pi_index(g.num_vars(), -1);
  std::vector<int> const_index(g.num_vars(), -1);
  for (const cdfg::Variable& v : g.vars()) {
    if (v.kind == cdfg::VarKind::kPrimaryInput) {
      pi_index[v.id] = static_cast<int>(dp.primary_inputs.size());
      dp.primary_inputs.push_back({v.name, v.width});
    } else if (v.kind == cdfg::VarKind::kConstant) {
      const_index[v.id] = static_cast<int>(dp.constants.size());
      dp.constants.push_back({v.name, v.constant_value, v.width});
    }
  }

  // Registers from the binding.
  dp.regs.resize(b.num_regs);
  for (int r = 0; r < b.num_regs; ++r) {
    dp.regs[r].name = "R" + std::to_string(r);
    dp.regs[r].width = 0;
  }
  for (std::size_t lt = 0; lt < b.lifetimes.lifetimes.size(); ++lt) {
    const cdfg::StorageLifetime& life = b.lifetimes.lifetimes[lt];
    rtl::RegisterInfo& reg = dp.regs[b.reg_of_lifetime[lt]];
    reg.is_input |= life.is_input;
    reg.is_output |= life.is_output;
    reg.holds_state |= life.is_state;
    for (cdfg::VarId v : life.vars) {
      reg.vars.push_back(v);
      reg.width = std::max(reg.width, g.var(v).width);
    }
  }
  for (rtl::RegisterInfo& reg : dp.regs)
    if (reg.width == 0) reg.width = 16;

  // Where a variable's value is read from.
  auto source_of_var = [&](cdfg::VarId v) -> Source {
    if (const_index[v] >= 0)
      return {Source::Kind::kConstant, const_index[v]};
    const int reg = b.reg_of_var(v);
    if (reg < 0)
      throw std::runtime_error("variable " + g.var(v).name +
                               " has no storage");
    return {Source::Kind::kRegister, reg};
  };

  // FUs and their operand-port drivers.
  dp.fus.resize(b.num_fus());
  for (int f = 0; f < b.num_fus(); ++f) {
    rtl::FuInfo& fu = dp.fus[f];
    fu.type = b.fu_type[f];
    fu.name = cdfg::to_string(fu.type) + std::to_string(f);
    fu.ops = b.fu_ops[f];
    int ports = 1;
    int width = 0;
    for (cdfg::OpId o : fu.ops) {
      ports = std::max(ports, cdfg::arity_of(g.op(o).kind));
      width = std::max(width, g.var(g.op(o).output).width);
    }
    fu.width = width == 0 ? 16 : width;
    fu.port_drivers.resize(ports);
    fu.port_driver_ops.resize(ports);
    fu.op_kinds = fu_op_kinds(g, fu.ops);
  }
  // (op, port) -> driver index on that port, for the controller. The same
  // walk records the provenance cross reference: which ops read through
  // each port-mux leg.
  std::vector<std::vector<int>> op_port_driver(g.num_ops());
  for (cdfg::OpId o = 0; o < g.num_ops(); ++o) {
    const cdfg::Operation& op = g.op(o);
    if (b.fu_of_op[o] < 0) continue;  // copy: wires, handled at registers
    rtl::FuInfo& fu = dp.fus[b.fu_of_op[o]];
    op_port_driver[o].resize(op.inputs.size());
    for (std::size_t p = 0; p < op.inputs.size(); ++p) {
      const int driver =
          find_or_add_source(fu.port_drivers[p], source_of_var(op.inputs[p]));
      op_port_driver[o][p] = driver;
      auto& port_ops = fu.port_driver_ops[p];
      if (static_cast<int>(port_ops.size()) <= driver)
        port_ops.resize(static_cast<std::size_t>(driver) + 1);
      port_ops[static_cast<std::size_t>(driver)].push_back(o);
    }
  }

  // Register drivers and write events. `op` is the CDFG op whose result
  // the write carries (-1 for op-less writes: primary-input reloads and
  // state transfers of unoperated values), recorded for provenance.
  std::vector<std::vector<WriteEvent>> writes(b.num_regs);
  auto add_write = [&](int reg, const Source& src, int step, cdfg::OpId op) {
    const int driver = find_or_add_source(dp.regs[reg].drivers, src);
    auto& driver_ops = dp.regs[reg].driver_ops;
    if (static_cast<int>(driver_ops.size()) <= driver)
      driver_ops.resize(static_cast<std::size_t>(driver) + 1);
    if (op >= 0) driver_ops[static_cast<std::size_t>(driver)].push_back(op);
    for (const WriteEvent& w : writes[reg])
      if (w.step == step && w.driver != driver)
        throw std::runtime_error("write conflict on register " +
                                 dp.regs[reg].name + " at step " +
                                 std::to_string(step));
    writes[reg].push_back({step, driver});
  };

  const int last_step = s.num_steps - 1;
  for (std::size_t lt_idx = 0; lt_idx < b.lifetimes.lifetimes.size();
       ++lt_idx) {
    const cdfg::StorageLifetime& life = b.lifetimes.lifetimes[lt_idx];
    const int reg = b.reg_of_lifetime[lt_idx];
    for (cdfg::VarId v : life.vars) {
      const cdfg::Variable& var = g.var(v);
      if (var.kind == cdfg::VarKind::kPrimaryInput) {
        // Reloaded from the pad at the iteration boundary.
        add_write(reg, {Source::Kind::kPrimaryInput, pi_index[v]},
                  last_step, /*op=*/-1);
      } else if (var.kind == cdfg::VarKind::kTemp) {
        const cdfg::Operation& def = g.op(var.def_op);
        const int step = s.step_of_op[var.def_op];
        if (def.kind == cdfg::OpKind::kCopy) {
          add_write(reg, source_of_var(def.inputs[0]), step, var.def_op);
        } else {
          add_write(reg, {Source::Kind::kFu, b.fu_of_op[var.def_op]}, step,
                    var.def_op);
        }
      }
      // kState without transfer: covered by its merged update temp.
    }
    if (life.transfer_from >= 0) {
      const cdfg::Variable& tv = g.var(life.transfer_from);
      add_write(reg, source_of_var(life.transfer_from), last_step,
                tv.kind == cdfg::VarKind::kTemp ? tv.def_op : -1);
    }
  }

  // Primary outputs.
  for (cdfg::VarId v : g.outputs()) {
    const int reg = b.reg_of_var(v);
    if (reg < 0) continue;  // constant marked as output: degenerate
    dp.primary_outputs.push_back(
        {g.var(v).name + "_out", {Source::Kind::kRegister, reg}});
  }

  // Normalize the provenance cross references: fully parallel to the
  // driver lists, each sub-list sorted and deduped.
  auto normalize = [](std::vector<std::vector<cdfg::OpId>>& lists,
                      std::size_t count) {
    lists.resize(count);
    for (auto& ops : lists) {
      std::sort(ops.begin(), ops.end());
      ops.erase(std::unique(ops.begin(), ops.end()), ops.end());
    }
  };
  for (rtl::RegisterInfo& reg : dp.regs)
    normalize(reg.driver_ops, reg.drivers.size());
  for (rtl::FuInfo& fu : dp.fus)
    for (std::size_t p = 0; p < fu.port_drivers.size(); ++p)
      normalize(fu.port_driver_ops[p], fu.port_drivers[p].size());
  dp.validate();

  // ---- controller ----
  rtl::Controller& ctrl = design.controller;
  // Signal layout: per register [select (if >1 driver), load enable], then
  // per FU port with >1 driver a select.
  std::vector<int> reg_sel_signal(b.num_regs, -1);
  std::vector<int> reg_ld_signal(b.num_regs, -1);
  for (int r = 0; r < b.num_regs; ++r) {
    if (dp.regs[r].drivers.size() > 1)
      reg_sel_signal[r] = ctrl.add_signal(
          "sel_" + dp.regs[r].name,
          static_cast<int>(dp.regs[r].drivers.size()));
    reg_ld_signal[r] = ctrl.add_signal("ld_" + dp.regs[r].name, 2);
  }
  std::vector<std::vector<int>> fu_port_signal(b.num_fus());
  std::vector<int> fu_op_signal(b.num_fus(), -1);
  std::vector<std::vector<cdfg::OpKind>> fu_kinds(b.num_fus());
  for (int f = 0; f < b.num_fus(); ++f) {
    fu_port_signal[f].assign(dp.fus[f].port_drivers.size(), -1);
    for (std::size_t p = 0; p < dp.fus[f].port_drivers.size(); ++p)
      if (dp.fus[f].port_drivers[p].size() > 1)
        fu_port_signal[f][p] = ctrl.add_signal(
            "sel_" + dp.fus[f].name + "_p" + std::to_string(p),
            static_cast<int>(dp.fus[f].port_drivers[p].size()));
    // Opcode select when the FU executes more than one operation kind.
    fu_kinds[f] = fu_op_kinds(g, b.fu_ops[f]);
    if (fu_kinds[f].size() > 1)
      fu_op_signal[f] = ctrl.add_signal(
          "op_" + dp.fus[f].name, static_cast<int>(fu_kinds[f].size()));
  }

  for (int step = 0; step < s.num_steps; ++step) {
    std::vector<int> vec(ctrl.num_signals(), -1);
    for (int r = 0; r < b.num_regs; ++r) {
      int load = 0;
      for (const WriteEvent& w : writes[r]) {
        if (w.step != step) continue;
        load = 1;
        if (reg_sel_signal[r] >= 0) vec[reg_sel_signal[r]] = w.driver;
      }
      vec[reg_ld_signal[r]] = load;
    }
    for (cdfg::OpId o = 0; o < g.num_ops(); ++o) {
      if (s.step_of_op[o] != step || b.fu_of_op[o] < 0) continue;
      // Guarded mutually exclusive ops leave the select a don't-care
      // (resolved by the guard at run time); unguarded ops pin it.
      if (g.op(o).guard >= 0) continue;
      for (std::size_t p = 0; p < op_port_driver[o].size(); ++p) {
        const int sig = fu_port_signal[b.fu_of_op[o]][p];
        if (sig >= 0) vec[sig] = op_port_driver[o][p];
      }
      const int op_sig = fu_op_signal[b.fu_of_op[o]];
      if (op_sig >= 0) {
        const auto& kinds = fu_kinds[b.fu_of_op[o]];
        const auto it =
            std::find(kinds.begin(), kinds.end(), g.op(o).kind);
        vec[op_sig] = static_cast<int>(it - kinds.begin());
      }
    }
    ctrl.add_vector(std::move(vec));
  }
  return design;
}

}  // namespace tsyn::hls
