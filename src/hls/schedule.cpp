#include "hls/schedule.h"

#include <algorithm>
#include <climits>
#include <numeric>
#include <stdexcept>

#include "graph/paths.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace tsyn::hls {

namespace {

bool resource_limited(cdfg::FuType t) {
  return t != cdfg::FuType::kMux && t != cdfg::FuType::kCopyUnit;
}

}  // namespace

int Resources::get(cdfg::FuType t) const {
  if (!resource_limited(t)) return INT_MAX;
  const auto it = counts_.find(t);
  return it == counts_.end() ? INT_MAX : it->second;
}

bool Resources::constrained(cdfg::FuType t) const {
  return resource_limited(t) && counts_.count(t) > 0;
}

Schedule asap_schedule(const cdfg::Cdfg& g) {
  const graph::Digraph dep = g.op_dependence_graph(false);
  const auto order = graph::topological_order(dep);
  if (!order) throw std::runtime_error("cyclic op dependences");
  Schedule s;
  s.step_of_op.assign(g.num_ops(), 0);
  for (graph::NodeId o : *order)
    for (graph::NodeId succ : dep.successors(o))
      s.step_of_op[succ] =
          std::max(s.step_of_op[succ], s.step_of_op[o] + 1);
  for (int step : s.step_of_op) s.num_steps = std::max(s.num_steps, step + 1);
  return s;
}

int critical_path_length(const cdfg::Cdfg& g) {
  return asap_schedule(g).num_steps;
}

Schedule alap_schedule(const cdfg::Cdfg& g, int num_steps) {
  if (num_steps < critical_path_length(g))
    throw std::runtime_error("deadline below critical path length");
  const graph::Digraph dep = g.op_dependence_graph(false);
  const auto order = graph::topological_order(dep);
  Schedule s;
  s.num_steps = num_steps;
  s.step_of_op.assign(g.num_ops(), num_steps - 1);
  for (auto it = order->rbegin(); it != order->rend(); ++it)
    for (graph::NodeId succ : dep.successors(*it))
      s.step_of_op[*it] =
          std::min(s.step_of_op[*it], s.step_of_op[succ] - 1);
  return s;
}

std::vector<int> mobility(const cdfg::Cdfg& g, int num_steps) {
  const Schedule asap = asap_schedule(g);
  const Schedule alap = alap_schedule(g, num_steps);
  std::vector<int> m(g.num_ops());
  for (cdfg::OpId o = 0; o < g.num_ops(); ++o)
    m[o] = alap.step_of_op[o] - asap.step_of_op[o];
  return m;
}

Schedule list_schedule(const cdfg::Cdfg& g, const Resources& res) {
  TSYN_SPAN("hls.schedule.list");
  static util::Counter& runs = util::metrics().counter("hls.schedule.runs");
  runs.add();
  const graph::Digraph dep = g.op_dependence_graph(false);
  const int cp = critical_path_length(g);
  const Schedule alap = alap_schedule(g, cp);

  Schedule s;
  s.step_of_op.assign(g.num_ops(), -1);
  std::vector<int> unscheduled_preds(g.num_ops(), 0);
  for (cdfg::OpId o = 0; o < g.num_ops(); ++o)
    unscheduled_preds[o] = dep.in_degree(o);

  int scheduled = 0;
  int step = 0;
  while (scheduled < g.num_ops()) {
    // Ready ops whose predecessors all finished before `step`.
    std::vector<cdfg::OpId> ready;
    for (cdfg::OpId o = 0; o < g.num_ops(); ++o) {
      if (s.step_of_op[o] != -1 || unscheduled_preds[o] > 0) continue;
      bool ok = true;
      for (graph::NodeId p : dep.predecessors(o))
        if (s.step_of_op[p] >= step) ok = false;
      if (ok) ready.push_back(o);
    }
    // Least ALAP slack first (most urgent).
    std::sort(ready.begin(), ready.end(), [&](cdfg::OpId a, cdfg::OpId b) {
      if (alap.step_of_op[a] != alap.step_of_op[b])
        return alap.step_of_op[a] < alap.step_of_op[b];
      return a < b;
    });

    std::map<cdfg::FuType, int> used;
    for (cdfg::OpId o : ready) {
      const cdfg::FuType t = cdfg::fu_type_of(g.op(o).kind);
      if (used[t] >= res.get(t)) continue;
      ++used[t];
      s.step_of_op[o] = step;
      ++scheduled;
      for (graph::NodeId succ : dep.successors(o)) --unscheduled_preds[succ];
    }
    ++step;
    if (step > g.num_ops() + cp + 1)
      throw std::runtime_error("list scheduling failed to converge");
  }
  s.num_steps = *std::max_element(s.step_of_op.begin(), s.step_of_op.end()) + 1;
  return s;
}

void validate_schedule(const cdfg::Cdfg& g, const Schedule& s,
                       const Resources& res) {
  if (!s.valid_for(g)) throw std::runtime_error("schedule size mismatch");
  const graph::Digraph dep = g.op_dependence_graph(false);
  for (cdfg::OpId o = 0; o < g.num_ops(); ++o) {
    if (s.step_of_op[o] < 0 || s.step_of_op[o] >= s.num_steps)
      throw std::runtime_error("op " + g.op(o).name + " out of range");
    for (graph::NodeId p : dep.predecessors(o))
      if (s.step_of_op[p] >= s.step_of_op[o])
        throw std::runtime_error("dependence violated: " + g.op(p).name +
                                 " -> " + g.op(o).name);
  }
  for (const auto& [type, used] : peak_resource_usage(g, s))
    if (used > res.get(type))
      throw std::runtime_error("resource overuse of " +
                               cdfg::to_string(type));
}

std::map<cdfg::FuType, int> peak_resource_usage(const cdfg::Cdfg& g,
                                                const Schedule& s) {
  std::map<cdfg::FuType, std::vector<int>> per_step;
  for (cdfg::OpId o = 0; o < g.num_ops(); ++o) {
    const cdfg::FuType t = cdfg::fu_type_of(g.op(o).kind);
    if (!resource_limited(t)) continue;
    auto& v = per_step[t];
    v.resize(s.num_steps, 0);
    ++v[s.step_of_op[o]];
  }
  std::map<cdfg::FuType, int> peak;
  for (const auto& [type, v] : per_step)
    peak[type] = *std::max_element(v.begin(), v.end());
  return peak;
}

}  // namespace tsyn::hls
