#include "hls/binding.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "graph/clique_partition.h"
#include "graph/interval.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace tsyn::hls {

bool ops_compatible(const cdfg::Cdfg& g, const Schedule& s, cdfg::OpId a,
                    cdfg::OpId b) {
  const cdfg::Operation& oa = g.op(a);
  const cdfg::Operation& ob = g.op(b);
  if (cdfg::fu_type_of(oa.kind) != cdfg::fu_type_of(ob.kind)) return false;
  if (s.step_of_op[a] != s.step_of_op[b]) return true;
  // Same step: only mutually exclusive guarded ops can share.
  return oa.guard >= 0 && oa.guard == ob.guard &&
         oa.guard_polarity != ob.guard_polarity;
}

namespace {

void bind_fus_conventional(const cdfg::Cdfg& g, const Schedule& s,
                           Binding& b) {
  b.fu_of_op.assign(g.num_ops(), -1);
  // Partition ops by FU type, clique-partition each class.
  std::map<cdfg::FuType, std::vector<cdfg::OpId>> classes;
  for (cdfg::OpId o = 0; o < g.num_ops(); ++o) {
    if (g.op(o).kind == cdfg::OpKind::kCopy) continue;  // wires
    classes[cdfg::fu_type_of(g.op(o).kind)].push_back(o);
  }
  for (const auto& [type, ops] : classes) {
    graph::UndirectedGraph compat(static_cast<int>(ops.size()));
    for (std::size_t i = 0; i < ops.size(); ++i)
      for (std::size_t j = i + 1; j < ops.size(); ++j)
        if (ops_compatible(g, s, ops[i], ops[j]))
          compat.add_edge(static_cast<int>(i), static_cast<int>(j));
    const graph::CliquePartition part = graph::clique_partition(compat);
    for (const auto& clique : part.cliques) {
      const int fu = b.num_fus();
      b.fu_type.push_back(type);
      b.fu_ops.emplace_back();
      for (graph::NodeId local : clique) {
        b.fu_of_op[ops[local]] = fu;
        b.fu_ops.back().push_back(ops[local]);
      }
      std::sort(b.fu_ops.back().begin(), b.fu_ops.back().end());
    }
  }
}

void bind_registers_left_edge(Binding& b) {
  std::vector<graph::Interval> intervals;
  intervals.reserve(b.lifetimes.lifetimes.size());
  for (const cdfg::StorageLifetime& lt : b.lifetimes.lifetimes)
    intervals.push_back(lt.interval);
  b.reg_of_lifetime = graph::left_edge_assign(
      intervals, b.lifetimes.num_slots, &b.num_regs);
}

}  // namespace

Binding make_binding(const cdfg::Cdfg& g, const Schedule& s) {
  TSYN_SPAN("hls.binding");
  Binding b;
  b.lifetimes = cdfg::analyze_lifetimes(g, s.step_of_op, s.num_steps);
  bind_fus_conventional(g, s, b);
  bind_registers_left_edge(b);
  validate_binding(g, s, b);
  util::metrics().gauge("hls.binding.fus").set(b.num_fus());
  util::metrics().gauge("hls.binding.regs").set(b.num_regs);
  return b;
}

Binding make_binding_with_fu_map(const cdfg::Cdfg& g, const Schedule& s,
                                 const std::vector<int>& fu_of_op) {
  Binding b;
  b.lifetimes = cdfg::analyze_lifetimes(g, s.step_of_op, s.num_steps);
  b.fu_of_op = fu_of_op;
  const int num_fus =
      fu_of_op.empty()
          ? 0
          : 1 + *std::max_element(fu_of_op.begin(), fu_of_op.end());
  b.fu_type.assign(num_fus, cdfg::FuType::kAlu);
  b.fu_ops.assign(num_fus, {});
  std::vector<bool> type_set(num_fus, false);
  for (cdfg::OpId o = 0; o < g.num_ops(); ++o) {
    const int fu = fu_of_op[o];
    if (fu < 0) {
      if (g.op(o).kind != cdfg::OpKind::kCopy)
        throw std::runtime_error("non-copy op without an FU");
      continue;
    }
    if (!type_set[fu]) {
      b.fu_type[fu] = cdfg::fu_type_of(g.op(o).kind);
      type_set[fu] = true;
    }
    b.fu_ops[fu].push_back(o);
  }
  bind_registers_left_edge(b);
  validate_binding(g, s, b);
  return b;
}

void rebind_registers(const cdfg::Cdfg& g, Binding& b,
                      const std::vector<int>& reg_of_lifetime) {
  if (reg_of_lifetime.size() != b.lifetimes.lifetimes.size())
    throw std::runtime_error("register map size mismatch");
  b.reg_of_lifetime = reg_of_lifetime;
  b.num_regs = reg_of_lifetime.empty()
                   ? 0
                   : 1 + *std::max_element(reg_of_lifetime.begin(),
                                           reg_of_lifetime.end());
  // Conflict check.
  const auto& lts = b.lifetimes.lifetimes;
  for (std::size_t i = 0; i < lts.size(); ++i)
    for (std::size_t j = i + 1; j < lts.size(); ++j)
      if (reg_of_lifetime[i] == reg_of_lifetime[j] &&
          b.lifetimes.overlap(static_cast<int>(i), static_cast<int>(j)))
        throw std::runtime_error(
            "overlapping lifetimes mapped to one register");
  (void)g;
}

void validate_binding(const cdfg::Cdfg& g, const Schedule& s,
                      const Binding& b) {
  if (static_cast<int>(b.fu_of_op.size()) != g.num_ops())
    throw std::runtime_error("fu_of_op size mismatch");
  // FU sharing legality.
  for (int fu = 0; fu < b.num_fus(); ++fu) {
    const auto& ops = b.fu_ops[fu];
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (cdfg::fu_type_of(g.op(ops[i]).kind) != b.fu_type[fu])
        throw std::runtime_error("op bound to FU of wrong type");
      for (std::size_t j = i + 1; j < ops.size(); ++j)
        if (!ops_compatible(g, s, ops[i], ops[j]))
          throw std::runtime_error("incompatible ops share an FU");
    }
  }
  // Register sharing legality.
  const auto& lts = b.lifetimes.lifetimes;
  if (b.reg_of_lifetime.size() != lts.size())
    throw std::runtime_error("register map size mismatch");
  for (std::size_t i = 0; i < lts.size(); ++i) {
    if (b.reg_of_lifetime[i] < 0 || b.reg_of_lifetime[i] >= b.num_regs)
      throw std::runtime_error("register index out of range");
    for (std::size_t j = i + 1; j < lts.size(); ++j)
      if (b.reg_of_lifetime[i] == b.reg_of_lifetime[j] &&
          b.lifetimes.overlap(static_cast<int>(i), static_cast<int>(j)))
        throw std::runtime_error(
            "overlapping lifetimes mapped to one register");
  }
}

}  // namespace tsyn::hls
