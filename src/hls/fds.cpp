#include "hls/fds.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "graph/paths.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace tsyn::hls {

namespace {

struct Frame {
  int lo = 0;
  int hi = 0;  // inclusive
  int width() const { return hi - lo + 1; }
};

class FdsState {
 public:
  FdsState(const cdfg::Cdfg& g, int num_steps)
      : g_(g),
        dep_(g.op_dependence_graph(false)),
        num_steps_(num_steps),
        frames_(g.num_ops()),
        fixed_(g.num_ops(), false) {
    const Schedule asap = asap_schedule(g);
    const Schedule alap = alap_schedule(g, num_steps);
    for (cdfg::OpId o = 0; o < g.num_ops(); ++o)
      frames_[o] = {asap.step_of_op[o], alap.step_of_op[o]};
  }

  Schedule run() {
    for (int fixed_count = 0; fixed_count < g_.num_ops(); ++fixed_count) {
      double best_force = 0;
      cdfg::OpId best_op = -1;
      int best_step = -1;
      for (cdfg::OpId o = 0; o < g_.num_ops(); ++o) {
        if (fixed_[o]) continue;
        for (int t = frames_[o].lo; t <= frames_[o].hi; ++t) {
          const double f = total_force(o, t);
          if (best_op == -1 || f < best_force) {
            best_force = f;
            best_op = o;
            best_step = t;
          }
        }
      }
      assert(best_op >= 0);
      fix(best_op, best_step);
    }
    Schedule s;
    s.num_steps = num_steps_;
    s.step_of_op.resize(g_.num_ops());
    for (cdfg::OpId o = 0; o < g_.num_ops(); ++o)
      s.step_of_op[o] = frames_[o].lo;
    return s;
  }

 private:
  // Distribution-graph value for a type at a step.
  double dg(cdfg::FuType type, int step) const {
    double sum = 0;
    for (cdfg::OpId o = 0; o < g_.num_ops(); ++o) {
      if (cdfg::fu_type_of(g_.op(o).kind) != type) continue;
      const Frame& f = frames_[o];
      if (step >= f.lo && step <= f.hi) sum += 1.0 / f.width();
    }
    return sum;
  }

  // Self force of placing o at step t.
  double self_force(cdfg::OpId o, int t) const {
    const cdfg::FuType type = cdfg::fu_type_of(g_.op(o).kind);
    const Frame& f = frames_[o];
    const double p = 1.0 / f.width();
    double force = 0;
    for (int s = f.lo; s <= f.hi; ++s)
      force += dg(type, s) * ((s == t ? 1.0 : 0.0) - p);
    return force;
  }

  // Force including immediate predecessor/successor frame restrictions.
  double total_force(cdfg::OpId o, int t) const {
    double force = self_force(o, t);
    for (graph::NodeId p : dep_.predecessors(o)) {
      if (fixed_[p]) continue;
      const Frame& fp = frames_[p];
      if (fp.hi >= t) {  // frame would shrink to [lo, t-1]
        const Frame shrunk{fp.lo, t - 1};
        force += frame_change_force(p, fp, shrunk);
      }
    }
    for (graph::NodeId s : dep_.successors(o)) {
      if (fixed_[s]) continue;
      const Frame& fs = frames_[s];
      if (fs.lo <= t) {  // frame would shrink to [t+1, hi]
        const Frame shrunk{t + 1, fs.hi};
        force += frame_change_force(s, fs, shrunk);
      }
    }
    return force;
  }

  double frame_change_force(cdfg::OpId o, const Frame& from,
                            const Frame& to) const {
    const cdfg::FuType type = cdfg::fu_type_of(g_.op(o).kind);
    const double p_from = 1.0 / from.width();
    const double p_to = 1.0 / to.width();
    double force = 0;
    for (int s = from.lo; s <= from.hi; ++s) {
      const double in_to = (s >= to.lo && s <= to.hi) ? p_to : 0.0;
      force += dg(type, s) * (in_to - p_from);
    }
    return force;
  }

  void fix(cdfg::OpId o, int t) {
    frames_[o] = {t, t};
    fixed_[o] = true;
    propagate();
  }

  // Re-tighten all frames after a fix (forward ASAP / backward ALAP pass
  // over current frame bounds).
  void propagate() {
    const auto order = graph::topological_order(dep_);
    for (graph::NodeId o : *order)
      for (graph::NodeId succ : dep_.successors(o))
        frames_[succ].lo = std::max(frames_[succ].lo, frames_[o].lo + 1);
    for (auto it = order->rbegin(); it != order->rend(); ++it)
      for (graph::NodeId succ : dep_.successors(*it))
        frames_[*it].hi = std::min(frames_[*it].hi, frames_[succ].hi - 1);
    for (cdfg::OpId o = 0; o < g_.num_ops(); ++o)
      if (frames_[o].lo > frames_[o].hi)
        throw std::runtime_error("FDS frame collapse");
  }

  const cdfg::Cdfg& g_;
  graph::Digraph dep_;
  int num_steps_;
  std::vector<Frame> frames_;
  std::vector<bool> fixed_;
};

}  // namespace

Schedule force_directed_schedule(const cdfg::Cdfg& g, int num_steps) {
  TSYN_SPAN("hls.schedule.fds");
  static util::Counter& runs = util::metrics().counter("hls.schedule.runs");
  runs.add();
  if (num_steps < critical_path_length(g))
    throw std::runtime_error("deadline below critical path length");
  if (g.num_ops() == 0) {
    Schedule s;
    s.num_steps = num_steps;
    return s;
  }
  return FdsState(g, num_steps).run();
}

}  // namespace tsyn::hls
