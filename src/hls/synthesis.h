// One-call conventional synthesis flow: schedule -> bind -> build RTL.
//
// This is the baseline pipeline ("synthesize without regard for
// testability, then apply gate-level DFT") that the survey's high-level
// techniques are measured against.
#pragma once

#include "hls/binding.h"
#include "hls/datapath_builder.h"
#include "hls/schedule.h"

namespace tsyn::hls {

struct SynthesisOptions {
  /// FU allocation for resource-constrained list scheduling. Ignored when
  /// `num_steps` > 0.
  Resources resources;
  /// When > 0: time-constrained force-directed scheduling into this many
  /// steps instead.
  int num_steps = 0;
};

struct Synthesis {
  Schedule schedule;
  Binding binding;
  RtlDesign rtl;
};

/// Runs the conventional flow end to end.
Synthesis synthesize(const cdfg::Cdfg& g, const SynthesisOptions& opts = {});

}  // namespace tsyn::hls
