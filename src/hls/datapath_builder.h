// Datapath and controller construction from a scheduled, bound CDFG.
//
// Produces the structural RTL the testability analyses operate on: registers
// with multiplexed drivers, FUs with multiplexed operand ports, primary I/O,
// and the control table (mux selects + load enables per control step) that
// the controller-DFT technique of [14] analyzes.
#pragma once

#include "cdfg/ir.h"
#include "hls/binding.h"
#include "hls/schedule.h"
#include "rtl/controller.h"
#include "rtl/datapath.h"

namespace tsyn::hls {

struct RtlDesign {
  rtl::Datapath datapath;
  rtl::Controller controller;
};

/// Builds the datapath netlist and its control table.
/// Throws std::runtime_error if the binding implies a write conflict
/// (two loads of one register at the same clock edge).
RtlDesign build_rtl(const cdfg::Cdfg& g, const Schedule& s, const Binding& b);

}  // namespace tsyn::hls
