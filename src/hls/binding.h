// Resource binding (assignment): operations to FU instances, storage
// lifetimes to registers (§1.1).
//
// The conventional binding here — clique partitioning for FUs, left-edge for
// registers — is the baseline every testability-driven assignment in the
// survey is measured against. Testability techniques produce alternative
// register maps (or FU maps) and install them with rebind_registers /
// make_binding_with_fu_map.
#pragma once

#include <vector>

#include "cdfg/lifetime.h"
#include "hls/schedule.h"

namespace tsyn::hls {

struct Binding {
  /// FU instance per op; -1 for copy ops (wires, no FU).
  std::vector<int> fu_of_op;
  /// Type of each FU instance.
  std::vector<cdfg::FuType> fu_type;
  /// Ops executed by each FU instance.
  std::vector<std::vector<cdfg::OpId>> fu_ops;

  cdfg::LifetimeAnalysis lifetimes;
  /// Register index per storage lifetime.
  std::vector<int> reg_of_lifetime;
  int num_regs = 0;

  int num_fus() const { return static_cast<int>(fu_type.size()); }
  /// Register holding variable v (via its lifetime); -1 for constants.
  int reg_of_var(cdfg::VarId v) const {
    const int lt = lifetimes.lifetime_of_var[v];
    return lt < 0 ? -1 : reg_of_lifetime[lt];
  }
};

/// True if two ops may share an FU instance: same FU type and either
/// different steps or mutually exclusive guards.
bool ops_compatible(const cdfg::Cdfg& g, const Schedule& s, cdfg::OpId a,
                    cdfg::OpId b);

/// Conventional binding: clique-partitioned FUs + left-edge registers.
Binding make_binding(const cdfg::Cdfg& g, const Schedule& s);

/// Binding with a caller-supplied FU map (fu_of_op; -1 entries allowed only
/// for copy ops). Registers are still left-edge. Validates compatibility.
Binding make_binding_with_fu_map(const cdfg::Cdfg& g, const Schedule& s,
                                 const std::vector<int>& fu_of_op);

/// Replaces the register map; `reg_of_lifetime` must be conflict-free
/// (validated: no two overlapping lifetimes share a register).
void rebind_registers(const cdfg::Cdfg& g, Binding& b,
                      const std::vector<int>& reg_of_lifetime);

/// Validates the whole binding; throws std::runtime_error on violation.
void validate_binding(const cdfg::Cdfg& g, const Schedule& s,
                      const Binding& b);

}  // namespace tsyn::hls
