#include "hls/synthesis.h"

#include "hls/fds.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace tsyn::hls {

Synthesis synthesize(const cdfg::Cdfg& g, const SynthesisOptions& opts) {
  TSYN_SPAN("hls.synthesize");
  Synthesis out;
  if (opts.num_steps > 0)
    out.schedule = force_directed_schedule(g, opts.num_steps);
  else
    out.schedule = list_schedule(g, opts.resources);
  validate_schedule(g, out.schedule, opts.resources);
  util::metrics().gauge("hls.schedule.steps").set(out.schedule.num_steps);
  out.binding = make_binding(g, out.schedule);
  out.rtl = build_rtl(g, out.schedule, out.binding);
  return out;
}

}  // namespace tsyn::hls
