#include "hls/synthesis.h"

#include "hls/fds.h"

namespace tsyn::hls {

Synthesis synthesize(const cdfg::Cdfg& g, const SynthesisOptions& opts) {
  Synthesis out;
  if (opts.num_steps > 0)
    out.schedule = force_directed_schedule(g, opts.num_steps);
  else
    out.schedule = list_schedule(g, opts.resources);
  validate_schedule(g, out.schedule, opts.resources);
  out.binding = make_binding(g, out.schedule);
  out.rtl = build_rtl(g, out.schedule, out.binding);
  return out;
}

}  // namespace tsyn::hls
