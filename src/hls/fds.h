// Force-directed scheduling (Paulin–Knight), time-constrained.
//
// Balances the expected number of concurrently active operations of each FU
// type across control steps, minimizing the allocation needed to meet a
// fixed latency. This is the conventional quality-oriented scheduler the
// testability-driven schedulers are compared against.
#pragma once

#include "hls/schedule.h"

namespace tsyn::hls {

/// Schedules into exactly `num_steps` control steps (>= critical path).
Schedule force_directed_schedule(const cdfg::Cdfg& g, int num_steps);

}  // namespace tsyn::hls
