// Directed graph with integer node ids.
//
// The common substrate for CDFG dependence analysis, S-graphs extracted from
// RTL datapaths, and gate-level topology. Nodes are dense indices [0, n);
// payloads live in the client (CDFG, datapath, netlist), which keeps the
// algorithms in this library reusable across all of them.
#pragma once

#include <cstddef>
#include <vector>

namespace tsyn::graph {

using NodeId = int;

/// Adjacency-list digraph over dense node ids. Parallel edges are allowed
/// (add_edge_unique suppresses them when the client wants simple graphs).
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(int num_nodes);

  /// Appends a node and returns its id.
  NodeId add_node();

  /// Adds a directed edge u -> v. Both ids must be valid.
  void add_edge(NodeId u, NodeId v);

  /// Adds u -> v unless it is already present. O(out-degree of u).
  void add_edge_unique(NodeId u, NodeId v);

  /// True if edge u -> v exists.
  bool has_edge(NodeId u, NodeId v) const;

  int num_nodes() const { return static_cast<int>(succ_.size()); }
  std::size_t num_edges() const { return num_edges_; }

  const std::vector<NodeId>& successors(NodeId u) const { return succ_[u]; }
  const std::vector<NodeId>& predecessors(NodeId u) const { return pred_[u]; }

  int out_degree(NodeId u) const { return static_cast<int>(succ_[u].size()); }
  int in_degree(NodeId u) const { return static_cast<int>(pred_[u].size()); }

  /// True if the node has an edge to itself.
  bool has_self_loop(NodeId u) const { return has_edge(u, u); }

  /// Returns the subgraph induced by `keep[u] == true` together with the
  /// mapping old-id -> new-id (-1 for dropped nodes).
  Digraph induced_subgraph(const std::vector<bool>& keep,
                           std::vector<NodeId>* old_to_new = nullptr) const;

  /// Returns a copy with all edges reversed.
  Digraph reversed() const;

 private:
  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
  std::size_t num_edges_ = 0;
};

}  // namespace tsyn::graph
