// Maximum bipartite matching (augmenting paths / Hopcroft–Karp light).
//
// Used by the register-merge step of Lee et al. [25] (pairing input registers
// with output registers whose lifetimes permit merging) and by test-session
// scheduling.
#pragma once

#include <vector>

namespace tsyn::graph {

/// Maximum matching of a bipartite graph given as adjacency from left
/// vertices to right vertices.
/// Returns match_left[l] = matched right vertex or -1, and fills
/// match_right symmetrically if non-null.
std::vector<int> max_bipartite_matching(
    const std::vector<std::vector<int>>& adj_left_to_right, int num_right,
    std::vector<int>* match_right = nullptr);

}  // namespace tsyn::graph
