#include "graph/scc.h"

#include <algorithm>
#include <cassert>

namespace tsyn::graph {

SccResult strongly_connected_components(const Digraph& g) {
  const int n = g.num_nodes();
  SccResult result;
  result.component.assign(n, -1);

  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  int next_index = 0;

  // Explicit DFS stack: (node, position within its successor list).
  struct Frame {
    NodeId node;
    std::size_t child;
  };
  std::vector<Frame> dfs;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    dfs.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const auto& succ = g.successors(f.node);
      if (f.child < succ.size()) {
        const NodeId w = succ[f.child++];
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          dfs.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.node] = std::min(lowlink[f.node], index[w]);
        }
      } else {
        const NodeId v = f.node;
        dfs.pop_back();
        if (!dfs.empty())
          lowlink[dfs.back().node] = std::min(lowlink[dfs.back().node],
                                              lowlink[v]);
        if (lowlink[v] == index[v]) {
          result.members.emplace_back();
          auto& comp = result.members.back();
          for (;;) {
            const NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            result.component[w] = result.num_components;
            comp.push_back(w);
            if (w == v) break;
          }
          ++result.num_components;
        }
      }
    }
  }
  return result;
}

bool in_cycle(const Digraph& g, const SccResult& scc, NodeId u) {
  const int c = scc.component[u];
  return scc.members[c].size() > 1 || g.has_self_loop(u);
}

std::vector<NodeId> nodes_on_cycles(const Digraph& g,
                                    bool ignore_self_loops) {
  const SccResult scc = strongly_connected_components(g);
  std::vector<NodeId> out;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const bool nontrivial = scc.members[scc.component[u]].size() > 1;
    if (nontrivial || (!ignore_self_loops && g.has_self_loop(u)))
      out.push_back(u);
  }
  return out;
}

bool is_acyclic(const Digraph& g, bool ignore_self_loops) {
  return nodes_on_cycles(g, ignore_self_loops).empty();
}

Digraph condensation(const Digraph& g, const SccResult& scc) {
  Digraph c(scc.num_components);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.successors(u)) {
      const int cu = scc.component[u];
      const int cv = scc.component[v];
      if (cu != cv) c.add_edge_unique(cu, cv);
    }
  }
  return c;
}

}  // namespace tsyn::graph
